package balls

import (
	"repro/internal/bins"
	"repro/internal/xrand"
)

// CapacitiesUniform returns n capacities of value c (n >= 1, c >= 1; a
// panic-free builder — invalid inputs surface in NewSystem).
func CapacitiesUniform(n int, c int64) []int64 {
	caps := make([]int64, n)
	for i := range caps {
		caps[i] = c
	}
	return caps
}

// CapacitiesTwoClass returns nSmall bins of capacity cSmall followed by
// nLarge bins of capacity cLarge — the paper's §4.2 mixed arrays.
func CapacitiesTwoClass(nSmall int, cSmall int64, nLarge int, cLarge int64) []int64 {
	caps := make([]int64, 0, nSmall+nLarge)
	for i := 0; i < nSmall; i++ {
		caps = append(caps, cSmall)
	}
	for i := 0; i < nLarge; i++ {
		caps = append(caps, cLarge)
	}
	return caps
}

// CapacitiesRandomBinomial returns n capacities drawn as 1+Bin(7,(c-1)/7)
// (the paper's §4.2 randomised generator; c in [1,8]) using the given
// seed. The expected total capacity is c·n.
func CapacitiesRandomBinomial(n int, c float64, seed uint64) ([]int64, error) {
	a, err := bins.RandomBinomial(n, c, xrand.New(seed))
	if err != nil {
		return nil, err
	}
	return a.Capacities(), nil
}

// CapacitiesLinearGrowth models the §4.3 linear scale-out: the system
// starts with firstCount disks of capacity `start` and grows in batches
// of batchSize disks, each generation's capacity larger by `a`, until
// totalBins disks exist.
func CapacitiesLinearGrowth(firstCount, batchSize, totalBins int, start, a int64) ([]int64, error) {
	arr, err := bins.Generations(bins.LinearBatches(firstCount, batchSize, totalBins, start, a))
	if err != nil {
		return nil, err
	}
	return arr.Capacities(), nil
}

// CapacitiesExponentialGrowth models the §4.3 exponential scale-out:
// generation i has capacity round(start·b^i) (at least 1).
func CapacitiesExponentialGrowth(firstCount, batchSize, totalBins int, start, b float64) ([]int64, error) {
	arr, err := bins.Generations(bins.ExponentialBatches(firstCount, batchSize, totalBins, start, b))
	if err != nil {
		return nil, err
	}
	return arr.Capacities(), nil
}

// ParseCapacitySpec parses "COUNTxCAP[+COUNTxCAP...]" (e.g.
// "5000x1+5000x8") into a capacity vector.
func ParseCapacitySpec(spec string) ([]int64, error) {
	a, err := bins.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return a.Capacities(), nil
}
