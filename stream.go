package balls

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bins"
	"repro/internal/sim"
)

// StreamConfig describes one streaming run: balls arrive in rounds, a
// deterministic deletion stream expires balls, and an optional
// inter-round rebalance pass bounds cross-shard drift. See
// SimulateStream.
type StreamConfig struct {
	// Capacities of the bin array (required).
	Capacities []int64
	// Rounds is the number of rounds (>= 1). When Schedule is set and
	// Rounds is 0, Rounds defaults to len(Schedule).
	Rounds int
	// Arrivals is the fixed per-round arrival count; 0 means
	// ArrivalsFactor·C, or exactly C when ArrivalsFactor is also 0 —
	// LargeConfig's ball-count rules, applied per round.
	Arrivals int64
	// ArrivalsFactor scales the total capacity C into a per-round
	// arrival count when Arrivals is 0.
	ArrivalsFactor float64
	// Schedule, when non-empty, gives every round's arrival count
	// explicitly (entries >= 0; length must equal Rounds when Rounds
	// is set). Mutually exclusive with Arrivals/ArrivalsFactor.
	Schedule []int64
	// Deletions is the number of balls deleted per round, clamped to
	// the current occupancy. The deletion stream is part of the model:
	// each round draws a multivariate-hypergeometric shard split and
	// then deletes uniformly without replacement within each shard —
	// exactly the law of deleting Deletions uniform balls globally.
	Deletions int64
	// RebalanceTol enables the inter-round rebalance pass when > 0:
	// after deletions, every shard holding more than
	// (1+RebalanceTol)·target balls sheds the excess to shards below
	// target, re-placing moved balls through the protocol. 0 disables
	// the pass.
	RebalanceTol float64
	// Seed is the base seed (default 1). Every round r consumes a
	// frozen window of 3·Shards+2 substreams starting at r·(3·Shards+2):
	// arrival routing, per-shard placement, deletion shard-routing,
	// per-shard deletions, and rebalance move-out draws.
	Seed uint64
	// Shards is the number of contiguous shards (0 = engine default).
	// Part of the model, like Seed.
	Shards int
	// Workers caps parallelism (0 = GOMAXPROCS). It never affects the
	// result, only the wall clock.
	Workers int
	// Distribution and Protocol default to Proportional / Greedy(2).
	Distribution Distribution
	Protocol     Protocol
	// Checkpoints requests trajectory observations at the given ROUND
	// indices (1-based, ascending): cut k observes the system at the
	// end of round Checkpoints[k]. Unlike the ball-count cuts of
	// SimulateLarge, round cuts are always realised exactly.
	Checkpoints []int64
	// Heights requests, for k = 1..Heights, the number of bins whose
	// final load is at least k.
	Heights int
	// Context, when non-nil, arms cooperative cancellation: the run
	// stops at the next task or phase boundary and returns the
	// completed-round prefix alongside a *CancelledError. Nil runs to
	// completion.
	Context context.Context
	// CancelAfterRounds, when positive, deterministically stops the
	// run after exactly that many completed rounds, as if Context had
	// fired there (the CancelledError has a nil Cause) — a timing-free
	// way to exercise the cancellation path. Zero disables it.
	CancelAfterRounds int
}

// StreamResult aggregates one streaming run.
type StreamResult struct {
	// N is the number of bins, Shards the realised shard count, Rounds
	// the number of COMPLETED rounds (== cfg.Rounds unless cancelled).
	N      int
	Shards int
	Rounds int
	// Arrived, Deleted and Moved count the balls that arrived, were
	// deleted and were rebalanced across the completed rounds. Balls
	// is the final occupancy (== Arrived − Deleted).
	Arrived int64
	Deleted int64
	Moved   int64
	Balls   int64
	// MaxLoad, AverageLoad and Deviation are the final whole-array
	// statistics (deviation = max − average). Zero on a cancelled run,
	// whose mid-round state is not a model state.
	MaxLoad     float64
	AverageLoad float64
	Deviation   float64
	// ShardBalls[s] is shard s's occupancy after the last completed
	// round.
	ShardBalls []int64
	// Checkpoints holds the round-indexed trajectory rows (only when
	// requested). CheckpointResult.Balls is the ROUND index of the
	// cut; MeanBalls is the occupancy at the end of that round. A
	// cancelled run keeps the leading CancelledError.CompletedCuts
	// rows, each bit-identical to an uninterrupted run's.
	Checkpoints []CheckpointResult
	// Heights holds bins-at-load>=k counts of the final state (only
	// when requested; nil on a cancelled run).
	Heights []HeightResult
	// Loads gives read access to the final per-bin state. On a
	// cancelled run no final state exists and Loads is the zero value
	// (its methods must not be called).
	Loads LargeLoads
}

// SimulateStream runs ONE streaming game: cfg.Rounds rounds, each
// routing its arrivals to shards block-wise (exact multinomial count
// vectors, as in SimulateLarge), placing them through the protocol on
// per-shard RNG streams, deleting cfg.Deletions uniform balls, and —
// when cfg.RebalanceTol > 0 — re-placing the excess of overfull
// shards. The trajectory and final state are bit-identical for any
// Workers value — only (Capacities, round structure, Seed, Shards,
// Distribution, Protocol) determine them — and a run with Rounds = 1,
// Deletions = 0 and RebalanceTol = 0 reproduces SimulateLarge bit for
// bit.
//
// When cfg.Context fires mid-round (or CancelAfterRounds triggers),
// SimulateStream returns a partial result alongside a
// *CancelledError: counters, shard occupancies and the leading
// CancelledError.CompletedCuts checkpoint rows cover the
// completed-round prefix and are bit-identical to a run configured
// with Rounds = CancelledError.CompletedRounds. Final-state fields
// (MaxLoad, Heights, Loads) are unset on a cancelled partial.
func SimulateStream(cfg StreamConfig) (*StreamResult, error) {
	if len(cfg.Capacities) == 0 {
		return nil, fmt.Errorf("balls: SimulateStream needs capacities")
	}
	arr, err := bins.New(cfg.Capacities)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	res, err := sim.Dispatch(sim.RunSpec{
		Config: sim.Config{
			Array:       arr,
			Dist:        cfg.Distribution.resolve(),
			Placer:      cfg.Protocol.resolve(),
			Balls:       cfg.Arrivals,
			BallsFactor: cfg.ArrivalsFactor,
			Seed:        seed,
			Workers:     cfg.Workers,
			ObsOptions: sim.ObsOptions{
				Checkpoints:  cfg.Checkpoints,
				HeightLevels: cfg.Heights,
			},
			Context: cfg.Context,
		},
		Engine: sim.EngineStream,
		Shards: cfg.Shards,
		Stream: &sim.StreamParams{
			Rounds:            cfg.Rounds,
			Schedule:          cfg.Schedule,
			Deletions:         cfg.Deletions,
			RebalanceTol:      cfg.RebalanceTol,
			CancelAfterRounds: cfg.CancelAfterRounds,
		},
		// arr is private to this call, so the engine may own it —
		// skipping the clone avoids a second transient O(n) array.
		AdoptArray: true,
	})
	if err != nil {
		// Declared inside the branch: errors.As takes the address, and
		// a function-scope declaration would heap-allocate on the
		// happy path too.
		var cancelled *CancelledError
		if !errors.As(err, &cancelled) || res == nil {
			return nil, err
		}
	}
	sres := res.Stream
	return &StreamResult{
		N:           sres.N,
		Shards:      sres.Shards,
		Rounds:      sres.Rounds,
		Arrived:     sres.Arrived,
		Deleted:     sres.Deleted,
		Moved:       sres.Moved,
		Balls:       sres.Balls,
		MaxLoad:     sres.MaxLoad,
		AverageLoad: sres.AvgLoad,
		Deviation:   sres.Deviation,
		ShardBalls:  sres.ShardBalls,
		Checkpoints: checkpointResults(sres.Checkpoints),
		Heights:     heightResults(sres.HeightCounts),
		Loads:       LargeLoads{arr: sres.Array},
	}, err
}
