#!/bin/sh
# bench.sh — run the hot-path benchmark suite and emit BENCH_<N>.json so
# the perf trajectory is tracked across PRs.
#
# Usage: scripts/bench.sh [N]
#   N is the PR index used in the output filename (default 1).
#
# The JSON maps benchmark name -> {ns_per_op, bytes_per_op, allocs_per_op}.
set -eu

cd "$(dirname "$0")/.."

N="${1:-1}"
OUT="BENCH_${N}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkPlace|BenchmarkSimulateSmall|BenchmarkRunLargeSharded' \
	-benchmem -benchtime 1s -count 1 . | tee "$RAW"

awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bytes = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	if (ns != "") {
		results[++n] = sprintf("  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
			name, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs)
	}
}
END {
	print "{"
	for (i = 1; i <= n; i++) printf "%s%s\n", results[i], (i < n ? "," : "")
	print "}"
}
' "$RAW" > "$OUT"

echo "wrote $OUT"
