#!/bin/sh
# bench.sh — run the hot-path benchmark suite and emit BENCH_<N>.json so
# the perf trajectory is tracked across PRs.
#
# Usage: scripts/bench.sh [N]
#   N is the PR index used in the output filename (default 1), or the
#   literal "ci" for the bench-regression CI job (same suite, shorter
#   benchtime, output BENCH_ci.json — never commit that file).
#
# The JSON maps benchmark name -> {ns_per_op, bytes_per_op, allocs_per_op},
# plus a "_topology" entry recording the box the numbers were taken on
# (GOOS/GOARCH, CPU count, GOMAXPROCS) so bench_compare.sh can warn when
# a comparison crosses machines. Missing -benchmem fields are emitted as
# JSON null; the output is always valid JSON (self-checked with
# `jq -e .` when jq is available), including the no-benchmarks-matched
# case.
set -eu

cd "$(dirname "$0")/.."

N="${1:-1}"
OUT="BENCH_${N}.json"
# The ci mode keeps the recorded-baseline benchtime (1s) by default so
# CI numbers are not additionally skewed against the committed
# BENCH_<N>.json by a shorter measurement window.
BENCHTIME="1s"
if [ "$N" = "ci" ]; then
	BENCHTIME="${BENCH_CI_BENCHTIME:-1s}"
fi
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Box topology, recorded alongside the numbers so bench_compare.sh can
# warn when a comparison crosses machines (ns/op is only meaningful
# like-with-like). GOMAXPROCS defaults to the CPU count unless pinned
# via the environment, mirroring the Go runtime's default.
GOOS_V="$(go env GOOS)"
GOARCH_V="$(go env GOARCH)"
NUM_CPU="$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 0)"
GOMAXPROCS_V="${GOMAXPROCS:-$NUM_CPU}"
TOPO="{\"goos\": \"${GOOS_V}\", \"goarch\": \"${GOARCH_V}\", \"num_cpu\": ${NUM_CPU}, \"gomaxprocs\": ${GOMAXPROCS_V}}"

# BenchmarkRouteBalls* (old per-ball routing vs the block-wise
# multinomial pass) lives in internal/sim and the observation-kernel
# suite (BenchmarkObsSnapshot*, scan-vs-histogram at n=10⁶/64 shards)
# in internal/obs, so the suite spans three packages; the awk emitter
# below keys on benchmark lines only and is package-agnostic.
go test -run '^$' -bench 'BenchmarkPlace|BenchmarkSimulateSmall|BenchmarkSimulateLargeCheckpoints|BenchmarkRunLargeSharded|BenchmarkRunLargeMonte|BenchmarkRunStream|BenchmarkClusterTick|BenchmarkRouteBalls|BenchmarkObsSnapshot' \
	-benchmem -benchtime "$BENCHTIME" -count 1 . ./internal/sim ./internal/obs | tee "$RAW"

awk -v topo="$TOPO" '
# jnum renders a benchmark metric as a JSON value: the number itself,
# or null when the field was absent from the line (e.g. -benchmem off).
function jnum(x) {
	if (x == "") {
		return "null"
	}
	return x
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bytes = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	if (ns != "") {
		results[++n] = sprintf("  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
			name, jnum(ns), jnum(bytes), jnum(allocs))
	}
}
END {
	print "{"
	printf "  \"_topology\": %s%s\n", topo, (n > 0 ? "," : "")
	for (i = 1; i <= n; i++) printf "%s%s\n", results[i], (i < n ? "," : "")
	print "}"
}
' "$RAW" > "$OUT"

# Self-check: the emitted file must be valid JSON. Fail the script (and
# any CI job running it) if the emitter ever regresses.
if command -v jq >/dev/null 2>&1; then
	jq -e . "$OUT" >/dev/null || { echo "bench.sh: $OUT is not valid JSON" >&2; exit 1; }
else
	echo "bench.sh: warning: jq not found, skipping JSON self-check" >&2
fi

echo "wrote $OUT"
