#!/bin/sh
# experiments_smoke.sh — run a slice of the figure harness at tiny scale
# through the classic AND sharded engines and diff the table shapes.
#
# The engines draw from different joint laws for d >= 2 (the sharded
# engine is the partitioned relaxation), so values legitimately differ;
# what must NOT differ is the shape of the output: the same figure must
# produce the same TSV files, with identical titles, identical column
# headers and identical row counts, whichever engine ran it. A missing
# file, a dropped row or a renamed column means an engine port broke
# the harness contract.
#
# Usage: scripts/experiments_smoke.sh [path-to-bnbfig]
#   Without an argument the binary is built into a temp dir first.
#
# Figure choice: fig01 (uniform-capacity baseline sweep), fig10
# (heterogeneous capacities) and fig14 (growth sweep — exercises the
# default shard-count heuristic at several n). All three are
# sharded-eligible: no per-repetition ArrayFn and no class tracking.
set -eu

cd "$(dirname "$0")/.."

BNBFIG="${1:-}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
if [ -z "$BNBFIG" ]; then
	BNBFIG="$TMP/bnbfig"
	go build -o "$BNBFIG" ./cmd/bnbfig
fi

FIGS="fig01 fig10 fig14"
REPS=3
SCALE=0.02
SEED=20260808

fail=0
for fig in $FIGS; do
	for engine in classic sharded; do
		dir="$TMP/${fig}_${engine}"
		"$BNBFIG" -fig "$fig" -reps "$REPS" -scale "$SCALE" -seed "$SEED" \
			-engine "$engine" -out "$dir" > /dev/null
	done
	a="$TMP/${fig}_classic"
	b="$TMP/${fig}_sharded"

	# Same file set from both engines.
	(cd "$a" && ls) > "$TMP/files_a"
	(cd "$b" && ls) > "$TMP/files_b"
	if ! diff -u "$TMP/files_a" "$TMP/files_b"; then
		echo "SMOKE FAIL: $fig emits different file sets per engine" >&2
		fail=1
		continue
	fi

	for f in $(cat "$TMP/files_a"); do
		# Shape = title + column-header comment lines plus the row count;
		# data cells are stripped (values legitimately differ for d >= 2,
		# where the sharded engine samples the partitioned relaxation).
		shape() {
			grep '^#' "$1"
			wc -l < "$1"
		}
		shape "$a/$f" > "$TMP/shape_a"
		shape "$b/$f" > "$TMP/shape_b"
		if ! diff -u "$TMP/shape_a" "$TMP/shape_b"; then
			echo "SMOKE FAIL: $fig/$f table shape differs between classic and sharded" >&2
			fail=1
		else
			echo "ok    $fig/$f: same shape ($(wc -l < "$a/$f") lines) on both engines"
		fi
	done
done

if [ "$fail" -ne 0 ]; then
	echo "experiments_smoke.sh: engine ports disagree on table shape" >&2
	exit 1
fi
echo "experiments_smoke.sh: classic and sharded engines agree on all table shapes"
