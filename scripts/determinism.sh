#!/bin/sh
# determinism.sh — byte-compare bnbsim output across worker topologies.
#
# The engines' contract is that Workers only schedules work: for a fixed
# seed the classic Monte-Carlo engine, the sharded single-run engine
# (at each shard count — Shards is part of the model) and the sharded
# Monte-Carlo engine must print byte-identical results for any -workers
# value. Wall-time lines are the only legitimate difference and are
# filtered out before the diff.
#
# Usage: scripts/determinism.sh [path-to-bnbsim]
#   Without an argument the binary is built into a temp dir first.
set -eu

cd "$(dirname "$0")/.."

BNBSIM="${1:-}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
if [ -z "$BNBSIM" ]; then
	BNBSIM="$TMP/bnbsim"
	go build -o "$BNBSIM" ./cmd/bnbsim
fi

# run CMD... : capture output with wall-time lines stripped. bnbsim
# runs as its own statement (not the head of a pipeline) so a non-zero
# exit aborts the script under set -e instead of being masked by grep —
# a failing binary must fail the job, not pass it with empty diffs.
run() {
	out="$1"
	shift
	"$BNBSIM" "$@" > "$out.raw"
	grep -v '^wall time' "$out.raw" > "$out"
}

check() {
	desc="$1"
	shift
	run "$TMP/w1.txt" "$@" -workers 1
	run "$TMP/w4.txt" "$@" -workers 4
	if ! diff -u "$TMP/w1.txt" "$TMP/w4.txt"; then
		echo "DETERMINISM VIOLATION: $desc differs between -workers 1 and -workers 4" >&2
		exit 1
	fi
	echo "ok    $desc"
}

SPEC="2000x1+2000x10"
SEED=20260727
# Checkpoint cuts exercise the observation pipeline: in-range raw and
# NxC cuts plus one beyond m (must print as an unobserved row, not
# vanish), with a bins-at-load>=k table riding along.
CPS="1000,5000,1xC,9xC"

check "classic Monte-Carlo"            -spec "$SPEC" -seed "$SEED" -reps 40
check "classic Monte-Carlo (loads)"    -spec "$SPEC" -seed "$SEED" -reps 10 -loads
check "classic Monte-Carlo (obs)"      -spec "$SPEC" -seed "$SEED" -reps 10 -checkpoints "$CPS" -heights 4
for shards in 1 4; do
	check "sharded single run (shards=$shards)"   -spec "$SPEC" -seed "$SEED" -large -shards "$shards"
	check "sharded single run (obs, shards=$shards)" -spec "$SPEC" -seed "$SEED" -large -shards "$shards" -checkpoints "$CPS" -heights 4
	check "sharded Monte-Carlo (shards=$shards)"  -spec "$SPEC" -seed "$SEED" -large -shards "$shards" -reps 12
	check "sharded Monte-Carlo (obs, shards=$shards)" -spec "$SPEC" -seed "$SEED" -large -shards "$shards" -reps 12 -checkpoints "$CPS" -heights 4
done
check "sharded Monte-Carlo (d=4, loads)" -spec "$SPEC" -seed "$SEED" -large -shards 8 -reps 6 -d 4 -loads

# A routing-heavy spec: m spans several multinomial routing blocks
# (RoutingBlock = 65536), so the block fan-out and merge — not just the
# single-block path — must be worker-independent.
BIGSPEC="100000x1+100000x10"
check "sharded single run (multi-block routing)" -spec "$BIGSPEC" -seed "$SEED" -large -shards 8 -checkpoints "70000,3xC" -heights 3

# Checkpoints must never move a draw: a checkpointed run with the
# observation lines stripped must byte-match the plain run. (The cut
# realisation itself is covered by the across-workers diffs above.)
strip_obs() {
	awk '/^checkpoints:/ { skip=1; next }
	     /^trajectory:/ { skip=1; next }
	     /^bins at load>=k:/ { skip=1; next }
	     /^[a-z]/ { skip=0 }
	     !skip' "$1"
}
run "$TMP/plain.txt" -spec "$SPEC" -seed "$SEED" -large -shards 4
run "$TMP/obs.txt"   -spec "$SPEC" -seed "$SEED" -large -shards 4 -checkpoints "$CPS" -heights 4
strip_obs "$TMP/obs.txt" > "$TMP/obs_stripped.txt"
if ! diff -u "$TMP/plain.txt" "$TMP/obs_stripped.txt"; then
	echo "DETERMINISM VIOLATION: requesting checkpoints changed the final state" >&2
	exit 1
fi
echo "ok    checkpoints never move a draw (sharded single run)"

# Deterministic resume: a sharded Monte-Carlo run interrupted after k
# repetitions (-cancel-after-reps, the timing-free stand-in for SIGINT)
# that persisted its state via -resume, then re-run with the same
# flags, must print a summary byte-identical to the uninterrupted run —
# resume notices go to stderr, so stdout stays comparable. Checked at
# two cancellation points and under different worker counts on each
# side of the interruption (resume state must not leak the topology).
MONTE="-spec $SPEC -seed $SEED -large -shards 4 -reps 12 -checkpoints $CPS -heights 4"
run "$TMP/unint.txt" $MONTE -workers 4
for k in 1 7; do
	rm -f "$TMP/resume.json"
	"$BNBSIM" $MONTE -workers 4 -resume "$TMP/resume.json" -cancel-after-reps "$k" > /dev/null 2> "$TMP/cancel.err"
	if [ ! -f "$TMP/resume.json" ]; then
		echo "RESUME VIOLATION: -cancel-after-reps $k wrote no resume state" >&2
		cat "$TMP/cancel.err" >&2
		exit 1
	fi
	run "$TMP/resumed.txt" $MONTE -workers 2 -resume "$TMP/resume.json"
	if ! diff -u "$TMP/unint.txt" "$TMP/resumed.txt"; then
		echo "RESUME VIOLATION: interrupted-at-$k-then-resumed output differs from uninterrupted run" >&2
		exit 1
	fi
	echo "ok    sharded Monte-Carlo resumed after $k reps == uninterrupted"
done

# Streaming runs: rounds of arrivals, deletions and inter-round
# rebalance must be byte-identical across worker counts at each shard
# count — the round structure, like Shards, is part of the model. The
# checkpoint cuts are ROUND indices here.
STREAM="-spec $SPEC -seed $SEED -stream -rounds 6 -m 3000 -deletions 800 -rebalance-tol 0.2"
for shards in 1 4; do
	check "streaming run (shards=$shards)"      $STREAM -shards "$shards"
	check "streaming run (obs, shards=$shards)" $STREAM -shards "$shards" -checkpoints 2,4,6 -heights 3
done
check "streaming run (schedule)" -spec "$SPEC" -seed "$SEED" -stream -schedule 5000,0,2500 -deletions 1000 -shards 4 -checkpoints 1,3

# Round cuts must never move a draw either: a streaming run with the
# trajectory/heights tables stripped must byte-match the plain run.
run "$TMP/splain.txt" $STREAM -shards 4
run "$TMP/sobs.txt"   $STREAM -shards 4 -checkpoints 2,4,6 -heights 3
strip_obs "$TMP/sobs.txt" > "$TMP/sobs_stripped.txt"
if ! diff -u "$TMP/splain.txt" "$TMP/sobs_stripped.txt"; then
	echo "DETERMINISM VIOLATION: requesting round checkpoints changed the stream" >&2
	exit 1
fi
echo "ok    checkpoints never move a draw (streaming run)"

# Serving runs: the churn-tolerant cluster engine must print
# byte-identical reports across worker counts with every failure-mode
# feature armed at once — scheduled AND stochastic churn (ring
# re-sharding, queue redistribution), timeouts with retries and
# backoff, admission-control shedding — at each shard count. bnbcluster
# prints no wall-clock fields, so the -json report diffs directly.
BNBCLUSTER="$TMP/bnbcluster"
go build -o "$BNBCLUSTER" ./cmd/bnbcluster
crun() {
	out="$1"
	shift
	"$BNBCLUSTER" "$@" > "$out"
}
ccheck() {
	desc="$1"
	shift
	crun "$TMP/cw1.txt" "$@" -workers 1
	crun "$TMP/cw4.txt" "$@" -workers 4
	if ! diff -u "$TMP/cw1.txt" "$TMP/cw4.txt"; then
		echo "DETERMINISM VIOLATION: $desc differs between -workers 1 and -workers 4" >&2
		exit 1
	fi
	echo "ok    $desc"
}
CLUSTER="-spec 800x1+200x10 -arrivals 2000 -ticks 200 -seed $SEED -json \
	-churn down@20:801,up@90:801 -crash-prob 0.003 -recover-prob 0.1 \
	-timeout 6 -retries 2 -backoff 2 -shed 2.5"
for shards in 1 4; do
	ccheck "serving run (churn+retry+shed, shards=$shards)" $CLUSTER -shards "$shards"
done
# Cancellation is part of the contract too: the completed-tick prefix
# of a cancelled run must be worker-independent, and must equal the
# counters of a run whose horizon IS the cancellation point.
ccheck "serving run (cancelled at tick 120)" $CLUSTER -shards 4 -cancel-after-ticks 120
crun "$TMP/cprefix.txt" $CLUSTER -shards 4 -cancel-after-ticks 120 -workers 4
crun "$TMP/cshort.txt" -spec 800x1+200x10 -arrivals 2000 -ticks 120 -seed "$SEED" -json \
	-churn down@20:801,up@90:801 -crash-prob 0.003 -recover-prob 0.1 \
	-timeout 6 -retries 2 -backoff 2 -shed 2.5 -shards 4 -workers 4
# The cancelled report differs only in its "cancelled": true marker and
# the final-state queue-load lines (undefined on a partial).
grep -v '"cancelled"\|"max_queue_load"\|"avg_queue_load"' "$TMP/cprefix.txt" > "$TMP/cprefix_cmp.txt"
grep -v '"cancelled"\|"max_queue_load"\|"avg_queue_load"' "$TMP/cshort.txt" > "$TMP/cshort_cmp.txt"
if ! diff -u "$TMP/cshort_cmp.txt" "$TMP/cprefix_cmp.txt"; then
	echo "DETERMINISM VIOLATION: serving run cancelled at tick 120 differs from a ticks=120 run" >&2
	exit 1
fi
echo "ok    serving run cancelled at tick 120 == ticks=120 run"

echo "all bnbsim and bnbcluster outputs byte-identical across worker counts"
