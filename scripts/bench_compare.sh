#!/bin/sh
# bench_compare.sh — fail when the current benchmark run regresses
# against a committed baseline.
#
# Usage: scripts/bench_compare.sh <baseline.json> <current.json> [tolerance_pct]
#
# Both files are bench.sh output (benchmark -> {ns_per_op, bytes_per_op,
# allocs_per_op}). The script fails when, for any benchmark present in
# BOTH files:
#   - ns_per_op regresses by more than tolerance_pct percent (default 25,
#     also settable via BENCH_TOLERANCE_PCT), or
#   - allocs_per_op increases at all (allocation count is deterministic,
#     so any increase is a real regression, not noise).
# Benchmarks present in only one file WARN and never fail: new
# benchmarks have no baseline to regress against, and retired ones no
# current number — both are expected while the suite grows PR over PR.
#
# When both files carry a "_topology" entry (bench.sh records
# GOOS/GOARCH, CPU count and GOMAXPROCS) and they differ, a warning is
# printed: ns/op comparisons across differing boxes are indicative
# only, not grounds for a verdict. The comparison still runs — the
# allocs/op check remains machine-independent.
set -eu

if [ $# -lt 2 ]; then
	echo "usage: $0 <baseline.json> <current.json> [tolerance_pct]" >&2
	exit 2
fi
BASE="$1"
CUR="$2"
TOL="${3:-${BENCH_TOLERANCE_PCT:-25}}"

command -v jq >/dev/null 2>&1 || { echo "bench_compare.sh: jq is required" >&2; exit 2; }
jq -e . "$BASE" >/dev/null || { echo "bench_compare.sh: $BASE is not valid JSON" >&2; exit 2; }
jq -e . "$CUR" >/dev/null || { echo "bench_compare.sh: $CUR is not valid JSON" >&2; exit 2; }

# Topology check: compare like with like. Older baselines without a
# _topology entry compare as "null" and only warn if the current file
# has one (and vice versa).
base_topo=$(jq -cS '."_topology" // null' "$BASE")
cur_topo=$(jq -cS '."_topology" // null' "$CUR")
if [ "$base_topo" != "$cur_topo" ]; then
	echo "WARN  box topology differs between baseline and current run:"
	echo "WARN    baseline: $base_topo"
	echo "WARN    current:  $cur_topo"
	echo "WARN  ns/op deltas across differing boxes are indicative only"
fi

fail=0
for name in $(jq -r 'keys[] | select(. != "_topology")' "$BASE"); do
	if ! jq -e --arg n "$name" 'has($n)' "$CUR" >/dev/null; then
		echo "WARN  $name: absent from current run (retired benchmark?), not compared"
		continue
	fi
	base_ns=$(jq -r --arg n "$name" '.[$n].ns_per_op // empty' "$BASE")
	cur_ns=$(jq -r --arg n "$name" '.[$n].ns_per_op // empty' "$CUR")
	base_allocs=$(jq -r --arg n "$name" '.[$n].allocs_per_op // empty' "$BASE")
	cur_allocs=$(jq -r --arg n "$name" '.[$n].allocs_per_op // empty' "$CUR")

	if [ -n "$base_ns" ] && [ -n "$cur_ns" ]; then
		if awk -v b="$base_ns" -v c="$cur_ns" -v t="$TOL" \
			'BEGIN { exit !(c > b * (1 + t / 100)) }'; then
			printf 'FAIL  %s: ns/op %s -> %s (> +%s%%)\n' "$name" "$base_ns" "$cur_ns" "$TOL"
			fail=1
			continue
		fi
	fi
	if [ -n "$base_allocs" ] && [ -n "$cur_allocs" ]; then
		if awk -v b="$base_allocs" -v c="$cur_allocs" 'BEGIN { exit !(c > b) }'; then
			printf 'FAIL  %s: allocs/op %s -> %s (any increase fails)\n' "$name" "$base_allocs" "$cur_allocs"
			fail=1
			continue
		fi
	fi
	printf 'ok    %s: ns/op %s -> %s, allocs/op %s -> %s\n' \
		"$name" "${base_ns:-?}" "${cur_ns:-?}" "${base_allocs:-?}" "${cur_allocs:-?}"
done
for name in $(jq -r 'keys[] | select(. != "_topology")' "$CUR"); do
	if ! jq -e --arg n "$name" 'has($n)' "$BASE" >/dev/null; then
		echo "WARN  $name: absent from baseline (new benchmark), not compared"
	fi
done

if [ "$fail" -ne 0 ]; then
	echo "bench_compare.sh: benchmark regression against $BASE (tolerance ${TOL}%)" >&2
	exit 1
fi
echo "bench_compare.sh: no regressions against $BASE (tolerance ${TOL}%)"
