package balls

import (
	"reflect"
	"testing"
)

func TestSimulateLarge(t *testing.T) {
	cfg := LargeConfig{
		Capacities: CapacitiesTwoClass(500, 1, 500, 10),
		Seed:       9,
		Shards:     16,
	}
	res, err := SimulateLarge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 1000 || res.Shards != 16 {
		t.Fatalf("N = %d shards = %d", res.N, res.Shards)
	}
	if res.Balls != 5500 { // m = C default
		t.Fatalf("balls = %d", res.Balls)
	}
	if res.AverageLoad != 1 {
		t.Fatalf("avg load %v", res.AverageLoad)
	}
	var sum int64
	for i := 0; i < res.Loads.N(); i++ {
		sum += res.Loads.Balls(i)
	}
	if sum != res.Balls {
		t.Fatalf("final state holds %d balls, want %d", sum, res.Balls)
	}

	// Workers never changes the outcome.
	cfg.Workers = 4
	res4, err := SimulateLarge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Loads.N(); i++ {
		if res.Loads.Balls(i) != res4.Loads.Balls(i) {
			t.Fatalf("bin %d differs across worker counts", i)
		}
	}
}

func TestMonteCarloLarge(t *testing.T) {
	cfg := MonteLargeConfig{
		LargeConfig: LargeConfig{
			Capacities: CapacitiesTwoClass(500, 1, 500, 10),
			Seed:       9,
			Shards:     16,
		},
		Reps: 12,
	}
	res, err := MonteCarloLarge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 1000 || res.Shards != 16 || res.Reps != 12 {
		t.Fatalf("N = %d shards = %d reps = %d", res.N, res.Shards, res.Reps)
	}
	if res.Balls != 5500 || res.AverageLoad != 1 {
		t.Fatalf("balls = %d avg = %v", res.Balls, res.AverageLoad)
	}
	if res.WorstMaxLoad < res.MeanMaxLoad || res.MeanMaxLoad < res.AverageLoad {
		t.Fatalf("implausible aggregate: worst %v mean %v avg %v",
			res.WorstMaxLoad, res.MeanMaxLoad, res.AverageLoad)
	}

	// Repetition 0 is exactly the SimulateLarge game for the same config.
	single, err := SimulateLarge(cfg.LargeConfig)
	if err != nil {
		t.Fatal(err)
	}
	one := cfg
	one.Reps = 1
	ores, err := MonteCarloLarge(one)
	if err != nil {
		t.Fatal(err)
	}
	if ores.MeanMaxLoad != single.MaxLoad || ores.MeanDeviation != single.Deviation {
		t.Fatalf("Reps=1 diverges from SimulateLarge: %v/%v vs %v/%v",
			ores.MeanMaxLoad, ores.MeanDeviation, single.MaxLoad, single.Deviation)
	}

	// Workers never changes the aggregate.
	w4 := cfg
	w4.Workers = 4
	w4.SortedLoads = true
	res4, err := MonteCarloLarge(w4)
	if err != nil {
		t.Fatal(err)
	}
	w1 := w4
	w1.Workers = 1
	res1, err := MonteCarloLarge(w1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res4) {
		t.Fatalf("workers changed the aggregate:\n  1: %+v\n  4: %+v", res1, res4)
	}
	if len(res4.MeanSortedLoads) != res4.N {
		t.Fatalf("sorted loads length %d, want %d", len(res4.MeanSortedLoads), res4.N)
	}
}

// TestMonteCarloLargeShardStats: the public per-shard aggregates
// carry one observation per repetition, sum to the ball count, and
// stay off unless requested.
func TestMonteCarloLargeShardStats(t *testing.T) {
	cfg := MonteLargeConfig{
		LargeConfig: LargeConfig{
			Capacities: CapacitiesTwoClass(400, 1, 400, 10),
			Seed:       11,
			Shards:     8,
		},
		Reps:       5,
		ShardStats: true,
	}
	res, err := MonteCarloLarge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShardStats) != 8 {
		t.Fatalf("%d shard rows, want 8", len(res.ShardStats))
	}
	var sum float64
	for i, row := range res.ShardStats {
		if row.Shard != i {
			t.Fatalf("row %d has shard index %d", i, row.Shard)
		}
		if row.WorstMaxLoad < row.MeanMaxLoad {
			t.Fatalf("shard %d: worst %v below mean %v", i, row.WorstMaxLoad, row.MeanMaxLoad)
		}
		sum += row.MeanBalls
	}
	if got, want := sum, float64(res.Balls); got < want-1e-6 || got > want+1e-6 {
		t.Fatalf("mean shard balls sum %v, want m = %v", got, want)
	}
	cfg.ShardStats = false
	plain, err := MonteCarloLarge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ShardStats != nil {
		t.Fatal("ShardStats produced without the flag")
	}
}

func TestMonteCarloLargeValidation(t *testing.T) {
	if _, err := MonteCarloLarge(MonteLargeConfig{}); err == nil {
		t.Error("empty capacities accepted")
	}
	if _, err := MonteCarloLarge(MonteLargeConfig{
		LargeConfig: LargeConfig{Capacities: []int64{1, 1}, Shards: 5},
	}); err == nil {
		t.Error("shards > n accepted")
	}
	if _, err := MonteCarloLarge(MonteLargeConfig{
		LargeConfig: LargeConfig{Capacities: []int64{1, 1}},
		Reps:        -1,
	}); err == nil {
		t.Error("negative reps accepted")
	}
}

func TestSimulateLargeValidation(t *testing.T) {
	if _, err := SimulateLarge(LargeConfig{}); err == nil {
		t.Error("empty capacities accepted")
	}
	if _, err := SimulateLarge(LargeConfig{
		Capacities: []int64{1, 1}, Shards: 5,
	}); err == nil {
		t.Error("shards > n accepted")
	}
}
