package balls

import "testing"

func TestSimulateLarge(t *testing.T) {
	cfg := LargeConfig{
		Capacities: CapacitiesTwoClass(500, 1, 500, 10),
		Seed:       9,
		Shards:     16,
	}
	res, err := SimulateLarge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 1000 || res.Shards != 16 {
		t.Fatalf("N = %d shards = %d", res.N, res.Shards)
	}
	if res.Balls != 5500 { // m = C default
		t.Fatalf("balls = %d", res.Balls)
	}
	if res.AverageLoad != 1 {
		t.Fatalf("avg load %v", res.AverageLoad)
	}
	var sum int64
	for i := 0; i < res.Loads.N(); i++ {
		sum += res.Loads.Balls(i)
	}
	if sum != res.Balls {
		t.Fatalf("final state holds %d balls, want %d", sum, res.Balls)
	}

	// Workers never changes the outcome.
	cfg.Workers = 4
	res4, err := SimulateLarge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Loads.N(); i++ {
		if res.Loads.Balls(i) != res4.Loads.Balls(i) {
			t.Fatalf("bin %d differs across worker counts", i)
		}
	}
}

func TestSimulateLargeValidation(t *testing.T) {
	if _, err := SimulateLarge(LargeConfig{}); err == nil {
		t.Error("empty capacities accepted")
	}
	if _, err := SimulateLarge(LargeConfig{
		Capacities: []int64{1, 1}, Shards: 5,
	}); err == nil {
		t.Error("shards > n accepted")
	}
}
