package balls

import "repro/internal/tune"

// TuneResult reports the outcome of OptimizeSelectionExponent.
type TuneResult struct {
	// T is the best exponent found for selection weights ∝ c^T.
	T float64
	// MaxLoad is the mean maximum load at T.
	MaxLoad float64
	// AtProportional is the mean maximum load at T = 1 (the paper's
	// default), for comparison.
	AtProportional float64
	// Evaluations is the number of Monte-Carlo objective evaluations
	// the search spent.
	Evaluations int
}

// OptimizeSelectionExponent searches the exponent range [lo, hi] of the
// power selection family (PowerSelection) for the value minimising the
// mean maximum load with m = C balls and Algorithm 1 (d = 2) — an
// implementation of the paper's closing future-work question. reps is
// the Monte-Carlo budget per evaluation (0 = 500); the search is
// deterministic for a fixed seed (0 = 1).
func OptimizeSelectionExponent(capacities []int64, lo, hi float64, reps int, seed uint64) (*TuneResult, error) {
	res, err := tune.OptimalExponent(capacities, lo, hi, tune.Config{
		Reps: reps,
		Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &TuneResult{
		T:              res.T,
		MaxLoad:        res.MaxLoad,
		AtProportional: res.AtProportional,
		Evaluations:    res.Evaluations,
	}, nil
}
