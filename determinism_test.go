package balls

import (
	"reflect"
	"testing"
)

// TestSimulateBitIdenticalAcrossWorkers pins the engine's parallelism
// contract at the public API: the entire SimResult — every aggregate,
// the mean sorted load vector, every checkpoint — is bit-identical no
// matter how many workers execute the repetitions. Repetition i draws
// from stream (Seed, i) and chunk partials merge in chunk order, so the
// worker count can only change scheduling, never arithmetic.
func TestSimulateBitIdenticalAcrossWorkers(t *testing.T) {
	base := SimConfig{
		Capacities:  CapacitiesTwoClass(40, 1, 40, 10),
		Reps:        25,
		Seed:        7,
		SortedLoads: true,
		Checkpoints: []int64{100, 400},
	}
	var ref *SimResult
	for _, workers := range []int{1, 2, 8} {
		cfg := base
		cfg.Workers = workers
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref, res) {
			t.Fatalf("Workers=%d: SimResult differs from Workers=1:\n  got  %+v\n  want %+v",
				workers, res, ref)
		}
	}
}
