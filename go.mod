module repro

// Kept at the oldest Go release the CI matrix exercises (1.23); the
// code must build on both matrix legs.
go 1.23
