package balls

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bins"
	"repro/internal/sim"
)

// LargeConfig describes one sharded single run: one huge game (n up to
// 10^7 bins) whose bin array is partitioned into contiguous shards that
// place their balls in parallel. See SimulateLarge.
type LargeConfig struct {
	// Capacities of the bin array (required).
	Capacities []int64
	// Balls to place; 0 means BallsFactor·C, or exactly C when
	// BallsFactor is also 0.
	Balls int64
	// BallsFactor scales C into a ball count when Balls is 0 (e.g. 10
	// for the heavily loaded m = 10·C).
	BallsFactor float64
	// Seed is the base seed (default 1). Routing happens in fixed-size
	// routing blocks, block b drawing from substream (Seed, stream 0,
	// b); stream 1+s places shard s.
	Seed uint64
	// Shards is the number of contiguous shards (0 = engine default).
	// It is part of the model: changing it changes the result, exactly
	// like changing Seed.
	Shards int
	// Workers caps parallelism (0 = GOMAXPROCS). It never affects the
	// result, only the wall clock.
	Workers int
	// Distribution and Protocol default to Proportional / Greedy(2).
	Distribution Distribution
	Protocol     Protocol
	// Checkpoints requests running (max − average) observations at the
	// given global ball counts. A sharded run has no global ball
	// order, so a checkpoint at B is realised per shard — the balls
	// among the first B routed to each shard, aligned down to the
	// placement kernel's 256-ball block size — and the realised count
	// (CheckpointResult.MeanBalls <= B) reflects that. The cut rule is
	// part of the model, like Shards: it never depends on Workers, and
	// requesting checkpoints never changes the final state.
	Checkpoints []int64
	// Heights requests, for k = 1..Heights, the number of bins whose
	// final load is at least k.
	Heights int
	// Context, when non-nil, arms cooperative cancellation: the run
	// stops at the next routing-block or placement-block boundary and
	// returns a partial result alongside a *CancelledError. Nil runs
	// to completion.
	Context context.Context
}

// LargeLoads exposes the final state of a sharded run.
type LargeLoads struct {
	arr *bins.Array
}

// LargeResult aggregates one sharded single run.
type LargeResult struct {
	// N is the number of bins, Shards the realised shard count, Balls
	// the number of balls placed.
	N      int
	Shards int
	Balls  int64
	// MaxLoad, AverageLoad and Deviation are the final whole-array
	// statistics (deviation = max − average).
	MaxLoad     float64
	AverageLoad float64
	Deviation   float64
	// ShardBalls[s] is the number of balls routed to shard s.
	ShardBalls []int64
	// Checkpoints holds the run's checkpoint observations (only when
	// requested; Reps is 1 for every realised cut).
	Checkpoints []CheckpointResult
	// Heights holds bins-at-load>=k counts of the final state (only
	// when requested).
	Heights []HeightResult
	// Loads gives read access to the final per-bin state. On a
	// cancelled run whose placement phase never completed, no final
	// state exists and Loads is the zero value (its methods must not
	// be called).
	Loads LargeLoads
}

// Balls returns the final ball count of bin i.
func (l LargeLoads) Balls(i int) int64 { return l.arr.Balls(i) }

// Capacity returns the capacity of bin i.
func (l LargeLoads) Capacity(i int) int64 { return l.arr.Capacity(i) }

// Load returns the final load of bin i.
func (l LargeLoads) Load(i int) float64 { return l.arr.Load(i) }

// N returns the number of bins.
func (l LargeLoads) N() int { return l.arr.N() }

// SimulateLarge runs ONE game at large scale, sharded across workers:
// the bin array splits into cfg.Shards contiguous shards, balls are
// routed to shards with probability proportional to each shard's
// total selection weight — generated block-wise as exact multinomial
// count vectors, one deterministic substream per routing block, never
// ball by ball — and each shard runs the protocol over its own bins
// on its own RNG stream. Each candidate draw has exactly the
// configured marginal distribution; the relaxation is that one ball's
// d choices all land in the same shard. The final state is
// bit-identical for any Workers value — only (Capacities, Balls, Seed,
// Shards, Distribution, Protocol) determine it; routing blocks are
// part of the model, like Shards.
//
// When cfg.Context fires mid-run, SimulateLarge returns a partial
// result alongside a *CancelledError: the leading
// CancelledError.CompletedCuts checkpoint rows, each bit-identical to
// the corresponding row of an uninterrupted run. Final-state fields
// (MaxLoad, Loads, …) are unset on a cancelled partial.
func SimulateLarge(cfg LargeConfig) (*LargeResult, error) {
	if len(cfg.Capacities) == 0 {
		return nil, fmt.Errorf("balls: SimulateLarge needs capacities")
	}
	arr, err := bins.New(cfg.Capacities)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	res, err := sim.RunLarge(sim.LargeConfig{
		Array:       arr,
		Dist:        cfg.Distribution.resolve(),
		Placer:      cfg.Protocol.resolve(),
		Balls:       cfg.Balls,
		BallsFactor: cfg.BallsFactor,
		Seed:        seed,
		Shards:      cfg.Shards,
		Workers:     cfg.Workers,
		ObsOptions: sim.ObsOptions{
			Checkpoints:  cfg.Checkpoints,
			HeightLevels: cfg.Heights,
		},
		// arr is private to this call, so the engine may own it —
		// skipping the clone avoids a second transient O(n) array at
		// n = 10^7.
		AdoptArray: true,
		Context:    cfg.Context,
	})
	if err != nil {
		// Declared inside the branch: errors.As takes the address, and
		// a function-scope declaration would heap-allocate on the
		// happy path too.
		var cancelled *CancelledError
		if !errors.As(err, &cancelled) || res == nil {
			return nil, err
		}
	}
	return &LargeResult{
		N:           res.N,
		Shards:      res.Shards,
		Balls:       res.Balls,
		MaxLoad:     res.MaxLoad,
		AverageLoad: res.AvgLoad,
		Deviation:   res.Deviation,
		ShardBalls:  res.ShardBalls,
		Checkpoints: checkpointResults(res.Checkpoints),
		Heights:     heightResults(res.HeightCounts),
		Loads:       LargeLoads{arr: res.Array},
	}, err
}

// MonteLargeConfig describes a Monte-Carlo aggregate over sharded
// single runs: Reps independent repetitions of the game a LargeConfig
// describes, streamed into summary statistics. See MonteCarloLarge.
type MonteLargeConfig struct {
	LargeConfig
	// Reps is the number of independent repetitions (default 100).
	Reps int
	// Resume continues a previously cancelled run from the ResumeState
	// its CancelledError carried (or ReadResumeState loaded). The rest
	// of the config must describe the same model — Capacities, Balls,
	// Seed, Shards, Checkpoints, Heights, SortedLoads, ShardStats —
	// or MonteCarloLarge rejects the checkpoint. A resumed run's final
	// aggregates are byte-identical to an uninterrupted one.
	Resume *ResumeState
	// CancelAfterReps, when positive, deterministically stops the run
	// after exactly that many repetitions — a timing-free stand-in for
	// an external cancellation (the returned CancelledError has a nil
	// Cause). Zero disables it.
	CancelAfterReps int
	// SortedLoads requests the element-wise mean of the non-increasing
	// sorted load vector across repetitions (one O(n) sort per
	// repetition; the per-repetition vectors are never retained).
	SortedLoads bool
	// ShardStats requests per-shard aggregates across repetitions
	// (balls routed, shard-local final max load) — the imbalance view
	// of the two-level protocol. Costs one O(shard) scan per shard per
	// repetition.
	ShardStats bool
}

// MonteLargeResult aggregates a sharded Monte-Carlo run. Only summary
// statistics are kept — per-repetition bin arrays are discarded as
// soon as each repetition is summarised, so memory stays
// O(min(Workers, Reps) · n), never O(Reps · n).
type MonteLargeResult struct {
	// N is the number of bins, Shards the realised shard count, Reps
	// the number of repetitions aggregated, Balls the balls placed per
	// repetition.
	N      int
	Shards int
	Reps   int
	Balls  int64
	// AverageLoad is m/C (identical in every repetition).
	AverageLoad float64
	// MeanMaxLoad / MaxLoadCI95: final maximum load, mean and 95% CI
	// half-width; WorstMaxLoad is the largest final max load seen in
	// any repetition.
	MeanMaxLoad  float64
	MaxLoadCI95  float64
	WorstMaxLoad float64
	// MeanDeviation / DeviationCI95 aggregate (max − average), the
	// paper's gap.
	MeanDeviation float64
	DeviationCI95 float64
	// MeanSortedLoads is the element-wise mean of the non-increasing
	// load vector (only when SortedLoads was requested).
	MeanSortedLoads []float64
	// Checkpoints holds per-checkpoint aggregates across repetitions
	// (only when requested). Each repetition realises the cuts through
	// its own routing stream, so MeanBalls is an average over
	// block-aligned per-repetition counts.
	Checkpoints []CheckpointResult
	// Heights holds bins-at-load>=k aggregates (only when requested).
	Heights []HeightResult
	// ShardStats holds per-shard routing/load aggregates in shard
	// order (only when requested).
	ShardStats []ShardStatResult
}

// MonteCarloLarge runs cfg.Reps independent sharded games (each as
// SimulateLarge would) and aggregates them, nesting the per-shard
// parallelism of each repetition inside repetition-level parallelism
// on one shared bounded worker pool — the huge-n Monte-Carlo regime
// (n up to 10^7 with hundreds of repetitions) the classic Simulate
// and single-run SimulateLarge engines cannot reach alone.
//
// Repetition 0 consumes exactly the streams of SimulateLarge with the
// same config (Reps = 1 reproduces it bit for bit); repetition rep
// offsets the stream layout by rep·(Shards+1). The aggregate is
// bit-identical for any Workers value; Shards remains part of the
// model, exactly as in SimulateLarge.
//
// When cfg.Context fires (or CancelAfterReps triggers),
// MonteCarloLarge returns the aggregates over the completed-repetition
// prefix alongside a *CancelledError whose Checkpoint resumes the run
// (see MonteLargeConfig.Resume): interrupted-then-resumed aggregates
// are byte-identical to an uninterrupted run's.
func MonteCarloLarge(cfg MonteLargeConfig) (*MonteLargeResult, error) {
	if len(cfg.Capacities) == 0 {
		return nil, fmt.Errorf("balls: MonteCarloLarge needs capacities")
	}
	arr, err := bins.New(cfg.Capacities)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	reps := cfg.Reps
	if reps == 0 {
		reps = 100
	}
	res, err := sim.RunLargeMonte(sim.LargeMonteConfig{
		LargeConfig: sim.LargeConfig{
			Array:       arr,
			Dist:        cfg.Distribution.resolve(),
			Placer:      cfg.Protocol.resolve(),
			Balls:       cfg.Balls,
			BallsFactor: cfg.BallsFactor,
			Seed:        seed,
			Shards:      cfg.Shards,
			Workers:     cfg.Workers,
			ObsOptions: sim.ObsOptions{
				Checkpoints:  cfg.Checkpoints,
				HeightLevels: cfg.Heights,
			},
			// arr is private to this call; adopting it as the master
			// saves one transient O(n) array at n = 10^7.
			AdoptArray: true,
			Context:    cfg.Context,
		},
		Reps:              reps,
		CollectLoadVector: cfg.SortedLoads,
		ShardStats:        cfg.ShardStats,
		Resume:            cfg.Resume,
		CancelAfterReps:   cfg.CancelAfterReps,
	})
	if err != nil {
		// Same heap-allocation dodge as SimulateLarge: errors.As takes
		// the address, so the declaration stays inside the error branch.
		var cancelled *CancelledError
		if !errors.As(err, &cancelled) || res == nil {
			return nil, err
		}
	}
	return &MonteLargeResult{
		N:               res.N,
		Shards:          res.Shards,
		Reps:            res.Reps,
		Balls:           res.Balls,
		AverageLoad:     res.AvgLoad.Mean(),
		MeanMaxLoad:     res.MaxLoad.Mean(),
		MaxLoadCI95:     res.MaxLoad.CI95(),
		WorstMaxLoad:    res.MaxLoad.Max(),
		MeanDeviation:   res.Deviation.Mean(),
		DeviationCI95:   res.Deviation.CI95(),
		MeanSortedLoads: res.MeanSortedLoads,
		Checkpoints:     checkpointResults(res.Checkpoints),
		Heights:         heightResults(res.HeightCounts),
		ShardStats:      shardStatResults(res.ShardStats),
	}, err
}
