package balls

// Public-API tests for the unified observation subsystem:
// checkpoint/height plumbing through Simulate, SimulateLarge and
// MonteCarloLarge.

import (
	"math"
	"reflect"
	"testing"
)

// TestSimulateCheckpointReps: checkpoints beyond m are not silently
// under-recorded — the Reps field exposes the observation count, and
// in-range cuts report MeanBalls == Balls for the classic engine.
func TestSimulateCheckpointReps(t *testing.T) {
	res, err := Simulate(SimConfig{
		Capacities:  CapacitiesUniform(16, 1),
		Balls:       32,
		Reps:        7,
		Checkpoints: []int64{16, 32, 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) != 3 {
		t.Fatalf("%d checkpoints", len(res.Checkpoints))
	}
	for i, cp := range res.Checkpoints[:2] {
		if cp.Reps != 7 {
			t.Fatalf("checkpoint %d observed by %d/7 reps", i, cp.Reps)
		}
		if cp.MeanBalls != float64(cp.Balls) {
			t.Fatalf("classic checkpoint %d realised %v balls, want %d", i, cp.MeanBalls, cp.Balls)
		}
	}
	if cp := res.Checkpoints[2]; cp.Reps != 0 {
		t.Fatalf("unreachable checkpoint observed by %d reps", cp.Reps)
	}
}

// TestSimulateHeights: the public heights table matches a direct
// definition check on a deterministic single-rep run.
func TestSimulateHeights(t *testing.T) {
	res, err := Simulate(SimConfig{
		Capacities:  CapacitiesUniform(64, 1),
		BallsFactor: 3,
		Reps:        10,
		Heights:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Heights) != 4 {
		t.Fatalf("%d height rows", len(res.Heights))
	}
	prev := math.Inf(1)
	for i, h := range res.Heights {
		if h.Level != int64(i+1) {
			t.Fatalf("row %d level %d", i, h.Level)
		}
		if h.MeanBins > prev {
			t.Fatalf("bins at load>=k grew with k: %v -> %v", prev, h.MeanBins)
		}
		prev = h.MeanBins
	}
	// every unit bin holds >= 1 ball on average? no — but with m = 3C
	// the level-1 count must be positive and <= n
	if res.Heights[0].MeanBins <= 0 || res.Heights[0].MeanBins > 64 {
		t.Fatalf("level-1 bins %v out of range", res.Heights[0].MeanBins)
	}
}

// TestSimulateLargeObservations: the sharded single run reports
// realised (block-aligned) checkpoint cuts and final height counts,
// and requesting them does not move the final state.
func TestSimulateLargeObservations(t *testing.T) {
	cfg := LargeConfig{
		Capacities: CapacitiesTwoClass(1000, 1, 1000, 10),
		Seed:       3,
		Shards:     4,
	}
	plain, err := SimulateLarge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoints = []int64{3000, 1 * 11000}
	cfg.Heights = 3
	res, err := SimulateLarge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLoad != plain.MaxLoad || res.Deviation != plain.Deviation {
		t.Fatalf("observations moved the final state: %v/%v vs %v/%v",
			res.MaxLoad, res.Deviation, plain.MaxLoad, plain.Deviation)
	}
	for i := 0; i < plain.Loads.N(); i++ {
		if res.Loads.Balls(i) != plain.Loads.Balls(i) {
			t.Fatalf("bin %d differs with observations requested", i)
		}
	}
	if len(res.Checkpoints) != 2 || len(res.Heights) != 3 {
		t.Fatalf("missing observations: %+v, %+v", res.Checkpoints, res.Heights)
	}
	for _, cp := range res.Checkpoints {
		if cp.Reps != 1 {
			t.Fatalf("single run reported Reps = %d", cp.Reps)
		}
		if int64(cp.MeanBalls)%256 != 0 || cp.MeanBalls > float64(cp.Balls) {
			t.Fatalf("cut at %d realised %v (not block-aligned or too large)", cp.Balls, cp.MeanBalls)
		}
	}
}

// TestMonteCarloLargeObservations: the sharded Monte-Carlo engine
// aggregates checkpoints and heights across repetitions, and with
// Reps = 1 matches SimulateLarge exactly.
func TestMonteCarloLargeObservations(t *testing.T) {
	lc := LargeConfig{
		Capacities:  CapacitiesTwoClass(800, 1, 800, 10),
		Seed:        5,
		Shards:      8,
		Checkpoints: []int64{2000, 8000},
		Heights:     3,
	}
	single, err := SimulateLarge(lc)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := MonteCarloLarge(MonteLargeConfig{LargeConfig: lc, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1.Checkpoints, single.Checkpoints) {
		t.Fatalf("Reps=1 checkpoints differ:\n got  %+v\n want %+v", rep1.Checkpoints, single.Checkpoints)
	}
	for i := range single.Heights {
		if rep1.Heights[i].Level != single.Heights[i].Level ||
			rep1.Heights[i].MeanBins != single.Heights[i].MeanBins {
			t.Fatalf("Reps=1 heights differ:\n got  %+v\n want %+v", rep1.Heights, single.Heights)
		}
	}
	many, err := MonteCarloLarge(MonteLargeConfig{LargeConfig: lc, Reps: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, cp := range many.Checkpoints {
		if cp.Reps != 9 {
			t.Fatalf("checkpoint %d observed by %d/9 reps", i, cp.Reps)
		}
	}
}
