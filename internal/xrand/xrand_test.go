package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

// TestSplitMix64ReferenceVectors checks the first outputs of splitmix64
// for seed 0 and seed 1234567 against the published reference values of
// Steele, Lea and Flood's algorithm (as used by Vigna's seeding code).
func TestSplitMix64ReferenceVectors(t *testing.T) {
	cases := []struct {
		seed uint64
		want []uint64
	}{
		{0, []uint64{
			0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4,
			0x06c45d188009454f, 0xf88bb8a8724c81ec,
		}},
		{1234567, []uint64{
			0x599ed017fb08fc85, 0x2c73f08458540fa5,
			0x883ebce5a3f27c77, 0x3fbef740e9177b3f,
		}},
	}
	for _, c := range cases {
		state := c.seed
		for i, want := range c.want {
			got := SplitMix64(&state)
			if got != want {
				t.Errorf("SplitMix64 seed=%d output %d = %#016x, want %#016x",
					c.seed, i, got, want)
			}
		}
	}
}

// TestXoshiroNonDegenerate ensures seeding never yields the all-zero state
// (which would be a fixed point emitting only zeros).
func TestXoshiroNonDegenerate(t *testing.T) {
	for _, seed := range []uint64{0, 1, 0xffffffffffffffff, 42} {
		r := New(seed)
		if r.s0 == 0 && r.s1 == 0 && r.s2 == 0 && r.s3 == 0 {
			t.Fatalf("seed %d produced all-zero state", seed)
		}
	}
}

// TestDeterminism: same seed, same stream; different seeds, different
// streams (with overwhelming probability).
func TestDeterminism(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
	c, d := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed streams agree on %d of 1000 outputs", same)
	}
}

// TestMix64Distinct: stream derivation must give distinct seeds for
// distinct (seed, index) pairs in a realistic range.
func TestMix64Distinct(t *testing.T) {
	seen := map[uint64]bool{}
	for seed := uint64(0); seed < 8; seed++ {
		for idx := uint64(0); idx < 1024; idx++ {
			v := Mix64(seed, idx)
			if seen[v] {
				t.Fatalf("Mix64 collision at seed=%d idx=%d", seed, idx)
			}
			seen[v] = true
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(7)
	for _, n := range []uint64{1, 2, 3, 10, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

// TestUint64nUniform applies a chi-square goodness-of-fit test over a
// small modulus; the statistic threshold is the 99.9% quantile so the test
// is deterministic (fixed seed) and extremely unlikely to be wrong about a
// correct generator.
func TestUint64nUniform(t *testing.T) {
	const n, samples = 10, 100000
	r := New(20240611)
	var counts [n]int
	for i := 0; i < samples; i++ {
		counts[r.Uint64n(n)]++
	}
	expected := float64(samples) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 99.9% quantile of chi-square with 9 degrees of freedom ~ 27.88.
	if chi2 > 27.88 {
		t.Fatalf("chi-square = %.2f exceeds 27.88; counts = %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const nSamples = 100000
	for i := 0; i < nSamples; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	mean := sum / nSamples
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative value")
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(17)
	const p, nSamples = 0.3, 200000
	hits := 0
	for i := 0; i < nSamples; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / nSamples
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%.1f) frequency %.4f", p, got)
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(23)
	if v := r.Binomial(0, 0.5); v != 0 {
		t.Fatalf("Binomial(0, .5) = %d", v)
	}
	if v := r.Binomial(10, 0); v != 0 {
		t.Fatalf("Binomial(10, 0) = %d", v)
	}
	if v := r.Binomial(10, 1); v != 10 {
		t.Fatalf("Binomial(10, 1) = %d", v)
	}
}

func TestBinomialPanicsOnNegativeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Binomial(-1, .5) did not panic")
		}
	}()
	New(1).Binomial(-1, 0.5)
}

// TestBinomialMoments checks mean and variance of Bin(7, p) — exactly the
// generator the paper's randomised capacities use.
func TestBinomialMoments(t *testing.T) {
	r := New(31)
	const n, p, samples = 7, 3.0 / 7.0, 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < samples; i++ {
		v := float64(r.Binomial(n, p))
		sum += v
		sumSq += v * v
	}
	mean := sum / samples
	variance := sumSq/samples - mean*mean
	wantMean := n * p
	wantVar := n * p * (1 - p)
	if math.Abs(mean-wantMean) > 0.03 {
		t.Fatalf("Binomial mean %.3f, want %.3f", mean, wantMean)
	}
	if math.Abs(variance-wantVar) > 0.05 {
		t.Fatalf("Binomial variance %.3f, want %.3f", variance, wantVar)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(41)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

// TestPermUniformFirstElement: the first element of Perm(4) should be
// uniform over 0..3.
func TestPermUniformFirstElement(t *testing.T) {
	r := New(43)
	var counts [4]int
	const samples = 40000
	for i := 0; i < samples; i++ {
		counts[r.Perm(4)[0]]++
	}
	for v, c := range counts {
		got := float64(c) / samples
		if math.Abs(got-0.25) > 0.02 {
			t.Fatalf("Perm(4)[0] == %d with frequency %.3f", v, got)
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(47)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed element sum: %d -> %d", sum, got)
	}
}

func TestExpPositiveWithUnitMean(t *testing.T) {
	r := New(53)
	sum := 0.0
	const samples = 200000
	for i := 0; i < samples; i++ {
		v := r.Exp()
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("Exp() = %v", v)
		}
		sum += v
	}
	mean := sum / samples
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean %.4f, want 1", mean)
	}
}

func TestJumpDeterministic(t *testing.T) {
	a, b := New(123), New(123)
	a.Jump()
	b.Jump()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Jump is not deterministic")
		}
	}
}

func TestJumpChangesStream(t *testing.T) {
	a, b := New(123), New(123)
	a.Jump()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("jumped stream agrees on %d of 1000 outputs", same)
	}
}

// TestJumpCommutesWithSteps: Jump advances by a fixed count, so
// step-then-jump equals jump-then-step.
func TestJumpCommutesWithSteps(t *testing.T) {
	a, b := New(7), New(7)
	// a: 5 steps then jump; b: jump then 5 steps.
	for i := 0; i < 5; i++ {
		a.Uint64()
	}
	a.Jump()
	b.Jump()
	for i := 0; i < 5; i++ {
		b.Uint64()
	}
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Jump does not commute with stepping")
		}
	}
}

func TestJumpedStreamsUniform(t *testing.T) {
	r := New(99)
	r.Jump()
	var counts [8]int
	const samples = 80000
	for i := 0; i < samples; i++ {
		counts[r.Uint64n(8)]++
	}
	expected := float64(samples) / 8
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 24.32 { // 99.9% quantile, 7 df
		t.Fatalf("jumped stream chi-square %.2f", chi2)
	}
}

// Property: Uint64n(n) < n for arbitrary seeds and moduli.
func TestQuickUint64nInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint64) bool {
		n := nRaw%(1<<32) + 1
		r := New(seed)
		for i := 0; i < 16; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: streams derived with NewStream are reproducible functions of
// (seed, index).
func TestQuickStreamReproducible(t *testing.T) {
	f := func(seed, index uint64) bool {
		a := NewStream(seed, index)
		b := NewStream(seed, index)
		for i := 0; i < 8; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Binomial stays within [0, n].
func TestQuickBinomialRange(t *testing.T) {
	f := func(seed uint64, nRaw uint8, p float64) bool {
		n := int(nRaw % 32)
		pp := math.Mod(math.Abs(p), 1)
		v := New(seed).Binomial(n, pp)
		return v >= 0 && v <= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64n(10007)
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

// TestNewBlockStream pins the two-level substream derivation used by
// the block-wise routing pass: NewBlockStream(seed, index, block) is
// exactly New(Mix64(Mix64(seed, index), block)), distinct blocks give
// distinct streams, and block streams never collide with the plain
// per-index streams of the same seed.
func TestNewBlockStream(t *testing.T) {
	const seed = 99
	seen := map[uint64]string{}
	for index := uint64(0); index < 4; index++ {
		if v := NewStream(seed, index).Uint64(); seen[v] != "" {
			t.Fatalf("stream collision with %s", seen[v])
		} else {
			seen[v] = "stream"
		}
		for block := uint64(0); block < 4; block++ {
			want := New(Mix64(Mix64(seed, index), block))
			got := NewBlockStream(seed, index, block)
			if *got != *want {
				t.Fatalf("(%d,%d): state differs from documented composition", index, block)
			}
			if v := got.Uint64(); seen[v] != "" {
				t.Fatalf("(%d,%d) collides with a %s", index, block, seen[v])
			} else {
				seen[v] = "block stream"
			}
		}
	}
}

// TestRoundWindowStreams pins the round-windowed substream layout the
// streaming engine freezes on top of this package: round r of a run
// with S shards owns the top-level stream indices
// [r·(3S+2), (r+1)·(3S+2)) — arrival routing, S placement streams,
// deletion shard-routing, S deletion streams, S move-out streams —
// and every stream in every window must be distinct, across rounds
// and across the plain single-run layout (whose round-0 window it is).
func TestRoundWindowStreams(t *testing.T) {
	const (
		seed   = 20260808
		shards = 4
		rounds = 6
		k      = 3*shards + 2
	)
	seen := map[uint64][2]uint64{}
	for r := uint64(0); r < rounds; r++ {
		base := r * k
		for j := uint64(0); j < k; j++ {
			v := NewStream(seed, base+j).Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("stream (round %d, offset %d) collides with (round %d, offset %d)",
					r, j, prev[0], prev[1])
			}
			seen[v] = [2]uint64{r, j}
		}
	}
}
