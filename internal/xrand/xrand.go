// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used by every randomised component in this repository.
//
// The generator is xoshiro256++ seeded through splitmix64, the combination
// recommended by Blackman and Vigna. It is not cryptographically secure; it
// is chosen for speed (a handful of ALU ops per 64-bit output), a 2^256-1
// period, and — most importantly for a reproduction — bit-for-bit identical
// streams on every platform and Go release. math/rand's internal generator
// changed across Go versions, which would silently change every experiment;
// this package freezes the stream.
//
// Rand is NOT safe for concurrent use. The simulation engine gives every
// repetition its own Rand derived deterministically from a base seed (see
// NewStream), so parallel runs never share a generator.
package xrand

import (
	"math"
	"math/bits"
)

// SplitMix64 advances the splitmix64 state in *state and returns the next
// output. It is used both for seeding xoshiro and for deriving independent
// per-repetition seeds from (baseSeed, index) pairs.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 returns a well-mixed 64-bit value for the pair (seed, index). Two
// distinct pairs yield streams that are statistically independent for the
// purposes of Monte-Carlo simulation. It is the basis for deterministic
// parallelism: repetition i of an experiment with base seed s always uses
// NewRand(Mix64(s, i)) no matter how many workers run.
func Mix64(seed, index uint64) uint64 {
	s := seed ^ (index+1)*0x9e3779b97f4a7c15
	return SplitMix64(&s)
}

// Rand is a xoshiro256++ pseudo-random number generator.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// New returns a generator seeded from the given seed via splitmix64.
// Any seed, including 0, yields a valid non-degenerate state.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// NewStream returns the generator for stream `index` of base seed `seed`.
// It is shorthand for New(Mix64(seed, index)).
func NewStream(seed, index uint64) *Rand {
	return New(Mix64(seed, index))
}

// NewBlockStream returns the generator for sub-stream `block` of
// stream `index` of base seed `seed`: New(Mix64(Mix64(seed, index),
// block)). It is the two-level derivation used by block-structured
// passes (the sharded engines' routing blocks), chosen so a hot loop
// can hoist base := Mix64(seed, index) and re-seed one reusable Rand
// with Seed(Mix64(base, block)) — the stream-contract tests pin that
// equivalence.
func NewBlockStream(seed, index, block uint64) *Rand {
	return New(Mix64(Mix64(seed, index), block))
}

// Seed resets the generator state from seed using splitmix64, per the
// xoshiro authors' recommendation.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	r.s0 = SplitMix64(&sm)
	r.s1 = SplitMix64(&sm)
	r.s2 = SplitMix64(&sm)
	r.s3 = SplitMix64(&sm)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Uint64n returns a uniform integer in [0, n) using Lemire's nearly
// division-free bounded reduction. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Fast path: multiply-shift with rejection only in the biased band.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a uniform non-negative int64 (63 random bits).
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Binomial returns a sample from Binomial(n, p) by direct simulation of n
// Bernoulli trials. The paper's capacity generator uses n = 7 (capacities
// 1+Bin(7, (c-1)/7)), so the O(n) cost is irrelevant; for general use it
// stays exact for any n at O(n) cost.
func (r *Rand) Binomial(n int, p float64) int {
	if n < 0 {
		panic("xrand: Binomial with n < 0")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	k := 0
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			k++
		}
	}
	return k
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the n elements addressed by swap uniformly at random.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed float64 with rate 1, via
// inversion. Used by the consistent-hashing substrate for arc-gap models.
func (r *Rand) Exp() float64 {
	// 1 - Float64() is in (0, 1], so the log argument is never 0.
	return -math.Log(1 - r.Float64())
}

// jumpPoly is the xoshiro256 jump polynomial: applying Jump advances the
// generator by exactly 2^128 steps.
var jumpPoly = [4]uint64{
	0x180ec6d33cfd0aba, 0xd5a61266f0c9392c,
	0xa9582618e03fc9aa, 0x39abdc4529b1661c,
}

// Jump advances the generator 2^128 steps — far beyond any simulation's
// consumption — giving a mathematically guaranteed non-overlapping
// stream. Mix64-derived streams are the default (cheaper, statistically
// independent); Jump is the belt-and-braces alternative when provable
// disjointness matters.
func (r *Rand) Jump() {
	var s0, s1, s2, s3 uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(uint64(1)<<b) != 0 {
				s0 ^= r.s0
				s1 ^= r.s1
				s2 ^= r.s2
				s3 ^= r.s3
			}
			r.Uint64()
		}
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}
