package stats

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func accFrom(xs ...float64) *Accumulator {
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return &a
}

func TestWelchTIdenticalSamples(t *testing.T) {
	a := accFrom(1, 2, 3, 4, 5)
	tt, df, err := WelchT(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if tt != 0 {
		t.Fatalf("t = %v for identical samples", tt)
	}
	if df <= 0 {
		t.Fatalf("df = %v", df)
	}
}

func TestWelchTSeparatedSamples(t *testing.T) {
	r := xrand.New(1)
	var a, b Accumulator
	for i := 0; i < 500; i++ {
		a.Add(r.Float64())
		b.Add(r.Float64() + 1) // shifted by 1
	}
	tt, _, err := WelchT(&a, &b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tt) < 10 {
		t.Fatalf("|t| = %v for clearly separated samples", math.Abs(tt))
	}
	if tt > 0 {
		t.Fatal("sign: a < b should give negative t")
	}
}

func TestWelchTSameDistribution(t *testing.T) {
	r := xrand.New(7)
	var a, b Accumulator
	for i := 0; i < 2000; i++ {
		a.Add(r.Float64())
		b.Add(r.Float64())
	}
	tt, _, err := WelchT(&a, &b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tt) > 3.29 { // 0.1% two-sided
		t.Fatalf("|t| = %v for same-distribution samples", math.Abs(tt))
	}
}

func TestWelchTErrorsAndDegenerate(t *testing.T) {
	if _, _, err := WelchT(accFrom(1), accFrom(1, 2)); err == nil {
		t.Error("tiny sample accepted")
	}
	// zero variance, equal means
	tt, df, err := WelchT(accFrom(2, 2, 2), accFrom(2, 2))
	if err != nil || tt != 0 || !math.IsInf(df, 1) {
		t.Fatalf("constant equal samples: t=%v df=%v err=%v", tt, df, err)
	}
	// zero variance, different means
	tt, _, err = WelchT(accFrom(2, 2), accFrom(3, 3))
	if err != nil || !math.IsInf(tt, 1) {
		t.Fatalf("constant distinct samples: t=%v err=%v", tt, err)
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	// identical samples → 0
	d, err := KolmogorovSmirnov([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("KS of identical samples = %v", d)
	}
	// disjoint supports → 1
	d, err = KolmogorovSmirnov([]float64{1, 2}, []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("KS of disjoint samples = %v", d)
	}
	if _, err := KolmogorovSmirnov(nil, []float64{1}); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestKSSameDistributionUnderThreshold(t *testing.T) {
	r := xrand.New(9)
	a := make([]float64, 1000)
	b := make([]float64, 1500)
	for i := range a {
		a[i] = r.Float64()
	}
	for i := range b {
		b[i] = r.Float64()
	}
	d, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	thr, err := KSThreshold(len(a), len(b), 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if d > thr {
		t.Fatalf("KS %v above 0.1%% threshold %v for same distribution", d, thr)
	}
}

func TestKSThresholdErrors(t *testing.T) {
	if _, err := KSThreshold(10, 10, 0.5); err == nil {
		t.Error("unsupported alpha accepted")
	}
	if _, err := KSThreshold(0, 10, 0.05); err == nil {
		t.Error("zero sample size accepted")
	}
	t5, _ := KSThreshold(100, 100, 0.05)
	t1, _ := KSThreshold(100, 100, 0.01)
	if t1 <= t5 {
		t.Fatal("stricter alpha should raise the threshold")
	}
}

func TestBinomialPMF(t *testing.T) {
	// Bin(7, 0.5): P[k=3] = 35/128
	got := BinomialPMF(7, 0.5, 3)
	if math.Abs(got-35.0/128.0) > 1e-12 {
		t.Fatalf("PMF = %v, want %v", got, 35.0/128.0)
	}
	// edge cases
	if BinomialPMF(5, 0, 0) != 1 || BinomialPMF(5, 0, 1) != 0 {
		t.Fatal("p = 0 PMF wrong")
	}
	if BinomialPMF(5, 1, 5) != 1 || BinomialPMF(5, 1, 4) != 0 {
		t.Fatal("p = 1 PMF wrong")
	}
	if BinomialPMF(5, 0.5, -1) != 0 || BinomialPMF(5, 0.5, 6) != 0 {
		t.Fatal("out-of-range k PMF wrong")
	}
	// PMF sums to 1
	sum := 0.0
	for k := 0; k <= 20; k++ {
		sum += BinomialPMF(20, 0.3, k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF sums to %v", sum)
	}
}

func TestBinomialCDF(t *testing.T) {
	if got := BinomialCDF(7, 0.5, 7); got != 1 {
		t.Fatalf("CDF at n = %v", got)
	}
	if got := BinomialCDF(7, 0.5, -1); got != 0 {
		t.Fatalf("CDF below 0 = %v", got)
	}
	// median of Bin(7, 0.5) is 3.5: CDF(3) = 0.5
	if got := BinomialCDF(7, 0.5, 3); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CDF(3) = %v", got)
	}
	// monotone
	prev := 0.0
	for k := 0; k <= 7; k++ {
		c := BinomialCDF(7, 0.3, k)
		if c < prev {
			t.Fatalf("CDF not monotone at %d", k)
		}
		prev = c
	}
}

// TestBinomialSamplerMatchesPMF closes the loop: the xrand.Binomial
// sampler's empirical distribution must match BinomialPMF (chi-square).
func TestBinomialSamplerMatchesPMF(t *testing.T) {
	const n, p, samples = 7, 3.0 / 7.0, 200000
	r := xrand.New(31337)
	counts := make([]float64, n+1)
	for i := 0; i < samples; i++ {
		counts[r.Binomial(n, p)]++
	}
	expected := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		expected[k] = samples * BinomialPMF(n, p, k)
	}
	chi2, err := ChiSquare(counts, expected)
	if err != nil {
		t.Fatal(err)
	}
	// 99.9% quantile of chi-square with 7 df ≈ 24.32
	if chi2 > 24.32 {
		t.Fatalf("chi-square %v; sampler does not match PMF", chi2)
	}
}

// TestChiSquareCritical pins the Wilson–Hilferty approximation against
// reference chi-square quantiles (exact to a fraction of a percent for
// the df range the sampler tests use).
func TestChiSquareCritical(t *testing.T) {
	cases := []struct {
		df    int
		alpha float64
		want  float64 // reference quantile
	}{
		{7, 0.001, 24.32},
		{9, 0.001, 27.88},
		{10, 0.05, 18.31},
		{20, 0.01, 37.57},
	}
	for _, c := range cases {
		got, err := ChiSquareCritical(c.df, c.alpha)
		if err != nil {
			t.Fatal(err)
		}
		if rel := (got - c.want) / c.want; rel < -0.01 || rel > 0.01 {
			t.Fatalf("df=%d alpha=%v: %v, reference %v", c.df, c.alpha, got, c.want)
		}
	}
	if _, err := ChiSquareCritical(0, 0.05); err == nil {
		t.Error("df = 0 accepted")
	}
	if _, err := ChiSquareCritical(5, 0.2); err == nil {
		t.Error("unsupported alpha accepted")
	}
}
