// Package stats provides the small statistics toolkit the simulation
// harness and test suite rely on: streaming moments (Welford), summaries,
// quantiles, histograms, ordinary least squares, and chi-square statistics.
//
// Everything is plain float64 computation with no dependencies; the
// numerically sensitive pieces (variance) use Welford's online algorithm
// so that millions of repetitions can be accumulated without catastrophic
// cancellation.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes streaming count/mean/variance/min/max using
// Welford's online algorithm. The zero value is ready to use.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add feeds one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddN feeds an observation with integer multiplicity w ≥ 0.
func (a *Accumulator) AddN(x float64, w int64) {
	for i := int64(0); i < w; i++ {
		a.Add(x)
	}
}

// Merge combines another accumulator into a (parallel reduction), using
// the Chan et al. pairwise update.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	a.mean += delta * float64(b.n) / float64(n)
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// N returns the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the sample mean (NaN when empty).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// Variance returns the unbiased sample variance (NaN for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation (NaN when empty).
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest observation (NaN when empty).
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (a *Accumulator) CI95() float64 { return 1.96 * a.StdErr() }

// AccumulatorState is the exported, serializable snapshot of an
// Accumulator — the checkpoint/resume subsystem persists fold state
// through it. All fields are finite for any sequence of finite Add
// inputs, so JSON (which round-trips float64 exactly but rejects
// NaN/Inf) is a safe carrier.
type AccumulatorState struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// State snapshots the accumulator.
func (a *Accumulator) State() AccumulatorState {
	return AccumulatorState{N: a.n, Mean: a.mean, M2: a.m2, Min: a.min, Max: a.max}
}

// Restore overwrites the accumulator with a snapshot. A restored
// accumulator continues bit-identically: State→Restore→Add(x…) equals
// Add(x…) on the original.
func (a *Accumulator) Restore(st AccumulatorState) {
	a.n, a.mean, a.m2, a.min, a.max = st.N, st.Mean, st.M2, st.Min, st.Max
}

// Summary is a one-shot description of a sample.
type Summary struct {
	N               int64
	Mean, StdDev    float64
	Min, Max        float64
	Median, P5, P95 float64
}

// Describe summarises xs. It does not modify xs.
func Describe(xs []float64) Summary {
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	s := Summary{
		N: acc.N(), Mean: acc.Mean(), StdDev: acc.StdDev(),
		Min: acc.Min(), Max: acc.Max(),
	}
	if len(xs) > 0 {
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		s.Median = quantileSorted(sorted, 0.5)
		s.P5 = quantileSorted(sorted, 0.05)
		s.P95 = quantileSorted(sorted, 0.95)
	} else {
		s.Median, s.P5, s.P95 = math.NaN(), math.NaN(), math.NaN()
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f p5=%.4f med=%.4f p95=%.4f max=%.4f",
		s.N, s.Mean, s.StdDev, s.Min, s.P5, s.Median, s.P95, s.Max)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-width histogram over [Lo, Hi); observations outside
// the range land in the under/overflow counters.
type Histogram struct {
	Lo, Hi    float64
	Counts    []int64
	Underflow int64
	Overflow  int64
	width     float64
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, nbins int) (*Histogram, error) {
	if !(hi > lo) || nbins <= 0 {
		return nil, fmt.Errorf("stats: invalid histogram [%v,%v) with %d bins", lo, hi, nbins)
	}
	return &Histogram{
		Lo: lo, Hi: hi,
		Counts: make([]int64, nbins),
		width:  (hi - lo) / float64(nbins),
	}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		idx := int((x - h.Lo) / h.width)
		if idx >= len(h.Counts) { // float edge
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// Merge adds another histogram's counts into h. The two histograms must
// have identical bounds and bin counts.
func (h *Histogram) Merge(o *Histogram) error {
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Counts) != len(o.Counts) {
		return fmt.Errorf("stats: merging incompatible histograms")
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Underflow += o.Underflow
	h.Overflow += o.Overflow
	return nil
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.width
}

// LinearFit holds an ordinary-least-squares line y = Slope·x + Intercept.
type LinearFit struct {
	Slope, Intercept, R2 float64
}

// Linear fits y = a·x + b by least squares. Requires len(xs) == len(ys)
// and at least two points with distinct x.
func Linear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: mismatched lengths %d, %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("stats: need at least 2 points")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: all x values identical")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1 // perfectly flat data, perfectly fit by a flat line
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// ChiSquare returns the chi-square statistic Σ (obs-exp)²/exp. Expected
// entries must be positive; a mismatch in length is an error.
func ChiSquare(observed []float64, expected []float64) (float64, error) {
	if len(observed) != len(expected) {
		return 0, fmt.Errorf("stats: mismatched lengths %d, %d", len(observed), len(expected))
	}
	chi2 := 0.0
	for i := range observed {
		if expected[i] <= 0 {
			return 0, fmt.Errorf("stats: expected[%d] = %v must be positive", i, expected[i])
		}
		d := observed[i] - expected[i]
		chi2 += d * d / expected[i]
	}
	return chi2, nil
}

// Plateau is a maximal run of consecutive series points whose values
// stay within Tol of the run's running mean — the "horizontally growing
// plateau" phenomenon the paper describes for Figure 6.
type Plateau struct {
	// Start and End are inclusive indices into the series.
	Start, End int
	// Level is the mean value over the run.
	Level float64
}

// Len returns the number of points in the plateau.
func (p Plateau) Len() int { return p.End - p.Start + 1 }

// Plateaus scans ys for maximal runs of at least minLen points that stay
// within tol of their running mean. Runs are greedy and non-overlapping.
func Plateaus(ys []float64, tol float64, minLen int) []Plateau {
	if minLen < 2 {
		minLen = 2
	}
	var out []Plateau
	i := 0
	for i < len(ys) {
		// grow a run starting at i
		sum := ys[i]
		j := i + 1
		for j < len(ys) {
			mean := sum / float64(j-i)
			if math.Abs(ys[j]-mean) > tol {
				break
			}
			sum += ys[j]
			j++
		}
		if j-i >= minLen {
			out = append(out, Plateau{Start: i, End: j - 1, Level: sum / float64(j-i)})
			i = j
		} else {
			i++
		}
	}
	return out
}

// MeanOf returns the arithmetic mean of xs (NaN when empty).
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MaxOf returns the maximum of xs (NaN when empty).
func MaxOf(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
