package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if !math.IsNaN(a.Mean()) || !math.IsNaN(a.Min()) || !math.IsNaN(a.Max()) {
		t.Fatal("empty accumulator should report NaN")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if got := a.Mean(); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	// population variance is 4; sample variance = 32/7.
	if got := a.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v", got)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(3)
	if a.Mean() != 3 || a.Min() != 3 || a.Max() != 3 {
		t.Fatal("single observation stats wrong")
	}
	if !math.IsNaN(a.Variance()) {
		t.Fatal("variance of single observation should be NaN")
	}
}

func TestAccumulatorAddN(t *testing.T) {
	var a, b Accumulator
	a.AddN(2, 3)
	a.AddN(5, 1)
	for _, x := range []float64{2, 2, 2, 5} {
		b.Add(x)
	}
	if a.Mean() != b.Mean() || a.N() != b.N() {
		t.Fatalf("AddN mismatch: %v vs %v", a.Mean(), b.Mean())
	}
}

func TestAccumulatorMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	var whole Accumulator
	for _, x := range xs {
		whole.Add(x)
	}
	var left, right Accumulator
	for _, x := range xs[:4] {
		left.Add(x)
	}
	for _, x := range xs[4:] {
		right.Add(x)
	}
	left.Merge(&right)
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d", left.N())
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-12 {
		t.Fatalf("merged mean %v vs %v", left.Mean(), whole.Mean())
	}
	if math.Abs(left.Variance()-whole.Variance()) > 1e-12 {
		t.Fatalf("merged variance %v vs %v", left.Variance(), whole.Variance())
	}
	if left.Min() != 1 || left.Max() != 10 {
		t.Fatal("merged min/max wrong")
	}
	// merging into empty
	var empty Accumulator
	empty.Merge(&whole)
	if empty.N() != whole.N() || empty.Mean() != whole.Mean() {
		t.Fatal("merge into empty failed")
	}
	// merging empty is a no-op
	before := whole.Mean()
	var e2 Accumulator
	whole.Merge(&e2)
	if whole.Mean() != before {
		t.Fatal("merge of empty changed state")
	}
}

func TestDescribe(t *testing.T) {
	s := Describe([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Describe = %+v", s)
	}
	empty := Describe(nil)
	if empty.N != 0 || !math.IsNaN(empty.Median) {
		t.Fatalf("Describe(nil) = %+v", empty)
	}
	if s.String() == "" {
		t.Fatal("Summary.String empty")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct {
		q, want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	// input must not be reordered
	if xs[0] != 10 {
		t.Error("Quantile mutated input")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Fatalf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Total() != 4 {
		t.Fatalf("Total = %d", h.Total())
	}
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %v", got)
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("degenerate range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, _ := NewHistogram(0, 10, 5)
	b, _ := NewHistogram(0, 10, 5)
	a.Add(1)
	a.Add(11) // overflow
	b.Add(1)
	b.Add(9)
	b.Add(-1) // underflow
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Counts[0] != 2 || a.Counts[4] != 1 {
		t.Fatalf("merged counts %v", a.Counts)
	}
	if a.Overflow != 1 || a.Underflow != 1 {
		t.Fatalf("merged under/over %d/%d", a.Underflow, a.Overflow)
	}
	c, _ := NewHistogram(0, 5, 5)
	if err := a.Merge(c); err == nil {
		t.Error("incompatible merge accepted")
	}
	d, _ := NewHistogram(0, 10, 4)
	if err := a.Merge(d); err == nil {
		t.Error("incompatible bin count accepted")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	fit, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestLinearFitFlat(t *testing.T) {
	fit, err := Linear([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.Intercept != 4 || fit.R2 != 1 {
		t.Fatalf("flat fit = %+v", fit)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := Linear([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Linear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Linear([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("vertical data accepted")
	}
}

func TestChiSquare(t *testing.T) {
	chi2, err := ChiSquare([]float64{12, 8}, []float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(chi2-0.8) > 1e-12 {
		t.Fatalf("chi2 = %v", chi2)
	}
	if _, err := ChiSquare([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ChiSquare([]float64{1}, []float64{0}); err == nil {
		t.Error("zero expected accepted")
	}
}

func TestMeanOfMaxOf(t *testing.T) {
	if got := MeanOf([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("MeanOf = %v", got)
	}
	if got := MaxOf([]float64{1, 7, 3}); got != 7 {
		t.Fatalf("MaxOf = %v", got)
	}
	if !math.IsNaN(MeanOf(nil)) || !math.IsNaN(MaxOf(nil)) {
		t.Fatal("empty should be NaN")
	}
}

func TestPlateaus(t *testing.T) {
	// clear plateau at level 2 between indices 2 and 6
	ys := []float64{3.2, 2.6, 2.02, 1.98, 2.01, 1.99, 2.0, 1.6, 1.3, 1.2}
	ps := Plateaus(ys, 0.05, 3)
	if len(ps) != 1 {
		t.Fatalf("plateaus = %+v", ps)
	}
	p := ps[0]
	if p.Start != 2 || p.End != 6 {
		t.Fatalf("plateau span [%d,%d], want [2,6]", p.Start, p.End)
	}
	if math.Abs(p.Level-2) > 0.02 {
		t.Fatalf("plateau level %v", p.Level)
	}
	if p.Len() != 5 {
		t.Fatalf("plateau length %d", p.Len())
	}
}

func TestPlateausNoneInSteepSeries(t *testing.T) {
	ys := []float64{10, 8, 6, 4, 2, 0}
	if ps := Plateaus(ys, 0.1, 2); len(ps) != 0 {
		t.Fatalf("found plateaus in a steep series: %+v", ps)
	}
}

func TestPlateausWholeSeriesFlat(t *testing.T) {
	ys := []float64{5, 5, 5, 5}
	ps := Plateaus(ys, 0.01, 2)
	if len(ps) != 1 || ps[0].Start != 0 || ps[0].End != 3 {
		t.Fatalf("flat series plateaus = %+v", ps)
	}
}

func TestPlateausMinLenFloor(t *testing.T) {
	// minLen below 2 is clamped to 2
	ys := []float64{1, 1, 9}
	ps := Plateaus(ys, 0.01, 0)
	if len(ps) != 1 || ps[0].Len() != 2 {
		t.Fatalf("plateaus = %+v", ps)
	}
	if ps := Plateaus(nil, 0.1, 2); len(ps) != 0 {
		t.Fatal("plateaus on empty series")
	}
}

// Property: Merge(a, b) equals accumulating the concatenation, for random
// splits.
func TestQuickMergeEquivalence(t *testing.T) {
	f := func(seed uint64, nRaw uint8, splitRaw uint8) bool {
		n := int(nRaw%50) + 2
		r := xrand.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*100 - 50
		}
		split := int(splitRaw) % n
		var whole, left, right Accumulator
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:split] {
			left.Add(x)
		}
		for _, x := range xs[split:] {
			right.Add(x)
		}
		left.Merge(&right)
		if left.N() != whole.N() {
			return false
		}
		tol := 1e-9 * (1 + math.Abs(whole.Mean()))
		if math.Abs(left.Mean()-whole.Mean()) > tol {
			return false
		}
		if whole.N() >= 2 {
			vtol := 1e-7 * (1 + whole.Variance())
			if math.Abs(left.Variance()-whole.Variance()) > vtol {
				return false
			}
		}
		return left.Min() == whole.Min() && left.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		r := xrand.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 10
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
