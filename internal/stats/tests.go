package stats

// Hypothesis-test statistics used by the validation suite: Welch's
// two-sample t statistic, the two-sample Kolmogorov–Smirnov statistic,
// and exact binomial PMF/CDF helpers for checking capacity generators
// and choice distributions against their closed forms.

import (
	"fmt"
	"math"
	"sort"
)

// WelchT returns Welch's t statistic and the Welch–Satterthwaite degrees
// of freedom for two accumulated samples. Callers compare |t| against a
// quantile for the returned df (for the large samples used in this
// repository, the normal quantiles are fine: 1.96 for 5%, 3.29 for 0.1%).
func WelchT(a, b *Accumulator) (t, df float64, err error) {
	if a.N() < 2 || b.N() < 2 {
		return 0, 0, fmt.Errorf("stats: WelchT needs >= 2 observations per sample")
	}
	va := a.Variance() / float64(a.N())
	vb := b.Variance() / float64(b.N())
	if va+vb == 0 {
		if a.Mean() == b.Mean() {
			return 0, math.Inf(1), nil
		}
		return math.Inf(1), math.Inf(1), nil
	}
	t = (a.Mean() - b.Mean()) / math.Sqrt(va+vb)
	num := (va + vb) * (va + vb)
	den := va*va/float64(a.N()-1) + vb*vb/float64(b.N()-1)
	df = num / den
	return t, df, nil
}

// KolmogorovSmirnov returns the two-sample KS statistic
// sup_x |F_a(x) − F_b(x)| of the empirical CDFs. Inputs are not
// modified.
func KolmogorovSmirnov(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("stats: KS needs non-empty samples")
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var d float64
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] < sb[j]:
			i++
		case sb[j] < sa[i]:
			j++
		default:
			// tie: both CDFs jump at this value — consume it entirely on
			// both sides before measuring.
			v := sa[i]
			for i < len(sa) && sa[i] == v {
				i++
			}
			for j < len(sb) && sb[j] == v {
				j++
			}
		}
		diff := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if diff > d {
			d = diff
		}
	}
	return d, nil
}

// KSThreshold returns the asymptotic critical value of the two-sample KS
// statistic at significance alpha ∈ {0.05, 0.01, 0.001}:
// c(alpha)·sqrt((n+m)/(n·m)).
func KSThreshold(n, m int, alpha float64) (float64, error) {
	var c float64
	switch alpha {
	case 0.05:
		c = 1.358
	case 0.01:
		c = 1.628
	case 0.001:
		c = 1.949
	default:
		return 0, fmt.Errorf("stats: unsupported alpha %v", alpha)
	}
	if n <= 0 || m <= 0 {
		return 0, fmt.Errorf("stats: invalid sample sizes %d, %d", n, m)
	}
	return c * math.Sqrt(float64(n+m)/float64(n)/float64(m)), nil
}

// BinomialPMF returns P[Bin(n, p) = k] computed in log space for
// stability.
func BinomialPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n || n < 0 {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	logPmf := logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(logPmf)
}

// BinomialCDF returns P[Bin(n, p) <= k].
func BinomialCDF(n int, p float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	sum := 0.0
	for i := 0; i <= k; i++ {
		sum += BinomialPMF(n, p, i)
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// logChoose returns log(n choose k) via log-gamma (Stirling through
// math.Lgamma).
func logChoose(n, k int) float64 {
	ln1, _ := math.Lgamma(float64(n + 1))
	lk1, _ := math.Lgamma(float64(k + 1))
	lnk1, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk1 - lnk1
}

// ChiSquareCritical returns the upper-alpha critical value of the
// chi-square distribution with df degrees of freedom, for
// alpha ∈ {0.05, 0.01, 0.001}, via the Wilson–Hilferty cube
// approximation — accurate to a fraction of a percent for the df >= 3
// range the sampler goodness-of-fit tests use.
func ChiSquareCritical(df int, alpha float64) (float64, error) {
	if df < 1 {
		return 0, fmt.Errorf("stats: chi-square with df = %d", df)
	}
	var z float64
	switch alpha {
	case 0.05:
		z = 1.6449
	case 0.01:
		z = 2.3263
	case 0.001:
		z = 3.0902
	default:
		return 0, fmt.Errorf("stats: unsupported alpha %v", alpha)
	}
	d := float64(df)
	t := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * t * t * t, nil
}
