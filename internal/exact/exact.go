// Package exact computes exact outcome distributions of small
// balls-into-bins games by enumerating every sequence of random choices
// with its probability. It exists to validate the Monte-Carlo simulator:
// for systems small enough to enumerate (n^d·m paths ≲ 10^7), the
// simulator's empirical frequencies must converge to these exact values.
//
// The enumeration walks the full probability tree: each ball contributes
// n^d weighted choice tuples, and uniform tie-breaks inside Algorithm 1
// split the probability mass further. State sharing (memoisation on the
// multiset of ball counts) keeps common workloads cheap.
package exact

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Game describes the exact game to enumerate: capacities, selection
// weights, d choices, m balls, Algorithm 1 semantics.
type Game struct {
	Capacities []int64
	// Weights are the selection weights (need not be normalised). Nil
	// means capacity-proportional.
	Weights []float64
	D       int
	Balls   int
}

func (g *Game) validate() error {
	if len(g.Capacities) == 0 {
		return fmt.Errorf("exact: no capacities")
	}
	for i, c := range g.Capacities {
		if c < 1 {
			return fmt.Errorf("exact: capacity %d of bin %d", c, i)
		}
	}
	if g.Weights != nil && len(g.Weights) != len(g.Capacities) {
		return fmt.Errorf("exact: %d weights for %d bins", len(g.Weights), len(g.Capacities))
	}
	if g.D < 1 {
		return fmt.Errorf("exact: d = %d", g.D)
	}
	if g.Balls < 0 {
		return fmt.Errorf("exact: m = %d", g.Balls)
	}
	cost := math.Pow(float64(len(g.Capacities)), float64(g.D)) * float64(g.Balls+1)
	if cost > 5e7 {
		return fmt.Errorf("exact: game too large to enumerate (n^d·m = %g)", cost)
	}
	return nil
}

func (g *Game) weights() []float64 {
	if g.Weights != nil {
		return g.Weights
	}
	w := make([]float64, len(g.Capacities))
	for i, c := range g.Capacities {
		w[i] = float64(c)
	}
	return w
}

// Result is the exact outcome distribution.
type Result struct {
	// MaxLoadDist maps each achievable final maximum load to its exact
	// probability (keys rounded to 12 decimals for stable comparison).
	MaxLoadDist map[float64]float64
	// MeanMaxLoad is the exact expectation of the final maximum load.
	MeanMaxLoad float64
	// BinMeanBalls is the exact expected ball count per bin.
	BinMeanBalls []float64
}

// state is a memo key: ball counts joined by commas. Selection weights do
// not change during the game, so ball counts fully determine the future.
type state string

func stateKey(balls []int64) state {
	var sb strings.Builder
	for i, b := range balls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatInt(b, 10))
	}
	return state(sb.String())
}

// Run enumerates the game exactly.
func Run(g Game) (*Result, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	n := len(g.Capacities)
	w := g.weights()
	total := 0.0
	for i, v := range w {
		if v < 0 || v != v {
			return nil, fmt.Errorf("exact: invalid weight %v at %d", v, i)
		}
		total += v
	}
	if total <= 0 {
		return nil, fmt.Errorf("exact: no positive weights")
	}
	probs := make([]float64, n)
	for i, v := range w {
		probs[i] = v / total
	}

	// Distribution over states after each ball, as a map state→prob.
	cur := map[state]float64{stateKey(make([]int64, n)): 1}
	parse := func(s state) []int64 {
		parts := strings.Split(string(s), ",")
		out := make([]int64, len(parts))
		for i, p := range parts {
			v, _ := strconv.ParseInt(p, 10, 64)
			out[i] = v
		}
		return out
	}

	// Pre-enumerate all n^d choice tuples with probabilities.
	type tuple struct {
		bins []int
		p    float64
	}
	var tuples []tuple
	var build func(prefix []int, p float64)
	build = func(prefix []int, p float64) {
		if len(prefix) == g.D {
			bs := make([]int, g.D)
			copy(bs, prefix)
			tuples = append(tuples, tuple{bins: bs, p: p})
			return
		}
		for b := 0; b < n; b++ {
			if probs[b] == 0 {
				continue
			}
			build(append(prefix, b), p*probs[b])
		}
	}
	build(nil, 1)

	for ball := 0; ball < g.Balls; ball++ {
		next := make(map[state]float64, len(cur))
		for s, sp := range cur {
			balls := parse(s)
			for _, t := range tuples {
				winners := algorithm1Winners(g.Capacities, balls, t.bins)
				share := t.p * sp / float64(len(winners))
				for _, wbin := range winners {
					balls[wbin]++
					next[stateKey(balls)] += share
					balls[wbin]--
				}
			}
		}
		cur = next
	}

	res := &Result{
		MaxLoadDist:  map[float64]float64{},
		BinMeanBalls: make([]float64, n),
	}
	for s, sp := range cur {
		balls := parse(s)
		maxLoad := 0.0
		for i, b := range balls {
			l := float64(b) / float64(g.Capacities[i])
			if l > maxLoad {
				maxLoad = l
			}
			res.BinMeanBalls[i] += sp * float64(b)
		}
		key := roundKey(maxLoad)
		res.MaxLoadDist[key] += sp
		res.MeanMaxLoad += sp * maxLoad
	}
	return res, nil
}

func roundKey(v float64) float64 {
	return math.Round(v*1e12) / 1e12
}

// OneBallDistribution returns the exact probability that each bin
// receives the next ball under Algorithm 1, for an arbitrary current
// state: capacities caps, current ball counts balls, selection weights
// (nil = proportional), and d choices. It enumerates all n^d choice
// tuples. Used by the protocol test suite to validate the sampler-driven
// implementation state by state.
func OneBallDistribution(caps, balls []int64, weights []float64, d int) ([]float64, error) {
	n := len(caps)
	if n == 0 || len(balls) != n {
		return nil, fmt.Errorf("exact: %d capacities, %d counts", n, len(balls))
	}
	if d < 1 {
		return nil, fmt.Errorf("exact: d = %d", d)
	}
	if math.Pow(float64(n), float64(d)) > 1e6 {
		return nil, fmt.Errorf("exact: n^d too large to enumerate")
	}
	if weights == nil {
		weights = make([]float64, n)
		for i, c := range caps {
			weights[i] = float64(c)
		}
	}
	if len(weights) != n {
		return nil, fmt.Errorf("exact: %d weights for %d bins", len(weights), n)
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || w != w {
			return nil, fmt.Errorf("exact: invalid weight %v", w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("exact: no positive weights")
	}
	out := make([]float64, n)
	choices := make([]int, d)
	var walk func(pos int, p float64)
	walk = func(pos int, p float64) {
		if pos == d {
			winners := algorithm1Winners(caps, balls, choices)
			share := p / float64(len(winners))
			for _, w := range winners {
				out[w] += share
			}
			return
		}
		for b := 0; b < n; b++ {
			if weights[b] == 0 {
				continue
			}
			choices[pos] = b
			walk(pos+1, p*weights[b]/total)
		}
	}
	walk(0, 1)
	return out, nil
}

// OneBallDistributionStandard is OneBallDistribution for the
// capacity-oblivious Standard protocol: candidates compared by ball
// count only, ties broken uniformly over the distinct tied bins.
func OneBallDistributionStandard(caps, balls []int64, weights []float64, d int) ([]float64, error) {
	n := len(caps)
	if n == 0 || len(balls) != n {
		return nil, fmt.Errorf("exact: %d capacities, %d counts", n, len(balls))
	}
	if d < 1 {
		return nil, fmt.Errorf("exact: d = %d", d)
	}
	if math.Pow(float64(n), float64(d)) > 1e6 {
		return nil, fmt.Errorf("exact: n^d too large to enumerate")
	}
	if weights == nil {
		weights = make([]float64, n)
		for i, c := range caps {
			weights[i] = float64(c)
		}
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("exact: no positive weights")
	}
	out := make([]float64, n)
	choices := make([]int, d)
	var walk func(pos int, p float64)
	walk = func(pos int, p float64) {
		if pos == d {
			winners := standardWinners(balls, choices)
			share := p / float64(len(winners))
			for _, w := range winners {
				out[w] += share
			}
			return
		}
		for b := 0; b < n; b++ {
			if weights[b] == 0 {
				continue
			}
			choices[pos] = b
			walk(pos+1, p*weights[b]/total)
		}
	}
	walk(0, 1)
	return out, nil
}

// standardWinners returns the distinct candidates minimising the ball
// count.
func standardWinners(balls []int64, choices []int) []int {
	var set []int
	for _, b := range choices {
		dup := false
		for _, e := range set {
			if e == b {
				dup = true
				break
			}
		}
		if !dup {
			set = append(set, b)
		}
	}
	winners := set[:1]
	for _, b := range set[1:] {
		switch {
		case balls[b] < balls[winners[0]]:
			winners = append(winners[:0], b)
		case balls[b] == balls[winners[0]]:
			winners = append(winners, b)
		}
	}
	sort.Ints(winners)
	return winners
}

// algorithm1Winners applies Algorithm 1's deterministic filtering to a
// choice tuple and returns the set of bins the final uniform tie-break
// chooses among: dedup the tuple into a set, keep the minimum
// post-allocation load (exact rational comparison), then keep the
// maximum capacity.
func algorithm1Winners(caps, balls []int64, choices []int) []int {
	// set B
	var set []int
	for _, b := range choices {
		dup := false
		for _, e := range set {
			if e == b {
				dup = true
				break
			}
		}
		if !dup {
			set = append(set, b)
		}
	}
	// Bopt: minimal (balls+1)/cap
	opt := set[:1]
	for _, b := range set[1:] {
		cmp := cmpRatio(balls[b]+1, caps[b], balls[opt[0]]+1, caps[opt[0]])
		switch {
		case cmp < 0:
			opt = append(opt[:0], b)
		case cmp == 0:
			opt = append(opt, b)
		}
	}
	// max capacity filter
	maxCap := caps[opt[0]]
	for _, b := range opt[1:] {
		if caps[b] > maxCap {
			maxCap = caps[b]
		}
	}
	var winners []int
	for _, b := range opt {
		if caps[b] == maxCap {
			winners = append(winners, b)
		}
	}
	sort.Ints(winners)
	return winners
}

func cmpRatio(p, q, r, s int64) int {
	lhs, rhs := p*s, r*q
	switch {
	case lhs < rhs:
		return -1
	case lhs > rhs:
		return 1
	default:
		return 0
	}
}
