package exact

import (
	"math"
	"testing"

	"repro/internal/bins"
	"repro/internal/protocol"
	"repro/internal/xrand"
)

func TestValidation(t *testing.T) {
	if _, err := Run(Game{D: 2, Balls: 1}); err == nil {
		t.Error("no capacities accepted")
	}
	if _, err := Run(Game{Capacities: []int64{0}, D: 2, Balls: 1}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := Run(Game{Capacities: []int64{1}, D: 0, Balls: 1}); err == nil {
		t.Error("d = 0 accepted")
	}
	if _, err := Run(Game{Capacities: []int64{1}, D: 2, Balls: -1}); err == nil {
		t.Error("negative balls accepted")
	}
	if _, err := Run(Game{Capacities: []int64{1, 1}, Weights: []float64{1}, D: 2, Balls: 1}); err == nil {
		t.Error("weight length mismatch accepted")
	}
	if _, err := Run(Game{Capacities: make([]int64, 100), D: 4, Balls: 1000}); err == nil {
		t.Error("huge game accepted")
	}
	if _, err := Run(Game{Capacities: []int64{1, 1}, Weights: []float64{0, 0}, D: 2, Balls: 1}); err == nil {
		t.Error("zero weights accepted")
	}
}

// TestSingleBallTwoBins: hand-computed distribution. Two unit bins,
// uniform weights, d = 2, one ball. Choice tuples: (0,0) p=1/4 → bin 0;
// (1,1) p=1/4 → bin 1; (0,1) and (1,0) p=1/4 each → tie on post-load and
// capacity → uniform over {0,1}. Expected balls: 1/2 each; max load 1
// with probability 1.
func TestSingleBallTwoBins(t *testing.T) {
	res, err := Run(Game{Capacities: []int64{1, 1}, Weights: []float64{1, 1}, D: 2, Balls: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BinMeanBalls[0]-0.5) > 1e-12 || math.Abs(res.BinMeanBalls[1]-0.5) > 1e-12 {
		t.Fatalf("BinMeanBalls = %v", res.BinMeanBalls)
	}
	if math.Abs(res.MeanMaxLoad-1) > 1e-12 {
		t.Fatalf("MeanMaxLoad = %v", res.MeanMaxLoad)
	}
	if p := res.MaxLoadDist[1]; math.Abs(p-1) > 1e-12 {
		t.Fatalf("P[max=1] = %v", p)
	}
}

// TestCapacityTieBreakExact: bins of capacity 1 and 4, weights equal,
// one ball, d = 2. Post loads: bin0 1/1 = 1, bin1 1/4. Bin 1 strictly
// wins whenever drawn: tuples (0,0) → bin 0 (p 1/4); all others → bin 1
// (p 3/4).
func TestCapacityTieBreakExact(t *testing.T) {
	res, err := Run(Game{Capacities: []int64{1, 4}, Weights: []float64{1, 1}, D: 2, Balls: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BinMeanBalls[0]-0.25) > 1e-12 {
		t.Fatalf("bin 0 mean = %v, want 0.25", res.BinMeanBalls[0])
	}
	if math.Abs(res.BinMeanBalls[1]-0.75) > 1e-12 {
		t.Fatalf("bin 1 mean = %v, want 0.75", res.BinMeanBalls[1])
	}
	// max load: 1 with p 1/4 (ball in unit bin), else 1/4.
	if p := res.MaxLoadDist[1]; math.Abs(p-0.25) > 1e-12 {
		t.Fatalf("P[max=1] = %v", p)
	}
	if p := res.MaxLoadDist[0.25]; math.Abs(p-0.75) > 1e-12 {
		t.Fatalf("P[max=1/4] = %v", p)
	}
}

// TestExactTieTupleHandComputed: the worked tie case from the protocol
// tests — bin 0 (cap 1, empty), bin 1 (cap 4, 3 balls). Post loads both
// 1 when both drawn; capacity filter keeps bin 1. With uniform weights,
// bin 0 receives the ball only on the (0,0) tuple: p = 1/4. We encode
// the 3 preload balls by weighting the game: weights (0,1) for 3 balls
// then... simpler: enumerate a 4-ball game where bin 1 must win the
// first three (weights force it) is convoluted — instead check via the
// probabilities of a 1-ball game on capacities (1,4) with bin 1
// preloaded using the Balls+initial-state trick below.
func TestExactMatchesSimulatorTieCase(t *testing.T) {
	// Build the preloaded situation through the simulator: since exact.Run
	// starts empty, emulate the preload by a capacity-4 bin that already
	// holds 3 balls — the post-load tie then happens on ball 4 of a pure
	// weight-steered sequence. Easier and fully exact: compare simulator
	// frequencies against exact.Run on the *empty* (1,4) game over 4
	// balls, which exercises the same comparison logic on every step.
	g := Game{Capacities: []int64{1, 4}, Weights: []float64{1, 1}, D: 2, Balls: 4}
	res, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	// probabilities sum to 1
	sum := 0.0
	for _, p := range res.MaxLoadDist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("MaxLoadDist sums to %v", sum)
	}
	// Monte-Carlo comparison with the real protocol implementation.
	const reps = 200000
	arr := bins.MustNew(g.Capacities)
	empirical := map[float64]float64{}
	meanMax := 0.0
	for rep := 0; rep < reps; rep++ {
		arr.Reset()
		r := xrand.NewStream(77, uint64(rep))
		pl, err := protocol.NewGreedy(arr, g.Weights, g.D)
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < g.Balls; b++ {
			pl.Place(arr, r)
		}
		ml := roundKey(arr.MaxLoad())
		empirical[ml] += 1.0 / reps
		meanMax += arr.MaxLoad() / reps
	}
	if math.Abs(meanMax-res.MeanMaxLoad) > 0.01 {
		t.Fatalf("mean max: sim %.5f vs exact %.5f", meanMax, res.MeanMaxLoad)
	}
	for k, pExact := range res.MaxLoadDist {
		if math.Abs(empirical[k]-pExact) > 0.01 {
			t.Fatalf("P[max=%v]: sim %.5f vs exact %.5f", k, empirical[k], pExact)
		}
	}
	for k := range empirical {
		if _, ok := res.MaxLoadDist[k]; !ok && empirical[k] > 0.001 {
			t.Fatalf("simulator produced max load %v the exact model never does", k)
		}
	}
}

// TestExactMatchesSimulatorHeterogeneous cross-validates on a three-bin
// heterogeneous game with proportional weights.
func TestExactMatchesSimulatorHeterogeneous(t *testing.T) {
	g := Game{Capacities: []int64{1, 2, 3}, D: 2, Balls: 6}
	res, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	const reps = 200000
	arr := bins.MustNew(g.Capacities)
	weights := []float64{1, 2, 3}
	var meanMax float64
	binMeans := make([]float64, 3)
	for rep := 0; rep < reps; rep++ {
		arr.Reset()
		r := xrand.NewStream(123, uint64(rep))
		pl, err := protocol.NewGreedy(arr, weights, g.D)
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < g.Balls; b++ {
			pl.Place(arr, r)
		}
		meanMax += arr.MaxLoad() / reps
		for i := 0; i < 3; i++ {
			binMeans[i] += float64(arr.Balls(i)) / reps
		}
	}
	if math.Abs(meanMax-res.MeanMaxLoad) > 0.01 {
		t.Fatalf("mean max: sim %.5f vs exact %.5f", meanMax, res.MeanMaxLoad)
	}
	for i := range binMeans {
		if math.Abs(binMeans[i]-res.BinMeanBalls[i]) > 0.02 {
			t.Fatalf("bin %d mean: sim %.5f vs exact %.5f", i, binMeans[i], res.BinMeanBalls[i])
		}
	}
}

// TestBallConservationExact: expected bin counts sum to m.
func TestBallConservationExact(t *testing.T) {
	g := Game{Capacities: []int64{2, 3, 4}, D: 3, Balls: 5}
	res, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range res.BinMeanBalls {
		sum += v
	}
	if math.Abs(sum-5) > 1e-9 {
		t.Fatalf("expected counts sum to %v, want 5", sum)
	}
}

// TestZeroBalls: empty game.
func TestZeroBalls(t *testing.T) {
	res, err := Run(Game{Capacities: []int64{1, 2}, D: 2, Balls: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanMaxLoad != 0 {
		t.Fatalf("MeanMaxLoad = %v", res.MeanMaxLoad)
	}
	if p := res.MaxLoadDist[0]; math.Abs(p-1) > 1e-12 {
		t.Fatalf("P[max=0] = %v", p)
	}
}

// TestZeroWeightBinNeverReceives: exact model respects zero selection
// weights.
func TestZeroWeightBinNeverReceives(t *testing.T) {
	res, err := Run(Game{
		Capacities: []int64{1, 1, 1},
		Weights:    []float64{0, 1, 1},
		D:          2,
		Balls:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BinMeanBalls[0] != 0 {
		t.Fatalf("zero-weight bin received %v expected balls", res.BinMeanBalls[0])
	}
}

func TestAlgorithm1WinnersUnit(t *testing.T) {
	caps := []int64{1, 1, 4}
	balls := []int64{0, 1, 3}
	// choices {0,2}: post loads 1 vs 1 → tie → capacity filter keeps 2.
	w := algorithm1Winners(caps, balls, []int{0, 2})
	if len(w) != 1 || w[0] != 2 {
		t.Fatalf("winners = %v, want [2]", w)
	}
	// choices {0,1}: post loads 1 vs 2 → bin 0 wins.
	w = algorithm1Winners(caps, balls, []int{0, 1})
	if len(w) != 1 || w[0] != 0 {
		t.Fatalf("winners = %v, want [0]", w)
	}
	// duplicate choice collapses: {1,1} → bin 1.
	w = algorithm1Winners(caps, balls, []int{1, 1})
	if len(w) != 1 || w[0] != 1 {
		t.Fatalf("winners = %v, want [1]", w)
	}
}
