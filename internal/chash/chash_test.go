package chash

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNewRingValidation(t *testing.T) {
	r := xrand.New(1)
	if _, err := NewRing(0, 1, r); err == nil {
		t.Error("n = 0 accepted")
	}
	if _, err := NewRing(5, 0, r); err == nil {
		t.Error("vnodes = 0 accepted")
	}
}

func TestArcLengthsSumToOne(t *testing.T) {
	r := xrand.New(2)
	for _, cfg := range []struct{ n, v int }{{1, 1}, {10, 1}, {100, 4}, {3, 50}} {
		ring, err := NewRing(cfg.n, cfg.v, r)
		if err != nil {
			t.Fatal(err)
		}
		arcs := ring.ArcLengths()
		if len(arcs) != cfg.n {
			t.Fatalf("%d arcs for %d peers", len(arcs), cfg.n)
		}
		sum := 0.0
		for _, a := range arcs {
			if a < 0 {
				t.Fatalf("negative arc %v", a)
			}
			sum += a
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("arcs sum to %v", sum)
		}
	}
}

func TestLookupConsistentWithArcs(t *testing.T) {
	r := xrand.New(3)
	ring, err := NewRing(50, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	// Monte-Carlo: lookup frequencies should approximate arc lengths.
	arcs := ring.ArcLengths()
	counts := make([]float64, ring.N())
	const samples = 200000
	for i := 0; i < samples; i++ {
		counts[ring.Lookup(r.Float64())]++
	}
	for p := 0; p < ring.N(); p++ {
		got := counts[p] / samples
		if math.Abs(got-arcs[p]) > 0.01 {
			t.Fatalf("peer %d: lookup freq %.4f vs arc %.4f", p, got, arcs[p])
		}
	}
}

func TestSinglePeerOwnsEverything(t *testing.T) {
	r := xrand.New(4)
	ring, err := NewRing(1, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if ring.Lookup(r.Float64()) != 0 {
			t.Fatal("single peer does not own everything")
		}
	}
	arcs := ring.ArcLengths()
	if math.Abs(arcs[0]-1) > 1e-9 {
		t.Fatalf("single peer arc = %v", arcs[0])
	}
}

// TestArcImbalanceShrinksWithVnodes: virtual nodes reduce the max/avg arc
// imbalance — the standard consistent-hashing smoothing.
func TestArcImbalanceShrinksWithVnodes(t *testing.T) {
	const n = 200
	avg1, avg32 := 0.0, 0.0
	const reps = 20
	for rep := 0; rep < reps; rep++ {
		r1 := xrand.NewStream(100, uint64(rep))
		r2 := xrand.NewStream(200, uint64(rep))
		ring1, _ := NewRing(n, 1, r1)
		ring32, _ := NewRing(n, 32, r2)
		avg1 += ring1.Stats().MaxOverAvg
		avg32 += ring32.Stats().MaxOverAvg
	}
	avg1 /= reps
	avg32 /= reps
	if avg32 >= avg1 {
		t.Fatalf("vnodes did not reduce imbalance: %v vs %v", avg1, avg32)
	}
	// vnodes = 1 imbalance should be on the order of ln(n) ≈ 5.3; allow a
	// broad band.
	if avg1 < 2 || avg1 > 12 {
		t.Fatalf("vnodes=1 imbalance %v outside sanity band", avg1)
	}
}

// TestDChoiceBeatsSingleChoice: the Byers et al. d-point game must beat
// single-point placement on max load.
func TestDChoiceBeatsSingleChoice(t *testing.T) {
	const n = 300
	var max1, max2 float64
	const reps = 20
	for rep := 0; rep < reps; rep++ {
		r := xrand.NewStream(300, uint64(rep))
		ring, err := NewRing(n, 1, r)
		if err != nil {
			t.Fatal(err)
		}
		l1, err := ring.DChoiceLoads(n, 1, r)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := ring.DChoiceLoads(n, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		max1 += float64(MaxLoad(l1))
		max2 += float64(MaxLoad(l2))
	}
	if max2 >= max1 {
		t.Fatalf("d=2 mean max %v not better than d=1 %v", max2/reps, max1/reps)
	}
}

func TestDChoiceValidation(t *testing.T) {
	r := xrand.New(5)
	ring, _ := NewRing(4, 1, r)
	if _, err := ring.DChoiceLoads(10, 0, r); err == nil {
		t.Error("d = 0 accepted")
	}
}

func TestDChoiceConservesBalls(t *testing.T) {
	r := xrand.New(6)
	ring, _ := NewRing(20, 2, r)
	loads, err := ring.DChoiceLoads(500, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, l := range loads {
		sum += l
	}
	if sum != 500 {
		t.Fatalf("loads sum %d, want 500", sum)
	}
}

func TestMaxLoadHelper(t *testing.T) {
	if MaxLoad([]int64{1, 7, 3}) != 7 {
		t.Fatal("MaxLoad wrong")
	}
	if MaxLoad(nil) != 0 {
		t.Fatal("MaxLoad(nil) != 0")
	}
}

func TestWeightedRingValidation(t *testing.T) {
	r := xrand.New(7)
	if _, err := NewWeightedRing(nil, 1, r); err == nil {
		t.Error("empty capacities accepted")
	}
	if _, err := NewWeightedRing([]int64{1, 0}, 1, r); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewWeightedRing([]int64{1}, 0, r); err == nil {
		t.Error("vnodesPerUnit = 0 accepted")
	}
}

// TestWeightedRingArcShares: with many vnodes per capacity unit, each
// peer's arc share approaches capacity/C.
func TestWeightedRingArcShares(t *testing.T) {
	caps := []int64{1, 1, 4, 4, 10}
	var total int64
	for _, c := range caps {
		total += c
	}
	// average arc shares over several rings to beat single-ring variance
	shares := make([]float64, len(caps))
	const reps = 30
	for rep := 0; rep < reps; rep++ {
		r := xrand.NewStream(500, uint64(rep))
		ring, err := NewWeightedRing(caps, 64, r)
		if err != nil {
			t.Fatal(err)
		}
		arcs := ring.ArcLengths()
		for i, a := range arcs {
			shares[i] += a / reps
		}
	}
	for i, c := range caps {
		want := float64(c) / float64(total)
		if math.Abs(shares[i]-want) > 0.25*want+0.01 {
			t.Fatalf("peer %d (cap %d): arc share %.4f, want ~%.4f", i, c, shares[i], want)
		}
	}
}

// TestWeightedRingGame: the d-point game on a capacity-weighted ring is
// playable and conserves balls.
func TestWeightedRingGame(t *testing.T) {
	r := xrand.New(11)
	ring, err := NewWeightedRing([]int64{1, 2, 3, 4}, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	if ring.N() != 4 {
		t.Fatalf("N = %d", ring.N())
	}
	loads, err := ring.DChoiceLoads(100, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, l := range loads {
		sum += l
	}
	if sum != 100 {
		t.Fatalf("loads sum %d", sum)
	}
}

// Property: lookups always return a valid peer and arcs are a probability
// vector for arbitrary ring shapes.
func TestQuickRingInvariants(t *testing.T) {
	f := func(seed uint64, nRaw, vRaw uint8) bool {
		n := int(nRaw%50) + 1
		v := int(vRaw%4) + 1
		r := xrand.New(seed)
		ring, err := NewRing(n, v, r)
		if err != nil {
			return false
		}
		for i := 0; i < 16; i++ {
			p := ring.Lookup(r.Float64())
			if p < 0 || p >= n {
				return false
			}
		}
		sum := 0.0
		for _, a := range ring.ArcLengths() {
			if a < -1e-12 {
				return false
			}
			sum += a
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLookupBatchParity: LookupBatch resolves every query to exactly
// the peer the serial Lookup returns, whatever the query order.
func TestLookupBatchParity(t *testing.T) {
	ring, err := NewWeightedRing([]int64{3, 1, 4, 1, 5}, 3, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(42)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	// Include wrap-around and boundary-adjacent queries.
	xs = append(xs, 0, 0.9999999, 1e-12)
	out := ring.LookupBatch(xs, nil)
	for i, x := range xs {
		if want := ring.Lookup(x); out[i] != want {
			t.Fatalf("query %d (%v): batch %d, serial %d", i, x, out[i], want)
		}
	}
}

// TestChurnLookupOracle: after RemovePeer(p), every point keeps its
// owner unless it was owned by p — those move to SOME other live peer —
// and AddPeer(p) restores the original ring bit-identically (ownership
// AND arc lengths), because a peer's vnode points are cached, not
// redrawn.
func TestChurnLookupOracle(t *testing.T) {
	ring, err := NewWeightedRing([]int64{2, 3, 4, 5}, 4, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(99)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	origOwner := ring.LookupBatch(xs, nil)
	origOwner = append([]int(nil), origOwner...)
	origArcs := ring.ArcLengths()

	const p = 2
	if err := ring.RemovePeer(p); err != nil {
		t.Fatal(err)
	}
	if ring.NumLive() != 3 || ring.Live(p) {
		t.Fatalf("NumLive/Live after remove: %d/%v", ring.NumLive(), ring.Live(p))
	}
	if got := ring.ArcLengths()[p]; got != 0 {
		t.Fatalf("dead peer's arc length = %v, want 0", got)
	}
	after := ring.LookupBatch(xs, nil)
	for i := range xs {
		switch {
		case origOwner[i] != p && after[i] != origOwner[i]:
			t.Fatalf("query %d moved from live peer %d to %d", i, origOwner[i], after[i])
		case origOwner[i] == p && after[i] == p:
			t.Fatalf("query %d still resolves to the dead peer", i)
		}
	}

	if err := ring.AddPeer(p); err != nil {
		t.Fatal(err)
	}
	restored := ring.LookupBatch(xs, nil)
	for i := range xs {
		if restored[i] != origOwner[i] {
			t.Fatalf("query %d: owner %d after recover, originally %d", i, restored[i], origOwner[i])
		}
	}
	for i, a := range ring.ArcLengths() {
		if a != origArcs[i] {
			t.Fatalf("arc %d = %v after recover, originally %v", i, a, origArcs[i])
		}
	}
}

// TestChurnErrors: the membership operations reject out-of-range,
// double-down, double-up and last-live-peer transitions by name.
func TestChurnErrors(t *testing.T) {
	ring, err := NewRing(2, 3, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ring.RemovePeer(5); err == nil {
		t.Error("out-of-range RemovePeer accepted")
	}
	if err := ring.AddPeer(0); err == nil {
		t.Error("AddPeer of a live peer accepted")
	}
	if err := ring.RemovePeer(0); err != nil {
		t.Fatal(err)
	}
	if err := ring.RemovePeer(0); err == nil {
		t.Error("double RemovePeer accepted")
	}
	if err := ring.RemovePeer(1); err == nil {
		t.Error("last live peer removed")
	}
}

// dchoiceSerial is the pre-batching reference implementation: one
// Lookup per drawn position, in ball order.
func dchoiceSerial(r *Ring, m int64, d int, rng *xrand.Rand) []int64 {
	loads := make([]int64, r.N())
	cand := make([]int, d)
	for b := int64(0); b < m; b++ {
		for j := 0; j < d; j++ {
			cand[j] = r.Lookup(rng.Float64())
		}
		best := cand[0]
		for _, p := range cand[1:] {
			if loads[p] < loads[best] {
				best = p
			}
		}
		loads[best]++
	}
	return loads
}

// TestDChoiceBatchParity: the batched DChoiceLoads is bit-identical to
// the serial per-ball reference — same seed, same loads — including
// across a chunk boundary and after churn. This is the ring-parity
// oracle the cluster engine's dispatch path leans on.
func TestDChoiceBatchParity(t *testing.T) {
	ring, err := NewWeightedRing([]int64{1, 2, 3, 4, 5, 6}, 3, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	check := func(m int64, d int) {
		t.Helper()
		got, err := ring.DChoiceLoads(m, d, xrand.New(77))
		if err != nil {
			t.Fatal(err)
		}
		want := dchoiceSerial(ring, m, d, xrand.New(77))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("m=%d d=%d: peer %d batched %d, serial %d", m, d, i, got[i], want[i])
			}
		}
	}
	check(100, 2)
	check(5000, 2) // spans a chunk boundary (chunk = 4096)
	check(300, 3)
	if err := ring.RemovePeer(3); err != nil {
		t.Fatal(err)
	}
	check(5000, 2) // churned ring: dead peer owns nothing
	loads, err := ring.DChoiceLoads(5000, 2, xrand.New(77))
	if err != nil {
		t.Fatal(err)
	}
	if loads[3] != 0 {
		t.Fatalf("dead peer received %d balls", loads[3])
	}
}
