// Package chash implements the consistent-hashing ring that motivates the
// paper's non-uniform selection probabilities (§1 and §1.1) — and the
// membership substrate of the churn-tolerant cluster engine.
//
// Peers are mapped to random points on the unit ring; a key at position x
// is owned by the first peer point at or after x (wrapping). Each peer's
// total arc length is therefore random, and — as the paper recalls from
// Karger et al. — the maximum arc is a Θ(log n) factor above the average
// arc. Treating arcs as bin selection probabilities turns the d-point
// game of Byers et al. into exactly the kind of non-uniform
// balls-into-bins game the paper generalises, which this package
// demonstrates by exporting the arc vector as selection weights.
//
// # Membership churn
//
// A ring remembers every peer's virtual points forever: the positions are
// drawn once, at construction, and RemovePeer/AddPeer splice a peer's
// points out of and back into the sorted ring incrementally — one
// compaction or merge pass, no re-sort, and crucially no RNG draw, so
// churn is deterministic given the construction seed and a peer that
// crashes and recovers returns to exactly its old points (its keys come
// home). Arc weights are recomputed from the surviving points; a dead
// peer owns no points, so lookups can never land on it and its former
// arcs accrue to its ring successors — the consistent-hashing property
// that only neighbouring shares move under churn.
package chash

import (
	"fmt"
	"sort"

	"repro/internal/xrand"
)

// Ring is a consistent-hashing ring over n peers, each owning a fixed
// set of virtual points drawn at construction. Peers may be live (their
// points are on the ring) or removed (points remembered, not mounted).
type Ring struct {
	n      int
	vnodes int
	points []float64 // sorted positions in [0,1) of LIVE peers' points
	owner  []int32   // peer owning each mounted point
	// peerPts[p] is peer p's fixed, ascending point set — the
	// churn-invariant identity RemovePeer/AddPeer splice with.
	peerPts [][]float64
	live    []bool
	nLive   int
}

// NewRing places n peers with the given number of virtual nodes each at
// positions drawn from r. All peers start live.
func NewRing(n, vnodes int, r *xrand.Rand) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("chash: n = %d", n)
	}
	if vnodes <= 0 {
		return nil, fmt.Errorf("chash: vnodes = %d", vnodes)
	}
	counts := make([]int, n)
	for p := range counts {
		counts[p] = vnodes
	}
	ring, err := build(counts, r)
	if err != nil {
		return nil, err
	}
	ring.vnodes = vnodes
	return ring, nil
}

// NewWeightedRing places peer p with vnodesPerUnit·capacity[p] virtual
// nodes, the standard way to give heterogeneous peers arc shares
// proportional to capacity. Combined with the d-point game this is the
// ring-level equivalent of the paper's capacity-proportional selection:
// the expected arc share of peer p is capacity[p]/ΣC.
func NewWeightedRing(capacities []int64, vnodesPerUnit int, r *xrand.Rand) (*Ring, error) {
	if len(capacities) == 0 {
		return nil, fmt.Errorf("chash: no capacities")
	}
	if vnodesPerUnit <= 0 {
		return nil, fmt.Errorf("chash: vnodesPerUnit = %d", vnodesPerUnit)
	}
	counts := make([]int, len(capacities))
	for i, c := range capacities {
		if c < 1 {
			return nil, fmt.Errorf("chash: capacity %d of peer %d", c, i)
		}
		counts[i] = int(c) * vnodesPerUnit
	}
	ring, err := build(counts, r)
	if err != nil {
		return nil, err
	}
	ring.vnodes = -1 // heterogeneous
	return ring, nil
}

// build draws counts[p] points for every peer IN PEER ORDER (the draw
// sequence is part of the model), caches each peer's ascending point
// set, and mounts everything sorted.
func build(counts []int, r *xrand.Rand) (*Ring, error) {
	n := len(counts)
	total := 0
	for _, c := range counts {
		total += c
	}
	ring := &Ring{
		n:       n,
		points:  make([]float64, total),
		owner:   make([]int32, total),
		peerPts: make([][]float64, n),
		live:    make([]bool, n),
		nLive:   n,
	}
	type pv struct {
		pos   float64
		owner int32
	}
	pvs := make([]pv, 0, total)
	flat := make([]float64, total) // one backing array for every peer's cache
	off := 0
	for p := 0; p < n; p++ {
		pts := flat[off : off+counts[p] : off+counts[p]]
		off += counts[p]
		for v := range pts {
			pts[v] = r.Float64()
			pvs = append(pvs, pv{pos: pts[v], owner: int32(p)})
		}
		sort.Float64s(pts)
		ring.peerPts[p] = pts
		ring.live[p] = true
	}
	sort.Slice(pvs, func(i, j int) bool { return pvs[i].pos < pvs[j].pos })
	for i, e := range pvs {
		ring.points[i] = e.pos
		ring.owner[i] = e.owner
	}
	return ring, nil
}

// N returns the number of peers (live or not).
func (r *Ring) N() int { return r.n }

// NumLive returns the number of live peers.
func (r *Ring) NumLive() int { return r.nLive }

// Live reports whether peer p is currently mounted on the ring.
func (r *Ring) Live(p int) bool { return r.live[p] }

// RemovePeer unmounts peer p's points — one compaction pass over the
// sorted ring, no re-sort, no RNG. The last live peer cannot be
// removed: an empty ring owns nothing and Lookup would be undefined.
func (r *Ring) RemovePeer(p int) error {
	if p < 0 || p >= r.n {
		return fmt.Errorf("chash: RemovePeer(%d) of %d peers", p, r.n)
	}
	if !r.live[p] {
		return fmt.Errorf("chash: RemovePeer(%d): peer is not live", p)
	}
	if r.nLive == 1 {
		return fmt.Errorf("chash: RemovePeer(%d) would empty the ring", p)
	}
	k := 0
	for i := range r.points {
		if r.owner[i] == int32(p) {
			continue
		}
		r.points[k] = r.points[i]
		r.owner[k] = r.owner[i]
		k++
	}
	r.points = r.points[:k]
	r.owner = r.owner[:k]
	r.live[p] = false
	r.nLive--
	return nil
}

// AddPeer re-mounts peer p's remembered points — one backwards
// in-place merge of its ascending cached set into the sorted ring, no
// re-sort, no RNG. A peer that crashes and recovers therefore returns
// to exactly the points it held before, bit for bit.
func (r *Ring) AddPeer(p int) error {
	if p < 0 || p >= r.n {
		return fmt.Errorf("chash: AddPeer(%d) of %d peers", p, r.n)
	}
	if r.live[p] {
		return fmt.Errorf("chash: AddPeer(%d): peer is already live", p)
	}
	pts := r.peerPts[p]
	old := len(r.points)
	total := old + len(pts)
	if cap(r.points) >= total {
		r.points = r.points[:total]
		r.owner = r.owner[:total]
	} else {
		np := make([]float64, total)
		no := make([]int32, total)
		copy(np, r.points)
		copy(no, r.owner)
		r.points, r.owner = np, no
	}
	i, k := old-1, total-1
	for j := len(pts) - 1; j >= 0; k-- {
		if i >= 0 && r.points[i] > pts[j] {
			r.points[k] = r.points[i]
			r.owner[k] = r.owner[i]
			i--
		} else {
			r.points[k] = pts[j]
			r.owner[k] = int32(p)
			j--
		}
	}
	r.live[p] = true
	r.nLive++
	return nil
}

// Lookup returns the peer owning position x in [0,1): the peer of the
// first point at or after x, wrapping around.
func (r *Ring) Lookup(x float64) int {
	i := sort.SearchFloat64s(r.points, x)
	if i == len(r.points) {
		i = 0
	}
	return int(r.owner[i])
}

// LookupBatch resolves many positions at once: the queries are sorted
// once and resolved in a single merge pass against the sorted ring —
// O(P + Q + Q·log Q) for Q queries over P points instead of Q binary
// searches — writing each query's owner to the matching out slot.
// Results are exactly Lookup's, element for element. out is reused
// when it has the capacity; the filled slice is returned.
func (r *Ring) LookupBatch(xs []float64, out []int) []int {
	if cap(out) < len(xs) {
		out = make([]int, len(xs))
	}
	out = out[:len(xs)]
	if len(xs) == 0 {
		return out
	}
	order := make([]int32, len(xs))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return xs[order[a]] < xs[order[b]] })
	i := 0
	for _, q := range order {
		x := xs[q]
		for i < len(r.points) && r.points[i] < x {
			i++
		}
		if i == len(r.points) {
			out[q] = int(r.owner[0]) // wrap, like Lookup
			continue
		}
		out[q] = int(r.owner[i])
	}
	return out
}

// ArcLengths returns each peer's total owned arc length; the entries
// sum to 1 and removed peers hold 0. The arc ending at point i (owned
// by peer owner[i]) starts at the previous point.
func (r *Ring) ArcLengths() []float64 {
	return r.ArcLengthsInto(nil)
}

// ArcLengthsInto fills dst (grown if needed) with the per-peer arc
// lengths — the allocation-free variant the cluster engine calls on
// every churn event.
func (r *Ring) ArcLengthsInto(dst []float64) []float64 {
	if cap(dst) < r.n {
		dst = make([]float64, r.n)
	}
	dst = dst[:r.n]
	clear(dst)
	for i := range r.points {
		prev := 0.0
		if i == 0 {
			// wrap-around arc: from the last point to 1, plus 0 to points[0]
			prev = r.points[len(r.points)-1] - 1
		} else {
			prev = r.points[i-1]
		}
		dst[r.owner[i]] += r.points[i] - prev
	}
	return dst
}

// ArcStats summarises the arc length distribution.
type ArcStats struct {
	Min, Max, Avg float64
	// MaxOverAvg is the imbalance factor the paper quotes as Θ(log n)
	// for vnodes = 1.
	MaxOverAvg float64
}

// Stats computes arc statistics for the ring (over all peers,
// including removed ones, whose arcs are 0).
func (r *Ring) Stats() ArcStats {
	arcs := r.ArcLengths()
	st := ArcStats{Min: arcs[0], Max: arcs[0]}
	sum := 0.0
	for _, a := range arcs {
		if a < st.Min {
			st.Min = a
		}
		if a > st.Max {
			st.Max = a
		}
		sum += a
	}
	st.Avg = sum / float64(r.n)
	st.MaxOverAvg = st.Max / st.Avg
	return st
}

// dchoiceChunk is the number of balls whose positions DChoiceLoads
// pre-draws and batch-resolves per chunk: big enough to amortise the
// batch sort against per-ball binary searches, small enough that the
// scratch stays cache-resident.
const dchoiceChunk = 4096

// DChoiceLoads plays the Byers et al. d-point game: m balls each draw d
// uniform ring positions, look up the owning peers, and commit to a peer
// currently holding the fewest balls (ties to the first drawn). It
// returns the final ball counts per peer.
//
// Positions are pre-drawn in ball order and resolved chunk-wise through
// LookupBatch — lookups consume no randomness and never read the loads,
// so the batched pass is bit-identical to the serial per-ball original
// (pinned by TestDChoiceBatchParity).
func (r *Ring) DChoiceLoads(m int64, d int, rng *xrand.Rand) ([]int64, error) {
	if d < 1 {
		return nil, fmt.Errorf("chash: d = %d", d)
	}
	loads := make([]int64, r.n)
	chunk := int64(dchoiceChunk)
	xs := make([]float64, 0, chunk*int64(d))
	var owners []int
	for b := int64(0); b < m; b += chunk {
		balls := chunk
		if left := m - b; balls > left {
			balls = left
		}
		xs = xs[:balls*int64(d)]
		for i := range xs {
			xs[i] = rng.Float64()
		}
		owners = r.LookupBatch(xs, owners)
		for i := int64(0); i < balls; i++ {
			cand := owners[i*int64(d) : (i+1)*int64(d)]
			best := cand[0]
			for _, p := range cand[1:] {
				if loads[p] < loads[best] {
					best = p
				}
			}
			loads[best]++
		}
	}
	return loads, nil
}

// MaxLoad returns the maximum entry of loads.
func MaxLoad(loads []int64) int64 {
	var max int64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}
