// Package chash implements the consistent-hashing ring that motivates the
// paper's non-uniform selection probabilities (§1 and §1.1).
//
// Peers are mapped to random points on the unit ring; a key at position x
// is owned by the first peer point at or after x (wrapping). Each peer's
// total arc length is therefore random, and — as the paper recalls from
// Karger et al. — the maximum arc is a Θ(log n) factor above the average
// arc. Treating arcs as bin selection probabilities turns the d-point
// game of Byers et al. into exactly the kind of non-uniform
// balls-into-bins game the paper generalises, which this package
// demonstrates by exporting the arc vector as selection weights.
package chash

import (
	"fmt"
	"sort"

	"repro/internal/xrand"
)

// Ring is a consistent-hashing ring with n peers, each owning vnodes
// virtual points.
type Ring struct {
	n      int
	vnodes int
	points []float64 // sorted positions in [0,1)
	owner  []int32   // peer owning each point
}

// NewRing places n peers with the given number of virtual nodes each at
// positions drawn from r.
func NewRing(n, vnodes int, r *xrand.Rand) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("chash: n = %d", n)
	}
	if vnodes <= 0 {
		return nil, fmt.Errorf("chash: vnodes = %d", vnodes)
	}
	total := n * vnodes
	ring := &Ring{
		n:      n,
		vnodes: vnodes,
		points: make([]float64, total),
		owner:  make([]int32, total),
	}
	type pv struct {
		pos   float64
		owner int32
	}
	pvs := make([]pv, total)
	for p := 0; p < n; p++ {
		for v := 0; v < vnodes; v++ {
			pvs[p*vnodes+v] = pv{pos: r.Float64(), owner: int32(p)}
		}
	}
	sort.Slice(pvs, func(i, j int) bool { return pvs[i].pos < pvs[j].pos })
	for i, e := range pvs {
		ring.points[i] = e.pos
		ring.owner[i] = e.owner
	}
	return ring, nil
}

// N returns the number of peers.
func (r *Ring) N() int { return r.n }

// Lookup returns the peer owning position x in [0,1): the peer of the
// first point at or after x, wrapping around.
func (r *Ring) Lookup(x float64) int {
	i := sort.SearchFloat64s(r.points, x)
	if i == len(r.points) {
		i = 0
	}
	return int(r.owner[i])
}

// ArcLengths returns each peer's total owned arc length; the entries sum
// to 1. The arc ending at point i (owned by peer owner[i]) starts at the
// previous point.
func (r *Ring) ArcLengths() []float64 {
	arcs := make([]float64, r.n)
	for i := range r.points {
		prev := 0.0
		if i == 0 {
			// wrap-around arc: from the last point to 1, plus 0 to points[0]
			prev = r.points[len(r.points)-1] - 1
		} else {
			prev = r.points[i-1]
		}
		arcs[r.owner[i]] += r.points[i] - prev
	}
	return arcs
}

// ArcStats summarises the arc length distribution.
type ArcStats struct {
	Min, Max, Avg float64
	// MaxOverAvg is the imbalance factor the paper quotes as Θ(log n)
	// for vnodes = 1.
	MaxOverAvg float64
}

// Stats computes arc statistics for the ring.
func (r *Ring) Stats() ArcStats {
	arcs := r.ArcLengths()
	st := ArcStats{Min: arcs[0], Max: arcs[0]}
	sum := 0.0
	for _, a := range arcs {
		if a < st.Min {
			st.Min = a
		}
		if a > st.Max {
			st.Max = a
		}
		sum += a
	}
	st.Avg = sum / float64(r.n)
	st.MaxOverAvg = st.Max / st.Avg
	return st
}

// DChoiceLoads plays the Byers et al. d-point game: m balls each draw d
// uniform ring positions, look up the owning peers, and commit to a peer
// currently holding the fewest balls (ties to the first drawn). It
// returns the final ball counts per peer.
func (r *Ring) DChoiceLoads(m int64, d int, rng *xrand.Rand) ([]int64, error) {
	if d < 1 {
		return nil, fmt.Errorf("chash: d = %d", d)
	}
	loads := make([]int64, r.n)
	for b := int64(0); b < m; b++ {
		best := -1
		for j := 0; j < d; j++ {
			p := r.Lookup(rng.Float64())
			if best == -1 || loads[p] < loads[best] {
				best = p
			}
		}
		loads[best]++
	}
	return loads, nil
}

// MaxLoad returns the maximum entry of loads.
func MaxLoad(loads []int64) int64 {
	var max int64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// NewWeightedRing places peer p with vnodesPerUnit·capacity[p] virtual
// nodes, the standard way to give heterogeneous peers arc shares
// proportional to capacity. Combined with the d-point game this is the
// ring-level equivalent of the paper's capacity-proportional selection:
// the expected arc share of peer p is capacity[p]/ΣC.
func NewWeightedRing(capacities []int64, vnodesPerUnit int, r *xrand.Rand) (*Ring, error) {
	if len(capacities) == 0 {
		return nil, fmt.Errorf("chash: no capacities")
	}
	if vnodesPerUnit <= 0 {
		return nil, fmt.Errorf("chash: vnodesPerUnit = %d", vnodesPerUnit)
	}
	total := 0
	for i, c := range capacities {
		if c < 1 {
			return nil, fmt.Errorf("chash: capacity %d of peer %d", c, i)
		}
		total += int(c) * vnodesPerUnit
	}
	ring := &Ring{
		n:      len(capacities),
		vnodes: -1, // heterogeneous
		points: make([]float64, 0, total),
		owner:  make([]int32, 0, total),
	}
	type pv struct {
		pos   float64
		owner int32
	}
	pvs := make([]pv, 0, total)
	for p, c := range capacities {
		for v := int64(0); v < c*int64(vnodesPerUnit); v++ {
			pvs = append(pvs, pv{pos: r.Float64(), owner: int32(p)})
		}
	}
	sort.Slice(pvs, func(i, j int) bool { return pvs[i].pos < pvs[j].pos })
	for _, e := range pvs {
		ring.points = append(ring.points, e.pos)
		ring.owner = append(ring.owner, e.owner)
	}
	return ring, nil
}
