// Package loadvec implements the load-vector machinery of Section 2 of the
// paper: normalised load vectors, slot load vectors with the round-robin
// filling rule, the slot tie-breaking order, and majorisation.
//
// These are analytical tools — the allocation protocol is entirely unaware
// of slots — but they make Lemma 1 (the unit-bin domination argument)
// checkable by direct simulation, which the test suite does.
package loadvec

import (
	"fmt"
	"sort"

	"repro/internal/bins"
)

// Normalized returns a copy of v sorted in non-increasing order (the
// paper's "normalised load vector" L̄).
func Normalized(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// Majorizes reports whether u majorises v (u ≽ v): for every prefix k,
// the sum of the k largest entries of u is at least that of v. The paper
// (Definition 1) compares vectors of equal length; an error is returned
// otherwise.
func Majorizes(u, v []float64) (bool, error) {
	if len(u) != len(v) {
		return false, fmt.Errorf("loadvec: majorisation needs equal lengths, got %d and %d", len(u), len(v))
	}
	un, vn := Normalized(u), Normalized(v)
	const eps = 1e-9
	su, sv := 0.0, 0.0
	for i := range un {
		su += un[i]
		sv += vn[i]
		if su < sv-eps {
			return false, nil
		}
	}
	return true, nil
}

// MajorizesInt is Majorizes for integer vectors (slot load vectors), with
// exact arithmetic.
func MajorizesInt(u, v []int64) (bool, error) {
	if len(u) != len(v) {
		return false, fmt.Errorf("loadvec: majorisation needs equal lengths, got %d and %d", len(u), len(v))
	}
	un := normalizedInt(u)
	vn := normalizedInt(v)
	var su, sv int64
	for i := range un {
		su += un[i]
		sv += vn[i]
		if su < sv {
			return false, nil
		}
	}
	return true, nil
}

func normalizedInt(v []int64) []int64 {
	out := make([]int64, len(v))
	copy(out, v)
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// Slot identifies one unit-sized slot of a bin array: the owning bin and
// the number of balls the round-robin rule assigns to this slot.
type Slot struct {
	Bin  int   // owning bin index
	Load int64 // balls in this slot under round-robin filling
}

// SlotVector is the paper's slot load vector S: every bin of capacity c
// contributes c unit slots; a bin with m balls fills its first (m mod c)
// slots with ⌈m/c⌉ balls and the rest with ⌊m/c⌋.
type SlotVector struct {
	slots []Slot
	arr   *bins.Array // retained for tie-breaking by bin load
}

// Build constructs the slot vector of the current state of a.
func Build(a *bins.Array) *SlotVector {
	sv := &SlotVector{arr: a, slots: make([]Slot, 0, a.TotalCapacity())}
	for i := 0; i < a.N(); i++ {
		c := a.Capacity(i)
		m := a.Balls(i)
		q, r := m/c, m%c
		for j := int64(0); j < c; j++ {
			load := q
			if j < r {
				load = q + 1
			}
			sv.slots = append(sv.slots, Slot{Bin: i, Load: load})
		}
	}
	return sv
}

// Len returns the number of slots (= total capacity C).
func (sv *SlotVector) Len() int { return len(sv.slots) }

// Slots returns the slot vector in bin order (bin 0's slots first).
func (sv *SlotVector) Slots() []Slot {
	out := make([]Slot, len(sv.slots))
	copy(out, sv.slots)
	return out
}

// Loads returns just the slot loads in bin order.
func (sv *SlotVector) Loads() []int64 {
	out := make([]int64, len(sv.slots))
	for i, s := range sv.slots {
		out[i] = s.Load
	}
	return out
}

// Normalized returns the normalised slot load vector S̄: slots sorted by
// slot load descending; among slots of equal load, slots of bins with
// higher bin load come first (paper §2). Bin loads are compared exactly.
func (sv *SlotVector) Normalized() []Slot {
	out := make([]Slot, len(sv.slots))
	copy(out, sv.slots)
	a := sv.arr
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Load != out[j].Load {
			return out[i].Load > out[j].Load
		}
		return a.CompareLoads(out[i].Bin, out[j].Bin) > 0
	})
	return out
}

// NormalizedLoads returns just the loads of the normalised slot vector.
func (sv *SlotVector) NormalizedLoads() []int64 {
	ns := sv.Normalized()
	out := make([]int64, len(ns))
	for i, s := range ns {
		out[i] = s.Load
	}
	return out
}

// MaxSlotLoad returns the largest slot load (s̄_1).
func (sv *SlotVector) MaxSlotLoad() int64 {
	var max int64
	for _, s := range sv.slots {
		if s.Load > max {
			max = s.Load
		}
	}
	return max
}
