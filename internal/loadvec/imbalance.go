package loadvec

import (
	"fmt"
	"math"
	"sort"
)

// This file adds scalar imbalance metrics over load vectors. The paper
// reports only the maximum load; these metrics quantify the *whole*
// distribution's skew and power the ext-fairness experiment.

// Gini returns the Gini coefficient of the non-negative vector v:
// 0 for perfectly equal loads, approaching 1 for total concentration.
// An all-zero or empty vector has Gini 0 by convention.
func Gini(v []float64) (float64, error) {
	if len(v) == 0 {
		return 0, nil
	}
	sorted := make([]float64, len(v))
	copy(sorted, v)
	sort.Float64s(sorted)
	var sum, weighted float64
	for i, x := range sorted {
		if x < 0 || math.IsNaN(x) {
			return 0, fmt.Errorf("loadvec: invalid load %v", x)
		}
		sum += x
		weighted += float64(i+1) * x
	}
	if sum == 0 {
		return 0, nil
	}
	n := float64(len(v))
	return (2*weighted)/(n*sum) - (n+1)/n, nil
}

// Lorenz returns the Lorenz curve of v sampled at every index: entry k
// is the fraction of total load carried by the least-loaded k+1 bins.
// The last entry is always 1 (for a non-zero vector).
func Lorenz(v []float64) ([]float64, error) {
	if len(v) == 0 {
		return nil, nil
	}
	sorted := make([]float64, len(v))
	copy(sorted, v)
	sort.Float64s(sorted)
	total := 0.0
	for _, x := range sorted {
		if x < 0 || math.IsNaN(x) {
			return nil, fmt.Errorf("loadvec: invalid load %v", x)
		}
		total += x
	}
	out := make([]float64, len(v))
	if total == 0 {
		return out, nil
	}
	run := 0.0
	for i, x := range sorted {
		run += x
		out[i] = run / total
	}
	return out, nil
}

// Entropy returns the Shannon entropy (nats) of the load distribution
// normalised to a probability vector, divided by ln(n) so that 1 means
// perfectly even and 0 means fully concentrated. An all-zero vector
// returns 1 (vacuously even); a single bin returns 1.
func Entropy(v []float64) (float64, error) {
	n := len(v)
	if n <= 1 {
		return 1, nil
	}
	total := 0.0
	for _, x := range v {
		if x < 0 || math.IsNaN(x) {
			return 0, fmt.Errorf("loadvec: invalid load %v", x)
		}
		total += x
	}
	if total == 0 {
		return 1, nil
	}
	h := 0.0
	for _, x := range v {
		if x == 0 {
			continue
		}
		p := x / total
		h -= p * math.Log(p)
	}
	return h / math.Log(float64(n)), nil
}

// PeakToAverage returns max(v)/mean(v), the classical load-imbalance
// factor (NaN for empty or zero-mean vectors).
func PeakToAverage(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	sum, max := 0.0, v[0]
	for _, x := range v {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return math.NaN()
	}
	return max / (sum / float64(len(v)))
}
