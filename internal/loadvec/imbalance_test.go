package loadvec

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestGiniKnownValues(t *testing.T) {
	cases := []struct {
		v    []float64
		want float64
	}{
		{[]float64{1, 1, 1, 1}, 0},    // perfect equality
		{[]float64{0, 0, 0, 4}, 0.75}, // all load in 1 of 4 bins: (n-1)/n
		{[]float64{}, 0},              // empty
		{[]float64{0, 0}, 0},          // zero vector
		{[]float64{5}, 0},             // single bin
		{[]float64{1, 3}, 0.25},       // hand-computed
	}
	for _, c := range cases {
		got, err := Gini(c.v)
		if err != nil {
			t.Fatalf("Gini(%v): %v", c.v, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Gini(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	if _, err := Gini([]float64{-1}); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := Gini([]float64{math.NaN()}); err == nil {
		t.Error("NaN load accepted")
	}
}

func TestLorenz(t *testing.T) {
	lz, err := Lorenz([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lz[0]-0.25) > 1e-12 || math.Abs(lz[1]-1) > 1e-12 {
		t.Fatalf("Lorenz = %v", lz)
	}
	// zero vector → all zeros
	lz, err = Lorenz([]float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range lz {
		if v != 0 {
			t.Fatalf("zero-vector Lorenz = %v", lz)
		}
	}
	if out, err := Lorenz(nil); err != nil || out != nil {
		t.Fatal("Lorenz(nil) should be nil, nil")
	}
	if _, err := Lorenz([]float64{-2}); err == nil {
		t.Error("negative load accepted")
	}
}

func TestEntropy(t *testing.T) {
	// even distribution → 1
	got, err := Entropy([]float64{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("even entropy = %v", got)
	}
	// fully concentrated → 0
	got, err = Entropy([]float64{0, 0, 9})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("concentrated entropy = %v", got)
	}
	// degenerate inputs
	if got, _ := Entropy(nil); got != 1 {
		t.Error("Entropy(nil) != 1")
	}
	if got, _ := Entropy([]float64{5}); got != 1 {
		t.Error("Entropy(single) != 1")
	}
	if got, _ := Entropy([]float64{0, 0}); got != 1 {
		t.Error("Entropy(zero vector) != 1")
	}
	if _, err := Entropy([]float64{-1, 1}); err == nil {
		t.Error("negative load accepted")
	}
}

func TestPeakToAverage(t *testing.T) {
	if got := PeakToAverage([]float64{1, 1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("PeakToAverage = %v", got)
	}
	if !math.IsNaN(PeakToAverage(nil)) {
		t.Error("empty should be NaN")
	}
	if !math.IsNaN(PeakToAverage([]float64{0, 0})) {
		t.Error("zero vector should be NaN")
	}
}

// Property: Gini ∈ [0, (n-1)/n]; Lorenz is monotone ending at 1; scaling
// the vector changes neither.
func TestQuickImbalanceInvariants(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%12) + 1
		r := xrand.New(seed)
		v := make([]float64, n)
		anyPos := false
		for i := range v {
			v[i] = float64(r.Intn(20))
			if v[i] > 0 {
				anyPos = true
			}
		}
		g, err := Gini(v)
		if err != nil {
			return false
		}
		if g < -1e-12 || g > float64(n-1)/float64(n)+1e-12 {
			return false
		}
		lz, err := Lorenz(v)
		if err != nil {
			return false
		}
		prev := 0.0
		for _, x := range lz {
			if x < prev-1e-12 {
				return false
			}
			prev = x
		}
		if anyPos && math.Abs(lz[len(lz)-1]-1) > 1e-9 {
			return false
		}
		// scale invariance
		scaled := make([]float64, n)
		for i := range v {
			scaled[i] = v[i] * 3.5
		}
		g2, err := Gini(scaled)
		if err != nil {
			return false
		}
		return math.Abs(g-g2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
