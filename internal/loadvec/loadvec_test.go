package loadvec

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bins"
	"repro/internal/xrand"
)

func TestNormalized(t *testing.T) {
	v := []float64{1, 3, 2, 2, 0.5}
	n := Normalized(v)
	want := []float64{3, 2, 2, 1, 0.5}
	for i := range want {
		if n[i] != want[i] {
			t.Fatalf("Normalized = %v, want %v", n, want)
		}
	}
	// input untouched
	if v[0] != 1 || v[4] != 0.5 {
		t.Fatal("Normalized mutated its input")
	}
}

func TestMajorizesBasics(t *testing.T) {
	// (3,1,0) majorises (2,1,1); (2,2,0) and (3,0,1) are comparable:
	// (3,0,1) normalised (3,1,0) majorises (2,2,0).
	cases := []struct {
		u, v []float64
		want bool
	}{
		{[]float64{3, 1, 0}, []float64{2, 1, 1}, true},
		{[]float64{2, 1, 1}, []float64{3, 1, 0}, false},
		{[]float64{3, 0, 1}, []float64{2, 2, 0}, true},
		{[]float64{2, 2, 0}, []float64{3, 1, 0}, false},
		{[]float64{1, 1, 1}, []float64{1, 1, 1}, true}, // reflexive
		{[]float64{4, 4}, []float64{4, 4}, true},
	}
	for _, c := range cases {
		got, err := Majorizes(c.u, c.v)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Majorizes(%v, %v) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestMajorizesLengthMismatch(t *testing.T) {
	if _, err := Majorizes([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MajorizesInt([]int64{1}, []int64{1, 2}); err == nil {
		t.Error("length mismatch accepted (int)")
	}
}

func TestMajorizesInt(t *testing.T) {
	ok, err := MajorizesInt([]int64{3, 1, 0}, []int64{2, 1, 1})
	if err != nil || !ok {
		t.Fatalf("MajorizesInt = %v, %v", ok, err)
	}
	ok, err = MajorizesInt([]int64{2, 1, 1}, []int64{3, 1, 0})
	if err != nil || ok {
		t.Fatalf("reverse MajorizesInt = %v, %v", ok, err)
	}
}

// TestSlotVectorRoundRobin checks the round-robin filling rule: a bin with
// m balls and capacity c puts ⌈m/c⌉ balls in its first (m mod c) slots.
func TestSlotVectorRoundRobin(t *testing.T) {
	a := bins.MustNew([]int64{4})
	for i := 0; i < 10; i++ { // 10 balls, capacity 4: slots 3,3,2,2
		a.Add(0)
	}
	sv := Build(a)
	want := []int64{3, 3, 2, 2}
	got := sv.Loads()
	if len(got) != len(want) {
		t.Fatalf("slot count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot loads %v, want %v", got, want)
		}
	}
}

// TestPaperSlotExample reproduces the worked example from §2: two bins
// with 4 slots each, loads 2.5 and 2.75 → normalised slot load vector
// 3,3,3,3,3,2,2,2 belonging to bins b,b,b,a,a,b,a,a.
func TestPaperSlotExample(t *testing.T) {
	a := bins.MustNew([]int64{4, 4}) // bin 0 = "a", bin 1 = "b"
	for i := 0; i < 10; i++ {        // load 2.5
		a.Add(0)
	}
	for i := 0; i < 11; i++ { // load 2.75
		a.Add(1)
	}
	sv := Build(a)
	if sv.Len() != 8 {
		t.Fatalf("Len = %d", sv.Len())
	}
	norm := sv.Normalized()
	wantLoads := []int64{3, 3, 3, 3, 3, 2, 2, 2}
	wantBins := []int{1, 1, 1, 0, 0, 1, 0, 0} // b,b,b,a,a,b,a,a
	for i := range wantLoads {
		if norm[i].Load != wantLoads[i] || norm[i].Bin != wantBins[i] {
			t.Fatalf("normalised[%d] = {bin %d, load %d}, want {bin %d, load %d}",
				i, norm[i].Bin, norm[i].Load, wantBins[i], wantLoads[i])
		}
	}
	nl := sv.NormalizedLoads()
	for i := range wantLoads {
		if nl[i] != wantLoads[i] {
			t.Fatalf("NormalizedLoads = %v", nl)
		}
	}
}

func TestMaxSlotLoad(t *testing.T) {
	a := bins.MustNew([]int64{2, 3})
	for i := 0; i < 5; i++ {
		a.Add(0)
	}
	a.Add(1)
	sv := Build(a)
	// bin 0: 5 balls / 2 slots → 3,2; bin 1: 1 ball → 1,0,0.
	if got := sv.MaxSlotLoad(); got != 3 {
		t.Fatalf("MaxSlotLoad = %d", got)
	}
}

func TestSlotVectorEmptyBins(t *testing.T) {
	a := bins.MustNew([]int64{3, 2})
	sv := Build(a)
	if sv.Len() != 5 {
		t.Fatalf("Len = %d", sv.Len())
	}
	for _, s := range sv.Slots() {
		if s.Load != 0 {
			t.Fatalf("empty array has loaded slot %+v", s)
		}
	}
	if sv.MaxSlotLoad() != 0 {
		t.Fatal("MaxSlotLoad of empty array nonzero")
	}
}

// Property: majorisation is reflexive, and u ≽ v together with v ≽ u
// holds iff the normalised vectors are identical.
func TestQuickMajorizationPartialOrder(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%8) + 2
		r := xrand.New(seed)
		u := make([]float64, n)
		v := make([]float64, n)
		// same total so that mutual majorisation is possible
		total := 20
		remU, remV := total, total
		for i := 0; i < n-1; i++ {
			du := r.Intn(remU + 1)
			dv := r.Intn(remV + 1)
			u[i], v[i] = float64(du), float64(dv)
			remU -= du
			remV -= dv
		}
		u[n-1], v[n-1] = float64(remU), float64(remV)

		if ok, _ := Majorizes(u, u); !ok {
			return false // reflexivity
		}
		uv, _ := Majorizes(u, v)
		vu, _ := Majorizes(v, u)
		if uv && vu {
			un, vn := Normalized(u), Normalized(v)
			for i := range un {
				if un[i] != vn[i] {
					return false // mutual majorisation of distinct vectors
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: slot vector conserves balls (sum of slot loads = total balls)
// and the round-robin spread is balanced (max - min ≤ 1 within each bin).
func TestQuickSlotInvariants(t *testing.T) {
	f := func(seed uint64, nRaw uint8, ballsRaw uint16) bool {
		n := int(nRaw%6) + 1
		r := xrand.New(seed)
		caps := make([]int64, n)
		for i := range caps {
			caps[i] = int64(r.Intn(8)) + 1
		}
		a := bins.MustNew(caps)
		for i := 0; i < int(ballsRaw%300); i++ {
			a.Add(r.Intn(n))
		}
		sv := Build(a)
		var sum int64
		perBinMin := map[int]int64{}
		perBinMax := map[int]int64{}
		for _, s := range sv.Slots() {
			sum += s.Load
			if v, ok := perBinMin[s.Bin]; !ok || s.Load < v {
				perBinMin[s.Bin] = s.Load
			}
			if v, ok := perBinMax[s.Bin]; !ok || s.Load > v {
				perBinMax[s.Bin] = s.Load
			}
		}
		if sum != a.TotalBalls() {
			return false
		}
		for b := 0; b < n; b++ {
			if perBinMax[b]-perBinMin[b] > 1 {
				return false
			}
		}
		// Normalised loads are sorted non-increasing.
		nl := sv.NormalizedLoads()
		if !sort.SliceIsSorted(nl, func(i, j int) bool { return nl[i] > nl[j] }) {
			for i := 1; i < len(nl); i++ {
				if nl[i] > nl[i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
