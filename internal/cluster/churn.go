// Churn and retry: the failure-model vocabulary of the churn-tolerant
// cluster engine (internal/sim, Engine "cluster"). The types live here,
// next to the queueing domain model, so the engine package depends on
// the cluster domain and not the other way around.
package cluster

import "fmt"

// ChurnEvent is one scheduled membership change: peer Peer crashes
// (Down) or recovers (!Down) at the START of tick Tick, before any
// request of that tick is admitted or dispatched.
type ChurnEvent struct {
	Tick int
	Peer int
	Down bool
}

// ChurnPlan describes when peers crash and recover. The deterministic
// Schedule and the stochastic crash/recover process compose: scheduled
// events apply first each tick, then every peer flips state with its
// pinned-substream Bernoulli draw. Both paths refuse to take down the
// last live peer — a cluster with zero capacity would deadlock every
// request — so availability is degraded, never zero.
type ChurnPlan struct {
	// Schedule lists deterministic events, sorted by ascending Tick
	// (ties in any peer order). Events at or beyond the horizon never
	// fire.
	Schedule []ChurnEvent
	// CrashProb is the per-tick probability that a live peer crashes;
	// RecoverProb the per-tick probability that a down peer recovers.
	// Each peer consumes exactly one draw per tick from the tick's
	// churn substream — in peer order, whether or not the draw applies
	// — so the draw sequence is frozen whatever the membership state.
	CrashProb   float64
	RecoverProb float64
}

// Empty reports whether the plan never changes membership.
func (p *ChurnPlan) Empty() bool {
	return len(p.Schedule) == 0 && p.CrashProb == 0 && p.RecoverProb == 0
}

// Stochastic reports whether the plan draws per-tick Bernoulli churn.
func (p *ChurnPlan) Stochastic() bool {
	return p.CrashProb > 0 || p.RecoverProb > 0
}

// Validate checks the plan against a peer count.
func (p *ChurnPlan) Validate(peers int) error {
	if p.CrashProb < 0 || p.CrashProb > 1 || p.CrashProb != p.CrashProb {
		return fmt.Errorf("cluster: CrashProb = %v outside [0,1]", p.CrashProb)
	}
	if p.RecoverProb < 0 || p.RecoverProb > 1 || p.RecoverProb != p.RecoverProb {
		return fmt.Errorf("cluster: RecoverProb = %v outside [0,1]", p.RecoverProb)
	}
	last := 0
	for i, e := range p.Schedule {
		if e.Tick < 0 {
			return fmt.Errorf("cluster: Schedule[%d].Tick = %d, need >= 0", i, e.Tick)
		}
		if e.Tick < last {
			return fmt.Errorf("cluster: Schedule[%d].Tick = %d out of order (previous %d)", i, e.Tick, last)
		}
		last = e.Tick
		if e.Peer < 0 || e.Peer >= peers {
			return fmt.Errorf("cluster: Schedule[%d].Peer = %d outside [0,%d)", i, e.Peer, peers)
		}
	}
	return nil
}

// RetryPolicy is the per-request timeout/retry contract: a request
// queued longer than TimeoutTicks is pulled from its queue and — up to
// MaxRetries times — re-dispatched after a deterministic exponential
// backoff onto an alternate d-choice candidate. A request that exhausts
// its retries counts as failed, never silently dropped.
type RetryPolicy struct {
	// TimeoutTicks is the queueing age (in ticks since dispatch) at
	// which a request times out. 0 disables timeouts, and with them
	// retries and failures.
	TimeoutTicks int
	// MaxRetries bounds the re-dispatch attempts per request.
	MaxRetries int
	// BackoffBase is the first retry delay in ticks; attempt a waits
	// BackoffBase·2^(a-1) ticks (0 defaults to 1).
	BackoffBase int
}

// Validate checks the policy.
func (p *RetryPolicy) Validate() error {
	if p.TimeoutTicks < 0 {
		return fmt.Errorf("cluster: TimeoutTicks = %d, need >= 0", p.TimeoutTicks)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("cluster: MaxRetries = %d, need >= 0", p.MaxRetries)
	}
	if p.BackoffBase < 0 {
		return fmt.Errorf("cluster: BackoffBase = %d, need >= 0", p.BackoffBase)
	}
	if p.TimeoutTicks == 0 && p.MaxRetries > 0 {
		return fmt.Errorf("cluster: MaxRetries = %d without TimeoutTicks: retries need a timeout", p.MaxRetries)
	}
	return nil
}

// Backoff returns the delay in ticks before retry attempt a (1-based):
// BackoffBase·2^(a-1), with a zero base treated as 1 and the shift
// clamped so the delay can never overflow.
func (p *RetryPolicy) Backoff(attempt int) int {
	base := p.BackoffBase
	if base == 0 {
		base = 1
	}
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 30 {
		shift = 30
	}
	return base << shift
}
