package cluster

import "testing"

func TestChurnPlanValidate(t *testing.T) {
	good := ChurnPlan{
		Schedule:    []ChurnEvent{{Tick: 0, Peer: 1, Down: true}, {Tick: 2, Peer: 1}, {Tick: 2, Peer: 0, Down: true}},
		CrashProb:   0.25,
		RecoverProb: 1,
	}
	if err := good.Validate(3); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := []ChurnPlan{
		{CrashProb: -0.1},
		{CrashProb: 1.5},
		{RecoverProb: 2},
		{Schedule: []ChurnEvent{{Tick: -1, Peer: 0}}},
		{Schedule: []ChurnEvent{{Tick: 5, Peer: 0}, {Tick: 3, Peer: 1}}}, // out of order
		{Schedule: []ChurnEvent{{Tick: 0, Peer: -1}}},
		{Schedule: []ChurnEvent{{Tick: 0, Peer: 3}}}, // peer out of range for peers=3
	}
	for i, p := range bad {
		if err := p.Validate(3); err == nil {
			t.Fatalf("bad plan %d accepted: %+v", i, p)
		}
	}
}

func TestChurnPlanPredicates(t *testing.T) {
	var p ChurnPlan
	if !p.Empty() || p.Stochastic() {
		t.Fatal("zero plan should be empty and non-stochastic")
	}
	p.Schedule = []ChurnEvent{{Tick: 1, Peer: 0, Down: true}}
	if p.Empty() || p.Stochastic() {
		t.Fatal("scheduled-only plan: want non-empty, non-stochastic")
	}
	p = ChurnPlan{RecoverProb: 0.5}
	if p.Empty() || !p.Stochastic() {
		t.Fatal("recover-only plan: want non-empty, stochastic")
	}
}

func TestRetryPolicyValidate(t *testing.T) {
	good := []RetryPolicy{
		{},
		{TimeoutTicks: 3},
		{TimeoutTicks: 3, MaxRetries: 2, BackoffBase: 4},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Fatalf("valid policy %d rejected: %v", i, err)
		}
	}
	bad := []RetryPolicy{
		{TimeoutTicks: -1},
		{TimeoutTicks: 1, MaxRetries: -1},
		{TimeoutTicks: 1, BackoffBase: -2},
		{MaxRetries: 1}, // retries without a timeout never trigger
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad policy %d accepted: %+v", i, p)
		}
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{TimeoutTicks: 1, MaxRetries: 5, BackoffBase: 3}
	for a, want := range map[int]int{1: 3, 2: 6, 3: 12, 4: 24} {
		if got := p.Backoff(a); got != want {
			t.Fatalf("Backoff(%d) = %d, want %d", a, got, want)
		}
	}
	// Zero base defaults to 1; attempt <= 0 clamps to the first delay.
	z := RetryPolicy{TimeoutTicks: 1, MaxRetries: 1}
	if got := z.Backoff(1); got != 1 {
		t.Fatalf("zero-base Backoff(1) = %d, want 1", got)
	}
	if got := z.Backoff(-7); got != 1 {
		t.Fatalf("Backoff(-7) = %d, want 1", got)
	}
	// The shift clamp keeps huge attempt numbers finite and positive.
	if got := z.Backoff(1000); got != 1<<30 {
		t.Fatalf("Backoff(1000) = %d, want %d", got, 1<<30)
	}
}
