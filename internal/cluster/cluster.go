// Package cluster is the serving-cluster domain model behind the
// paper's application framing (requests = balls, heterogeneous servers
// = bins, "capacity" = speed): a discrete-time queueing simulator plus
// the churn/retry vocabulary of the batched, churn-tolerant cluster
// engine in internal/sim (reached through sim.Dispatch with engine
// "cluster").
//
// Two layers live here:
//
//   - Run, the seed-era reference simulator: time advances in ticks,
//     each tick dispatches requests one at a time through a
//     balls-into-bins policy (Algorithm 1 on queue-relative load by
//     default), then every server completes up to `capacity` requests.
//     It reports queue and response-time statistics, turning the
//     paper's static max-load guarantee into the dynamic quantity
//     operators watch: tail latency. Serial, always-up servers.
//
//   - ChurnPlan and RetryPolicy (churn.go), the failure model of the
//     production-shaped engine: scheduled and stochastic crash/recover
//     events over a consistent-hashing ring (internal/chash), request
//     timeouts with bounded exponential-backoff retries, and overload
//     shedding. The engine itself lives in internal/sim so it can
//     reuse the multinomial block router and the fault-tolerant
//     execution layer; this package stays the dependency-free domain
//     model both sides import.
package cluster

import (
	"fmt"

	"repro/internal/bins"
	"repro/internal/dist"
	"repro/internal/protocol"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Config describes a cluster run.
type Config struct {
	// Capacities are the per-server service rates (requests per tick).
	Capacities []int64
	// ArrivalsPerTick is the number of requests arriving each tick.
	// Stability requires ArrivalsPerTick < sum(Capacities).
	ArrivalsPerTick int
	// RandomArrivals switches from a deterministic ArrivalsPerTick to a
	// random per-tick count with the same mean: Bin(4·ArrivalsPerTick,
	// 1/4), a bursty approximation of Poisson arrivals.
	RandomArrivals bool
	// Ticks is the simulation horizon.
	Ticks int
	// Dist selects dispatch probabilities (nil = proportional).
	Dist dist.Distribution
	// Placer builds the dispatch policy (nil = Algorithm 1 with d = 2).
	// The policy sees the array of *queued* requests: bins.Balls(i) is
	// the current queue length of server i.
	Placer protocol.Factory
	// Seed drives all randomness.
	Seed uint64
	// WarmupTicks are excluded from the response-time statistics.
	WarmupTicks int
}

// Result aggregates a cluster run.
type Result struct {
	// Ticks simulated and requests dispatched/completed.
	Ticks      int
	Dispatched int64
	Completed  int64
	// ResponseTime aggregates per-request sojourn times in ticks
	// (dispatch tick to completion tick, inclusive), post warm-up.
	ResponseTime stats.Accumulator
	// MaxQueueLoad is the worst queue-relative load (queue/capacity)
	// observed at any tick end, post warm-up.
	MaxQueueLoad float64
	// MeanQueueLoad aggregates the per-tick maximum queue-relative load.
	MeanQueueLoad stats.Accumulator
	// FinalQueued is the backlog at the horizon.
	FinalQueued int64
}

type server struct {
	capacity int64
	// queue holds the dispatch tick of each waiting request (FIFO).
	queue []int
}

// Run simulates the cluster.
func Run(cfg Config) (*Result, error) {
	if cfg.ArrivalsPerTick < 0 {
		return nil, fmt.Errorf("cluster: negative arrivals")
	}
	if cfg.Ticks <= 0 {
		return nil, fmt.Errorf("cluster: ticks = %d", cfg.Ticks)
	}
	if cfg.WarmupTicks < 0 || cfg.WarmupTicks >= cfg.Ticks {
		return nil, fmt.Errorf("cluster: warmup %d outside [0, %d)", cfg.WarmupTicks, cfg.Ticks)
	}
	arr, err := bins.New(cfg.Capacities)
	if err != nil {
		return nil, err
	}
	d := cfg.Dist
	if d == nil {
		d = dist.Proportional{}
	}
	weights, err := d.Weights(arr)
	if err != nil {
		return nil, err
	}
	factory := cfg.Placer
	if factory == nil {
		factory = protocol.GreedyFactory(2)
	}
	placer, err := factory(arr, weights)
	if err != nil {
		return nil, err
	}

	servers := make([]server, arr.N())
	for i := range servers {
		servers[i].capacity = arr.Capacity(i)
	}
	r := xrand.New(cfg.Seed)
	res := &Result{Ticks: cfg.Ticks}

	for tick := 0; tick < cfg.Ticks; tick++ {
		// arrivals dispatched one at a time; the policy sees live queues
		arrivals := cfg.ArrivalsPerTick
		if cfg.RandomArrivals {
			arrivals = r.Binomial(4*cfg.ArrivalsPerTick, 0.25)
		}
		for a := 0; a < arrivals; a++ {
			idx := placer.Place(arr, r)
			servers[idx].queue = append(servers[idx].queue, tick)
			res.Dispatched++
		}
		// service: each server completes up to capacity requests
		for i := range servers {
			s := &servers[i]
			n := int64(len(s.queue))
			if n > s.capacity {
				n = s.capacity
			}
			for k := int64(0); k < n; k++ {
				if tick >= cfg.WarmupTicks {
					res.ResponseTime.Add(float64(tick - s.queue[k] + 1))
				}
				res.Completed++
			}
			s.queue = s.queue[n:]
			// keep the protocol's view in sync: bins.Balls tracks the
			// queue length, so completed requests must leave the array.
			arr.RemoveBalls(i, n)
		}
		// tick-end queue statistics
		if tick >= cfg.WarmupTicks {
			maxLoad := 0.0
			for i := range servers {
				l := float64(len(servers[i].queue)) / float64(servers[i].capacity)
				if l > maxLoad {
					maxLoad = l
				}
			}
			res.MeanQueueLoad.Add(maxLoad)
			if maxLoad > res.MaxQueueLoad {
				res.MaxQueueLoad = maxLoad
			}
		}
	}
	for i := range servers {
		res.FinalQueued += int64(len(servers[i].queue))
	}
	return res, nil
}

// Utilization returns ArrivalsPerTick / sum(Capacities), the offered
// load of a configuration.
func Utilization(cfg Config) float64 {
	var c int64
	for _, v := range cfg.Capacities {
		c += v
	}
	if c == 0 {
		return 0
	}
	return float64(cfg.ArrivalsPerTick) / float64(c)
}
