package cluster

import (
	"testing"

	"repro/internal/protocol"
)

func baseCfg() Config {
	return Config{
		Capacities:      []int64{1, 1, 1, 1, 10, 10},
		ArrivalsPerTick: 12, // utilization 12/24 = 0.5
		Ticks:           400,
		Seed:            3,
		WarmupTicks:     50,
	}
}

func TestValidation(t *testing.T) {
	cfg := baseCfg()
	cfg.ArrivalsPerTick = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative arrivals accepted")
	}
	cfg = baseCfg()
	cfg.Ticks = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero ticks accepted")
	}
	cfg = baseCfg()
	cfg.WarmupTicks = cfg.Ticks
	if _, err := Run(cfg); err == nil {
		t.Error("warmup >= ticks accepted")
	}
	cfg = baseCfg()
	cfg.Capacities = nil
	if _, err := Run(cfg); err == nil {
		t.Error("no capacities accepted")
	}
}

func TestConservation(t *testing.T) {
	cfg := baseCfg()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dispatched != int64(cfg.ArrivalsPerTick)*int64(cfg.Ticks) {
		t.Fatalf("dispatched %d", res.Dispatched)
	}
	if res.Completed+res.FinalQueued != res.Dispatched {
		t.Fatalf("requests lost: %d completed + %d queued != %d dispatched",
			res.Completed, res.FinalQueued, res.Dispatched)
	}
}

func TestStabilityUnderLowLoad(t *testing.T) {
	cfg := baseCfg() // 50% utilization
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// under half load, queues cannot accumulate: the backlog at the end
	// must be tiny and response times ~1 tick.
	if res.FinalQueued > 24 {
		t.Fatalf("backlog %d under 50%% load", res.FinalQueued)
	}
	if res.ResponseTime.Mean() > 2 {
		t.Fatalf("mean response %v ticks under 50%% load", res.ResponseTime.Mean())
	}
	if Utilization(cfg) != 0.5 {
		t.Fatalf("Utilization = %v", Utilization(cfg))
	}
}

func TestOverloadGrowsBacklog(t *testing.T) {
	cfg := baseCfg()
	cfg.ArrivalsPerTick = 30 // utilization 1.25
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// overload: backlog must grow roughly (arrivals - capacity)·ticks
	expect := int64((30 - 24) * cfg.Ticks)
	if res.FinalQueued < expect/2 {
		t.Fatalf("backlog %d under overload, expected around %d", res.FinalQueued, expect)
	}
}

// TestGreedyBeatsSingleOnTail: at high utilisation the capacity-aware
// two-choice dispatcher yields lower worst-case queue load than
// single-choice dispatch.
func TestGreedyBeatsSingleOnTail(t *testing.T) {
	mk := func(f protocol.Factory) *Result {
		cfg := baseCfg()
		cfg.ArrivalsPerTick = 21 // 87.5% utilization
		cfg.Ticks = 600
		cfg.Placer = f
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	greedy := mk(protocol.GreedyFactory(2))
	single := mk(protocol.SingleFactory())
	if greedy.MeanQueueLoad.Mean() >= single.MeanQueueLoad.Mean() {
		t.Fatalf("greedy mean peak queue %.3f not below single %.3f",
			greedy.MeanQueueLoad.Mean(), single.MeanQueueLoad.Mean())
	}
	if greedy.ResponseTime.Mean() > single.ResponseTime.Mean()+0.5 {
		t.Fatalf("greedy response %.3f much worse than single %.3f",
			greedy.ResponseTime.Mean(), single.ResponseTime.Mean())
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.ResponseTime.Mean() != b.ResponseTime.Mean() ||
		a.MaxQueueLoad != b.MaxQueueLoad ||
		a.FinalQueued != b.FinalQueued {
		t.Fatal("cluster run not deterministic")
	}
	cfg := baseCfg()
	cfg.Seed = 999
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ResponseTime.Mean() == c.ResponseTime.Mean() && a.MaxQueueLoad == c.MaxQueueLoad {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestResponseTimesOnlyAfterWarmup(t *testing.T) {
	cfg := baseCfg()
	cfg.WarmupTicks = cfg.Ticks - 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// only the final tick contributes
	if res.ResponseTime.N() > int64(cfg.ArrivalsPerTick)*2 {
		t.Fatalf("warm-up not respected: %d response samples", res.ResponseTime.N())
	}
}

func TestUtilizationEdge(t *testing.T) {
	if Utilization(Config{}) != 0 {
		t.Fatal("empty config utilization should be 0")
	}
}

func TestRandomArrivals(t *testing.T) {
	cfg := baseCfg()
	cfg.RandomArrivals = true
	cfg.Ticks = 1000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// mean arrivals per tick matches the deterministic configuration
	mean := float64(res.Dispatched) / float64(cfg.Ticks)
	if mean < float64(cfg.ArrivalsPerTick)-1 || mean > float64(cfg.ArrivalsPerTick)+1 {
		t.Fatalf("mean arrivals %.2f, want ~%d", mean, cfg.ArrivalsPerTick)
	}
	// still conserves requests
	if res.Completed+res.FinalQueued != res.Dispatched {
		t.Fatal("requests lost under random arrivals")
	}
	// bursty arrivals should not be *better* than deterministic ones
	det, err := Run(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.ResponseTime.Mean() < det.ResponseTime.Mean()-0.2 {
		t.Fatalf("bursty response %.3f unexpectedly beats deterministic %.3f",
			res.ResponseTime.Mean(), det.ResponseTime.Mean())
	}
}
