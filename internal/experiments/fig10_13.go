package experiments

import (
	"fmt"

	"repro/internal/bins"
	"repro/internal/sim"
	"repro/internal/table"
)

// twoClassDistributions runs the §4.2 fixed-ratio mixes and returns the
// whole-array mean sorted load distribution for each mix (Figures 10 and
// 11) and, when classTables is true, the per-class distributions
// (Figures 12 and 13).
func twoClassDistributions(p Params, n int, cLarge int64, largeCounts []int, defReps int, figName string, classTables bool) ([]*table.Table, error) {
	reps := p.reps(defReps)
	cols := []string{"bin"}
	for _, nl := range largeCounts {
		cols = append(cols, fmt.Sprintf("load_%dx%d_%dx1", nl, cLarge, n-nl))
	}
	allTab := table.New(fmt.Sprintf("%s: %d bins of capacity 1 and %d, m=C, d=2 (%d reps)", figName, n, cLarge, reps), cols...)

	var largeTab, smallTab *table.Table
	if classTables {
		largeTab = table.New(fmt.Sprintf("Figure 12: load for bins of capacity %d only (%d reps)", cLarge, reps), cols...)
		smallTab = table.New(fmt.Sprintf("Figure 13: load for bins of capacity 1 only (%d reps)", reps), cols...)
	}

	whole := make([][]float64, len(largeCounts))
	largeVecs := make([][]float64, len(largeCounts))
	smallVecs := make([][]float64, len(largeCounts))
	for i, nl := range largeCounts {
		arr, err := bins.TwoClass(n-nl, 1, nl, cLarge)
		if err != nil {
			return nil, err
		}
		cfg := sim.Config{
			Array:             arr,
			Reps:              reps,
			Seed:              p.seed(),
			Workers:           p.Workers,
			CollectLoadVector: true,
		}
		if classTables {
			var classes []int64
			if nl < n {
				classes = append(classes, 1)
			}
			if nl > 0 {
				classes = append(classes, cLarge)
			}
			cfg.ClassLoadVectors = classes
		}
		res, err := p.sim(cfg)
		if err != nil {
			return nil, err
		}
		whole[i] = res.MeanSortedLoads
		if classTables {
			largeVecs[i] = res.ClassMeanSortedLoads[cLarge]
			smallVecs[i] = res.ClassMeanSortedLoads[1]
		}
	}
	appendRows := func(tab *table.Table, vecs [][]float64) {
		for b := 0; b < n; b++ {
			row := make([]float64, 0, len(vecs)+1)
			row = append(row, float64(b))
			any := false
			for _, v := range vecs {
				if b < len(v) {
					row = append(row, v[b])
					any = true
				} else {
					row = append(row, -1) // no bin of this class at this rank
				}
			}
			if !any {
				break
			}
			tab.MustAddRow(row...)
		}
	}
	appendRows(allTab, whole)
	out := []*table.Table{allTab}
	if classTables {
		largeTab.Comment = "cells of -1 mean the mix has fewer bins of this class than the rank"
		smallTab.Comment = largeTab.Comment
		appendRows(largeTab, largeVecs)
		appendRows(smallTab, smallVecs)
		out = append(out, largeTab, smallTab)
	}
	return out, nil
}

func fig10(p Params) ([]*table.Table, error) {
	return twoClassDistributions(p, 32, 2, []int{0, 8, 16, 24, 32}, 10000, "Figure 10", false)
}

func fig11(p Params) ([]*table.Table, error) {
	n := p.scaledN(10000, 100)
	counts := []int{0, n / 4, n / 2, 3 * n / 4, n}
	return twoClassDistributions(p, n, 8, counts, 200, "Figure 11", true)
}

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "32 bins of capacity 1 and 2: load distributions per mix",
		Run:   fig10,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "10000 bins of capacity 1 and 8: load distributions per mix (also emits Figures 12, 13)",
		Run:   fig11,
	})
	register(Experiment{
		ID:      "fig12",
		Title:   "Bins of capacities 1 and 8: distribution restricted to the capacity-8 bins",
		AliasOf: "fig11",
		Run:     fig11,
	})
	register(Experiment{
		ID:      "fig13",
		Title:   "Bins of capacities 1 and 8: distribution restricted to the capacity-1 bins",
		AliasOf: "fig11",
		Run:     fig11,
	})
}
