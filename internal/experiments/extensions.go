package experiments

import (
	"fmt"

	"repro/internal/bins"
	"repro/internal/chash"
	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/loadvec"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/tune"
	"repro/internal/xrand"
)

// extHeights measures the distribution of ball *heights* (§2: the load
// of the receiving bin right after the allocation) for a two-class array
// and for uniform bins — not a paper figure, but the quantity the
// analysis of Observation 1 reasons about.
func extHeights(p Params) ([]*table.Table, error) {
	reps := p.reps(300)
	n := p.scaledN(1000, 100)
	const heightBins, heightMax = 32, 4.0

	configs := []struct {
		label string
		caps  *bins.Array
	}{}
	uni, err := bins.Uniform(n, 1)
	if err != nil {
		return nil, err
	}
	mix, err := bins.TwoClass(n/2, 1, n/2, 10)
	if err != nil {
		return nil, err
	}
	configs = append(configs,
		struct {
			label string
			caps  *bins.Array
		}{"uniform_c1", uni},
		struct {
			label string
			caps  *bins.Array
		}{"mix_1_and_10", mix},
	)

	cols := []string{"height_bin_center"}
	for _, c := range configs {
		cols = append(cols, "frac_"+c.label)
	}
	tab := table.New(fmt.Sprintf("Extension: ball height distribution (m=C, d=2, n=%d, %d reps)", n, reps), cols...)
	var series [][]float64
	for _, c := range configs {
		res, err := p.sim(sim.Config{
			Array: c.caps, Reps: reps, Seed: p.seed(), Workers: p.Workers,
			ObsOptions: sim.ObsOptions{HeightBins: heightBins, HeightMax: heightMax},
		})
		if err != nil {
			return nil, err
		}
		total := float64(res.Heights.Total() + res.Heights.Overflow + res.Heights.Underflow)
		fr := make([]float64, heightBins+1)
		for i, cnt := range res.Heights.Counts {
			fr[i] = float64(cnt) / total
		}
		fr[heightBins] = float64(res.Heights.Overflow) / total
		series = append(series, fr)
	}
	ref, err := stats.NewHistogram(0, heightMax, heightBins)
	if err != nil {
		return nil, err
	}
	for i := 0; i <= heightBins; i++ {
		center := heightMax + 1 // sentinel for the overflow row
		if i < heightBins {
			center = ref.BinCenter(i)
		}
		row := []float64{center}
		for _, s := range series {
			row = append(row, s[i])
		}
		tab.MustAddRow(row...)
	}
	tab.Comment = "last row aggregates heights above the histogram range"
	return []*table.Table{tab}, nil
}

// extBatch sweeps the batch size of the parallel batch-arrival model:
// how gracefully does Algorithm 1 degrade when balls in a round see only
// round-start loads?
func extBatch(p Params) ([]*table.Table, error) {
	reps := p.reps(300)
	n := p.scaledN(1000, 100)
	arr, err := bins.TwoClass(n/2, 1, n/2, 10)
	if err != nil {
		return nil, err
	}
	tab := table.New(fmt.Sprintf("Extension: batched arrivals, max load vs batch size (n=%d, m=C, d=2, %d reps)", n, reps),
		"batch_size", "max_load_mean", "max_load_ci95")
	m := arr.TotalCapacity()
	for _, batch := range []int{1, 4, 16, 64, 256, 1024, int(m)} {
		res, err := p.sim(sim.Config{
			Array:   arr,
			Placer:  protocol.BatchedFactory(2, batch),
			Reps:    reps,
			Seed:    p.seed(),
			Workers: p.Workers,
		})
		if err != nil {
			return nil, err
		}
		tab.MustAddRow(float64(batch), res.MaxLoad.Mean(), res.MaxLoad.CI95())
	}
	tab.Comment = "batch = 1 is the sequential Algorithm 1; batch = m is fully oblivious"
	return []*table.Table{tab}, nil
}

// extHeavyHet probes the paper's stated future work: the heavily loaded
// case for heterogeneous arrays. We track (max − avg) load at m = k·C
// for growing k on a strongly mixed array; the conjecture suggested by
// Figure 16 is that it stays bounded in m.
func extHeavyHet(p Params) ([]*table.Table, error) {
	reps := p.reps(50)
	n := p.scaledN(1000, 100)
	arr, err := bins.TwoClass(n/2, 1, n/2, 10)
	if err != nil {
		return nil, err
	}
	c := arr.TotalCapacity()
	ks := []int64{1, 2, 5, 10, 20, 50, 100}
	checkpoints := make([]int64, len(ks))
	for i, k := range ks {
		checkpoints[i] = k * c
	}
	res, err := p.sim(sim.Config{
		Array:      arr,
		Balls:      ks[len(ks)-1] * c,
		Reps:       reps,
		Seed:       p.seed(),
		Workers:    p.Workers,
		ObsOptions: sim.ObsOptions{Checkpoints: checkpoints},
	})
	if err != nil {
		return nil, err
	}
	tab := table.New(fmt.Sprintf("Extension (paper future work): heavily loaded heterogeneous bins (n=%d, 50/50 caps 1 and 10, %d reps)", n, reps),
		"balls_over_C", "deviation_max_minus_avg", "max_load_mean")
	for i, cp := range res.Checkpoints {
		tab.MustAddRow(float64(ks[i]), cp.Deviation.Mean(), cp.MaxLoad.Mean())
	}
	tab.Comment = "flat deviation = the Fig 16 invariance extends to heterogeneous arrays"
	return []*table.Table{tab}, nil
}

// extMigration compares re-allocating from scratch after every expansion
// (the paper's §4.3 setup) with keeping the old balls in place and only
// routing the *new* balls with Algorithm 1 — the no-migration regime of
// a real storage system that cannot afford to reshuffle.
func extMigration(p Params) ([]*table.Table, error) {
	reps := p.reps(200)
	tab := table.New(fmt.Sprintf("Extension: scale-out with vs without re-allocation (linear a=4 growth, %d reps)", reps),
		"bins", "scratch_max_load", "no_migration_max_load")

	sizes := []int{2, 102, 202, 302, 402}
	maxBins := p.scaledN(402, 42)
	for _, size := range sizes {
		if size > maxBins {
			break
		}
		batches := bins.LinearBatches(2, 20, size, 2, 4)
		arr, err := bins.Generations(batches)
		if err != nil {
			return nil, err
		}
		// From scratch: standard m = C run.
		scratch, err := p.sim(sim.Config{
			Array: arr, Reps: reps, Seed: p.seed(), Workers: p.Workers,
		})
		if err != nil {
			return nil, err
		}
		// No migration: replay the growth history; at each stage only
		// the capacity delta arrives as new balls, placed on the grown
		// array that still holds all previous balls.
		var acc float64
		for rep := 0; rep < reps; rep++ {
			r := xrand.NewStream(p.seed()+1, uint64(rep))
			ml, err := noMigrationRun(batches, r)
			if err != nil {
				return nil, err
			}
			acc += ml
		}
		tab.MustAddRow(float64(size), scratch.MaxLoad.Mean(), acc/float64(reps))
	}
	tab.Comment = "no-migration keeps old balls where they are; only growth-delta balls use Algorithm 1"
	return []*table.Table{tab}, nil
}

// noMigrationRun replays the growth history of `batches` without ever
// moving a placed ball, returning the final max load.
func noMigrationRun(batches []bins.Batch, r *xrand.Rand) (float64, error) {
	// Build the final capacity vector once; stage s uses the prefix of
	// bins existing at stage s, implemented with per-stage weight
	// masking (absent bins get weight 0).
	full, err := bins.Generations(batches)
	if err != nil {
		return 0, err
	}
	n := full.N()
	weights := make([]float64, n)
	var placedBalls int64
	binsSoFar := 0
	var capSoFar int64
	for _, b := range batches {
		for i := 0; i < b.Count; i++ {
			weights[binsSoFar+i] = float64(b.Capacity)
		}
		binsSoFar += b.Count
		capSoFar += int64(b.Count) * b.Capacity
		placer, err := protocol.NewGreedy(full, weights[:n], 2)
		if err != nil {
			return 0, err
		}
		// ship the capacity delta as new balls
		newBalls := capSoFar - placedBalls
		for i := int64(0); i < newBalls; i++ {
			placer.Place(full, r)
		}
		placedBalls = capSoFar
	}
	return full.MaxLoad(), nil
}

// extWieder demonstrates the related-work contrast the paper builds on
// (Wieder, SPAA 2007): with *skewed selection probabilities over uniform
// unit bins* — consistent-hashing arcs — the deviation of the max load
// grows with m for d = 2 but is tamed by larger d. The paper's
// capacity-aware model avoids this because loads are normalised by
// capacity.
func extWieder(p Params) ([]*table.Table, error) {
	reps := p.reps(100)
	n := p.scaledN(500, 100)
	// Arc weights from one fixed ring (the skew is the point).
	ring, err := chash.NewRing(n, 1, xrand.New(p.seed()))
	if err != nil {
		return nil, err
	}
	arcs := ring.ArcLengths()
	arr, err := bins.Uniform(n, 1)
	if err != nil {
		return nil, err
	}
	ks := []int64{1, 2, 5, 10, 20, 50}
	checkpoints := make([]int64, len(ks))
	for i, k := range ks {
		checkpoints[i] = k * int64(n)
	}
	cols := []string{"balls_over_n", "dev_d2_skewed", "dev_d4_skewed", "dev_d2_uniformprobs"}
	tab := table.New(fmt.Sprintf("Extension (related work, Wieder 2007): skewed selection over unit bins (n=%d, %d reps)", n, reps), cols...)
	series := make([][]float64, 3)
	run := func(d int, dd dist.Distribution) ([]float64, error) {
		res, err := p.sim(sim.Config{
			Array:      arr,
			Dist:       dd,
			Placer:     protocol.StandardFactory(d),
			Balls:      ks[len(ks)-1] * int64(n),
			Reps:       reps,
			Seed:       p.seed(),
			Workers:    p.Workers,
			ObsOptions: sim.ObsOptions{Checkpoints: checkpoints},
		})
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(res.Checkpoints))
		for i, cp := range res.Checkpoints {
			out[i] = cp.Deviation.Mean()
		}
		return out, nil
	}
	skew := dist.Custom{W: arcs, Desc: "arcs"}
	if series[0], err = run(2, skew); err != nil {
		return nil, err
	}
	if series[1], err = run(4, skew); err != nil {
		return nil, err
	}
	if series[2], err = run(2, dist.Uniform{}); err != nil {
		return nil, err
	}
	for i, k := range ks {
		tab.MustAddRow(float64(k), series[0][i], series[1][i], series[2][i])
	}
	tab.Comment = "skewed d=2 deviation grows with m; uniform d=2 stays flat; larger d tames the skew"
	return []*table.Table{tab}, nil
}

// extVnodes sweeps virtual-node counts on the consistent-hashing ring:
// how many vnodes does it take to tame the Θ(log n) arc imbalance that
// motivates the paper, and how does the d-point game's max load respond?
func extVnodes(p Params) ([]*table.Table, error) {
	n := p.scaledN(1000, 100)
	reps := p.reps(50)
	tab := table.New(fmt.Sprintf("Extension: consistent-hashing vnodes vs arc imbalance (n=%d peers, %d rings)", n, reps),
		"vnodes", "max_over_avg_arc", "d1_max_load", "d2_max_load")
	for _, v := range []int{1, 2, 4, 8, 16, 32} {
		var imb, d1, d2 float64
		for rep := 0; rep < reps; rep++ {
			r := xrand.NewStream(p.seed(), uint64(rep))
			ring, err := chash.NewRing(n, v, r)
			if err != nil {
				return nil, err
			}
			imb += ring.Stats().MaxOverAvg
			l1, err := ring.DChoiceLoads(int64(n), 1, r)
			if err != nil {
				return nil, err
			}
			l2, err := ring.DChoiceLoads(int64(n), 2, r)
			if err != nil {
				return nil, err
			}
			d1 += float64(chash.MaxLoad(l1))
			d2 += float64(chash.MaxLoad(l2))
		}
		f := float64(reps)
		tab.MustAddRow(float64(v), imb/f, d1/f, d2/f)
	}
	tab.Comment = "two choices (d2) already fix what vnodes fix expensively — Byers et al.'s point"
	return []*table.Table{tab}, nil
}

// extTune runs the distribution optimiser (the paper's future work) on a
// few arrays and reports the best power exponent and the best per-class
// weights found.
func extTune(p Params) ([]*table.Table, error) {
	reps := p.reps(800)
	tab := table.New(fmt.Sprintf("Extension (paper future work): optimised selection distributions (m=C, d=2, %d reps/eval)", reps),
		"big_capacity", "best_exponent", "load_at_best_t", "load_at_t1",
		"classdescent_load", "classdescent_implied_t")
	for _, x := range []int64{2, 3, 5, 10} {
		caps := make([]int64, 100)
		for i := range caps {
			if i < 50 {
				caps[i] = 1
			} else {
				caps[i] = x
			}
		}
		cfg := tune.Config{Reps: reps, Seed: p.seed(), Workers: p.Workers, Engine: p.Engine, Shards: p.Shards}
		er, err := tune.OptimalExponent(caps, 0.5, 3.5, cfg)
		if err != nil {
			return nil, err
		}
		cw, err := tune.OptimalClassWeights(caps, cfg)
		if err != nil {
			return nil, err
		}
		tab.MustAddRow(float64(x), er.T, er.MaxLoad, er.AtProportional,
			cw.MaxLoad, tune.ImpliedExponent(cw.Classes, cw.Weights))
	}
	return []*table.Table{tab}, nil
}

// extFairness re-runs the Figure 6 sweep but reports whole-distribution
// imbalance metrics (Gini coefficient, normalised entropy, peak/average)
// on the mean sorted load vector — the max load tells only the tail's
// story.
func extFairness(p Params) ([]*table.Table, error) {
	n := p.scaledN(1000, 100)
	reps := p.reps(300)
	tab := table.New(fmt.Sprintf("Extension: load fairness across the Figure 6 sweep (n=%d, m=C, %d reps)", n, reps),
		"pct_large", "gini", "entropy_norm", "peak_over_avg")
	for pct := 0; pct <= 100; pct += 10 {
		nLarge := n * pct / 100
		arr, err := bins.TwoClass(n-nLarge, 1, nLarge, 10)
		if err != nil {
			return nil, err
		}
		res, err := p.sim(sim.Config{
			Array: arr, Reps: reps, Seed: p.seed(), Workers: p.Workers,
			CollectLoadVector: true,
		})
		if err != nil {
			return nil, err
		}
		g, err := loadvec.Gini(res.MeanSortedLoads)
		if err != nil {
			return nil, err
		}
		e, err := loadvec.Entropy(res.MeanSortedLoads)
		if err != nil {
			return nil, err
		}
		tab.MustAddRow(float64(pct), g, e, loadvec.PeakToAverage(res.MeanSortedLoads))
	}
	tab.Comment = "metrics computed on the repetition-averaged sorted load vector"
	return []*table.Table{tab}, nil
}

// extCluster sweeps utilisation in the queueing cluster simulator and
// compares dispatch policies on mean response time and worst queue load.
func extCluster(p Params) ([]*table.Table, error) {
	ticks := p.scaledN(2000, 300)
	warmup := ticks / 10
	capacities := []int64{1, 1, 1, 1, 1, 1, 1, 1, 10, 10} // C = 28
	tab := table.New(fmt.Sprintf("Extension: queueing cluster, response time by dispatch policy (%d ticks)", ticks),
		"utilization_pct", "greedy_resp", "oblivious_resp", "single_resp",
		"greedy_maxq", "oblivious_maxq", "single_maxq")
	for _, arrivals := range []int{7, 14, 21, 25, 27} {
		row := []float64{100 * float64(arrivals) / 28}
		var resp, maxq []float64
		for _, f := range []protocol.Factory{
			protocol.GreedyFactory(2), protocol.StandardFactory(2), protocol.SingleFactory(),
		} {
			res, err := cluster.Run(cluster.Config{
				Capacities:      capacities,
				ArrivalsPerTick: arrivals,
				Ticks:           ticks,
				WarmupTicks:     warmup,
				Placer:          f,
				Seed:            p.seed(),
			})
			if err != nil {
				return nil, err
			}
			resp = append(resp, res.ResponseTime.Mean())
			maxq = append(maxq, res.MaxQueueLoad)
		}
		row = append(row, resp...)
		row = append(row, maxq...)
		tab.MustAddRow(row...)
	}
	return []*table.Table{tab}, nil
}

func init() {
	register(Experiment{ID: "ext-fairness", Title: "Extension: Gini/entropy fairness across the Fig 6 sweep", Run: extFairness})
	register(Experiment{ID: "ext-cluster", Title: "Extension: queueing cluster response times by dispatch policy", Run: extCluster})
	register(Experiment{ID: "ext-heights", Title: "Extension: ball height distribution (paper §2 definition)", Run: extHeights})
	register(Experiment{ID: "ext-batch", Title: "Extension: batched arrivals with stale load information", Run: extBatch})
	register(Experiment{ID: "ext-heavyhet", Title: "Extension (future work): heavily loaded heterogeneous bins", Run: extHeavyHet})
	register(Experiment{ID: "ext-migration", Title: "Extension: scale-out without re-allocating old balls", Run: extMigration})
	register(Experiment{ID: "ext-wieder", Title: "Extension (related work): skewed probabilities over uniform bins", Run: extWieder})
	register(Experiment{ID: "ext-vnodes", Title: "Extension: consistent-hashing vnodes vs the d-point game", Run: extVnodes})
	register(Experiment{ID: "ext-tune", Title: "Extension (future work): optimised selection distributions", Run: extTune})
}
