package experiments

import (
	"fmt"

	"repro/internal/bins"
	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/theory"
)

// uniformDistribution runs the §4.1 uniform-bin games: n bins of equal
// capacity, m = factor·C balls, d = 2, capacity-proportional selection
// (which for uniform bins equals uniform selection), and returns the mean
// sorted load distribution per capacity plus a max-load summary.
func uniformDistribution(p Params, n int, caps []int64, factor float64, defReps int, figName string) ([]*table.Table, error) {
	reps := p.reps(defReps)
	cols := []string{"bin"}
	for _, c := range caps {
		cols = append(cols, fmt.Sprintf("load_c%d", c))
	}
	distTab := table.New(fmt.Sprintf("%s: %d uniform bins, load distribution for %g*C balls (d=2, %d reps)",
		figName, n, factor, reps), cols...)

	sumTab := table.New(fmt.Sprintf("%s summary: max load per capacity", figName),
		"capacity", "balls", "max_load_mean", "max_load_ci95", "obs2_prediction")

	vectors := make([][]float64, 0, len(caps))
	for _, c := range caps {
		arr, err := bins.Uniform(n, c)
		if err != nil {
			return nil, err
		}
		res, err := p.sim(sim.Config{
			Array:             arr,
			BallsFactor:       factor,
			Reps:              reps,
			Seed:              p.seed(),
			Workers:           p.Workers,
			CollectLoadVector: true,
		})
		if err != nil {
			return nil, err
		}
		vectors = append(vectors, res.MeanSortedLoads)
		m := int64(res.Balls.Mean())
		sumTab.MustAddRow(float64(c), float64(m),
			res.MaxLoad.Mean(), res.MaxLoad.CI95(),
			theory.UniformCapacityMaxLoad(m, n, 2, c))
	}
	for i := 0; i < n; i++ {
		row := make([]float64, 0, len(caps)+1)
		row = append(row, float64(i))
		for _, v := range vectors {
			row = append(row, v[i])
		}
		distTab.MustAddRow(row...)
	}
	return []*table.Table{distTab, sumTab}, nil
}

func init() {
	register(Experiment{
		ID:    "fig01",
		Title: "Uniform bins: n=10000, d=2, c in {1,2,3,4,8}, m=C (load distribution)",
		Run: func(p Params) ([]*table.Table, error) {
			n := p.scaledN(10000, 100)
			return uniformDistribution(p, n, []int64{1, 2, 3, 4, 8}, 1, 200, "Figure 1")
		},
	})
	register(Experiment{
		ID:    "fig02",
		Title: "32 uniform bins, c in {1..4}: load distribution for C balls",
		Run: func(p Params) ([]*table.Table, error) {
			return uniformDistribution(p, 32, []int64{1, 2, 3, 4}, 1, 10000, "Figure 2")
		},
	})
	register(Experiment{
		ID:    "fig03",
		Title: "32 uniform bins, c in {1..4}: load distribution for 10*C balls",
		Run: func(p Params) ([]*table.Table, error) {
			return uniformDistribution(p, 32, []int64{1, 2, 3, 4}, 10, 5000, "Figure 3")
		},
	})
	register(Experiment{
		ID:    "fig04",
		Title: "32 uniform bins, c in {1..4}: load distribution for 100*C balls",
		Run: func(p Params) ([]*table.Table, error) {
			return uniformDistribution(p, 32, []int64{1, 2, 3, 4}, 100, 2000, "Figure 4")
		},
	})
	register(Experiment{
		ID:    "fig05",
		Title: "32 uniform bins, c in {1..4}: load distribution for 1000*C balls",
		Run: func(p Params) ([]*table.Table, error) {
			return uniformDistribution(p, 32, []int64{1, 2, 3, 4}, 1000, 500, "Figure 5")
		},
	})
}
