// Package experiments defines one runnable experiment per figure of the
// paper's evaluation section (§4, Figures 1–18), plus validation
// experiments for the analytical results (Observation 1, Theorem 3,
// Theorem 5, Lemma 1).
//
// Each experiment regenerates the data series behind its figure as one or
// more tables. Defaults reproduce the paper's parameters where that is
// computationally reasonable; repetition counts default lower than the
// paper's 10,000 (and Fig 17's 1,000,000) — the shapes are stable already
// at the defaults, and the Params let callers dial anything up.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/table"
)

// Params tune an experiment run without changing its structure.
type Params struct {
	// Reps overrides the experiment's default repetitions per data point.
	Reps int
	// Seed is the base RNG seed (default 1).
	Seed uint64
	// Workers caps parallelism (0 = GOMAXPROCS).
	Workers int
	// Scale scales problem sizes (number of bins, sweep density):
	// values in (0, 1) shrink them for quick runs and benchmarks,
	// values above 1 grow them past the paper's n — the regime the
	// sharded and closed-form engines exist for. 0 means 1 (paper
	// size). Repetition counts scale DOWN with Scale < 1 but never up.
	Scale float64
	// Engine selects the simulation engine every sim-backed experiment
	// dispatches through ("" = auto). Experiments whose observables an
	// engine cannot collect fail loudly when it is forced.
	Engine sim.Engine
	// Shards overrides the sharded engine's shard count (0 =
	// sim.DefaultShards).
	Shards int
}

func (p Params) seed() uint64 {
	if p.Seed == 0 {
		return 1
	}
	return p.Seed
}

func (p Params) scale() float64 {
	if p.Scale <= 0 {
		return 1
	}
	return p.Scale
}

// repScale is the factor applied to default repetition counts: Scale
// shrinks work in both directions of the tradeoff, but a scale-up run
// keeps the default repetitions (more repetitions at 100× n is a
// budget decision the caller makes explicitly via Reps).
func (p Params) repScale() float64 {
	if s := p.scale(); s < 1 {
		return s
	}
	return 1
}

// reps returns the repetition count: the override, or the experiment
// default scaled like the problem size (with a floor of 3 so means stay
// meaningful).
func (p Params) reps(def int) int {
	if p.Reps > 0 {
		return p.Reps
	}
	r := int(float64(def) * p.repScale())
	if r < 3 {
		r = 3
	}
	return r
}

// sim dispatches one engine-independent run with the Params' engine
// hint and shard count applied — the single funnel every sim-backed
// experiment goes through.
func (p Params) sim(cfg sim.Config) (*sim.Result, error) {
	return sim.Dispatch(sim.RunSpec{Config: cfg, Engine: p.Engine, Shards: p.Shards})
}

// scaledN scales a problem dimension, keeping at least min.
func (p Params) scaledN(n, min int) int {
	s := int(float64(n) * p.scale())
	if s < min {
		s = min
	}
	return s
}

// Experiment is a registered, runnable reproduction of one paper figure
// (or analytical validation).
type Experiment struct {
	// ID is the lookup key, e.g. "fig06" or "thm3".
	ID string
	// Title is a one-line description.
	Title string
	// AliasOf names another experiment whose run also produces this
	// figure's table (e.g. fig07 is produced by fig06's sweep).
	AliasOf string
	// Run executes the experiment.
	Run func(p Params) ([]*table.Table, error)
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get looks up an experiment by ID.
func Get(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
