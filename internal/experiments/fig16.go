package experiments

import (
	"fmt"

	"repro/internal/bins"
	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/xrand"
)

// fig16 is the §4.4 heavily loaded experiment: n = 10,000 bins with
// random capacities of prescribed expected total CAP ∈ {1,2,5,10}·n;
// 100·CAP balls are thrown and after every CAP balls the deviation of the
// maximum load from the average load is recorded. The paper's prediction
// (and Fig 16's shape) is a bundle of parallel horizontal lines: the
// deviation does not grow with m, and larger CAP pushes it towards 0.
func fig16(p Params) ([]*table.Table, error) {
	n := p.scaledN(10000, 500)
	reps := p.reps(10)
	multipliers := []int64{1, 2, 5, 10}
	const rounds = 100

	cols := []string{"balls_over_cap"}
	for _, mult := range multipliers {
		cols = append(cols, fmt.Sprintf("dev_cap_%dn", mult))
	}
	tab := table.New(fmt.Sprintf("Figure 16: heavily loaded, deviation of max from average (n=%d, %d reps)", n, reps), cols...)

	series := make([][]float64, len(multipliers))
	for mi, mult := range multipliers {
		capTotal := mult * int64(n)
		meanC := float64(mult)
		// Capacities 1+Bin(K, (meanC-1)/K) with K sized so that meanC is
		// reachable (the paper's §4.2 generator has K = 7; CAP = 10n
		// needs a wider support — see bins.RandomBinomialK).
		k := 7
		if meanC > 8 {
			k = 2 * int(meanC)
		}
		checkpoints := make([]int64, rounds)
		for i := range checkpoints {
			checkpoints[i] = capTotal * int64(i+1)
		}
		res, err := p.sim(sim.Config{
			ArrayFn: func(r *xrand.Rand) (*bins.Array, error) {
				return bins.RandomBinomialK(n, meanC, k, r)
			},
			Balls:      capTotal * rounds,
			Reps:       reps,
			Seed:       p.seed(),
			Workers:    p.Workers,
			ObsOptions: sim.ObsOptions{Checkpoints: checkpoints},
		})
		if err != nil {
			return nil, err
		}
		series[mi] = make([]float64, rounds)
		for i, cp := range res.Checkpoints {
			series[mi][i] = cp.Deviation.Mean()
		}
	}
	for i := 0; i < rounds; i++ {
		row := []float64{float64(i + 1)}
		for mi := range multipliers {
			row = append(row, series[mi][i])
		}
		tab.MustAddRow(row...)
	}
	return []*table.Table{tab}, nil
}

func init() {
	register(Experiment{
		ID:    "fig16",
		Title: "Heavily loaded case: deviation of max load from average vs balls thrown",
		Run:   fig16,
	})
}
