package experiments

import (
	"fmt"

	"repro/internal/bins"
	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/table"
)

// powerMixMaxLoad runs the §4.5 game: n bins, half of capacity 1 and half
// of capacity x, m = C balls, selection probabilities proportional to
// c^t. Returns the mean max load.
func powerMixMaxLoad(p Params, x int64, t float64, reps int) (float64, error) {
	const n = 100
	arr, err := bins.TwoClass(n/2, 1, n/2, x)
	if err != nil {
		return 0, err
	}
	res, err := p.sim(sim.Config{
		Array:   arr,
		Dist:    dist.Power{T: t},
		Reps:    reps,
		Seed:    p.seed(),
		Workers: p.Workers,
	})
	if err != nil {
		return 0, err
	}
	return res.MaxLoad.Mean(), nil
}

// fig17 sweeps the exponent t for each big-bin capacity x in {2..14} and
// reports the t that minimises the mean maximum load. The paper uses a
// grid of step 0.005 with 1,000,000 repetitions; we default to step 0.05
// with the Params-controlled repetition count, which pins the optimum to
// within the grid step.
func fig17(p Params) ([]*table.Table, error) {
	reps := p.reps(2000)
	tStep := 0.05
	if p.scale() < 1 {
		tStep = 0.25
	}
	tab := table.New(fmt.Sprintf("Figure 17: optimal exponent per big-bin capacity (n=100, 50/50 mix, %d reps)", reps),
		"capacity_x", "optimal_t", "max_load_at_opt", "max_load_at_t1")
	for x := int64(2); x <= 14; x++ {
		bestT, bestLoad := 0.0, 0.0
		var atOne float64
		first := true
		for t := 1.0; t <= 3.0+1e-9; t += tStep {
			ml, err := powerMixMaxLoad(p, x, t, reps)
			if err != nil {
				return nil, err
			}
			if first || ml < bestLoad {
				bestT, bestLoad = t, ml
				first = false
			}
			if t == 1.0 {
				atOne = ml
			}
		}
		tab.MustAddRow(float64(x), bestT, bestLoad, atOne)
	}
	return []*table.Table{tab}, nil
}

// fig18 plots the mean max load as a function of the exponent t for
// capacity pairs (1, k), k in {2..6}.
func fig18(p Params) ([]*table.Table, error) {
	reps := p.reps(2000)
	tStep := 0.1
	if p.scale() < 1 {
		tStep = 0.35
	}
	ks := []int64{2, 3, 4, 5, 6}
	cols := []string{"t"}
	for _, k := range ks {
		cols = append(cols, fmt.Sprintf("max_load_caps_1_and_%d", k))
	}
	tab := table.New(fmt.Sprintf("Figure 18: max load vs exponent (n=100, 50/50 mix, %d reps)", reps), cols...)
	for t := 0.0; t <= 3.5+1e-9; t += tStep {
		row := []float64{t}
		for _, k := range ks {
			ml, err := powerMixMaxLoad(p, k, t, reps)
			if err != nil {
				return nil, err
			}
			row = append(row, ml)
		}
		tab.MustAddRow(row...)
	}
	return []*table.Table{tab}, nil
}

func init() {
	register(Experiment{
		ID:    "fig17",
		Title: "Optimal selection-probability exponent for mixed capacities",
		Run:   fig17,
	})
	register(Experiment{
		ID:    "fig18",
		Title: "Max load as a function of the selection-probability exponent",
		Run:   fig18,
	})
}
