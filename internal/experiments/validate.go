package experiments

import (
	"fmt"
	"math"

	"repro/internal/bins"
	"repro/internal/coupling"
	"repro/internal/dist"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/theory"
	"repro/internal/xrand"
)

// obs1 validates Observation 1: in the m = C game, bins of capacity
// >= r·ln(n) keep load <= 4 w.h.p. We run mixed arrays and report the
// maximum load observed in any big bin across all repetitions.
func obs1(p Params) ([]*table.Table, error) {
	reps := p.reps(200)
	tab := table.New(fmt.Sprintf("Observation 1: max load of big bins stays <= %g (m=C, d=2, %d reps)",
		theory.Observation1LoadBound, reps),
		"n", "big_capacity", "pct_big", "max_big_load_mean", "max_big_load_worst")
	for _, cfg := range []struct {
		n      int
		pctBig int
	}{
		{1000, 10}, {1000, 50}, {10000, 10}, {10000, 50},
	} {
		n := p.scaledN(cfg.n, 200)
		bigCap := int64(math.Ceil(theory.BigThreshold(n, 1)))
		nBig := n * cfg.pctBig / 100
		arr, err := bins.TwoClass(n-nBig, 1, nBig, bigCap)
		if err != nil {
			return nil, err
		}
		res, err := p.sim(sim.Config{
			Array:         arr,
			Reps:          reps,
			Seed:          p.seed(),
			Workers:       p.Workers,
			ClassMaxLoads: []int64{bigCap},
		})
		if err != nil {
			return nil, err
		}
		big := res.ClassMaxLoad[bigCap]
		tab.MustAddRow(float64(n), float64(bigCap), float64(cfg.pctBig), big.Mean(), big.Max())
	}
	return []*table.Table{tab}, nil
}

// thm3 validates Theorem 3: for m = C = Θ(n) with heterogeneous random
// capacities, the max load stays within ln ln(n)/ln(d) + O(1).
func thm3(p Params) ([]*table.Table, error) {
	reps := p.reps(100)
	tab := table.New(fmt.Sprintf("Theorem 3: max load vs ln ln(n)/ln(d) bound (random capacities, m=C, %d reps)", reps),
		"n", "d", "max_load_mean", "max_load_worst", "lnln_bound", "excess_over_bound")
	for _, n0 := range []int{1000, 10000, 30000} {
		n := p.scaledN(n0, 200)
		for _, d := range []int{2, 3, 4} {
			d := d
			res, err := p.sim(sim.Config{
				ArrayFn: func(r *xrand.Rand) (*bins.Array, error) {
					return bins.RandomBinomial(n, 4, r)
				},
				Placer:  protocol.GreedyFactory(d),
				Reps:    reps,
				Seed:    p.seed(),
				Workers: p.Workers,
			})
			if err != nil {
				return nil, err
			}
			bound := theory.TwoChoiceBound(n, d)
			tab.MustAddRow(float64(n), float64(d),
				res.MaxLoad.Mean(), res.MaxLoad.Max(), bound, res.MaxLoad.Mean()-bound)
		}
	}
	return []*table.Table{tab}, nil
}

// thm5 validates Theorem 5: when a constant fraction α of the bins has
// capacity q(n) = Ω(ln ln n), routing *all* probability to those bins
// (TopOnly) yields constant max load ~ k/α + O(1), and can beat the
// proportional distribution.
func thm5(p Params) ([]*table.Table, error) {
	reps := p.reps(300)
	const alpha = 0.5
	tab := table.New(fmt.Sprintf("Theorem 5: top-only distribution yields constant max load (alpha=%.1f, m=C, d=2, %d reps)", alpha, reps),
		"n", "q_n", "prop_max_load", "toponly_max_load", "k_over_alpha")
	for _, n0 := range []int{100, 1000, 10000} {
		n := p.scaledN(n0, 100)
		q := int64(math.Max(2, math.Ceil(3*math.Log(math.Log(float64(n))))))
		nBig := int(alpha * float64(n))
		arr, err := bins.TwoClass(n-nBig, 1, nBig, q)
		if err != nil {
			return nil, err
		}
		// k = m/C = 1 here (m = C).
		run := func(dd dist.Distribution) (float64, error) {
			res, err := p.sim(sim.Config{
				Array:   arr,
				Dist:    dd,
				Reps:    reps,
				Seed:    p.seed(),
				Workers: p.Workers,
			})
			if err != nil {
				return 0, err
			}
			return res.MaxLoad.Mean(), nil
		}
		prop, err := run(dist.Proportional{})
		if err != nil {
			return nil, err
		}
		top, err := run(dist.TopOnly{MinCapacity: q})
		if err != nil {
			return nil, err
		}
		tab.MustAddRow(float64(n), float64(q), prop, top, theory.Theorem5MaxLoad(1, alpha))
	}
	return []*table.Table{tab}, nil
}

// lemma1 validates Lemma 1 end to end: the max load of the heterogeneous
// process P is stochastically dominated by the max load of the C-unit-bin
// process Q. We compare mean max loads over matched configurations.
func lemma1(p Params) ([]*table.Table, error) {
	reps := p.reps(400)
	tab := table.New(fmt.Sprintf("Lemma 1: heterogeneous max load vs C unit bins (m=C, d=2, %d reps)", reps),
		"n_het", "total_capacity", "het_max_load", "unit_max_load", "dominated")
	configs := [][]int64{
		{1, 1, 1, 1, 2, 2, 4, 4, 8, 8},
		{10, 10, 10, 10},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
	}
	// plus a bigger random one
	r := xrand.New(p.seed())
	big := make([]int64, 500)
	for i := range big {
		big[i] = int64(r.Intn(8)) + 1
	}
	configs = append(configs, big)

	for _, caps := range configs {
		het, err := bins.New(caps)
		if err != nil {
			return nil, err
		}
		c := het.TotalCapacity()
		unit, err := bins.Uniform(int(c), 1)
		if err != nil {
			return nil, err
		}
		resH, err := p.sim(sim.Config{Array: het, Reps: reps, Seed: p.seed(), Workers: p.Workers})
		if err != nil {
			return nil, err
		}
		resU, err := p.sim(sim.Config{Array: unit, Reps: reps, Seed: p.seed() + 1, Workers: p.Workers})
		if err != nil {
			return nil, err
		}
		dominated := 0.0
		if resH.MaxLoad.Mean() <= resU.MaxLoad.Mean()+3*resU.MaxLoad.CI95() {
			dominated = 1
		}
		tab.MustAddRow(float64(het.N()), float64(c),
			resH.MaxLoad.Mean(), resU.MaxLoad.Mean(), dominated)
	}
	return []*table.Table{tab}, nil
}

// lemma1Coupling audits the coupled construction from Lemma 1's proof:
// for each configuration it replays the shared-rank processes and
// reports where (if anywhere) the majorisation invariant broke.
func lemma1Coupling(p Params) ([]*table.Table, error) {
	reps := p.reps(20)
	tab := table.New(fmt.Sprintf("Lemma 1 coupling audit: Q's slot vector majorises P's after every ball (%d audited runs/config)", reps),
		"n_het", "total_capacity", "d", "runs", "violations", "worst_het_max", "worst_unit_max")
	configs := []struct {
		caps []int64
		d    int
	}{
		{[]int64{1, 2, 3, 4}, 2},
		{[]int64{1, 1, 1, 1, 8}, 2},
		{[]int64{4, 4, 4}, 3},
		{[]int64{7, 1, 1, 1}, 2},
	}
	for _, cfg := range configs {
		var total int64
		for _, c := range cfg.caps {
			total += c
		}
		violations := 0
		worstHet, worstUnit := 0.0, 0.0
		for rep := 0; rep < reps; rep++ {
			res, err := coupling.Audit(cfg.caps, cfg.d, 2*total, p.seed()+uint64(rep))
			if err != nil {
				return nil, err
			}
			if res.Violation != 0 {
				violations++
			}
			if res.HetMaxLoad > worstHet {
				worstHet = res.HetMaxLoad
			}
			if res.UnitMaxLoad > worstUnit {
				worstUnit = res.UnitMaxLoad
			}
		}
		tab.MustAddRow(float64(len(cfg.caps)), float64(total), float64(cfg.d),
			float64(reps), float64(violations), worstHet, worstUnit)
	}
	return []*table.Table{tab}, nil
}

// ablationTieBreak compares Algorithm 1's capacity tie-break against the
// capacity-oblivious Standard protocol and against always-go-left on a
// heterogeneous array — quantifying how much the tie-break matters.
func ablationTieBreak(p Params) ([]*table.Table, error) {
	reps := p.reps(500)
	n := p.scaledN(1000, 100)
	tab := table.New(fmt.Sprintf("Ablation: tie-breaking rule on a 50/50 mix of capacities 1 and 10 (n=%d, m=C, %d reps)", n, reps),
		"d", "greedy_capacity_tiebreak", "standard_ballcount", "always_go_left")
	arr, err := bins.TwoClass(n/2, 1, n/2, 10)
	if err != nil {
		return nil, err
	}
	for _, d := range []int{2, 3, 4} {
		row := []float64{float64(d)}
		for _, f := range []protocol.Factory{
			protocol.GreedyFactory(d), protocol.StandardFactory(d), protocol.GoLeftFactory(d),
		} {
			res, err := p.sim(sim.Config{
				Array: arr, Placer: f, Reps: reps, Seed: p.seed(), Workers: p.Workers,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, res.MaxLoad.Mean())
		}
		tab.MustAddRow(row...)
	}
	return []*table.Table{tab}, nil
}

// ablationDist compares selection distributions (uniform vs proportional
// vs tuned power) on the same heterogeneous array — the §1 "two natural
// probabilities" question plus §4.5's tuning.
func ablationDist(p Params) ([]*table.Table, error) {
	reps := p.reps(500)
	n := p.scaledN(1000, 100)
	arr, err := bins.TwoClass(n/2, 1, n/2, 10)
	if err != nil {
		return nil, err
	}
	tab := table.New(fmt.Sprintf("Ablation: selection distribution on a 50/50 mix of capacities 1 and 10 (n=%d, m=C, d=2, %d reps)", n, reps),
		"exponent_t", "max_load_mean", "max_load_ci95")
	for _, t := range []float64{0, 0.5, 1, 1.5, 2, 2.5, 3} {
		res, err := p.sim(sim.Config{
			Array: arr, Dist: dist.Power{T: t}, Reps: reps, Seed: p.seed(), Workers: p.Workers,
		})
		if err != nil {
			return nil, err
		}
		tab.MustAddRow(t, res.MaxLoad.Mean(), res.MaxLoad.CI95())
	}
	tab.Comment = "t=0 is uniform selection, t=1 capacity-proportional (the paper's default)"
	return []*table.Table{tab}, nil
}

// onePlusBeta explores the (1+β)-choice extension on the heterogeneous
// mix: how quickly does a small probability of a second probe recover
// most of the two-choice benefit?
func onePlusBeta(p Params) ([]*table.Table, error) {
	reps := p.reps(500)
	n := p.scaledN(1000, 100)
	arr, err := bins.TwoClass(n/2, 1, n/2, 10)
	if err != nil {
		return nil, err
	}
	tab := table.New(fmt.Sprintf("Extension: (1+beta)-choice on a 50/50 mix of capacities 1 and 10 (n=%d, m=C, %d reps)", n, reps),
		"beta", "max_load_mean", "max_load_ci95")
	for _, beta := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		res, err := p.sim(sim.Config{
			Array: arr, Placer: protocol.OnePlusBetaFactory(beta),
			Reps: reps, Seed: p.seed(), Workers: p.Workers,
		})
		if err != nil {
			return nil, err
		}
		tab.MustAddRow(beta, res.MaxLoad.Mean(), res.MaxLoad.CI95())
	}
	return []*table.Table{tab}, nil
}

// summary runs a quick cross-section of the validation suite and emits a
// single pass/fail table — the "is this reproduction healthy?" command.
func summary(p Params) ([]*table.Table, error) {
	if p.Scale <= 0 || p.Scale > 0.5 {
		p.Scale = 0.5
	}
	tab := table.New("Reproduction health check (1 = claim holds at quick scale)",
		"check", "pass", "measured", "reference")
	checkID := 0.0
	addCheck := func(pass bool, measured, reference float64) {
		checkID++
		v := 0.0
		if pass {
			v = 1
		}
		tab.MustAddRow(checkID, v, measured, reference)
	}
	tab.Comment = "checks: 1 big-bin load<=4 | 2 thm3 below lnln bound | 3 thm5 toponly<=k/a+1 | 4 lemma1 coupling | 5 greedy beats oblivious"

	// 1: Observation 1 at one configuration.
	obsTabs, err := obs1(Params{Reps: p.reps(40), Seed: p.seed(), Workers: p.Workers, Scale: p.scale(), Engine: p.Engine, Shards: p.Shards})
	if err != nil {
		return nil, err
	}
	worst := 0.0
	for i := 0; i < obsTabs[0].NumRows(); i++ {
		if v := obsTabs[0].Row(i)[4]; v > worst {
			worst = v
		}
	}
	addCheck(worst <= theory.Observation1LoadBound, worst, theory.Observation1LoadBound)

	// 2: Theorem 3 at one (n, d).
	n := p.scaledN(5000, 500)
	res, err := p.sim(sim.Config{
		ArrayFn: func(r *xrand.Rand) (*bins.Array, error) {
			return bins.RandomBinomial(n, 4, r)
		},
		Reps: p.reps(40), Seed: p.seed(), Workers: p.Workers,
	})
	if err != nil {
		return nil, err
	}
	bound := theory.TwoChoiceBound(n, 2) + 2
	addCheck(res.MaxLoad.Mean() <= bound, res.MaxLoad.Mean(), bound)

	// 3: Theorem 5 top-only.
	arr, err := bins.TwoClass(n/2, 1, n/2, 5)
	if err != nil {
		return nil, err
	}
	resTop, err := p.sim(sim.Config{
		Array: arr, Dist: dist.TopOnly{MinCapacity: 5},
		Reps: p.reps(40), Seed: p.seed(), Workers: p.Workers,
	})
	if err != nil {
		return nil, err
	}
	addCheck(resTop.MaxLoad.Mean() <= theory.Theorem5MaxLoad(1, 0.5)+1,
		resTop.MaxLoad.Mean(), theory.Theorem5MaxLoad(1, 0.5))

	// 4: Lemma 1 coupling audit.
	audit, err := coupling.Audit([]int64{1, 2, 3, 4}, 2, 20, p.seed())
	if err != nil {
		return nil, err
	}
	addCheck(audit.Violation == 0, float64(audit.Violation), 0)

	// 5: capacity-aware beats oblivious on a mixed array.
	mixed, err := bins.TwoClass(n/2, 1, n/2, 10)
	if err != nil {
		return nil, err
	}
	resG, err := p.sim(sim.Config{Array: mixed, Reps: p.reps(40), Seed: p.seed(), Workers: p.Workers})
	if err != nil {
		return nil, err
	}
	resS, err := p.sim(sim.Config{
		Array: mixed, Placer: protocol.StandardFactory(2),
		Reps: p.reps(40), Seed: p.seed(), Workers: p.Workers,
	})
	if err != nil {
		return nil, err
	}
	addCheck(resG.MaxLoad.Mean() < resS.MaxLoad.Mean(), resG.MaxLoad.Mean(), resS.MaxLoad.Mean())

	return []*table.Table{tab}, nil
}

func init() {
	register(Experiment{ID: "summary", Title: "Reproduction health check: key claims at quick scale", Run: summary})
	register(Experiment{ID: "obs1", Title: "Validate Observation 1: big-bin load bounded by 4", Run: obs1})
	register(Experiment{ID: "thm3", Title: "Validate Theorem 3: lnln(n)/ln(d) + O(1) max load", Run: thm3})
	register(Experiment{ID: "thm5", Title: "Validate Theorem 5: top-only distribution constant load", Run: thm5})
	register(Experiment{ID: "lemma1", Title: "Validate Lemma 1: unit-bin process dominates", Run: lemma1})
	register(Experiment{ID: "lemma1-coupling", Title: "Audit Lemma 1's coupled majorisation invariant step by step", Run: lemma1Coupling})
	register(Experiment{ID: "ablation-tiebreak", Title: "Ablation: Algorithm 1 tie-break vs baselines", Run: ablationTieBreak})
	register(Experiment{ID: "ablation-dist", Title: "Ablation: selection distribution exponent", Run: ablationDist})
	register(Experiment{ID: "ext-oneplusbeta", Title: "Extension: (1+beta)-choice process", Run: onePlusBeta})
}
