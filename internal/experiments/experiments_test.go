package experiments

import (
	"strings"
	"testing"
)

// tiny returns Params that make every experiment fast enough for CI.
func tiny() Params {
	return Params{Reps: 5, Seed: 7, Scale: 0.02}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07",
		"fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18",
		"obs1", "thm3", "thm5", "lemma1", "lemma1-coupling",
		"ablation-tiebreak", "ablation-dist", "ext-oneplusbeta",
		"ext-heights", "ext-batch", "ext-heavyhet", "ext-migration",
		"ext-wieder", "ext-tune", "ext-fairness", "ext-cluster", "ext-vnodes", "summary",
	}
	all := All()
	got := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if got[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		got[e.ID] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	// sorted by ID
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatal("All() not sorted")
		}
	}
}

func TestGet(t *testing.T) {
	e, err := Get("fig01")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "fig01" {
		t.Fatalf("Get returned %s", e.ID)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestAliasesPointAtRealExperiments(t *testing.T) {
	for _, e := range All() {
		if e.AliasOf == "" {
			continue
		}
		target, err := Get(e.AliasOf)
		if err != nil {
			t.Errorf("%s aliases unknown %s", e.ID, e.AliasOf)
			continue
		}
		if target.AliasOf != "" {
			t.Errorf("%s aliases another alias %s", e.ID, e.AliasOf)
		}
	}
}

// TestAllExperimentsRunAtTinyScale smoke-tests every experiment end to
// end. Aliased experiments are skipped (their target covers them).
func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	for _, e := range All() {
		if e.AliasOf != "" {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tabs, err := e.Run(tiny())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tabs) == 0 {
				t.Fatalf("%s returned no tables", e.ID)
			}
			for _, tab := range tabs {
				if tab.Title == "" {
					t.Errorf("%s produced an untitled table", e.ID)
				}
				if tab.NumRows() == 0 {
					t.Errorf("%s produced empty table %q", e.ID, tab.Title)
				}
				var sb strings.Builder
				if err := tab.WriteTSV(&sb); err != nil {
					t.Errorf("%s: TSV render: %v", e.ID, err)
				}
			}
		})
	}
}

func TestParamsDefaults(t *testing.T) {
	var p Params
	if p.seed() != 1 {
		t.Error("default seed should be 1")
	}
	if p.scale() != 1 {
		t.Error("default scale should be 1")
	}
	if p.reps(100) != 100 {
		t.Error("default reps should be the experiment default")
	}
	p.Reps = 7
	if p.reps(100) != 7 {
		t.Error("reps override ignored")
	}
	p = Params{Scale: 0.001}
	if p.reps(100) != 3 {
		t.Errorf("scaled reps floor = %d, want 3", p.reps(100))
	}
	if p.scaledN(10000, 50) != 50 {
		t.Error("scaledN floor broken")
	}
	p = Params{Scale: 5} // scale-up: sizes grow, repetitions do not
	if p.scale() != 5 {
		t.Error("scale-up factor not honoured")
	}
	if p.scaledN(100, 10) != 500 {
		t.Errorf("scaledN at scale 5 = %d, want 500", p.scaledN(100, 10))
	}
	if p.reps(100) != 100 {
		t.Errorf("reps at scale 5 = %d, want 100 (never scaled up)", p.reps(100))
	}
}

// TestFig06Shape: max load decreases substantially from 0% large bins to
// 100% large bins (the paper's headline effect). Run at a moderate scale
// so the shape is stable.
func TestFig06Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test needs a moderate scale")
	}
	tabs, err := mixSweep(Params{Reps: 60, Seed: 3, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	maxCol, err := tabs[0].Col("max_load_mean")
	if err != nil {
		t.Fatal(err)
	}
	first, last := maxCol[0], maxCol[len(maxCol)-1]
	if first < 2.0 {
		t.Errorf("max load with all-small bins = %.3f, expected >= 2 (lnln n/ln 2 regime)", first)
	}
	if last > 2.0 {
		t.Errorf("max load with all-large bins = %.3f, expected < 2", last)
	}
	if last >= first {
		t.Errorf("max load did not decrease: %.3f -> %.3f", first, last)
	}
	// Figure 7 series: small bins hold the max initially, large at the end.
	smallCol, err := tabs[1].Col("pct_small_has_max")
	if err != nil {
		t.Fatal(err)
	}
	if smallCol[1] < 50 {
		t.Errorf("small bins hold max in only %.1f%% of runs at 1 step", smallCol[1])
	}
}
