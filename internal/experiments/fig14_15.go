package experiments

import (
	"fmt"

	"repro/internal/bins"
	"repro/internal/sim"
	"repro/internal/table"
)

// growthCurve describes one growth model (one curve of Fig 14/15).
type growthCurve struct {
	label   string
	batches func(totalBins int) []bins.Batch
}

// growthSweep implements §4.3: the system grows from firstCount disks in
// batches of batchSize; at each size the whole allocation is redone from
// scratch with m = C balls, and the mean max load is recorded.
func growthSweep(p Params, curves []growthCurve, defReps int, title string) (*table.Table, error) {
	const (
		firstCount = 2
		batchSize  = 20
	)
	maxBins := p.scaledN(1000, 62)
	reps := p.reps(defReps)
	cols := []string{"bins"}
	for _, c := range curves {
		cols = append(cols, c.label)
	}
	tab := table.New(fmt.Sprintf("%s (up to %d bins, m=C, d=2, %d reps)", title, maxBins, reps), cols...)

	sizes := []int{firstCount}
	for s := firstCount + batchSize; s < maxBins; s += batchSize {
		sizes = append(sizes, s)
	}
	sizes = append(sizes, maxBins)

	for _, size := range sizes {
		row := []float64{float64(size)}
		for _, c := range curves {
			arr, err := bins.Generations(c.batches(size))
			if err != nil {
				return nil, err
			}
			res, err := p.sim(sim.Config{
				Array:   arr,
				Reps:    reps,
				Seed:    p.seed(),
				Workers: p.Workers,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, res.MaxLoad.Mean())
		}
		tab.MustAddRow(row...)
	}
	return tab, nil
}

func baselineCurve() growthCurve {
	return growthCurve{
		label: "base_all_c2",
		batches: func(total int) []bins.Batch {
			return []bins.Batch{{Count: total, Capacity: 2}}
		},
	}
}

func fig14(p Params) ([]*table.Table, error) {
	curves := []growthCurve{baselineCurve()}
	for _, a := range []int64{1, 2, 4, 6} {
		a := a
		curves = append(curves, growthCurve{
			label: fmt.Sprintf("lin_a%d", a),
			batches: func(total int) []bins.Batch {
				return bins.LinearBatches(2, 20, total, 2, a)
			},
		})
	}
	tab, err := growthSweep(p, curves, 50, "Figure 14: linear growth between generations")
	if err != nil {
		return nil, err
	}
	return []*table.Table{tab}, nil
}

func fig15(p Params) ([]*table.Table, error) {
	curves := []growthCurve{baselineCurve()}
	for _, b := range []float64{1.005, 1.1, 1.2, 1.4} {
		b := b
		curves = append(curves, growthCurve{
			label: fmt.Sprintf("exp_b%g", b),
			batches: func(total int) []bins.Batch {
				return bins.ExponentialBatches(2, 20, total, 2, b)
			},
		})
	}
	// The paper runs this to 1,000 disks; with b = 1.4 that implies batch
	// capacities around 2·1.4^49 ≈ 4·10^7 and therefore ~10^9 balls per
	// repetition, which is not a laptop-scale experiment. We default to
	// 20 generations (402 disks) where the crossover between exponential
	// and linear growth is already visible, and leave the full range to
	// explicit Params.
	if p.Scale <= 0 || p.Scale > 0.4 {
		p.Scale = 0.4
	}
	tab, err := growthSweep(p, curves, 100, "Figure 15: exponential growth between generations")
	if err != nil {
		return nil, err
	}
	tab.Comment = "capped at 20 generations: b=1.4 over 50 generations needs ~1e9 balls/rep (see EXPERIMENTS.md)"
	return []*table.Table{tab}, nil
}

func init() {
	register(Experiment{
		ID:    "fig14",
		Title: "Disk scale-out, linear generation growth: max load vs system size",
		Run:   fig14,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "Disk scale-out, exponential generation growth: max load vs system size",
		Run:   fig15,
	})
}
