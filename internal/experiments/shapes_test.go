package experiments

// Shape tests: run selected experiments at moderate scale and assert the
// qualitative findings of the paper hold (who wins, direction of trends,
// where crossovers fall). Skipped in -short mode.

import (
	"testing"

	"repro/internal/stats"
)

// TestFig06Plateau: the paper highlights the plateau at max load 2 in
// Figure 6. Detect it programmatically at moderate scale.
func TestFig06Plateau(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	// The plateau needs the paper's full n = 1000 (at smaller n the curve
	// slides through 2 without flattening), so run full scale with a
	// moderate repetition count.
	p := Params{Seed: 11, Scale: 1, Reps: 200}
	tabs, err := mixSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	ys, err := tabs[0].Col("max_load_mean")
	if err != nil {
		t.Fatal(err)
	}
	plats := stats.Plateaus(ys, 0.06, 3)
	found := false
	for _, pl := range plats {
		if pl.Level > 1.8 && pl.Level < 2.2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no plateau near level 2 detected; plateaus = %+v, series = %v", plats, ys)
	}
}

func moderate() Params {
	return Params{Seed: 11, Scale: 0.25}
}

// TestFig01Shape: uniform capacity-c bins with m = C match Observation
// 2's prediction 1 + lnln(n)/c closely (the paper: "in our simulations
// the maximum load is very close to 1 + ln ln(n)/c").
func TestFig01Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	p := Params{Seed: 19, Scale: 0.2, Reps: 60} // n = 2000
	tabs, err := uniformDistribution(p, 2000, []int64{2, 4}, 1, 60, "shape check")
	if err != nil {
		t.Fatal(err)
	}
	sum := tabs[1] // summary table: capacity, balls, max_mean, ci, prediction
	for i := 0; i < sum.NumRows(); i++ {
		row := sum.Row(i)
		c, measured := row[0], row[2]
		lnln := 2.03 // ln ln 2000
		predicted := 1 + lnln/c
		if measured < 1 || measured > predicted+0.3 {
			t.Errorf("c=%v: max load %.3f outside (1, %.3f+0.3]", c, measured, predicted)
		}
	}
}

func TestFig14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	p := moderate()
	p.Reps = 20
	tabs, err := fig14(p)
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	last := tab.Row(tab.NumRows() - 1)
	// columns: bins, base, a1, a2, a4, a6
	base, a1, a6 := last[1], last[2], last[5]
	if base < 1.5 {
		t.Errorf("baseline max load %.3f should stay near 2", base)
	}
	if a1 >= base {
		t.Errorf("linear growth a=1 (%.3f) should beat the flat baseline (%.3f)", a1, base)
	}
	if a6 > a1 {
		t.Errorf("a=6 (%.3f) should not be worse than a=1 (%.3f)", a6, a1)
	}
}

func TestFig16Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	p := moderate()
	p.Reps = 5
	tabs, err := fig16(p)
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	// columns: i, dev_1n, dev_2n, dev_5n, dev_10n
	first := tab.Row(0)
	last := tab.Row(tab.NumRows() - 1)
	for c := 1; c <= 4; c++ {
		// flat in m: the deviation after 100 rounds within 60% of round 1
		lo, hi := first[c], last[c]
		if hi > 1.6*lo+0.3 {
			t.Errorf("column %d deviation grew with m: %.3f -> %.3f", c, lo, hi)
		}
	}
	// ordered in capacity: bigger CAP → smaller deviation
	if !(last[1] > last[2] && last[2] > last[3] && last[3] > last[4]) {
		t.Errorf("deviations not ordered by capacity: %v", last[1:])
	}
}

func TestFig18Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	p := moderate()
	p.Reps = 400
	tabs, err := fig18(p)
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	// every capacity column: the minimum over t is strictly below the
	// values at both ends (U shape), and the argmin is at t > 1.
	ts, err := tab.Col("t")
	if err != nil {
		t.Fatal(err)
	}
	for ci, col := range tab.Cols[1:] {
		vals, err := tab.Col(col)
		if err != nil {
			t.Fatal(err)
		}
		minI := 0
		for i, v := range vals {
			if v < vals[minI] {
				minI = i
			}
		}
		if vals[minI] >= vals[0] || vals[minI] >= vals[len(vals)-1] {
			t.Errorf("%s: no interior minimum (ends %.3f/%.3f, min %.3f)",
				col, vals[0], vals[len(vals)-1], vals[minI])
		}
		// The "optimum above proportional" effect is pronounced for the
		// larger capacity gaps; the (1,2) mix is nearly flat around its
		// optimum, so the coarse-grid argmin is noisy there (Fig 17 puts
		// it at ~1.15). Assert t* > 1 only from capacity 3 upwards.
		if ci >= 1 && ts[minI] <= 0.9 {
			t.Errorf("%s: optimal exponent %.2f not above ~1", col, ts[minI])
		}
	}
}

func TestExtBatchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	p := moderate()
	p.Reps = 100
	tabs, err := extBatch(p)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := tabs[0].Col("max_load_mean")
	if err != nil {
		t.Fatal(err)
	}
	// sequential (B=1) strictly better than fully oblivious (B=m)
	if vals[0] >= vals[len(vals)-1] {
		t.Errorf("B=1 (%.3f) not better than B=m (%.3f)", vals[0], vals[len(vals)-1])
	}
}

func TestExtWiederShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	p := moderate()
	p.Reps = 40
	tabs, err := extWieder(p)
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	first := tab.Row(0)
	last := tab.Row(tab.NumRows() - 1)
	// skewed d=2 deviation grows substantially with m
	if last[1] < 1.5*first[1] {
		t.Errorf("skewed d=2 deviation did not grow: %.3f -> %.3f", first[1], last[1])
	}
	// uniform d=2 stays flat-ish
	if last[3] > 2*first[3]+1 {
		t.Errorf("uniform d=2 deviation grew: %.3f -> %.3f", first[3], last[3])
	}
	// larger d tames the skew: d=4 well below d=2 at the end
	if last[2] >= last[1] {
		t.Errorf("d=4 (%.3f) not below d=2 (%.3f) under skew", last[2], last[1])
	}
}

func TestThm5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	p := moderate()
	p.Reps = 100
	tabs, err := thm5(p)
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	for i := 0; i < tab.NumRows(); i++ {
		row := tab.Row(i)
		// columns: n, q, prop, toponly, bound
		if row[3] > row[4]+1 {
			t.Errorf("top-only load %.3f above k/alpha + 1 (n=%v)", row[3], row[0])
		}
	}
	// top-only advantage appears at the largest n
	last := tab.Row(tab.NumRows() - 1)
	if last[3] >= last[2] {
		t.Errorf("top-only (%.3f) should beat proportional (%.3f) at large n", last[3], last[2])
	}
}
