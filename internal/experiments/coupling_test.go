package experiments

// Lemma 1 validation at the experiment level. The step-wise coupled
// construction lives in internal/coupling (with its own unit and
// property tests); here we check the lemma's *conclusion* on the real
// Algorithm 1 processes and keep an end-to-end audit in place.

import (
	"testing"

	"repro/internal/bins"
	"repro/internal/coupling"
	"repro/internal/sim"
)

func TestLemma1CouplingFixedConfigs(t *testing.T) {
	configs := [][]int64{
		{4, 4},
		{1, 2, 3},
		{1, 1, 1, 1, 8},
		{2, 2, 2, 2, 2, 2},
		{5, 1, 3, 1},
	}
	for _, caps := range configs {
		var total int64
		for _, c := range caps {
			total += c
		}
		res, err := coupling.Audit(caps, 2, 2*total, 42)
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != 0 {
			t.Fatalf("caps %v: coupling violated at ball %d", caps, res.Violation)
		}
	}
}

func TestLemma1CouplingHigherD(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5} {
		res, err := coupling.Audit([]int64{1, 2, 4, 8}, d, 30, uint64(100+d))
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != 0 {
			t.Fatalf("d=%d: coupling violated at ball %d", d, res.Violation)
		}
	}
}

// TestMaxLoadDominationEndToEnd: beyond the coupled construction, verify
// the lemma's *conclusion* on the real Algorithm 1 processes: the mean
// max load of the heterogeneous game never exceeds the unit-bin game's by
// more than noise.
func TestMaxLoadDominationEndToEnd(t *testing.T) {
	caps := []int64{1, 1, 2, 2, 4, 4, 8, 8, 16, 16}
	var total int64
	for _, c := range caps {
		total += c
	}
	unitCaps := make([]int64, total)
	for i := range unitCaps {
		unitCaps[i] = 1
	}
	const reps = 400
	meanHet, meanUnit := 0.0, 0.0
	for rep := 0; rep < reps; rep++ {
		meanHet += greedyMaxLoad(t, caps, uint64(rep))
		meanUnit += greedyMaxLoad(t, unitCaps, uint64(rep)+1000000)
	}
	meanHet /= reps
	meanUnit /= reps
	if meanHet > meanUnit+0.15 {
		t.Fatalf("heterogeneous mean max %.3f exceeds unit-bin %.3f", meanHet, meanUnit)
	}
}

// greedyMaxLoad plays one m = C Algorithm-1 game on the given capacities
// and returns the final max load.
func greedyMaxLoad(t *testing.T, caps []int64, seed uint64) float64 {
	t.Helper()
	arr, err := sim.RunOnce(sim.Config{Array: bins.MustNew(caps), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return arr.MaxLoad()
}
