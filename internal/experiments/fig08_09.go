package experiments

import (
	"fmt"

	"repro/internal/bins"
	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/xrand"
)

// fig08 sweeps the §4.2 randomised bin sizes: n bins with capacities
// 1 + Bin(7, (c-1)/7) for target mean capacity c from 1 to 8, m = C,
// reporting max load against the (realised) total capacity.
func fig08(p Params) ([]*table.Table, error) {
	n := p.scaledN(10000, 200)
	reps := p.reps(100)
	step := 0.25
	if p.scale() < 1 {
		step = 0.5
	}
	tab := table.New(fmt.Sprintf("Figure 8: randomised bin sizes, n=%d, m=C, d=2 (%d reps)", n, reps),
		"target_mean_c", "total_capacity_mean", "max_load_mean", "max_load_ci95")
	for c := 1.0; c <= 8.0+1e-9; c += step {
		c := c
		res, err := p.sim(sim.Config{
			ArrayFn: func(r *xrand.Rand) (*bins.Array, error) {
				return bins.RandomBinomial(n, c, r)
			},
			Reps:    reps,
			Seed:    p.seed(),
			Workers: p.Workers,
		})
		if err != nil {
			return nil, err
		}
		tab.MustAddRow(c, res.TotalCapacity.Mean(), res.MaxLoad.Mean(), res.MaxLoad.CI95())
	}
	return []*table.Table{tab}, nil
}

// fig09 repeats the randomised-size sweep at n = 1000 and reports, per
// capacity class x in {1, 2, 4, 6}, the percentage of repetitions in
// which a size-x bin attains the maximum load.
func fig09(p Params) ([]*table.Table, error) {
	n := p.scaledN(1000, 100)
	reps := p.reps(1000)
	classes := []int64{1, 2, 4, 6}
	step := 0.25
	if p.scale() < 1 {
		step = 0.5
	}
	cols := []string{"target_mean_c", "total_capacity_mean"}
	for _, cl := range classes {
		cols = append(cols, fmt.Sprintf("pct_max_in_size_%d", cl))
	}
	tab := table.New(fmt.Sprintf("Figure 9: randomised bin sizes, n=%d, location of max load (%d reps)", n, reps), cols...)
	for c := 1.0; c <= 8.0+1e-9; c += step {
		c := c
		res, err := p.sim(sim.Config{
			ArrayFn: func(r *xrand.Rand) (*bins.Array, error) {
				return bins.RandomBinomial(n, c, r)
			},
			Reps:         reps,
			Seed:         p.seed(),
			Workers:      p.Workers,
			TrackClasses: classes,
		})
		if err != nil {
			return nil, err
		}
		row := []float64{c, res.TotalCapacity.Mean()}
		for _, cl := range classes {
			row = append(row, 100*res.ClassMaxFraction[cl])
		}
		tab.MustAddRow(row...)
	}
	return []*table.Table{tab}, nil
}

func init() {
	register(Experiment{
		ID:    "fig08",
		Title: "Randomised bin sizes: max load vs total capacity (n=10000)",
		Run:   fig08,
	})
	register(Experiment{
		ID:    "fig09",
		Title: "Randomised bin sizes: which size class holds the max load (n=1000)",
		Run:   fig09,
	})
}
