package experiments

import (
	"fmt"

	"repro/internal/bins"
	"repro/internal/sim"
	"repro/internal/table"
)

// mixSweep runs the §4.2 two-class sweep: n bins of sizes cSmall/cLarge,
// the fraction of large bins sweeping 0..100%, m = C balls each time.
// It produces the Figure 6 series (max load vs fraction) and the Figure 7
// series (how often a small bin attains the maximum load).
func mixSweep(p Params) ([]*table.Table, error) {
	const (
		cSmall = 1
		cLarge = 10
	)
	n := p.scaledN(1000, 100)
	reps := p.reps(1000)
	stepPct := 2
	if p.scale() < 1 {
		stepPct = 5
	}

	maxTab := table.New(fmt.Sprintf("Figure 6: bins of size 1 and 10, n=%d, m=C, d=2 (%d reps)", n, reps),
		"pct_large", "total_capacity", "max_load_mean", "max_load_ci95")
	locTab := table.New(fmt.Sprintf("Figure 7: location of maximally loaded bin, n=%d (%d reps)", n, reps),
		"pct_large", "pct_small_has_max", "pct_large_has_max")

	for pct := 0; pct <= 100; pct += stepPct {
		nLarge := n * pct / 100
		nSmall := n - nLarge
		arr, err := bins.TwoClass(nSmall, cSmall, nLarge, cLarge)
		if err != nil {
			return nil, err
		}
		track := []int64{}
		if nSmall > 0 {
			track = append(track, cSmall)
		}
		if nLarge > 0 {
			track = append(track, cLarge)
		}
		res, err := p.sim(sim.Config{
			Array:        arr,
			Reps:         reps,
			Seed:         p.seed(),
			Workers:      p.Workers,
			TrackClasses: track,
		})
		if err != nil {
			return nil, err
		}
		maxTab.MustAddRow(float64(pct), float64(arr.TotalCapacity()),
			res.MaxLoad.Mean(), res.MaxLoad.CI95())
		locTab.MustAddRow(float64(pct),
			100*res.ClassMaxFraction[cSmall], 100*res.ClassMaxFraction[cLarge])
	}
	return []*table.Table{maxTab, locTab}, nil
}

func init() {
	register(Experiment{
		ID:    "fig06",
		Title: "Mixed 1/10 bins: max load vs fraction of large bins (also emits Figure 7)",
		Run:   mixSweep,
	})
	register(Experiment{
		ID:      "fig07",
		Title:   "Mixed 1/10 bins: how often a small bin holds the max load",
		AliasOf: "fig06",
		Run:     mixSweep,
	})
}
