// Package table is the output harness for experiment results: a minimal
// column-oriented table with TSV (gnuplot-ready) and aligned-text
// renderers. Every figure experiment returns one of these; the CLIs and
// benches print them.
package table

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled set of named numeric columns of equal length.
type Table struct {
	Title   string
	Comment string // optional free-text context line(s)
	Cols    []string
	rows    [][]float64
}

// New creates a table with the given title and column names.
func New(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// AddRow appends one row; the number of values must match the columns.
func (t *Table) AddRow(values ...float64) error {
	if len(values) != len(t.Cols) {
		return fmt.Errorf("table: row has %d values for %d columns", len(values), len(t.Cols))
	}
	row := make([]float64, len(values))
	copy(row, values)
	t.rows = append(t.rows, row)
	return nil
}

// MustAddRow is AddRow but panics on arity mismatch (a programming error
// in experiment code).
func (t *Table) MustAddRow(values ...float64) {
	if err := t.AddRow(values...); err != nil {
		panic(err)
	}
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns row i (a copy).
func (t *Table) Row(i int) []float64 {
	out := make([]float64, len(t.rows[i]))
	copy(out, t.rows[i])
	return out
}

// Col returns the values of the named column.
func (t *Table) Col(name string) ([]float64, error) {
	for j, c := range t.Cols {
		if c == name {
			out := make([]float64, len(t.rows))
			for i, row := range t.rows {
				out[i] = row[j]
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("table: no column %q", name)
}

func formatCell(v float64) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// WriteTSV renders the table as gnuplot-friendly TSV: '#'-prefixed title
// and header, tab-separated data rows.
func (t *Table) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	if t.Comment != "" {
		for _, line := range strings.Split(t.Comment, "\n") {
			if _, err := fmt.Fprintf(w, "# %s\n", line); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "# %s\n", strings.Join(t.Cols, "\t")); err != nil {
		return err
	}
	for _, row := range t.rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = formatCell(v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// WritePretty renders an aligned, human-readable table.
func (t *Table) WritePretty(w io.Writer) error {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	rendered := make([][]string, len(t.rows))
	for ri, row := range t.rows {
		rendered[ri] = make([]string, len(row))
		for ci, v := range row {
			s := formatCell(v)
			rendered[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	if t.Comment != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Comment); err != nil {
			return err
		}
	}
	header := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		header[i] = pad(c, widths[i])
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, "  ")); err != nil {
		return err
	}
	rule := make([]string, len(t.Cols))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, strings.Join(rule, "  ")); err != nil {
		return err
	}
	for _, row := range rendered {
		cells := make([]string, len(row))
		for i, s := range row {
			cells[i] = pad(s, widths[i])
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, "  ")); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

// String renders the pretty form (for logs and tests).
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.WritePretty(&sb)
	return sb.String()
}
