package table

import (
	"math"
	"strings"
	"testing"
)

func TestAddRowArity(t *testing.T) {
	tb := New("t", "a", "b")
	if err := tb.AddRow(1); err == nil {
		t.Error("short row accepted")
	}
	if err := tb.AddRow(1, 2, 3); err == nil {
		t.Error("long row accepted")
	}
	if err := tb.AddRow(1, 2); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestMustAddRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddRow did not panic")
		}
	}()
	New("t", "a").MustAddRow(1, 2)
}

func TestRowIsCopy(t *testing.T) {
	tb := New("t", "a")
	tb.MustAddRow(5)
	r := tb.Row(0)
	r[0] = 99
	if tb.Row(0)[0] != 5 {
		t.Fatal("Row aliases internal storage")
	}
	// AddRow must copy the caller's slice too
	vals := []float64{7}
	if err := tb.AddRow(vals...); err != nil {
		t.Fatal(err)
	}
	vals[0] = 0
	if tb.Row(1)[0] != 7 {
		t.Fatal("AddRow aliases caller slice")
	}
}

func TestCol(t *testing.T) {
	tb := New("t", "x", "y")
	tb.MustAddRow(1, 10)
	tb.MustAddRow(2, 20)
	ys, err := tb.Col("y")
	if err != nil {
		t.Fatal(err)
	}
	if len(ys) != 2 || ys[0] != 10 || ys[1] != 20 {
		t.Fatalf("Col = %v", ys)
	}
	if _, err := tb.Col("zzz"); err == nil {
		t.Error("missing column accepted")
	}
}

func TestWriteTSV(t *testing.T) {
	tb := New("My Title", "x", "maxload")
	tb.Comment = "context"
	tb.MustAddRow(1, 2.53219)
	tb.MustAddRow(10, 3)
	var sb strings.Builder
	if err := tb.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"# My Title", "# context", "# x\tmaxload", "1\t2.5322", "10\t3"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("TSV missing %q:\n%s", frag, out)
		}
	}
}

func TestWritePretty(t *testing.T) {
	tb := New("Title", "x", "y")
	tb.MustAddRow(1, 1.5)
	tb.MustAddRow(100, 2)
	out := tb.String()
	for _, frag := range []string{"Title", "x", "y", "1.5000", "100"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("pretty output missing %q:\n%s", frag, out)
		}
	}
	// header separator present
	if !strings.Contains(out, "---") {
		t.Fatalf("missing rule:\n%s", out)
	}
}

func TestFormatCell(t *testing.T) {
	if got := formatCell(math.NaN()); got != "nan" {
		t.Fatalf("NaN formatted as %q", got)
	}
	if got := formatCell(3); got != "3" {
		t.Fatalf("integer formatted as %q", got)
	}
	if got := formatCell(3.14159); got != "3.1416" {
		t.Fatalf("float formatted as %q", got)
	}
	if got := formatCell(-12); got != "-12" {
		t.Fatalf("negative int formatted as %q", got)
	}
}

func TestEmptyTable(t *testing.T) {
	tb := New("empty", "a")
	var sb strings.Builder
	if err := tb.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	if err := tb.WritePretty(&sb); err != nil {
		t.Fatal(err)
	}
}
