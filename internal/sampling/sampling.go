// Package sampling implements discrete weighted sampling, the substrate
// underneath "a ball chooses bin i with probability c_i/C" and every other
// bin-probability distribution in the paper.
//
// Three interchangeable samplers are provided:
//
//   - AliasTable: Vose's alias method; O(n) build, O(1) sample. The default
//     for static bin arrays (all paper experiments). Acceptance tests are
//     integer threshold comparisons, so one Sample costs exactly one 64-bit
//     RNG draw: the high product bits of a Lemire reduction select the
//     column and the low bits decide column-vs-alias.
//   - CDF: binary search over cumulative weights; O(n) build, O(log n)
//     sample. Simpler, used as a cross-check in tests.
//   - Fenwick: a Fenwick (binary indexed) tree over weights; O(log n)
//     sample AND O(log n) single-weight update, for dynamically growing
//     systems (the §4.3 scale-out scenarios rebuild arrays between runs,
//     but the Fenwick sampler supports true online growth as an extension).
//
// All samplers draw from the same *xrand.Rand so experiments remain
// deterministic under sampler substitution only if the sampler is fixed;
// the protocol layer pins AliasTable for paper runs.
package sampling

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/xrand"
)

// Sampler draws indices in [0, N()) from a fixed discrete distribution.
type Sampler interface {
	// Sample returns an index in [0, N()).
	Sample(r *xrand.Rand) int
	// N returns the number of categories.
	N() int
}

// ErrNoWeights is returned when a sampler is built from an empty or
// all-zero weight vector.
var ErrNoWeights = errors.New("sampling: no positive weights")

func validateWeights(weights []float64) (total float64, err error) {
	if len(weights) == 0 {
		return 0, ErrNoWeights
	}
	for i, w := range weights {
		if w < 0 || w != w { // w != w catches NaN
			return 0, fmt.Errorf("sampling: weight %d is invalid (%v)", i, w)
		}
		total += w
	}
	if total <= 0 {
		return 0, ErrNoWeights
	}
	return total, nil
}

// AliasTable samples from a discrete distribution in O(1) using Vose's
// alias method. Weights need not be normalised; zero weights are allowed
// (those indices are simply never returned).
//
// The acceptance probability of each column is stored as a uint32
// threshold scaled to 2^32, so Sample performs a single RNG draw and one
// integer compare: a 32-bit Lemire multiply-shift maps half the draw to
// a column while the product's low bits — uniform residue the reduction
// would otherwise discard — test against the threshold. The quantisation
// error per column is below n/2^32, orders of magnitude under anything a
// Monte-Carlo experiment can resolve.
//
// Threshold and alias index are packed into one 8-byte column so a
// sample touches a single cache line regardless of the accept/alias
// outcome, and the whole table is half the footprint of a split layout —
// for the paper's n = 10^4 arrays the table already exceeds L1, so every
// byte saved is a hot-loop cache miss avoided.
type AliasTable struct {
	cols []aliasCol
}

// aliasCol is one packed column: acceptance threshold (probability ×
// 2^32) plus the alias index taken on rejection. Eight columns per
// cache line.
type aliasCol struct {
	thresh uint32
	alias  int32
}

// thresholdOf converts an acceptance probability to its uint32 threshold.
// The scaled product is clamped below 2^32 before the float64→uint32
// conversion: for p within one ulp of 1 the product sits right at the
// top of the uint32 range, and a conversion of a value >= 2^32 is
// undefined in Go (amd64 yields 0) — which would turn a near-certain
// acceptance into a certain alias redirect.
func thresholdOf(p float64) uint32 {
	if p >= 1 {
		return ^uint32(0)
	}
	if p <= 0 {
		return 0
	}
	f := p * 0x1p32
	if f >= 0x1p32 {
		return ^uint32(0)
	}
	return uint32(f)
}

// NewAlias builds an alias table from the given non-negative weights.
func NewAlias(weights []float64) (*AliasTable, error) {
	total, err := validateWeights(weights)
	if err != nil {
		return nil, err
	}
	n := len(weights)
	t := &AliasTable{cols: make([]aliasCol, n)}
	// Scale weights so the average column is exactly 1.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := n - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		t.cols[l] = aliasCol{thresh: thresholdOf(scaled[l]), alias: g}
		scaled[g] = (scaled[g] + scaled[l]) - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	// Numerical leftovers: both queues should drain with columns at 1.
	for _, g := range large {
		t.cols[g] = aliasCol{thresh: ^uint32(0), alias: g}
	}
	for _, l := range small {
		t.cols[l] = aliasCol{thresh: ^uint32(0), alias: l}
	}
	return t, nil
}

// sampleHi maps the high 32 bits of a 64-bit draw to an index: a 32-bit
// Lemire reduction whose product's high half selects the column and low
// half tests the acceptance threshold.
func (t *AliasTable) sampleHi(u uint64) int {
	p := (u >> 32) * uint64(len(t.cols))
	i := int(p >> 32)
	c := t.cols[i]
	if uint32(p) >= c.thresh {
		i = int(c.alias)
	}
	return i
}

// sampleBoth maps both 32-bit halves of a 64-bit draw to two independent
// indices (high half first). This is the draw-packing core shared by
// Sample2 and SampleN.
func (t *AliasTable) sampleBoth(u uint64) (int, int) {
	n := uint64(len(t.cols))
	p1 := (u >> 32) * n
	p2 := (u & 0xffffffff) * n
	i1 := int(p1 >> 32)
	i2 := int(p2 >> 32)
	c1 := t.cols[i1]
	c2 := t.cols[i2]
	if uint32(p1) >= c1.thresh {
		i1 = int(c1.alias)
	}
	if uint32(p2) >= c2.thresh {
		i2 = int(c2.alias)
	}
	return i1, i2
}

// Sample returns an index distributed according to the build weights.
// It consumes exactly one 64-bit draw: the top 32 bits run the Lemire
// reduction, whose product's high half selects the column and low half
// tests the threshold (the draw's own low 32 bits are unused).
func (t *AliasTable) Sample(r *xrand.Rand) int {
	return t.sampleHi(r.Uint64())
}

// Sample2 returns two independent samples from a single 64-bit draw: the
// d = 2 hot path's whole random budget is one RNG advance per ball. Each
// half of the draw runs a 32-bit Lemire reduction whose low product bits
// test the acceptance threshold; per-sample granularity is n/2^32 — for
// the paper's n <= 10^5 below 10^-4 relative error, invisible to
// Monte-Carlo statistics while keeping the stream fully deterministic.
// The threshold selects via conditional moves, not branches: accept vs
// alias is a coin toss the branch predictor would lose.
func (t *AliasTable) Sample2(r *xrand.Rand) (int, int) {
	return t.sampleBoth(r.Uint64())
}

// Sample3 returns three independent samples from exactly two 64-bit
// draws — the SampleN packing for n = 3 (one Sample2 draw plus one
// Sample draw), flattened into a single call so the d = 3 kernel's
// three table loads can issue together instead of serialising behind
// two function calls. The reduction bodies are deliberately duplicated
// rather than composed from sampleBoth/sampleHi: sampleBoth exceeds
// the compiler's inlining budget, and a composed Sample3/Sample4 would
// put one or two calls back into the hottest per-ball path. Any change
// to the reduction or threshold logic must be mirrored across
// sampleHi, sampleBoth, Sample3 and Sample4 (the stream-contract test
// pins them against each other).
func (t *AliasTable) Sample3(r *xrand.Rand) (int, int, int) {
	u1 := r.Uint64()
	u2 := r.Uint64()
	n := uint64(len(t.cols))
	p1 := (u1 >> 32) * n
	p2 := (u1 & 0xffffffff) * n
	p3 := (u2 >> 32) * n
	i1 := int(p1 >> 32)
	i2 := int(p2 >> 32)
	i3 := int(p3 >> 32)
	c1 := t.cols[i1]
	c2 := t.cols[i2]
	c3 := t.cols[i3]
	if uint32(p1) >= c1.thresh {
		i1 = int(c1.alias)
	}
	if uint32(p2) >= c2.thresh {
		i2 = int(c2.alias)
	}
	if uint32(p3) >= c3.thresh {
		i3 = int(c3.alias)
	}
	return i1, i2, i3
}

// Sample4 returns four independent samples from exactly two 64-bit
// draws — the SampleN packing for n = 4 (two Sample2 draws), flattened
// into a single call for the d = 4 kernel.
func (t *AliasTable) Sample4(r *xrand.Rand) (int, int, int, int) {
	u1 := r.Uint64()
	u2 := r.Uint64()
	n := uint64(len(t.cols))
	p1 := (u1 >> 32) * n
	p2 := (u1 & 0xffffffff) * n
	p3 := (u2 >> 32) * n
	p4 := (u2 & 0xffffffff) * n
	i1 := int(p1 >> 32)
	i2 := int(p2 >> 32)
	i3 := int(p3 >> 32)
	i4 := int(p4 >> 32)
	c1 := t.cols[i1]
	c2 := t.cols[i2]
	c3 := t.cols[i3]
	c4 := t.cols[i4]
	if uint32(p1) >= c1.thresh {
		i1 = int(c1.alias)
	}
	if uint32(p2) >= c2.thresh {
		i2 = int(c2.alias)
	}
	if uint32(p3) >= c3.thresh {
		i3 = int(c3.alias)
	}
	if uint32(p4) >= c4.thresh {
		i4 = int(c4.alias)
	}
	return i1, i2, i3, i4
}

// SampleN fills out with len(out) independent samples, packing two
// candidates into every 64-bit draw: it consumes exactly
// ceil(len(out)/2) RNG advances. Each draw runs the two 32-bit Lemire
// reductions of Sample2 (high half first); when len(out) is odd, the
// final draw contributes only its high half — exactly a Sample call —
// so the stream is the concatenation of floor(n/2) Sample2 draws and,
// for odd n, one Sample draw. Per-sample quantisation is the Sample2
// contract: below n/2^32 relative error, invisible to Monte-Carlo
// statistics.
func (t *AliasTable) SampleN(r *xrand.Rand, out []int) {
	i := 0
	for ; i+1 < len(out); i += 2 {
		out[i], out[i+1] = t.sampleBoth(r.Uint64())
	}
	if i < len(out) {
		out[i] = t.sampleHi(r.Uint64())
	}
}

// SampleBatch fills cand with len(tie) groups of d candidate indices and
// tie with one raw 64-bit draw per group, amortising RNG advances and
// table-load latency across a whole ball batch: the fill loop carries no
// dependency from one ball to the next, so the table loads of many balls
// are in flight at once instead of serialising behind each ball's
// placement decision. len(cand) must equal d·len(tie).
//
// The draw sequence is pinned to the per-ball kernels: for each ball,
// first the candidate draws — the SampleN packing, two candidates per
// 64-bit advance, ceil(d/2) advances — then one further advance stored
// raw in tie (the d = 2 kernels read their coin from tie's low bit, the
// d >= 3 kernels feed it to the step-6 tie pick). A batch of b balls
// therefore consumes exactly the draws of b sequential per-ball kernel
// calls, in the same order, so wiring SampleBatch into PlaceBatch does
// not move a single bit of any pinned placement stream.
//
// The d = 2/3/4 reduction bodies are deliberately duplicated from
// Sample2/Sample3/Sample4 rather than composed: a per-ball call into
// sampleBoth would put a function call back into the hottest loop (see
// the Sample3 comment). Any change to the reduction or threshold logic
// must be mirrored here as well; the stream-contract tests pin all
// paths against each other.
func (t *AliasTable) SampleBatch(r *xrand.Rand, d int, cand []int, tie []uint64) {
	if d < 1 || len(cand) != d*len(tie) {
		panic(fmt.Sprintf("sampling: SampleBatch(d=%d) with %d candidates for %d balls",
			d, len(cand), len(tie)))
	}
	n := uint64(len(t.cols))
	switch d {
	case 2:
		j := 0
		for i := range tie {
			u := r.Uint64()
			p1 := (u >> 32) * n
			p2 := (u & 0xffffffff) * n
			i1 := int(p1 >> 32)
			i2 := int(p2 >> 32)
			c1 := t.cols[i1]
			c2 := t.cols[i2]
			if uint32(p1) >= c1.thresh {
				i1 = int(c1.alias)
			}
			if uint32(p2) >= c2.thresh {
				i2 = int(c2.alias)
			}
			cand[j] = i1
			cand[j+1] = i2
			tie[i] = r.Uint64()
			j += 2
		}
	case 3:
		j := 0
		for i := range tie {
			u1 := r.Uint64()
			u2 := r.Uint64()
			p1 := (u1 >> 32) * n
			p2 := (u1 & 0xffffffff) * n
			p3 := (u2 >> 32) * n
			i1 := int(p1 >> 32)
			i2 := int(p2 >> 32)
			i3 := int(p3 >> 32)
			c1 := t.cols[i1]
			c2 := t.cols[i2]
			c3 := t.cols[i3]
			if uint32(p1) >= c1.thresh {
				i1 = int(c1.alias)
			}
			if uint32(p2) >= c2.thresh {
				i2 = int(c2.alias)
			}
			if uint32(p3) >= c3.thresh {
				i3 = int(c3.alias)
			}
			cand[j] = i1
			cand[j+1] = i2
			cand[j+2] = i3
			tie[i] = r.Uint64()
			j += 3
		}
	case 4:
		j := 0
		for i := range tie {
			u1 := r.Uint64()
			u2 := r.Uint64()
			p1 := (u1 >> 32) * n
			p2 := (u1 & 0xffffffff) * n
			p3 := (u2 >> 32) * n
			p4 := (u2 & 0xffffffff) * n
			i1 := int(p1 >> 32)
			i2 := int(p2 >> 32)
			i3 := int(p3 >> 32)
			i4 := int(p4 >> 32)
			c1 := t.cols[i1]
			c2 := t.cols[i2]
			c3 := t.cols[i3]
			c4 := t.cols[i4]
			if uint32(p1) >= c1.thresh {
				i1 = int(c1.alias)
			}
			if uint32(p2) >= c2.thresh {
				i2 = int(c2.alias)
			}
			if uint32(p3) >= c3.thresh {
				i3 = int(c3.alias)
			}
			if uint32(p4) >= c4.thresh {
				i4 = int(c4.alias)
			}
			cand[j] = i1
			cand[j+1] = i2
			cand[j+2] = i3
			cand[j+3] = i4
			tie[i] = r.Uint64()
			j += 4
		}
	default:
		for i := range tie {
			t.SampleN(r, cand[i*d:(i+1)*d])
			tie[i] = r.Uint64()
		}
	}
}

// N returns the number of categories.
func (t *AliasTable) N() int { return len(t.cols) }

// CDF samples by binary search over the cumulative distribution.
type CDF struct {
	cum []float64
}

// NewCDF builds a cumulative-sum sampler from non-negative weights.
func NewCDF(weights []float64) (*CDF, error) {
	total, err := validateWeights(weights)
	if err != nil {
		return nil, err
	}
	cum := make([]float64, len(weights))
	run := 0.0
	for i, w := range weights {
		run += w / total
		cum[i] = run
	}
	// Absorb accumulated rounding into the *last positive-weight* bin,
	// not blindly into cum[len-1]: assigning the residual mass to a
	// trailing zero-weight bin would make that bin reachable whenever the
	// float accumulation undershoots 1.
	last := len(weights) - 1
	for last > 0 && weights[last] == 0 {
		last--
	}
	for i := last; i < len(cum); i++ {
		cum[i] = 1
	}
	return &CDF{cum: cum}, nil
}

// Sample returns an index distributed according to the build weights.
// Zero-weight categories are never returned: the binary search cannot
// land on one mid-array (equal cumulative values resolve to the run's
// first index), and the two edges — Float64 returning exactly 0 with a
// zero-weight prefix, and rounding absorption at the tail — are handled
// by locate.
func (c *CDF) Sample(r *xrand.Rand) int {
	return c.locate(r.Float64())
}

// locate maps u in [0, 1) to the sampled index: the first index whose
// cumulative weight reaches u, skipped forward past zero-mass landings
// (cum equal to its predecessor — possible only for u = 0 on a
// zero-weight prefix, where the search legitimately returns index 0
// despite it carrying no probability mass).
func (c *CDF) locate(u float64) int {
	idx := sort.SearchFloat64s(c.cum, u)
	if idx >= len(c.cum) {
		// unreachable for u < 1 (cum ends at exactly 1); guard anyway
		idx = len(c.cum) - 1
	}
	prev := 0.0
	if idx > 0 {
		prev = c.cum[idx-1]
	}
	for idx < len(c.cum)-1 && c.cum[idx] == prev {
		idx++
	}
	return idx
}

// N returns the number of categories.
func (c *CDF) N() int { return len(c.cum) }

// Fenwick is a dynamically updatable weighted sampler backed by a Fenwick
// tree of weights. Sample and UpdateWeight both cost O(log n).
type Fenwick struct {
	tree  []float64 // 1-based Fenwick tree of weights
	w     []float64 // current weights, 0-based
	total float64
}

// NewFenwick builds a Fenwick sampler from non-negative weights.
func NewFenwick(weights []float64) (*Fenwick, error) {
	total, err := validateWeights(weights)
	if err != nil {
		return nil, err
	}
	n := len(weights)
	f := &Fenwick{
		tree:  make([]float64, n+1),
		w:     make([]float64, n),
		total: total,
	}
	copy(f.w, weights)
	// O(n) Fenwick construction.
	for i := 1; i <= n; i++ {
		f.tree[i] += weights[i-1]
		if j := i + (i & -i); j <= n {
			f.tree[j] += f.tree[i]
		}
	}
	return f, nil
}

// N returns the number of categories.
func (f *Fenwick) N() int { return len(f.w) }

// Total returns the current sum of weights.
func (f *Fenwick) Total() float64 { return f.total }

// Weight returns the current weight of index i.
func (f *Fenwick) Weight(i int) float64 { return f.w[i] }

// UpdateWeight sets the weight of index i to w (w >= 0).
func (f *Fenwick) UpdateWeight(i int, w float64) error {
	if i < 0 || i >= len(f.w) {
		return fmt.Errorf("sampling: index %d out of range [0,%d)", i, len(f.w))
	}
	if w < 0 || w != w {
		return fmt.Errorf("sampling: invalid weight %v", w)
	}
	delta := w - f.w[i]
	f.w[i] = w
	f.total += delta
	for j := i + 1; j < len(f.tree); j += j & -j {
		f.tree[j] += delta
	}
	return nil
}

// Sample returns an index with probability proportional to its current
// weight, by descending the Fenwick tree.
func (f *Fenwick) Sample(r *xrand.Rand) int {
	if f.total <= 0 {
		panic("sampling: Fenwick sampler has no positive weights left")
	}
	target := r.Float64() * f.total
	idx := 0
	// mask = highest power of two <= len(w)
	mask := 1
	for mask<<1 <= len(f.w) {
		mask <<= 1
	}
	for ; mask > 0; mask >>= 1 {
		next := idx + mask
		if next < len(f.tree) && f.tree[next] < target {
			target -= f.tree[next]
			idx = next
		}
	}
	// idx is the count of prefix entries strictly below target; clamp for
	// the target==total edge (Float64 < 1 makes this near-impossible, but
	// floating accumulation in total can overshoot).
	if idx >= len(f.w) {
		idx = len(f.w) - 1
	}
	// Skip zero-weight landing spots caused by floating point residue.
	// A full wrap means every weight is 0 while accumulated rounding left
	// total > 0 — fail loudly instead of spinning.
	start := idx
	for f.w[idx] == 0 {
		idx = (idx + 1) % len(f.w)
		if idx == start {
			panic(fmt.Sprintf(
				"sampling: Fenwick.Sample: all weights are zero but total = %v (floating-point residue)",
				f.total))
		}
	}
	return idx
}

// Uniform samples uniformly from [0, n).
type Uniform struct {
	n int
}

// NewUniform returns a uniform sampler over n categories.
func NewUniform(n int) (*Uniform, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sampling: uniform over %d categories", n)
	}
	return &Uniform{n: n}, nil
}

// Sample returns a uniform index in [0, N()).
func (u *Uniform) Sample(r *xrand.Rand) int { return r.Intn(u.n) }

// N returns the number of categories.
func (u *Uniform) N() int { return u.n }

var (
	_ Sampler = (*AliasTable)(nil)
	_ Sampler = (*CDF)(nil)
	_ Sampler = (*Fenwick)(nil)
	_ Sampler = (*Uniform)(nil)
)
