package sampling

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

// TestBinomialEdgeCases pins the forced-outcome contract: n == 0,
// p <= 0 and p >= 1 return without touching the RNG — part of the
// routing pass's pinned draw sequence.
func TestBinomialEdgeCases(t *testing.T) {
	r := xrand.New(1)
	before := *r
	if got := Binomial(r, 0, 0.3); got != 0 {
		t.Fatalf("Binomial(0, 0.3) = %d", got)
	}
	if got := Binomial(r, 17, 0); got != 0 {
		t.Fatalf("Binomial(17, 0) = %d", got)
	}
	if got := Binomial(r, 17, 1); got != 17 {
		t.Fatalf("Binomial(17, 1) = %d", got)
	}
	if *r != before {
		t.Fatal("forced outcomes consumed RNG draws")
	}
	for _, tc := range []struct {
		n int64
		p float64
	}{{1, 0.5}, {5, 0.01}, {5, 0.99}, {100000, 0.5}, {3, 1e-12}} {
		for i := 0; i < 200; i++ {
			k := Binomial(r, tc.n, tc.p)
			if k < 0 || k > tc.n {
				t.Fatalf("Binomial(%d, %v) = %d out of range", tc.n, tc.p, k)
			}
		}
	}
}

func TestBinomialPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative n": func() { Binomial(xrand.New(1), -1, 0.5) },
		"negative p": func() { Binomial(xrand.New(1), 5, -0.1) },
		"p above 1":  func() { Binomial(xrand.New(1), 5, 1.5) },
		"NaN p":      func() { Binomial(xrand.New(1), 5, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// chiSquareBinomial draws `draws` samples of Binomial(n, p) and runs a
// Pearson goodness-of-fit test against the exact pmf, pooling the tail
// cells so every expected count is >= 5.
func chiSquareBinomial(t *testing.T, seed uint64, n int64, p float64, draws int) {
	t.Helper()
	r := xrand.New(seed)
	counts := make(map[int64]int64)
	for i := 0; i < draws; i++ {
		counts[Binomial(r, n, p)]++
	}
	// Walk the support in order, pooling cells with small expectation
	// into their neighbours.
	var obs, exp []float64
	var obsAcc, expAcc float64
	for k := int64(0); k <= n; k++ {
		expAcc += float64(draws) * stats.BinomialPMF(int(n), p, int(k))
		obsAcc += float64(counts[k])
		if expAcc >= 5 {
			obs = append(obs, obsAcc)
			exp = append(exp, expAcc)
			obsAcc, expAcc = 0, 0
		}
	}
	if len(exp) == 0 {
		t.Fatalf("n=%d p=%v: no cells with expectation >= 5", n, p)
	}
	// Residual tail mass folds into the last cell.
	obs[len(obs)-1] += obsAcc
	exp[len(exp)-1] += expAcc
	x2, err := stats.ChiSquare(obs, exp)
	if err != nil {
		t.Fatal(err)
	}
	df := len(exp) - 1
	if df < 1 {
		df = 1
	}
	crit, err := stats.ChiSquareCritical(df, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if x2 > crit {
		t.Fatalf("Binomial(%d, %v): chi2 = %.2f > critical %.2f (df %d, %d draws)",
			n, p, x2, crit, df, draws)
	}
}

// TestBinomialChiSquare covers both algorithm regimes (BINV below
// n·min(p,1−p) = 30, BTRS above) and the p > 1/2 reflection. The RNG
// is fixed, so the test is deterministic; alpha = 0.001 leaves ample
// slack for the seeds chosen here.
func TestBinomialChiSquare(t *testing.T) {
	cases := []struct {
		n int64
		p float64
	}{
		{8, 0.3},      // BINV, tiny support
		{50, 0.1},     // BINV
		{50, 0.9},     // BINV after reflection
		{200, 0.5},    // BTRS
		{1000, 0.07},  // BTRS, skewed
		{1000, 0.93},  // BTRS after reflection
		{65536, 0.01}, // routing-block scale
	}
	for i, tc := range cases {
		chiSquareBinomial(t, uint64(1000+i), tc.n, tc.p, 20000)
	}
}

// TestBinomialMean sanity-checks first moments at routing-block scale:
// the sample mean over many draws must sit within a few standard
// errors of n·p.
func TestBinomialMean(t *testing.T) {
	r := xrand.New(7)
	const n, p, draws = 65536, 0.25, 4000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += float64(Binomial(r, n, p))
	}
	mean := sum / draws
	se := math.Sqrt(n*p*(1-p)) / math.Sqrt(draws)
	if math.Abs(mean-n*p) > 5*se {
		t.Fatalf("mean %v, want %v ± %v", mean, n*p, 5*se)
	}
}

func TestMultinomialValidation(t *testing.T) {
	if _, err := NewMultinomial(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewMultinomial([]float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := NewMultinomial([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	m, err := NewMultinomial([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short output accepted")
			}
		}()
		m.Draw(xrand.New(1), 10, make([]int64, 2))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative n accepted")
			}
		}()
		m.Draw(xrand.New(1), -1, make([]int64, 3))
	}()
}

// TestMultinomialInvariants: Σ counts == n always, zero-weight
// categories never receive counts, n == 0 consumes no draws, and a
// single category absorbs everything.
func TestMultinomialInvariants(t *testing.T) {
	weights := []float64{3, 0, 1, 7, 0.5, 0, 2, 1}
	m, err := NewMultinomial(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(42)
	out := make([]int64, len(weights))
	for _, n := range []int64{0, 1, 7, 100, 65536} {
		m.Draw(r, n, out)
		var sum int64
		for i, c := range out {
			if c < 0 {
				t.Fatalf("n=%d: negative count %d at %d", n, c, i)
			}
			if weights[i] == 0 && c != 0 {
				t.Fatalf("n=%d: zero-weight category %d got %d balls", n, i, c)
			}
			sum += c
		}
		if sum != n {
			t.Fatalf("n=%d: counts sum to %d", n, sum)
		}
	}
	before := *r
	m.Draw(r, 0, out)
	if *r != before {
		t.Fatal("Draw(0) consumed RNG draws")
	}
	single, err := NewMultinomial([]float64{2.5})
	if err != nil {
		t.Fatal(err)
	}
	one := make([]int64, 1)
	before = *r
	single.Draw(r, 99, one)
	if one[0] != 99 || *r != before {
		t.Fatalf("single category: got %d (draws consumed: %v)", one[0], *r != before)
	}
}

// TestMultinomialChiSquare checks every marginal against its expected
// share across many draws — the goodness-of-fit contract of the
// conditional binomial decomposition.
func TestMultinomialChiSquare(t *testing.T) {
	weights := []float64{1, 4, 2, 8, 0.5, 3, 6, 1.5, 2, 4}
	var total float64
	for _, w := range weights {
		total += w
	}
	m, err := NewMultinomial(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(20260727)
	const n, draws = 512, 3000
	out := make([]int64, len(weights))
	obs := make([]float64, len(weights))
	exp := make([]float64, len(weights))
	for i := 0; i < draws; i++ {
		m.Draw(r, n, out)
		for j, c := range out {
			obs[j] += float64(c)
		}
	}
	for j, w := range weights {
		exp[j] = float64(n) * float64(draws) * w / total
	}
	x2, err := stats.ChiSquare(obs, exp)
	if err != nil {
		t.Fatal(err)
	}
	crit, err := stats.ChiSquareCritical(len(weights)-1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if x2 > crit {
		t.Fatalf("multinomial marginals: chi2 = %.2f > critical %.2f", x2, crit)
	}
}

// TestMultinomialMatchesPerCategoryLaw cross-checks one marginal's full
// distribution (not just its mean) against the exact Binomial(n, w/W)
// law — the defining property of multinomial marginals.
func TestMultinomialMatchesPerCategoryLaw(t *testing.T) {
	weights := []float64{1, 2, 5}
	m, err := NewMultinomial(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(5)
	const n, draws = 40, 20000
	out := make([]int64, 3)
	counts := make(map[int64]int64)
	for i := 0; i < draws; i++ {
		m.Draw(r, n, out)
		counts[out[1]]++ // middle category, p = 2/8
	}
	var obs, exp []float64
	var obsAcc, expAcc float64
	for k := int64(0); k <= n; k++ {
		expAcc += float64(draws) * stats.BinomialPMF(n, 0.25, int(k))
		obsAcc += float64(counts[k])
		if expAcc >= 5 {
			obs = append(obs, obsAcc)
			exp = append(exp, expAcc)
			obsAcc, expAcc = 0, 0
		}
	}
	obs[len(obs)-1] += obsAcc
	exp[len(exp)-1] += expAcc
	x2, err := stats.ChiSquare(obs, exp)
	if err != nil {
		t.Fatal(err)
	}
	crit, err := stats.ChiSquareCritical(len(exp)-1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if x2 > crit {
		t.Fatalf("marginal law: chi2 = %.2f > critical %.2f", x2, crit)
	}
}

// TestMultinomialDeterministic: identical (seed, n, weights) produce
// identical count vectors — the routing pass's bit-identity substrate.
func TestMultinomialDeterministic(t *testing.T) {
	weights := []float64{1, 3, 2, 2, 9}
	m1, _ := NewMultinomial(weights)
	m2, _ := NewMultinomial(weights)
	a := make([]int64, 5)
	b := make([]int64, 5)
	r1 := xrand.New(99)
	r2 := xrand.New(99)
	for i := 0; i < 50; i++ {
		m1.Draw(r1, 4096, a)
		m2.Draw(r2, 4096, b)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("draw %d: %v vs %v", i, a, b)
			}
		}
		if *r1 != *r2 {
			t.Fatalf("draw %d: RNG states diverged", i)
		}
	}
}
