package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// chiSquare returns the chi-square statistic of observed counts against
// the expected distribution given by weights (normalised internally).
// Zero-weight categories must have zero observations or the statistic is
// +Inf.
func chiSquare(counts []int, weights []float64, samples int) float64 {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	chi2 := 0.0
	for i, c := range counts {
		expected := float64(samples) * weights[i] / total
		if expected == 0 {
			if c != 0 {
				return math.Inf(1)
			}
			continue
		}
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2
}

// buildAll returns one of each sampler type over the same weights.
func buildAll(t *testing.T, weights []float64) map[string]Sampler {
	t.Helper()
	alias, err := NewAlias(weights)
	if err != nil {
		t.Fatalf("NewAlias: %v", err)
	}
	cdf, err := NewCDF(weights)
	if err != nil {
		t.Fatalf("NewCDF: %v", err)
	}
	fen, err := NewFenwick(weights)
	if err != nil {
		t.Fatalf("NewFenwick: %v", err)
	}
	return map[string]Sampler{"alias": alias, "cdf": cdf, "fenwick": fen}
}

func TestSamplersMatchDistribution(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
	}{
		{"uniform4", []float64{1, 1, 1, 1}},
		{"proportional", []float64{1, 2, 3, 4}},
		{"skewed", []float64{100, 1, 1, 1, 1}},
		{"withZeros", []float64{0, 5, 0, 5, 0}},
		{"single", []float64{3}},
		{"paper-two-class", []float64{1, 1, 1, 1, 1, 10, 10, 10, 10, 10}},
	}
	const samples = 200000
	// 99.9% chi-square quantiles by degrees of freedom (k-1 categories
	// with nonzero weight).
	quantile := map[int]float64{
		0: 0, 1: 10.83, 2: 13.82, 3: 16.27, 4: 18.47,
		5: 20.52, 6: 22.46, 7: 24.32, 8: 26.12, 9: 27.88,
	}
	for _, tc := range cases {
		for name, s := range buildAll(t, tc.weights) {
			r := xrand.New(0xabcde)
			counts := make([]int, len(tc.weights))
			for i := 0; i < samples; i++ {
				counts[s.Sample(r)]++
			}
			nonzero := 0
			for _, w := range tc.weights {
				if w > 0 {
					nonzero++
				}
			}
			chi2 := chiSquare(counts, tc.weights, samples)
			if lim := quantile[nonzero-1]; chi2 > lim {
				t.Errorf("%s/%s: chi-square %.2f > %.2f (counts %v)",
					tc.name, name, chi2, lim, counts)
			}
		}
	}
}

func TestSamplersRejectBadWeights(t *testing.T) {
	bad := [][]float64{
		nil,
		{},
		{0, 0, 0},
		{-1, 2},
		{math.NaN(), 1},
	}
	for _, w := range bad {
		if _, err := NewAlias(w); err == nil {
			t.Errorf("NewAlias(%v) accepted invalid weights", w)
		}
		if _, err := NewCDF(w); err == nil {
			t.Errorf("NewCDF(%v) accepted invalid weights", w)
		}
		if _, err := NewFenwick(w); err == nil {
			t.Errorf("NewFenwick(%v) accepted invalid weights", w)
		}
	}
}

func TestSamplersNeverReturnZeroWeightIndex(t *testing.T) {
	weights := []float64{0, 1, 0, 2, 0, 3, 0}
	r := xrand.New(99)
	for name, s := range buildAll(t, weights) {
		for i := 0; i < 20000; i++ {
			idx := s.Sample(r)
			if weights[idx] == 0 {
				t.Fatalf("%s returned zero-weight index %d", name, idx)
			}
		}
	}
}

func TestSamplersInRange(t *testing.T) {
	weights := []float64{2, 3, 5, 7, 11}
	r := xrand.New(7)
	for name, s := range buildAll(t, weights) {
		if s.N() != len(weights) {
			t.Fatalf("%s: N() = %d, want %d", name, s.N(), len(weights))
		}
		for i := 0; i < 10000; i++ {
			idx := s.Sample(r)
			if idx < 0 || idx >= len(weights) {
				t.Fatalf("%s: index %d out of range", name, idx)
			}
		}
	}
}

func TestUniformSampler(t *testing.T) {
	u, err := NewUniform(10)
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 10 {
		t.Fatalf("N() = %d", u.N())
	}
	r := xrand.New(12345)
	counts := make([]int, 10)
	const samples = 100000
	for i := 0; i < samples; i++ {
		counts[u.Sample(r)]++
	}
	for i, c := range counts {
		got := float64(c) / samples
		if math.Abs(got-0.1) > 0.01 {
			t.Fatalf("category %d frequency %.4f", i, got)
		}
	}
}

func TestUniformRejectsNonPositive(t *testing.T) {
	for _, n := range []int{0, -5} {
		if _, err := NewUniform(n); err == nil {
			t.Errorf("NewUniform(%d) accepted", n)
		}
	}
}

func TestFenwickUpdateWeight(t *testing.T) {
	f, err := NewFenwick([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Zero out bins 0..2; all samples must land on 3.
	for i := 0; i < 3; i++ {
		if err := f.UpdateWeight(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	r := xrand.New(55)
	for i := 0; i < 5000; i++ {
		if idx := f.Sample(r); idx != 3 {
			t.Fatalf("sample %d after zeroing, want 3", idx)
		}
	}
	// Restore weight 10 on bin 0: ~10/11 of samples should be bin 0.
	if err := f.UpdateWeight(0, 10); err != nil {
		t.Fatal(err)
	}
	if got := f.Weight(0); got != 10 {
		t.Fatalf("Weight(0) = %v", got)
	}
	if got := f.Total(); math.Abs(got-11) > 1e-9 {
		t.Fatalf("Total() = %v, want 11", got)
	}
	hits := 0
	const samples = 50000
	for i := 0; i < samples; i++ {
		if f.Sample(r) == 0 {
			hits++
		}
	}
	got := float64(hits) / samples
	want := 10.0 / 11.0
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("bin 0 frequency %.4f, want %.4f", got, want)
	}
}

func TestFenwickUpdateErrors(t *testing.T) {
	f, _ := NewFenwick([]float64{1, 2})
	if err := f.UpdateWeight(-1, 1); err == nil {
		t.Error("UpdateWeight(-1) accepted")
	}
	if err := f.UpdateWeight(2, 1); err == nil {
		t.Error("UpdateWeight(2) accepted (out of range)")
	}
	if err := f.UpdateWeight(0, -3); err == nil {
		t.Error("UpdateWeight with negative weight accepted")
	}
	if err := f.UpdateWeight(0, math.NaN()); err == nil {
		t.Error("UpdateWeight with NaN accepted")
	}
}

func TestAliasSingleCategory(t *testing.T) {
	a, err := NewAlias([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(1)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-category alias returned nonzero index")
		}
	}
}

// Property: alias tables built from arbitrary positive weights produce
// only in-range indices, and every alias target is in range.
func TestQuickAliasValid(t *testing.T) {
	f := func(seed uint64, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		weights := make([]float64, len(raw))
		anyPos := false
		for i, v := range raw {
			weights[i] = float64(v)
			if v > 0 {
				anyPos = true
			}
		}
		a, err := NewAlias(weights)
		if !anyPos {
			return err != nil
		}
		if err != nil {
			return false
		}
		if len(a.cols) != len(weights) {
			return false
		}
		for _, c := range a.cols {
			if c.alias < 0 || int(c.alias) >= len(weights) {
				return false
			}
		}
		r := xrand.New(seed)
		for i := 0; i < 32; i++ {
			idx := a.Sample(r)
			if idx < 0 || idx >= len(weights) || weights[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Fenwick prefix sums remain consistent with raw weights after
// arbitrary update sequences.
func TestQuickFenwickConsistent(t *testing.T) {
	f := func(seed uint64, raw []uint16, updates []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 32 {
			raw = raw[:32]
		}
		weights := make([]float64, len(raw))
		anyPos := false
		for i, v := range raw {
			weights[i] = float64(v%100) + 1 // strictly positive
			anyPos = true
		}
		if !anyPos {
			return true
		}
		fen, err := NewFenwick(weights)
		if err != nil {
			return false
		}
		for k, u := range updates {
			if k >= 16 {
				break
			}
			idx := int(u) % len(weights)
			w := float64(u%50) + 1
			weights[idx] = w
			if err := fen.UpdateWeight(idx, w); err != nil {
				return false
			}
		}
		want := 0.0
		for _, w := range weights {
			want += w
		}
		if math.Abs(fen.Total()-want) > 1e-6*want {
			return false
		}
		r := xrand.New(seed)
		for i := 0; i < 16; i++ {
			idx := fen.Sample(r)
			if idx < 0 || idx >= len(weights) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Cross-check: alias and CDF agree (statistically) on a jagged
// distribution. Compares empirical frequencies rather than streams.
func TestAliasCDFAgree(t *testing.T) {
	weights := []float64{0.5, 9, 3.25, 0, 7, 1, 1, 2.5}
	alias, _ := NewAlias(weights)
	cdf, _ := NewCDF(weights)
	const samples = 300000
	ca := make([]float64, len(weights))
	cc := make([]float64, len(weights))
	ra, rc := xrand.New(2), xrand.New(3)
	for i := 0; i < samples; i++ {
		ca[alias.Sample(ra)]++
		cc[cdf.Sample(rc)]++
	}
	for i := range weights {
		fa, fc := ca[i]/samples, cc[i]/samples
		if math.Abs(fa-fc) > 0.01 {
			t.Fatalf("category %d: alias %.4f vs cdf %.4f", i, fa, fc)
		}
	}
}

func benchWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(1 + i%10)
	}
	return w
}

func BenchmarkAliasSample(b *testing.B) {
	a, _ := NewAlias(benchWeights(10000))
	r := xrand.New(1)
	var sink int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += a.Sample(r)
	}
	_ = sink
}

func BenchmarkCDFSample(b *testing.B) {
	c, _ := NewCDF(benchWeights(10000))
	r := xrand.New(1)
	var sink int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += c.Sample(r)
	}
	_ = sink
}

func BenchmarkFenwickSample(b *testing.B) {
	f, _ := NewFenwick(benchWeights(10000))
	r := xrand.New(1)
	var sink int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += f.Sample(r)
	}
	_ = sink
}

func BenchmarkAliasBuild(b *testing.B) {
	w := benchWeights(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewAlias(w); err != nil {
			b.Fatal(err)
		}
	}
}

// TestThresholdOfNearOne: for p within a few ulps of 1 the scaled
// product sits at the very top of the uint32 range; the conversion must
// saturate at the maximum threshold (near-certain acceptance), never
// wrap around to a tiny threshold (certain alias redirect). p = 1−2⁻³⁴
// is the regression pin: its exact product is 2³² − 0.25.
func TestThresholdOfNearOne(t *testing.T) {
	cases := []struct {
		name string
		p    float64
		want uint32
	}{
		{"1-2^-34", 1 - 0x1p-34, ^uint32(0)},
		{"largest-below-1", math.Nextafter(1, 0), ^uint32(0)},
		{"exactly-1", 1, ^uint32(0)},
		{"above-1", 1 + 0x1p-16, ^uint32(0)},
		{"half", 0.5, 1 << 31},
		{"zero", 0, 0},
		{"tiny", 0x1p-40, 0}, // rounds down: below one threshold step
	}
	for _, c := range cases {
		if got := thresholdOf(c.p); got != c.want {
			t.Errorf("thresholdOf(%s) = %d, want %d", c.name, got, c.want)
		}
	}
	// A table built with a near-1 acceptance column must accept nearly
	// always: weights {1, 2^-40} give column 0 acceptance ~1−2^-40.
	a, err := NewAlias([]float64{1, 0x1p-40})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(123)
	hits := 0
	for i := 0; i < 100000; i++ {
		if a.Sample(r) == 1 {
			hits++
		}
	}
	if hits > 2 {
		t.Fatalf("near-zero-weight index drawn %d times in 1e5 samples", hits)
	}
}

// TestCDFZeroWeightEdges covers the two edges of CDF.Sample: a
// zero-weight prefix must never be returned even when the uniform draw
// is exactly 0, and a zero-weight tail must stay unreachable even
// though rounding absorption pins the final cumulative value to 1.
func TestCDFZeroWeightEdges(t *testing.T) {
	// Leading zeros: u = 0 lands on index 0 in the raw search.
	lead, err := NewCDF([]float64{0, 0, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := lead.locate(0); got != 2 {
		t.Fatalf("locate(0) with zero-weight prefix = %d, want 2", got)
	}
	// Trailing zeros: rounding can leave cum[lastPositive] below 1, and
	// the old blind cum[len-1] = 1 absorption made the final zero-weight
	// bin absorb the residual band just under 1.
	weights := []float64{1, 1e-9, 1e-9, 0}
	tail, err := NewCDF(weights)
	if err != nil {
		t.Fatal(err)
	}
	if got := tail.locate(math.Nextafter(1, 0)); weights[got] == 0 {
		t.Fatalf("locate(1-ulp) returned zero-weight index %d", got)
	}
	// Middle zeros stay unreachable under both edges combined.
	mid, err := NewCDF([]float64{0, 2, 0, 0, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{0, 0.1, 0.2856, 0.99999, math.Nextafter(1, 0)} {
		idx := mid.locate(u)
		if idx < 0 || idx > 5 || []float64{0, 2, 0, 0, 5, 0}[idx] == 0 {
			t.Fatalf("locate(%v) = %d (zero-weight or out of range)", u, idx)
		}
	}
	// All-edges Monte-Carlo: no zero-weight index over many draws.
	r := xrand.New(77)
	for i := 0; i < 50000; i++ {
		if idx := tail.Sample(r); weights[idx] == 0 {
			t.Fatalf("Sample returned zero-weight index %d", idx)
		}
	}
}

// TestSampleNStreamContract: SampleN(n) must consume exactly
// ceil(n/2) draws and reproduce the concatenation of floor(n/2)
// Sample2 calls plus, for odd n, one Sample call — the packing the
// d = 3 and d = 4 kernels rely on.
func TestSampleNStreamContract(t *testing.T) {
	weights := []float64{5, 1, 3, 0.5, 2, 8, 0.25, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8} {
		r1 := xrand.New(999)
		out := make([]int, n)
		a.SampleN(r1, out)

		r2 := xrand.New(999)
		want := make([]int, 0, n)
		for len(want)+1 < n {
			i, j := a.Sample2(r2)
			want = append(want, i, j)
		}
		if len(want) < n {
			want = append(want, a.Sample(r2))
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("n=%d: SampleN[%d] = %d, reference %d", n, i, out[i], want[i])
			}
		}
		if *r1 != *r2 {
			t.Fatalf("n=%d: RNG states diverge (draw counts differ)", n)
		}
	}
	// Sample3 and Sample4 are the flattened kernels of the same packing.
	r1, r2 := xrand.New(31), xrand.New(31)
	x0, x1, x2 := a.Sample3(r1)
	out := make([]int, 3)
	a.SampleN(r2, out)
	if x0 != out[0] || x1 != out[1] || x2 != out[2] || *r1 != *r2 {
		t.Fatal("Sample3 diverges from SampleN(3)")
	}
	r1, r2 = xrand.New(32), xrand.New(32)
	y0, y1, y2, y3 := a.Sample4(r1)
	out = make([]int, 4)
	a.SampleN(r2, out)
	if y0 != out[0] || y1 != out[1] || y2 != out[2] || y3 != out[3] || *r1 != *r2 {
		t.Fatal("Sample4 diverges from SampleN(4)")
	}
}

// TestSampleBatchStreamContract: SampleBatch(d) over b balls must
// reproduce, ball for ball, d SampleN candidates followed by one raw
// Uint64 tie draw — the exact per-ball draw order of the greedy
// kernels — and consume exactly b·(ceil(d/2)+1) advances.
func TestSampleBatchStreamContract(t *testing.T) {
	weights := []float64{5, 1, 3, 0.5, 2, 8, 0.25, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{1, 2, 3, 4, 5, 7} {
		for _, b := range []int{1, 2, 17} {
			r1 := xrand.New(uint64(1000*d + b))
			cand := make([]int, d*b)
			tie := make([]uint64, b)
			a.SampleBatch(r1, d, cand, tie)

			r2 := xrand.New(uint64(1000*d + b))
			wantCand := make([]int, d)
			for ball := 0; ball < b; ball++ {
				a.SampleN(r2, wantCand)
				for i, w := range wantCand {
					if cand[ball*d+i] != w {
						t.Fatalf("d=%d b=%d: ball %d candidate %d = %d, reference %d",
							d, b, ball, i, cand[ball*d+i], w)
					}
				}
				if u := r2.Uint64(); tie[ball] != u {
					t.Fatalf("d=%d b=%d: ball %d tie draw %#x, reference %#x",
						d, b, ball, tie[ball], u)
				}
			}
			if *r1 != *r2 {
				t.Fatalf("d=%d b=%d: RNG states diverge (draw counts differ)", d, b)
			}
		}
	}
}

func TestSampleBatchPanicsOnSizeMismatch(t *testing.T) {
	a, err := NewAlias([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []struct {
		d          int
		cand, ties int
	}{
		{0, 0, 0},
		{2, 3, 2},
		{3, 3, 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SampleBatch(d=%d, %d cand, %d ties) did not panic",
						bad.d, bad.cand, bad.ties)
				}
			}()
			a.SampleBatch(xrand.New(1), bad.d, make([]int, bad.cand), make([]uint64, bad.ties))
		}()
	}
}

// TestSampleNMatchesDistribution: chi-square agreement of the packed
// multi-candidate draws with the build weights, on skewed and
// near-degenerate vectors — every position of the packed draw must
// carry the same marginal as Sample.
func TestSampleNMatchesDistribution(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
	}{
		{"skewed", []float64{1000, 1, 1, 1, 1}},
		{"near-degenerate", []float64{1, 1e-7, 1e-7}},
		{"paper-two-class", []float64{1, 1, 1, 1, 1, 10, 10, 10, 10, 10}},
		{"with-zeros", []float64{0, 4, 0, 6, 0, 2}},
	}
	// 99.9% chi-square quantiles by degrees of freedom.
	quantile := map[int]float64{
		1: 10.83, 2: 13.82, 3: 16.27, 4: 18.47,
		5: 20.52, 6: 22.46, 7: 24.32, 8: 26.12, 9: 27.88,
	}
	const rounds = 60000
	for _, tc := range cases {
		a, err := NewAlias(tc.weights)
		if err != nil {
			t.Fatal(err)
		}
		r := xrand.New(0x5a5a)
		// draw in packs of 3 and 4, counting every position
		counts := make([]int, len(tc.weights))
		buf := make([]int, 4)
		samples := 0
		for i := 0; i < rounds; i++ {
			n := 3 + i%2
			a.SampleN(r, buf[:n])
			for _, idx := range buf[:n] {
				counts[idx]++
			}
			samples += n
		}
		nonzero := 0
		for i, w := range tc.weights {
			if w > 0 {
				nonzero++
			} else if counts[i] != 0 {
				t.Fatalf("%s: zero-weight index %d drawn %d times", tc.name, i, counts[i])
			}
		}
		// near-degenerate weights have expected counts far below the
		// chi-square validity floor for the tiny categories; fall back
		// to a direct frequency bound there.
		if tc.name == "near-degenerate" {
			f := float64(counts[1]+counts[2]) / float64(samples)
			if f > 1e-5 {
				t.Fatalf("%s: tiny categories frequency %v", tc.name, f)
			}
			continue
		}
		chi2 := chiSquare(counts, tc.weights, samples)
		if lim := quantile[nonzero-1]; chi2 > lim {
			t.Errorf("%s: chi-square %.2f > %.2f (counts %v)", tc.name, chi2, lim, counts)
		}
	}
}
