// Binomial and multinomial count generation: the substrate of the
// block-wise routing pass in internal/sim. Instead of drawing one
// categorical sample per ball and keeping only the counts, the sharded
// engines generate the count vector of a whole routing block directly —
// the conditional binomial decomposition of Devroye & Los ("An
// asymptotically optimal algorithm for generating bin cardinalities"),
// which produces an exact Multinomial(n, w/W) sample in O(k) binomial
// draws instead of O(n) categorical draws.
//
// Both samplers are exact (no normal approximation anywhere) and
// deterministic: for a fixed RNG state the draw sequence is a pure
// function of (n, p) resp. (n, weights). Like the rest of the
// repository they trade the last ulp of cross-architecture float
// identity for speed only where xrand already does (math.Log etc. —
// see xrand.Exp); the engines give every routing block its own
// dedicated substream, so block results never depend on another
// block's draw count.
package sampling

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// binvCutoff is the n·min(p,1-p) threshold below which Binomial uses
// sequential inversion (BINV); above it the BTRS rejection sampler is
// both faster and numerically safe (it requires n·p >= 10).
const binvCutoff = 30

// Binomial returns one exact sample of Binomial(n, p).
//
// Draw-consumption contract (part of the pinned stream layout): forced
// outcomes — n == 0, p <= 0 (returns 0) and p >= 1 (returns n) —
// consume NO draws; every other case consumes a data-dependent but
// deterministic number of 64-bit advances. Algorithm selection (BINV
// inversion for n·min(p,1-p) <= 30, the BTRS transformed-rejection
// sampler of Hörmann otherwise, with the p > 1/2 cases reflected
// through n − Binomial(n, 1−p)) depends only on (n, p), never on the
// draws.
func Binomial(r *xrand.Rand, n int64, p float64) int64 {
	if n < 0 {
		panic(fmt.Sprintf("sampling: Binomial with n = %d", n))
	}
	if p != p || p < 0 || p > 1 {
		panic(fmt.Sprintf("sampling: Binomial with p = %v", p))
	}
	if n == 0 || p == 0 {
		return 0
	}
	if p == 1 {
		return n
	}
	pp, flip := p, false
	if p > 0.5 {
		pp, flip = 1-p, true
	}
	var k int64
	if float64(n)*pp <= binvCutoff {
		k = binomialInv(r, n, pp)
	} else {
		k = binomialBTRS(r, n, pp)
	}
	if flip {
		k = n - k
	}
	return k
}

// binomialInv is the classic BINV sequential inversion: one uniform
// walks the pmf recurrence from k = 0. Requires p <= 1/2 and
// n·p <= binvCutoff, so q^n >= e^(-2·binvCutoff) never underflows and
// the expected walk length stays ~n·p. A walk that runs past n (float
// residue of the pmf recurrence summing below 1) restarts with a fresh
// uniform — deterministic, vanishingly rare.
func binomialInv(r *xrand.Rand, n int64, p float64) int64 {
	q := 1 - p
	s := p / q
	a := float64(n+1) * s
	base := math.Exp(float64(n) * math.Log(q))
	for {
		u := r.Float64()
		rr := base
		var x int64
		for u > rr {
			u -= rr
			x++
			if x > n {
				break
			}
			rr *= a/float64(x) - s
		}
		if x <= n {
			return x
		}
	}
}

// lgamma is math.Lgamma without the sign result (all arguments here
// are >= 1, where the gamma function is positive).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// binomialBTRS is Hörmann's BTRS sampler (transformed rejection with
// the one built-in immediate-accept region, no further squeeze steps):
// the integer transform k = floor((2a/(1/2−|u|) + b)·u + c) of a
// uniform u maps the dominating density onto the binomial pmf so that
// ~80-90% of proposals accept, most of them in the first branch with a
// single uniform and no transcendental call. Requires p <= 1/2 and
// n·p > binvCutoff (the constants need n·p >= 10).
func binomialBTRS(r *xrand.Rand, n int64, p float64) int64 {
	nf := float64(n)
	q := 1 - p
	spq := math.Sqrt(nf * p * q)
	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := nf*p + 0.5
	vr := 0.92 - 4.2/b
	urvr := 0.86 * vr
	alpha := (2.83 + 5.1/b) * spq
	lpq := math.Log(p / q)
	mode := math.Floor((nf + 1) * p)
	h := lgamma(mode+1) + lgamma(nf-mode+1)
	for {
		v := r.Float64()
		if v <= urvr {
			// Immediate accept: for n·p >= 10 the transform of this
			// region lands inside [0, n]; the clamp only guards float
			// rounding at the region edge.
			u := v/vr - 0.43
			k := math.Floor((2*a/(0.5-math.Abs(u))+b)*u + c)
			if k < 0 {
				k = 0
			} else if k > nf {
				k = nf
			}
			return int64(k)
		}
		var u float64
		if v >= vr {
			u = r.Float64() - 0.5
		} else {
			u = v/vr - 0.93
			u = math.Copysign(0.5, u) - u
			v = vr * r.Float64()
		}
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + c)
		if k < 0 || k > nf {
			continue
		}
		v = v * alpha / (a/(us*us) + b)
		if math.Log(v) <= h-lgamma(k+1)-lgamma(nf-k+1)+(k-mode)*lpq {
			return int64(k)
		}
	}
}

// Multinomial generates exact Multinomial(n, w/W) count vectors over k
// categories in O(k) binomial draws, by recursive conditional binomial
// splitting over a balanced interval tree: the count of the left half
// of an interval given the interval's total is Binomial(total,
// W_left/W_interval), recursively down to single categories. Node
// split probabilities are precomputed at build; Draw touches only them
// plus the caller's RNG and output, so one Multinomial is safe to
// share across concurrent Draw calls with distinct RNGs and outputs.
type Multinomial struct {
	k int
	// pLeft holds the left-half split probability of every internal
	// node of the interval tree, in preorder: the node covering
	// [lo, hi) at index i has its left child ([lo, mid)) at i+1 and
	// its right child ([mid, hi)) at i+(mid-lo) — an interval of
	// length L contains exactly L−1 internal nodes, so the layout is
	// dense with no child pointers.
	pLeft []float64
}

// NewMultinomial builds the splitting tree for the given non-negative
// weights (same validation as the other samplers: at least one weight
// must be positive). Zero-weight categories always receive count 0.
func NewMultinomial(weights []float64) (*Multinomial, error) {
	if _, err := validateWeights(weights); err != nil {
		return nil, err
	}
	k := len(weights)
	m := &Multinomial{k: k, pLeft: make([]float64, k-1)}
	if k == 1 {
		return m, nil
	}
	// prefix[i] = Σ weights[:i]; computed once, left to right, so every
	// node's interval weight is an exact difference of two monotone
	// prefix values and pLeft never exceeds 1.
	prefix := make([]float64, k+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + w
	}
	m.build(prefix, 0, 0, k)
	return m, nil
}

func (m *Multinomial) build(prefix []float64, node, lo, hi int) {
	if hi-lo <= 1 {
		return
	}
	mid := (lo + hi) / 2
	wl := prefix[mid] - prefix[lo]
	wt := prefix[hi] - prefix[lo]
	p := 0.0
	if wt > 0 {
		p = wl / wt
	}
	m.pLeft[node] = p
	m.build(prefix, node+1, lo, mid)
	m.build(prefix, node+(mid-lo), mid, hi)
}

// K returns the number of categories.
func (m *Multinomial) K() int { return m.k }

// Draw overwrites out (length K()) with one exact Multinomial(n, w/W)
// sample: Σ out = n always, and out[i] = 0 whenever weight i is 0.
//
// Draw-consumption contract: a subtree handed count 0 is zeroed
// without consuming a single draw (and forced binomial splits — a
// zero-weight half — consume none either, per Binomial), so the draw
// sequence is a deterministic function of (n, weights) and the RNG
// state. The routing pass pins this via its block substreams.
func (m *Multinomial) Draw(r *xrand.Rand, n int64, out []int64) {
	if len(out) != m.k {
		panic(fmt.Sprintf("sampling: Multinomial.Draw into %d counts for %d categories", len(out), m.k))
	}
	if n < 0 {
		panic(fmt.Sprintf("sampling: Multinomial.Draw with n = %d", n))
	}
	m.draw(r, n, 0, 0, m.k, out)
}

func (m *Multinomial) draw(r *xrand.Rand, n int64, node, lo, hi int, out []int64) {
	if hi-lo == 1 {
		out[lo] = n
		return
	}
	if n == 0 {
		for i := lo; i < hi; i++ {
			out[i] = 0
		}
		return
	}
	mid := (lo + hi) / 2
	nl := Binomial(r, n, m.pLeft[node])
	m.draw(r, nl, node+1, lo, mid, out)
	m.draw(r, n-nl, node+(mid-lo), mid, hi, out)
}
