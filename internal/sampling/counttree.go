package sampling

import (
	"fmt"

	"repro/internal/xrand"
)

// CountTree is a Fenwick tree over non-negative integer counts,
// supporting exact uniform sampling WITHOUT replacement: Sample picks
// index i with probability count_i / total using one bounded integer
// draw (no floating point anywhere, so the draw law is exact and the
// structure never accumulates rounding residue the way the float64
// Fenwick sampler can), and Dec removes one unit from an index. Both
// cost O(log n).
//
// It is the kernel of the streaming engine's deletion pass: deleting D
// balls exactly uniformly without replacement is D rounds of
// Sample-then-Dec over the bin (or shard) ball counts — each round a
// single Uint64n draw on the caller's stream, so the draw sequence is
// pinned by (counts, stream) alone.
//
// A CountTree is not safe for concurrent use. The zero value is
// unusable; allocate with NewCountTree and (re)fill with Build, which
// is allocation-free so per-round rebuilds cost no steady-state
// garbage.
type CountTree struct {
	tree []int64 // 1-based Fenwick tree of counts
	n    int
	mask int // highest power of two <= n
	tot  int64
}

// NewCountTree allocates a tree over n indices (n >= 1), all counts
// zero. Call Build (or Inc) before sampling.
func NewCountTree(n int) (*CountTree, error) {
	if n < 1 {
		return nil, fmt.Errorf("sampling: CountTree over %d indices, need >= 1", n)
	}
	mask := 1
	for mask<<1 <= n {
		mask <<= 1
	}
	return &CountTree{tree: make([]int64, n+1), n: n, mask: mask}, nil
}

// N returns the number of indices.
func (t *CountTree) N() int { return t.n }

// Total returns the current sum of counts.
func (t *CountTree) Total() int64 { return t.tot }

// Build refills the tree from count(i) for i in [0, N()) in O(n)
// without allocating, so a tree can be rebuilt every round. count must
// return non-negative values; Build panics on a negative count (a
// negative ball count is always an upstream accounting bug, and
// sampling would silently misbehave on it).
func (t *CountTree) Build(count func(i int) int64) {
	clear(t.tree)
	t.tot = 0
	for i := 1; i <= t.n; i++ {
		c := count(i - 1)
		if c < 0 {
			panic(fmt.Sprintf("sampling: CountTree.Build: negative count %d at index %d", c, i-1))
		}
		t.tot += c
		t.tree[i] += c
		if j := i + (i & -i); j <= t.n {
			t.tree[j] += t.tree[i]
		}
	}
}

// Count returns the current count of index i in O(log n).
func (t *CountTree) Count(i int) int64 {
	c := t.tree[i+1]
	// Subtract the sibling ranges folded into tree[i+1].
	for j, stop := i, (i+1)-((i+1)&-(i+1)); j > stop; j -= j & -j {
		c -= t.tree[j]
	}
	return c
}

// Sample returns an index with probability count_i / Total(), using a
// single exact bounded draw from r. It panics when Total() == 0 —
// sampling from an empty population is always a caller bug.
func (t *CountTree) Sample(r *xrand.Rand) int {
	if t.tot <= 0 {
		panic("sampling: CountTree.Sample with zero total")
	}
	// u is uniform on [0, tot); descend to the first index whose prefix
	// sum exceeds u. All-integer: the sampled law is exactly the counts.
	u := int64(r.Uint64n(uint64(t.tot)))
	idx := 0
	for mask := t.mask; mask > 0; mask >>= 1 {
		next := idx + mask
		if next <= t.n && t.tree[next] <= u {
			u -= t.tree[next]
			idx = next
		}
	}
	return idx // 0-based: idx entries have prefix sum <= u
}

// Dec removes one unit from index i (O(log n)). It panics when the
// index's count is already zero: a without-replacement stream can
// never remove what is not there.
func (t *CountTree) Dec(i int) {
	if t.Count(i) <= 0 {
		panic(fmt.Sprintf("sampling: CountTree.Dec at index %d with zero count", i))
	}
	t.tot--
	for j := i + 1; j <= t.n; j += j & -j {
		t.tree[j]--
	}
}

// Inc adds one unit to index i (O(log n)).
func (t *CountTree) Inc(i int) {
	t.tot++
	for j := i + 1; j <= t.n; j += j & -j {
		t.tree[j]++
	}
}
