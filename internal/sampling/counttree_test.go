package sampling

import (
	"testing"

	"repro/internal/xrand"
)

func TestCountTreeBuildAndCount(t *testing.T) {
	counts := []int64{3, 0, 7, 1, 0, 5, 2}
	ct, err := NewCountTree(len(counts))
	if err != nil {
		t.Fatal(err)
	}
	ct.Build(func(i int) int64 { return counts[i] })
	if ct.Total() != 18 {
		t.Fatalf("Total = %d, want 18", ct.Total())
	}
	for i, c := range counts {
		if got := ct.Count(i); got != c {
			t.Fatalf("Count(%d) = %d, want %d", i, got, c)
		}
	}
	// Build must be idempotent (clears previous state).
	ct.Build(func(i int) int64 { return counts[i] })
	if ct.Total() != 18 {
		t.Fatalf("Total after rebuild = %d, want 18", ct.Total())
	}
}

// TestCountTreeExhaustion drains the whole population without
// replacement: every unit must come out exactly once.
func TestCountTreeExhaustion(t *testing.T) {
	counts := []int64{2, 5, 0, 1, 9, 3, 0, 4}
	for _, n := range []int{1, 3, len(counts)} {
		ct, err := NewCountTree(n)
		if err != nil {
			t.Fatal(err)
		}
		ct.Build(func(i int) int64 { return counts[i] })
		drawn := make([]int64, n)
		r := xrand.New(99)
		for ct.Total() > 0 {
			i := ct.Sample(r)
			ct.Dec(i)
			drawn[i]++
		}
		for i := 0; i < n; i++ {
			if drawn[i] != counts[i] {
				t.Fatalf("n=%d: drew %d units from index %d, want %d", n, drawn[i], i, counts[i])
			}
			if ct.Count(i) != 0 {
				t.Fatalf("n=%d: Count(%d) = %d after exhaustion", n, i, ct.Count(i))
			}
		}
	}
}

// TestCountTreeLaw checks the exact sampling law: the frequency of each
// index over many WITH-replacement draws (Sample without Dec) must
// match count_i/total within Monte-Carlo noise.
func TestCountTreeLaw(t *testing.T) {
	counts := []int64{1, 0, 4, 10, 0, 5}
	var total int64
	for _, c := range counts {
		total += c
	}
	ct, err := NewCountTree(len(counts))
	if err != nil {
		t.Fatal(err)
	}
	ct.Build(func(i int) int64 { return counts[i] })
	r := xrand.New(7)
	const draws = 200000
	freq := make([]int64, len(counts))
	for k := 0; k < draws; k++ {
		freq[ct.Sample(r)]++
	}
	for i, c := range counts {
		want := float64(c) / float64(total)
		got := float64(freq[i]) / draws
		if diff := got - want; diff > 0.01 || diff < -0.01 {
			t.Errorf("index %d: frequency %.4f, want %.4f", i, got, want)
		}
	}
}

// TestCountTreeDeterminism pins the draw sequence: sampling is a pure
// function of (counts, stream). A change here is a model change.
func TestCountTreeDeterminism(t *testing.T) {
	counts := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	ct, err := NewCountTree(len(counts))
	if err != nil {
		t.Fatal(err)
	}
	ct.Build(func(i int) int64 { return counts[i] })
	r := xrand.New(42)
	got := make([]int, 0, 12)
	for k := 0; k < 12; k++ {
		i := ct.Sample(r)
		ct.Dec(i)
		got = append(got, i)
	}
	want := []int{7, 4, 7, 5, 6, 5, 1, 5, 2, 7, 5, 7}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("draw sequence %v, want %v (pinned golden: the deletion model changed)", got, want)
		}
	}
}

func TestCountTreeIncDec(t *testing.T) {
	ct, err := NewCountTree(4)
	if err != nil {
		t.Fatal(err)
	}
	ct.Inc(2)
	ct.Inc(2)
	ct.Inc(0)
	if ct.Total() != 3 || ct.Count(2) != 2 || ct.Count(0) != 1 {
		t.Fatalf("state after Inc: total=%d c0=%d c2=%d", ct.Total(), ct.Count(0), ct.Count(2))
	}
	ct.Dec(2)
	if ct.Total() != 2 || ct.Count(2) != 1 {
		t.Fatalf("state after Dec: total=%d c2=%d", ct.Total(), ct.Count(2))
	}
}

func TestCountTreePanics(t *testing.T) {
	if _, err := NewCountTree(0); err == nil {
		t.Fatal("NewCountTree(0) should fail")
	}
	ct, _ := NewCountTree(3)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Sample on empty", func() { ct.Sample(xrand.New(1)) })
	mustPanic("Dec at zero", func() { ct.Dec(1) })
	mustPanic("Build with negative count", func() { ct.Build(func(int) int64 { return -1 }) })
}

func TestCountTreeBuildAllocFree(t *testing.T) {
	ct, err := NewCountTree(256)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, 256)
	for i := range counts {
		counts[i] = int64(i % 5)
	}
	fn := func(i int) int64 { return counts[i] }
	if allocs := testing.AllocsPerRun(20, func() { ct.Build(fn) }); allocs != 0 {
		t.Fatalf("Build allocates %v per run, want 0", allocs)
	}
}
