//go:build faultinject

// Chaos test matrix: with -tags faultinject the engines' fault sites
// are live, and every test here arms a deterministic Plan — panic,
// stall, or cancel at one exact {engine, op, rep, shard, block} — then
// asserts the run surfaces a provenance error (never a crash, never a
// hang) and strands no goroutine. The CI chaos job runs this file,
// plus the whole engine suite, under -race.
package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/bins"
	"repro/internal/cluster"
	"repro/internal/fault"
)

// wantInjectedPanic asserts err is a *PanicError wrapping the injected
// fault at the expected operation, with engine/task provenance.
func wantInjectedPanic(t *testing.T, err error, engine string, op fault.Op) {
	t.Helper()
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if perr.Engine != engine {
		t.Fatalf("panic attributed to engine %q, want %q", perr.Engine, engine)
	}
	var inj *fault.Injected
	if !errors.As(err, &inj) {
		t.Fatalf("panic value %v is not the injected fault", perr.Value)
	}
	if inj.Site.Op != op {
		t.Fatalf("fault fired at op %v, want %v", inj.Site.Op, op)
	}
	if perr.Task != op.String() && op != fault.OpChunk {
		t.Fatalf("task %q does not match op %v", perr.Task, op)
	}
}

// TestChaosRunLargePanicSites: a panic at any routing block or shard
// placement of the single-run engine surfaces with provenance, across
// shard and worker topologies.
func TestChaosRunLargePanicSites(t *testing.T) {
	a := largeArray(t, 600)
	sites := []fault.Site{
		{Engine: engRunLarge, Op: fault.OpRoute, Rep: -1, Shard: -1, Block: 0},
		{Engine: engRunLarge, Op: fault.OpPlace, Rep: -1, Shard: 0, Block: -1},
	}
	for _, site := range sites {
		for _, shards := range []int{1, 4} {
			for _, workers := range []int{1, 4} {
				func() {
					defer leakCheck(t)()
					defer fault.Arm(fault.Plan{Match: site, Do: fault.Panic, Msg: "chaos"})()
					_, err := RunLarge(LargeConfig{Array: a, Seed: 1, Shards: shards, Workers: workers})
					wantInjectedPanic(t, err, engRunLarge, site.Op)
				}()
			}
		}
	}
}

// TestChaosRunLargeMontePanicSites: every Monte pool-task kind — a
// routing block, a shard placement, a between-rep reset, a summary, an
// orchestrator step — dies at a pinned repetition and the run reports
// it instead of hanging, across shard and worker topologies.
func TestChaosRunLargeMontePanicSites(t *testing.T) {
	a := largeArray(t, 600)
	sites := []fault.Site{
		{Engine: engRunLargeMC, Op: fault.OpRoute, Rep: 2, Shard: -1, Block: -1},
		{Engine: engRunLargeMC, Op: fault.OpPlace, Rep: 1, Shard: 0, Block: -1},
		{Engine: engRunLargeMC, Op: fault.OpReset, Rep: -1, Shard: -1, Block: -1},
		{Engine: engRunLargeMC, Op: fault.OpSummary, Rep: 3, Shard: -1, Block: -1},
		{Engine: engRunLargeMC, Op: fault.OpOrchestrator, Rep: 2, Shard: -1, Block: -1},
	}
	for _, site := range sites {
		for _, shards := range []int{1, 4} {
			for _, workers := range []int{1, 4} {
				func() {
					defer leakCheck(t)()
					defer fault.Arm(fault.Plan{Match: site, Do: fault.Panic, Msg: "chaos"})()
					_, err := RunLargeMonte(LargeMonteConfig{
						LargeConfig: LargeConfig{Array: a, Seed: 1, Shards: shards, Workers: workers},
						Reps:        6,
					})
					wantInjectedPanic(t, err, engRunLargeMC, site.Op)
				}()
			}
		}
	}
}

// TestChaosRunChunkPanic: a classic chunk repetition dying at a pinned
// repetition surfaces with rep provenance.
func TestChaosRunChunkPanic(t *testing.T) {
	a := largeArray(t, 200)
	for _, workers := range []int{1, 4} {
		func() {
			defer leakCheck(t)()
			defer fault.Arm(fault.Plan{
				Match: fault.Site{Engine: engRun, Op: fault.OpChunk, Rep: 3, Shard: -1, Block: -1},
				Do:    fault.Panic, Msg: "chaos",
			})()
			_, err := Run(Config{Array: a, Seed: 1, Reps: 24, Workers: workers})
			wantInjectedPanic(t, err, engRun, fault.OpChunk)
			var perr *PanicError
			errors.As(err, &perr)
			if perr.Rep != 3 {
				t.Fatalf("panic attributed to rep %d, want 3", perr.Rep)
			}
		}()
	}
}

// TestChaosCancelMidRouting: a CancelRun fault at routing block 1 (with
// a stall at block 3 so the watcher latches) cancels the single-run
// engine inside Phase 1 — the partial carries shape but no state.
func TestChaosCancelMidRouting(t *testing.T) {
	defer leakCheck(t)()
	a := largeArray(t, 1500)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	disarm := fault.Arm(
		fault.Plan{
			Match: fault.Site{Op: fault.OpRoute, Rep: -1, Shard: -1, Block: 1},
			Do:    fault.CancelRun, Cancel: cancel, Once: true,
		},
		fault.Plan{
			Match: fault.Site{Op: fault.OpRoute, Rep: -1, Shard: -1, Block: 3},
			Do:    fault.Delay, Sleep: 50 * time.Millisecond, Once: true,
		},
	)
	defer disarm()
	// ~30 routing blocks (m = 50·C at C = 132000 means many RoutingBlock
	// strides), one worker so blocks are visited in order.
	res, err := RunLarge(LargeConfig{
		Array: a, Seed: 6, Shards: 4, Workers: 1, BallsFactor: 30,
		Context: ctx, ObsOptions: ObsOptions{Checkpoints: []int64{100000}},
	})
	var cerr *CancelledError
	if !errors.As(err, &cerr) {
		t.Skipf("routing finished before the cancellation latched (err = %v)", err)
	}
	if cerr.Engine != engRunLarge || cerr.CompletedCuts != 0 {
		t.Fatalf("provenance %+v, want RunLarge cancelled during routing", cerr)
	}
	if res == nil || res.Array != nil || len(res.Checkpoints) != 0 {
		t.Fatalf("mid-routing partial carries state: %+v", res)
	}
}

// TestChaosCancelThenResume: a chaotic (timing-dependent) cancellation
// at an orchestrator step still leaves a checkpoint that resumes to the
// byte-identical uninterrupted aggregate — the resume contract does not
// depend on WHERE the cancel landed.
func TestChaosCancelThenResume(t *testing.T) {
	defer leakCheck(t)()
	a := largeArray(t, 600)
	cfg := LargeMonteConfig{
		LargeConfig: LargeConfig{Array: a, Seed: 77, Shards: 4, Workers: 3,
			ObsOptions: ObsOptions{Checkpoints: []int64{500, 1500}, HeightLevels: 3}},
		Reps:              8,
		CollectLoadVector: true,
		ShardStats:        true,
	}
	full, err := RunLargeMonte(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	disarm := fault.Arm(fault.Plan{
		Match: fault.Site{Engine: engRunLargeMC, Op: fault.OpOrchestrator, Rep: 3, Shard: -1, Block: -1},
		Do:    fault.CancelRun, Cancel: cancel, Once: true,
	})
	interrupted := cfg
	interrupted.Context = ctx
	_, err = RunLargeMonte(interrupted)
	disarm()
	var cerr *CancelledError
	if !errors.As(err, &cerr) {
		t.Skipf("run completed before the cancellation latched (err = %v)", err)
	}
	if cerr.Checkpoint == nil {
		t.Fatal("cancelled run carried no checkpoint")
	}
	resumedCfg := cfg
	resumedCfg.Resume = cerr.Checkpoint
	resumed, err := RunLargeMonte(resumedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, full) {
		t.Fatalf("resumed-after-chaos aggregates differ from uninterrupted:\n got  %+v\n want %+v", resumed, full)
	}
}

// TestChaosDelayHarmless: a pure stall at a placement site slows a run
// down but never changes its result — fault hooks are observation
// points, not draws.
func TestChaosDelayHarmless(t *testing.T) {
	a := largeArray(t, 400)
	want, err := RunLarge(LargeConfig{Array: a, Seed: 9, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer fault.Arm(fault.Plan{
		Match: fault.Site{Op: fault.OpPlace, Rep: -1, Shard: 1, Block: -1},
		Do:    fault.Delay, Sleep: 30 * time.Millisecond,
	})()
	got, err := RunLarge(LargeConfig{Array: a, Seed: 9, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxLoad != want.MaxLoad || got.Deviation != want.Deviation ||
		!reflect.DeepEqual(got.ShardBalls, want.ShardBalls) {
		t.Fatal("a delay fault changed the result")
	}
}

// chaosStreamConfig is the streaming spec the stream chaos cases
// share: every phase (routing, placement, deletions, rebalance)
// active, every round doing real work.
func chaosStreamConfig(t *testing.T, ctx context.Context) StreamConfig {
	t.Helper()
	return StreamConfig{
		Array: largeArray(t, 400), Seed: 20260808, Shards: 4, Workers: 2,
		Rounds: 5, Arrivals: 2000, Deletions: 600, RebalanceTol: 0.001,
		Context:    ctx,
		ObsOptions: ObsOptions{Checkpoints: []int64{2, 4}},
	}
}

// TestChaosRunStreamPanicSites: an injected panic at each streaming
// fault site — a routing block, a placement stride, the deletion
// router, a shard deletion task, a rebalance move-out task — surfaces
// as a provenance-carrying *PanicError naming the round it fired in.
func TestChaosRunStreamPanicSites(t *testing.T) {
	cases := []struct {
		name  string
		match fault.Site
		op    fault.Op
		task  string
	}{
		{"route", fault.Site{Engine: engRunStream, Op: fault.OpRoute, Rep: 1, Shard: -1, Block: -1},
			fault.OpRoute, "route"},
		{"place", fault.Site{Engine: engRunStream, Op: fault.OpPlace, Rep: 1, Shard: 2, Block: -1},
			fault.OpPlace, "place"},
		{"delete-route", fault.Site{Engine: engRunStream, Op: fault.OpDelete, Rep: 1, Shard: -1, Block: -1},
			fault.OpDelete, "delete-route"},
		{"delete-shard", fault.Site{Engine: engRunStream, Op: fault.OpDelete, Rep: 1, Shard: 2, Block: -1},
			fault.OpDelete, "delete"},
		{"rebalance", fault.Site{Engine: engRunStream, Op: fault.OpRebalance, Rep: -1, Shard: -1, Block: -1},
			fault.OpRebalance, "move-out"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer leakCheck(t)()
			defer fault.Arm(fault.Plan{Match: tc.match, Do: fault.Panic, Msg: "chaos"})()
			_, err := runStream(chaosStreamConfig(t, nil))
			var perr *PanicError
			if !errors.As(err, &perr) {
				t.Fatalf("err = %v, want *PanicError", err)
			}
			if perr.Engine != engRunStream || perr.Task != tc.task {
				t.Fatalf("provenance engine %q task %q, want %s %s", perr.Engine, perr.Task, engRunStream, tc.task)
			}
			var inj *fault.Injected
			if !errors.As(err, &inj) {
				t.Fatalf("panic value %v is not the injected fault", perr.Value)
			}
			if inj.Site.Op != tc.op {
				t.Fatalf("fault fired at op %v, want %v", inj.Site.Op, tc.op)
			}
			if tc.match.Rep >= 0 && perr.Rep != tc.match.Rep {
				t.Fatalf("panic attributed to round %d, want %d", perr.Rep, tc.match.Rep)
			}
		})
	}
}

// TestChaosRunStreamRoundKill kills a round mid-flight at a pinned
// deletion site and checks the cancelled partial is exactly the
// completed-round prefix — bit-identical to an uninterrupted run
// configured with that Rounds value, however the chaos landed.
func TestChaosRunStreamRoundKill(t *testing.T) {
	defer leakCheck(t)()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	disarm := fault.Arm(
		fault.Plan{
			Match: fault.Site{Engine: engRunStream, Op: fault.OpDelete, Rep: 2, Shard: -1, Block: -1},
			Do:    fault.CancelRun, Cancel: cancel, Once: true,
		},
		// Stall one of round 2's shard deletion tasks so the watcher
		// latches before the phase barrier's cancellation check.
		fault.Plan{
			Match: fault.Site{Engine: engRunStream, Op: fault.OpDelete, Rep: 2, Shard: 1, Block: -1},
			Do:    fault.Delay, Sleep: 50 * time.Millisecond, Once: true,
		},
	)
	res, err := runStream(chaosStreamConfig(t, ctx))
	disarm()
	var cerr *CancelledError
	if !errors.As(err, &cerr) {
		t.Skipf("run completed before the cancellation latched (err = %v)", err)
	}
	if cerr.Engine != engRunStream || cerr.CompletedRounds != res.Rounds {
		t.Fatalf("provenance %+v does not match partial rounds %d", cerr, res.Rounds)
	}
	if res.Rounds > 2 {
		t.Fatalf("cancel fired in round 2 but %d rounds committed", res.Rounds)
	}
	short := chaosStreamConfig(t, nil)
	short.Rounds = res.Rounds
	if short.Rounds == 0 {
		return
	}
	want, err := runStream(short)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived != want.Arrived || res.Deleted != want.Deleted ||
		res.Moved != want.Moved || res.Balls != want.Balls {
		t.Fatalf("partial counters %+v, want prefix %+v", res, want)
	}
	if !reflect.DeepEqual(res.ShardBalls, want.ShardBalls) {
		t.Fatal("partial shard occupancies differ from the equivalent shorter run")
	}
	if !reflect.DeepEqual(res.Checkpoints, want.Checkpoints) {
		t.Fatal("partial trajectory differs from the equivalent shorter run")
	}
}

// TestChaosRunStreamDelayHarmless: stalls at streaming sites slow the
// run but never change a bit of the result.
func TestChaosRunStreamDelayHarmless(t *testing.T) {
	want, err := runStream(chaosStreamConfig(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer fault.Arm(
		fault.Plan{
			Match: fault.Site{Engine: engRunStream, Op: fault.OpDelete, Rep: -1, Shard: 1, Block: -1},
			Do:    fault.Delay, Sleep: 20 * time.Millisecond,
		},
		fault.Plan{
			Match: fault.Site{Engine: engRunStream, Op: fault.OpRoute, Rep: 3, Shard: -1, Block: -1},
			Do:    fault.Delay, Sleep: 20 * time.Millisecond, Once: true,
		},
	)()
	got, err := runStream(chaosStreamConfig(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxLoad != want.MaxLoad || got.Moved != want.Moved ||
		!reflect.DeepEqual(got.ShardBalls, want.ShardBalls) ||
		!reflect.DeepEqual(got.Checkpoints, want.Checkpoints) {
		t.Fatal("a delay fault changed the streaming result")
	}
}

// chaosClusterConfig is the cluster chaos spec: scheduled + stochastic
// churn, timeouts with retries, and shedding, so every new fault site
// is on the executed path.
func chaosClusterConfig(t *testing.T, ctx context.Context) ClusterConfig {
	t.Helper()
	// Uniform peers, sustained overload: every queue is backlogged from
	// tick 1 on, so the crashed peer always has residents to
	// redistribute and every shard's retry task has work.
	a, err := bins.Uniform(12, 5)
	if err != nil {
		t.Fatal(err)
	}
	return ClusterConfig{
		Array: a, Ticks: 20, Arrivals: 80, Seed: 5, Shards: 4, Workers: 4,
		// Purely scheduled churn: every site's tick is exact, so a plan
		// pinned to {op, tick, peer} always fires.
		Churn: cluster.ChurnPlan{
			Schedule: []cluster.ChurnEvent{
				{Tick: 2, Peer: 7, Down: true},
				{Tick: 6, Peer: 7, Down: false},
			},
		},
		Retry:         cluster.RetryPolicy{TimeoutTicks: 2, MaxRetries: 2, BackoffBase: 1},
		ShedThreshold: 1.5,
		Context:       ctx,
	}
}

// wantClusterInjected asserts err is a provenance *PanicError wrapping
// the injected fault at the expected op and task, attributed to the
// cluster engine.
func wantClusterInjected(t *testing.T, err error, op fault.Op, task string) {
	t.Helper()
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if perr.Engine != engRunCluster {
		t.Fatalf("panic attributed to engine %q, want %q", perr.Engine, engRunCluster)
	}
	var inj *fault.Injected
	if !errors.As(err, &inj) {
		t.Fatalf("panic value %v is not the injected fault", perr.Value)
	}
	if inj.Site.Op != op {
		t.Fatalf("fault fired at op %v, want %v", inj.Site.Op, op)
	}
	if perr.Task != task {
		t.Fatalf("task %q, want %q", perr.Task, task)
	}
}

// TestChaosRunClusterPanicSites: a panic at every churn-tolerant fault
// site — a crash event, the ring/router rebuild, a shard's
// redistribution task, the admission step, a shard's retry task, plus
// the inherited routing and placement sites — surfaces as a typed
// error with {engine, task, tick, peer/shard} provenance and strands
// no goroutine.
func TestChaosRunClusterPanicSites(t *testing.T) {
	cases := []struct {
		site fault.Site
		task string
	}{
		// Rep pins the scheduled crash tick; Shard carries the peer.
		{fault.Site{Engine: engRunCluster, Op: fault.OpCrash, Rep: 2, Shard: 7, Block: -1}, "churn"},
		{fault.Site{Engine: engRunCluster, Op: fault.OpReshard, Rep: 2, Shard: -1, Block: -1}, "reshard"},
		{fault.Site{Engine: engRunCluster, Op: fault.OpReshard, Rep: 2, Shard: 0, Block: -1}, "redistribute"},
		{fault.Site{Engine: engRunCluster, Op: fault.OpShed, Rep: 3, Shard: -1, Block: -1}, "shed"},
		{fault.Site{Engine: engRunCluster, Op: fault.OpRetry, Rep: -1, Shard: -1, Block: -1}, "retry"},
		{fault.Site{Engine: engRunCluster, Op: fault.OpRoute, Rep: 1, Shard: -1, Block: -1}, "route"},
		{fault.Site{Engine: engRunCluster, Op: fault.OpPlace, Rep: 1, Shard: 1, Block: -1}, "place"},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			func() {
				defer leakCheck(t)()
				defer fault.Arm(fault.Plan{Match: tc.site, Do: fault.Panic, Msg: "chaos"})()
				cfg := chaosClusterConfig(t, nil)
				cfg.Workers = workers
				_, err := runCluster(cfg)
				wantClusterInjected(t, err, tc.site.Op, tc.task)
			}()
		}
	}
}

// TestChaosRunClusterCancelMidTick: a context fired from inside tick
// k's retry phase abandons that tick and returns a committed prefix
// bit-identical to a CancelAfterTicks = k run.
func TestChaosRunClusterCancelMidTick(t *testing.T) {
	defer leakCheck(t)()
	const k = 7
	short := chaosClusterConfig(t, nil)
	short.CancelAfterTicks = k
	want, werr := runCluster(short)
	var wcerr *CancelledError
	if !errors.As(werr, &wcerr) || wcerr.CompletedTicks != k {
		t.Fatalf("reference run: %v", werr)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	defer fault.Arm(fault.Plan{
		Match: fault.Site{Engine: engRunCluster, Op: fault.OpRetry, Rep: k, Shard: -1, Block: -1},
		Do:    fault.CancelRun, Cancel: cancel, Once: true,
	})()
	got, err := runCluster(chaosClusterConfig(t, ctx))
	var cerr *CancelledError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *CancelledError", err)
	}
	if cerr.CompletedTicks != k {
		t.Fatalf("completed ticks = %d, want %d", cerr.CompletedTicks, k)
	}
	if !reflect.DeepEqual(traceOf(got), traceOf(want)) {
		t.Fatal("mid-tick cancellation prefix diverges from the CancelAfterTicks run")
	}
}

// TestChaosRunClusterDelayHarmless: stalls at churn-path sites slow
// the run but never change a bit of the degraded-mode result.
func TestChaosRunClusterDelayHarmless(t *testing.T) {
	want, err := runCluster(chaosClusterConfig(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer fault.Arm(
		fault.Plan{
			Match: fault.Site{Engine: engRunCluster, Op: fault.OpReshard, Rep: -1, Shard: -1, Block: -1},
			Do:    fault.Delay, Sleep: 10 * time.Millisecond,
		},
		fault.Plan{
			Match: fault.Site{Engine: engRunCluster, Op: fault.OpRetry, Rep: -1, Shard: 2, Block: -1},
			Do:    fault.Delay, Sleep: 10 * time.Millisecond,
		},
	)()
	got, err := runCluster(chaosClusterConfig(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(traceOf(got), traceOf(want)) {
		t.Fatal("a delay fault changed the cluster result")
	}
}
