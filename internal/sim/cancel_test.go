package sim

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bins"
	"repro/internal/protocol"
	"repro/internal/xrand"
)

// leakCheck snapshots the goroutine count; the returned func fails the
// test if the count has not settled back to the baseline — a worker,
// orchestrator or canceller watcher stranded by an error path.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
	}
}

// hookedPlacer wraps a real placer and runs a hook before every
// PlaceBatch — the test's way of triggering cancellation or a panic
// from inside the engines' placement hot path without build tags.
type hookedPlacer struct {
	protocol.Placer
	calls *atomic.Int64
	hook  func(call int64)
}

func (p *hookedPlacer) PlaceBatch(a *bins.Array, r *xrand.Rand, k int64) {
	p.hook(p.calls.Add(1))
	p.Placer.PlaceBatch(a, r, k)
}

// hookedFactory builds Greedy(2) placers whose PlaceBatch calls share
// one global counter and run hook first.
func hookedFactory(hook func(call int64)) protocol.Factory {
	var calls atomic.Int64
	return func(a *bins.Array, weights []float64) (protocol.Placer, error) {
		p, err := protocol.GreedyFactory(2)(a, weights)
		if err != nil {
			return nil, err
		}
		return &hookedPlacer{Placer: p, calls: &calls, hook: hook}, nil
	}
}

// TestRunCancelImmediate: a context that is already cancelled stops the
// classic engine before any repetition and still returns a well-formed
// (empty) partial.
func TestRunCancelImmediate(t *testing.T) {
	defer leakCheck(t)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := largeArray(t, 200)
	res, err := Run(Config{Array: a, Seed: 1, Reps: 10, Context: ctx})
	var cerr *CancelledError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *CancelledError", err)
	}
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not match ErrCancelled/context.Canceled", err)
	}
	if cerr.Engine != engRun || cerr.CompletedReps != 0 || cerr.CompletedCuts != -1 {
		t.Fatalf("provenance %+v, want engine %q with 0 completed reps", cerr, engRun)
	}
	if res == nil || res.MaxLoad.N() != 0 {
		t.Fatalf("partial result %+v, want empty aggregates", res)
	}
}

// TestRunCancelPartialIsPrefix: the classic engine's cancelled partial
// must be bit-identical to an uninterrupted run configured with exactly
// CompletedReps repetitions — partial results are a prefix of the
// deterministic model, not a best-effort snapshot.
func TestRunCancelPartialIsPrefix(t *testing.T) {
	defer leakCheck(t)()
	a := largeArray(t, 300)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	factory := hookedFactory(func(call int64) {
		if call == 3 {
			cancel()
			// Give the canceller's watcher time to latch the flag so
			// later repetition boundaries observe it.
			time.Sleep(20 * time.Millisecond)
		}
	})
	res, err := Run(Config{
		Array: a, Seed: 5, Reps: 64, Workers: 3, Placer: factory,
		ObsOptions: ObsOptions{Checkpoints: []int64{500, 1000}},
		Context:    ctx,
	})
	var cerr *CancelledError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *CancelledError", err)
	}
	k := cerr.CompletedReps
	if k < 0 || k >= 64 {
		t.Fatalf("completed reps %d out of range [0, 64)", k)
	}
	if res.MaxLoad.N() != int64(k) {
		t.Fatalf("partial aggregates %d observations, CompletedReps %d", res.MaxLoad.N(), k)
	}
	if k == 0 {
		t.Skip("cancelled before the first repetition; nothing to compare")
	}
	want, err := Run(Config{
		Array: a, Seed: 5, Reps: k, Workers: 3, Placer: hookedFactory(func(int64) {}),
		ObsOptions: ObsOptions{Checkpoints: []int64{500, 1000}},
	})
	if err != nil {
		t.Fatalf("prefix run: %v", err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("cancelled partial differs from a Reps=%d run:\n got  %+v\n want %+v", k, res, want)
	}
}

// TestRunLargeCancelImmediate: a pre-cancelled context stops the
// sharded single-run engine during routing; the partial carries shape
// but no checkpoint rows and no final state.
func TestRunLargeCancelImmediate(t *testing.T) {
	defer leakCheck(t)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := largeArray(t, 400)
	res, err := RunLarge(LargeConfig{
		Array: a, Seed: 3, Shards: 4,
		ObsOptions: ObsOptions{Checkpoints: []int64{500, 1000}},
		Context:    ctx,
	})
	var cerr *CancelledError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *CancelledError", err)
	}
	if cerr.Engine != engRunLarge || cerr.CompletedCuts != 0 || cerr.CompletedReps != -1 {
		t.Fatalf("provenance %+v, want RunLarge with 0 completed cuts", cerr)
	}
	if res == nil || res.N != 400 || res.Shards != 4 {
		t.Fatalf("partial shape %+v", res)
	}
	if len(res.Checkpoints) != 0 || res.Array != nil {
		t.Fatalf("pre-routing partial carries state: %+v", res)
	}
}

// TestRunLargeCancelCheckpointPrefix: when cancellation lands during
// placement, the partial's checkpoint rows are a prefix of — and
// bit-identical to — the uninterrupted run's rows.
func TestRunLargeCancelCheckpointPrefix(t *testing.T) {
	defer leakCheck(t)()
	a := largeArray(t, 1500)
	cuts := []int64{2000, 20000, 100000, 300000}
	base := LargeConfig{Array: a, Seed: 11, Shards: 4, BallsFactor: 50, ObsOptions: ObsOptions{Checkpoints: cuts}}
	want, err := RunLarge(base)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelled := base
	cancelled.Context = ctx
	cancelled.Placer = hookedFactory(func(call int64) {
		if call == 2 {
			cancel()
			// Give the canceller's watcher goroutine time to latch the
			// flag so the remaining placement segments observe it.
			time.Sleep(20 * time.Millisecond)
		}
	})
	// The baseline must use the same wrapped factory type so the rows
	// compare against an identical draw sequence.
	wrapped := base
	wrapped.Placer = hookedFactory(func(int64) {})
	want2, err := RunLarge(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Checkpoints, want2.Checkpoints) {
		t.Fatal("wrapping the placer changed the draw sequence")
	}
	res, err := RunLarge(cancelled)
	var cerr *CancelledError
	if !errors.As(err, &cerr) {
		t.Skipf("run completed before the cancellation latched (err = %v)", err)
	}
	done := cerr.CompletedCuts
	if done < 0 || done > len(cuts) {
		t.Fatalf("completed cuts %d out of range", done)
	}
	if len(res.Checkpoints) != done {
		t.Fatalf("partial has %d rows, CompletedCuts %d", len(res.Checkpoints), done)
	}
	if !reflect.DeepEqual(res.Checkpoints, want.Checkpoints[:done]) {
		t.Fatalf("cancelled rows differ from the uninterrupted prefix:\n got  %+v\n want %+v",
			res.Checkpoints, want.Checkpoints[:done])
	}
}

// TestRunLargeMonteCancelAfterRepsIsPrefix: a deterministic self-cancel
// after k repetitions yields aggregates bit-identical to a Reps=k run,
// across shard and worker topologies, with a resumable checkpoint and a
// nil Cause.
func TestRunLargeMonteCancelAfterRepsIsPrefix(t *testing.T) {
	a := largeArray(t, 600)
	for _, shards := range []int{1, 4} {
		for _, workers := range []int{1, 3} {
			defer leakCheck(t)()
			cfg := LargeMonteConfig{
				LargeConfig: LargeConfig{
					Array: a, Seed: 77, Shards: shards, Workers: workers,
					ObsOptions: ObsOptions{Checkpoints: []int64{500, 1500}, HeightLevels: 3},
				},
				Reps:              7,
				CollectLoadVector: true,
				ShardStats:        true,
			}
			prefix := cfg
			prefix.Reps = 3
			want, err := RunLargeMonte(prefix)
			if err != nil {
				t.Fatalf("shards=%d workers=%d prefix run: %v", shards, workers, err)
			}
			cancelledCfg := cfg
			cancelledCfg.CancelAfterReps = 3
			res, err := RunLargeMonte(cancelledCfg)
			var cerr *CancelledError
			if !errors.As(err, &cerr) {
				t.Fatalf("shards=%d workers=%d: err = %v, want *CancelledError", shards, workers, err)
			}
			if cerr.CompletedReps != 3 || cerr.Cause != nil || cerr.Checkpoint == nil {
				t.Fatalf("shards=%d workers=%d: provenance %+v, want 3 reps, nil cause, checkpoint", shards, workers, cerr)
			}
			if !reflect.DeepEqual(res, want) {
				t.Fatalf("shards=%d workers=%d: partial differs from a Reps=3 run:\n got  %+v\n want %+v",
					shards, workers, res, want)
			}
		}
	}
}

// TestRunLargeMonteContextCancel: a real context cancellation mid-run
// surfaces as ErrCancelled with a context cause and a contiguous
// completed prefix, and strands no goroutine.
func TestRunLargeMonteContextCancel(t *testing.T) {
	defer leakCheck(t)()
	a := largeArray(t, 600)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	factory := hookedFactory(func(call int64) {
		if call == 5 {
			cancel()
		}
	})
	res, err := RunLargeMonte(LargeMonteConfig{
		LargeConfig: LargeConfig{Array: a, Seed: 9, Shards: 4, Workers: 3, Placer: factory, Context: ctx},
		Reps:        50,
	})
	var cerr *CancelledError
	if !errors.As(err, &cerr) {
		t.Skipf("run completed before the cancellation latched (err = %v)", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause chain %v does not include context.Canceled", err)
	}
	if cerr.CompletedReps < 0 || cerr.CompletedReps >= 50 {
		t.Fatalf("completed reps %d out of range", cerr.CompletedReps)
	}
	if res.MaxLoad.N() != int64(cerr.CompletedReps) {
		t.Fatalf("aggregates %d observations, CompletedReps %d", res.MaxLoad.N(), cerr.CompletedReps)
	}
}

// TestRunLargeMontePlacePanicReleasesFold is the monteAgg error-path
// regression: a pool task dying mid-repetition (after the orchestrator
// claimed its fold slot) must surface as a provenance error and release
// the fold ladder — every orchestrator and worker goroutine exits, no
// waiter hangs on the fold condition.
func TestRunLargeMontePlacePanicReleasesFold(t *testing.T) {
	a := largeArray(t, 400)
	for _, workers := range []int{1, 4} {
		defer leakCheck(t)()
		factory := hookedFactory(func(call int64) {
			if call == 7 {
				panic("injected placement panic")
			}
		})
		_, err := RunLargeMonte(LargeMonteConfig{
			LargeConfig: LargeConfig{Array: a, Seed: 2, Shards: 4, Workers: workers, Placer: factory},
			Reps:        12,
		})
		var perr *PanicError
		if !errors.As(err, &perr) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if perr.Engine != engRunLargeMC || perr.Task != "place" {
			t.Fatalf("workers=%d: provenance %+v, want RunLargeMonte place task", workers, perr)
		}
		if len(perr.Stack) == 0 {
			t.Fatalf("workers=%d: no stack captured", workers)
		}
	}
}

// TestRunChunkPanicContained: the classic engine converts a repetition
// panic into a provenance error instead of crashing, and never masks it
// with a concurrent cancellation.
func TestRunChunkPanicContained(t *testing.T) {
	defer leakCheck(t)()
	a := largeArray(t, 200)
	factory := hookedFactory(func(call int64) {
		if call == 4 {
			panic("injected chunk panic")
		}
	})
	_, err := Run(Config{Array: a, Seed: 1, Reps: 24, Workers: 3, Placer: factory})
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if perr.Engine != engRun || perr.Task != "chunk" {
		t.Fatalf("provenance %+v, want Run chunk task", perr)
	}
}

// TestRunLargePlacePanicContained: a shard placement panic in the
// single-run engine carries its shard index.
func TestRunLargePlacePanicContained(t *testing.T) {
	defer leakCheck(t)()
	a := largeArray(t, 400)
	factory := hookedFactory(func(call int64) {
		if call == 2 {
			panic("injected shard panic")
		}
	})
	_, err := RunLarge(LargeConfig{Array: a, Seed: 4, Shards: 4, Placer: factory})
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if perr.Engine != engRunLarge || perr.Task != "place" || perr.Index < 0 || perr.Index >= 4 {
		t.Fatalf("provenance %+v, want RunLarge place task with a shard index", perr)
	}
}

// TestValidateFieldNamedErrors pins the config-validation hardening:
// malformed observation requests and negative knobs are rejected with
// errors naming the offending field, before any goroutine starts.
func TestValidateFieldNamedErrors(t *testing.T) {
	a := largeArray(t, 100)
	cases := []struct {
		name string
		frag string
		run  func() error
	}{
		{"classic negative checkpoint", "Checkpoints[", func() error {
			_, err := Run(Config{Array: a, Reps: 1, ObsOptions: ObsOptions{Checkpoints: []int64{-5}}})
			return err
		}},
		{"classic unsorted checkpoints", "Checkpoints[", func() error {
			_, err := Run(Config{Array: a, Reps: 1, ObsOptions: ObsOptions{Checkpoints: []int64{50, 10}}})
			return err
		}},
		{"classic duplicate checkpoints", "Checkpoints[", func() error {
			_, err := Run(Config{Array: a, Reps: 1, ObsOptions: ObsOptions{Checkpoints: []int64{10, 10}}})
			return err
		}},
		{"classic negative workers", "Workers", func() error {
			_, err := Run(Config{Array: a, Reps: 1, Workers: -2})
			return err
		}},
		{"classic negative height levels", "HeightLevels", func() error {
			_, err := Run(Config{Array: a, Reps: 1, ObsOptions: ObsOptions{HeightLevels: -1}})
			return err
		}},
		{"large zero checkpoint", "Checkpoints[", func() error {
			_, err := RunLarge(LargeConfig{Array: a, ObsOptions: ObsOptions{Checkpoints: []int64{0, 5}}})
			return err
		}},
		{"large unsorted checkpoints", "Checkpoints[", func() error {
			_, err := RunLarge(LargeConfig{Array: a, ObsOptions: ObsOptions{Checkpoints: []int64{100, 20}}})
			return err
		}},
		{"large negative workers", "Workers", func() error {
			_, err := RunLarge(LargeConfig{Array: a, Workers: -1})
			return err
		}},
		{"monte unsorted checkpoints", "Checkpoints[", func() error {
			_, err := RunLargeMonte(LargeMonteConfig{
				LargeConfig: LargeConfig{Array: a, ObsOptions: ObsOptions{Checkpoints: []int64{9, 3}}}, Reps: 1,
			})
			return err
		}},
		{"monte negative cancel-after", "CancelAfterReps", func() error {
			_, err := RunLargeMonte(LargeMonteConfig{
				LargeConfig: LargeConfig{Array: a}, Reps: 1, CancelAfterReps: -1,
			})
			return err
		}},
	}
	for _, tc := range cases {
		err := tc.run()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q does not name the field (%q)", tc.name, err, tc.frag)
		}
	}
}
