// Cluster engine: the balls-into-bins game as a churn-tolerant serving
// system. Requests are balls, heterogeneous servers are bins, and time
// advances in ticks; each tick dispatches an arrival batch through the
// multinomial block router (route.go) onto live-peer weights derived
// from a consistent-hashing ring (internal/chash), places it with the
// PlaceBatch kernels on queue-relative load, and services up to
// `capacity` requests per live server. Unlike every other engine,
// membership is dynamic: peers crash and recover at tick boundaries,
// and the request path carries the production behaviours that
// distinguishes a serving system from a static allocation — timeouts
// with bounded exponential-backoff retries, overload shedding, and
// degraded-mode accounting.
//
// # Tick structure
//
// One tick is: churn → re-shard/redistribute → admission → arrival
// dispatch → retry dispatch → service → timeout scan → observation →
// commit.
//
//   - Churn (cluster.ChurnPlan): scheduled events apply first, then
//     every peer consumes one Bernoulli draw from the tick's churn
//     substream — in peer order, applied or not, so the draw sequence
//     is frozen whatever the membership state. The last live peer is
//     never taken down.
//   - Re-shard: a crashed peer's points leave the ring incrementally
//     (chash.Ring.RemovePeer — no rebuild, no RNG; recovery re-mounts
//     the identical points), arc weights are recomputed, the shard
//     router is rebuilt over the new shard weight sums, and only the
//     shards whose weight slice changed rebuild their placers. The
//     dead peer's resident queue is redistributed: each cohort is
//     split over the live shard weights by largest remainder (the
//     PR 8 rebalance rule — deterministic, no RNG) and re-placed by
//     the destination shards' placers, KEEPING its original dispatch
//     tick — redistribution does not reset the timeout clock.
//   - Admission: when ShedThreshold > 0, arrivals beyond
//     floor(threshold·live capacity) − queued are shed — counted,
//     never silently dropped. Retries bypass admission: a request the
//     system already accepted is not shed on its second attempt.
//   - Dispatch: the admitted batch routes block-wise (exact
//     multinomial count vectors) to shards and places on
//     queue-relative load. Destinations are recovered from per-shard
//     before/after queue deltas and recorded as cohorts — every ball
//     of one batch shares (dispatch tick, origin tick, attempt), so
//     per-request metadata costs O(changed bins), not O(balls).
//   - Service: each live server completes up to `capacity` requests
//     FIFO; response time (now − origin + 1, in ticks) folds into an
//     exact integer obs.Latency histogram per shard.
//   - Timeout: requests queued for TimeoutTicks or longer are pulled
//     and either re-dispatched after a deterministic exponential
//     backoff onto a fresh d-choice placement (an alternate candidate
//     — the queue state has moved on) or, after MaxRetries attempts,
//     counted failed.
//
// # Determinism: the substream layout is part of the model
//
// Global stream 0 builds the ring. One tick consumes K = Shards + 2
// consecutive streams; tick t's base is 1 + t·K:
//
//	base+0      churn draws (one Float64 per peer, peer order)
//	base+1      arrival routing (routing blocks as substreams)
//	base+2+s    shard s placement (redistribution, then arrivals,
//	            then retries — in that frozen phase order)
//
// Every stream is owned by one deterministic actor and every
// cross-shard fold is exact-integer or in shard order, so the result —
// counters, availability trace, latency histogram, trajectory — is a
// pure function of the spec and bit-identical across worker
// topologies, even with mid-flight crashes, recoveries, retries and
// shedding (pinned by the bit-identity matrix in cluster_test.go).
//
// # Cancellation and faults
//
// Cancellation is tick-granular: a cancelled run returns a
// *CancelledError with CompletedTicks = k plus a partial whose
// counters, availability trace, latency histogram and trajectory are
// bit-identical to a run configured with Ticks = k. Every pool task
// runs behind panic containment with {engine, task, tick, peer/shard}
// provenance. Fault sites: OpCrash (each applied churn event, peer in
// Site.Shard), OpReshard (ring/router rebuild with Shard = −1, each
// shard's redistribution task), OpShed (the admission step), OpRetry
// (each shard's retry-dispatch task), plus the inherited OpRoute and
// OpPlace sites of the routing and placement kernels.
package sim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/bins"
	"repro/internal/chash"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/sampling"
	"repro/internal/xrand"
)

// ClusterConfig describes one cluster run. The engine is unexported
// (runCluster): the only public path is Dispatch with a RunSpec whose
// Cluster field is set, so every caller shares the eligibility checks
// and result shape.
type ClusterConfig struct {
	// Array supplies the server capacities (required); ball counts are
	// queue lengths. Cloned and reset unless AdoptArray is set.
	Array *bins.Array
	// Placer builds the per-shard dispatch policy (nil = Algorithm 1,
	// d = 2) on queue-relative load.
	Placer protocol.Factory
	// Ticks is the horizon (>= 1).
	Ticks int
	// Arrivals is the per-tick request count (>= 0).
	Arrivals int64
	// VnodesPerUnit gives every peer capacity·VnodesPerUnit ring
	// points (0 = 2), so arc shares are capacity-proportional in
	// expectation — the ring-level version of the paper's non-uniform
	// selection probabilities.
	VnodesPerUnit int
	// Churn is the crash/recover plan (zero value = no churn).
	Churn cluster.ChurnPlan
	// Retry is the timeout/retry policy (zero value = no timeouts).
	Retry cluster.RetryPolicy
	// ShedThreshold arms admission control when > 0: arrivals that
	// would push the total queue beyond threshold·(live capacity) are
	// shed. 0 admits everything.
	ShedThreshold float64
	// LatencyMax is the latency histogram's top bucket in ticks
	// (0 = 32); completions slower than that land in the overflow
	// bucket.
	LatencyMax int
	// Seed is the base RNG seed; see the package comment for the
	// frozen per-tick substream layout.
	Seed uint64
	// Shards is the shard count (0 = DefaultShards, clamped to n).
	// Part of the model, like Seed.
	Shards int
	// Workers caps parallelism (0 = GOMAXPROCS). Never affects the
	// result, only the wall clock.
	Workers int
	// Context, when non-nil, arms cooperative cancellation: a fired
	// context stops the run at the next task or phase boundary and
	// returns the completed-tick prefix.
	Context context.Context
	// AdoptArray lets the engine mutate Array in place (reset first)
	// instead of cloning it.
	AdoptArray bool
	// CancelAfterTicks, when positive, deterministically stops the run
	// after exactly that many completed ticks, as if the context had
	// fired there (Cause == nil).
	CancelAfterTicks int

	// ObsOptions is the shared observation block. Checkpoints are TICK
	// indices — cut k observes queue occupancy and the maximum
	// queue-relative load at the end of tick Checkpoints[k] (1-based) —
	// HeightLevels reports the final queue-depth distribution through
	// the LoadHistogram kernel, and the per-ball height histogram
	// (HeightBins) is not collected.
	ObsOptions
}

// ClusterResult aggregates one cluster run. All counters cover the
// COMPLETED-tick prefix (== the whole run unless cancelled).
type ClusterResult struct {
	// N is the number of peers; Shards the realised shard count; Ticks
	// the number of completed ticks.
	N      int
	Shards int
	Ticks  int
	// Request accounting. Conservation:
	// Admitted + Retried = Completed + TimedOut + FinalQueued and
	// Admitted = Completed + Failed + PendingRetry + FinalQueued.
	Arrived       int64 // offered requests
	Shed          int64 // rejected by admission control
	Admitted      int64 // accepted into the system
	Dispatched    int64 // balls placed: Admitted + Retried + Redistributed
	Completed     int64 // serviced
	TimedOut      int64 // pulled from a queue after TimeoutTicks
	Retried       int64 // re-dispatched after a timeout
	Failed        int64 // timed out with retries exhausted
	Redistributed int64 // moved off crashed peers
	FinalQueued   int64 // resident at the horizon
	PendingRetry  int64 // timed out, waiting on backoff at the horizon
	// Churn accounting.
	Crashes    int
	Recoveries int
	// LivePerTick[t] is the live-peer count during tick t (after that
	// tick's churn); Availability its mean over peers and ticks.
	LivePerTick  []int
	Availability float64
	// Latency is the exact integer response-time histogram of every
	// completed request (goodput = Latency.Count() == Completed).
	Latency *obs.Latency
	// Checkpoints holds the tick-indexed trajectory rows (Balls is the
	// tick index, RealBalls the queued-request count at that tick's
	// end, MaxLoad the maximum queue-relative load).
	Checkpoints []obs.CheckpointRow
	// Final-state fields, zero/nil on a cancelled run: the maximum and
	// average queue-relative load at the horizon, the queue-depth
	// height counts (when HeightLevels was requested), and the final
	// queue state itself.
	MaxQueueLoad float64
	AvgQueueLoad float64
	HeightCounts []obs.HeightRow
	Array        *bins.Array
}

func (c *ClusterConfig) validate() (shards int, err error) {
	if c.Array == nil {
		return 0, fmt.Errorf("sim: RunCluster needs an Array")
	}
	if c.Ticks < 1 {
		return 0, fmt.Errorf("sim: Ticks = %d, need >= 1", c.Ticks)
	}
	if c.Arrivals < 0 {
		return 0, fmt.Errorf("sim: Arrivals = %d, need >= 0", c.Arrivals)
	}
	if c.VnodesPerUnit < 0 {
		return 0, fmt.Errorf("sim: VnodesPerUnit = %d, need >= 0", c.VnodesPerUnit)
	}
	if c.ShedThreshold < 0 || c.ShedThreshold != c.ShedThreshold {
		return 0, fmt.Errorf("sim: ShedThreshold = %v, need >= 0", c.ShedThreshold)
	}
	if c.LatencyMax < 0 {
		return 0, fmt.Errorf("sim: LatencyMax = %d, need >= 0", c.LatencyMax)
	}
	if c.Workers < 0 {
		return 0, fmt.Errorf("sim: Workers = %d, need >= 0", c.Workers)
	}
	if c.CancelAfterTicks < 0 {
		return 0, fmt.Errorf("sim: CancelAfterTicks = %d, need >= 0", c.CancelAfterTicks)
	}
	n := c.Array.N()
	if err := c.Churn.Validate(n); err != nil {
		return 0, fmt.Errorf("sim: %w", err)
	}
	if err := c.Retry.Validate(); err != nil {
		return 0, fmt.Errorf("sim: %w", err)
	}
	if err := c.ObsOptions.validate(); err != nil {
		return 0, err
	}
	if err := c.ObsOptions.rejectHeightBins("the cluster engine"); err != nil {
		return 0, err
	}
	shards = c.Shards
	if shards == 0 {
		shards = DefaultShards
		if shards > n {
			shards = n
		}
	} else if shards < 1 || shards > n {
		return 0, fmt.Errorf("sim: Shards = %d outside [1,%d]", c.Shards, n)
	}
	return shards, nil
}

// Cluster task kinds; the kind also names the PanicError task.
const (
	clusterTaskSetup = iota
	clusterTaskRoute
	clusterTaskPlace
	clusterTaskRedist
	clusterTaskRetry
	clusterTaskServe
	clusterTaskExpire
	clusterTaskObserve
)

var clusterTaskNames = [...]string{"setup", "route", "place", "redistribute", "retry", "serve", "expire", "observe"}

type clusterTask struct {
	kind int32
	idx  int32
}

// cohort is a batch of requests sharing (dispatch tick, origin tick,
// attempt): one FIFO queue entry per peer per batch, so per-request
// metadata costs O(batches), not O(requests). It doubles as the
// work-list item of the redistribution/retry phases and the expired
// record of the timeout scan (disp unused there).
type cohort struct {
	disp  int32 // dispatch tick (timeout clock; preserved across redistribution)
	orig  int32 // original arrival tick (latency clock)
	att   int16 // retry attempt (0 = first dispatch)
	count int64
}

// retryEntry is one timed-out batch waiting for its backoff to elapse.
type retryEntry struct {
	orig  int32
	att   int16 // the attempt this retry will be (1-based)
	count int64
}

// clusterState is the engine's whole working set, allocated once.
type clusterState struct {
	cfg    *ClusterConfig
	cc     *canceller
	arr    *bins.Array
	n      int
	shards int
	seed   uint64
	kk     uint64 // RNG streams consumed per tick: shards + 2

	ring      *chash.Ring
	weights   []float64 // live per-peer arc weights (0 = dead)
	prevW     []float64 // last weights the placers were built over
	caps      []int64
	totalCap  int64
	liveCap   int64
	live      []bool
	nLive     int
	peerShard []int32

	factory protocol.Factory
	bounds  []int
	shardW  []float64
	sumW    float64
	router  *sampling.Multinomial
	views   []*bins.Array
	placers []protocol.Placer
	dirty   []bool

	queues         [][]cohort           // per-peer FIFO of resident cohorts
	retryQ         map[int][]retryEntry // due tick -> timed-out batches
	work           [][]cohort           // per-shard redistribution/retry work lists
	aport          []int64              // apportionment scratch
	ap             apportion
	before         [][]int64 // per-shard queue-snapshot scratch (delta scans)
	svcLat         []*obs.Latency
	svcDone        []int64
	expired        [][]cohort
	crashedScratch []int

	rands  []xrand.Rand
	crand  xrand.Rand
	groups []routeGroup
	counts []int64

	cuts     []int64
	nCuts    int
	nextCut  int
	cp       *obs.Checkpoints
	trackRow []float64
	trackMat [][]float64
	maxOut   []float64

	taskCh chan clusterTask
	wg     sync.WaitGroup
	errs   []error

	// Tick-scoped fields, written by the orchestrator strictly between
	// phase barriers.
	tick         int
	tbase        uint64
	rrbase       uint64
	curM         int64
	rgr          int
	nextEv       int
	liveQ        int64 // live queued-request total
	pendingRetry int64

	// Committed prefix: updated only when a tick completes, so a
	// cancelled run reports exactly the completed-tick state.
	ticksDone     int
	arrived       int64
	shed          int64
	admitted      int64
	dispatched    int64
	completed     int64
	timedOut      int64
	retried       int64
	failed        int64
	redistributed int64
	crashes       int
	recoveries    int
	livePerTick   []int
	lat           *obs.Latency
	cQueued       int64
	cPending      int64
}

// runCluster executes one cluster run. Unexported by design: Dispatch
// (RunSpec.Cluster) is the only public entry point.
func runCluster(cfg ClusterConfig) (*ClusterResult, error) {
	shards, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	cc := newCanceller(cfg.Context)
	defer cc.stop()
	arr := cfg.Array
	if !cfg.AdoptArray {
		arr = cfg.Array.Clone()
	}
	arr.Reset()
	n := arr.N()

	st := &clusterState{
		cfg:    &cfg,
		cc:     cc,
		arr:    arr,
		n:      n,
		shards: shards,
		seed:   cfg.Seed,
		kk:     uint64(shards + 2),
	}
	st.caps = arr.Capacities()
	st.totalCap = arr.TotalCapacity()
	st.liveCap = st.totalCap

	// Global stream 0: ring construction. The vnode positions are the
	// only randomness membership ever consumes — churn splices cached
	// points, so a crash/recover cycle is RNG-free.
	vpu := cfg.VnodesPerUnit
	if vpu == 0 {
		vpu = 2
	}
	st.ring, err = chash.NewWeightedRing(st.caps, vpu, xrand.NewStream(cfg.Seed, 0))
	if err != nil {
		return nil, fmt.Errorf("sim: RunCluster ring: %w", err)
	}
	st.weights = st.ring.ArcLengths()
	st.prevW = make([]float64, n)
	copy(st.prevW, st.weights)
	st.live = make([]bool, n)
	for i := range st.live {
		st.live[i] = true
	}
	st.nLive = n

	st.factory = cfg.Placer
	if st.factory == nil {
		st.factory = protocol.GreedyFactory(2)
	}
	st.bounds, st.shardW, st.router, err = shardPlan(st.weights, n, shards)
	if err != nil {
		return nil, fmt.Errorf("sim: RunCluster router: %w", err)
	}
	for _, w := range st.shardW {
		st.sumW += w
	}
	st.peerShard = make([]int32, n)
	for s := 0; s < shards; s++ {
		for i := st.bounds[s]; i < st.bounds[s+1]; i++ {
			st.peerShard[i] = int32(s)
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rg := workers
	if nb := numRouteBlocks(cfg.Arrivals); rg > nb {
		rg = nb
	}
	if rg < 1 {
		rg = 1
	}
	st.groups = newRouteGroups(rg, shards, 0)

	lim := shards
	if lim < rg {
		lim = rg
	}
	pool := workers
	if pool > lim {
		pool = lim
	}
	st.errs = make([]error, lim)
	st.taskCh = make(chan clusterTask)

	st.counts = make([]int64, shards)
	st.aport = make([]int64, shards)
	st.ap = apportion{rem: make([]float64, shards), idx: make([]int, 0, shards)}
	st.dirty = make([]bool, shards)
	st.rands = make([]xrand.Rand, shards)
	st.views = make([]*bins.Array, shards)
	st.placers = make([]protocol.Placer, shards)
	st.work = make([][]cohort, shards)
	st.before = make([][]int64, shards)
	st.svcLat = make([]*obs.Latency, shards)
	st.svcDone = make([]int64, shards)
	st.expired = make([][]cohort, shards)
	st.queues = make([][]cohort, n)
	st.retryQ = make(map[int][]retryEntry)
	st.crashedScratch = make([]int, 0, n)
	st.livePerTick = make([]int, 0, cfg.Ticks)

	latMax := cfg.LatencyMax
	if latMax == 0 {
		latMax = 32
	}
	st.lat, err = obs.NewLatency(latMax)
	if err != nil {
		return nil, fmt.Errorf("sim: RunCluster: %w", err)
	}
	for s := 0; s < shards; s++ {
		st.views[s], err = arr.Shard(st.bounds[s], st.bounds[s+1])
		if err != nil {
			return nil, fmt.Errorf("sim: RunCluster shard %d: %w", s, err)
		}
		st.before[s] = make([]int64, st.views[s].N())
		st.svcLat[s], _ = obs.NewLatency(latMax)
		st.dirty[s] = true // initial build: every placer
	}

	cuts, _ := obs.NormalizeCuts(cfg.Checkpoints) // validated above
	st.cuts = cuts
	st.nCuts = obs.CountReached(cuts, int64(cfg.Ticks))
	if len(cuts) > 0 {
		st.cp = obs.NewCheckpoints(cuts)
	}
	st.trackRow = make([]float64, shards)
	st.trackMat = [][]float64{st.trackRow}
	st.maxOut = make([]float64, 1)

	for w := 0; w < pool; w++ {
		go st.serve()
	}
	res, err := st.orchestrate(cfg.Ticks)
	close(st.taskCh)
	return res, err
}

func (st *clusterState) serve() {
	for t := range st.taskCh {
		st.do(t)
	}
}

// do executes one task. Task state is indexed by (kind, idx) and every
// task touches only its own shard's (or routing group's) peers,
// queues and scratch, so any scheduling onto workers is bit-identical.
func (st *clusterState) do(t clusterTask) {
	defer st.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			st.errs[t.idx] = newPanicError(engRunCluster, clusterTaskNames[t.kind], st.tick, int(t.idx), r)
		}
	}()
	s := int(t.idx)
	switch t.kind {
	case clusterTaskSetup:
		st.setupShard(s)
	case clusterTaskRoute:
		st.groups[s].reset()
		st.groups[s].route(st.cc, engRunCluster, st.tick, st.rrbase, st.router, st.curM, s, st.rgr, nil, nil)
	case clusterTaskPlace:
		if st.counts[s] > 0 {
			tick := int32(st.tick)
			st.placeCohort(s, tick, tick, 0, st.counts[s])
		}
	case clusterTaskRedist:
		if len(st.work[s]) > 0 {
			if fault.Enabled {
				fault.Hit(fault.Site{Engine: engRunCluster, Op: fault.OpReshard, Rep: st.tick, Shard: s, Block: -1})
			}
			for _, it := range st.work[s] {
				st.placeCohort(s, it.disp, it.orig, it.att, it.count)
			}
			st.work[s] = st.work[s][:0]
		}
	case clusterTaskRetry:
		if len(st.work[s]) > 0 {
			if fault.Enabled {
				fault.Hit(fault.Site{Engine: engRunCluster, Op: fault.OpRetry, Rep: st.tick, Shard: s, Block: -1})
			}
			for _, it := range st.work[s] {
				st.placeCohort(s, it.disp, it.orig, it.att, it.count)
			}
			st.work[s] = st.work[s][:0]
		}
	case clusterTaskServe:
		st.serveShard(s)
	case clusterTaskExpire:
		st.expireShard(s)
	case clusterTaskObserve:
		st.trackRow[s] = st.views[s].MaxLoad()
	}
}

// setupShard (re)builds shard s's placer over the current live-peer
// weight slice. Only shards whose weights changed since the last build
// are dirty; a shard whose live weight vanished entirely (every peer
// down) gets a nil placer — the router can never route a ball there.
func (st *clusterState) setupShard(s int) {
	if !st.dirty[s] {
		return
	}
	st.dirty[s] = false
	w := st.weights[st.bounds[s]:st.bounds[s+1]]
	var sum float64
	for _, v := range w {
		sum += v
	}
	if sum <= 0 {
		st.placers[s] = nil
		return
	}
	st.placers[s], st.errs[s] = st.factory(st.views[s], w)
}

// placeCohort places one batch on shard s and records the receiving
// peers: snapshot the shard's queue lengths, run the placement kernel,
// and append a cohort to every peer whose queue grew. All balls of the
// batch share (disp, orig, att), so the delta scan loses nothing.
func (st *clusterState) placeCohort(s int, disp, orig int32, att int16, count int64) {
	if count == 0 {
		return
	}
	view := st.views[s]
	lo := st.bounds[s]
	b := st.before[s]
	for i := range b {
		b[i] = view.Balls(i)
	}
	placeSegment(st.cc, engRunCluster, st.tick, s, st.placers[s], view, &st.rands[s], count)
	for i := range b {
		if d := view.Balls(i) - b[i]; d > 0 {
			st.queues[lo+i] = append(st.queues[lo+i], cohort{disp: disp, orig: orig, att: att, count: d})
		}
	}
}

// serveShard is the tick's service phase on shard s: every live peer
// completes up to `capacity` requests FIFO, folding response times
// into the shard's per-tick latency scratch.
func (st *clusterState) serveShard(s int) {
	lat := st.svcLat[s]
	lat.Reset()
	var done int64
	now := int64(st.tick)
	for p := st.bounds[s]; p < st.bounds[s+1]; p++ {
		if !st.live[p] {
			continue
		}
		q := st.queues[p]
		budget := st.caps[p]
		var served int64
		for budget > 0 && len(q) > 0 {
			c := &q[0]
			take := c.count
			if take > budget {
				take = budget
			}
			lat.ObserveN(now-int64(c.orig)+1, take)
			c.count -= take
			budget -= take
			served += take
			if c.count == 0 {
				q = q[1:]
			}
		}
		st.queues[p] = q
		if served > 0 {
			st.views[s].RemoveBalls(p-st.bounds[s], served)
			done += served
		}
	}
	st.svcDone[s] = done
}

// expireShard is the tick's timeout scan on shard s: cohorts
// dispatched at or before tick − TimeoutTicks leave their queues and
// are recorded for the orchestrator's retry/failure fold. The scan
// covers whole queues, not just heads — redistributed cohorts keep
// their original dispatch ticks, so a queue is not disp-sorted.
func (st *clusterState) expireShard(s int) {
	cutoff := int32(st.tick - st.cfg.Retry.TimeoutTicks)
	exp := st.expired[s][:0]
	for p := st.bounds[s]; p < st.bounds[s+1]; p++ {
		q := st.queues[p]
		kept := q[:0]
		var gone int64
		for _, c := range q {
			if c.disp <= cutoff {
				exp = append(exp, c)
				gone += c.count
			} else {
				kept = append(kept, c)
			}
		}
		st.queues[p] = kept
		if gone > 0 {
			st.views[s].RemoveBalls(p-st.bounds[s], gone)
		}
	}
	st.expired[s] = exp
}

func (st *clusterState) runPhase(kind int32, count int, label string) error {
	for i := 0; i < count; i++ {
		st.wg.Add(1)
		st.taskCh <- clusterTask{kind: kind, idx: int32(i)}
	}
	st.wg.Wait()
	for i := 0; i < count; i++ {
		if err := st.errs[i]; err != nil {
			clear(st.errs[:count])
			return fmt.Errorf("sim: RunCluster %s %d: %w", label, i, err)
		}
	}
	return nil
}

// crash takes peer p off the ring. Returns false when the event does
// not apply (already down, or p is the last live peer — the engine
// degrades, it never dies).
func (st *clusterState) crash(t, p int) bool {
	if !st.live[p] || st.nLive <= 1 {
		return false
	}
	if fault.Enabled {
		fault.Hit(fault.Site{Engine: engRunCluster, Op: fault.OpCrash, Rep: t, Shard: p, Block: -1})
	}
	if err := st.ring.RemovePeer(p); err != nil {
		panic(err) // state mirrors ring liveness; contained by churnStep
	}
	st.live[p] = false
	st.nLive--
	st.liveCap -= st.caps[p]
	return true
}

// revive re-mounts peer p's remembered ring points. Returns false when
// p is already live.
func (st *clusterState) revive(t, p int) bool {
	if st.live[p] {
		return false
	}
	if fault.Enabled {
		fault.Hit(fault.Site{Engine: engRunCluster, Op: fault.OpCrash, Rep: t, Shard: p, Block: -1})
	}
	if err := st.ring.AddPeer(p); err != nil {
		panic(err)
	}
	st.live[p] = true
	st.nLive++
	st.liveCap += st.caps[p]
	return true
}

// churnStep applies tick t's membership changes: scheduled events
// first, then one Bernoulli draw per peer (in peer order, consumed
// whether or not it applies) from the tick's churn substream. It runs
// on the orchestrator behind its own recover.
func (st *clusterState) churnStep(t int) (crashed []int, recovered int, err error) {
	defer func() {
		if r := recover(); r != nil {
			crashed, recovered = nil, 0
			err = fmt.Errorf("sim: RunCluster churn: %w", newPanicError(engRunCluster, "churn", t, -1, r))
		}
	}()
	crashed = st.crashedScratch[:0]
	sched := st.cfg.Churn.Schedule
	for st.nextEv < len(sched) && sched[st.nextEv].Tick <= t {
		e := sched[st.nextEv]
		st.nextEv++
		if e.Tick < t {
			continue
		}
		if e.Down {
			if st.crash(t, e.Peer) {
				crashed = append(crashed, e.Peer)
			}
		} else if st.revive(t, e.Peer) {
			recovered++
		}
	}
	if st.cfg.Churn.Stochastic() {
		st.crand.Seed(xrand.Mix64(st.seed, st.tbase))
		for p := 0; p < st.n; p++ {
			u := st.crand.Float64()
			if st.live[p] {
				if u < st.cfg.Churn.CrashProb && st.crash(t, p) {
					crashed = append(crashed, p)
				}
			} else if u < st.cfg.Churn.RecoverProb && st.revive(t, p) {
				recovered++
			}
		}
	}
	st.crashedScratch = crashed[:0]
	return crashed, recovered, nil
}

// reshardPlan recomputes routing after churn: fresh arc weights from
// the spliced ring, per-shard weight sums, a rebuilt multinomial
// router, and dirty marks on exactly the shards whose weight slice
// changed. Orchestrator-side, behind its own recover.
func (st *clusterState) reshardPlan(t int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: RunCluster reshard: %w", newPanicError(engRunCluster, "reshard", t, -1, r))
		}
	}()
	if fault.Enabled {
		fault.Hit(fault.Site{Engine: engRunCluster, Op: fault.OpReshard, Rep: t, Shard: -1, Block: -1})
	}
	st.weights = st.ring.ArcLengthsInto(st.weights)
	for i := 0; i < st.n; i++ {
		if st.weights[i] != st.prevW[i] {
			st.dirty[st.peerShard[i]] = true
			st.prevW[i] = st.weights[i]
		}
	}
	st.sumW = 0
	for s := 0; s < st.shards; s++ {
		var w float64
		for i := st.bounds[s]; i < st.bounds[s+1]; i++ {
			w += st.weights[i]
		}
		st.shardW[s] = w
		st.sumW += w
	}
	router, rerr := sampling.NewMultinomial(st.shardW)
	if rerr != nil {
		return rerr // unreachable while a peer lives; surfaced loudly if not
	}
	st.router = router
	return nil
}

// admission is the shedding step: of the tick's arrivals, admit what
// fits under threshold × live capacity given the current occupancy and
// shed the rest. Orchestrator-side, behind its own recover so an
// injected OpShed fault surfaces as a provenance error.
func (st *clusterState) admission(t int, arrived int64, th float64) (admit, shed int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			admit, shed = 0, 0
			err = fmt.Errorf("sim: RunCluster admission: %w", newPanicError(engRunCluster, "shed", t, -1, r))
		}
	}()
	if fault.Enabled {
		fault.Hit(fault.Site{Engine: engRunCluster, Op: fault.OpShed, Rep: t, Shard: -1, Block: -1})
	}
	admit = arrived
	room := int64(math.Floor(th*float64(st.liveCap))) - st.liveQ
	if room < 0 {
		room = 0
	}
	if admit > room {
		admit = room
		shed = arrived - admit
	}
	return admit, shed, nil
}

// apportionLive splits m balls over the live shard weights by largest
// remainder — floor quotas, then one extra per candidate in
// descending-residue order (ties by shard index) — the PR 8 rebalance
// rule: deterministic, integer-exact, no RNG.
func (st *clusterState) apportionLive(m int64, out []int64) {
	clear(out)
	if m == 0 || st.sumW <= 0 {
		return
	}
	st.ap.idx = st.ap.idx[:0]
	var assigned int64
	for s := 0; s < st.shards; s++ {
		if st.shardW[s] <= 0 {
			continue
		}
		ideal := float64(m) * st.shardW[s] / st.sumW
		q := math.Floor(ideal)
		out[s] = int64(q)
		st.ap.rem[s] = ideal - q
		assigned += int64(q)
		st.ap.idx = append(st.ap.idx, s)
	}
	if len(st.ap.idx) == 0 {
		return
	}
	sort.Sort(&st.ap)
	k := len(st.ap.idx)
	for r := m - assigned; r > 0; {
		for j := 0; j < k && r > 0; j++ {
			out[st.ap.idx[j]]++
			r--
		}
	}
	for r := assigned - m; r > 0; {
		for j := k - 1; j >= 0 && r > 0; j-- {
			if out[st.ap.idx[j]] > 0 {
				out[st.ap.idx[j]]--
				r--
			}
		}
	}
}

// redistribute drains the queues of this tick's crashed peers: each
// resident cohort leaves its dead queue, is split over the live shard
// weights, and re-placed by the destination shards — keeping its
// original dispatch AND origin ticks, so neither the timeout nor the
// latency clock resets. Returns the number of requests moved.
func (st *clusterState) redistribute(crashed []int) (int64, error) {
	var moved int64
	for _, p := range crashed {
		q := st.queues[p]
		st.queues[p] = nil
		s := int(st.peerShard[p])
		for _, c := range q {
			st.views[s].RemoveBalls(p-st.bounds[s], c.count)
			st.apportionLive(c.count, st.aport)
			for s2, cnt := range st.aport {
				if cnt > 0 {
					st.work[s2] = append(st.work[s2], cohort{disp: c.disp, orig: c.orig, att: c.att, count: cnt})
				}
			}
			moved += c.count
		}
	}
	if moved == 0 {
		return 0, nil
	}
	if err := st.runPhase(clusterTaskRedist, st.shards, "redistribution shard"); err != nil {
		return 0, err
	}
	return moved, nil
}

// orchestrate runs the setup phase and then the ticks, committing the
// completed-tick prefix as it goes.
func (st *clusterState) orchestrate(ticks int) (*ClusterResult, error) {
	if err := st.runPhase(clusterTaskSetup, st.shards, "setup shard"); err != nil {
		return nil, err
	}
	if st.cc.cancelled() {
		return st.partial()
	}
	for t := 0; t < ticks; t++ {
		ok, err := st.runTick(t)
		if err != nil {
			return nil, err
		}
		if !ok {
			return st.partial()
		}
		if ca := st.cfg.CancelAfterTicks; ca > 0 && st.ticksDone == ca && st.ticksDone < ticks {
			return st.partialSelfCancel()
		}
	}
	return st.final()
}

// runTick executes tick t. ok == false means the tick was abandoned at
// a cancellation point — nothing of it is committed.
func (st *clusterState) runTick(t int) (ok bool, err error) {
	if st.cc.cancelled() {
		return false, nil
	}
	st.tick = t
	st.tbase = 1 + uint64(t)*st.kk
	// Placement streams are re-seeded for EVERY shard at the start of
	// every tick, so a shard's draws depend only on (seed, tick,
	// shard), never on the traffic of earlier ticks.
	for s := 0; s < st.shards; s++ {
		st.rands[s].Seed(xrand.Mix64(st.seed, st.tbase+2+uint64(s)))
	}

	// Phase 1 — churn + incremental re-shard + redistribution.
	crashed, recovered, err := st.churnStep(t)
	if err != nil {
		return false, err
	}
	tickLive := st.nLive
	var movedT int64
	if len(crashed) > 0 || recovered > 0 {
		if err := st.reshardPlan(t); err != nil {
			return false, err
		}
		if st.cc.cancelled() {
			return false, nil
		}
		if err := st.runPhase(clusterTaskSetup, st.shards, "setup shard"); err != nil {
			return false, err
		}
		if st.cc.cancelled() {
			return false, nil
		}
		movedT, err = st.redistribute(crashed)
		if err != nil {
			return false, err
		}
		if st.cc.cancelled() {
			return false, nil
		}
	}

	// Phase 2 — admission: shed what would push the cluster past
	// ShedThreshold × live capacity. Counted, never silently dropped.
	arrivedT := st.cfg.Arrivals
	admitT := arrivedT
	var shedT int64
	if th := st.cfg.ShedThreshold; th > 0 {
		admitT, shedT, err = st.admission(t, arrivedT, th)
		if err != nil {
			return false, err
		}
	}

	// Phase 3 — arrival dispatch: block-wise multinomial routing over
	// the live shard weights, then per-shard placement.
	if admitT > 0 {
		st.curM = admitT
		st.rrbase = xrand.Mix64(st.seed, st.tbase+1)
		rgr := len(st.groups)
		if nb := numRouteBlocks(admitT); rgr > nb {
			rgr = nb
		}
		st.rgr = rgr
		if err := st.runPhase(clusterTaskRoute, rgr, "routing group"); err != nil {
			return false, err
		}
		if st.cc.cancelled() {
			return false, nil
		}
		mergeRouteGroups(st.groups[:rgr], st.counts, nil)
		if err := st.runPhase(clusterTaskPlace, st.shards, "shard"); err != nil {
			return false, err
		}
		if st.cc.cancelled() {
			return false, nil
		}
		st.liveQ += admitT
	}

	// Phase 4 — retry dispatch: batches whose backoff elapses this
	// tick re-enter, apportioned over the live shard weights and
	// re-placed on the CURRENT queue state — a fresh d-choice
	// placement, hence an alternate candidate. Retries bypass
	// admission.
	var retriedT int64
	if due := st.retryQ[t]; len(due) > 0 {
		delete(st.retryQ, t)
		for _, e := range due {
			st.apportionLive(e.count, st.aport)
			for s, cnt := range st.aport {
				if cnt > 0 {
					st.work[s] = append(st.work[s], cohort{disp: int32(t), orig: e.orig, att: e.att, count: cnt})
				}
			}
			retriedT += e.count
		}
		st.pendingRetry -= retriedT
		if err := st.runPhase(clusterTaskRetry, st.shards, "retry shard"); err != nil {
			return false, err
		}
		if st.cc.cancelled() {
			return false, nil
		}
		st.liveQ += retriedT
	}

	// Phase 5 — service.
	if err := st.runPhase(clusterTaskServe, st.shards, "service shard"); err != nil {
		return false, err
	}
	if st.cc.cancelled() {
		return false, nil
	}
	var doneT int64
	for s := 0; s < st.shards; s++ {
		doneT += st.svcDone[s]
	}
	st.liveQ -= doneT

	// Phase 6 — timeout scan: requests queued TimeoutTicks or longer
	// leave their queues; each either schedules a backed-off retry or
	// — retries exhausted — counts failed.
	var timedOutT, failedT int64
	if st.cfg.Retry.TimeoutTicks > 0 {
		if err := st.runPhase(clusterTaskExpire, st.shards, "timeout shard"); err != nil {
			return false, err
		}
		if st.cc.cancelled() {
			return false, nil
		}
		for s := 0; s < st.shards; s++ {
			for _, e := range st.expired[s] {
				timedOutT += e.count
				if int(e.att) < st.cfg.Retry.MaxRetries {
					att := e.att + 1
					dueTick := t + st.cfg.Retry.Backoff(int(att))
					st.retryQ[dueTick] = append(st.retryQ[dueTick], retryEntry{orig: e.orig, att: att, count: e.count})
					st.pendingRetry += e.count
				} else {
					failedT += e.count
				}
			}
		}
		st.liveQ -= timedOutT
	}

	// Phase 7 — observation: a cut at tick t+1 snapshots queue
	// occupancy and max queue-relative load before the commit.
	if st.nextCut < st.nCuts && st.cuts[st.nextCut] == int64(t)+1 {
		if err := st.runPhase(clusterTaskObserve, st.shards, "observe shard"); err != nil {
			return false, err
		}
		if st.cc.cancelled() {
			return false, nil
		}
		combineShardMaxima(st.trackMat, st.maxOut)
		st.cp.Observe(st.nextCut, st.liveQ, st.totalCap, st.maxOut[0])
		st.nextCut++
	}

	// Commit: the tick is now part of the result prefix. Latency folds
	// in shard order — integer adds, exactly associative.
	st.ticksDone = t + 1
	st.arrived += arrivedT
	st.shed += shedT
	st.admitted += admitT
	st.retried += retriedT
	st.redistributed += movedT
	st.dispatched += admitT + retriedT + movedT
	st.completed += doneT
	st.timedOut += timedOutT
	st.failed += failedT
	st.crashes += len(crashed)
	st.recoveries += recovered
	st.livePerTick = append(st.livePerTick, tickLive)
	for s := 0; s < st.shards; s++ {
		if err := st.lat.Merge(st.svcLat[s]); err != nil {
			return false, err
		}
	}
	st.cQueued = st.liveQ
	st.cPending = st.pendingRetry
	return true, nil
}

// partialResult builds the committed-prefix result every exit shares.
func (st *clusterState) partialResult() *ClusterResult {
	res := &ClusterResult{
		N:             st.n,
		Shards:        st.shards,
		Ticks:         st.ticksDone,
		Arrived:       st.arrived,
		Shed:          st.shed,
		Admitted:      st.admitted,
		Dispatched:    st.dispatched,
		Completed:     st.completed,
		TimedOut:      st.timedOut,
		Retried:       st.retried,
		Failed:        st.failed,
		Redistributed: st.redistributed,
		FinalQueued:   st.cQueued,
		PendingRetry:  st.cPending,
		Crashes:       st.crashes,
		Recoveries:    st.recoveries,
		LivePerTick:   st.livePerTick,
		Latency:       st.lat,
	}
	if st.ticksDone > 0 {
		var liveSum int64
		for _, l := range st.livePerTick {
			liveSum += int64(l)
		}
		res.Availability = float64(liveSum) / float64(int64(st.n)*int64(st.ticksDone))
	}
	if st.cp != nil {
		res.Checkpoints = st.cp.Rows()
	}
	return res
}

// partial is the context-cancelled exit: the committed-tick prefix
// plus a *CancelledError carrying the context's cause.
func (st *clusterState) partial() (*ClusterResult, error) {
	return st.partialResult(), &CancelledError{
		Engine:          engRunCluster,
		CompletedReps:   -1,
		CompletedCuts:   st.nextCut,
		CompletedRounds: -1,
		CompletedTicks:  st.ticksDone,
		Cause:           st.cc.err(),
	}
}

// partialSelfCancel is the CancelAfterTicks exit: same deterministic
// prefix, nil Cause.
func (st *clusterState) partialSelfCancel() (*ClusterResult, error) {
	return st.partialResult(), &CancelledError{
		Engine:          engRunCluster,
		CompletedReps:   -1,
		CompletedCuts:   st.nextCut,
		CompletedRounds: -1,
		CompletedTicks:  st.ticksDone,
	}
}

// final builds the completed-run result: the committed counters plus
// the final queue-state statistics.
func (st *clusterState) final() (*ClusterResult, error) {
	res := st.partialResult()
	st.arr.Recount()
	var max float64
	if st.cfg.HeightLevels > 0 {
		// Queue-depth distribution through the PR 9 histogram kernel:
		// one pass yields the exact max queue load and the
		// queues-at-load>=k counts together.
		h := st.arr.NewLoadHistogram()
		if err := st.arr.HistogramInto(h); err != nil {
			return nil, fmt.Errorf("sim: RunCluster histogram: %w", err)
		}
		max = h.MaxLoad()
		hl := obs.NewHeights(st.cfg.HeightLevels)
		if err := hl.SnapshotHist(obs.Final, h, st.cQueued); err != nil {
			return nil, fmt.Errorf("sim: RunCluster heights: %w", err)
		}
		res.HeightCounts = hl.Rows()
	} else {
		max = st.arr.MaxLoad()
	}
	res.MaxQueueLoad = max
	res.AvgQueueLoad = st.arr.AverageLoad()
	res.Array = st.arr
	return res, nil
}
