// Shared observation options: one struct, one validation, one set of
// docs for the observation requests every engine config carries.
//
// Before this file each engine config re-declared (and re-validated)
// its own Checkpoints / HeightLevels / HeightBins / HeightMax fields,
// and the docs drifted per copy. ObsOptions is embedded anonymously in
// Config, LargeConfig (and through it LargeMonteConfig) and
// StreamConfig, so field READS keep their flat spelling
// (cfg.Checkpoints); composite literals spell the extra level
// (ObsOptions: sim.ObsOptions{...}).
package sim

import (
	"fmt"

	"repro/internal/obs"
)

// ObsOptions is the observation-request block shared by every engine
// config. Engines differ in which options they support and in the cut
// semantics — the embedding config documents both:
//
//   - Config (classic): every option; Checkpoints are ball counts,
//     observed exactly.
//   - LargeConfig / LargeMonteConfig (sharded): Checkpoints are ball
//     counts realised as block-aligned per-shard cuts (<= the request;
//     see large.go); HeightLevels observes the final state; the
//     per-ball height histogram (HeightBins) is not collected.
//   - StreamConfig (streaming): Checkpoints are ROUND indices — cut k
//     observes the system state at the end of round Checkpoints[k]
//     (1-based) — HeightLevels observes the final state, and
//     HeightBins is not collected.
type ObsOptions struct {
	// Checkpoints lists the cut points at which running (max,
	// max − average) load observations are taken: ball counts in the
	// classic and sharded engines, round indices in the streaming
	// engine. Cuts must be positive and strictly increasing; cuts
	// beyond the run (balls > m, rounds > Rounds) are skipped, visible
	// through CheckpointRow.Reps.
	Checkpoints []int64
	// HeightLevels, when positive, requests the count of bins at final
	// load >= k for k = 1..HeightLevels (obs.Heights) — the
	// concentration-bound observable.
	HeightLevels int
	// HeightBins, when positive, requests a histogram of ball heights —
	// the paper's §2 notion: the load of the receiving bin immediately
	// after the allocation. The histogram spans [0, HeightMax) with
	// HeightBins bins (HeightMax defaults to 8). Classic engine only:
	// it needs the receiving bin of every single ball.
	HeightBins int
	// HeightMax is the height histogram's upper bound (default 8).
	HeightMax float64
}

// validate checks the option fields shared by every engine. Engines
// with narrower support (no per-ball histogram outside the classic
// engine) layer their own field-named rejections on top.
func (o *ObsOptions) validate() error {
	if o.HeightLevels < 0 {
		return fmt.Errorf("sim: HeightLevels = %d, need >= 0", o.HeightLevels)
	}
	if o.HeightBins < 0 {
		return fmt.Errorf("sim: HeightBins = %d, need >= 0", o.HeightBins)
	}
	if o.HeightMax < 0 {
		return fmt.Errorf("sim: HeightMax = %v, need >= 0 (0 defaults to 8)", o.HeightMax)
	}
	if o.HeightBins == 0 && o.HeightMax > 0 {
		return fmt.Errorf("sim: HeightMax = %v without HeightBins: the height histogram needs a positive HeightBins", o.HeightMax)
	}
	if _, err := obs.NormalizeCuts(o.Checkpoints); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

// rejectHeightBins is the shared field-named rejection for the engines
// that cannot collect the per-ball height histogram.
func (o *ObsOptions) rejectHeightBins(engine string) error {
	if o.HeightBins > 0 {
		return fmt.Errorf("sim: HeightBins = %d: %s does not collect the per-ball height histogram (classic engine only)", o.HeightBins, engine)
	}
	return nil
}
