// Streaming engine: the balls-into-bins game as a round-structured
// stream. Balls ARRIVE in rounds (a fixed per-round count or an
// explicit schedule), a deterministic deletion stream EXPIRES balls
// between arrivals, and an optional inter-round rebalance pass bounds
// how far the per-shard occupancies drift from the shard weights. One
// round is: arrivals → deletions → rebalance → observation.
//
// # Model
//
// Arrivals reuse the sharded engine's two-level protocol unchanged:
// the round's balls are routed to shards block-wise (exact
// Multinomial(blockBalls, shardWeights) per routing block, route.go)
// and each shard places its routed balls with its own pre-built
// protocol state on its own bins.Shard view.
//
// Deletions are exactly uniform WITHOUT replacement over the balls
// currently in the system, factorised like routing as
// P(shard)·P(bin | shard): a shard-level Fenwick count tree
// (sampling.CountTree) over the per-shard occupancies draws the
// deletion's shard, then each shard's own count tree over its bin
// loads draws the bin — both stages all-integer, so the deletion law
// is exact, not a relaxation.
//
// The rebalance pass (enabled by RebalanceTol > 0) moves balls from
// shards above (1+tol)·target to shards below target, where shard s's
// target is its weight share of the current occupancy. Surplus balls
// are removed uniformly without replacement from their shard and
// re-placed by the destination shard's protocol; destinations receive
// the surplus apportioned to their deficits by largest remainder — a
// deterministic integer rule with no RNG of its own.
//
// # Determinism: the substream layout is part of the model
//
// One round consumes K = 3·Shards + 2 consecutive RNG streams; round
// r's base stream is r·K. Within a round:
//
//	base+0            arrival routing (routing blocks as substreams)
//	base+1+s          shard s placement (arrivals, then move-ins)
//	base+1+S          deletion shard-routing (S = Shards)
//	base+2+S+s        shard s within-shard deletion draws
//	base+2+2S+s      shard s rebalance move-out draws
//
// Every stream is owned by exactly one deterministic actor, so the
// result is a pure function of (capacities, distribution, protocol,
// schedule, Deletions, RebalanceTol, Seed, Shards, Rounds) and — bit
// for bit — independent of Workers. The layout is FROZEN: with
// Rounds = 1, Deletions = 0 and RebalanceTol = 0, round 0 consumes
// exactly RunLarge's streams (routing on stream 0, shard s placement
// on stream 1+s), so a one-round quiet stream reproduces RunLarge bit
// for bit — pinned by tests, like the stream goldens.
//
// # Observation
//
// Checkpoints are ROUND indices: cut k observes the whole system at
// the end of round Checkpoints[k] (1-based) through the existing
// obs.Checkpoints collector — CheckpointRow.Balls is the round index,
// RealBalls the occupancy at that round's end. Cuts beyond Rounds are
// skipped (visible through Reps), like cuts beyond m elsewhere.
//
// # Cancellation and faults
//
// Cancellation is polled at task boundaries (routing blocks,
// placement strides, deletion strides) and at every phase barrier. A
// cancelled run returns a *CancelledError plus a deterministic
// partial: counters, shard occupancies and trajectory rows of the
// COMPLETED-ROUND prefix, bit-identical to a run configured with
// Rounds = CompletedRounds. Every pool task runs behind the usual
// panic containment; fault-injection sites cover routing blocks
// (OpRoute), placement strides (OpPlace), the deletion router and
// per-shard deletion tasks (OpDelete) and move-out tasks
// (OpRebalance), all with Rep = the round index.
package sim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/bins"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/sampling"
	"repro/internal/xrand"
)

// StreamConfig describes one streaming run. The engine itself is
// unexported (runStream): the only public path is Dispatch with
// Engine = EngineStream, so every caller goes through the same
// eligibility checks and result shape.
type StreamConfig struct {
	// Array supplies the capacities (required). It is cloned and reset
	// unless AdoptArray is set.
	Array *bins.Array
	// Dist chooses bin selection weights (nil = dist.Proportional{}).
	Dist dist.Distribution
	// Placer builds the per-shard protocol (nil = Algorithm 1, d = 2).
	Placer protocol.Factory
	// Rounds is the number of rounds (>= 1). When Schedule is set and
	// Rounds is 0, Rounds defaults to len(Schedule).
	Rounds int
	// Arrivals is the fixed per-round arrival count. When 0 the count
	// is ArrivalsFactor·C (rounded), and when that is also 0 it
	// defaults to exactly C — Config's ball-count rules, per round.
	Arrivals int64
	// ArrivalsFactor scales the total capacity into a per-round
	// arrival count.
	ArrivalsFactor float64
	// Schedule, when non-empty, gives every round's arrival count
	// explicitly (entries >= 0; length must equal Rounds when Rounds
	// is set). Mutually exclusive with Arrivals/ArrivalsFactor.
	Schedule []int64
	// Deletions is the number of balls deleted per round, clamped to
	// the current occupancy (>= 0).
	Deletions int64
	// RebalanceTol enables the inter-round rebalance pass when > 0:
	// after deletions, every shard holding more than
	// (1+RebalanceTol)·target balls sheds the excess to shards below
	// target. 0 disables the pass.
	RebalanceTol float64
	// Seed is the base RNG seed; see the package comment for the
	// frozen per-round substream layout.
	Seed uint64
	// Shards is the shard count (0 = DefaultShards, clamped to n).
	// Part of the model, like Seed.
	Shards int
	// Workers caps parallelism (0 = GOMAXPROCS). Never affects the
	// result, only the wall clock.
	Workers int
	// Context, when non-nil, arms cooperative cancellation: a fired
	// context stops the run at the next task or phase boundary and
	// returns the completed-round prefix (see the package comment).
	Context context.Context
	// AdoptArray lets the engine mutate Array in place (reset first)
	// instead of cloning it.
	AdoptArray bool
	// CancelAfterRounds, when positive, deterministically stops the
	// run after exactly that many completed rounds, as if the context
	// had fired there (Cause == nil) — a timing-free way to exercise
	// the cancellation path.
	CancelAfterRounds int

	// ObsOptions is the shared observation block (obsoptions.go). In
	// the streaming engine Checkpoints are ROUND indices — cut k
	// observes the system at the end of round Checkpoints[k] — and the
	// per-ball height histogram (HeightBins) is not collected.
	ObsOptions
}

// StreamResult aggregates one streaming run.
type StreamResult struct {
	// N is the number of bins; Shards the realised shard count.
	N      int
	Shards int
	// Rounds is the number of COMPLETED rounds (== cfg.Rounds unless
	// the run was cancelled).
	Rounds int
	// Arrived, Deleted and Moved count the balls that arrived, were
	// deleted and were rebalanced across the completed rounds.
	Arrived int64
	Deleted int64
	Moved   int64
	// Balls is the occupancy after the last completed round
	// (== Arrived − Deleted).
	Balls int64
	// MaxLoad, AvgLoad and Deviation are the final whole-array load
	// statistics (deviation = max − average). Zero on a cancelled run,
	// whose mid-round array state is not a model state.
	MaxLoad   float64
	AvgLoad   float64
	Deviation float64
	// ShardBalls[s] is shard s's occupancy after the last completed
	// round.
	ShardBalls []int64
	// Checkpoints holds the round-indexed trajectory rows (one row per
	// requested cut, in ascending round order; Balls is the round
	// index, RealBalls the occupancy, unreached cuts have Reps 0).
	Checkpoints []obs.CheckpointRow
	// HeightCounts holds the bins-at-load>=k counts of the final state
	// (only when HeightLevels was requested; nil on a cancelled run).
	HeightCounts []obs.HeightRow
	// Array is the final bin state (nil on a cancelled run).
	Array *bins.Array
}

func (c *StreamConfig) validate() (shards, rounds int, err error) {
	if c.Array == nil {
		return 0, 0, fmt.Errorf("sim: RunStream needs an Array")
	}
	if c.Arrivals < 0 {
		return 0, 0, fmt.Errorf("sim: Arrivals = %d, need >= 0", c.Arrivals)
	}
	if c.ArrivalsFactor < 0 {
		return 0, 0, fmt.Errorf("sim: ArrivalsFactor = %v, need >= 0", c.ArrivalsFactor)
	}
	rounds = c.Rounds
	if len(c.Schedule) > 0 {
		if c.Arrivals != 0 || c.ArrivalsFactor != 0 {
			return 0, 0, fmt.Errorf("sim: Schedule is mutually exclusive with Arrivals/ArrivalsFactor")
		}
		if rounds == 0 {
			rounds = len(c.Schedule)
		} else if rounds != len(c.Schedule) {
			return 0, 0, fmt.Errorf("sim: Rounds = %d but len(Schedule) = %d", c.Rounds, len(c.Schedule))
		}
		for r, a := range c.Schedule {
			if a < 0 {
				return 0, 0, fmt.Errorf("sim: Schedule[%d] = %d, need >= 0", r, a)
			}
		}
	}
	if rounds < 1 {
		return 0, 0, fmt.Errorf("sim: Rounds = %d, need >= 1", c.Rounds)
	}
	if c.Deletions < 0 {
		return 0, 0, fmt.Errorf("sim: Deletions = %d, need >= 0", c.Deletions)
	}
	if c.RebalanceTol < 0 || c.RebalanceTol != c.RebalanceTol {
		return 0, 0, fmt.Errorf("sim: RebalanceTol = %v, need >= 0", c.RebalanceTol)
	}
	if c.Workers < 0 {
		return 0, 0, fmt.Errorf("sim: Workers = %d, need >= 0", c.Workers)
	}
	if c.CancelAfterRounds < 0 {
		return 0, 0, fmt.Errorf("sim: CancelAfterRounds = %d, need >= 0", c.CancelAfterRounds)
	}
	if err := c.ObsOptions.validate(); err != nil {
		return 0, 0, err
	}
	if err := c.ObsOptions.rejectHeightBins("the streaming engine"); err != nil {
		return 0, 0, err
	}
	n := c.Array.N()
	shards = c.Shards
	if shards == 0 {
		shards = DefaultShards
		if shards > n {
			shards = n
		}
	} else if shards < 1 || shards > n {
		return 0, 0, fmt.Errorf("sim: Shards = %d outside [1,%d]", c.Shards, n)
	}
	return shards, rounds, nil
}

// Stream task kinds: one per phase of a round (plus the one-time
// placer-build setup phase). Every task is identified by (kind, shard
// or routing-group index); the kind also names the PanicError task.
const (
	streamTaskRoute = iota
	streamTaskSetup
	streamTaskPlace
	streamTaskDelete
	streamTaskMoveOut
	streamTaskMoveIn
	streamTaskObserve
)

// streamTaskNames[kind] is the provenance name of a task kind.
var streamTaskNames = [...]string{"route", "setup", "place", "delete", "move-out", "move-in", "observe"}

// streamTask is one unit of pool work: a task kind plus the shard (or
// routing-group) index it applies to. Plain values flow through the
// task channel, so dispatching a phase allocates nothing.
type streamTask struct {
	kind int32
	idx  int32
}

// apportion sorts deficit-shard indices by descending largest-remainder
// residue (ties by ascending shard index — a total order, so the result
// is unique whatever sort algorithm runs). It lives in streamState so
// the per-round sort allocates nothing.
type apportion struct {
	rem []float64 // residue per shard (indexed by shard)
	idx []int     // candidate shard indices being sorted
}

func (a *apportion) Len() int      { return len(a.idx) }
func (a *apportion) Swap(i, j int) { a.idx[i], a.idx[j] = a.idx[j], a.idx[i] }
func (a *apportion) Less(i, j int) bool {
	ri, rj := a.rem[a.idx[i]], a.rem[a.idx[j]]
	if ri != rj {
		return ri > rj
	}
	return a.idx[i] < a.idx[j]
}

// streamState is the engine's whole working set, allocated once before
// round 0: after a two-round warm-up a steady-state round performs no
// allocation at all (pinned by TestStreamSteadyStateAllocFree and the
// rounds/sec benchmark).
type streamState struct {
	cfg    *StreamConfig
	cc     *canceller
	arr    *bins.Array
	n      int
	shards int
	seed   uint64
	kk     uint64 // RNG streams consumed per round: 3·shards + 2

	weights []float64
	factory protocol.Factory
	bounds  []int
	shardW  []float64
	sumW    float64
	router  *sampling.Multinomial

	views   []*bins.Array
	placers []protocol.Placer
	trees   []*sampling.CountTree // per-shard bin count trees (deletion/move-out)
	shardT  *sampling.CountTree   // shard-level occupancy tree (deletion routing)

	rands   []xrand.Rand // per-shard placement streams, re-seeded every round
	scratch []xrand.Rand // per-shard scratch streams (deletion / move-out tasks)
	srand   xrand.Rand   // deletion shard-routing stream

	groups   []routeGroup
	counts   []int64 // per-round arrival routing counts
	sballs   []int64 // live per-shard occupancy
	total    int64   // live occupancy
	delQuota []int64
	moveOut  []int64
	moveIn   []int64
	targets  []float64 // rebalance scratch: per-shard occupancy targets
	defW     []float64 // rebalance scratch: per-shard deficit weights
	ap       apportion

	fixedM   int64   // per-round arrivals when no schedule is set
	sched    []int64 // explicit schedule (nil when fixedM applies)
	totalCap int64

	cuts     []int64 // normalized round-index cuts
	nCuts    int     // cuts reachable within Rounds
	nextCut  int
	cp       *obs.Checkpoints
	trackRow []float64   // per-shard max-load scratch for the current cut
	trackMat [][]float64 // {trackRow}, the shape combineShardMaxima folds
	maxOut   []float64   // combineShardMaxima output scratch (len 1)

	taskCh chan streamTask
	wg     sync.WaitGroup
	errs   []error

	// Round-scoped fields, written by the orchestrator strictly
	// between phase barriers (the task-channel sends order the writes
	// before any worker reads).
	round  int
	rbase  uint64 // round base stream index: round·kk
	rrbase uint64 // Mix64(seed, rbase): arrival routing base
	curM   int64  // this round's arrivals
	rgr    int    // routing groups active this round

	// Committed prefix: updated only when a round completes, so a
	// cancelled run reports exactly the completed-round state.
	rounds  int
	arrived int64
	deleted int64
	moved   int64
	ctotal  int64
	csballs []int64
}

// runStream executes one streaming run. Unexported by design: Dispatch
// (Engine = EngineStream) is the only public entry point, so every
// caller shares the eligibility checks and the Result mapping.
func runStream(cfg StreamConfig) (*StreamResult, error) {
	shards, rounds, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	cc := newCanceller(cfg.Context)
	defer cc.stop()
	arr := cfg.Array
	if !cfg.AdoptArray {
		arr = cfg.Array.Clone()
	}
	arr.Reset()
	n := arr.N()

	d := cfg.Dist
	if d == nil {
		d = dist.Proportional{}
	}
	weights, err := d.Weights(arr)
	if err != nil {
		return nil, fmt.Errorf("sim: RunStream weights: %w", err)
	}
	factory := cfg.Placer
	if factory == nil {
		factory = protocol.GreedyFactory(2)
	}
	bounds, shardW, router, err := shardPlan(weights, n, shards)
	if err != nil {
		return nil, fmt.Errorf("sim: RunStream router: %w", err)
	}

	st := &streamState{
		cfg:     &cfg,
		cc:      cc,
		arr:     arr,
		n:       n,
		shards:  shards,
		seed:    cfg.Seed,
		kk:      uint64(3*shards + 2),
		weights: weights,
		factory: factory,
		bounds:  bounds,
		shardW:  shardW,
		router:  router,
	}
	for _, w := range shardW {
		st.sumW += w
	}
	st.totalCap = arr.TotalCapacity()
	if len(cfg.Schedule) > 0 {
		st.sched = cfg.Schedule
	} else {
		st.fixedM = (&Config{Balls: cfg.Arrivals, BallsFactor: cfg.ArrivalsFactor}).ballCount(st.totalCap)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxM := st.fixedM
	for _, a := range st.sched {
		if a > maxM {
			maxM = a
		}
	}
	rg := workers
	if nb := numRouteBlocks(maxM); rg > nb {
		rg = nb
	}
	if rg < 1 {
		rg = 1
	}
	st.groups = newRouteGroups(rg, shards, 0)

	lim := shards
	if lim < rg {
		lim = rg
	}
	pool := workers
	if pool > lim {
		pool = lim
	}
	st.errs = make([]error, lim)
	st.taskCh = make(chan streamTask)

	st.counts = make([]int64, shards)
	st.sballs = make([]int64, shards)
	st.csballs = make([]int64, shards)
	st.delQuota = make([]int64, shards)
	st.moveOut = make([]int64, shards)
	st.moveIn = make([]int64, shards)
	st.targets = make([]float64, shards)
	st.defW = make([]float64, shards)
	st.ap = apportion{rem: make([]float64, shards), idx: make([]int, 0, shards)}
	st.rands = make([]xrand.Rand, shards)
	st.scratch = make([]xrand.Rand, shards)
	st.views = make([]*bins.Array, shards)
	st.placers = make([]protocol.Placer, shards)
	st.trees = make([]*sampling.CountTree, shards)
	st.shardT, err = sampling.NewCountTree(shards)
	if err != nil {
		return nil, fmt.Errorf("sim: RunStream: %w", err)
	}

	cuts, _ := obs.NormalizeCuts(cfg.Checkpoints) // validated above
	st.cuts = cuts
	st.nCuts = obs.CountReached(cuts, int64(rounds))
	if len(cuts) > 0 {
		st.cp = obs.NewCheckpoints(cuts)
		st.trackRow = make([]float64, shards)
		st.trackMat = [][]float64{st.trackRow}
		st.maxOut = make([]float64, 1)
	}

	// Shard views are built before the pool does any work: Array.Shard
	// is a parent method, and the bins.Shard contract forbids running
	// parent methods while views mutate. Zero-weight shards get no
	// view: routing never sends them a ball, deletion and rebalance
	// never touch an empty shard, and skipping them keeps degenerate
	// weight slices from failing the placer build.
	for s := 0; s < shards; s++ {
		if shardW[s] <= 0 {
			continue
		}
		st.views[s], err = arr.Shard(bounds[s], bounds[s+1])
		if err != nil {
			return nil, fmt.Errorf("sim: RunStream shard %d: %w", s, err)
		}
		st.trees[s], err = sampling.NewCountTree(st.views[s].N())
		if err != nil {
			return nil, fmt.Errorf("sim: RunStream shard %d: %w", s, err)
		}
	}

	for w := 0; w < pool; w++ {
		go st.serve()
	}
	res, err := st.orchestrate(rounds)
	close(st.taskCh)
	return res, err
}

// serve is one pool worker: drain tasks until the channel closes. Each
// task runs behind its own recover (in do) so a panic anywhere
// surfaces as a *PanicError from runStream, never as a crash or hang.
func (st *streamState) serve() {
	for t := range st.taskCh {
		st.do(t)
	}
}

// do executes one task. Task state is indexed by (kind, idx) and every
// task touches only its own shard's (or routing group's) state, so any
// scheduling of tasks onto workers produces identical bits.
func (st *streamState) do(t streamTask) {
	defer st.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			st.errs[t.idx] = newPanicError(engRunStream, streamTaskNames[t.kind], st.round, int(t.idx), r)
		}
	}()
	s := int(t.idx)
	switch t.kind {
	case streamTaskRoute:
		st.groups[s].reset()
		st.groups[s].route(st.cc, engRunStream, st.round, st.rrbase, st.router, st.curM, s, st.rgr, nil, nil)
	case streamTaskSetup:
		if st.views[s] != nil {
			st.placers[s], st.errs[s] = st.factory(st.views[s], st.weights[st.bounds[s]:st.bounds[s+1]])
		}
	case streamTaskPlace:
		if st.counts[s] > 0 {
			placeSegment(st.cc, engRunStream, st.round, s, st.placers[s], st.views[s], &st.rands[s], st.counts[s])
		}
	case streamTaskDelete:
		st.deleteShard(s)
	case streamTaskMoveOut:
		st.moveOutShard(s)
	case streamTaskMoveIn:
		if st.moveIn[s] > 0 {
			placeSegment(st.cc, engRunStream, st.round, s, st.placers[s], st.views[s], &st.rands[s], st.moveIn[s])
		}
	case streamTaskObserve:
		if v := st.views[s]; v != nil {
			st.trackRow[s] = v.MaxLoad()
		} else {
			st.trackRow[s] = 0
		}
	}
}

// runPhase dispatches count tasks of one kind, waits for the barrier
// and surfaces the first task error (wrapped with the phase label and
// index). The error slots are cleared for the next phase.
func (st *streamState) runPhase(kind int32, count int, label string) error {
	for i := 0; i < count; i++ {
		st.wg.Add(1)
		st.taskCh <- streamTask{kind: kind, idx: int32(i)}
	}
	st.wg.Wait()
	for i := 0; i < count; i++ {
		if err := st.errs[i]; err != nil {
			clear(st.errs[:count])
			return fmt.Errorf("sim: RunStream %s %d: %w", label, i, err)
		}
	}
	return nil
}

// deleteShard removes the round's delQuota[s] deletion draws from
// shard s: rebuild the shard's bin count tree from the live loads,
// then Sample/Dec/Remove on the shard's own deletion stream. The tree
// mirrors the view exactly, so Remove can never hit an empty bin.
func (st *streamState) deleteShard(s int) {
	q := st.delQuota[s]
	if q == 0 {
		return
	}
	if fault.Enabled {
		fault.Hit(fault.Site{Engine: engRunStream, Op: fault.OpDelete, Rep: st.round, Shard: s, Block: -1})
	}
	view := st.views[s]
	tree := st.trees[s]
	tree.Build(view.Balls)
	rng := &st.scratch[s]
	rng.Seed(xrand.Mix64(st.seed, st.rbase+2+uint64(st.shards)+uint64(s)))
	for k := int64(0); k < q; k++ {
		if k&(RoutingBlock-1) == 0 && st.cc.cancelled() {
			return
		}
		i := tree.Sample(rng)
		tree.Dec(i)
		view.Remove(i)
	}
}

// moveOutShard removes the round's moveOut[s] rebalance draws from
// shard s — the same without-replacement kernel as deleteShard, on the
// shard's move-out stream. The removed balls are re-placed by the
// deficit shards' move-in tasks; ball identity is not tracked, exactly
// as in the count-based routing model.
func (st *streamState) moveOutShard(s int) {
	q := st.moveOut[s]
	if q == 0 {
		return
	}
	if fault.Enabled {
		fault.Hit(fault.Site{Engine: engRunStream, Op: fault.OpRebalance, Rep: st.round, Shard: s, Block: -1})
	}
	view := st.views[s]
	tree := st.trees[s]
	tree.Build(view.Balls)
	rng := &st.scratch[s]
	rng.Seed(xrand.Mix64(st.seed, st.rbase+2+2*uint64(st.shards)+uint64(s)))
	for k := int64(0); k < q; k++ {
		if k&(RoutingBlock-1) == 0 && st.cc.cancelled() {
			return
		}
		i := tree.Sample(rng)
		tree.Dec(i)
		view.Remove(i)
	}
}

// routeDeletions is the round's deletion shard-routing step: D
// sequential draws from the shard-occupancy count tree on the round's
// deletion-routing stream, decrementing as it goes — the quota vector
// is multivariate-hypergeometric, exactly the shard counts of deleting
// D balls uniformly without replacement. It runs on the orchestrator
// goroutine behind its own recover so an injected (or genuine) panic
// surfaces as a *PanicError like any pool task's.
func (st *streamState) routeDeletions(d int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: RunStream deletion routing: %w", newPanicError(engRunStream, "delete-route", st.round, -1, r))
		}
	}()
	if fault.Enabled {
		fault.Hit(fault.Site{Engine: engRunStream, Op: fault.OpDelete, Rep: st.round, Shard: -1, Block: -1})
	}
	st.shardT.Build(func(s int) int64 { return st.sballs[s] })
	st.srand.Seed(xrand.Mix64(st.seed, st.rbase+1+uint64(st.shards)))
	clear(st.delQuota)
	for k := int64(0); k < d; k++ {
		s := st.shardT.Sample(&st.srand)
		st.shardT.Dec(s)
		st.delQuota[s]++
	}
	return nil
}

// planRebalance fills moveOut/moveIn for the round and returns the
// total moved. Shard s's target is shardW[s]/ΣW · occupancy; surplus
// above (1+tol)·target moves out, apportioned to the deficit shards
// (weight = target − occupancy) by largest remainder — floor quotas
// first, then one extra ball per candidate in descending-residue order
// (ties by shard index), a deterministic rule with no RNG draw. All
// arithmetic is either exact integer or correctly-rounded IEEE binary
// (+, ·, /, Floor, Ceil — no fused operations), so the plan is
// bit-identical across platforms and worker counts.
func (st *streamState) planRebalance(tol float64) int64 {
	if st.total == 0 || st.sumW <= 0 {
		return 0
	}
	b := float64(st.total)
	var m int64
	for s := 0; s < st.shards; s++ {
		st.targets[s] = st.shardW[s] / st.sumW * b
		lim := int64(math.Ceil((1 + tol) * st.targets[s]))
		out := st.sballs[s] - lim
		if out < 0 {
			out = 0
		}
		st.moveOut[s] = out
		m += out
	}
	if m == 0 {
		return 0
	}
	var wd float64
	st.ap.idx = st.ap.idx[:0]
	for s := 0; s < st.shards; s++ {
		st.moveIn[s] = 0
		st.defW[s] = 0
		if st.views[s] == nil {
			continue
		}
		if def := st.targets[s] - float64(st.sballs[s]); def > 0 {
			st.defW[s] = def
			wd += def
			st.ap.idx = append(st.ap.idx, s)
		}
	}
	if wd <= 0 || len(st.ap.idx) == 0 {
		// No shard is below target (possible only through float
		// corner cases): nothing can absorb the surplus, skip the pass.
		clear(st.moveOut)
		return 0
	}
	var assigned int64
	for _, s := range st.ap.idx {
		ideal := float64(m) * st.defW[s] / wd
		q := math.Floor(ideal)
		st.moveIn[s] = int64(q)
		st.ap.rem[s] = ideal - q
		assigned += int64(q)
	}
	sort.Sort(&st.ap)
	k := len(st.ap.idx)
	for r := m - assigned; r > 0; {
		// One extra ball per candidate in residue order; wrap in the
		// (float-residue) corner case of more leftover than candidates.
		for j := 0; j < k && r > 0; j++ {
			st.moveIn[st.ap.idx[j]]++
			r--
		}
	}
	for r := assigned - m; r > 0; {
		// Float residue over-assigned (Σfloor > m): take back from the
		// smallest residues.
		for j := k - 1; j >= 0 && r > 0; j-- {
			if st.moveIn[st.ap.idx[j]] > 0 {
				st.moveIn[st.ap.idx[j]]--
				r--
			}
		}
	}
	return m
}

// arrivalsAt returns round r's arrival count.
func (st *streamState) arrivalsAt(r int) int64 {
	if st.sched != nil {
		return st.sched[r]
	}
	return st.fixedM
}

// orchestrate runs the setup phase and then the rounds, committing the
// completed-round prefix as it goes.
func (st *streamState) orchestrate(rounds int) (*StreamResult, error) {
	// One-time setup: per-shard placer builds (alias tables,
	// O(shard size) each) fan out across the pool. Built once, not per
	// round — a steady-state round allocates nothing.
	if err := st.runPhase(streamTaskSetup, st.shards, "setup shard"); err != nil {
		return nil, err
	}
	if st.cc.cancelled() {
		return st.partial()
	}
	for r := 0; r < rounds; r++ {
		ok, err := st.runRound(r)
		if err != nil {
			return nil, err
		}
		if !ok {
			return st.partial()
		}
		if ca := st.cfg.CancelAfterRounds; ca > 0 && st.rounds == ca && st.rounds < rounds {
			return st.partialSelfCancel()
		}
	}
	return st.final()
}

// runRound executes round r: arrivals → deletions → rebalance →
// observation → commit. ok == false means the round was abandoned at a
// cancellation point — nothing of it is committed.
func (st *streamState) runRound(r int) (ok bool, err error) {
	if st.cc.cancelled() {
		return false, nil
	}
	st.round = r
	st.rbase = uint64(r) * st.kk
	// Placement streams are re-seeded for EVERY shard at the start of
	// every round — whether or not the shard receives arrivals — so a
	// shard's draws depend only on (seed, round, shard), never on the
	// quiet rounds before.
	for s := 0; s < st.shards; s++ {
		st.rands[s].Seed(xrand.Mix64(st.seed, st.rbase+1+uint64(s)))
	}

	// Phase 1+2 — arrivals: block-wise multinomial routing on the
	// round's routing stream, then per-shard placement.
	m := st.arrivalsAt(r)
	st.curM = m
	if m > 0 {
		st.rrbase = xrand.Mix64(st.seed, st.rbase)
		rgr := len(st.groups)
		if nb := numRouteBlocks(m); rgr > nb {
			rgr = nb
		}
		st.rgr = rgr
		if err := st.runPhase(streamTaskRoute, rgr, "routing group"); err != nil {
			return false, err
		}
		if st.cc.cancelled() {
			return false, nil
		}
		mergeRouteGroups(st.groups[:rgr], st.counts, nil)
		if err := st.runPhase(streamTaskPlace, st.shards, "shard"); err != nil {
			return false, err
		}
		if st.cc.cancelled() {
			return false, nil
		}
		for s, c := range st.counts {
			st.sballs[s] += c
		}
		st.total += m
	}

	// Phase 3 — deletions: exactly uniform without replacement over
	// the current occupancy, P(shard)·P(bin|shard) factorised.
	d := st.cfg.Deletions
	if d > st.total {
		d = st.total
	}
	if d > 0 {
		if err := st.routeDeletions(d); err != nil {
			return false, err
		}
		if st.cc.cancelled() {
			return false, nil
		}
		if err := st.runPhase(streamTaskDelete, st.shards, "deletion shard"); err != nil {
			return false, err
		}
		if st.cc.cancelled() {
			return false, nil
		}
		for s, q := range st.delQuota {
			st.sballs[s] -= q
		}
		st.total -= d
	}

	// Phase 4 — rebalance: shed surpluses above (1+tol)·target to the
	// deficit shards. Source and destination shards are disjoint, but
	// the model orders move-outs before move-ins.
	var moved int64
	if tol := st.cfg.RebalanceTol; tol > 0 {
		moved = st.planRebalance(tol)
		if moved > 0 {
			if err := st.runPhase(streamTaskMoveOut, st.shards, "move-out shard"); err != nil {
				return false, err
			}
			if st.cc.cancelled() {
				return false, nil
			}
			if err := st.runPhase(streamTaskMoveIn, st.shards, "move-in shard"); err != nil {
				return false, err
			}
			if st.cc.cancelled() {
				return false, nil
			}
			for s := 0; s < st.shards; s++ {
				st.sballs[s] += st.moveIn[s] - st.moveOut[s]
			}
		}
	}

	// Phase 5 — observation: a cut at round r+1 snapshots the system
	// before the commit, so a cancellation inside the observe phase
	// abandons the whole round and the trajectory stays exactly the
	// committed prefix's.
	if st.nextCut < st.nCuts && st.cuts[st.nextCut] == int64(r)+1 {
		if err := st.runPhase(streamTaskObserve, st.shards, "observe shard"); err != nil {
			return false, err
		}
		if st.cc.cancelled() {
			return false, nil
		}
		combineShardMaxima(st.trackMat, st.maxOut)
		st.cp.Observe(st.nextCut, st.total, st.totalCap, st.maxOut[0])
		st.nextCut++
	}

	// Commit: the round is now part of the result prefix.
	st.rounds = r + 1
	st.arrived += m
	st.deleted += d
	st.moved += moved
	st.ctotal = st.total
	copy(st.csballs, st.sballs)
	return true, nil
}

// partialResult builds the committed-prefix result every cancelled
// path shares.
func (st *streamState) partialResult() *StreamResult {
	res := &StreamResult{
		N:          st.n,
		Shards:     st.shards,
		Rounds:     st.rounds,
		Arrived:    st.arrived,
		Deleted:    st.deleted,
		Moved:      st.moved,
		Balls:      st.ctotal,
		ShardBalls: st.csballs,
	}
	if st.cp != nil {
		res.Checkpoints = st.cp.Rows()
	}
	return res
}

// partial is the context-cancelled exit: the committed-round prefix
// plus a *CancelledError carrying the context's cause.
func (st *streamState) partial() (*StreamResult, error) {
	return st.partialResult(), &CancelledError{
		Engine:          engRunStream,
		CompletedReps:   -1,
		CompletedCuts:   st.nextCut,
		CompletedRounds: st.rounds,
		CompletedTicks:  -1,
		Cause:           st.cc.err(),
	}
}

// partialSelfCancel is the CancelAfterRounds exit: same deterministic
// prefix, nil Cause.
func (st *streamState) partialSelfCancel() (*StreamResult, error) {
	return st.partialResult(), &CancelledError{
		Engine:          engRunStream,
		CompletedReps:   -1,
		CompletedCuts:   st.nextCut,
		CompletedRounds: st.rounds,
		CompletedTicks:  -1,
	}
}

// final builds the completed-run result: the committed counters plus
// the final whole-array statistics and (optionally) height counts.
func (st *streamState) final() (*StreamResult, error) {
	res := st.partialResult()
	st.arr.Recount()
	var max float64
	if st.cfg.HeightLevels > 0 {
		// Distribution-shaped final report: one histogram pass yields
		// the exact max load and the height counts together. The
		// per-round observe phase keeps its direct per-shard MaxLoad
		// scan — max-only snapshots need no histogram and the scan is
		// alloc-free.
		h := st.arr.NewLoadHistogram()
		if err := st.arr.HistogramInto(h); err != nil {
			return nil, fmt.Errorf("sim: RunStream histogram: %w", err)
		}
		max = h.MaxLoad()
		hl := obs.NewHeights(st.cfg.HeightLevels)
		if err := hl.SnapshotHist(obs.Final, h, st.arrived); err != nil {
			return nil, fmt.Errorf("sim: RunStream heights: %w", err)
		}
		res.HeightCounts = hl.Rows()
	} else {
		max = st.arr.MaxLoad()
	}
	avg := st.arr.AverageLoad()
	res.MaxLoad = max
	res.AvgLoad = avg
	res.Deviation = max - avg
	res.Array = st.arr
	return res, nil
}
