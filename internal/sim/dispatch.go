// Unified engine dispatch: one RunSpec, one entry point, three engines.
//
// The repo grew three ways to run the balls-into-bins game — the
// classic chunked engine (Run), the sharded Monte-Carlo engine
// (RunLargeMonte) and the closed-form multinomial engine (RunClosed) —
// each with its own sweet spot. Dispatch hides the choice behind a
// single spec so the figure/validate/tune harness can ask for "this
// game, these observables, at this n" and get the right engine:
//
//   - classic: the reference engine. Supports every observable
//     (random arrays, per-ball heights, per-class vectors) at any n a
//     per-ball pass can afford.
//   - sharded: RunLargeMonte. Fixed arrays only; scales a single
//     repetition across cores via multinomial block routing, so
//     n = 10^6..10^7 repetitions are practical. Shards and the routing
//     blocks are part of the model (see large.go): results are
//     deterministic in the spec but not bit-identical to classic.
//   - closed-form: RunClosed. Single-choice protocols only; one
//     Multinomial(m, p) draw per repetition, O(n + checkpoints·n) per
//     rep with no per-ball work at all.
//
// # Determinism contract
//
// Engine auto-selection is a pure function of the spec — never of the
// machine (worker count, core count, load). The same spec selects the
// same engine everywhere, and each engine is itself deterministic in
// (spec, seed), so Dispatch inherits every engine's reproducibility
// guarantee. Engines draw different random-number sequences, though:
// switching engines changes individual numbers while preserving the
// distributional law (see parity_test.go), which is why the selection
// rule only switches engines at scale thresholds, where distributional
// agreement is what matters.
package sim

import (
	"fmt"

	"repro/internal/bins"
	"repro/internal/cluster"
	"repro/internal/protocol"
)

// Engine names a simulation engine for RunSpec/Dispatch.
type Engine string

const (
	// EngineAuto lets Dispatch pick: closed-form when the protocol is
	// single-choice and n is at least AutoScaleMinBins, else sharded
	// when the spec supports it and n is at least AutoScaleMinBins,
	// else classic. The choice depends only on the spec.
	EngineAuto Engine = "auto"
	// EngineClassic forces the classic chunked engine (Run).
	EngineClassic Engine = "classic"
	// EngineSharded forces the sharded Monte-Carlo engine
	// (RunLargeMonte).
	EngineSharded Engine = "sharded"
	// EngineClosedForm forces the closed-form multinomial engine
	// (RunClosed).
	EngineClosedForm Engine = "closed-form"
	// EngineStream selects the streaming engine (stream.go): balls
	// arrive in rounds, a deterministic deletion stream expires them,
	// and an optional rebalance pass bounds cross-shard drift. The
	// engine function is unexported — Dispatch is its only public
	// entry point — and requires RunSpec.Stream.
	EngineStream Engine = "stream"
	// EngineCluster selects the churn-tolerant serving engine
	// (cluster.go): ticks of batched arrivals over a consistent-hashing
	// ring of live peers, with crashes, recoveries, timeouts, retries
	// and shedding. The engine function is unexported — Dispatch is its
	// only public entry point — and requires RunSpec.Cluster.
	EngineCluster Engine = "cluster"
)

// AutoScaleMinBins is the bin count at which EngineAuto switches from
// the classic engine to a scale engine (closed-form or sharded). It is
// a fixed constant — auto-selection must never depend on the machine —
// chosen so that paper-scale runs (n <= 3·10^4) keep their classic
// bit-exact behaviour while 100-1000× scale-ups move off the per-ball
// path.
const AutoScaleMinBins = 1 << 16

// ParseEngine parses a CLI engine name. The empty string means auto.
func ParseEngine(s string) (Engine, error) {
	switch Engine(s) {
	case "", EngineAuto:
		return EngineAuto, nil
	case EngineClassic:
		return EngineClassic, nil
	case EngineSharded:
		return EngineSharded, nil
	case EngineClosedForm:
		return EngineClosedForm, nil
	case EngineStream:
		return EngineStream, nil
	case EngineCluster:
		return EngineCluster, nil
	}
	return "", fmt.Errorf("sim: unknown engine %q (want auto, classic, sharded, closed-form, stream or cluster)", s)
}

// StreamParams carries the round-structure parameters of a streaming
// run (RunSpec.Stream). Their presence is what makes a spec a
// streaming spec: EngineAuto dispatches to the streaming engine iff
// Stream is non-nil, and no other engine will silently run such a
// spec. The spec's Balls/BallsFactor become the per-round arrival
// count (StreamConfig.Arrivals/ArrivalsFactor).
type StreamParams struct {
	// Rounds is the number of rounds (>= 1; 0 allowed when Schedule
	// implies it).
	Rounds int
	// Schedule optionally gives every round's arrival count explicitly
	// (see StreamConfig.Schedule).
	Schedule []int64
	// Deletions is the per-round deletion count (>= 0).
	Deletions int64
	// RebalanceTol enables the inter-round rebalance pass when > 0.
	RebalanceTol float64
	// CancelAfterRounds deterministically stops the run after that
	// many rounds when positive (see StreamConfig.CancelAfterRounds).
	CancelAfterRounds int
}

// ClusterParams carries the serving-model parameters of a cluster run
// (RunSpec.Cluster). Their presence is what makes a spec a cluster
// spec: EngineAuto dispatches to the cluster engine iff Cluster is
// non-nil, and no other engine will silently run such a spec. The
// spec's Array supplies the peer capacities; arrivals come from
// ArrivalsPerTick, not Config.Balls.
type ClusterParams struct {
	// Ticks is the simulation horizon (>= 1).
	Ticks int
	// ArrivalsPerTick is the per-tick request count (>= 0).
	ArrivalsPerTick int64
	// VnodesPerUnit is the ring density (ClusterConfig.VnodesPerUnit).
	VnodesPerUnit int
	// Churn is the crash/recover plan.
	Churn cluster.ChurnPlan
	// Retry is the timeout/retry policy.
	Retry cluster.RetryPolicy
	// ShedThreshold arms admission control when > 0.
	ShedThreshold float64
	// LatencyMax is the latency histogram's top bucket in ticks (0 = 32).
	LatencyMax int
	// CancelAfterTicks deterministically stops the run after that many
	// ticks when positive (see ClusterConfig.CancelAfterTicks).
	CancelAfterTicks int
}

// RunSpec is the engine-independent description of one experiment: the
// classic Config (array, distribution, protocol, balls, reps, seed,
// workers, observables) plus an engine hint and the sharded engine's
// shard count.
type RunSpec struct {
	Config
	// Engine selects the engine ("" = EngineAuto).
	Engine Engine
	// Shards is the sharded and streaming engines' shard count
	// (0 = DefaultShards). Ignored by the classic and closed-form
	// engines.
	Shards int
	// Stream carries the streaming engine's round parameters. Setting
	// it makes the spec a streaming spec: EngineAuto (and
	// EngineStream) run the streaming engine, and every other explicit
	// engine rejects the spec — round structure is never silently
	// dropped.
	Stream *StreamParams
	// Cluster carries the serving engine's churn/retry/shedding
	// parameters. Setting it makes the spec a cluster spec, with the
	// same exclusivity contract as Stream (and at most one of the two
	// may be set).
	Cluster *ClusterParams
	// AdoptArray lets the engine mutate Config.Array in place instead
	// of cloning it (streaming engine only; the public wrappers use it
	// to avoid a transient second O(n) array).
	AdoptArray bool
}

// Dispatch resolves the spec's engine and runs it, converging on the
// classic Result shape whatever the engine. The returned Result's
// Engine field records the choice. Cancellation behaves like the
// underlying engine: a fired Context yields a deterministic partial
// Result plus a *CancelledError.
func Dispatch(spec RunSpec) (*Result, error) {
	engine, err := spec.resolveEngine()
	if err != nil {
		return nil, err
	}
	var res *Result
	switch engine {
	case EngineClassic:
		res, err = Run(spec.Config)
	case EngineClosedForm:
		res, err = RunClosed(spec.Config)
	case EngineSharded:
		res, err = runShardedSpec(&spec)
	case EngineStream:
		res, err = runStreamSpec(&spec)
	case EngineCluster:
		res, err = runClusterSpec(&spec)
	default:
		return nil, fmt.Errorf("sim: unknown engine %q", engine)
	}
	if res != nil {
		res.Engine = engine
	}
	return res, err
}

// resolveEngine applies the selection rule. Explicitly requested
// engines fail loudly when the spec is outside their capability;
// EngineAuto only ever picks an engine that supports the spec.
func (spec *RunSpec) resolveEngine() (Engine, error) {
	// Round parameters bind the spec to the streaming engine, serving
	// parameters to the cluster engine: any other explicit engine would
	// silently drop that structure, so it errors instead.
	if spec.Stream != nil && spec.Cluster != nil {
		return "", fmt.Errorf("sim: Stream and Cluster both set: a spec is streaming or serving, not both")
	}
	if spec.Stream != nil {
		switch spec.Engine {
		case "", EngineAuto, EngineStream:
			if err := streamUnsupported(spec); err != nil {
				return "", err
			}
			return EngineStream, nil
		case EngineClassic, EngineSharded, EngineClosedForm, EngineCluster:
			return "", fmt.Errorf("sim: engine %q cannot run a streaming spec (Stream is set; use engine stream or auto)", spec.Engine)
		}
		return "", fmt.Errorf("sim: unknown engine %q (want auto, classic, sharded, closed-form, stream or cluster)", spec.Engine)
	}
	if spec.Cluster != nil {
		switch spec.Engine {
		case "", EngineAuto, EngineCluster:
			if err := clusterUnsupported(spec); err != nil {
				return "", err
			}
			return EngineCluster, nil
		case EngineClassic, EngineSharded, EngineClosedForm, EngineStream:
			return "", fmt.Errorf("sim: engine %q cannot run a cluster spec (Cluster is set; use engine cluster or auto)", spec.Engine)
		}
		return "", fmt.Errorf("sim: unknown engine %q (want auto, classic, sharded, closed-form, stream or cluster)", spec.Engine)
	}
	switch spec.Engine {
	case EngineClassic:
		return EngineClassic, nil
	case EngineClosedForm:
		if err := closedUnsupported(&spec.Config); err != nil {
			return "", err
		}
		return EngineClosedForm, nil
	case EngineSharded:
		if err := shardedUnsupported(&spec.Config); err != nil {
			return "", err
		}
		return EngineSharded, nil
	case EngineStream:
		return "", fmt.Errorf("sim: engine stream needs round parameters (RunSpec.Stream is nil)")
	case EngineCluster:
		return "", fmt.Errorf("sim: engine cluster needs serving parameters (RunSpec.Cluster is nil)")
	case "", EngineAuto:
		// Auto: below the scale threshold stay classic (bit-compatible
		// with the seed harness); at scale prefer closed-form (exact
		// law, no per-ball work), then sharded.
		n, err := probeNBins(&spec.Config)
		if err != nil || n < AutoScaleMinBins {
			return EngineClassic, nil
		}
		if closedUnsupported(&spec.Config) == nil {
			return EngineClosedForm, nil
		}
		if shardedUnsupported(&spec.Config) == nil {
			return EngineSharded, nil
		}
		return EngineClassic, nil
	}
	return "", fmt.Errorf("sim: unknown engine %q (want auto, classic, sharded, closed-form, stream or cluster)", spec.Engine)
}

// streamUnsupported reports, by field name, why the streaming engine
// cannot run the spec (nil when it can). Like the sharded engine it
// works on fixed arrays and whole-array observables; it runs a single
// stream, not repetitions.
func streamUnsupported(spec *RunSpec) error {
	c := &spec.Config
	switch {
	case c.ArrayFn != nil:
		return fmt.Errorf("sim: streaming engine needs a fixed Array (ArrayFn builds per-repetition arrays)")
	case c.Reps > 1:
		return fmt.Errorf("sim: Reps = %d: the streaming engine runs a single stream", c.Reps)
	case c.CollectLoadVector:
		return fmt.Errorf("sim: streaming engine does not collect the sorted load vector (CollectLoadVector)")
	case len(c.TrackClasses) > 0:
		return fmt.Errorf("sim: streaming engine does not collect TrackClasses")
	case len(c.ClassLoadVectors) > 0:
		return fmt.Errorf("sim: streaming engine does not collect ClassLoadVectors")
	case len(c.ClassMaxLoads) > 0:
		return fmt.Errorf("sim: streaming engine does not collect ClassMaxLoads")
	case c.HeightBins > 0:
		return fmt.Errorf("sim: streaming engine does not collect the per-ball height histogram")
	}
	return nil
}

// clusterUnsupported reports, by field name, why the cluster engine
// cannot run the spec (nil when it can). Like the streaming engine it
// runs a single trajectory over a fixed array; dispatch probabilities
// come from the ring's live arcs, never from Config.Dist; arrivals
// come from ClusterParams.ArrivalsPerTick, never from Config.Balls.
func clusterUnsupported(spec *RunSpec) error {
	c := &spec.Config
	switch {
	case c.ArrayFn != nil:
		return fmt.Errorf("sim: cluster engine needs a fixed Array (ArrayFn builds per-repetition arrays)")
	case c.Dist != nil:
		return fmt.Errorf("sim: cluster engine derives dispatch weights from the ring's live arcs (Dist is not configurable)")
	case c.Balls != 0 || c.BallsFactor != 0:
		return fmt.Errorf("sim: cluster engine takes arrivals from Cluster.ArrivalsPerTick, not Balls/BallsFactor")
	case c.Reps > 1:
		return fmt.Errorf("sim: Reps = %d: the cluster engine runs a single trajectory", c.Reps)
	case c.CollectLoadVector:
		return fmt.Errorf("sim: cluster engine does not collect the sorted load vector (CollectLoadVector)")
	case len(c.TrackClasses) > 0:
		return fmt.Errorf("sim: cluster engine does not collect TrackClasses")
	case len(c.ClassLoadVectors) > 0:
		return fmt.Errorf("sim: cluster engine does not collect ClassLoadVectors")
	case len(c.ClassMaxLoads) > 0:
		return fmt.Errorf("sim: cluster engine does not collect ClassMaxLoads")
	case c.HeightBins > 0:
		return fmt.Errorf("sim: cluster engine does not collect the per-ball height histogram")
	}
	return nil
}

// probeNBins is nBins with panic containment: a panicking ArrayFn must
// fail the run through the engine's guarded paths, not crash the
// selection probe (auto then falls back to classic, which surfaces the
// panic as a *PanicError).
func probeNBins(c *Config) (n int, err error) {
	defer func() {
		if r := recover(); r != nil {
			n, err = 0, newPanicError(engRun, "probe", -1, -1, r)
		}
	}()
	return nBins(c)
}

// shardedUnsupported reports why the sharded engine cannot run the
// spec (nil when it can). The sharded engine works on fixed arrays and
// the observables RunLargeMonte aggregates; per-class and per-ball
// observables stay classic.
func shardedUnsupported(c *Config) error {
	switch {
	case c.ArrayFn != nil:
		return fmt.Errorf("sim: sharded engine needs a fixed Array (ArrayFn builds per-repetition arrays)")
	case len(c.TrackClasses) > 0:
		return fmt.Errorf("sim: sharded engine does not collect TrackClasses")
	case len(c.ClassLoadVectors) > 0:
		return fmt.Errorf("sim: sharded engine does not collect ClassLoadVectors")
	case len(c.ClassMaxLoads) > 0:
		return fmt.Errorf("sim: sharded engine does not collect ClassMaxLoads")
	case c.HeightBins > 0:
		return fmt.Errorf("sim: sharded engine does not collect the per-ball height histogram")
	}
	return nil
}

// closedUnsupported reports why the closed-form engine cannot run the
// spec (nil when it can): the protocol must place every ball by one
// independent weighted draw — then and only then is the final load
// vector one Multinomial(m, p) sample — and the per-ball height
// histogram needs a placement order the closed form integrates out.
func closedUnsupported(c *Config) error {
	if c.HeightBins > 0 {
		return fmt.Errorf("sim: closed-form engine does not collect the per-ball height histogram")
	}
	if !singleChoiceFactory(c.factory()) {
		return fmt.Errorf("sim: closed-form engine needs a single-choice protocol (single, or d=1 / beta=0 variants)")
	}
	return nil
}

// singleChoiceFactory reports whether the factory builds a protocol
// that places each ball by a single independent weighted draw. It
// probes the factory on a tiny array and matches the placer's name —
// the protocol package's names are part of its contract (they key the
// figure tables) — containing any probe panic as "not single-choice".
func singleChoiceFactory(f protocol.Factory) (single bool) {
	defer func() {
		if recover() != nil {
			single = false
		}
	}()
	probe, err := bins.New([]int64{1, 1})
	if err != nil {
		return false
	}
	p, err := f(probe, []float64{0.5, 0.5})
	if err != nil {
		return false
	}
	switch p.Name() {
	case "single", "greedy(d=1)", "standard(d=1)", "goleft(d=1)", "oneplusbeta(b=0)":
		return true
	}
	return false
}

// runShardedSpec maps the spec onto RunLargeMonte and its result back
// onto the classic Result shape. The mapping is total for everything
// shardedUnsupported admits; checkpoint rows keep the sharded model's
// block-aligned realised cuts (RealBalls <= the requested cut).
func runShardedSpec(spec *RunSpec) (*Result, error) {
	mcfg := LargeMonteConfig{
		LargeConfig: LargeConfig{
			Array:       spec.Array,
			Dist:        spec.Dist,
			Placer:      spec.Placer,
			Balls:       spec.Balls,
			BallsFactor: spec.BallsFactor,
			Seed:        spec.Seed,
			Shards:      spec.Shards,
			Workers:     spec.Workers,
			Context:     spec.Context,
			ObsOptions:  spec.ObsOptions,
		},
		Reps:              spec.Reps,
		CollectLoadVector: spec.CollectLoadVector,
	}
	mres, merr := RunLargeMonte(mcfg)
	if mres == nil {
		return nil, merr
	}
	// merr may be a *CancelledError carrying a deterministic partial;
	// convert the partial and pass the error through untouched.
	res := &Result{
		N:               mres.N,
		MaxLoad:         mres.MaxLoad,
		AvgLoad:         mres.AvgLoad,
		Deviation:       mres.Deviation,
		MeanSortedLoads: mres.MeanSortedLoads,
		Checkpoints:     mres.Checkpoints,
		HeightCounts:    mres.HeightCounts,
	}
	// The sharded engine runs fixed arrays only, so balls and capacity
	// are the same constant every repetition.
	reps := int64(mres.Reps)
	res.Balls.AddN(float64(mres.Balls), reps)
	res.TotalCapacity.AddN(float64(spec.Array.TotalCapacity()), reps)
	return res, merr
}

// runStreamSpec maps the spec onto the streaming engine and its
// result back onto the classic Result shape: the final-state load
// statistics become single-observation aggregates, the round-indexed
// trajectory rows flow through Checkpoints, and the full streaming
// result rides along in Result.Stream. A cancelled run converts the
// deterministic completed-round partial and passes the
// *CancelledError through untouched.
func runStreamSpec(spec *RunSpec) (*Result, error) {
	p := spec.Stream
	scfg := StreamConfig{
		Array:             spec.Array,
		Dist:              spec.Dist,
		Placer:            spec.Placer,
		Rounds:            p.Rounds,
		Arrivals:          spec.Balls,
		ArrivalsFactor:    spec.BallsFactor,
		Schedule:          p.Schedule,
		Deletions:         p.Deletions,
		RebalanceTol:      p.RebalanceTol,
		Seed:              spec.Seed,
		Shards:            spec.Shards,
		Workers:           spec.Workers,
		Context:           spec.Context,
		AdoptArray:        spec.AdoptArray,
		CancelAfterRounds: p.CancelAfterRounds,
		ObsOptions:        spec.ObsOptions,
	}
	sres, serr := runStream(scfg)
	if sres == nil {
		return nil, serr
	}
	res := &Result{
		N:            sres.N,
		Checkpoints:  sres.Checkpoints,
		HeightCounts: sres.HeightCounts,
		Stream:       sres,
	}
	if sres.Array != nil {
		// Completed run: the final state is one observation of each
		// whole-array statistic. A cancelled partial has no final
		// state, so its accumulators stay empty.
		res.MaxLoad.AddN(sres.MaxLoad, 1)
		res.AvgLoad.AddN(sres.AvgLoad, 1)
		res.Deviation.AddN(sres.Deviation, 1)
		res.Balls.AddN(float64(sres.Balls), 1)
		res.TotalCapacity.AddN(float64(spec.Array.TotalCapacity()), 1)
	}
	return res, serr
}

// runClusterSpec maps the spec onto the cluster engine and its result
// back onto the classic Result shape: the final queue-state statistics
// become single-observation aggregates, the tick-indexed trajectory
// rows flow through Checkpoints, and the full serving result rides
// along in Result.Cluster. A cancelled run converts the deterministic
// completed-tick partial and passes the *CancelledError through
// untouched.
func runClusterSpec(spec *RunSpec) (*Result, error) {
	p := spec.Cluster
	ccfg := ClusterConfig{
		Array:            spec.Array,
		Placer:           spec.Placer,
		Ticks:            p.Ticks,
		Arrivals:         p.ArrivalsPerTick,
		VnodesPerUnit:    p.VnodesPerUnit,
		Churn:            p.Churn,
		Retry:            p.Retry,
		ShedThreshold:    p.ShedThreshold,
		LatencyMax:       p.LatencyMax,
		Seed:             spec.Seed,
		Shards:           spec.Shards,
		Workers:          spec.Workers,
		Context:          spec.Context,
		AdoptArray:       spec.AdoptArray,
		CancelAfterTicks: p.CancelAfterTicks,
		ObsOptions:       spec.ObsOptions,
	}
	cres, cerr := runCluster(ccfg)
	if cres == nil {
		return nil, cerr
	}
	res := &Result{
		N:            cres.N,
		Checkpoints:  cres.Checkpoints,
		HeightCounts: cres.HeightCounts,
		Cluster:      cres,
	}
	if cres.Array != nil {
		// Completed run: the final queue state is one observation of
		// each whole-array statistic. A cancelled partial has no final
		// state, so its accumulators stay empty.
		res.MaxLoad.AddN(cres.MaxQueueLoad, 1)
		res.AvgLoad.AddN(cres.AvgQueueLoad, 1)
		res.Balls.AddN(float64(cres.FinalQueued), 1)
		res.TotalCapacity.AddN(float64(spec.Array.TotalCapacity()), 1)
	}
	return res, cerr
}
