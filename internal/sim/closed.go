// Closed-form multinomial engine: for single-choice protocols the
// final load vector needs no per-ball simulation at all.
//
// # Model
//
// A single-choice protocol places each of the m balls independently
// into bin i with probability p_i (the normalised selection weights).
// The joint law of the final ball counts is therefore exactly
// Multinomial(m, p) — one Draw of sampling.Multinomial materialises a
// whole repetition in O(n) instead of O(m) weighted samples.
//
// Checkpoints extend the closed form by conditional splitting: the
// increment vectors between consecutive cuts 0 < B_1 < … < B_k <= m
// are independent Multinomial(B_j − B_{j−1}, p) draws, and their
// running sums have exactly the joint law of the trajectory snapshots
// a per-ball pass would record at the same cuts. HeightLevels and the
// final-state observables read the realised array as usual; only the
// per-ball height histogram (HeightBins) is out of reach, because it
// depends on the placement order the closed form integrates out.
//
// # Determinism
//
// Repetition rep draws everything from xrand.NewStream(Seed, rep) —
// the classic engine's stream layout — and repetitions fold through
// the same chunk scaffolding as Run, so results are bit-identical for
// any Workers value and cancellation yields the same deterministic
// contiguous-prefix partials. The engine draws a different random
// sequence than Run (interval-tree binomial splits instead of per-ball
// samples), so classic and closed-form agree in distribution, not bit
// for bit: parity_test.go pins the distributional agreement.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/bins"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sampling"
	"repro/internal/xrand"
)

// RunClosed executes the configured experiment through the closed-form
// multinomial engine. The protocol must be single-choice (see
// closedUnsupported); everything else — fixed or random arrays, any
// distribution, checkpoints, height levels, load vectors, class
// observables — behaves like Run.
//
// Cancellation and panic containment follow the classic engine's
// contract: a fired Context returns a deterministic repetition-prefix
// partial plus a *CancelledError, a contained panic a *PanicError.
func RunClosed(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := closedUnsupported(&cfg); err != nil {
		return nil, err
	}
	cc := newCanceller(cfg.Context)
	defer cc.stop()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nChunks := (cfg.Reps + chunkSize - 1) / chunkSize
	if workers > nChunks {
		workers = nChunks
	}

	checkpoints, err := obs.NormalizeCuts(cfg.Checkpoints)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	partials := make([]chunkPartial, nChunks)
	chunkCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			closedWorker(&cfg, cc, checkpoints, chunkCh, partials)
		}()
	}
	for ci := 0; ci < nChunks; ci++ {
		chunkCh <- ci
	}
	close(chunkCh)
	wg.Wait()

	res, completed, err := reduce(&cfg, checkpoints, partials)
	if err != nil {
		return nil, err
	}
	if completed < cfg.Reps {
		return res, &CancelledError{Engine: engRunClosed, CompletedReps: completed, CompletedCuts: -1, CompletedRounds: -1, CompletedTicks: -1, Cause: cc.err()}
	}
	return res, nil
}

// closedScratch is a worker's reusable state: the classic scratch
// buffers plus the multinomial increment vector.
type closedScratch struct {
	ws     workerScratch
	counts []int64
}

// closedWorker mirrors worker: fixed array and router built once per
// worker, chunks drained unconditionally so the sender never blocks.
func closedWorker(cfg *Config, cc *canceller, checkpoints []int64, chunkCh <-chan int, partials []chunkPartial) {
	fixedArr, fixedRouter, setupErr := closedSetup(cfg)
	var scratch closedScratch
	for ci := range chunkCh {
		p := &partials[ci]
		if setupErr != nil {
			p.err = setupErr
			continue
		}
		lo := ci * chunkSize
		hi := lo + chunkSize
		if hi > cfg.Reps {
			hi = cfg.Reps
		}
		for rep := lo; rep < hi; rep++ {
			if cc.cancelled() {
				break
			}
			if err := closedRepGuarded(cfg, checkpoints, uint64(rep), ci, fixedArr, fixedRouter, &scratch, p); err != nil {
				p.err = err
				break
			}
			p.reps++
		}
	}
}

// closedSetup builds a worker's fixed array and multinomial router,
// containing constructor panics like workerSetup does.
func closedSetup(cfg *Config) (fixedArr *bins.Array, fixedRouter *sampling.Multinomial, err error) {
	defer func() {
		if r := recover(); r != nil {
			fixedArr, fixedRouter = nil, nil
			err = newPanicError(engRunClosed, "setup", -1, -1, r)
		}
	}()
	if cfg.ArrayFn != nil {
		return nil, nil, nil
	}
	fixedArr = cfg.Array.Clone()
	fixedArr.Reset()
	weights, err := cfg.distribution().Weights(fixedArr)
	if err == nil {
		fixedRouter, err = sampling.NewMultinomial(weights)
	}
	return fixedArr, fixedRouter, err
}

// closedRepGuarded wraps one repetition in the fault hook and panic
// containment (the closed engine shares the classic chunk topology, so
// its fault site reuses OpChunk with its own engine name).
func closedRepGuarded(cfg *Config, checkpoints []int64, rep uint64, chunk int, fixedArr *bins.Array, fixedRouter *sampling.Multinomial, scratch *closedScratch, p *chunkPartial) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError(engRunClosed, "chunk", int(rep), chunk, r)
		}
	}()
	if fault.Enabled {
		fault.Hit(fault.Site{Engine: engRunClosed, Op: fault.OpChunk, Rep: int(rep), Shard: -1, Block: -1})
	}
	return closedRep(cfg, checkpoints, rep, fixedArr, fixedRouter, scratch, p)
}

// closedRep materialises one repetition: one multinomial increment per
// checkpoint segment, accumulated into the array, then the classic
// engine's shared final fold.
func closedRep(cfg *Config, checkpoints []int64, rep uint64, fixedArr *bins.Array, fixedRouter *sampling.Multinomial, scratch *closedScratch, p *chunkPartial) error {
	r := xrand.NewStream(cfg.Seed, rep)

	arr := fixedArr
	router := fixedRouter
	if cfg.ArrayFn != nil {
		var err error
		arr, err = cfg.ArrayFn(r)
		if err != nil {
			return fmt.Errorf("sim: rep %d array: %w", rep, err)
		}
		weights, err := cfg.distribution().Weights(arr)
		if err != nil {
			return fmt.Errorf("sim: rep %d weights: %w", rep, err)
		}
		router, err = sampling.NewMultinomial(weights)
		if err != nil {
			return fmt.Errorf("sim: rep %d router: %w", rep, err)
		}
	} else {
		arr.Reset()
	}

	m := cfg.ballCount(arr.TotalCapacity())

	if len(checkpoints) > 0 && p.cp == nil {
		p.cp = obs.NewCheckpoints(checkpoints)
	}
	if cfg.HeightLevels > 0 && p.hl == nil {
		p.hl = obs.NewHeights(cfg.HeightLevels)
	}
	if cap(scratch.counts) < arr.N() {
		scratch.counts = make([]int64, arr.N())
	}
	counts := scratch.counts[:arr.N()]

	// Conditional splitting: each segment between consecutive reached
	// cuts (and the final segment up to m) is an independent
	// Multinomial(segment, p) increment; the running sums realise the
	// trajectory's exact joint law.
	placed := int64(0)
	nextCp := 0
	for nextCp < len(checkpoints) && checkpoints[nextCp] <= m {
		cut := checkpoints[nextCp]
		router.Draw(r, cut-placed, counts)
		addCounts(arr, counts)
		placed = cut
		if err := snapshotCheckpoint(cfg, p, &scratch.ws, arr, nextCp, cut); err != nil {
			return err
		}
		nextCp++
	}
	router.Draw(r, m-placed, counts)
	addCounts(arr, counts)
	// Checkpoints beyond m stay unrecorded, exactly like the classic
	// engine: their rows show Reps() < cfg.Reps.

	return foldFinal(cfg, arr, m, rep, &scratch.ws, p)
}

// addCounts applies one multinomial increment vector to the array.
func addCounts(arr *bins.Array, counts []int64) {
	for i, k := range counts {
		if k != 0 {
			arr.AddBalls(i, k)
		}
	}
}
