package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bins"
	"repro/internal/dist"
	"repro/internal/protocol"
	"repro/internal/xrand"
)

func uniformArray(t *testing.T, n int, c int64) *bins.Array {
	t.Helper()
	a, err := bins.Uniform(n, c)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{Reps: 1}); err == nil {
		t.Error("no array accepted")
	}
	a := uniformArray(t, 4, 1)
	if _, err := Run(Config{Array: a, Reps: 0}); err == nil {
		t.Error("zero reps accepted")
	}
	if _, err := Run(Config{Array: a, Reps: 1, Balls: -1}); err == nil {
		t.Error("negative balls accepted")
	}
	if _, err := Run(Config{Array: a, Reps: 1, BallsFactor: -2}); err == nil {
		t.Error("negative factor accepted")
	}
	if _, err := Run(Config{
		ArrayFn:          func(r *xrand.Rand) (*bins.Array, error) { return a.Clone(), nil },
		Reps:             1,
		ClassLoadVectors: []int64{1},
	}); err == nil {
		t.Error("ClassLoadVectors with ArrayFn accepted")
	}
}

func TestDefaultBallsEqualsCapacity(t *testing.T) {
	a := uniformArray(t, 16, 3) // C = 48
	res, err := Run(Config{Array: a, Reps: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Balls.Mean(); got != 48 {
		t.Fatalf("mean balls = %v, want 48 (m = C default)", got)
	}
	if res.N != 16 {
		t.Fatalf("N = %d", res.N)
	}
	if got := res.TotalCapacity.Mean(); got != 48 {
		t.Fatalf("mean capacity = %v", got)
	}
}

func TestBallsFactor(t *testing.T) {
	a := uniformArray(t, 10, 2) // C = 20
	res, err := Run(Config{Array: a, Reps: 2, BallsFactor: 2.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Balls.Mean(); got != 50 {
		t.Fatalf("mean balls = %v, want 50", got)
	}
	res, err = Run(Config{Array: a, Reps: 2, Balls: 7, BallsFactor: 2.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Balls.Mean(); got != 7 {
		t.Fatalf("explicit Balls overridden: %v", got)
	}
}

// TestDeterministicAcrossWorkerCounts is the core reproducibility claim:
// identical results for 1, 2, 3 and 8 workers.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	a := uniformArray(t, 64, 2)
	var base *Result
	for _, workers := range []int{1, 2, 3, 8} {
		res, err := Run(Config{
			Array: a, Reps: 40, Seed: 99, Workers: workers,
			CollectLoadVector: true,
			TrackClasses:      []int64{2},
			ObsOptions:        ObsOptions{Checkpoints: []int64{16, 64, 128}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.MaxLoad.Mean() != base.MaxLoad.Mean() {
			t.Fatalf("workers=%d: MaxLoad mean %v != %v", workers, res.MaxLoad.Mean(), base.MaxLoad.Mean())
		}
		if res.Deviation.Mean() != base.Deviation.Mean() {
			t.Fatalf("workers=%d: Deviation mean differs", workers)
		}
		for i := range base.MeanSortedLoads {
			if res.MeanSortedLoads[i] != base.MeanSortedLoads[i] {
				t.Fatalf("workers=%d: load vector differs at %d", workers, i)
			}
		}
		if res.ClassMaxFraction[2] != base.ClassMaxFraction[2] {
			t.Fatalf("workers=%d: class fraction differs", workers)
		}
		for i := range base.Checkpoints {
			if res.Checkpoints[i].MaxLoad.Mean() != base.Checkpoints[i].MaxLoad.Mean() {
				t.Fatalf("workers=%d: checkpoint %d differs", workers, i)
			}
		}
	}
}

func TestSeedChangesResults(t *testing.T) {
	a := uniformArray(t, 64, 1)
	r1, err := Run(Config{Array: a, Reps: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Config{Array: a, Reps: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Mean max loads are discrete and could coincide; compare the full
	// accumulator state instead (variance too) and accept a tiny chance
	// of coincidence by checking both moments.
	if r1.MaxLoad.Mean() == r2.MaxLoad.Mean() && r1.MaxLoad.Variance() == r2.MaxLoad.Variance() &&
		r1.Deviation.Mean() == r2.Deviation.Mean() {
		t.Fatal("different seeds produced identical statistics")
	}
}

func TestCollectLoadVectorSorted(t *testing.T) {
	a := uniformArray(t, 32, 1)
	res, err := Run(Config{Array: a, Reps: 20, Seed: 5, CollectLoadVector: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MeanSortedLoads) != 32 {
		t.Fatalf("vector length %d", len(res.MeanSortedLoads))
	}
	if !sort.SliceIsSorted(res.MeanSortedLoads, func(i, j int) bool {
		return res.MeanSortedLoads[i] > res.MeanSortedLoads[j]
	}) {
		t.Fatalf("mean sorted loads not non-increasing: %v", res.MeanSortedLoads)
	}
	// mass conservation: sum of mean loads == m (capacity 1 bins)
	sum := 0.0
	for _, v := range res.MeanSortedLoads {
		sum += v
	}
	if math.Abs(sum-32) > 1e-9 {
		t.Fatalf("mean loads sum %v, want 32", sum)
	}
}

func TestTrackClasses(t *testing.T) {
	a, err := bins.TwoClass(10, 1, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Array: a, Reps: 50, Seed: 3, TrackClasses: []int64{1, 8}})
	if err != nil {
		t.Fatal(err)
	}
	f1, f8 := res.ClassMaxFraction[1], res.ClassMaxFraction[8]
	if f1 < 0 || f1 > 1 || f8 < 0 || f8 > 1 {
		t.Fatalf("fractions out of range: %v, %v", f1, f8)
	}
	// fractions can overlap (ties) but at least one class must hold the
	// max in every repetition
	if f1+f8 < 1 {
		t.Fatalf("classes cover %v < 1 of repetitions", f1+f8)
	}
}

func TestClassLoadVectors(t *testing.T) {
	a, err := bins.TwoClass(6, 1, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Array: a, Reps: 30, Seed: 4, ClassLoadVectors: []int64{1, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ClassMeanSortedLoads[1]) != 6 {
		t.Fatalf("class 1 vector length %d", len(res.ClassMeanSortedLoads[1]))
	}
	if len(res.ClassMeanSortedLoads[8]) != 4 {
		t.Fatalf("class 8 vector length %d", len(res.ClassMeanSortedLoads[8]))
	}
	for _, class := range []int64{1, 8} {
		v := res.ClassMeanSortedLoads[class]
		for i := 1; i < len(v); i++ {
			if v[i] > v[i-1]+1e-12 {
				t.Fatalf("class %d loads not sorted: %v", class, v)
			}
		}
	}
}

func TestCheckpoints(t *testing.T) {
	a := uniformArray(t, 16, 1)
	res, err := Run(Config{
		Array: a, Reps: 10, Seed: 6, Balls: 64,
		ObsOptions: ObsOptions{Checkpoints: []int64{16, 32, 48, 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) != 4 {
		t.Fatalf("%d checkpoints", len(res.Checkpoints))
	}
	prev := 0.0
	for i, cp := range res.Checkpoints {
		if cp.MaxLoad.N() != 10 {
			t.Fatalf("checkpoint %d has %d observations", i, cp.MaxLoad.N())
		}
		// running max load grows with more balls
		if cp.MaxLoad.Mean() < prev {
			t.Fatalf("checkpoint max load decreased: %v -> %v", prev, cp.MaxLoad.Mean())
		}
		prev = cp.MaxLoad.Mean()
		// deviation = max - avg is non-negative
		if cp.Deviation.Mean() < 0 {
			t.Fatalf("negative deviation at checkpoint %d", i)
		}
	}
}

func TestCheckpointBeyondBallsIgnored(t *testing.T) {
	a := uniformArray(t, 8, 1)
	res, err := Run(Config{
		Array: a, Reps: 5, Seed: 7, Balls: 8,
		ObsOptions: ObsOptions{Checkpoints: []int64{4, 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints[0].MaxLoad.N() != 5 {
		t.Fatal("in-range checkpoint missing observations")
	}
	if res.Checkpoints[1].MaxLoad.N() != 0 {
		t.Fatal("out-of-range checkpoint has observations")
	}
}

func TestArrayFnRandomCapacities(t *testing.T) {
	res, err := Run(Config{
		ArrayFn: func(r *xrand.Rand) (*bins.Array, error) {
			return bins.RandomBinomial(100, 4, r)
		},
		Reps: 30, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 100 {
		t.Fatalf("N = %d", res.N)
	}
	// realised capacity varies across reps
	if res.TotalCapacity.Min() == res.TotalCapacity.Max() {
		t.Fatal("random capacities identical across reps (suspicious)")
	}
	// expected capacity 400
	if math.Abs(res.TotalCapacity.Mean()-400) > 15 {
		t.Fatalf("mean capacity %v, want ~400", res.TotalCapacity.Mean())
	}
}

func TestArrayFnErrorPropagates(t *testing.T) {
	called := false
	_, err := Run(Config{
		ArrayFn: func(r *xrand.Rand) (*bins.Array, error) {
			called = true
			return nil, errTest
		},
		Reps: 3, Seed: 1,
	})
	if err == nil {
		t.Fatal("builder error swallowed")
	}
	if !called {
		t.Fatal("builder never called")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

// TestNBinsProbeErrorSurfaces: reduce probes ArrayFn once more (stream
// 0) to read the bin count. A builder that succeeds during the run but
// fails on the probe — only possible for a stateful ArrayFn — must
// surface that error instead of silently reporting N = 0.
func TestNBinsProbeErrorSurfaces(t *testing.T) {
	calls := 0
	_, err := Run(Config{
		ArrayFn: func(r *xrand.Rand) (*bins.Array, error) {
			calls++
			if calls > 2 { // reps succeed, the final probe fails
				return nil, errTest
			}
			return bins.Uniform(4, 1)
		},
		Reps: 2, Seed: 1, Workers: 1,
	})
	if err == nil {
		t.Fatal("probe error swallowed (N would silently read 0)")
	}
}

func TestUniformDistOption(t *testing.T) {
	// With uniform selection over a two-class array, large bins no longer
	// receive proportionally more choices; single-choice shows the raw
	// selection distribution directly.
	a, err := bins.TwoClass(5, 1, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Array: a, Reps: 1, Seed: 9, Balls: 50000,
		Dist:   dist.Uniform{},
		Placer: protocol.SingleFactory(),
	}
	arr, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// every bin gets ~1/10 of the balls
	for i := 0; i < arr.N(); i++ {
		frac := float64(arr.Balls(i)) / 50000
		if math.Abs(frac-0.1) > 0.02 {
			t.Fatalf("bin %d fraction %.3f under uniform dist", i, frac)
		}
	}
}

func TestRunOnce(t *testing.T) {
	a := uniformArray(t, 10, 1)
	arr, err := RunOnce(Config{Array: a, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if arr.TotalBalls() != 10 {
		t.Fatalf("TotalBalls = %d", arr.TotalBalls())
	}
	// original array untouched
	if a.TotalBalls() != 0 {
		t.Fatal("RunOnce mutated the config array")
	}
	// deterministic
	arr2, err := RunOnce(Config{Array: a, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < arr.N(); i++ {
		if arr.Balls(i) != arr2.Balls(i) {
			t.Fatal("RunOnce not deterministic")
		}
	}
}

// TestGoldenValues pins exact outputs for fixed seeds. The RNG stream,
// the alias-table construction, and every protocol decision are
// deterministic, so these values must never change; a diff here means an
// unintended behavioural change to the allocation pipeline (or an
// intended one — then update the constants and say so in the commit).
func TestGoldenValues(t *testing.T) {
	golden := []struct {
		name          string
		caps          []int64
		wantMax       float64
		wantDeviation float64
	}{
		// Re-pinned when the hot path moved to the one-draw
		// integer-threshold alias sampler (the canonical draw sequence
		// changed once; see the batch-kernel PR).
		{"uniform8x1", []int64{1, 1, 1, 1, 1, 1, 1, 1}, 1.9800000000000002, 0.98},
		{"mix", []int64{1, 1, 1, 1, 10, 10}, 1.1960000000000002, 0.196},
		{"ladder", []int64{1, 2, 3, 4, 5}, 1.2816666666666665, 0.2816666666666667},
	}
	for _, g := range golden {
		arr, err := bins.New(g.caps)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Array: arr, Reps: 50, Seed: 12345})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.MaxLoad.Mean(); got != g.wantMax {
			t.Errorf("%s: MaxLoad mean = %v, golden %v", g.name, got, g.wantMax)
		}
		if got := res.Deviation.Mean(); got != g.wantDeviation {
			t.Errorf("%s: Deviation mean = %v, golden %v", g.name, got, g.wantDeviation)
		}
	}
}

// TestQuickRandomConfigInvariants: for arbitrary small configurations,
// the engine conserves mass (avg load = m/C), is deterministic, and the
// max load dominates the average.
func TestQuickRandomConfigInvariants(t *testing.T) {
	f := func(seed uint64, nRaw, capRaw uint8, reps uint8) bool {
		n := int(nRaw%12) + 1
		r := xrand.New(seed)
		caps := make([]int64, n)
		for i := range caps {
			caps[i] = int64(r.Intn(int(capRaw%8)+1)) + 1
		}
		arr, err := bins.New(caps)
		if err != nil {
			return false
		}
		cfg := Config{Array: arr, Reps: int(reps%8) + 1, Seed: seed}
		a, err := Run(cfg)
		if err != nil {
			return false
		}
		b, err := Run(cfg)
		if err != nil {
			return false
		}
		if a.MaxLoad.Mean() != b.MaxLoad.Mean() {
			return false
		}
		if a.AvgLoad.Mean() != 1 { // m = C default
			return false
		}
		return a.MaxLoad.Mean() >= a.AvgLoad.Mean()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHeightHistogram(t *testing.T) {
	a := uniformArray(t, 50, 1)
	res, err := Run(Config{
		Array: a, Reps: 20, Seed: 12,
		ObsOptions: ObsOptions{HeightBins: 16, HeightMax: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Heights == nil {
		t.Fatal("no height histogram")
	}
	// every ball contributes one height observation
	total := res.Heights.Total() + res.Heights.Underflow + res.Heights.Overflow
	if total != 20*50 {
		t.Fatalf("height observations %d, want %d", total, 20*50)
	}
	// heights are at least 1/c = 1 for unit bins: bin 0 covers [0,0.5)
	// and must be empty, bin 2 covers [1,1.5) and must hold mass.
	if res.Heights.Counts[0] != 0 {
		t.Fatal("height below 1 recorded for unit bins")
	}
	if res.Heights.Counts[2] == 0 {
		t.Fatal("no height-1 balls recorded")
	}
	// deterministic across worker counts
	res2, err := Run(Config{
		Array: a, Reps: 20, Seed: 12,
		Workers: 3, ObsOptions: ObsOptions{HeightBins: 16, HeightMax: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Heights.Counts {
		if res.Heights.Counts[i] != res2.Heights.Counts[i] {
			t.Fatal("height histogram depends on worker count")
		}
	}
}

func TestHeightHistogramDefaultMax(t *testing.T) {
	a := uniformArray(t, 10, 1)
	res, err := Run(Config{Array: a, Reps: 2, Seed: 1, ObsOptions: ObsOptions{HeightBins: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Heights.Hi != 8 {
		t.Fatalf("default HeightMax = %v", res.Heights.Hi)
	}
}

// TestMaxLoadSanity: the classical n=m d=2 game on 1000 unit bins must
// give mean max load between 2 and 5 (theory: ln ln n / ln 2 + O(1) ≈ 2.8).
func TestMaxLoadSanity(t *testing.T) {
	a := uniformArray(t, 1000, 1)
	res, err := Run(Config{Array: a, Reps: 50, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.MaxLoad.Mean(); m < 2 || m > 5 {
		t.Fatalf("d=2 max load mean %v outside [2,5]", m)
	}
}

// TestCheckpointValidation: non-positive checkpoints are rejected up
// front — a checkpoint at 0 balls can never be reached by a placement,
// and before validation existed the per-ball and batch paths disagreed
// on how to skip it.
func TestCheckpointValidation(t *testing.T) {
	a := uniformArray(t, 4, 1)
	if _, err := Run(Config{Array: a, Reps: 1, ObsOptions: ObsOptions{Checkpoints: []int64{0, 5}}}); err == nil {
		t.Fatal("checkpoint at 0 balls accepted")
	}
	if _, err := Run(Config{Array: a, Reps: 1, ObsOptions: ObsOptions{Checkpoints: []int64{-3}}}); err == nil {
		t.Fatal("negative checkpoint accepted")
	}
}

// TestCheckpointsAgreeAcrossPaths: requesting a height histogram swaps
// the engine onto the per-ball path; checkpoint statistics must not
// change.
func TestCheckpointsAgreeAcrossPaths(t *testing.T) {
	a := uniformArray(t, 8, 2)
	base := Config{Array: a, Reps: 4, Seed: 11, Balls: 40, ObsOptions: ObsOptions{Checkpoints: []int64{5, 20}}}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withHeights := base
	withHeights.HeightBins = 8
	hres, err := Run(withHeights)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Checkpoints {
		pm := plain.Checkpoints[i].MaxLoad.Mean()
		hm := hres.Checkpoints[i].MaxLoad.Mean()
		if pm != hm {
			t.Fatalf("checkpoint %d: batch path mean %v, per-ball path %v",
				plain.Checkpoints[i].Balls, pm, hm)
		}
	}
}
