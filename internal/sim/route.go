// Block-wise multinomial routing: Phase 1 of the sharded engines.
//
// The original routing pass drew one categorical sample per ball from
// the shard-weight distribution — m serial RNG draws of which only the
// per-shard counts survive. Routing is instead defined as a sequence
// of fixed-size routing blocks: block b covers balls
// [b·RoutingBlock, min((b+1)·RoutingBlock, m)), and its per-shard
// count vector is generated directly as an exact
// Multinomial(blockBalls, shardWeights) sample via conditional
// binomial splitting (sampling.Multinomial — Devroye & Los), at
// O(Shards) binomial draws per block instead of O(RoutingBlock)
// categorical draws.
//
// # Determinism: blocks are part of the model
//
// Block b draws from the dedicated substream (Seed, routing stream,
// b) — xrand.NewBlockStream — so blocks can be generated in parallel
// and in ANY order: per-shard counts merge by integer addition and
// per-cut prefixes by the block-structured fill below, both exactly
// associative. Like Shards, the routing-block structure is part of
// the model: the result depends on (Seed, Shards, RoutingBlock, m),
// never on Workers.
//
// # Checkpoint cuts under block routing
//
// The model orders balls block by block and, WITHIN a routing block,
// by shard index. A checkpoint at B balls therefore realises as: the
// full counts of every block below floor(B/RoutingBlock), plus the
// first B mod RoutingBlock balls of the boundary block taken in shard
// order (prefixFill). The per-shard prefix counts are then aligned
// down to protocol.BlockSize exactly as before (obs.AlignShardCuts).
// Requesting checkpoints never consumes or moves a draw.
package sim

import (
	"unsafe"

	"repro/internal/fault"
	"repro/internal/protocol"
	"repro/internal/sampling"
	"repro/internal/xrand"
)

// RoutingBlock is the number of balls routed per multinomial block: a
// multiple of the placement kernel's block size (protocol.BlockSize),
// large enough that the O(Shards) binomial draws per block are ~1000x
// fewer RNG draws than per-ball routing at n = 10^7, small enough
// that a multi-million-ball routing pass still fans out across
// workers. Part of the model, like Shards: changing it changes the
// routing stream.
const RoutingBlock = 256 * protocol.BlockSize

// numRouteBlocks returns the number of routing blocks covering m
// balls (the last block may be partial).
func numRouteBlocks(m int64) int {
	if m <= 0 {
		return 0
	}
	return int((m + RoutingBlock - 1) / RoutingBlock)
}

// cutPlan splits ascending checkpoint ball counts into (boundary
// block index, in-block remainder) pairs: cut k realises the full
// counts of blocks below blocks[k] plus the first rems[k] balls of
// block blocks[k] in shard order.
func cutPlan(cuts []int64) (blocks, rems []int64) {
	if len(cuts) == 0 {
		return nil, nil
	}
	blocks = make([]int64, len(cuts))
	rems = make([]int64, len(cuts))
	for k, c := range cuts {
		blocks[k] = c / RoutingBlock
		rems[k] = c % RoutingBlock
	}
	return blocks, rems
}

// routeGroup is one worker's slice of the block-wise routing pass:
// its own count accumulator, per-cut prefix contributions, one-block
// scratch and a reusable generator. Group g of G routes blocks
// g, g+G, g+2G, … (ascending), so per-cut snapshots can be taken the
// moment the group crosses a cut's boundary block.
type routeGroup struct {
	acc     []int64   // per-shard counts over the group's blocks
	scratch []int64   // one block's multinomial count vector
	pacc    [][]int64 // per-cut contribution to the routing prefix
	rng     xrand.Rand
	// Pad the struct to two full cache lines: groups sit in one
	// contiguous slice, and the rng state above is re-written on every
	// draw — without padding, neighbouring groups' generators would
	// share a line and false-share it across routing workers. The
	// compile-time assertion below fails if a field change breaks the
	// whole-cache-lines invariant.
	_ [128 - (3*24+32)%128]byte
}

// Compile-time guard: routeGroup must stay a whole number of 64-byte
// cache lines (re-size the pad above when fields change; a non-zero
// remainder makes this constant negative, which does not compile).
const _ uintptr = 0 - unsafe.Sizeof(routeGroup{})%64

// newRouteGroups builds g reusable routing groups over `shards`
// shards and nCuts checkpoint cuts, carving every int64 buffer out of
// one flat backing so the whole pass costs two allocations (plus one
// row-header slice per group when cuts are requested). Each group's
// region is rounded up to a whole number of 64-byte cache lines:
// groups route blocks concurrently, and at small shard counts
// unpadded regions would put two groups' hot accumulators on one line
// (false sharing that erodes exactly the multi-core fan-out the block
// structure exists for).
func newRouteGroups(g, shards, nCuts int) []routeGroup {
	groups := make([]routeGroup, g)
	per := (2 + nCuts) * shards
	const line = 8 // int64s per 64-byte cache line
	per = (per + line - 1) / line * line
	flat := make([]int64, g*per+line-1)
	// Align the first group to a line boundary so the per-group
	// padding actually separates lines (make only guarantees 8-byte
	// alignment for []int64).
	if off := int(uintptr(unsafe.Pointer(&flat[0])) / 8 % line); off != 0 {
		flat = flat[line-off:]
	}
	for i := range groups {
		base := i * per
		groups[i].acc = flat[base : base+shards]
		groups[i].scratch = flat[base+shards : base+2*shards]
		if nCuts > 0 {
			groups[i].pacc = make([][]int64, nCuts)
			for k := 0; k < nCuts; k++ {
				lo := base + (2+k)*shards
				groups[i].pacc[k] = flat[lo : lo+shards]
			}
		}
	}
	return groups
}

// reset clears the group's accumulators for reuse across repetitions
// (scratch is overwritten by every Draw and needs no clearing).
func (g *routeGroup) reset() {
	clear(g.acc)
	for _, row := range g.pacc {
		clear(row)
	}
}

// route generates the blocks start, start+stride, … of an m-ball
// routing pass whose block substreams hang off `base` (the caller's
// xrand.Mix64(seed, routing stream)). cutBlocks/cutRems is the
// cutPlan of the ascending cuts; after route returns, g.pacc[k] holds
// this group's contribution to the prefix of cut k — the counts of
// its owned blocks below cutBlocks[k], plus (iff the group owns the
// boundary block) the shard-ordered partial fill of that block.
//
// cc (nil when cancellation is not armed) is polled once per routing
// block — the cancellation granularity of the routing pass. A
// cancelled group returns early with partial accumulators; the engines
// never read routing state from a cancelled pass. eng and rep name the
// group's fault-injection site.
func (g *routeGroup) route(cc *canceller, eng string, rep int, base uint64, mult *sampling.Multinomial, m int64, start, stride int, cutBlocks, cutRems []int64) {
	blocks := numRouteBlocks(m)
	next := 0 // next cut whose boundary block is not yet behind us
	for b := start; b < blocks; b += stride {
		if cc.cancelled() {
			return
		}
		if fault.Enabled {
			fault.Hit(fault.Site{Engine: eng, Op: fault.OpRoute, Rep: rep, Shard: -1, Block: b})
		}
		// Snap every cut whose boundary block is at or below b: the
		// accumulator holds exactly this group's owned blocks below b
		// (owned blocks are visited ascending). Boundary-block partial
		// fills are added right after the Draw below.
		partialLo := next
		for next < len(cutBlocks) && cutBlocks[next] <= int64(b) {
			copy(g.pacc[next], g.acc)
			next++
		}
		balls := int64(RoutingBlock)
		if last := m - int64(b)*RoutingBlock; balls > last {
			balls = last
		}
		g.rng.Seed(xrand.Mix64(base, uint64(b))) // ≡ NewBlockStream(seed, stream, b)
		mult.Draw(&g.rng, balls, g.scratch)
		for k := partialLo; k < next; k++ {
			if cutBlocks[k] == int64(b) {
				prefixFill(g.pacc[k], g.scratch, cutRems[k])
			}
		}
		for s, c := range g.scratch {
			g.acc[s] += c
		}
	}
	// Cuts whose boundary block lies beyond every owned block see the
	// group's full contribution.
	for ; next < len(cutBlocks); next++ {
		copy(g.pacc[next], g.acc)
	}
}

// prefixFill adds the first budget balls of one block's count vector,
// taken in shard order, into dst — the within-block ordering the
// checkpoint model defines (balls of a routing block are ordered by
// shard index).
func prefixFill(dst, blockCounts []int64, budget int64) {
	for s, c := range blockCounts {
		if budget <= 0 {
			return
		}
		take := c
		if take > budget {
			take = budget
		}
		dst[s] += take
		budget -= take
	}
}

// mergeRouteGroups folds the groups' accumulators: counts[s] receives
// the total per-shard counts and prefix[k][s] the per-cut routing
// prefixes (both overwritten). Integer addition is exactly
// associative, so any grouping of blocks onto groups — and hence any
// Workers value — produces identical sums.
func mergeRouteGroups(groups []routeGroup, counts []int64, prefix [][]int64) {
	clear(counts)
	for k := range prefix {
		clear(prefix[k])
	}
	for g := range groups {
		for s, c := range groups[g].acc {
			counts[s] += c
		}
		for k, row := range groups[g].pacc {
			for s, c := range row {
				prefix[k][s] += c
			}
		}
	}
}
