package sim

// Cross-engine statistical parity: the classic, sharded and closed-form
// engines draw different random sequences, so agreement is
// distributional, never bitwise. For single-choice protocols all three
// engines realise exactly the same law (the final counts are one
// Multinomial(m, p) sample however they are drawn — the sharded
// routing factorises it as P(shard)·P(bin | shard)), so a two-sample
// chi-square on the max-load distribution applies. For d >= 2 the
// sharded engine is the partitioned relaxation — same protocol on
// independent n/Shards-sized sub-games — so parity there is a
// concentration band (the max load of d-choice games concentrates on
// O(1) values; cf. Schulte-Geers' bounds referenced in PAPERS.md), not
// an identity of laws.

import (
	"math"
	"slices"
	"testing"

	"repro/internal/protocol"
	"repro/internal/stats"
)

// perRepMaxBalls collects R independent per-repetition max-load values
// from an engine by running Reps=1 games on distinct seeds (engines
// derive all randomness from the seed, so runs are independent).
func perRepMaxBalls(t *testing.T, spec RunSpec, r int) []float64 {
	t.Helper()
	out := make([]float64, r)
	for i := range out {
		s := spec
		s.Reps = 1
		s.Seed = 0x9e3779b9 + uint64(i)
		s.Workers = 1
		res, err := Dispatch(s)
		if err != nil {
			t.Fatalf("Dispatch(%s, seed %d): %v", s.Engine, s.Seed, err)
		}
		out[i] = res.MaxLoad.Mean()
	}
	return out
}

// chiSquareTwoSample pools two equal-size integer-valued samples into
// categories with combined count >= 10 (adjacent values merge) and
// returns the two-sample chi-square statistic and its degrees of
// freedom. With |a| == |b| the statistic is Σ (a_i−b_i)²/(a_i+b_i).
func chiSquareTwoSample(a, b []float64) (x2 float64, df int) {
	counts := map[int][2]float64{}
	for _, v := range a {
		c := counts[int(v)]
		c[0]++
		counts[int(v)] = c
	}
	for _, v := range b {
		c := counts[int(v)]
		c[1]++
		counts[int(v)] = c
	}
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	// Merge adjacent categories until each pooled bucket holds at
	// least 10 observations (the classic validity rule of thumb).
	type bucket struct{ a, b float64 }
	var buckets []bucket
	var cur bucket
	for _, k := range keys {
		cur.a += counts[k][0]
		cur.b += counts[k][1]
		if cur.a+cur.b >= 10 {
			buckets = append(buckets, cur)
			cur = bucket{}
		}
	}
	if cur.a+cur.b > 0 {
		if len(buckets) == 0 {
			buckets = append(buckets, cur)
		} else {
			buckets[len(buckets)-1].a += cur.a
			buckets[len(buckets)-1].b += cur.b
		}
	}
	for _, bk := range buckets {
		d := bk.a - bk.b
		x2 += d * d / (bk.a + bk.b)
	}
	return x2, len(buckets) - 1
}

// TestParitySingleMaxLoadChiSquare: for the Single protocol all three
// engines sample the same max-load law; a two-sample chi-square at
// alpha = 0.001 must not reject either pairing.
func TestParitySingleMaxLoadChiSquare(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical parity needs full sample sizes")
	}
	const n, r = 64, 400
	arr := uniformArray(t, n, 1)
	base := Config{Array: arr, Placer: protocol.SingleFactory(), Reps: 1}
	classic := perRepMaxBalls(t, RunSpec{Engine: EngineClassic, Config: base}, r)
	closed := perRepMaxBalls(t, RunSpec{Engine: EngineClosedForm, Config: base}, r)
	sharded := perRepMaxBalls(t, RunSpec{Engine: EngineSharded, Shards: 8, Config: base}, r)
	for _, pair := range []struct {
		name string
		a, b []float64
	}{
		{"classic-vs-closed", classic, closed},
		{"classic-vs-sharded", classic, sharded},
	} {
		x2, df := chiSquareTwoSample(pair.a, pair.b)
		if df < 1 {
			t.Fatalf("%s: degenerate pooling (df=%d)", pair.name, df)
		}
		crit, err := stats.ChiSquareCritical(df, 0.001)
		if err != nil {
			t.Fatalf("critical value: %v", err)
		}
		if x2 > crit {
			t.Errorf("%s: chi-square %.2f > critical %.2f (df=%d) — distributions differ", pair.name, x2, crit, df)
		}
	}
}

// meanBand asserts |mean(a) − mean(b)| within z standard errors plus an
// absolute slack (the slack absorbs genuine model differences like the
// sharded relaxation; z absorbs sampling noise).
func meanBand(t *testing.T, name string, a, b *stats.Accumulator, z, slack float64) {
	t.Helper()
	se := math.Sqrt(a.StdErr()*a.StdErr() + b.StdErr()*b.StdErr())
	if d := math.Abs(a.Mean() - b.Mean()); d > z*se+slack {
		t.Errorf("%s: means %.4f vs %.4f differ by %.4f > band %.4f", name, a.Mean(), b.Mean(), d, z*se+slack)
	}
}

// TestParityGreedyD2Band: classic vs sharded two-choice. The sharded
// game is the partitioned relaxation, so the band allows a small model
// shift on top of sampling noise; a broken engine (e.g. degenerating
// to single-choice, whose max load at this n is ~2.5 higher) blows
// far through it.
func TestParityGreedyD2Band(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical parity needs full sample sizes")
	}
	const n, reps = 512, 300
	arr := uniformArray(t, n, 1)
	classic, err := Dispatch(RunSpec{Engine: EngineClassic, Config: Config{
		Array: arr, Placer: protocol.GreedyFactory(2), Reps: reps, Seed: 11,
	}})
	if err != nil {
		t.Fatalf("classic: %v", err)
	}
	sharded, err := Dispatch(RunSpec{Engine: EngineSharded, Shards: 8, Config: Config{
		Array: arr, Placer: protocol.GreedyFactory(2), Reps: reps, Seed: 12,
	}})
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}
	meanBand(t, "max load", &classic.MaxLoad, &sharded.MaxLoad, 4, 0.6)
	meanBand(t, "gap", &classic.Deviation, &sharded.Deviation, 4, 0.6)
}

// TestParityClosedSingleAggregates: classic vs closed-form Single at
// identical law — endpoint aggregates, checkpoint rows and the mean
// sorted load vector must agree within sampling noise.
func TestParityClosedSingleAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical parity needs full sample sizes")
	}
	const n, reps = 256, 400
	arr := uniformArray(t, n, 1)
	cuts := []int64{64, 128, 192, 256}
	mk := func(engine Engine, seed uint64) *Result {
		res, err := Dispatch(RunSpec{Engine: engine, Config: Config{
			Array:             arr,
			Placer:            protocol.SingleFactory(),
			Reps:              reps,
			Seed:              seed,
			ObsOptions:        ObsOptions{Checkpoints: cuts},
			CollectLoadVector: true,
		}})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		return res
	}
	classic := mk(EngineClassic, 21)
	closed := mk(EngineClosedForm, 22)

	meanBand(t, "final max load", &classic.MaxLoad, &closed.MaxLoad, 5, 0)
	meanBand(t, "final gap", &classic.Deviation, &closed.Deviation, 5, 0)
	if len(closed.Checkpoints) != len(cuts) {
		t.Fatalf("closed checkpoints: %d rows, want %d", len(closed.Checkpoints), len(cuts))
	}
	for i := range cuts {
		cc, cl := classic.Checkpoints[i], closed.Checkpoints[i]
		if cc.Balls != cl.Balls || cl.Reps() != int64(reps) {
			t.Fatalf("cut %d: balls %d vs %d, reps %d", i, cc.Balls, cl.Balls, cl.Reps())
		}
		// The closed form realises cuts exactly (RealBalls == Balls),
		// like the classic engine.
		if cl.RealBalls.Mean() != float64(cl.Balls) {
			t.Errorf("cut %d: realised %v balls, want %d", i, cl.RealBalls.Mean(), cl.Balls)
		}
		meanBand(t, "cut max load", &cc.MaxLoad, &cl.MaxLoad, 5, 0)
		meanBand(t, "cut gap", &cc.Deviation, &cl.Deviation, 5, 0)
	}
	// The mean sorted load vectors estimate the same curve; allow a
	// small per-element band (loads here are integer ball counts, so
	// per-element standard errors are well below 0.1 at 400 reps).
	worst := 0.0
	for i := range classic.MeanSortedLoads {
		if d := math.Abs(classic.MeanSortedLoads[i] - closed.MeanSortedLoads[i]); d > worst {
			worst = d
		}
	}
	if worst > 0.2 {
		t.Errorf("mean sorted load vectors diverge: max element gap %.3f", worst)
	}
}
