package sim

import (
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// monteResumeConfig is the shared configuration of the resume tests:
// every collector switched on, so the checkpoint must round-trip the
// whole observation pipeline, not just the three scalar accumulators.
func monteResumeConfig(t *testing.T, shards, workers int) LargeMonteConfig {
	t.Helper()
	return LargeMonteConfig{
		LargeConfig: LargeConfig{
			Array: largeArray(t, 600), Seed: 20260727, Shards: shards, Workers: workers,
			ObsOptions: ObsOptions{Checkpoints: []int64{500, 1500, 3000}, HeightLevels: 3},
		},
		Reps:              9,
		CollectLoadVector: true,
		ShardStats:        true,
	}
}

// TestMonteResumeByteIdentical is the tentpole determinism contract:
// a run cancelled at repetition k and resumed from its checkpoint must
// produce final aggregates bit-identical to an uninterrupted run —
// across shard counts, worker counts, and cancellation points.
func TestMonteResumeByteIdentical(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, workers := range []int{1, 3} {
			for _, k := range []int{1, 4, 8} {
				cfg := monteResumeConfig(t, shards, workers)
				full, err := RunLargeMonte(cfg)
				if err != nil {
					t.Fatalf("shards=%d workers=%d: uninterrupted run: %v", shards, workers, err)
				}
				interrupted := cfg
				interrupted.CancelAfterReps = k
				partial, err := RunLargeMonte(interrupted)
				var cerr *CancelledError
				if !errors.As(err, &cerr) || cerr.Checkpoint == nil {
					t.Fatalf("shards=%d workers=%d k=%d: err = %v, want checkpoint-carrying *CancelledError", shards, workers, k, err)
				}
				if partial.Reps != k || cerr.Checkpoint.CompletedReps != k {
					t.Fatalf("shards=%d workers=%d k=%d: partial covers %d reps, checkpoint %d",
						shards, workers, k, partial.Reps, cerr.Checkpoint.CompletedReps)
				}
				resumedCfg := cfg
				resumedCfg.Resume = cerr.Checkpoint
				resumed, err := RunLargeMonte(resumedCfg)
				if err != nil {
					t.Fatalf("shards=%d workers=%d k=%d: resumed run: %v", shards, workers, k, err)
				}
				if !reflect.DeepEqual(resumed, full) {
					t.Fatalf("shards=%d workers=%d k=%d: resumed aggregates differ from uninterrupted:\n got  %+v\n want %+v",
						shards, workers, k, resumed, full)
				}
			}
		}
	}
}

// TestMonteResumeAcrossTopologies: a checkpoint written under one
// worker topology resumes under another — Workers schedules work, it is
// never part of the model, and the resume state must not leak it.
func TestMonteResumeAcrossTopologies(t *testing.T) {
	cfg := monteResumeConfig(t, 4, 3)
	full, err := RunLargeMonte(cfg)
	if err != nil {
		t.Fatal(err)
	}
	interrupted := cfg
	interrupted.CancelAfterReps = 5
	_, err = RunLargeMonte(interrupted)
	var cerr *CancelledError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v", err)
	}
	resumedCfg := cfg
	resumedCfg.Workers = 1
	resumedCfg.Resume = cerr.Checkpoint
	resumed, err := RunLargeMonte(resumedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, full) {
		t.Fatal("resuming under a different worker count changed the aggregates")
	}
}

// TestMonteResumeFileRoundTrip: the checkpoint survives its JSON file
// round trip exactly — WriteFile then ReadMonteCheckpoint feeds Resume
// and still reproduces the uninterrupted run bit for bit.
func TestMonteResumeFileRoundTrip(t *testing.T) {
	cfg := monteResumeConfig(t, 4, 2)
	full, err := RunLargeMonte(cfg)
	if err != nil {
		t.Fatal(err)
	}
	interrupted := cfg
	interrupted.CancelAfterReps = 3
	_, err = RunLargeMonte(interrupted)
	var cerr *CancelledError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v", err)
	}
	path := filepath.Join(t.TempDir(), "resume.json")
	if err := cerr.Checkpoint.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	loaded, err := ReadMonteCheckpoint(path)
	if err != nil {
		t.Fatalf("ReadMonteCheckpoint: %v", err)
	}
	if !reflect.DeepEqual(loaded, cerr.Checkpoint) {
		t.Fatalf("checkpoint changed across the file round trip:\n got  %+v\n want %+v", loaded, cerr.Checkpoint)
	}
	resumedCfg := cfg
	resumedCfg.Resume = loaded
	resumed, err := RunLargeMonte(resumedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, full) {
		t.Fatal("file-loaded resume differs from uninterrupted run")
	}
}

// TestMonteResumeChained: cancelling and resuming twice (k=2, then
// k=5, then to completion) still lands on the uninterrupted result —
// resume composes.
func TestMonteResumeChained(t *testing.T) {
	cfg := monteResumeConfig(t, 4, 2)
	full, err := RunLargeMonte(cfg)
	if err != nil {
		t.Fatal(err)
	}
	step1 := cfg
	step1.CancelAfterReps = 2
	_, err = RunLargeMonte(step1)
	var cerr *CancelledError
	if !errors.As(err, &cerr) {
		t.Fatalf("step 1: %v", err)
	}
	step2 := cfg
	step2.Resume = cerr.Checkpoint
	step2.CancelAfterReps = 5
	_, err = RunLargeMonte(step2)
	if !errors.As(err, &cerr) {
		t.Fatalf("step 2: %v", err)
	}
	if cerr.CompletedReps != 5 {
		t.Fatalf("step 2 stopped at %d reps, want 5", cerr.CompletedReps)
	}
	final := cfg
	final.Resume = cerr.Checkpoint
	resumed, err := RunLargeMonte(final)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, full) {
		t.Fatal("twice-resumed aggregates differ from uninterrupted run")
	}
}

// TestMonteResumeRejectsMismatch: a checkpoint only resumes the run it
// came from — any model-relevant difference (seed, shards, capacities,
// observation set, repetition budget) is rejected with a named reason
// instead of silently folding incompatible state.
func TestMonteResumeRejectsMismatch(t *testing.T) {
	cfg := monteResumeConfig(t, 4, 2)
	interrupted := cfg
	interrupted.CancelAfterReps = 3
	_, err := RunLargeMonte(interrupted)
	var cerr *CancelledError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v", err)
	}
	cp := cerr.Checkpoint

	mutate := []struct {
		name string
		mod  func(c *LargeMonteConfig)
	}{
		{"seed", func(c *LargeMonteConfig) { c.Seed = 999 }},
		{"shards", func(c *LargeMonteConfig) { c.Shards = 8 }},
		{"checkpoints", func(c *LargeMonteConfig) { c.Checkpoints = []int64{500, 1500} }},
		{"heights", func(c *LargeMonteConfig) { c.HeightLevels = 2 }},
		{"load vector", func(c *LargeMonteConfig) { c.CollectLoadVector = false }},
		{"shard stats", func(c *LargeMonteConfig) { c.ShardStats = false }},
		{"capacities", func(c *LargeMonteConfig) { c.Array = largeArray(t, 601) }},
		{"reps budget", func(c *LargeMonteConfig) { c.Reps = 2 }},
	}
	for _, tc := range mutate {
		bad := cfg
		tc.mod(&bad)
		bad.Resume = cp
		if _, err := RunLargeMonte(bad); err == nil {
			t.Errorf("%s mismatch accepted", tc.name)
		}
	}

	// A tampered version number is rejected too.
	stale := *cp
	stale.Version = 99
	bad := cfg
	bad.Resume = &stale
	if _, err := RunLargeMonte(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("stale version accepted (err = %v)", err)
	}
}
