// Cluster engine tests: validation, conservation, the golden
// crash/recover availability trace, the peers×workers×ticks
// bit-identity matrix (the CI race job runs this package under -race),
// cancellation-prefix equality and the Dispatch wiring.
package sim

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bins"
	"repro/internal/cluster"
	"repro/internal/obs"
)

func clusterArray(t testing.TB, caps ...int64) *bins.Array {
	t.Helper()
	a, err := bins.New(caps)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// clusterTrace flattens a ClusterResult into a comparable value: every
// counter, the availability trace, the latency buckets, the trajectory
// rows and the final queue vector.
type clusterTrace struct {
	Res     ClusterResult
	LatBkts []int64
	Rows    []obs.CheckpointRow
	Queues  []int64
}

func traceOf(res *ClusterResult) clusterTrace {
	tr := clusterTrace{Res: *res, LatBkts: res.Latency.Buckets(), Rows: res.Checkpoints}
	tr.Res.Latency = nil
	tr.Res.Checkpoints = nil
	tr.Res.Array = nil
	tr.Res.HeightCounts = nil
	if res.Array != nil {
		tr.Queues = make([]int64, res.Array.N())
		for i := range tr.Queues {
			tr.Queues[i] = res.Array.Balls(i)
		}
	}
	return tr
}

// stressPlan is the test-wide churn/retry/shedding configuration that
// exercises every degraded-mode path at once.
func stressPlan() (cluster.ChurnPlan, cluster.RetryPolicy) {
	churn := cluster.ChurnPlan{
		Schedule: []cluster.ChurnEvent{
			{Tick: 2, Peer: 0, Down: true},
			{Tick: 3, Peer: 5, Down: true},
			{Tick: 6, Peer: 0, Down: false},
		},
		CrashProb:   0.05,
		RecoverProb: 0.3,
	}
	retry := cluster.RetryPolicy{TimeoutTicks: 3, MaxRetries: 2, BackoffBase: 1}
	return churn, retry
}

// TestClusterValidation: every bad field fails by name before any work
// starts.
func TestClusterValidation(t *testing.T) {
	a := clusterArray(t, 2, 3, 4)
	base := func() ClusterConfig { return ClusterConfig{Array: a, Ticks: 4, Arrivals: 5} }
	cases := []struct {
		name string
		mut  func(*ClusterConfig)
		want string
	}{
		{"nil array", func(c *ClusterConfig) { c.Array = nil }, "needs an Array"},
		{"zero ticks", func(c *ClusterConfig) { c.Ticks = 0 }, "Ticks"},
		{"negative arrivals", func(c *ClusterConfig) { c.Arrivals = -1 }, "Arrivals"},
		{"negative vnodes", func(c *ClusterConfig) { c.VnodesPerUnit = -1 }, "VnodesPerUnit"},
		{"negative shed", func(c *ClusterConfig) { c.ShedThreshold = -0.5 }, "ShedThreshold"},
		{"negative latency max", func(c *ClusterConfig) { c.LatencyMax = -1 }, "LatencyMax"},
		{"negative workers", func(c *ClusterConfig) { c.Workers = -1 }, "Workers"},
		{"negative cancel", func(c *ClusterConfig) { c.CancelAfterTicks = -1 }, "CancelAfterTicks"},
		{"bad crash prob", func(c *ClusterConfig) { c.Churn.CrashProb = 1.5 }, "CrashProb"},
		{"bad schedule peer", func(c *ClusterConfig) {
			c.Churn.Schedule = []cluster.ChurnEvent{{Tick: 0, Peer: 9, Down: true}}
		}, "Peer"},
		{"unsorted schedule", func(c *ClusterConfig) {
			c.Churn.Schedule = []cluster.ChurnEvent{{Tick: 3, Peer: 0, Down: true}, {Tick: 1, Peer: 1, Down: true}}
		}, "out of order"},
		{"retries without timeout", func(c *ClusterConfig) { c.Retry.MaxRetries = 2 }, "MaxRetries"},
		{"height bins", func(c *ClusterConfig) { c.HeightBins = 4 }, "cluster engine"},
		{"shards out of range", func(c *ClusterConfig) { c.Shards = 7 }, "Shards"},
		{"bad checkpoints", func(c *ClusterConfig) { c.Checkpoints = []int64{3, 2} }, "cuts"},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		_, err := runCluster(cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestClusterQuietConservation: no churn, no timeouts, no shedding —
// the engine is a plain batched queueing loop and every request is
// accounted for: admitted = completed + queued, full availability,
// goodput equals the latency histogram mass.
func TestClusterQuietConservation(t *testing.T) {
	a := clusterArray(t, 1, 2, 3, 4, 5, 6, 7, 8)
	res, err := runCluster(ClusterConfig{Array: a, Ticks: 12, Arrivals: 30, Seed: 7, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived != 12*30 || res.Shed != 0 || res.Admitted != res.Arrived {
		t.Fatalf("arrived/shed/admitted = %d/%d/%d", res.Arrived, res.Shed, res.Admitted)
	}
	if res.Admitted != res.Completed+res.FinalQueued {
		t.Fatalf("conservation: admitted %d != completed %d + queued %d", res.Admitted, res.Completed, res.FinalQueued)
	}
	if res.TimedOut != 0 || res.Retried != 0 || res.Failed != 0 || res.Redistributed != 0 {
		t.Fatalf("degraded-mode counters nonzero on a quiet run: %+v", res)
	}
	if res.Availability != 1 || res.Crashes != 0 || res.Recoveries != 0 {
		t.Fatalf("availability %v crashes %d recoveries %d, want 1/0/0", res.Availability, res.Crashes, res.Recoveries)
	}
	if res.Latency.Count() != res.Completed {
		t.Fatalf("latency mass %d != completed %d", res.Latency.Count(), res.Completed)
	}
	var queued int64
	for i := 0; i < res.Array.N(); i++ {
		queued += res.Array.Balls(i)
	}
	if queued != res.FinalQueued {
		t.Fatalf("array holds %d queued, result says %d", queued, res.FinalQueued)
	}
}

// TestClusterStressConservation: with crashes, recoveries, retries and
// shedding all active, the two conservation identities still hold
// exactly.
func TestClusterStressConservation(t *testing.T) {
	churn, retry := stressPlan()
	a := clusterArray(t, 4, 1, 6, 2, 8, 3, 5, 7, 2, 4)
	res, err := runCluster(ClusterConfig{
		Array: a, Ticks: 40, Arrivals: 25, Seed: 11, Shards: 4,
		Churn: churn, Retry: retry, ShedThreshold: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived != res.Shed+res.Admitted {
		t.Fatalf("arrived %d != shed %d + admitted %d", res.Arrived, res.Shed, res.Admitted)
	}
	if res.Admitted != res.Completed+res.Failed+res.PendingRetry+res.FinalQueued {
		t.Fatalf("conservation: admitted %d != completed %d + failed %d + pending %d + queued %d",
			res.Admitted, res.Completed, res.Failed, res.PendingRetry, res.FinalQueued)
	}
	if res.Dispatched != res.Admitted+res.Retried+res.Redistributed {
		t.Fatalf("dispatched %d != admitted %d + retried %d + redistributed %d",
			res.Dispatched, res.Admitted, res.Retried, res.Redistributed)
	}
	if res.Crashes == 0 || res.Recoveries == 0 || res.TimedOut == 0 || res.Retried == 0 {
		t.Fatalf("stress plan exercised nothing: %+v", res)
	}
	if res.Availability >= 1 || res.Availability <= 0 {
		t.Fatalf("availability = %v, want in (0,1)", res.Availability)
	}
	if res.Latency.Count() != res.Completed {
		t.Fatalf("latency mass %d != completed %d", res.Latency.Count(), res.Completed)
	}
}

// TestClusterBitIdenticalAcrossWorkers: the full degraded-mode
// trajectory — counters, availability trace, latency buckets,
// checkpoint rows, final queue vector — is bit-identical across
// worker counts for every shard count. Workers may only change the
// wall clock.
func TestClusterBitIdenticalAcrossWorkers(t *testing.T) {
	churn, retry := stressPlan()
	a := clusterArray(t, 4, 1, 6, 2, 8, 3, 5, 7, 2, 4)
	for _, shards := range []int{1, 3, 8} {
		var want clusterTrace
		for wi, workers := range []int{1, 2, 8} {
			res, err := runCluster(ClusterConfig{
				Array: a, Ticks: 30, Arrivals: 25, Seed: 5, Shards: shards, Workers: workers,
				Churn: churn, Retry: retry, ShedThreshold: 3,
				ObsOptions: ObsOptions{Checkpoints: []int64{5, 10, 20, 30}},
			})
			if err != nil {
				t.Fatal(err)
			}
			got := traceOf(res)
			if wi == 0 {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("shards=%d workers=%d diverges from workers=1:\n got %+v\nwant %+v", shards, workers, got, want)
			}
		}
	}
}

// TestClusterGoldenAvailabilityTrace: a pinned crash/recover schedule
// yields the exact availability trace — peer 1 down ticks 2..5, peer 3
// down ticks 4..7 — and the matching crash/recovery counters. Purely
// scheduled churn, so the trace is readable by hand.
func TestClusterGoldenAvailabilityTrace(t *testing.T) {
	a := clusterArray(t, 2, 3, 4, 5)
	res, err := runCluster(ClusterConfig{
		Array: a, Ticks: 10, Arrivals: 20, Seed: 3, Shards: 2,
		Churn: cluster.ChurnPlan{Schedule: []cluster.ChurnEvent{
			{Tick: 2, Peer: 1, Down: true},
			{Tick: 4, Peer: 3, Down: true},
			{Tick: 6, Peer: 1, Down: false},
			{Tick: 8, Peer: 3, Down: false},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantLive := []int{4, 4, 3, 3, 2, 2, 3, 3, 4, 4}
	if !reflect.DeepEqual(res.LivePerTick, wantLive) {
		t.Fatalf("LivePerTick = %v, want %v", res.LivePerTick, wantLive)
	}
	if res.Crashes != 2 || res.Recoveries != 2 {
		t.Fatalf("crashes/recoveries = %d/%d, want 2/2", res.Crashes, res.Recoveries)
	}
	// 4+4+3+3+2+2+3+3+4+4 = 32 live-peer-ticks over 4 peers × 10 ticks.
	if want := 32.0 / 40.0; res.Availability != want {
		t.Fatalf("availability = %v, want %v", res.Availability, want)
	}
	if res.Redistributed == 0 {
		t.Fatal("crashes with resident queues redistributed nothing")
	}
	if res.Admitted != res.Completed+res.FinalQueued {
		t.Fatalf("conservation: admitted %d != completed %d + queued %d", res.Admitted, res.Completed, res.FinalQueued)
	}
}

// TestClusterLastPeerNeverDies: a schedule and stochastic process that
// try to kill everything leave one live peer — availability degrades,
// the engine never deadlocks.
func TestClusterLastPeerNeverDies(t *testing.T) {
	a := clusterArray(t, 2, 2, 2)
	res, err := runCluster(ClusterConfig{
		Array: a, Ticks: 8, Arrivals: 4, Seed: 1, Shards: 3,
		Churn: cluster.ChurnPlan{
			Schedule: []cluster.ChurnEvent{
				{Tick: 0, Peer: 0, Down: true},
				{Tick: 0, Peer: 1, Down: true},
				{Tick: 0, Peer: 2, Down: true},
			},
			CrashProb: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for tick, live := range res.LivePerTick {
		if live < 1 {
			t.Fatalf("tick %d: %d live peers", tick, live)
		}
	}
	if res.Crashes != 2 {
		t.Fatalf("crashes = %d, want 2 (third refused)", res.Crashes)
	}
}

// TestClusterDeadPeerGetsNothing: a peer that crashes before any
// arrival keeps an empty queue for the whole run — the ring drops its
// arcs, the router its weight, redistribution its residents.
func TestClusterDeadPeerGetsNothing(t *testing.T) {
	a := clusterArray(t, 3, 3, 3, 3)
	res, err := runCluster(ClusterConfig{
		Array: a, Ticks: 10, Arrivals: 20, Seed: 9, Shards: 2,
		Churn: cluster.ChurnPlan{Schedule: []cluster.ChurnEvent{{Tick: 0, Peer: 2, Down: true}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Array.Balls(2); got != 0 {
		t.Fatalf("dead peer 2 holds %d queued requests", got)
	}
	if res.Redistributed != 0 {
		t.Fatalf("redistributed %d from a peer that never held anything", res.Redistributed)
	}
}

// TestClusterRetryFailureSplit: one server of capacity 1 and a flood
// of arrivals force timeouts; with MaxRetries = 0 every timeout is a
// failure, with retries allowed the timed-out mass splits between
// retried and failed exactly.
func TestClusterRetryFailureSplit(t *testing.T) {
	a := clusterArray(t, 1)
	res, err := runCluster(ClusterConfig{
		Array: a, Ticks: 10, Arrivals: 5, Seed: 2, Shards: 1,
		Retry: cluster.RetryPolicy{TimeoutTicks: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut == 0 {
		t.Fatal("overload produced no timeouts")
	}
	if res.Failed != res.TimedOut || res.Retried != 0 || res.PendingRetry != 0 {
		t.Fatalf("MaxRetries=0: failed %d / timedOut %d / retried %d / pending %d",
			res.Failed, res.TimedOut, res.Retried, res.PendingRetry)
	}
	res2, err := runCluster(ClusterConfig{
		Array: a, Ticks: 10, Arrivals: 5, Seed: 2, Shards: 1,
		Retry: cluster.RetryPolicy{TimeoutTicks: 2, MaxRetries: 3, BackoffBase: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Retried == 0 {
		t.Fatal("retries enabled but none dispatched")
	}
	if res2.Admitted != res2.Completed+res2.Failed+res2.PendingRetry+res2.FinalQueued {
		t.Fatalf("conservation: %+v", res2)
	}
}

// TestClusterShedding: a tight threshold sheds load and the occupancy
// cap holds at every checkpoint.
func TestClusterShedding(t *testing.T) {
	a := clusterArray(t, 2, 2, 2, 2)
	cuts := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	res, err := runCluster(ClusterConfig{
		Array: a, Ticks: 8, Arrivals: 40, Seed: 4, Shards: 2,
		ShedThreshold: 1.5,
		ObsOptions:    ObsOptions{Checkpoints: cuts},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatal("tight threshold shed nothing")
	}
	if res.Arrived != res.Shed+res.Admitted {
		t.Fatalf("arrived %d != shed %d + admitted %d", res.Arrived, res.Shed, res.Admitted)
	}
	// Queue cap: threshold 1.5 × total capacity 8 = 12 requests.
	for _, row := range res.Checkpoints {
		if row.Reps() > 0 && row.RealBalls.Mean() > 12 {
			t.Fatalf("checkpoint occupancy %v exceeds the admission cap", row.RealBalls.Mean())
		}
	}
}

// TestClusterCancelAfterTicksPrefix: stopping after k ticks yields
// counters, trace, latency and trajectory bit-identical to a run
// configured with Ticks = k, plus a typed *CancelledError carrying
// CompletedTicks = k and no Cause.
func TestClusterCancelAfterTicksPrefix(t *testing.T) {
	churn, retry := stressPlan()
	a := clusterArray(t, 4, 1, 6, 2, 8, 3, 5, 7, 2, 4)
	const k = 9
	cfg := ClusterConfig{
		Array: a, Ticks: 30, Arrivals: 25, Seed: 5, Shards: 4, Workers: 4,
		Churn: churn, Retry: retry, ShedThreshold: 3,
		ObsOptions: ObsOptions{Checkpoints: []int64{3, 6, 9, 20}},
	}
	short := cfg
	short.Ticks = k
	want, err := runCluster(short)
	if err != nil {
		t.Fatal(err)
	}

	cancelledCfg := cfg
	cancelledCfg.CancelAfterTicks = k
	got, err := runCluster(cancelledCfg)
	var cerr *CancelledError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *CancelledError", err)
	}
	if cerr.Engine != engRunCluster || cerr.CompletedTicks != k || cerr.Cause != nil {
		t.Fatalf("cancel error = %+v, want engine %q, %d ticks, nil cause", cerr, engRunCluster, k)
	}
	gt, wt := traceOf(got), traceOf(want)
	// The completed short run carries final-state fields the partial
	// cannot (Array, MaxQueueLoad, AvgQueueLoad); blank them before
	// comparing the committed prefix.
	wt.Queues = nil
	wt.Res.MaxQueueLoad, wt.Res.AvgQueueLoad = 0, 0
	if !reflect.DeepEqual(gt, wt) {
		t.Fatalf("cancelled prefix diverges from Ticks=%d run:\n got %+v\nwant %+v", k, gt, wt)
	}
}

// TestClusterContextCancellation: a pre-fired context stops the run
// before the first tick with a well-formed empty partial.
func TestClusterContextCancellation(t *testing.T) {
	defer leakCheck(t)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := clusterArray(t, 2, 3, 4)
	res, err := runCluster(ClusterConfig{Array: a, Ticks: 10, Arrivals: 5, Context: ctx})
	var cerr *CancelledError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *CancelledError", err)
	}
	if cerr.CompletedTicks != 0 || !errors.Is(cerr.Cause, context.Canceled) {
		t.Fatalf("cancel error = %+v, want 0 ticks and context.Canceled", cerr)
	}
	if res == nil || res.Ticks != 0 || res.Admitted != 0 || res.Latency.Count() != 0 {
		t.Fatalf("partial = %+v, want empty zero-tick prefix", res)
	}
}

// TestClusterHeights: HeightLevels reports the final queue-depth
// distribution through the histogram kernel, consistent with the final
// array.
func TestClusterHeights(t *testing.T) {
	a := clusterArray(t, 1, 2, 3, 4)
	res, err := runCluster(ClusterConfig{
		Array: a, Ticks: 6, Arrivals: 20, Seed: 8, Shards: 2,
		ObsOptions: ObsOptions{HeightLevels: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HeightCounts) != 4 {
		t.Fatalf("HeightCounts rows = %d, want 4", len(res.HeightCounts))
	}
	var atLeast1 int64
	for i := 0; i < res.Array.N(); i++ {
		if float64(res.Array.Balls(i))/float64(res.Array.Capacity(i)) >= 1 {
			atLeast1++
		}
	}
	if got := res.HeightCounts[0].Bins.Mean(); got != float64(atLeast1) {
		t.Fatalf("bins at load >= 1: rows say %v, array says %d", got, atLeast1)
	}
}

// TestClusterDispatch: the RunSpec wiring — engine selection,
// exclusivity against Stream, field-named unsupported errors, and the
// result mapping into the classic shape.
func TestClusterDispatch(t *testing.T) {
	a := clusterArray(t, 2, 3, 4, 5)
	params := &ClusterParams{Ticks: 6, ArrivalsPerTick: 8}
	res, err := Dispatch(RunSpec{Config: Config{Array: a, Seed: 2}, Cluster: params})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != EngineCluster || res.Cluster == nil {
		t.Fatalf("engine %q, Cluster %v; want cluster engine with full result", res.Engine, res.Cluster)
	}
	if res.Cluster.Ticks != 6 || res.Balls.Mean() != float64(res.Cluster.FinalQueued) {
		t.Fatalf("result mapping: %+v", res.Cluster)
	}

	if _, err := Dispatch(RunSpec{Config: Config{Array: a}, Engine: EngineCluster}); err == nil || !strings.Contains(err.Error(), "RunSpec.Cluster") {
		t.Fatalf("engine cluster without params: %v", err)
	}
	if _, err := Dispatch(RunSpec{Config: Config{Array: a}, Engine: EngineSharded, Cluster: params}); err == nil || !strings.Contains(err.Error(), "cluster spec") {
		t.Fatalf("sharded on a cluster spec: %v", err)
	}
	if _, err := Dispatch(RunSpec{Config: Config{Array: a}, Cluster: params, Stream: &StreamParams{Rounds: 2}}); err == nil || !strings.Contains(err.Error(), "not both") {
		t.Fatalf("stream+cluster spec: %v", err)
	}
	bad := []struct {
		mut  func(*RunSpec)
		want string
	}{
		{func(s *RunSpec) { s.Balls = 10 }, "ArrivalsPerTick"},
		{func(s *RunSpec) { s.Reps = 3 }, "single trajectory"},
		{func(s *RunSpec) { s.CollectLoadVector = true }, "CollectLoadVector"},
		{func(s *RunSpec) { s.HeightBins = 2 }, "height histogram"},
	}
	for _, tc := range bad {
		spec := RunSpec{Config: Config{Array: a}, Cluster: params}
		tc.mut(&spec)
		if _, err := Dispatch(spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("unsupported spec: err = %v, want mention of %q", err, tc.want)
		}
	}
	if _, err := ParseEngine("cluster"); err != nil {
		t.Fatal(err)
	}
}

// TestClusterGoldenCounters: one pinned stress spec, every counter
// pinned. Catches any silent change to the routing, placement, churn
// or retry sequencing — the cluster analogue of the classic engine's
// golden tests.
func TestClusterGoldenCounters(t *testing.T) {
	churn, retry := stressPlan()
	a := clusterArray(t, 4, 1, 6, 2, 8, 3, 5, 7, 2, 4)
	res, err := runCluster(ClusterConfig{
		Array: a, Ticks: 30, Arrivals: 38, Seed: 5, Shards: 4,
		Churn: churn, Retry: retry, ShedThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := [...]int64{res.Arrived, res.Shed, res.Admitted, res.Dispatched, res.Completed,
		res.TimedOut, res.Retried, res.Failed, res.Redistributed, res.FinalQueued,
		res.PendingRetry, int64(res.Crashes), int64(res.Recoveries), res.Latency.Count(), res.Latency.Sum()}
	want := [...]int64{1140, 131, 1009, 1103, 975,
		30, 27, 0, 67, 31,
		3, 10, 9, 975, 2083}
	if got != want {
		t.Fatalf("golden counters drifted:\n got %v\nwant %v", got, want)
	}
}
