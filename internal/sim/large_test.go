package sim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/bins"
	"repro/internal/dist"
	"repro/internal/protocol"
)

func largeArray(t testing.TB, n int) *bins.Array {
	t.Helper()
	a, err := bins.TwoClass(n/2, 1, n-n/2, 10)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRunLargeValidation(t *testing.T) {
	if _, err := RunLarge(LargeConfig{}); err == nil {
		t.Error("nil array accepted")
	}
	a := largeArray(t, 100)
	if _, err := RunLarge(LargeConfig{Array: a, Balls: -1}); err == nil {
		t.Error("negative balls accepted")
	}
	if _, err := RunLarge(LargeConfig{Array: a, BallsFactor: -0.5}); err == nil {
		t.Error("negative factor accepted")
	}
	if _, err := RunLarge(LargeConfig{Array: a, Shards: -3}); err == nil {
		t.Error("negative shards accepted")
	}
	if _, err := RunLarge(LargeConfig{Array: a, Shards: 101}); err == nil {
		t.Error("shards > n accepted")
	}
}

func TestRunLargeDefaults(t *testing.T) {
	a := largeArray(t, 1000)
	res, err := RunLarge(LargeConfig{Array: a, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != DefaultShards {
		t.Fatalf("shards = %d, want %d", res.Shards, DefaultShards)
	}
	if res.Balls != a.TotalCapacity() {
		t.Fatalf("balls = %d, want C = %d", res.Balls, a.TotalCapacity())
	}
	if got := res.Array.TotalBalls(); got != res.Balls {
		t.Fatalf("final array holds %d balls, want %d", got, res.Balls)
	}
	var routed int64
	for _, c := range res.ShardBalls {
		routed += c
	}
	if routed != res.Balls {
		t.Fatalf("routed %d balls across shards, want %d", routed, res.Balls)
	}
	if res.AvgLoad != 1 {
		t.Fatalf("avg load %v, want 1 (m = C)", res.AvgLoad)
	}
	if res.MaxLoad < res.AvgLoad {
		t.Fatalf("max load %v below average %v", res.MaxLoad, res.AvgLoad)
	}
	// the caller's array must stay untouched
	if a.TotalBalls() != 0 {
		t.Fatal("RunLarge mutated the config array")
	}
	// BallsFactor scales C, explicit Balls overrides it
	fres, err := RunLarge(LargeConfig{Array: a, Seed: 1, BallsFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fres.Balls != 2*a.TotalCapacity() {
		t.Fatalf("factor 2 placed %d balls, want %d", fres.Balls, 2*a.TotalCapacity())
	}
	ores, err := RunLarge(LargeConfig{Array: a, Seed: 1, Balls: 7, BallsFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ores.Balls != 7 {
		t.Fatalf("explicit Balls overridden: %d", ores.Balls)
	}
	// tiny-n default: shards clamp to n
	small, err := bins.Uniform(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := RunLarge(LargeConfig{Array: small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sres.Shards != 3 {
		t.Fatalf("default shards on n=3: %d, want 3", sres.Shards)
	}
}

// TestRunLargeBitIdenticalAcrossWorkers is the engine's core contract:
// the full final bin state is bit-identical for any worker count.
func TestRunLargeBitIdenticalAcrossWorkers(t *testing.T) {
	a := largeArray(t, 2000)
	var base *LargeResult
	for _, workers := range []int{1, 2, 3, 8} {
		res, err := RunLarge(LargeConfig{
			Array: a, Seed: 42, Shards: 16, Workers: workers,
			Placer: protocol.GreedyFactory(4),
		})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.MaxLoad != base.MaxLoad || res.Deviation != base.Deviation {
			t.Fatalf("workers=%d: stats differ", workers)
		}
		for i := 0; i < res.Array.N(); i++ {
			if res.Array.Balls(i) != base.Array.Balls(i) {
				t.Fatalf("workers=%d: bin %d has %d balls, want %d",
					workers, i, res.Array.Balls(i), base.Array.Balls(i))
			}
		}
	}
}

// TestRunLargeShardsArePartOfTheModel: changing Shards legitimately
// changes the result (like changing Seed) — pin that it does, so an
// accidental coupling of Shards to Workers would be caught by the
// bit-identity test above rather than hidden here.
func TestRunLargeShardsArePartOfTheModel(t *testing.T) {
	a := largeArray(t, 2000)
	r16, err := RunLarge(LargeConfig{Array: a, Seed: 7, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	r32, err := RunLarge(LargeConfig{Array: a, Seed: 7, Shards: 32})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.N(); i++ {
		if r16.Array.Balls(i) != r32.Array.Balls(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("16 and 32 shards produced identical states (suspicious)")
	}
}

// TestRunLargeRoutingProportional: with single-choice placement the
// final per-bin counts expose the end-to-end selection distribution;
// the two-level (shard, then bin) factorisation must reproduce the
// configured marginal. Compare class totals against expectation.
func TestRunLargeRoutingProportional(t *testing.T) {
	const n = 1000
	a := largeArray(t, n) // C = 500·1 + 500·10 = 5500
	res, err := RunLarge(LargeConfig{
		Array:  a,
		Seed:   3,
		Balls:  200000,
		Placer: protocol.SingleFactory(),
		Shards: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	var small, large int64
	for i := 0; i < n; i++ {
		if res.Array.Capacity(i) == 1 {
			small += res.Array.Balls(i)
		} else {
			large += res.Array.Balls(i)
		}
	}
	wantSmall := 200000.0 * 500.0 / 5500.0
	if got := float64(small); math.Abs(got-wantSmall) > 0.05*wantSmall {
		t.Fatalf("small-class balls %v, want ~%v", got, wantSmall)
	}
	if small+large != 200000 {
		t.Fatalf("total %d", small+large)
	}
}

// TestRunLargeZeroWeightShards: a distribution that zeroes out whole
// shards (top-only zeroes every small bin, and the two-class array is
// contiguous) must route nothing there and not try to build placers on
// all-zero weight vectors.
func TestRunLargeZeroWeightShards(t *testing.T) {
	a := largeArray(t, 1000)
	res, err := RunLarge(LargeConfig{
		Array:  a,
		Seed:   5,
		Dist:   dist.TopOnly{MinCapacity: 10},
		Shards: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.N(); i++ {
		if res.Array.Capacity(i) < 10 && res.Array.Balls(i) != 0 {
			t.Fatalf("small bin %d received balls under top-only", i)
		}
	}
}

// TestRunLargeGoldenValues pins exact outputs for a fixed (seed,
// shards) configuration, the way golden_test.go pins placement
// sequences: the routing substreams (stream 0 block substreams), the
// shard stream layout (1+s) and the per-shard kernels are all
// deterministic, so any change to these values means the sharded draw
// stream was redefined — which silently invalidates every pinned
// large-run result and must be deliberate. Re-pinned exactly once
// when routing moved from the serial per-ball alias pass to
// block-wise multinomial count generation; frozen from that point on.
func TestRunLargeGoldenValues(t *testing.T) {
	a := largeArray(t, 512)
	res, err := RunLarge(LargeConfig{Array: a, Seed: 20260727, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	wantShardBalls := []int64{62, 68, 77, 64, 663, 636, 603, 643}
	for s, want := range wantShardBalls {
		if res.ShardBalls[s] != want {
			t.Fatalf("routing stream changed: shard %d got %d balls, golden %d",
				s, res.ShardBalls[s], want)
		}
	}
	if res.MaxLoad != 3 || res.Deviation != 2 {
		t.Fatalf("max/deviation = %v/%v, golden 3/2", res.MaxLoad, res.Deviation)
	}
	var h uint64
	for i := 0; i < res.Array.N(); i++ {
		h = h*1315423911 + uint64(res.Array.Balls(i))
	}
	const wantHash = uint64(17615593939143187072)
	if h != wantHash {
		t.Fatalf("final-state hash %d, golden %d (shard streams changed)", h, wantHash)
	}
}

// TestRunLargeCheckpointsDoNotMoveDraws is the tentpole contract of
// the observation subsystem: requesting checkpoints segments each
// shard's PlaceBatch at the block-aligned cuts, and segmentation must
// not move a single draw — the final state (and hence the golden
// hash of TestRunLargeGoldenValues' configuration) is bit-identical
// with and without checkpoints.
func TestRunLargeCheckpointsDoNotMoveDraws(t *testing.T) {
	a := largeArray(t, 512)
	plain, err := RunLarge(LargeConfig{Array: a, Seed: 20260727, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	cped, err := RunLarge(LargeConfig{
		Array: a, Seed: 20260727, Shards: 8,
		ObsOptions: ObsOptions{Checkpoints: []int64{300, 1500, 2500}, HeightLevels: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cped.MaxLoad != plain.MaxLoad || cped.Deviation != plain.Deviation {
		t.Fatalf("checkpoints moved final stats: %v/%v vs %v/%v",
			cped.MaxLoad, cped.Deviation, plain.MaxLoad, plain.Deviation)
	}
	for i := 0; i < plain.Array.N(); i++ {
		if cped.Array.Balls(i) != plain.Array.Balls(i) {
			t.Fatalf("bin %d: %d balls with checkpoints, %d without",
				i, cped.Array.Balls(i), plain.Array.Balls(i))
		}
	}
	if len(cped.Checkpoints) != 3 || len(cped.HeightCounts) != 4 {
		t.Fatalf("observations missing: %d checkpoints, %d height rows",
			len(cped.Checkpoints), len(cped.HeightCounts))
	}
}

// TestRunLargeCheckpointModel pins the sharded cut rule: each shard's
// cut is a multiple of the kernel block size, so the realised ball
// count at every cut is a multiple of protocol.BlockSize and at most
// the requested count, and observations grow monotonically. A cut too
// small to realise any block-aligned state at all (here: 1 ball) is
// skipped like a cut beyond m rather than recorded as max load 0.
func TestRunLargeCheckpointModel(t *testing.T) {
	a := largeArray(t, 4000) // C = 22000
	res, err := RunLarge(LargeConfig{
		Array: a, Seed: 9, Shards: 4,
		ObsOptions: ObsOptions{Checkpoints: []int64{1, 5000, 15000, 900000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) != 4 {
		t.Fatalf("%d checkpoint rows", len(res.Checkpoints))
	}
	if tiny := &res.Checkpoints[0]; tiny.Reps() != 0 {
		t.Fatalf("empty-realisation cut observed %d times (max %v)", tiny.Reps(), tiny.MaxLoad.Mean())
	}
	var prevReal float64
	for i, row := range res.Checkpoints[1:3] {
		if row.Reps() != 1 {
			t.Fatalf("cut %d observed %d times in a single run", i, row.Reps())
		}
		real := row.RealBalls.Mean()
		if int64(real)%protocol.BlockSize != 0 {
			t.Fatalf("cut %d realised %v balls, not a multiple of %d", i, real, protocol.BlockSize)
		}
		if real > float64(row.Balls) {
			t.Fatalf("cut %d realised %v > requested %d", i, real, row.Balls)
		}
		if real < prevReal {
			t.Fatalf("realised balls shrank: %v -> %v", prevReal, real)
		}
		prevReal = real
		if row.Deviation.Mean() < 0 {
			t.Fatalf("cut %d negative deviation", i)
		}
	}
	// the cut beyond m = C stays unobserved, visible through Reps
	if beyond := &res.Checkpoints[3]; beyond.Reps() != 0 {
		t.Fatalf("cut beyond m observed %d times", beyond.Reps())
	}
}

// TestRunLargeCheckpointsBitIdenticalAcrossWorkers extends the core
// worker-independence contract to the observation pipeline.
func TestRunLargeCheckpointsBitIdenticalAcrossWorkers(t *testing.T) {
	a := largeArray(t, 2000)
	var base *LargeResult
	for _, workers := range []int{1, 2, 3, 8} {
		res, err := RunLarge(LargeConfig{
			Array: a, Seed: 42, Shards: 16, Workers: workers,
			ObsOptions: ObsOptions{Checkpoints: []int64{2000, 6000, 10000}, HeightLevels: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(res.Checkpoints, base.Checkpoints) {
			t.Fatalf("workers=%d: checkpoint rows differ", workers)
		}
		if !reflect.DeepEqual(res.HeightCounts, base.HeightCounts) {
			t.Fatalf("workers=%d: height rows differ", workers)
		}
	}
}

// TestRunLargeHeights cross-checks the obs.Heights counts against a
// direct scan of the final array.
func TestRunLargeHeights(t *testing.T) {
	a := largeArray(t, 1000)
	res, err := RunLarge(LargeConfig{
		Array: a, Seed: 4, Shards: 8, BallsFactor: 3, ObsOptions: ObsOptions{HeightLevels: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HeightCounts) != 5 {
		t.Fatalf("%d height rows", len(res.HeightCounts))
	}
	for k := int64(1); k <= 5; k++ {
		var want int64
		for i := 0; i < res.Array.N(); i++ {
			if res.Array.Balls(i) >= k*res.Array.Capacity(i) {
				want++
			}
		}
		row := res.HeightCounts[k-1]
		if row.Level != k || int64(row.Bins.Mean()) != want {
			t.Fatalf("level %d: got %v bins, scan says %d", k, row.Bins.Mean(), want)
		}
	}
}

// TestRunLargeAdoptArray: AdoptArray mutates the caller's array in
// place (saving the O(n) clone) and produces the identical result.
func TestRunLargeAdoptArray(t *testing.T) {
	a := largeArray(t, 800)
	ref, err := RunLarge(LargeConfig{Array: a, Seed: 6, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	own := largeArray(t, 800)
	res, err := RunLarge(LargeConfig{Array: own, Seed: 6, Shards: 8, AdoptArray: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Array != own {
		t.Fatal("AdoptArray cloned anyway")
	}
	if own.TotalBalls() != ref.Balls {
		t.Fatalf("adopted array holds %d balls, want %d", own.TotalBalls(), ref.Balls)
	}
	for i := 0; i < ref.Array.N(); i++ {
		if res.Array.Balls(i) != ref.Array.Balls(i) {
			t.Fatalf("bin %d differs under AdoptArray", i)
		}
	}
}

func TestRunLargeObservationValidation(t *testing.T) {
	a := largeArray(t, 100)
	if _, err := RunLarge(LargeConfig{Array: a, ObsOptions: ObsOptions{Checkpoints: []int64{0}}}); err == nil {
		t.Error("checkpoint at 0 balls accepted")
	}
	if _, err := RunLarge(LargeConfig{Array: a, ObsOptions: ObsOptions{HeightLevels: -1}}); err == nil {
		t.Error("negative HeightLevels accepted")
	}
}
