// Sharded single-run engine: one huge repetition (n up to 10^7 bins)
// partitioned across workers, so a single game scales across cores the
// way Run scales repetitions.
//
// # Model and determinism contract
//
// The bin array is split into Shards contiguous shards of (nearly)
// equal size. Placement is a two-level protocol:
//
//  1. Routing: every ball is routed to a shard with probability
//     proportional to the shard's total selection weight, by a
//     sequential pass over a dedicated routing stream (stream 0 of the
//     base seed). Only the per-shard ball counts survive this pass.
//  2. Placement: each shard runs the configured protocol over its own
//     bins, with selection weights restricted (and renormalised by the
//     alias build) to the shard, its own pre-built alias tables, and
//     its own RNG stream (stream 1+s for shard s), placing exactly the
//     balls routed to it.
//
// Because a candidate's marginal probability factorises as
// P(shard)·P(bin | shard), each individual candidate draw has exactly
// the configured distribution; the relaxation is that all d choices of
// one ball land in the same shard, so load comparisons never cross a
// shard boundary. This is the standard partitioned-d-choice relaxation
// (cf. the batched-arrival relaxation in protocol.Batched): for shards
// of roughly equal total weight the per-shard games are independent
// copies of the original game at n/Shards scale.
//
// The result is a deterministic function of (capacities, distribution,
// protocol, balls, Seed, Shards) and — bit for bit — independent of
// Workers, because shard s's placement depends only on its own stream
// and its routed count. Workers only schedules which core runs which
// shard. Changing Shards changes the game (and the stream), like
// changing Seed.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/bins"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/sampling"
	"repro/internal/xrand"
)

// DefaultShards is the shard count used when LargeConfig.Shards is 0.
// It is a fixed constant (not derived from the machine) so results are
// reproducible across environments; 64 shards keep 4-16 workers busy
// with low imbalance while leaving per-shard arrays large enough that
// the within-shard game is statistically meaningful.
const DefaultShards = 64

// LargeConfig describes one sharded single-run experiment.
type LargeConfig struct {
	// Array supplies the capacities (required). It is cloned and reset;
	// the caller's array is never mutated.
	Array *bins.Array
	// Dist chooses bin selection weights. Nil defaults to
	// dist.Proportional{}.
	Dist dist.Distribution
	// Placer builds the per-shard allocation protocol. Nil defaults to
	// the paper's Algorithm 1 with d = 2.
	Placer protocol.Factory
	// Balls is the number of balls to place. When 0, the count is
	// BallsFactor·C (rounded), and when BallsFactor is also 0 it
	// defaults to exactly C — the same rules as Config.
	Balls int64
	// BallsFactor scales the total capacity into a ball count.
	BallsFactor float64
	// Seed is the base RNG seed. Stream 0 routes balls to shards;
	// stream 1+s places shard s.
	Seed uint64
	// Shards is the number of contiguous shards (0 = DefaultShards,
	// clamped to the number of bins). Part of the model: changing it
	// changes the result, like changing Seed.
	Shards int
	// Workers caps parallelism (0 = GOMAXPROCS). Never affects the
	// result, only the wall clock.
	Workers int

	// Checkpoints lists global ball counts at which running (max,
	// max − average) load observations are taken. There is no global
	// ball order in a sharded run, so a checkpoint at B is realised as
	// per-shard cuts: the number of balls among the first B routed to
	// each shard, aligned down to the placement kernel's block size
	// (protocol.BlockSize) so snapshots land between SampleBatch
	// blocks. The realised ball count (CheckpointRow.RealBalls, a
	// multiple of the block size, <= B) reflects that; a cut whose
	// realisation is empty (B below ~Shards·BlockSize) is skipped
	// like a cut beyond m, visible through Reps. Like Shards,
	// the cut rule is part of the model: it depends only on (Seed,
	// Shards, Checkpoints), never on Workers — and requesting
	// checkpoints never moves a single draw: the final state is
	// bit-identical with and without them.
	Checkpoints []int64
	// HeightLevels, when positive, requests the count of bins at final
	// load >= k for k = 1..HeightLevels (obs.Heights).
	HeightLevels int
	// AdoptArray lets the engine take ownership of Array: it is reset
	// and mutated in place instead of cloned first. The public
	// wrappers, which build a private array from a capacity slice,
	// use it to avoid a transient second O(n) array at n = 10^7.
	AdoptArray bool
}

// LargeResult aggregates one sharded run.
type LargeResult struct {
	// N is the number of bins; Shards the realised shard count.
	N      int
	Shards int
	// Balls is the total number of balls placed (= cfg.Balls or C).
	Balls int64
	// MaxLoad, AvgLoad and Deviation are the final whole-array load
	// statistics (deviation = max − average).
	MaxLoad   float64
	AvgLoad   float64
	Deviation float64
	// ShardBalls[s] is the number of balls routed to shard s.
	ShardBalls []int64
	// Checkpoints holds the single run's checkpoint observations in
	// ascending cut order (each row has one observation; only when
	// Checkpoints were requested).
	Checkpoints []obs.CheckpointRow
	// HeightCounts holds the bins-at-load>=k counts of the final state
	// (only when HeightLevels was requested).
	HeightCounts []obs.HeightRow
	// Array is the final bin state (owned by the caller).
	Array *bins.Array
}

func (c *LargeConfig) validate() (shards int, err error) {
	if c.Array == nil {
		return 0, fmt.Errorf("sim: RunLarge needs an Array")
	}
	if c.Balls < 0 {
		return 0, fmt.Errorf("sim: Balls = %d", c.Balls)
	}
	if c.BallsFactor < 0 {
		return 0, fmt.Errorf("sim: BallsFactor = %v", c.BallsFactor)
	}
	if c.HeightLevels < 0 {
		return 0, fmt.Errorf("sim: HeightLevels = %d", c.HeightLevels)
	}
	if _, err := obs.NormalizeCuts(c.Checkpoints); err != nil {
		return 0, fmt.Errorf("sim: %w", err)
	}
	n := c.Array.N()
	shards = c.Shards
	if shards == 0 {
		shards = DefaultShards
		if shards > n {
			shards = n
		}
	} else if shards < 1 || shards > n {
		return 0, fmt.Errorf("sim: Shards = %d outside [1,%d]", c.Shards, n)
	}
	return shards, nil
}

// RunLarge executes one sharded single run. See the package comment of
// this file for the model and the determinism contract.
func RunLarge(cfg LargeConfig) (*LargeResult, error) {
	shards, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	n := cfg.Array.N()
	arr := cfg.Array
	if !cfg.AdoptArray {
		arr = cfg.Array.Clone()
	}
	arr.Reset()

	d := cfg.Dist
	if d == nil {
		d = dist.Proportional{}
	}
	weights, err := d.Weights(arr)
	if err != nil {
		return nil, fmt.Errorf("sim: RunLarge weights: %w", err)
	}
	factory := cfg.Placer
	if factory == nil {
		factory = protocol.GreedyFactory(2)
	}

	bounds, _, router, err := shardPlan(weights, n, shards)
	if err != nil {
		return nil, fmt.Errorf("sim: RunLarge router: %w", err)
	}

	m := (&Config{Balls: cfg.Balls, BallsFactor: cfg.BallsFactor}).ballCount(arr.TotalCapacity())

	cuts, _ := obs.NormalizeCuts(cfg.Checkpoints) // validated above
	nCuts := obs.CountReached(cuts, m)
	var prefix [][]int64
	var realized []int64
	if nCuts > 0 {
		prefix = make([][]int64, nCuts)
		for k := range prefix {
			prefix[k] = make([]int64, shards)
		}
		realized = make([]int64, nCuts)
	}

	// Phase 1 — deterministic sequential routing on stream 0: only the
	// per-shard counts matter (plus, when checkpoints are requested,
	// the per-shard prefix counts at each cut), because within a shard
	// the placement order is the shard's own affair.
	counts := make([]int64, shards)
	rr := xrand.NewStream(cfg.Seed, 0)
	routeBalls(rr, router, counts, m, cuts[:nCuts], prefix)
	if nCuts > 0 {
		obs.AlignShardCuts(prefix, protocol.BlockSize, realized)
	}

	// Shard views are built sequentially, before any worker starts:
	// Array.Shard is a parent method, and the bins.Shard contract
	// forbids running parent methods while views mutate concurrently.
	// A shard with no routed balls gets no view and no placer — which
	// also keeps zero-weight shards (e.g. under a top-only
	// distribution) from failing the placer build.
	views := make([]*bins.Array, shards)
	for s := 0; s < shards; s++ {
		if counts[s] == 0 {
			continue
		}
		views[s], err = arr.Shard(bounds[s], bounds[s+1])
		if err != nil {
			return nil, fmt.Errorf("sim: RunLarge shard %d: %w", s, err)
		}
	}

	// Phase 2 — parallel per-shard placement. Shard s touches only its
	// own view, placer and stream, so any scheduling of shards onto
	// workers produces identical bits. Placer construction (alias
	// table builds, O(shard size)) runs inside the workers too: it
	// reads only the shard's own weights slice and view.
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	// track[k][s] is shard s's local running max at cut k; each shard
	// writes only its own column, so any worker schedule produces the
	// same matrix.
	var track [][]float64
	if nCuts > 0 {
		track = make([][]float64, nCuts)
		for k := range track {
			track[k] = make([]float64, shards)
		}
	}
	errs := make([]error, shards)
	shardCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range shardCh {
				errs[s] = placeShard(views[s], weights[bounds[s]:bounds[s+1]], factory, cfg.Seed, counts[s], s, prefix, track)
			}
		}()
	}
	for s := 0; s < shards; s++ {
		shardCh <- s
	}
	close(shardCh)
	wg.Wait()
	for s := 0; s < shards; s++ {
		if errs[s] != nil {
			return nil, fmt.Errorf("sim: RunLarge shard %d: %w", s, errs[s])
		}
	}

	res := &LargeResult{
		N:          n,
		Shards:     shards,
		Balls:      m,
		ShardBalls: counts,
		Array:      arr,
	}
	if len(cuts) > 0 {
		cp := obs.NewCheckpoints(cuts)
		c := arr.TotalCapacity()
		maxs := make([]float64, nCuts)
		combineShardMaxima(track, maxs)
		for k := 0; k < nCuts; k++ {
			// A cut so small that every shard's block-aligned prefix is
			// empty realises no state at all; skip it like a cut beyond
			// m (visible through Reps) instead of recording a fictitious
			// max load of 0.
			if realized[k] == 0 {
				continue
			}
			cp.Observe(k, realized[k], c, maxs[k])
		}
		res.Checkpoints = cp.Rows()
	}

	arr.Recount()
	max := arr.MaxLoad()
	avg := arr.AverageLoad()
	res.MaxLoad = max
	res.AvgLoad = avg
	res.Deviation = max - avg
	if cfg.HeightLevels > 0 {
		hl := obs.NewHeights(cfg.HeightLevels)
		if err := hl.Snapshot(obs.Final, arr, m); err != nil {
			return nil, fmt.Errorf("sim: RunLarge heights: %w", err)
		}
		res.HeightCounts = hl.Rows()
	}
	return res, nil
}

// routeBalls routes m balls through the router on stream rr,
// incrementing counts. When cuts are requested (ascending, every cut
// <= m), prefix[k] receives a snapshot of the per-shard counts after
// the first cuts[k] balls — the raw material of the block-aligned
// checkpoint cut plan. With no cuts this is the original tight
// routing loop, so the no-collector path costs nothing extra.
func routeBalls(rr *xrand.Rand, router *sampling.AliasTable, counts []int64, m int64, cuts []int64, prefix [][]int64) {
	if len(cuts) == 0 {
		for i := int64(0); i < m; i++ {
			counts[router.Sample(rr)]++
		}
		return
	}
	next := 0
	for i := int64(1); i <= m; i++ {
		counts[router.Sample(rr)]++
		for next < len(cuts) && cuts[next] == i {
			copy(prefix[next], counts)
			next++
		}
	}
}

// shardPlan computes the contiguous shard boundaries, each shard's
// total selection weight and the routing alias table over those
// weights. RunLarge and RunLargeMonte share it so the shard geometry
// and routing distribution can never diverge: the Monte engine's
// "repetition 0 reproduces RunLarge bit for bit" contract depends on
// both engines using the identical plan.
func shardPlan(weights []float64, n, shards int) (bounds []int, shardW []float64, router *sampling.AliasTable, err error) {
	bounds = make([]int, shards+1)
	for s := 0; s <= shards; s++ {
		bounds[s] = s * n / shards
	}
	shardW = make([]float64, shards)
	for s := 0; s < shards; s++ {
		for i := bounds[s]; i < bounds[s+1]; i++ {
			shardW[s] += weights[i]
		}
	}
	router, err = sampling.NewAlias(shardW)
	if err != nil {
		return nil, nil, nil, err
	}
	return bounds, shardW, router, nil
}

// placeShard runs shard s's game: its own pre-built view, its own
// alias tables and its own RNG stream. A nil view means no balls were
// routed here — nothing to do. When checkpoint cuts are requested
// (cuts[k][s] is the block-aligned count of this shard's balls at cut
// k), placement is segmented at the cuts and the shard-local running
// max is recorded into track[k][s]. Segmenting PlaceBatch never moves
// a draw — PlaceBatch(a)+PlaceBatch(b) consumes exactly the draws of
// PlaceBatch(a+b) — so the final state is bit-identical with and
// without checkpoints (pinned by tests).
func placeShard(view *bins.Array, weights []float64, factory protocol.Factory, seed uint64, count int64, s int, cuts [][]int64, track [][]float64) error {
	if view == nil {
		return nil
	}
	placer, err := factory(view, weights)
	if err != nil {
		return err
	}
	rs := xrand.NewStream(seed, uint64(s)+1)
	placeShardSegments(placer, view, rs, count, s, cuts, track)
	return nil
}

// placeShardSegments runs one shard's placement, segmented at the
// block-aligned cuts (cuts[k][s]), recording the shard-local running
// max into track[k][s]. It is shared by RunLarge's placeShard and
// RunLargeMonte's placement tasks so the cut schedule can never
// diverge between the engines — the "Reps = 1 reproduces a
// checkpointed RunLarge bit for bit" contract depends on both using
// this exact schedule. With no cuts it is a single PlaceBatch.
func placeShardSegments(placer protocol.Placer, view *bins.Array, rs *xrand.Rand, count int64, s int, cuts [][]int64, track [][]float64) {
	placed := int64(0)
	for k := range cuts {
		cut := cuts[k][s]
		placer.PlaceBatch(view, rs, cut-placed)
		placed = cut
		if cut > 0 {
			track[k][s] = view.MaxLoad()
		}
	}
	placer.PlaceBatch(view, rs, count-placed)
}

// combineShardMaxima reduces the per-shard cut maxima spatially:
// out[k] = max over shards of track[k][s] — a pure max in shard
// order, order-independent for finite floats, so any worker schedule
// that filled track produces the same combination.
func combineShardMaxima(track [][]float64, out []float64) {
	for k := range track {
		max := 0.0
		for _, v := range track[k] {
			if v > max {
				max = v
			}
		}
		out[k] = max
	}
}
