// Package sim is the Monte-Carlo simulation engine: it runs a configured
// balls-into-bins game for many independent repetitions in parallel and
// aggregates the metrics the paper's figures report.
//
// # Determinism
//
// Repetition i of a run with base seed s draws every random decision
// (random capacities, bin choices, tie breaks) from the dedicated stream
// xrand.NewStream(s, i). Repetitions are processed in fixed-size chunks;
// chunk partial aggregates are merged in chunk order. The result is
// bit-identical for any worker count, including 1.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/bins"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// chunkSize is the number of repetitions aggregated into one mergeable
// partial. It is a constant (not tunable) so that results do not depend
// on the execution environment.
const chunkSize = 8

// Config describes one experiment: the bin array (fixed or per-repetition
// random), the selection probability distribution, the protocol, the
// number of balls, and what to collect.
type Config struct {
	// Array supplies fixed capacities; it is cloned per worker and reset
	// between repetitions. Ignored when ArrayFn is set.
	Array *bins.Array
	// ArrayFn builds a fresh (possibly random) array per repetition.
	// All repetitions must produce the same number of bins.
	ArrayFn func(r *xrand.Rand) (*bins.Array, error)
	// Dist chooses bin selection weights. Nil defaults to
	// dist.Proportional{} — the paper's standard assumption.
	Dist dist.Distribution
	// Placer builds the allocation protocol. Nil defaults to the paper's
	// Algorithm 1 with d = 2.
	Placer protocol.Factory
	// Balls fixes the number of balls per repetition. When 0, the count
	// is BallsFactor·C (rounded), and when BallsFactor is also 0 it
	// defaults to exactly C — the paper's m = C baseline.
	Balls int64
	// BallsFactor scales the realised total capacity into a ball count.
	BallsFactor float64
	// Reps is the number of independent repetitions (>= 1).
	Reps int
	// Seed is the base RNG seed.
	Seed uint64
	// Workers caps parallelism; 0 means GOMAXPROCS.
	Workers int
	// Context, when non-nil, arms cooperative cancellation: workers
	// poll it between repetitions and, once it fires, Run returns a
	// *CancelledError together with a deterministic partial result
	// covering a contiguous repetition prefix — bit-identical to a run
	// configured with that many Reps. Nil behaves like
	// context.Background().
	Context context.Context

	// CollectLoadVector requests the element-wise mean of the sorted
	// (non-increasing) load vector across repetitions — the "load
	// distribution" curves of Figs 1-5 and 10-11.
	CollectLoadVector bool
	// ClassLoadVectors requests per-capacity-class mean sorted load
	// vectors (Figs 12-13). Requires a fixed Array (class sizes must not
	// vary across repetitions).
	ClassLoadVectors []int64
	// TrackClasses requests, per capacity class, the fraction of
	// repetitions in which a bin of that class attains the maximum load
	// (Figs 7 and 9).
	TrackClasses []int64
	// ClassMaxLoads requests, per listed capacity class, an accumulator
	// of the per-repetition maximum load among the bins of that class —
	// the Observation 1 observable (mean and worst big-bin load).
	ClassMaxLoads []int64
	// ObsOptions is the shared observation-option block (checkpoints,
	// height levels, height histogram — see obsoptions.go). In the
	// classic engine Checkpoints are exact ball counts (Fig 16), and
	// every option is supported.
	ObsOptions
}

// CheckpointStat aggregates one checkpoint across repetitions. It is
// the obs.CheckpointRow of the unified observation subsystem; Reps()
// reports how many repetitions actually observed the cut (checkpoints
// beyond a repetition's ball count are skipped, not zero-filled).
type CheckpointStat = obs.CheckpointRow

// Result aggregates a run.
type Result struct {
	// N is the number of bins (identical across repetitions).
	N int
	// Engine records which engine produced the result. Set by Dispatch
	// (empty when an engine entry point was called directly).
	Engine Engine
	// Balls aggregates the per-repetition ball count (constant unless the
	// array is random and BallsFactor scaling is used).
	Balls stats.Accumulator
	// TotalCapacity aggregates the realised C per repetition.
	TotalCapacity stats.Accumulator
	// MaxLoad aggregates the final maximum load.
	MaxLoad stats.Accumulator
	// AvgLoad aggregates the final average load m/C.
	AvgLoad stats.Accumulator
	// Deviation aggregates final (max − average) load.
	Deviation stats.Accumulator
	// MeanSortedLoads is the element-wise mean of the sorted load vector
	// (only when CollectLoadVector).
	MeanSortedLoads []float64
	// ClassMaxFraction maps capacity class → fraction of repetitions in
	// which that class attains the maximum load (only for TrackClasses).
	ClassMaxFraction map[int64]float64
	// ClassMaxLoad maps capacity class → accumulator of the
	// per-repetition maximum load among bins of that class (only for
	// ClassMaxLoads).
	ClassMaxLoad map[int64]*stats.Accumulator
	// ClassMeanSortedLoads maps class → mean sorted load vector over the
	// bins of that class (only for ClassLoadVectors).
	ClassMeanSortedLoads map[int64][]float64
	// Checkpoints holds per-checkpoint aggregates in ascending ball
	// order (only when Checkpoints were requested).
	Checkpoints []CheckpointStat
	// HeightCounts holds per-level bins-at-load>=k aggregates (only
	// when HeightLevels was requested).
	HeightCounts []obs.HeightRow
	// Heights is the aggregated ball-height histogram (only when
	// HeightBins was requested).
	Heights *stats.Histogram
	// Stream is the full streaming-engine result (only when Dispatch
	// ran a streaming spec): round counters, final shard occupancies
	// and the round-indexed trajectory.
	Stream *StreamResult
	// Cluster is the full cluster-engine result (only when Dispatch ran
	// a cluster spec): request/churn accounting, the availability
	// trace, the latency histogram and the tick-indexed trajectory.
	Cluster *ClusterResult
}

type chunkPartial struct {
	balls, totalCap, maxLoad, avgLoad, deviation stats.Accumulator
	loads                                        *obs.SortedLoads
	classMaxCount                                map[int64]int64
	classMaxLoad                                 map[int64]*stats.Accumulator
	classLoadSum                                 map[int64][]float64
	cp                                           *obs.Checkpoints
	hl                                           *obs.Heights
	heights                                      *stats.Histogram
	err                                          error
	// reps counts the repetitions completed and folded into this
	// partial — the chunk runs its repetitions in order, so a chunk
	// abandoned by cancellation holds exactly its leading reps, which
	// is what makes the cancelled partial a contiguous prefix.
	reps int
}

func (c *Config) validate() error {
	if c.Array == nil && c.ArrayFn == nil {
		return fmt.Errorf("sim: no Array or ArrayFn configured")
	}
	if c.Reps < 1 {
		return fmt.Errorf("sim: Reps = %d, need >= 1", c.Reps)
	}
	if c.Balls < 0 {
		return fmt.Errorf("sim: Balls = %d, need >= 0", c.Balls)
	}
	if c.BallsFactor < 0 {
		return fmt.Errorf("sim: BallsFactor = %v, need >= 0", c.BallsFactor)
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: Workers = %d, need >= 0", c.Workers)
	}
	if len(c.ClassLoadVectors) > 0 && c.ArrayFn != nil {
		return fmt.Errorf("sim: ClassLoadVectors requires a fixed Array")
	}
	for i, class := range c.ClassLoadVectors {
		if class < 1 {
			return fmt.Errorf("sim: ClassLoadVectors[%d] = %d, capacity classes are >= 1", i, class)
		}
	}
	for i, class := range c.TrackClasses {
		if class < 1 {
			return fmt.Errorf("sim: TrackClasses[%d] = %d, capacity classes are >= 1", i, class)
		}
	}
	for i, class := range c.ClassMaxLoads {
		if class < 1 {
			return fmt.Errorf("sim: ClassMaxLoads[%d] = %d, capacity classes are >= 1", i, class)
		}
	}
	return c.ObsOptions.validate()
}

func (c *Config) distribution() dist.Distribution {
	if c.Dist == nil {
		return dist.Proportional{}
	}
	return c.Dist
}

func (c *Config) factory() protocol.Factory {
	if c.Placer == nil {
		return protocol.GreedyFactory(2)
	}
	return c.Placer
}

func (c *Config) ballCount(totalCapacity int64) int64 {
	if c.Balls > 0 {
		return c.Balls
	}
	if c.BallsFactor > 0 {
		m := int64(c.BallsFactor*float64(totalCapacity) + 0.5)
		if m < 1 {
			m = 1
		}
		return m
	}
	return totalCapacity
}

// Run executes the configured experiment.
//
// When cfg.Context fires mid-run, Run returns a partial *Result
// together with a *CancelledError: the partial covers a contiguous
// repetition prefix and is bit-identical to a run configured with that
// many Reps. A panic in repetition or setup code surfaces as a
// *PanicError, never as a crash or a hang.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cc := newCanceller(cfg.Context)
	defer cc.stop()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nChunks := (cfg.Reps + chunkSize - 1) / chunkSize
	if workers > nChunks {
		workers = nChunks
	}

	checkpoints, err := obs.NormalizeCuts(cfg.Checkpoints)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	partials := make([]chunkPartial, nChunks)
	chunkCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker(&cfg, cc, checkpoints, chunkCh, partials)
		}()
	}
	// Workers never exit before the close — a cancelled or panicked
	// worker keeps draining chunk indices (skipping the work) — so
	// these sends can never block forever.
	for ci := 0; ci < nChunks; ci++ {
		chunkCh <- ci
	}
	close(chunkCh)
	wg.Wait()

	res, completed, err := reduce(&cfg, checkpoints, partials)
	if err != nil {
		return nil, err
	}
	if completed < cfg.Reps {
		return res, &CancelledError{Engine: engRun, CompletedReps: completed, CompletedCuts: -1, CompletedRounds: -1, CompletedTicks: -1, Cause: cc.err()}
	}
	return res, nil
}

// workerScratch holds per-worker reusable buffers so the repetition
// loop does not allocate: the one-pass load histogram every
// distribution-shaped observable derives from. It is reused across all
// repetitions a worker processes; partial aggregates stay per chunk so
// merging remains deterministic.
type workerScratch struct {
	hist *bins.LoadHistogram
}

// histogram rebuilds the worker's reusable load histogram from arr in
// one pass. Random per-repetition arrays (ArrayFn) may change the
// class skeleton between repetitions; a skeleton miss rebuilds it once
// and retries — fixed-array runs never hit that path.
func (sc *workerScratch) histogram(arr *bins.Array) (*bins.LoadHistogram, error) {
	if sc.hist == nil {
		sc.hist = arr.NewLoadHistogram()
	}
	if err := arr.HistogramInto(sc.hist); err != nil {
		sc.hist = arr.NewLoadHistogram()
		if err := arr.HistogramInto(sc.hist); err != nil {
			return nil, err
		}
	}
	return sc.hist, nil
}

// needsHistogram reports whether the run requests any
// distribution-shaped observable — the collectors that derive from the
// one-pass load histogram. Max/avg-only runs keep the direct exact
// scan (and its allocation profile).
func (c *Config) needsHistogram() bool {
	return c.CollectLoadVector || c.HeightLevels > 0 ||
		len(c.TrackClasses) > 0 || len(c.ClassMaxLoads) > 0 || len(c.ClassLoadVectors) > 0
}

// snapshotCheckpoint folds checkpoint cut index cut at the given
// realised ball count. Runs that also request distribution-shaped
// observables route through the worker's reusable histogram — the
// same pairs that feed the final fold; checkpoint-only runs keep the
// direct exact scan, which is the same O(n) without the buffer.
// Both paths rank the argmax by cross-multiplied rationals, so the
// rows are bit-identical.
func snapshotCheckpoint(cfg *Config, p *chunkPartial, scratch *workerScratch, arr *bins.Array, cut int, balls int64) error {
	if !cfg.needsHistogram() {
		return p.cp.Snapshot(cut, arr, balls)
	}
	h, err := scratch.histogram(arr)
	if err != nil {
		return err
	}
	return p.cp.SnapshotHist(cut, h, balls)
}

// worker processes chunks of repetitions. Each worker keeps its own clone
// of a fixed array, a placer (and its alias tables) built once and reused
// across repetitions via Reset, and scratch buffers — workers never share
// mutable state. A worker NEVER stops draining chunkCh — setup errors,
// repetition errors, contained panics and cancellation all just skip the
// remaining work — because the sender in Run blocks until every chunk
// index is consumed.
func worker(cfg *Config, cc *canceller, checkpoints []int64, chunkCh <-chan int, partials []chunkPartial) {
	fixedArr, fixedPlacer, setupErr := workerSetup(cfg)
	var scratch workerScratch
	for ci := range chunkCh {
		p := &partials[ci]
		if setupErr != nil {
			p.err = setupErr
			continue
		}
		lo := ci * chunkSize
		hi := lo + chunkSize
		if hi > cfg.Reps {
			hi = cfg.Reps
		}
		for rep := lo; rep < hi; rep++ {
			// Repetition granularity is the classic engine's
			// cancellation check: one repetition bounds the latency.
			if cc.cancelled() {
				break
			}
			if err := runRepGuarded(cfg, checkpoints, uint64(rep), ci, fixedArr, fixedPlacer, &scratch, p); err != nil {
				p.err = err
				break
			}
			p.reps++
		}
	}
}

// workerSetup builds a worker's fixed array and placer, containing
// panics in distribution or protocol constructors into provenance
// errors so a failing build can never crash the process or strand the
// chunk sender.
func workerSetup(cfg *Config) (fixedArr *bins.Array, fixedPlacer protocol.Placer, err error) {
	defer func() {
		if r := recover(); r != nil {
			fixedArr, fixedPlacer = nil, nil
			err = newPanicError(engRun, "setup", -1, -1, r)
		}
	}()
	if cfg.ArrayFn != nil {
		return nil, nil, nil
	}
	fixedArr = cfg.Array.Clone()
	fixedArr.Reset()
	weights, err := cfg.distribution().Weights(fixedArr)
	if err == nil {
		fixedPlacer, err = cfg.factory()(fixedArr, weights)
	}
	return fixedArr, fixedPlacer, err
}

// runRepGuarded wraps one repetition in the fault-injection hook and a
// recover that converts panics (in ArrayFn, distribution, protocol or
// collector code) into provenance errors.
func runRepGuarded(cfg *Config, checkpoints []int64, rep uint64, chunk int, fixedArr *bins.Array, fixedPlacer protocol.Placer, scratch *workerScratch, p *chunkPartial) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError(engRun, "chunk", int(rep), chunk, r)
		}
	}()
	if fault.Enabled {
		fault.Hit(fault.Site{Engine: engRun, Op: fault.OpChunk, Rep: int(rep), Shard: -1, Block: -1})
	}
	return runRep(cfg, checkpoints, rep, fixedArr, fixedPlacer, scratch, p)
}

// runRep executes one repetition and folds its metrics into the partial.
func runRep(cfg *Config, checkpoints []int64, rep uint64, fixedArr *bins.Array, fixedPlacer protocol.Placer, scratch *workerScratch, p *chunkPartial) error {
	r := xrand.NewStream(cfg.Seed, rep)

	arr := fixedArr
	placer := fixedPlacer
	if cfg.ArrayFn != nil {
		var err error
		arr, err = cfg.ArrayFn(r)
		if err != nil {
			return fmt.Errorf("sim: rep %d array: %w", rep, err)
		}
		weights, err := cfg.distribution().Weights(arr)
		if err != nil {
			return fmt.Errorf("sim: rep %d weights: %w", rep, err)
		}
		placer, err = cfg.factory()(arr, weights)
		if err != nil {
			return fmt.Errorf("sim: rep %d placer: %w", rep, err)
		}
	} else {
		arr.Reset()
		// Stateful placers (e.g. the batched protocol's round snapshot)
		// must forget the previous repetition.
		if rp, ok := placer.(interface{ Reset() }); ok {
			rp.Reset()
		}
	}

	m := cfg.ballCount(arr.TotalCapacity())

	if len(checkpoints) > 0 && p.cp == nil {
		p.cp = obs.NewCheckpoints(checkpoints)
	}
	if cfg.HeightLevels > 0 && p.hl == nil {
		p.hl = obs.NewHeights(cfg.HeightLevels)
	}
	if cfg.HeightBins > 0 && p.heights == nil {
		hiMax := cfg.HeightMax
		if hiMax <= 0 {
			hiMax = 8
		}
		h, err := stats.NewHistogram(0, hiMax, cfg.HeightBins)
		if err != nil {
			return err
		}
		p.heights = h
	}
	nextCp := 0
	if p.heights != nil {
		// Ball heights need the receiving bin of every single ball, so
		// this path stays per-ball. The draw sequence is identical to the
		// batch path below.
		for k := int64(1); k <= m; k++ {
			idx := placer.Place(arr, r)
			p.heights.Add(arr.Load(idx))
			for nextCp < len(checkpoints) && checkpoints[nextCp] == k {
				if err := snapshotCheckpoint(cfg, p, scratch, arr, nextCp, k); err != nil {
					return err
				}
				nextCp++
			}
		}
	} else {
		// Batch kernel: one interface dispatch per checkpoint segment
		// instead of one per ball.
		placed := int64(0)
		for nextCp < len(checkpoints) && checkpoints[nextCp] <= m {
			cp := checkpoints[nextCp]
			placer.PlaceBatch(arr, r, cp-placed)
			placed = cp
			if err := snapshotCheckpoint(cfg, p, scratch, arr, nextCp, cp); err != nil {
				return err
			}
			nextCp++
		}
		placer.PlaceBatch(arr, r, m-placed)
	}
	// Checkpoints beyond m stay unrecorded for this repetition: their
	// rows end up with Reps() < cfg.Reps (0 when no repetition reaches
	// them), which is how callers see the shortfall.

	return foldFinal(cfg, arr, m, rep, scratch, p)
}

// foldFinal folds one repetition's final array state into the chunk
// partial. It is the shared endpoint of the classic and closed-form
// engines: both converge on the same observables once the balls are
// placed, however they got there. When any distribution-shaped
// observable is requested, ONE histogram build replaces the per-
// collector scans and sorts: max load, heights, the sorted load
// vector and every class observable all derive from the same pairs
// (bit-identical to the scans they replace — pinned by equivalence
// tests); max/avg-only runs keep the direct exact scan.
func foldFinal(cfg *Config, arr *bins.Array, m int64, rep uint64, scratch *workerScratch, p *chunkPartial) error {
	var h *bins.LoadHistogram
	var max float64
	if cfg.needsHistogram() {
		var err error
		h, err = scratch.histogram(arr)
		if err != nil {
			return fmt.Errorf("sim: rep %d histogram: %w", rep, err)
		}
		max = h.MaxLoad()
	} else {
		max = arr.MaxLoad()
	}
	avg := arr.AverageLoad()
	p.balls.Add(float64(m))
	p.totalCap.Add(float64(arr.TotalCapacity()))
	p.maxLoad.Add(max)
	p.avgLoad.Add(avg)
	p.deviation.Add(max - avg)

	if p.hl != nil {
		if err := p.hl.SnapshotHist(obs.Final, h, m); err != nil {
			return fmt.Errorf("sim: rep %d heights: %w", rep, err)
		}
	}
	if cfg.CollectLoadVector {
		if p.loads == nil {
			p.loads = obs.NewSortedLoads()
		}
		if err := p.loads.SnapshotHist(obs.Final, h, m); err != nil {
			return fmt.Errorf("sim: rep %d: %w", rep, err)
		}
	}
	if len(cfg.TrackClasses) > 0 {
		if p.classMaxCount == nil {
			p.classMaxCount = make(map[int64]int64, len(cfg.TrackClasses))
		}
		for _, class := range cfg.TrackClasses {
			if h.ClassAttainsMax(class) {
				p.classMaxCount[class]++
			}
		}
	}
	if len(cfg.ClassMaxLoads) > 0 {
		if p.classMaxLoad == nil {
			p.classMaxLoad = make(map[int64]*stats.Accumulator, len(cfg.ClassMaxLoads))
		}
		for _, class := range cfg.ClassMaxLoads {
			acc := p.classMaxLoad[class]
			if acc == nil {
				acc = &stats.Accumulator{}
				p.classMaxLoad[class] = acc
			}
			acc.Add(h.MaxLoadOfClass(class))
		}
	}
	if len(cfg.ClassLoadVectors) > 0 {
		if p.classLoadSum == nil {
			p.classLoadSum = make(map[int64][]float64, len(cfg.ClassLoadVectors))
		}
		for _, class := range cfg.ClassLoadVectors {
			sum, ok := p.classLoadSum[class]
			if !ok {
				sum = make([]float64, h.ClassBins(class))
				p.classLoadSum[class] = sum
			}
			// Within one class load order is ball-count order, so the
			// histogram emits the non-increasing vector with no sort.
			if err := h.AddClassLoadsDesc(class, sum); err != nil {
				return fmt.Errorf("sim: rep %d class %d: %w", rep, class, err)
			}
		}
	}
	return nil
}

// reduce merges chunk partials in deterministic (chunk index) order.
// It merges the longest contiguous prefix of complete chunks plus the
// leading repetitions of the first incomplete chunk, and reports how
// many repetitions that prefix covers: an uncancelled run always
// yields completed == cfg.Reps, a cancelled one the deterministic
// prefix the partial result covers (chunks a worker claimed after
// cancellation hold zero repetitions and end the prefix). Any chunk
// error — including errors in chunks beyond the prefix — fails the
// whole run: a panic is never masked by a concurrent cancellation.
func reduce(cfg *Config, checkpoints []int64, partials []chunkPartial) (*Result, int, error) {
	for ci := range partials {
		if partials[ci].err != nil {
			return nil, 0, partials[ci].err
		}
	}
	res := &Result{}
	var cp *obs.Checkpoints
	if len(checkpoints) > 0 {
		cp = obs.NewCheckpoints(checkpoints)
	}
	var hl *obs.Heights
	if cfg.HeightLevels > 0 {
		hl = obs.NewHeights(cfg.HeightLevels)
	}
	completed := 0
	loads := obs.NewSortedLoads()
	for ci := range partials {
		p := &partials[ci]
		lo := ci * chunkSize
		hi := lo + chunkSize
		if hi > cfg.Reps {
			hi = cfg.Reps
		}
		completed += p.reps
		incomplete := p.reps < hi-lo
		res.Balls.Merge(&p.balls)
		res.TotalCapacity.Merge(&p.totalCap)
		res.MaxLoad.Merge(&p.maxLoad)
		res.AvgLoad.Merge(&p.avgLoad)
		res.Deviation.Merge(&p.deviation)
		if p.loads != nil {
			if err := loads.Merge(p.loads); err != nil {
				return nil, 0, fmt.Errorf("sim: inconsistent bin counts across repetitions: %w", err)
			}
		}
		if p.cp != nil {
			if err := cp.Merge(p.cp); err != nil {
				return nil, 0, fmt.Errorf("sim: %w", err)
			}
		}
		if p.hl != nil {
			if err := hl.Merge(p.hl); err != nil {
				return nil, 0, fmt.Errorf("sim: %w", err)
			}
		}
		if p.classMaxCount != nil {
			if res.ClassMaxFraction == nil {
				res.ClassMaxFraction = make(map[int64]float64)
			}
			for class, count := range p.classMaxCount {
				res.ClassMaxFraction[class] += float64(count)
			}
		}
		if p.classMaxLoad != nil {
			if res.ClassMaxLoad == nil {
				res.ClassMaxLoad = make(map[int64]*stats.Accumulator, len(p.classMaxLoad))
			}
			for class, acc := range p.classMaxLoad {
				dst := res.ClassMaxLoad[class]
				if dst == nil {
					dst = &stats.Accumulator{}
					res.ClassMaxLoad[class] = dst
				}
				dst.Merge(acc)
			}
		}
		if p.classLoadSum != nil {
			if res.ClassMeanSortedLoads == nil {
				res.ClassMeanSortedLoads = make(map[int64][]float64)
			}
			for class, sum := range p.classLoadSum {
				dst := res.ClassMeanSortedLoads[class]
				if dst == nil {
					dst = make([]float64, len(sum))
					res.ClassMeanSortedLoads[class] = dst
				}
				for i, v := range sum {
					dst[i] += v
				}
			}
		}
		if p.heights != nil {
			if res.Heights == nil {
				h, err := stats.NewHistogram(p.heights.Lo, p.heights.Hi, len(p.heights.Counts))
				if err != nil {
					return nil, 0, err
				}
				res.Heights = h
			}
			if err := res.Heights.Merge(p.heights); err != nil {
				return nil, 0, err
			}
		}
		if incomplete {
			// The first incomplete chunk ends the prefix: later chunks
			// may have run out of order and would punch holes in it.
			break
		}
	}
	res.MeanSortedLoads = loads.Mean()
	if cp != nil {
		res.Checkpoints = cp.Rows()
	}
	if hl != nil {
		res.HeightCounts = hl.Rows()
	}
	// Fractions normalise by the repetitions actually folded, so a
	// cancelled partial reports the same fractions a Reps = completed
	// run would.
	if res.ClassMaxFraction != nil && completed > 0 {
		for class := range res.ClassMaxFraction {
			res.ClassMaxFraction[class] /= float64(completed)
		}
	}
	if res.ClassMeanSortedLoads != nil && completed > 0 {
		for _, sum := range res.ClassMeanSortedLoads {
			for i := range sum {
				sum[i] /= float64(completed)
			}
		}
	}
	if res.Balls.N() > 0 {
		n, err := nBins(cfg)
		if err != nil {
			return nil, 0, err
		}
		res.N = n
	}
	return res, completed, nil
}

func nBins(cfg *Config) (int, error) {
	if cfg.Array != nil {
		return cfg.Array.N(), nil
	}
	// ArrayFn: rebuild rep 0's array cheaply to read n. The builder is
	// deterministic in the stream, so this matches what the run used.
	// A builder error here would mean the run itself should already
	// have failed, but it must not be swallowed into N = 0: an ArrayFn
	// that succeeds only on some streams would otherwise silently
	// corrupt the result.
	r := xrand.NewStream(cfg.Seed, 0)
	a, err := cfg.ArrayFn(r)
	if err != nil {
		return 0, fmt.Errorf("sim: probing bin count from ArrayFn: %w", err)
	}
	return a.N(), nil
}

// RunOnce executes a single repetition (rep index 0 of the given seed)
// and returns the final array — the simplest way to inspect one game's
// full outcome.
func RunOnce(cfg Config) (*bins.Array, error) {
	cfg.Reps = 1
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := xrand.NewStream(cfg.Seed, 0)
	var arr *bins.Array
	var err error
	if cfg.ArrayFn != nil {
		arr, err = cfg.ArrayFn(r)
		if err != nil {
			return nil, err
		}
	} else {
		arr = cfg.Array.Clone()
		arr.Reset()
	}
	weights, err := cfg.distribution().Weights(arr)
	if err != nil {
		return nil, err
	}
	placer, err := cfg.factory()(arr, weights)
	if err != nil {
		return nil, err
	}
	m := cfg.ballCount(arr.TotalCapacity())
	placer.PlaceBatch(arr, r, m)
	return arr, nil
}
