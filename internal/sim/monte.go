// Sharded Monte-Carlo engine: R repetitions of the sharded single-run
// game (RunLarge), scheduled as a two-level pipeline so that huge-n
// aggregates — the regime where the paper's gap bounds become
// empirically sharp — run at full machine width without holding more
// than a handful of bin arrays in memory.
//
// # Scheduling model
//
// All CPU work (routing blocks, per-shard placement, per-repetition
// summaries) executes on ONE shared bounded worker pool of cfg.Workers
// goroutines. On top of it, min(Workers, Reps) repetition orchestrators
// each own a single reusable bin-array clone (plus its shard views,
// per-shard placers and routing groups, built once and reset between
// repetitions) and pump their repetitions through the pool phase by
// phase:
//
//	route blocks(rep) ∥ reset shards → place shards in parallel → summarise
//
// Orchestrators only coordinate — they never burn a core — so shard
// tasks of one repetition overlap the routing blocks of the next, and
// total CPU concurrency never exceeds Workers. Peak memory is
// min(Workers, Reps) bin arrays plus one O(Reps)-free running summary:
// O(Shards · shardSize) per in-flight repetition, never O(Reps · n),
// so n = 10^7 with hundreds of repetitions fits in RAM.
//
// # Determinism contract
//
// Repetition rep offsets the single-run stream layout by
// rep·(Shards+1): its routing blocks draw from the substreams of
// stream rep·(Shards+1) (block b from (Seed, rep·(Shards+1), b) — see
// route.go) and shard s places from stream rep·(Shards+1)+1+s of the
// base seed. Repetition 0 therefore consumes exactly the streams of
// RunLarge — RunLargeMonte with Reps = 1 reproduces RunLarge bit for
// bit — and every repetition is a pure function of (capacities,
// distribution, protocol, balls, Seed, Shards, rep). Aggregation folds
// repetition summaries strictly in repetition order (a turn-based
// in-order fold), so every accumulator and the mean load vector are
// bit-identical for any Workers value. Shards and the routing-block
// structure remain part of the model, exactly as in RunLarge.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/bins"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// LargeMonteConfig describes a Monte-Carlo aggregate over sharded
// single runs: Reps independent repetitions of the game LargeConfig
// describes.
type LargeMonteConfig struct {
	LargeConfig
	// Reps is the number of independent repetitions (>= 1). Repetition
	// rep derives its RNG streams by offsetting the single-run layout:
	// routing on stream rep·(Shards+1), shard s on stream
	// rep·(Shards+1)+1+s — so repetition 0 is bit-identical to
	// RunLarge with the same LargeConfig.
	Reps int
	// CollectLoadVector requests the element-wise mean of the sorted
	// (non-increasing) load vector across repetitions. Costs one O(n)
	// sort per repetition plus a single O(n) running-sum vector; the
	// per-repetition vectors are never retained.
	CollectLoadVector bool
	// ShardStats requests per-shard aggregates across repetitions
	// (balls routed, final shard-local max load) — the imbalance view
	// of the two-level protocol. Costs one O(shard) scan per shard per
	// repetition.
	ShardStats bool
	// Resume continues a previously cancelled run from its checkpoint
	// (see MonteCheckpoint): repetitions [0, CompletedReps) are taken
	// from the checkpoint and the run proceeds to Reps. The final
	// aggregates are byte-identical to an uninterrupted run — per-rep
	// RNG streams depend only on (Seed, rep), the fold order is fixed,
	// and JSON round-trips the fold state exactly. The checkpoint's
	// fingerprint must match this configuration.
	Resume *MonteCheckpoint
	// CancelAfterReps, when positive, deterministically cancels the run
	// after exactly that many folded repetitions — as if the context
	// had fired at precisely that point. Unlike a real context it is
	// timing-free, which is what lets tests and scripts byte-compare an
	// interrupted-then-resumed run against an uninterrupted one.
	CancelAfterReps int
}

// LargeMonteResult aggregates a sharded Monte-Carlo run. Per-repetition
// bin arrays are not retained — only streaming summaries.
type LargeMonteResult struct {
	// N is the number of bins; Shards the realised shard count; Reps
	// the number of repetitions aggregated.
	N      int
	Shards int
	Reps   int
	// Balls is the number of balls placed per repetition (identical
	// across repetitions: the array is fixed).
	Balls int64
	// MaxLoad, AvgLoad and Deviation aggregate the final whole-array
	// load statistics across repetitions (deviation = max − average,
	// the paper's gap).
	MaxLoad   stats.Accumulator
	AvgLoad   stats.Accumulator
	Deviation stats.Accumulator
	// MeanSortedLoads is the element-wise mean of the non-increasing
	// sorted load vector (only when CollectLoadVector).
	MeanSortedLoads []float64
	// Checkpoints holds per-checkpoint aggregates across repetitions,
	// in ascending cut order (only when LargeConfig.Checkpoints were
	// requested). Each repetition realises a cut through its own
	// routing stream, so RealBalls varies across repetitions; rows
	// fold strictly in repetition order.
	Checkpoints []obs.CheckpointRow
	// HeightCounts holds per-level bins-at-load>=k aggregates across
	// repetitions (only when LargeConfig.HeightLevels was requested).
	HeightCounts []obs.HeightRow
	// ShardStats holds per-shard aggregates (only when
	// LargeMonteConfig.ShardStats was requested).
	ShardStats *obs.ShardStats
}

// monteAgg folds per-repetition summaries strictly in repetition order:
// an orchestrator that finished repetition rep waits until every
// repetition below rep has folded. Welford updates and the load-vector
// float sums therefore happen in one fixed order, which is what makes
// the aggregate bit-identical across worker topologies.
type monteAgg struct {
	mu   sync.Mutex
	cond *sync.Cond
	next int // next repetition index allowed to fold
	// stopAt caps the folded prefix: a repetition folds its summary
	// only while rep < stopAt. It starts at the run's planned last
	// repetition (Reps, or CancelAfterReps) and only ever decreases —
	// the earliest cancelled repetition wins — so the folded prefix
	// [0, stopAt) is always contiguous, whatever the timing.
	stopAt int
	// aborted releases every fold waiter unconditionally: set when an
	// orchestrator dies without taking its remaining turns (recovered
	// panic), so the ladder can never strand the other orchestrators
	// on cond.Wait.
	aborted bool
	err     error
	// The result-level collectors. fold runs strictly in repetition
	// order, so every Observe below happens in one fixed order — the
	// unified observation contract's requirement for bit-identical
	// aggregates across worker topologies.
	loads *obs.SortedLoads
	cp    *obs.Checkpoints
	hl    *obs.Heights
	ss    *obs.ShardStats
}

// fold blocks until it is rep's turn, runs fn under the aggregation
// lock (skipped once an earlier repetition has failed or the prefix
// was capped below rep), and passes the turn on. Every repetition must
// take its turn exactly once — fold, foldCancelled or abort — or the
// turn chain stalls.
func (ag *monteAgg) fold(rep int, fn func(ag *monteAgg)) {
	ag.mu.Lock()
	for ag.next != rep && !ag.aborted {
		ag.cond.Wait()
	}
	if ag.aborted {
		ag.mu.Unlock()
		return
	}
	if ag.err == nil && rep < ag.stopAt {
		fn(ag)
	}
	ag.next++
	ag.cond.Broadcast()
	ag.mu.Unlock()
}

// foldCancelled takes rep's fold turn without folding and caps the
// folded prefix at rep: the partial result then covers exactly the
// repetitions below the earliest cancelled one.
func (ag *monteAgg) foldCancelled(rep int) {
	ag.mu.Lock()
	for ag.next != rep && !ag.aborted {
		ag.cond.Wait()
	}
	if ag.aborted {
		ag.mu.Unlock()
		return
	}
	if rep < ag.stopAt {
		ag.stopAt = rep
	}
	ag.next++
	ag.cond.Broadcast()
	ag.mu.Unlock()
}

// abort records err (first error wins) and releases every waiter on
// the fold ladder — the recovery path for an orchestrator that dies
// and can never take its remaining turns.
func (ag *monteAgg) abort(err error) {
	ag.mu.Lock()
	if ag.err == nil {
		ag.err = err
	}
	ag.aborted = true
	ag.cond.Broadcast()
	ag.mu.Unlock()
}

// failed reports whether an earlier repetition has recorded an error —
// later orchestrators use it to skip useless work.
func (ag *monteAgg) failed() bool {
	ag.mu.Lock()
	defer ag.mu.Unlock()
	return ag.err != nil
}

// monteRepState is one orchestrator's reusable per-repetition state:
// its own array clone, shard views, per-shard placers and generators,
// and routing groups (built once, reset between repetitions), routing
// counts and summary scratch. It is touched by pool tasks of at most
// one repetition at a time.
type monteRepState struct {
	arr     *bins.Array
	views   []*bins.Array     // nil for zero-weight shards (never routed to)
	placers []protocol.Placer // nil iff views[s] is nil
	rands   []xrand.Rand      // per-shard placement generators, re-seeded each rep
	counts  []int64
	max     float64
	avg     float64

	// Per-shard load histograms (non-nil iff the run requests a
	// distribution-shaped observable: load vector or height counts).
	// Phase B rebuilds each routed shard's histogram over its own view
	// in parallel; Phase C merges them in shard order into histAll —
	// exact integer addition, so the merged histogram is identical to
	// a whole-array pass for any worker count. All share the master
	// array's class skeleton, which is what makes the shard views'
	// histograms mergeable.
	hists   []*bins.LoadHistogram
	histAll *bins.LoadHistogram

	// Per-repetition task parameters, set by runRep before submitting
	// any task of the repetition (tasks of at most one repetition
	// touch the state at a time, so plain fields suffice).
	wg     sync.WaitGroup
	seed   uint64
	base   uint64 // stream base rep·(shards+1)
	rbase  uint64 // Mix64(seed, base): the routing substream base
	m      int64
	rep    int
	router *sampling.Multinomial

	// cc is the run's shared canceller (nil when no Context). taskErr
	// collects the first contained panic of the current repetition's
	// pool tasks (tasks of one repetition run concurrently, hence the
	// mutex; orchestrator reads happen after wg.Wait).
	cc      *canceller
	errMu   sync.Mutex
	taskErr error

	// Routing state: the orchestrator's routing groups (route.go),
	// reused across its repetitions, plus the cut plan (shared,
	// read-only across orchestrators).
	routeGroups []routeGroup
	cutBlocks   []int64
	cutRems     []int64

	// Observation scratch, allocated once per orchestrator and reused
	// across its repetitions (all nil/empty when not requested).
	cuts     []int64     // the reached cuts (shared, read-only)
	prefix   [][]int64   // [cut][shard] routing prefixes → aligned cuts
	cutBalls []int64     // realised balls per cut
	track    [][]float64 // [cut][shard] shard-local running max at cut
	cpMax    []float64   // combined whole-array max per cut
	hlCounts []int64     // bins at load >= k (HeightLevels)
	shardMax []float64   // final shard-local max (ShardStats)
}

// newMonteRepState clones the (already reset) master array and builds
// the orchestrator's shard views, placers and routing groups.
// Zero-weight shards get neither view nor placer — the router can
// never send a ball there, and building a placer over an all-zero
// weight slice would fail. routeWidth is the number of routing groups
// (min(workers, blocks)), and cutBlocks/cutRems the shared cut plan.
func newMonteRepState(master *bins.Array, weights []float64, bounds []int, shardW []float64, factory protocol.Factory, cfg *LargeMonteConfig, cuts []int64, routeWidth int, cutBlocks, cutRems []int64, protoHist *bins.LoadHistogram) (*monteRepState, error) {
	shards := len(shardW)
	st := &monteRepState{
		arr:         master.Clone(),
		views:       make([]*bins.Array, shards),
		placers:     make([]protocol.Placer, shards),
		rands:       make([]xrand.Rand, shards),
		counts:      make([]int64, shards),
		routeGroups: newRouteGroups(routeWidth, shards, len(cuts)),
		cutBlocks:   cutBlocks,
		cutRems:     cutRems,
		cuts:        cuts,
	}
	if len(cuts) > 0 {
		st.prefix = make([][]int64, len(cuts))
		st.track = make([][]float64, len(cuts))
		pflat := make([]int64, len(cuts)*shards)
		tflat := make([]float64, len(cuts)*shards)
		for k := range cuts {
			st.prefix[k] = pflat[k*shards : (k+1)*shards]
			st.track[k] = tflat[k*shards : (k+1)*shards]
		}
		st.cutBalls = make([]int64, len(cuts))
		st.cpMax = make([]float64, len(cuts))
	}
	if cfg.HeightLevels > 0 {
		st.hlCounts = make([]int64, cfg.HeightLevels)
	}
	if cfg.ShardStats {
		st.shardMax = make([]float64, shards)
	}
	for s := 0; s < shards; s++ {
		if shardW[s] <= 0 {
			continue
		}
		v, err := st.arr.Shard(bounds[s], bounds[s+1])
		if err != nil {
			return nil, fmt.Errorf("sim: RunLargeMonte shard %d: %w", s, err)
		}
		p, err := factory(v, weights[bounds[s]:bounds[s+1]])
		if err != nil {
			return nil, fmt.Errorf("sim: RunLargeMonte shard %d placer: %w", s, err)
		}
		st.views[s] = v
		st.placers[s] = p
	}
	if protoHist != nil {
		st.histAll = protoHist.CloneEmpty()
		st.hists = make([]*bins.LoadHistogram, shards)
		for s := 0; s < shards; s++ {
			st.hists[s] = protoHist.CloneEmpty()
			if st.views[s] != nil {
				continue // rebuilt by Phase B every repetition
			}
			// Zero-weight shards are never routed to, reset or placed:
			// their bins stay empty for the whole run, so one build at
			// height zero stands for every repetition.
			v, err := st.arr.Shard(bounds[s], bounds[s+1])
			if err != nil {
				return nil, fmt.Errorf("sim: RunLargeMonte shard %d: %w", s, err)
			}
			if err := v.HistogramInto(st.hists[s]); err != nil {
				return nil, fmt.Errorf("sim: RunLargeMonte shard %d histogram: %w", s, err)
			}
		}
	}
	return st, nil
}

// poolTask is one unit of pool work, passed by VALUE through the task
// channel: the repetition state pointer plus a kind and an index. The
// old chan-of-closures pool allocated one closure (plus captured loop
// variables) per task — ~130 heap objects per repetition at 64
// shards; a value task allocates nothing per submission.
type poolTask struct {
	st   *monteRepState
	kind taskKind
	idx  int
}

type taskKind int8

const (
	taskRoute   taskKind = iota // route block group idx (Phase A)
	taskReset                   // reset shard idx's view (Phase A)
	taskPlace                   // place shard idx (Phase B)
	taskSummary                 // whole-array summary (Phase C)
)

// String names the task kind for panic provenance.
func (k taskKind) String() string {
	switch k {
	case taskRoute:
		return "route"
	case taskReset:
		return "reset"
	case taskPlace:
		return "place"
	case taskSummary:
		return "summary"
	}
	return "task"
}

// fail records the first contained panic of the current repetition.
func (st *monteRepState) fail(err error) {
	st.errMu.Lock()
	if st.taskErr == nil {
		st.taskErr = err
	}
	st.errMu.Unlock()
}

// takeErr reads the repetition's first task error (called by the
// orchestrator after wg.Wait, so no task is writing concurrently —
// the lock only orders the read against the failing task's write).
func (st *monteRepState) takeErr() error {
	st.errMu.Lock()
	defer st.errMu.Unlock()
	return st.taskErr
}

// run executes the task. Per-repetition parameters (seed, stream
// base, ball count, router) live on the repetition state, set by
// runRep before any task of that repetition is submitted. A panic
// anywhere in the task body is contained into a provenance error on
// the repetition state — the pool worker survives, the phase barrier
// (st.wg) is always reached.
func (t poolTask) run() {
	st := t.st
	defer st.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			st.fail(newPanicError(engRunLargeMC, t.kind.String(), st.rep, t.idx, r))
		}
	}()
	switch t.kind {
	case taskRoute:
		rg := &st.routeGroups[t.idx]
		rg.reset()
		rg.route(st.cc, engRunLargeMC, st.rep, st.rbase, st.router, st.m, t.idx, len(st.routeGroups), st.cutBlocks, st.cutRems)
	case taskReset:
		if fault.Enabled {
			fault.Hit(fault.Site{Engine: engRunLargeMC, Op: fault.OpReset, Rep: st.rep, Shard: t.idx, Block: -1})
		}
		st.views[t.idx].Reset()
	case taskPlace:
		s := t.idx
		p := st.placers[s]
		// Stateful placers (e.g. the batched protocol's round
		// snapshot) must forget the previous repetition.
		if rp, ok := p.(interface{ Reset() }); ok {
			rp.Reset()
		}
		// Re-seeding the shard's reusable generator is NewStream
		// without the allocation (pinned by the stream-contract
		// tests).
		rs := &st.rands[s]
		rs.Seed(xrand.Mix64(st.seed, st.base+1+uint64(s)))
		// The shared segment schedule (placeShardSegments) is what
		// keeps repetition 0 bit-identical to a checkpointed
		// RunLarge. Segmentation never moves a draw.
		placeShardSegments(st.cc, engRunLargeMC, st.rep, p, st.views[s], rs, st.counts[s], s, st.prefix, st.track)
		if st.hists != nil {
			// The shard's one-pass histogram, rebuilt over its own view
			// while other shards are still placing. A zero-count shard
			// reaches here too (its segment schedule places nothing and
			// consumes no draws) so its freshly reset view overwrites
			// last repetition's rows.
			if err := st.views[s].HistogramInto(st.hists[s]); err != nil {
				st.fail(fmt.Errorf("sim: RunLargeMonte shard %d histogram: %w", s, err))
				return
			}
		}
		if st.shardMax != nil {
			if st.hists != nil {
				st.shardMax[s] = st.hists[s].MaxLoad()
			} else {
				st.shardMax[s] = st.views[s].MaxLoad()
			}
		}
	case taskSummary:
		if fault.Enabled {
			fault.Hit(fault.Site{Engine: engRunLargeMC, Op: fault.OpSummary, Rep: st.rep, Shard: -1, Block: -1})
		}
		if st.hists != nil {
			// Shard-order merge: exact integer addition, so the result
			// is identical to one whole-array pass — and every final
			// observable (max, average, heights, sorted loads) derives
			// from the merged histogram without touching the bins again.
			ha := st.histAll
			ha.Reset()
			for s := range st.hists {
				if err := ha.Merge(st.hists[s]); err != nil {
					st.fail(fmt.Errorf("sim: RunLargeMonte merge shard %d: %w", s, err))
					return
				}
			}
			st.max = ha.MaxLoad()
			st.avg = float64(ha.Balls()) / float64(st.arr.TotalCapacity())
			if st.hlCounts != nil {
				ha.CountAtOrAbove(st.hlCounts)
			}
		} else {
			st.arr.Recount()
			st.max = st.arr.MaxLoad()
			st.avg = st.arr.AverageLoad()
		}
		combineShardMaxima(st.track, st.cpMax)
	}
}

// runRep executes one repetition through the shared pool in three
// phases. Phase A overlaps the routing blocks (substreams of stream
// base = rep·(shards+1), fanned out across the orchestrator's routing
// groups) with the per-shard resets: routing touches only the
// splitting tree and the group's own buffers, resets touch only view
// bins; the orchestrator folds the groups afterwards (exact integer
// sums, order-free). Phase B places every routed shard in parallel on
// stream base+1+s. Phase C summarises the whole array (the only phase
// that may run parent-array methods, which the bins.Shard contract
// forbids while views mutate).
//
// It returns ok = false when the repetition was abandoned because the
// run's context fired (the state is then never read again — every
// later repetition of this orchestrator is skipped too), and a non-nil
// err when a pool task of this repetition panicked.
func (st *monteRepState) runRep(tasks chan<- poolTask, seed, rep uint64, shards int, m int64, router *sampling.Multinomial) (ok bool, err error) {
	st.seed = seed
	st.rep = int(rep)
	st.taskErr = nil
	st.base = rep * uint64(shards+1)
	st.rbase = xrand.Mix64(seed, st.base)
	st.m = m
	st.router = router
	for g := range st.routeGroups {
		st.wg.Add(1)
		tasks <- poolTask{st, taskRoute, g}
	}
	for s := range st.views {
		if st.views[s] == nil {
			continue
		}
		st.wg.Add(1)
		tasks <- poolTask{st, taskReset, s}
	}
	st.wg.Wait()
	if err := st.takeErr(); err != nil {
		return false, err
	}
	if st.cc.cancelled() {
		return false, nil
	}
	// Folding the groups is O(groups·shards·cuts) — orchestrator-side
	// bookkeeping, not pool work.
	mergeRouteGroups(st.routeGroups, st.counts, st.prefix)
	if len(st.cuts) > 0 {
		obs.AlignShardCuts(st.prefix, protocol.BlockSize, st.cutBalls)
	}
	for k := range st.track {
		clear(st.track[k])
	}
	clear(st.shardMax)

	for s := range st.views {
		// A zero-count shard normally needs no Phase B at all; with
		// histograms on it still gets a (draw-free) taskPlace so its
		// empty view refreshes st.hists[s] for the Phase C merge.
		if st.views[s] == nil || (st.counts[s] == 0 && st.hists == nil) {
			continue
		}
		st.wg.Add(1)
		tasks <- poolTask{st, taskPlace, s}
	}
	st.wg.Wait()
	if err := st.takeErr(); err != nil {
		return false, err
	}
	if st.cc.cancelled() {
		return false, nil
	}

	st.wg.Add(1)
	tasks <- poolTask{st, taskSummary, 0}
	st.wg.Wait()
	if err := st.takeErr(); err != nil {
		return false, err
	}
	return true, nil
}

// RunLargeMonte executes cfg.Reps repetitions of the sharded single-run
// engine and aggregates them. See the package comment of this file for
// the scheduling model and the determinism contract.
//
// When cfg.Context fires (or CancelAfterReps triggers), RunLargeMonte
// returns a partial *LargeMonteResult covering a contiguous repetition
// prefix — bit-identical to a run configured with that many Reps —
// plus a *CancelledError whose Checkpoint resumes the run. A panic in
// any pool task or orchestrator surfaces as a *PanicError, never as a
// crash or a stuck fold ladder.
func RunLargeMonte(cfg LargeMonteConfig) (*LargeMonteResult, error) {
	shards, err := cfg.LargeConfig.validate()
	if err != nil {
		return nil, err
	}
	if cfg.Reps < 1 {
		return nil, fmt.Errorf("sim: RunLargeMonte Reps = %d, need >= 1", cfg.Reps)
	}
	if cfg.CancelAfterReps < 0 {
		return nil, fmt.Errorf("sim: RunLargeMonte CancelAfterReps = %d, need >= 0", cfg.CancelAfterReps)
	}
	cc := newCanceller(cfg.Context)
	defer cc.stop()

	n := cfg.Array.N()
	master := cfg.Array
	if !cfg.AdoptArray {
		master = cfg.Array.Clone()
	}
	master.Reset()
	d := cfg.Dist
	if d == nil {
		d = dist.Proportional{}
	}
	weights, err := d.Weights(master)
	if err != nil {
		return nil, fmt.Errorf("sim: RunLargeMonte weights: %w", err)
	}
	factory := cfg.Placer
	if factory == nil {
		factory = protocol.GreedyFactory(2)
	}

	// The shard plan (boundaries, per-shard weights, routing table) is
	// shared read-only across repetitions: AliasTable.Sample only reads
	// the packed columns, so concurrent routing passes of different
	// repetitions can use one router.
	bounds, shardW, router, err := shardPlan(weights, n, shards)
	if err != nil {
		return nil, fmt.Errorf("sim: RunLargeMonte router: %w", err)
	}

	m := (&Config{Balls: cfg.Balls, BallsFactor: cfg.BallsFactor}).ballCount(master.TotalCapacity())

	allCuts, _ := obs.NormalizeCuts(cfg.Checkpoints) // validated above
	cuts := allCuts[:obs.CountReached(allCuts, m)]
	totalCap := master.TotalCapacity()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Routing fan-out per repetition: one group per worker, capped at
	// the number of routing blocks (the grouping never affects the
	// merged counts — integer sums are exact).
	routeWidth := workers
	if nb := numRouteBlocks(m); routeWidth > nb {
		routeWidth = nb
	}
	if routeWidth < 1 {
		routeWidth = 1
	}
	cutBlocks, cutRems := cutPlan(cuts)

	// One class skeleton for the whole run: every orchestrator's shard
	// and whole-array histograms clone it, which is what makes shard
	// merges exact (identical class set) and keeps CapacityClasses out
	// of the per-repetition path. Max/avg-only runs skip histograms
	// entirely and keep the direct exact scans.
	var proto *bins.LoadHistogram
	if cfg.CollectLoadVector || cfg.HeightLevels > 0 {
		proto = master.NewLoadHistogram()
	}

	res := &LargeMonteResult{N: n, Shards: shards, Reps: cfg.Reps, Balls: m}
	agg := &monteAgg{}
	agg.cond = sync.NewCond(&agg.mu)
	if cfg.CollectLoadVector {
		agg.loads = obs.NewSortedLoads()
	}
	if len(allCuts) > 0 {
		agg.cp = obs.NewCheckpoints(allCuts)
	}
	if cfg.HeightLevels > 0 {
		agg.hl = obs.NewHeights(cfg.HeightLevels)
	}
	if cfg.ShardStats {
		agg.ss = obs.NewShardStats(shards)
	}

	// The fingerprint pins the experiment a checkpoint belongs to. It
	// costs an O(n) capacity hash, so it is computed only when a
	// checkpoint can actually be read (Resume) or written (a cancel
	// source exists) — the plain path pays nothing.
	var fp MonteFingerprint
	if cfg.Resume != nil || cc != nil || cfg.CancelAfterReps > 0 {
		fp = MonteFingerprint{
			N: n, Shards: shards, Balls: m, Seed: cfg.Seed,
			TotalCapacity: totalCap, CapHash: capHash(master),
			Checkpoints: allCuts, HeightLevels: cfg.HeightLevels,
			CollectLoadVector: cfg.CollectLoadVector, ShardStats: cfg.ShardStats,
		}
	}
	resumed := 0
	if cfg.Resume != nil {
		if err := cfg.Resume.restore(fp, res, agg); err != nil {
			return nil, err
		}
		resumed = agg.next
		if resumed > cfg.Reps {
			return nil, fmt.Errorf("sim: resume checkpoint covers %d repetitions, run has only %d", resumed, cfg.Reps)
		}
	}
	// planned is the last repetition the run intends to fold: Reps, or
	// the deterministic self-cancel point. A real context cancellation
	// lowers the realised prefix further through foldCancelled.
	planned := cfg.Reps
	if cfg.CancelAfterReps > 0 && cfg.CancelAfterReps < planned {
		planned = cfg.CancelAfterReps
	}
	if planned < resumed {
		planned = resumed
	}
	agg.stopAt = planned
	// Single-assignment copies for the orchestrator closures: captured
	// by value, so the mutable variables above (planning state, proto
	// histogram) never escape to the heap.
	start, stop := resumed, planned
	protoHist := proto

	inflight := workers
	if remaining := cfg.Reps - start; inflight > remaining {
		inflight = remaining
	}

	// The shared bounded pool: every CPU-heavy task of every phase of
	// every repetition runs here, so concurrency is exactly workers.
	// Tasks travel by value — no per-task heap traffic.
	tasks := make(chan poolTask)
	var poolWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		poolWG.Add(1)
		go func() {
			defer poolWG.Done()
			for t := range tasks {
				t.run()
			}
		}()
	}

	var orchWG sync.WaitGroup
	for w := 0; w < inflight; w++ {
		orchWG.Add(1)
		go func(w int) {
			defer orchWG.Done()
			// A panic in orchestrator bookkeeping (pool tasks carry
			// their own recover) would leave the fold ladder waiting
			// for turns that never come; abort releases every waiter
			// and surfaces the provenance error instead.
			defer func() {
				if r := recover(); r != nil {
					agg.abort(newPanicError(engRunLargeMC, "orchestrator", -1, w, r))
				}
			}()
			st, serr := newMonteRepState(master, weights, bounds, shardW, factory, &cfg, cuts, routeWidth, cutBlocks, cutRems, protoHist)
			if serr == nil {
				st.cc = cc
			}
			// One fold body per orchestrator, not per repetition: it
			// snapshots whatever st holds when its repetition's turn
			// comes, so hoisting it out of the loop only removes the
			// per-rep closure allocation, never a bit of the result.
			foldRep := func(ag *monteAgg) {
				res.MaxLoad.Add(st.max)
				res.AvgLoad.Add(st.avg)
				res.Deviation.Add(st.max - st.avg)
				if ag.loads != nil {
					if err := ag.loads.SnapshotHist(obs.Final, st.histAll, m); err != nil {
						ag.err = err
						return
					}
				}
				if ag.cp != nil {
					for k := range cuts {
						// An empty block-aligned realisation means
						// this repetition saw no state at the cut;
						// skip it (like a cut beyond m) so zeros
						// never contaminate the maxima aggregates.
						if st.cutBalls[k] == 0 {
							continue
						}
						ag.cp.Observe(k, st.cutBalls[k], totalCap, st.cpMax[k])
					}
				}
				if ag.hl != nil {
					ag.hl.Observe(st.hlCounts)
				}
				if ag.ss != nil {
					if err := ag.ss.Observe(st.counts, st.shardMax); err != nil {
						ag.err = err
						return
					}
				}
			}
			skip := func(*monteAgg) {}
			// Static strided assignment: orchestrator w owns reps
			// start+w, start+w+inflight, … — processed in increasing
			// order, which the in-order fold relies on for progress.
			for rep := start + w; rep < cfg.Reps; rep += inflight {
				if fault.Enabled {
					fault.Hit(fault.Site{Engine: engRunLargeMC, Op: fault.OpOrchestrator, Rep: rep, Shard: -1, Block: -1})
				}
				if serr != nil {
					err := serr
					agg.fold(rep, func(ag *monteAgg) { ag.err = err })
					continue
				}
				if rep >= stop || cc.cancelled() {
					agg.foldCancelled(rep)
					continue
				}
				if agg.failed() {
					agg.fold(rep, skip)
					continue
				}
				ok, rerr := st.runRep(tasks, cfg.Seed, uint64(rep), shards, m, router)
				switch {
				case rerr != nil:
					agg.fold(rep, func(ag *monteAgg) { ag.err = rerr })
				case !ok:
					agg.foldCancelled(rep)
				default:
					agg.fold(rep, foldRep)
				}
			}
		}(w)
	}
	orchWG.Wait()
	close(tasks)
	poolWG.Wait()

	if agg.err != nil {
		return nil, agg.err
	}
	if agg.loads != nil {
		res.MeanSortedLoads = agg.loads.Mean()
	}
	if agg.cp != nil {
		res.Checkpoints = agg.cp.Rows()
	}
	if agg.hl != nil {
		res.HeightCounts = agg.hl.Rows()
	}
	res.ShardStats = agg.ss
	if completed := agg.stopAt; completed < cfg.Reps {
		// Cancelled (context or CancelAfterReps): the aggregates cover
		// exactly repetitions [0, completed) — bit-identical to a run
		// configured with Reps = completed — and the checkpoint resumes
		// from there.
		res.Reps = completed
		return res, &CancelledError{
			Engine:          engRunLargeMC,
			CompletedReps:   completed,
			CompletedCuts:   -1,
			CompletedRounds: -1,
			CompletedTicks:  -1,
			Checkpoint:      captureMonteCheckpoint(fp, completed, res, agg),
			Cause:           cc.err(),
		}
	}
	return res, nil
}
