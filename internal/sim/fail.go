// Fault-tolerant execution layer, part 1: the failure and cancellation
// vocabulary shared by all three engines.
//
// # Cooperative cancellation
//
// Every engine config carries an optional context.Context. Cancellation
// is checked at task boundaries — one classic repetition, one routing
// block, one RoutingBlock-sized placement stride — so cancellation
// latency is bounded by one block of work, while the no-context hot
// path keeps its exact pre-existing instruction stream (the checks sit
// behind a nil canceller). A cancelled run returns a typed
// *CancelledError AND a deterministic partial result: the partial is a
// prefix of the engine's deterministic model (completed repetitions,
// completed checkpoint cuts), so its content is bit-identical to the
// corresponding prefix of an uninterrupted run — only WHICH prefix you
// get depends on timing.
//
// # Panic containment
//
// Every pool task (classic chunk repetitions, routing groups, shard
// placements, Monte resets/summaries/orchestrators) runs behind a
// recover that converts a panic into a *PanicError carrying provenance
// (engine, task kind, repetition, shard/group index). The first error
// wins, every waiter is released (see monteAgg.abort), and no worker
// goroutine is stranded — a panic anywhere surfaces as an ordinary
// error from Run/RunLarge/RunLargeMonte, never as a process crash or a
// hang.
package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// Engine names used in provenance (PanicError.Engine, fault.Site.Engine).
const (
	engRun        = "Run"
	engRunLarge   = "RunLarge"
	engRunLargeMC = "RunLargeMonte"
	engRunClosed  = "RunClosed"
	engRunStream  = "RunStream"
	engRunCluster = "RunCluster"
)

// ErrCancelled is the sentinel every cancellation error matches:
// errors.Is(err, ErrCancelled) is true exactly when a run stopped
// early because its context was cancelled (or a deterministic
// self-cancel like CancelAfterReps fired) rather than because of a
// failure.
var ErrCancelled = errors.New("sim: run cancelled")

// CancelledError reports a cooperatively cancelled run. The engine
// that returns it ALSO returns a non-nil partial result; the fields
// here describe which deterministic prefix that partial covers.
type CancelledError struct {
	// Engine is the engine that was cancelled ("Run", "RunLarge",
	// "RunLargeMonte").
	Engine string
	// CompletedReps is the folded repetition prefix of the partial
	// (Run, RunLargeMonte): aggregates cover reps [0, CompletedReps)
	// and are bit-identical to a run configured with that Reps value.
	// -1 for RunLarge (whose unit of progress is checkpoint cuts) and
	// for the streaming engine (whose unit is completed rounds).
	CompletedReps int
	// CompletedCuts is the number of leading checkpoint rows present
	// in a cancelled RunLarge or RunStream partial (each bit-identical
	// to the corresponding row of an uninterrupted run). -1 for the
	// repetition-based engines.
	CompletedCuts int
	// CompletedRounds is the completed-round prefix of a cancelled
	// streaming run: the partial's trajectory, counters and shard
	// occupancies cover rounds [0, CompletedRounds) and are
	// bit-identical to a run configured with Rounds = CompletedRounds.
	// -1 for the other engines.
	CompletedRounds int
	// CompletedTicks is the completed-tick prefix of a cancelled
	// cluster run: the partial's counters, availability trace and
	// trajectory cover ticks [0, CompletedTicks) and are bit-identical
	// to a run configured with Ticks = CompletedTicks. -1 for the other
	// engines.
	CompletedTicks int
	// Checkpoint is the serializable resume state of a cancelled
	// RunLargeMonte run (nil for the other engines): feeding it back
	// through LargeMonteConfig.Resume continues the run and produces
	// final aggregates byte-identical to an uninterrupted one.
	Checkpoint *MonteCheckpoint
	// Cause is the context error that triggered the cancellation, or
	// nil when a deterministic self-cancel (CancelAfterReps) fired.
	Cause error
}

// Error implements error.
func (e *CancelledError) Error() string {
	switch {
	case e.CompletedTicks >= 0:
		return fmt.Sprintf("sim: %s cancelled after %d completed ticks", e.Engine, e.CompletedTicks)
	case e.CompletedRounds >= 0:
		return fmt.Sprintf("sim: %s cancelled after %d completed rounds", e.Engine, e.CompletedRounds)
	case e.CompletedReps >= 0:
		return fmt.Sprintf("sim: %s cancelled after %d completed repetitions", e.Engine, e.CompletedReps)
	case e.CompletedCuts >= 0:
		return fmt.Sprintf("sim: %s cancelled with %d completed checkpoint cuts", e.Engine, e.CompletedCuts)
	}
	return fmt.Sprintf("sim: %s cancelled", e.Engine)
}

// Is makes errors.Is(err, ErrCancelled) — and, when the cause was a
// real context, errors.Is(err, context.Canceled) — work.
func (e *CancelledError) Is(target error) bool { return target == ErrCancelled }

// Unwrap exposes the context error as the cause chain.
func (e *CancelledError) Unwrap() error { return e.Cause }

// PanicError is a contained panic from inside an engine: provenance
// plus the recovered value and stack. It is how "a worker died"
// surfaces — as an error from the engine call, never as a crash.
type PanicError struct {
	// Engine is the engine the panic happened in.
	Engine string
	// Task names the task kind: "route", "place", "reset", "summary",
	// "rep" (classic chunk repetition), "orchestrator".
	Task string
	// Rep is the repetition the task belonged to (-1 when unknown; 0
	// for the single-run engine).
	Rep int
	// Index is the task's shard index (place/reset), routing-group
	// index (route), or worker index (orchestrator); -1 when not
	// applicable.
	Index int
	// Value is the recovered panic value; Stack the goroutine stack
	// captured at recovery.
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	if e.Index >= 0 {
		return fmt.Sprintf("sim: panic in %s %s task (rep %d, index %d): %v", e.Engine, e.Task, e.Rep, e.Index, e.Value)
	}
	return fmt.Sprintf("sim: panic in %s %s task (rep %d): %v", e.Engine, e.Task, e.Rep, e.Value)
}

// Unwrap exposes an error panic value to errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// newPanicError builds the provenance error for a recovered value.
func newPanicError(engine, task string, rep, index int, v any) *PanicError {
	return &PanicError{Engine: engine, Task: task, Rep: rep, Index: index, Value: v, Stack: debug.Stack()}
}

// canceller adapts a context to the single atomic flag the hot loops
// poll. A nil *canceller means "cancellation not armed": the methods
// are nil-receiver safe and collapse to a register test, so engines
// pass the canceller unconditionally and pay nothing when no context
// is configured.
type canceller struct {
	flag  atomic.Bool
	cause func() error // ctx.Err, read only after flag is set
	done  chan struct{}
}

// newCanceller arms cancellation for ctx; it returns nil (no watcher
// goroutine, no checks) when ctx is nil or can never be cancelled.
// The caller must stop() the returned canceller before returning so
// the watcher goroutine never outlives the run.
func newCanceller(ctx context.Context) *canceller {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	c := &canceller{cause: ctx.Err, done: make(chan struct{})}
	if ctx.Err() != nil {
		// Already cancelled: latch synchronously (no watcher needed) so
		// a run with a dead context deterministically stops at its first
		// check. done stays open for the caller's deferred stop.
		c.flag.Store(true)
		return c
	}
	go func() {
		select {
		case <-ctx.Done():
			c.flag.Store(true)
		case <-c.done:
		}
	}()
	return c
}

// cancelled reports whether the context fired. Safe on a nil receiver.
func (c *canceller) cancelled() bool {
	return c != nil && c.flag.Load()
}

// err returns the context's error once cancelled (nil otherwise).
func (c *canceller) err() error {
	if !c.cancelled() {
		return nil
	}
	return c.cause()
}

// stop releases the watcher goroutine. Safe on a nil receiver and
// idempotent-enough for a single deferred call.
func (c *canceller) stop() {
	if c != nil {
		close(c.done)
	}
}
