package sim

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/bins"
	"repro/internal/protocol"
	"repro/internal/xrand"
)

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
	}{
		{"", EngineAuto},
		{"auto", EngineAuto},
		{"classic", EngineClassic},
		{"sharded", EngineSharded},
		{"closed-form", EngineClosedForm},
	} {
		got, err := ParseEngine(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Errorf("ParseEngine(warp): want error")
	}
}

func TestDispatchAutoSelection(t *testing.T) {
	small := uniformArray(t, 64, 1)
	big := uniformArray(t, AutoScaleMinBins, 1)
	cases := []struct {
		name string
		spec RunSpec
		want Engine
	}{
		{"small-single-classic", RunSpec{Config: Config{
			Array: small, Placer: protocol.SingleFactory(), Reps: 2, Seed: 1,
		}}, EngineClassic},
		{"small-greedy-classic", RunSpec{Config: Config{
			Array: small, Reps: 2, Seed: 1,
		}}, EngineClassic},
		{"big-single-closed", RunSpec{Config: Config{
			Array: big, Placer: protocol.SingleFactory(), Reps: 2, Seed: 1,
		}}, EngineClosedForm},
		{"big-greedy-sharded", RunSpec{Config: Config{
			Array: big, Reps: 2, Seed: 1,
		}}, EngineSharded},
		{"big-greedy-classes-classic", RunSpec{Config: Config{
			Array: big, Reps: 2, Seed: 1, TrackClasses: []int64{1},
		}}, EngineClassic},
		{"big-arrayfn-single-closed", RunSpec{Config: Config{
			ArrayFn: func(r *xrand.Rand) (*bins.Array, error) {
				return uniformArray(t, AutoScaleMinBins, 1), nil
			},
			Placer: protocol.SingleFactory(), Reps: 2, Seed: 1,
		}}, EngineClosedForm},
		{"big-arrayfn-greedy-classic", RunSpec{Config: Config{
			ArrayFn: func(r *xrand.Rand) (*bins.Array, error) {
				return uniformArray(t, AutoScaleMinBins, 1), nil
			},
			Reps: 2, Seed: 1,
		}}, EngineClassic},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.spec.resolveEngine()
			if err != nil {
				t.Fatalf("resolveEngine: %v", err)
			}
			if got != tc.want {
				t.Fatalf("resolveEngine = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestDispatchExplicitEngineErrors(t *testing.T) {
	arr := uniformArray(t, 32, 1)
	fn := func(r *xrand.Rand) (*bins.Array, error) { return uniformArray(t, 32, 1), nil }
	cases := []struct {
		name string
		spec RunSpec
	}{
		{"sharded-arrayfn", RunSpec{Engine: EngineSharded, Config: Config{ArrayFn: fn, Reps: 1}}},
		{"sharded-classes", RunSpec{Engine: EngineSharded, Config: Config{Array: arr, Reps: 1, TrackClasses: []int64{1}}}},
		{"sharded-heightbins", RunSpec{Engine: EngineSharded, Config: Config{Array: arr, Reps: 1, ObsOptions: ObsOptions{HeightBins: 8}}}},
		{"closed-greedy", RunSpec{Engine: EngineClosedForm, Config: Config{Array: arr, Reps: 1}}},
		{"closed-heightbins", RunSpec{Engine: EngineClosedForm, Config: Config{Array: arr, Placer: protocol.SingleFactory(), Reps: 1, ObsOptions: ObsOptions{HeightBins: 8}}}},
		{"unknown-engine", RunSpec{Engine: Engine("warp"), Config: Config{Array: arr, Reps: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Dispatch(tc.spec); err == nil {
				t.Fatalf("Dispatch: want error, got nil")
			}
		})
	}
}

// TestDispatchShardedResultShape pins the LargeMonteResult → Result
// conversion: every classic field the sharded engine can fill must
// arrive filled.
func TestDispatchShardedResultShape(t *testing.T) {
	// n is large enough that the block-aligned per-shard cut
	// realisation (multiples of protocol.BlockSize per shard) is
	// non-empty at both cuts.
	n := 8192
	reps := 5
	arr := uniformArray(t, n, 1)
	res, err := Dispatch(RunSpec{
		Engine: EngineSharded,
		Shards: 4,
		Config: Config{
			Array:             arr,
			Reps:              reps,
			Seed:              7,
			CollectLoadVector: true,
			ObsOptions:        ObsOptions{Checkpoints: []int64{int64(n) / 2, int64(n)}, HeightLevels: 4},
		},
	})
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if res.Engine != EngineSharded {
		t.Errorf("Engine = %v, want sharded", res.Engine)
	}
	if res.N != n {
		t.Errorf("N = %d, want %d", res.N, n)
	}
	if res.Balls.N() != int64(reps) || res.Balls.Mean() != float64(n) {
		t.Errorf("Balls: N=%d mean=%v, want N=%d mean=%d", res.Balls.N(), res.Balls.Mean(), reps, n)
	}
	if res.TotalCapacity.N() != int64(reps) || res.TotalCapacity.Mean() != float64(n) {
		t.Errorf("TotalCapacity: N=%d mean=%v", res.TotalCapacity.N(), res.TotalCapacity.Mean())
	}
	if res.MaxLoad.N() != int64(reps) || res.MaxLoad.Mean() <= 0 {
		t.Errorf("MaxLoad: N=%d mean=%v", res.MaxLoad.N(), res.MaxLoad.Mean())
	}
	if len(res.MeanSortedLoads) != n {
		t.Errorf("MeanSortedLoads: len=%d, want %d", len(res.MeanSortedLoads), n)
	}
	if len(res.Checkpoints) != 2 {
		t.Fatalf("Checkpoints: len=%d, want 2", len(res.Checkpoints))
	}
	if res.Checkpoints[1].Balls != int64(n) || res.Checkpoints[1].Reps() != int64(reps) {
		t.Errorf("final checkpoint: balls=%d reps=%d", res.Checkpoints[1].Balls, res.Checkpoints[1].Reps())
	}
	if len(res.HeightCounts) != 4 {
		t.Errorf("HeightCounts: len=%d, want 4", len(res.HeightCounts))
	}
}

// TestClosedFormDeterminism pins the closed-form engine's worker
// independence: identical results for any Workers value.
func TestClosedFormDeterminism(t *testing.T) {
	arr := uniformArray(t, 512, 1)
	base := Config{
		Array:             arr,
		Placer:            protocol.SingleFactory(),
		Reps:              20,
		Seed:              99,
		CollectLoadVector: true,
		ObsOptions:        ObsOptions{Checkpoints: []int64{128, 512}, HeightLevels: 5},
		ClassMaxLoads:     []int64{1},
	}
	var ref *Result
	for _, workers := range []int{1, 3, 8} {
		cfg := base
		cfg.Workers = workers
		res, err := RunClosed(cfg)
		if err != nil {
			t.Fatalf("RunClosed(workers=%d): %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.MaxLoad != ref.MaxLoad || res.Deviation != ref.Deviation {
			t.Errorf("workers=%d: max-load accumulator differs", workers)
		}
		for i, v := range res.MeanSortedLoads {
			if v != ref.MeanSortedLoads[i] {
				t.Fatalf("workers=%d: MeanSortedLoads[%d] = %v != %v", workers, i, v, ref.MeanSortedLoads[i])
			}
		}
		for i := range res.Checkpoints {
			if res.Checkpoints[i] != ref.Checkpoints[i] {
				t.Errorf("workers=%d: checkpoint %d differs", workers, i)
			}
		}
		if *res.ClassMaxLoad[1] != *ref.ClassMaxLoad[1] {
			t.Errorf("workers=%d: ClassMaxLoad differs", workers)
		}
	}
}

// TestClassMaxLoads pins the classic engine's per-class max-load
// accumulator against a hand-rolled per-repetition replay.
func TestClassMaxLoads(t *testing.T) {
	arr, err := bins.TwoClass(24, 1, 8, 5)
	if err != nil {
		t.Fatalf("TwoClass: %v", err)
	}
	reps := 6
	cfg := Config{Array: arr, Reps: reps, Seed: 42, Workers: 2, ClassMaxLoads: []int64{1, 5}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, class := range []int64{1, 5} {
		acc := res.ClassMaxLoad[class]
		if acc == nil || acc.N() != int64(reps) {
			t.Fatalf("ClassMaxLoad[%d]: missing or short (%v)", class, acc)
		}
	}
	// Replay single-threaded: the per-class accumulators are part of
	// the deterministic result, so they must match bit for bit.
	serial := cfg
	serial.Workers = 1
	sres, err := Run(serial)
	if err != nil {
		t.Fatalf("serial Run: %v", err)
	}
	for _, class := range []int64{1, 5} {
		if *res.ClassMaxLoad[class] != *sres.ClassMaxLoad[class] {
			t.Errorf("ClassMaxLoad[%d] differs across worker counts", class)
		}
	}
	// The class-wise maximum can never exceed the overall maximum, and
	// at least one class attains it in every repetition.
	if res.ClassMaxLoad[1].Max() > res.MaxLoad.Max()+1e-12 ||
		res.ClassMaxLoad[5].Max() > res.MaxLoad.Max()+1e-12 {
		t.Errorf("class max exceeds overall max")
	}
	if m := math.Max(res.ClassMaxLoad[1].Max(), res.ClassMaxLoad[5].Max()); m < res.MaxLoad.Max()-1e-12 {
		t.Errorf("no class attains the overall max: %v < %v", m, res.MaxLoad.Max())
	}
}

// TestDispatchCancelledPassthrough: a dead context yields the engine's
// partial plus a *CancelledError, with the engine recorded.
func TestDispatchCancelledPassthrough(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	arr := uniformArray(t, 32, 1)
	for _, engine := range []Engine{EngineClassic, EngineSharded, EngineClosedForm} {
		spec := RunSpec{Engine: engine, Config: Config{Array: arr, Reps: 4, Seed: 3, Context: ctx}}
		if engine == EngineClosedForm {
			spec.Placer = protocol.SingleFactory()
		}
		res, err := Dispatch(spec)
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("%s: err = %v, want ErrCancelled", engine, err)
		}
		if res == nil || res.Engine != engine {
			t.Fatalf("%s: partial result missing or engine unset (%+v)", engine, res)
		}
	}
}
