package sim

// BenchmarkRouteBalls pits the retired per-ball routing pass against
// the block-wise multinomial pass at the BenchmarkRunLargeSharded
// scale (10^6 balls over 64 shards): the tentpole claim is that count
// generation shrinks routing WORK (RNG draws and table lookups), not
// just wall-clock parallelism, so the single-threaded comparison is
// the honest one. Tracked by scripts/bench.sh and the
// bench-regression CI job.

import (
	"testing"

	"repro/internal/sampling"
	"repro/internal/xrand"
)

const (
	benchRouteBalls  = 1_000_000
	benchRouteShards = 64
)

// benchShardWeights mirrors the BenchmarkRunLargeSharded geometry:
// 10^6 bins, half capacity 1 and half capacity 10, proportional
// weights, 64 contiguous shards.
func benchShardWeights() []float64 {
	w := make([]float64, benchRouteShards)
	const n = 1_000_000
	for s := 0; s < benchRouteShards; s++ {
		lo, hi := s*n/benchRouteShards, (s+1)*n/benchRouteShards
		for i := lo; i < hi; i++ {
			if i < n/2 {
				w[s] += 1
			} else {
				w[s] += 10
			}
		}
	}
	return w
}

// routeBallsPerBall is the retired Phase-1 routing loop — one alias
// draw per ball, counts only — kept verbatim as the benchmark
// baseline the multinomial pass is measured against.
func routeBallsPerBall(rr *xrand.Rand, router *sampling.AliasTable, counts []int64, m int64) {
	for i := int64(0); i < m; i++ {
		counts[router.Sample(rr)]++
	}
}

func BenchmarkRouteBallsPerBall(b *testing.B) {
	router, err := sampling.NewAlias(benchShardWeights())
	if err != nil {
		b.Fatal(err)
	}
	counts := make([]int64, benchRouteShards)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(counts)
		rr := xrand.NewStream(1, 0)
		routeBallsPerBall(rr, router, counts, benchRouteBalls)
	}
}

func BenchmarkRouteBallsMultinomial(b *testing.B) {
	mult, err := sampling.NewMultinomial(benchShardWeights())
	if err != nil {
		b.Fatal(err)
	}
	counts := make([]int64, benchRouteShards)
	groups := newRouteGroups(1, benchRouteShards, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups[0].reset()
		groups[0].route(nil, "bench", 0, xrand.Mix64(1, 0), mult, benchRouteBalls, 0, 1, nil, nil)
		mergeRouteGroups(groups, counts, nil)
	}
}
