// Fault-tolerant execution layer, part 2: deterministic checkpoint and
// resume for the sharded Monte-Carlo engine.
//
// RunLargeMonte folds repetition summaries strictly in repetition order
// (monteAgg), so the complete fold state after repetitions [0, k) is a
// small, well-defined value: the three result accumulators, the running
// load-vector sums and every collector row. MonteCheckpoint serializes
// exactly that state. Because JSON round-trips float64 exactly (Go
// emits the shortest representation that parses back to the same bits)
// and Welford state is always finite for finite inputs, a run resumed
// from repetition k is byte-identical to one that was never
// interrupted: the fold after restore continues on bit-identical
// accumulator state, in the same repetition order, with the same
// per-repetition RNG streams (repetition rep's streams depend only on
// (Seed, rep), never on where the run started).
//
// A fingerprint of the generating configuration — capacities, seed,
// shard count, ball count, collector shapes — is stored alongside the
// state and verified on resume, so feeding a checkpoint to a different
// experiment fails loudly instead of silently blending two models.
package sim

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"slices"

	"repro/internal/bins"
	"repro/internal/obs"
	"repro/internal/stats"
)

// monteCheckpointVersion guards the serialization layout. Bump it when
// the fold-state shape changes; old files are then rejected instead of
// being misinterpreted.
const monteCheckpointVersion = 1

// MonteFingerprint identifies the experiment a checkpoint belongs to.
// Two runs with equal fingerprints fold bit-identical per-repetition
// summaries, so resuming across them is sound.
type MonteFingerprint struct {
	// N is the bin count; Shards the realised shard count; Balls the
	// per-repetition ball count m; Seed the run's base seed.
	N      int    `json:"n"`
	Shards int    `json:"shards"`
	Balls  int64  `json:"balls"`
	Seed   uint64 `json:"seed"`
	// TotalCapacity and CapHash (FNV-1a over the capacity vector) pin
	// the bin array: equal N can still mean different capacities.
	TotalCapacity int64  `json:"totalCapacity"`
	CapHash       uint64 `json:"capHash"`
	// Collector shapes: the requested checkpoint cuts, height levels,
	// and whether load-vector / shard aggregates were on.
	Checkpoints       []int64 `json:"checkpoints,omitempty"`
	HeightLevels      int     `json:"heightLevels,omitempty"`
	CollectLoadVector bool    `json:"collectLoadVector,omitempty"`
	ShardStats        bool    `json:"shardStats,omitempty"`
}

// equal reports whether two fingerprints describe the same experiment.
func (f *MonteFingerprint) equal(o *MonteFingerprint) bool {
	return f.N == o.N && f.Shards == o.Shards && f.Balls == o.Balls &&
		f.Seed == o.Seed && f.TotalCapacity == o.TotalCapacity &&
		f.CapHash == o.CapHash && slices.Equal(f.Checkpoints, o.Checkpoints) &&
		f.HeightLevels == o.HeightLevels &&
		f.CollectLoadVector == o.CollectLoadVector &&
		f.ShardStats == o.ShardStats
}

// capHash hashes the capacity vector (FNV-1a over little-endian int64
// encodings) so mismatched arrays are rejected on resume.
func capHash(a *bins.Array) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < a.N(); i++ {
		binary.LittleEndian.PutUint64(buf[:], uint64(a.Capacity(i)))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// checkpointRowState serializes one obs.CheckpointRow.
type checkpointRowState struct {
	Balls     int64                  `json:"balls"`
	RealBalls stats.AccumulatorState `json:"realBalls"`
	MaxLoad   stats.AccumulatorState `json:"maxLoad"`
	Deviation stats.AccumulatorState `json:"deviation"`
}

// heightRowState serializes one obs.HeightRow.
type heightRowState struct {
	Level int64                  `json:"level"`
	Bins  stats.AccumulatorState `json:"bins"`
}

// shardRowState serializes one obs.ShardRow.
type shardRowState struct {
	Shard   int                    `json:"shard"`
	Balls   stats.AccumulatorState `json:"balls"`
	MaxLoad stats.AccumulatorState `json:"maxLoad"`
}

// MonteCheckpoint is the complete, serializable fold state of a
// RunLargeMonte run after repetitions [0, CompletedReps) have been
// folded. Feed it back through LargeMonteConfig.Resume to continue the
// run; the final aggregates are then byte-identical to an
// uninterrupted run (see the file comment for why).
type MonteCheckpoint struct {
	Version       int              `json:"version"`
	Fingerprint   MonteFingerprint `json:"fingerprint"`
	CompletedReps int              `json:"completedReps"`

	// The three result-level accumulators.
	MaxLoad   stats.AccumulatorState `json:"maxLoad"`
	AvgLoad   stats.AccumulatorState `json:"avgLoad"`
	Deviation stats.AccumulatorState `json:"deviation"`

	// SortedLoads state (only when CollectLoadVector): the running
	// element-wise sums of the non-increasing load vector, plus the
	// number of repetitions folded into them.
	LoadSums []float64 `json:"loadSums,omitempty"`
	LoadReps int64     `json:"loadReps,omitempty"`

	// Collector rows, in their canonical orders.
	Checkpoints []checkpointRowState `json:"checkpoints,omitempty"`
	Heights     []heightRowState     `json:"heights,omitempty"`
	Shards      []shardRowState      `json:"shards,omitempty"`
}

// captureMonteCheckpoint snapshots the fold state. Callers hold the
// aggregation lock or have exclusive access (the orchestrators have
// all returned).
func captureMonteCheckpoint(fp MonteFingerprint, completed int, res *LargeMonteResult, ag *monteAgg) *MonteCheckpoint {
	cp := &MonteCheckpoint{
		Version:       monteCheckpointVersion,
		Fingerprint:   fp,
		CompletedReps: completed,
		MaxLoad:       res.MaxLoad.State(),
		AvgLoad:       res.AvgLoad.State(),
		Deviation:     res.Deviation.State(),
	}
	if ag.loads != nil {
		sum, n := ag.loads.State()
		cp.LoadSums = slices.Clone(sum)
		cp.LoadReps = n
	}
	if ag.cp != nil {
		rows := ag.cp.Rows()
		cp.Checkpoints = make([]checkpointRowState, len(rows))
		for i := range rows {
			cp.Checkpoints[i] = checkpointRowState{
				Balls:     rows[i].Balls,
				RealBalls: rows[i].RealBalls.State(),
				MaxLoad:   rows[i].MaxLoad.State(),
				Deviation: rows[i].Deviation.State(),
			}
		}
	}
	if ag.hl != nil {
		rows := ag.hl.Rows()
		cp.Heights = make([]heightRowState, len(rows))
		for i := range rows {
			cp.Heights[i] = heightRowState{Level: rows[i].Level, Bins: rows[i].Bins.State()}
		}
	}
	if ag.ss != nil {
		rows := ag.ss.Rows()
		cp.Shards = make([]shardRowState, len(rows))
		for i := range rows {
			cp.Shards[i] = shardRowState{
				Shard:   rows[i].Shard,
				Balls:   rows[i].Balls.State(),
				MaxLoad: rows[i].MaxLoad.State(),
			}
		}
	}
	return cp
}

// restore loads the checkpointed fold state into a freshly built
// result and aggregator (whose collectors already have the shapes the
// fingerprint promised). It runs before any orchestrator starts.
func (cp *MonteCheckpoint) restore(fp MonteFingerprint, res *LargeMonteResult, ag *monteAgg) error {
	if cp.Version != monteCheckpointVersion {
		return fmt.Errorf("sim: resume checkpoint version %d, this build reads %d", cp.Version, monteCheckpointVersion)
	}
	if !cp.Fingerprint.equal(&fp) {
		return fmt.Errorf("sim: resume checkpoint fingerprint %+v does not match this run %+v", cp.Fingerprint, fp)
	}
	if cp.CompletedReps < 0 {
		return fmt.Errorf("sim: resume checkpoint has %d completed repetitions", cp.CompletedReps)
	}
	res.MaxLoad.Restore(cp.MaxLoad)
	res.AvgLoad.Restore(cp.AvgLoad)
	res.Deviation.Restore(cp.Deviation)
	if ag.loads != nil {
		ag.loads = obs.RestoreSortedLoads(cp.LoadSums, cp.LoadReps)
	}
	if ag.cp != nil {
		rows := ag.cp.Rows()
		if len(cp.Checkpoints) != len(rows) {
			return fmt.Errorf("sim: resume checkpoint has %d checkpoint rows, run has %d", len(cp.Checkpoints), len(rows))
		}
		for i := range rows {
			if rows[i].Balls != cp.Checkpoints[i].Balls {
				return fmt.Errorf("sim: resume checkpoint row %d at %d balls, run expects %d", i, cp.Checkpoints[i].Balls, rows[i].Balls)
			}
			rows[i].RealBalls.Restore(cp.Checkpoints[i].RealBalls)
			rows[i].MaxLoad.Restore(cp.Checkpoints[i].MaxLoad)
			rows[i].Deviation.Restore(cp.Checkpoints[i].Deviation)
		}
	}
	if ag.hl != nil {
		rows := ag.hl.Rows()
		if len(cp.Heights) != len(rows) {
			return fmt.Errorf("sim: resume checkpoint has %d height rows, run has %d", len(cp.Heights), len(rows))
		}
		for i := range rows {
			rows[i].Bins.Restore(cp.Heights[i].Bins)
		}
	}
	if ag.ss != nil {
		rows := ag.ss.Rows()
		if len(cp.Shards) != len(rows) {
			return fmt.Errorf("sim: resume checkpoint has %d shard rows, run has %d", len(cp.Shards), len(rows))
		}
		for i := range rows {
			rows[i].Balls.Restore(cp.Shards[i].Balls)
			rows[i].MaxLoad.Restore(cp.Shards[i].MaxLoad)
		}
	}
	ag.next = cp.CompletedReps
	return nil
}

// WriteFile atomically persists the checkpoint as JSON: it writes to a
// temporary file in the destination directory and renames it into
// place, so a crash mid-write never leaves a truncated checkpoint.
func (cp *MonteCheckpoint) WriteFile(path string) error {
	data, err := json.MarshalIndent(cp, "", " ")
	if err != nil {
		return fmt.Errorf("sim: encoding resume checkpoint: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("sim: writing resume checkpoint: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sim: writing resume checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sim: writing resume checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sim: writing resume checkpoint: %w", err)
	}
	return nil
}

// ReadMonteCheckpoint loads a checkpoint previously written with
// WriteFile. Fingerprint verification happens at resume time, when the
// run's own fingerprint is known.
func ReadMonteCheckpoint(path string) (*MonteCheckpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sim: reading resume checkpoint: %w", err)
	}
	cp := new(MonteCheckpoint)
	if err := json.Unmarshal(data, cp); err != nil {
		return nil, fmt.Errorf("sim: decoding resume checkpoint %s: %w", path, err)
	}
	return cp, nil
}
