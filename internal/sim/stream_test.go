package sim

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/protocol"
	"repro/internal/sampling"
	"repro/internal/xrand"
)

func TestStreamValidation(t *testing.T) {
	a := largeArray(t, 100)
	cases := []struct {
		name string
		cfg  StreamConfig
		want string
	}{
		{"nil array", StreamConfig{Rounds: 1}, "needs an Array"},
		{"no rounds", StreamConfig{Array: a}, "Rounds"},
		{"negative rounds", StreamConfig{Array: a, Rounds: -2}, "Rounds"},
		{"negative arrivals", StreamConfig{Array: a, Rounds: 1, Arrivals: -1}, "Arrivals"},
		{"negative factor", StreamConfig{Array: a, Rounds: 1, ArrivalsFactor: -0.5}, "ArrivalsFactor"},
		{"negative deletions", StreamConfig{Array: a, Rounds: 1, Deletions: -3}, "Deletions"},
		{"negative tolerance", StreamConfig{Array: a, Rounds: 1, RebalanceTol: -0.1}, "RebalanceTol"},
		{"NaN tolerance", StreamConfig{Array: a, Rounds: 1, RebalanceTol: math.NaN()}, "RebalanceTol"},
		{"negative workers", StreamConfig{Array: a, Rounds: 1, Workers: -1}, "Workers"},
		{"negative cancel", StreamConfig{Array: a, Rounds: 1, CancelAfterRounds: -1}, "CancelAfterRounds"},
		{"shards out of range", StreamConfig{Array: a, Rounds: 1, Shards: 101}, "Shards"},
		{"schedule and arrivals", StreamConfig{Array: a, Schedule: []int64{10}, Arrivals: 5}, "mutually exclusive"},
		{"schedule length", StreamConfig{Array: a, Rounds: 3, Schedule: []int64{10, 20}}, "len(Schedule)"},
		{"negative schedule entry", StreamConfig{Array: a, Schedule: []int64{10, -1}}, "Schedule[1]"},
		{"height histogram", StreamConfig{Array: a, Rounds: 1,
			ObsOptions: ObsOptions{HeightBins: 4}}, "streaming engine"},
		{"bad cuts", StreamConfig{Array: a, Rounds: 1,
			ObsOptions: ObsOptions{Checkpoints: []int64{3, 2}}}, "Checkpoints"},
	}
	for _, tc := range cases {
		_, err := runStream(tc.cfg)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the field (want %q)", tc.name, err, tc.want)
		}
	}
}

// TestStreamQuietRoundMatchesRunLarge pins the frozen substream
// layout's anchor: with one round, no deletions and no rebalance, the
// streaming engine consumes exactly RunLarge's streams (routing on
// stream 0, shard s placement on stream 1+s), so the final array is
// bit-for-bit RunLarge's.
func TestStreamQuietRoundMatchesRunLarge(t *testing.T) {
	a := largeArray(t, 1500)
	want, err := RunLarge(LargeConfig{Array: a, Seed: 42, Shards: 8,
		Placer: protocol.GreedyFactory(3), ObsOptions: ObsOptions{HeightLevels: 4}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := runStream(StreamConfig{Array: a, Seed: 42, Shards: 8, Rounds: 1,
		Placer: protocol.GreedyFactory(3), ObsOptions: ObsOptions{HeightLevels: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Balls != want.Balls || got.Arrived != want.Balls {
		t.Fatalf("stream placed %d balls, RunLarge %d", got.Balls, want.Balls)
	}
	if !reflect.DeepEqual(got.ShardBalls, want.ShardBalls) {
		t.Fatalf("routing diverged: %v vs %v", got.ShardBalls, want.ShardBalls)
	}
	for i := 0; i < a.N(); i++ {
		if got.Array.Balls(i) != want.Array.Balls(i) {
			t.Fatalf("bin %d: stream %d balls, RunLarge %d", i, got.Array.Balls(i), want.Array.Balls(i))
		}
	}
	if got.MaxLoad != want.MaxLoad || got.AvgLoad != want.AvgLoad || got.Deviation != want.Deviation {
		t.Fatal("final statistics diverged from RunLarge")
	}
	if !reflect.DeepEqual(got.HeightCounts, want.HeightCounts) {
		t.Fatal("height counts diverged from RunLarge")
	}
}

// streamMatrixConfig is the full-featured configuration the topology
// matrix and the goldens share: arrivals, deletions, rebalance and
// round cuts all active.
func streamMatrixConfig(t *testing.T, workers int) StreamConfig {
	t.Helper()
	return StreamConfig{
		Array:        largeArray(t, 512),
		Seed:         20260808,
		Shards:       8,
		Workers:      workers,
		Rounds:       5,
		Arrivals:     1000,
		Deletions:    400,
		RebalanceTol: 0.25,
		ObsOptions:   ObsOptions{Checkpoints: []int64{2, 4, 5}},
	}
}

// TestStreamBitIdenticalAcrossWorkers is the tentpole determinism
// contract: the same stream spec produces identical bits — counters,
// shard occupancies, trajectory rows and the final array — under every
// worker topology (also exercised under -race by the CI matrix).
func TestStreamBitIdenticalAcrossWorkers(t *testing.T) {
	var base *StreamResult
	for _, workers := range []int{1, 2, 3, 8} {
		res, err := runStream(streamMatrixConfig(t, workers))
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.Arrived != base.Arrived || res.Deleted != base.Deleted ||
			res.Moved != base.Moved || res.Balls != base.Balls {
			t.Fatalf("workers=%d: counters differ: %+v vs %+v", workers, res, base)
		}
		if !reflect.DeepEqual(res.ShardBalls, base.ShardBalls) {
			t.Fatalf("workers=%d: shard occupancies differ", workers)
		}
		if !reflect.DeepEqual(res.Checkpoints, base.Checkpoints) {
			t.Fatalf("workers=%d: trajectory rows differ", workers)
		}
		if res.MaxLoad != base.MaxLoad || res.Deviation != base.Deviation {
			t.Fatalf("workers=%d: final stats differ", workers)
		}
		for i := 0; i < res.N; i++ {
			if res.Array.Balls(i) != base.Array.Balls(i) {
				t.Fatalf("workers=%d: bin %d has %d balls, want %d",
					workers, i, res.Array.Balls(i), base.Array.Balls(i))
			}
		}
	}
}

// TestStreamGoldenValues pins exact outputs of the full streaming
// model — arrival routing, placement, the deletion factorisation, the
// rebalance apportionment and the round cuts — for one fixed spec.
// Like the RunLarge goldens these are FROZEN: any change here means
// the stream substream layout (or a kernel on it) was redefined, which
// silently invalidates every pinned streaming result and must be
// deliberate.
func TestStreamGoldenValues(t *testing.T) {
	res, err := runStream(streamMatrixConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 5 || res.Arrived != 5000 || res.Deleted != 2000 || res.Balls != 3000 {
		t.Fatalf("counters = %+v, golden rounds 5, arrived 5000, deleted 2000, balls 3000", res)
	}
	const wantMoved = int64(1)
	if res.Moved != wantMoved {
		t.Fatalf("moved = %d, golden %d", res.Moved, wantMoved)
	}
	wantShardBalls := []int64{76, 69, 63, 77, 648, 700, 659, 708}
	if !reflect.DeepEqual(res.ShardBalls, wantShardBalls) {
		t.Fatalf("shard occupancies %v, golden %v", res.ShardBalls, wantShardBalls)
	}
	wantRows := []struct {
		round   int64
		balls   float64
		maxLoad float64
	}{
		{2, 1200, 2}, {4, 2400, 2}, {5, 3000, 3},
	}
	for k, w := range wantRows {
		row := &res.Checkpoints[k]
		if row.Balls != w.round || row.Reps() != 1 ||
			row.RealBalls.Mean() != w.balls || row.MaxLoad.Mean() != w.maxLoad {
			t.Fatalf("cut %d: round %d balls %v max %v (reps %d), golden %+v",
				k, row.Balls, row.RealBalls.Mean(), row.MaxLoad.Mean(), row.Reps(), w)
		}
	}
	var h uint64
	for i := 0; i < res.Array.N(); i++ {
		h = h*1315423911 + uint64(res.Array.Balls(i))
	}
	const wantHash = uint64(668858400744103328)
	if h != wantHash {
		t.Fatalf("final-state hash %d, golden %d (stream substreams changed)", h, wantHash)
	}
}

// TestStreamConservation checks the occupancy accounting across a run
// with all phases active: arrived − deleted balls remain, the array
// agrees, and every shard respects the rebalance ceiling at the end.
func TestStreamConservation(t *testing.T) {
	const tol = 0.3
	res, err := runStream(StreamConfig{
		Array: largeArray(t, 800), Seed: 9, Shards: 10, Workers: 4,
		Rounds: 6, Arrivals: 700, Deletions: 250, RebalanceTol: tol,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived != 6*700 || res.Deleted != 6*250 {
		t.Fatalf("arrived/deleted = %d/%d, want 4200/1500", res.Arrived, res.Deleted)
	}
	if res.Balls != res.Arrived-res.Deleted {
		t.Fatalf("balls = %d, want arrived-deleted = %d", res.Balls, res.Arrived-res.Deleted)
	}
	if got := res.Array.TotalBalls(); got != res.Balls {
		t.Fatalf("array holds %d balls, result says %d", got, res.Balls)
	}
	var sum int64
	for _, b := range res.ShardBalls {
		sum += b
	}
	if sum != res.Balls {
		t.Fatalf("shard occupancies sum to %d, want %d", sum, res.Balls)
	}
	// The final round's rebalance pass capped every shard at
	// ceil((1+tol)·target) of the final occupancy.
	weights, err := dist.Proportional{}.Weights(res.Array)
	if err != nil {
		t.Fatal(err)
	}
	_, shardW, _, err := shardPlan(weights, res.N, res.Shards)
	if err != nil {
		t.Fatal(err)
	}
	var w float64
	for _, v := range shardW {
		w += v
	}
	for s, b := range res.ShardBalls {
		lim := int64(math.Ceil((1 + tol) * shardW[s] / w * float64(res.Balls)))
		if b > lim {
			t.Fatalf("shard %d holds %d balls above the rebalance ceiling %d", s, b, lim)
		}
	}
	if res.Moved == 0 {
		t.Fatal("rebalance pass never moved a ball (config was built to drift)")
	}
}

// TestStreamSchedule: an explicit schedule drives per-round arrivals,
// implies Rounds, and deletions clamp to the occupancy instead of
// going negative.
func TestStreamSchedule(t *testing.T) {
	res, err := runStream(StreamConfig{
		Array: largeArray(t, 400), Seed: 3, Shards: 4,
		Schedule:  []int64{5000, 0, 0, 0},
		Deletions: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 {
		t.Fatalf("rounds = %d, want 4 (implied by the schedule)", res.Rounds)
	}
	if res.Arrived != 5000 {
		t.Fatalf("arrived = %d, want 5000", res.Arrived)
	}
	// Rounds 1-3 delete 2000 each but round 3 finds only 1000 balls:
	// deletions clamp, the system drains to empty.
	if res.Deleted != 5000 || res.Balls != 0 {
		t.Fatalf("deleted/balls = %d/%d, want 5000/0 (clamped drain)", res.Deleted, res.Balls)
	}
	if got := res.Array.TotalBalls(); got != 0 {
		t.Fatalf("array holds %d balls after drain", got)
	}
}

// TestStreamZeroWeightShards: shards with zero selection weight never
// receive, lose or rebalance a ball — and never build a placer.
func TestStreamZeroWeightShards(t *testing.T) {
	a := largeArray(t, 1000)
	res, err := runStream(StreamConfig{
		Array: a, Seed: 5, Shards: 20, Rounds: 3,
		Arrivals: 800, Deletions: 300, RebalanceTol: 0.5,
		Dist: dist.TopOnly{MinCapacity: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.N(); i++ {
		if res.Array.Capacity(i) < 10 && res.Array.Balls(i) != 0 {
			t.Fatalf("small bin %d received balls under top-only", i)
		}
	}
}

// TestStreamCancelAfterRoundsPrefix: the deterministic self-cancel
// returns exactly the completed-round prefix — counters, occupancies
// and trajectory rows bit-identical to a run configured with that
// Rounds value.
func TestStreamCancelAfterRoundsPrefix(t *testing.T) {
	cfg := streamMatrixConfig(t, 4)
	short := cfg
	short.Rounds = 3
	want, err := runStream(short)
	if err != nil {
		t.Fatal(err)
	}
	cancelled := cfg
	cancelled.CancelAfterRounds = 3
	got, err := runStream(cancelled)
	var cerr *CancelledError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *CancelledError", err)
	}
	if !errors.Is(err, ErrCancelled) {
		t.Fatal("cancelled stream does not match ErrCancelled")
	}
	if cerr.Engine != engRunStream || cerr.CompletedRounds != 3 || cerr.Cause != nil {
		t.Fatalf("provenance %+v, want RunStream self-cancelled after 3 rounds", cerr)
	}
	if got.Rounds != 3 || got.Arrived != want.Arrived || got.Deleted != want.Deleted ||
		got.Moved != want.Moved || got.Balls != want.Balls {
		t.Fatalf("partial counters %+v, want prefix of %+v", got, want)
	}
	if !reflect.DeepEqual(got.ShardBalls, want.ShardBalls) {
		t.Fatalf("partial occupancies %v, want %v", got.ShardBalls, want.ShardBalls)
	}
	if !reflect.DeepEqual(got.Checkpoints, want.Checkpoints) {
		t.Fatal("partial trajectory differs from the equivalent shorter run")
	}
	if cerr.CompletedCuts != 1 {
		t.Fatalf("completed cuts = %d, want 1 (only the round-2 cut fired)", cerr.CompletedCuts)
	}
	if got.Array != nil || got.MaxLoad != 0 {
		t.Fatal("cancelled partial carries final state")
	}
	// CancelAfterRounds >= Rounds is a no-op: the run completes.
	full := cfg
	full.CancelAfterRounds = cfg.Rounds
	if _, err := runStream(full); err != nil {
		t.Fatalf("CancelAfterRounds == Rounds should complete, got %v", err)
	}
}

// TestStreamContextCancellation: a context dead before round 0 yields
// the empty prefix; one fired mid-run yields a completed-round prefix
// matching an equivalent shorter run.
func TestStreamContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := streamMatrixConfig(t, 2)
	cfg.Context = ctx
	res, err := runStream(cfg)
	var cerr *CancelledError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *CancelledError", err)
	}
	if cerr.CompletedRounds != 0 || cerr.Cause == nil {
		t.Fatalf("provenance %+v, want 0 rounds with a context cause", cerr)
	}
	if res.Rounds != 0 || res.Balls != 0 || res.Arrived != 0 {
		t.Fatalf("partial %+v, want the empty prefix", res)
	}
}

// TestStreamDispatch covers the spec integration: Stream params bind
// the spec to the streaming engine, every other explicit engine
// rejects them with a reason, and the engine is unreachable without
// them.
func TestStreamDispatch(t *testing.T) {
	if e, err := ParseEngine("stream"); err != nil || e != EngineStream {
		t.Fatalf("ParseEngine(stream) = %v, %v", e, err)
	}
	a := largeArray(t, 512)
	// Explicit stream engine without round params: field-named error.
	_, err := Dispatch(RunSpec{Config: Config{Array: a, Seed: 1}, Engine: EngineStream})
	if err == nil || !strings.Contains(err.Error(), "RunSpec.Stream") {
		t.Fatalf("engine stream without Stream params: err = %v", err)
	}
	// Any other explicit engine with round params: loud rejection, no
	// silent fallback.
	for _, e := range []Engine{EngineClassic, EngineSharded, EngineClosedForm} {
		_, err := Dispatch(RunSpec{Config: Config{Array: a, Seed: 1}, Engine: e,
			Stream: &StreamParams{Rounds: 2}})
		if err == nil || !strings.Contains(err.Error(), "streaming spec") {
			t.Fatalf("engine %s with Stream params: err = %v", e, err)
		}
	}
	// Unsupported spec fields error by name even under auto.
	unsupported := []struct {
		name string
		spec RunSpec
	}{
		{"Reps", RunSpec{Config: Config{Array: a, Seed: 1, Reps: 3}, Stream: &StreamParams{Rounds: 2}}},
		{"CollectLoadVector", RunSpec{Config: Config{Array: a, Seed: 1, CollectLoadVector: true}, Stream: &StreamParams{Rounds: 2}}},
		{"height histogram", RunSpec{Config: Config{Array: a, Seed: 1,
			ObsOptions: ObsOptions{HeightBins: 4}}, Stream: &StreamParams{Rounds: 2}}},
	}
	for _, tc := range unsupported {
		if _, err := Dispatch(tc.spec); err == nil || !strings.Contains(err.Error(), tc.name) {
			t.Errorf("%s: err = %v, want a field-named rejection", tc.name, err)
		}
	}
	// The happy path: auto + Stream params dispatches to the streaming
	// engine and maps the result onto the classic shape.
	res, err := Dispatch(RunSpec{
		Config: Config{Array: a, Seed: 20260808, Balls: 1000,
			ObsOptions: ObsOptions{Checkpoints: []int64{2, 4, 5}}},
		Shards: 8,
		Stream: &StreamParams{Rounds: 5, Deletions: 400, RebalanceTol: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != EngineStream {
		t.Fatalf("engine = %q, want stream", res.Engine)
	}
	if res.Stream == nil || res.Stream.Rounds != 5 {
		t.Fatalf("Result.Stream = %+v, want the 5-round streaming result", res.Stream)
	}
	if res.MaxLoad.N() != 1 || res.Balls.Mean() != float64(res.Stream.Balls) {
		t.Fatalf("classic mapping off: %+v", res)
	}
	// It must be the same bits runStream produces directly.
	direct, err := runStream(streamMatrixConfig(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if direct.Balls != res.Stream.Balls || !reflect.DeepEqual(direct.ShardBalls, res.Stream.ShardBalls) {
		t.Fatal("Dispatch and runStream disagree on the same spec")
	}
	// A cancelled dispatch passes the CancelledError through with the
	// partial mapped (empty accumulators, trajectory preserved).
	cres, err := Dispatch(RunSpec{
		Config: Config{Array: a, Seed: 20260808, Balls: 1000,
			ObsOptions: ObsOptions{Checkpoints: []int64{2, 4, 5}}},
		Shards: 8,
		Stream: &StreamParams{Rounds: 5, Deletions: 400, RebalanceTol: 0.25, CancelAfterRounds: 3},
	})
	var cerr *CancelledError
	if !errors.As(err, &cerr) || cerr.CompletedRounds != 3 {
		t.Fatalf("err = %v, want cancelled after 3 rounds", err)
	}
	if cres == nil || cres.Stream == nil || cres.Stream.Rounds != 3 || cres.MaxLoad.N() != 0 {
		t.Fatalf("cancelled dispatch partial %+v", cres)
	}
}

// TestStreamSteadyStateAllocFree is the perf acceptance gate: after
// warm-up, a steady-state round allocates nothing — measured as the
// allocation DELTA between a 12-round and a 2-round run of the same
// spec (setup allocations cancel out).
func TestStreamSteadyStateAllocFree(t *testing.T) {
	a := largeArray(t, 4096)
	run := func(rounds int) float64 {
		return testing.AllocsPerRun(3, func() {
			_, err := runStream(StreamConfig{
				Array: a, Seed: 11, Shards: 8, Workers: 2, Rounds: rounds,
				Arrivals: 2048, Deletions: 512, RebalanceTol: 0.2,
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
	base := run(2)
	long := run(12)
	if perRound := (long - base) / 10; perRound > 0.5 {
		t.Fatalf("steady-state rounds allocate %.2f allocs/round, want 0 (2 rounds: %.0f, 12 rounds: %.0f)",
			perRound, base, long)
	}
}

// TestStreamDeletionTwoLevelLaw: deleting ALL balls must empty every
// bin exactly — the two-level (shard tree, then bin tree) deletion
// kernel is without-replacement end to end.
func TestStreamDeletionExhaustive(t *testing.T) {
	res, err := runStream(StreamConfig{
		Array: largeArray(t, 300), Seed: 8, Shards: 6,
		Schedule:  []int64{4000, 0},
		Deletions: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Balls != 0 || res.Deleted != 4000 {
		t.Fatalf("balls/deleted = %d/%d, want 0/4000", res.Balls, res.Deleted)
	}
	for i := 0; i < res.N; i++ {
		if res.Array.Balls(i) != 0 {
			t.Fatalf("bin %d still holds %d balls", i, res.Array.Balls(i))
		}
	}
}

// TestStreamSubstreamLayout pins the frozen per-round stream layout
// constant K = 3·Shards + 2 by behaviour: two configs whose only
// difference is a model knob that consumes a LATER stream of the same
// round (deletions) leave the arrival routing and placement draws of
// that round untouched.
func TestStreamSubstreamLayout(t *testing.T) {
	base := StreamConfig{
		Array: largeArray(t, 400), Seed: 13, Shards: 4, Rounds: 1, Arrivals: 2000,
	}
	quiet, err := runStream(base)
	if err != nil {
		t.Fatal(err)
	}
	withDel := base
	withDel.Deletions = 500
	del, err := runStream(withDel)
	if err != nil {
		t.Fatal(err)
	}
	// Routing consumed the same stream: identical per-shard arrivals.
	if !reflect.DeepEqual(del.Moved, quiet.Moved) || del.Arrived != quiet.Arrived {
		t.Fatalf("arrival counters changed: %+v vs %+v", del, quiet)
	}
	if del.Balls != quiet.Balls-500 {
		t.Fatalf("deletions removed %d balls, want 500", quiet.Balls-del.Balls)
	}
	// And the deletion draws come from their own streams: the
	// per-round stream budget covers routing (1), placements (S),
	// deletion routing (1), per-shard deletions (S) and move-outs (S).
	st := &streamState{shards: 4, kk: uint64(3*4 + 2)}
	if st.kk != 14 {
		t.Fatalf("stream budget = %d, want 14 for 4 shards", st.kk)
	}
	// The shard-routing stream of round r is disjoint from round r+1's
	// base: Mix64 of distinct stream indices.
	s0 := xrand.Mix64(13, 0*st.kk+1+4)
	s1 := xrand.Mix64(13, 1*st.kk)
	if s0 == s1 {
		t.Fatal("stream indices collide across rounds")
	}
	_ = sampling.CountTree{}
}

// TestStreamHeights: the final-state height observable rides along
// like RunLarge's.
func TestStreamHeights(t *testing.T) {
	res, err := runStream(StreamConfig{
		Array: largeArray(t, 500), Seed: 2, Shards: 5, Rounds: 3,
		Arrivals: 400, Deletions: 100,
		ObsOptions: ObsOptions{HeightLevels: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HeightCounts) != 3 {
		t.Fatalf("height rows = %d, want 3", len(res.HeightCounts))
	}
	var loaded int64
	for i := 0; i < res.N; i++ {
		if res.Array.Balls(i) >= res.Array.Capacity(i) {
			loaded++
		}
	}
	if got := res.HeightCounts[0].Bins.Mean(); got != float64(loaded) {
		t.Fatalf("bins at load >= 1: %v, want %d", got, loaded)
	}
}
