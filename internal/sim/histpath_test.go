package sim

import (
	"slices"
	"testing"

	"repro/internal/bins"
)

// naiveSortedDesc is the pre-histogram reference path: float loads,
// O(n log n) sort, non-increasing order.
func naiveSortedDesc(a *bins.Array) []float64 {
	loads := a.LoadVector()
	slices.Sort(loads)
	slices.Reverse(loads)
	return loads
}

// naiveHeights counts bins at load >= k per bin, the scan the
// histogram's suffix sums replace.
func naiveHeights(a *bins.Array, levels int) []float64 {
	counts := make([]float64, levels)
	for k := 1; k <= levels; k++ {
		for i := 0; i < a.N(); i++ {
			if a.Balls(i) >= int64(k)*a.Capacity(i) {
				counts[k-1]++
			}
		}
	}
	return counts
}

// TestRunHistogramPathMatchesNaive pins the classic engine's fused
// histogram observation against naive per-bin scans of the SAME final
// state (RunOnce replays repetition 0's exact draw sequence): the mean
// sorted load vector, height counts, max load and every per-class
// observable must be bit-identical to the scan/sort path they replaced.
func TestRunHistogramPathMatchesNaive(t *testing.T) {
	a, err := bins.TwoClass(40, 1, 24, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Array: a, Reps: 1, Seed: 314,
		CollectLoadVector: true,
		TrackClasses:      []int64{1, 10},
		ClassMaxLoads:     []int64{1, 10},
		ClassLoadVectors:  []int64{1, 10},
		ObsOptions:        ObsOptions{HeightLevels: 4},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	final, err := RunOnce(Config{Array: a, Seed: 314})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := res.MaxLoad.Mean(), final.MaxLoad(); got != want {
		t.Fatalf("MaxLoad %v, naive %v", got, want)
	}
	if want := naiveSortedDesc(final); !slices.Equal(res.MeanSortedLoads, want) {
		t.Fatalf("MeanSortedLoads diverge from naive sort:\n hist %v\n sort %v", res.MeanSortedLoads, want)
	}
	for k, want := range naiveHeights(final, 4) {
		if got := res.HeightCounts[k].Bins.Mean(); got != want {
			t.Fatalf("height level %d: %v, naive %v", k+1, got, want)
		}
	}
	for _, class := range []int64{1, 10} {
		attains := final.MaxLoadInClassC(class)
		frac := res.ClassMaxFraction[class]
		if (frac == 1) != attains {
			t.Fatalf("class %d attains-max fraction %v, naive %v", class, frac, attains)
		}
		var classMax float64
		var classLoads []float64
		for i := 0; i < final.N(); i++ {
			if final.Capacity(i) != class {
				continue
			}
			l := final.Load(i)
			classLoads = append(classLoads, l)
			if l > classMax {
				classMax = l
			}
		}
		if got := res.ClassMaxLoad[class].Mean(); got != classMax {
			t.Fatalf("class %d max load %v, naive %v", class, got, classMax)
		}
		slices.Sort(classLoads)
		slices.Reverse(classLoads)
		if !slices.Equal(res.ClassMeanSortedLoads[class], classLoads) {
			t.Fatalf("class %d sorted loads diverge:\n hist %v\n sort %v",
				class, res.ClassMeanSortedLoads[class], classLoads)
		}
	}
}

// TestRunLargeMonteHistogramMatchesNaive pins the sharded engines'
// merge-in-shard-order histogram against naive scans of the identical
// final state: RunLarge (which returns its final array) must agree
// with a Reps=1 RunLargeMonte carrying every histogram-derived
// collector, bit for bit.
func TestRunLargeMonteHistogramMatchesNaive(t *testing.T) {
	a := largeArray(t, 900)
	ref, err := RunLarge(LargeConfig{Array: a, Seed: 2718, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLargeMonte(LargeMonteConfig{
		LargeConfig: LargeConfig{
			Array: a, Seed: 2718, Shards: 16,
			ObsOptions: ObsOptions{HeightLevels: 3},
		},
		Reps:              1,
		CollectLoadVector: true,
		ShardStats:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	final := ref.Array

	if got, want := res.MaxLoad.Mean(), final.MaxLoad(); got != want {
		t.Fatalf("MaxLoad %v, naive %v", got, want)
	}
	if got, want := res.AvgLoad.Mean(), final.AverageLoad(); got != want {
		t.Fatalf("AvgLoad %v, naive %v", got, want)
	}
	if want := naiveSortedDesc(final); !slices.Equal(res.MeanSortedLoads, want) {
		t.Fatalf("MeanSortedLoads diverge from naive sort at shards=16")
	}
	for k, want := range naiveHeights(final, 3) {
		if got := res.HeightCounts[k].Bins.Mean(); got != want {
			t.Fatalf("height level %d: %v, naive %v", k+1, got, want)
		}
	}
}

// TestRunLargeFinalHistogramMatchesScan: RunLarge's final fold uses
// the histogram only when heights are requested; both paths must
// report identical stats for the identical placement.
func TestRunLargeFinalHistogramMatchesScan(t *testing.T) {
	a := largeArray(t, 700)
	plain, err := RunLarge(LargeConfig{Array: a, Seed: 5, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	withHeights, err := RunLarge(LargeConfig{
		Array: a, Seed: 5, Shards: 8,
		ObsOptions: ObsOptions{HeightLevels: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.MaxLoad != withHeights.MaxLoad || plain.Deviation != withHeights.Deviation {
		t.Fatalf("heights request changed headline stats: %v/%v vs %v/%v",
			plain.MaxLoad, plain.Deviation, withHeights.MaxLoad, withHeights.Deviation)
	}
	for k, want := range naiveHeights(withHeights.Array, 5) {
		if got := withHeights.HeightCounts[k].Bins.Mean(); got != want {
			t.Fatalf("height level %d: %v, naive %v", k+1, got, want)
		}
	}
}
