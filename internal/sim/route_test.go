package sim

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bins"
	"repro/internal/protocol"
	"repro/internal/sampling"
	"repro/internal/xrand"
)

// TestRouteStreamContract pins the routing substream layout: block b
// of the pass on stream `idx` of seed `s` draws from
// xrand.NewBlockStream(s, idx, b) == New(Mix64(Mix64(s, idx), b)),
// and the hot loop's re-seed (Seed(Mix64(base, b))) is the identical
// state. Golden first outputs freeze the layout: a change here
// silently redefines every routing count.
func TestRouteStreamContract(t *testing.T) {
	const seed, stream = 20260727, 3
	for _, block := range []uint64{0, 1, 7, 152} {
		want := xrand.New(xrand.Mix64(xrand.Mix64(seed, stream), block))
		got := xrand.NewBlockStream(seed, stream, block)
		if *got != *want {
			t.Fatalf("block %d: NewBlockStream state differs from the documented composition", block)
		}
		var reseeded xrand.Rand
		reseeded.Seed(xrand.Mix64(xrand.Mix64(seed, stream), block))
		if reseeded != *want {
			t.Fatalf("block %d: re-seeded state differs from NewBlockStream", block)
		}
	}
	// Golden first outputs of the first three block substreams of
	// (seed 20260727, stream 0) — the RunLarge routing layout.
	want := []uint64{
		xrand.NewBlockStream(20260727, 0, 0).Uint64(),
		xrand.NewBlockStream(20260727, 0, 1).Uint64(),
		xrand.NewBlockStream(20260727, 0, 2).Uint64(),
	}
	got := []uint64{11123976445432256688, 14101672484335824344, 7258068234063164119}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("block substream outputs changed: %v, golden %v", want, got)
	}
}

// TestRoutingBlockAligned: the routing block is a multiple of the
// placement kernel's block size, so checkpoint cuts at routing-block
// boundaries stay compatible with the PlaceBatch segmentation rule.
func TestRoutingBlockAligned(t *testing.T) {
	if RoutingBlock%protocol.BlockSize != 0 {
		t.Fatalf("RoutingBlock %d not a multiple of protocol.BlockSize %d",
			RoutingBlock, protocol.BlockSize)
	}
}

// TestRouteGroupsMatchSerial: any fan-out of the same routing pass —
// 1, 2, 3 or 7 groups — merges to the identical counts and per-cut
// prefixes. This is the worker-independence substrate of the
// multinomial routing phase.
func TestRouteGroupsMatchSerial(t *testing.T) {
	weights := []float64{1, 5, 2, 0, 9, 3, 1, 4}
	mult, err := sampling.NewMultinomial(weights)
	if err != nil {
		t.Fatal(err)
	}
	const m = 5*RoutingBlock + 1234
	cuts := []int64{100, RoutingBlock, 2*RoutingBlock + 5000, m}
	cutBlocks, cutRems := cutPlan(cuts)
	base := xrand.Mix64(99, 0)

	ref := newRouteGroups(1, len(weights), len(cuts))
	ref[0].route(nil, "test", 0, base, mult, m, 0, 1, cutBlocks, cutRems)
	refCounts := make([]int64, len(weights))
	refPrefix := make([][]int64, len(cuts))
	for k := range refPrefix {
		refPrefix[k] = make([]int64, len(weights))
	}
	mergeRouteGroups(ref, refCounts, refPrefix)

	var total int64
	for _, c := range refCounts {
		total += c
	}
	if total != m {
		t.Fatalf("serial counts sum to %d, want %d", total, m)
	}
	if refCounts[3] != 0 {
		t.Fatalf("zero-weight shard routed %d balls", refCounts[3])
	}

	for _, g := range []int{2, 3, 7} {
		groups := newRouteGroups(g, len(weights), len(cuts))
		var wg sync.WaitGroup
		for gi := range groups {
			wg.Add(1)
			go func() {
				defer wg.Done()
				groups[gi].route(nil, "test", 0, base, mult, m, gi, len(groups), cutBlocks, cutRems)
			}()
		}
		wg.Wait()
		counts := make([]int64, len(weights))
		prefix := make([][]int64, len(cuts))
		for k := range prefix {
			prefix[k] = make([]int64, len(weights))
		}
		mergeRouteGroups(groups, counts, prefix)
		if !reflect.DeepEqual(counts, refCounts) {
			t.Fatalf("%d groups: counts %v, serial %v", g, counts, refCounts)
		}
		if !reflect.DeepEqual(prefix, refPrefix) {
			t.Fatalf("%d groups: prefixes %v, serial %v", g, prefix, refPrefix)
		}
	}
}

// TestRoutePrefixModel pins the checkpoint realisation rule: the
// prefix at B is the counts of all full blocks below B plus the first
// B mod RoutingBlock balls of the boundary block in shard order — so
// prefixes are column-monotone in the cut index, sum to exactly
// min(B, m) before alignment, and a cut at B == m reproduces the full
// counts.
func TestRoutePrefixModel(t *testing.T) {
	weights := []float64{2, 1, 4, 3}
	mult, err := sampling.NewMultinomial(weights)
	if err != nil {
		t.Fatal(err)
	}
	const m = 3*RoutingBlock + 777
	cuts := []int64{1, 4000, RoutingBlock + 9000, m}
	cutBlocks, cutRems := cutPlan(cuts)
	groups := newRouteGroups(1, len(weights), len(cuts))
	groups[0].route(nil, "test", 0, xrand.Mix64(7, 0), mult, m, 0, 1, cutBlocks, cutRems)
	counts := make([]int64, len(weights))
	prefix := make([][]int64, len(cuts))
	for k := range prefix {
		prefix[k] = make([]int64, len(weights))
	}
	mergeRouteGroups(groups, counts, prefix)

	for k, cut := range cuts {
		var sum int64
		for s := range weights {
			sum += prefix[k][s]
			if prefix[k][s] < 0 || prefix[k][s] > counts[s] {
				t.Fatalf("cut %d shard %d: prefix %d outside [0, %d]", k, s, prefix[k][s], counts[s])
			}
			if k > 0 && prefix[k][s] < prefix[k-1][s] {
				t.Fatalf("shard %d prefix shrank between cuts %d and %d", s, k-1, k)
			}
		}
		if sum != cut {
			t.Fatalf("cut at %d realised %d balls before alignment", cut, sum)
		}
	}
	if !reflect.DeepEqual(prefix[len(cuts)-1], counts) {
		t.Fatalf("cut at m: prefix %v != counts %v", prefix[len(cuts)-1], counts)
	}
}

// TestPrefixFill pins the shard-ordered partial fill of a boundary
// block.
func TestPrefixFill(t *testing.T) {
	block := []int64{5, 0, 3, 10}
	for _, tc := range []struct {
		budget int64
		want   []int64
	}{
		{0, []int64{0, 0, 0, 0}},
		{2, []int64{2, 0, 0, 0}},
		{5, []int64{5, 0, 0, 0}},
		{7, []int64{5, 0, 2, 0}},
		{18, []int64{5, 0, 3, 10}},
		{99, []int64{5, 0, 3, 10}},
	} {
		dst := make([]int64, 4)
		prefixFill(dst, block, tc.budget)
		if !reflect.DeepEqual(dst, tc.want) {
			t.Fatalf("budget %d: %v, want %v", tc.budget, dst, tc.want)
		}
	}
}

// TestRouteMatchesPerBallLaw: the multinomial routing counts follow
// the same law as a per-ball categorical pass — compare each shard's
// mean routed count across many repetitions-by-substream against the
// weight share, at 5 standard errors.
func TestRouteMatchesPerBallLaw(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	var total float64
	for _, w := range weights {
		total += w
	}
	mult, err := sampling.NewMultinomial(weights)
	if err != nil {
		t.Fatal(err)
	}
	const m = RoutingBlock + 5000
	const reps = 300
	sums := make([]float64, len(weights))
	counts := make([]int64, len(weights))
	for rep := 0; rep < reps; rep++ {
		groups := newRouteGroups(1, len(weights), 0)
		groups[0].route(nil, "test", 0, xrand.Mix64(uint64(rep), 0), mult, m, 0, 1, nil, nil)
		mergeRouteGroups(groups, counts, nil)
		for s, c := range counts {
			sums[s] += float64(c)
		}
	}
	for s, w := range weights {
		p := w / total
		mean := sums[s] / reps
		want := float64(m) * p
		se := math.Sqrt(float64(m)*p*(1-p)) / math.Sqrt(reps)
		if math.Abs(mean-want) > 5*se {
			t.Fatalf("shard %d: mean %v, want %v ± %v", s, mean, want, 5*se)
		}
	}
}

// TestRunLargeShardsWorkersCheckpointsMatrix is the bit-identity
// matrix of the new routing: across shards × workers × checkpoint
// sets, the full final state, every checkpoint row and every height
// row must be identical to the 1-worker run — and the final state
// must be identical to the run with no checkpoints at all.
func TestRunLargeShardsWorkersCheckpointsMatrix(t *testing.T) {
	a := largeArray(t, 3000)
	for _, shards := range []int{1, 5, 16} {
		for _, cuts := range [][]int64{nil, {700}, {300, 5000, 12000}} {
			var base *LargeResult
			for _, workers := range []int{1, 2, 3, 8} {
				res, err := RunLarge(LargeConfig{
					Array: a, Seed: 1234, Shards: shards, Workers: workers,
					ObsOptions: ObsOptions{Checkpoints: cuts, HeightLevels: 2},
				})
				if err != nil {
					t.Fatalf("shards=%d cuts=%v workers=%d: %v", shards, cuts, workers, err)
				}
				if base == nil {
					base = res
					continue
				}
				for i := 0; i < res.Array.N(); i++ {
					if res.Array.Balls(i) != base.Array.Balls(i) {
						t.Fatalf("shards=%d cuts=%v workers=%d: bin %d differs", shards, cuts, workers, i)
					}
				}
				if !reflect.DeepEqual(res.Checkpoints, base.Checkpoints) {
					t.Fatalf("shards=%d cuts=%v workers=%d: checkpoint rows differ", shards, cuts, workers)
				}
				if !reflect.DeepEqual(res.HeightCounts, base.HeightCounts) {
					t.Fatalf("shards=%d cuts=%v workers=%d: height rows differ", shards, cuts, workers)
				}
			}
		}
		// The final state never depends on which checkpoint set was
		// requested: compare the no-cut run against the 3-cut run.
		plain, err := RunLarge(LargeConfig{Array: a, Seed: 1234, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		cped, err := RunLarge(LargeConfig{
			Array: a, Seed: 1234, Shards: shards,
			ObsOptions: ObsOptions{Checkpoints: []int64{300, 5000, 12000}},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < plain.Array.N(); i++ {
			if plain.Array.Balls(i) != cped.Array.Balls(i) {
				t.Fatalf("shards=%d: checkpoints moved bin %d", shards, i)
			}
		}
	}
}

// TestRunLargeHugeBallCount exercises a genuinely multi-block routing
// pass (m spans several routing blocks) end to end: counts conserve,
// the state is worker-independent, and a mid-block checkpoint
// realises a plausible cut.
func TestRunLargeHugeBallCount(t *testing.T) {
	a := largeArray(t, 2000)
	const m = 2*RoutingBlock + 40000
	var base *LargeResult
	for _, workers := range []int{1, 4} {
		res, err := RunLarge(LargeConfig{
			Array: a, Seed: 5, Shards: 16, Workers: workers, Balls: m,
			ObsOptions: ObsOptions{Checkpoints: []int64{RoutingBlock + 100}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Array.TotalBalls(); got != m {
			t.Fatalf("placed %d balls, want %d", got, m)
		}
		if base == nil {
			base = res
			continue
		}
		for i := 0; i < res.Array.N(); i++ {
			if res.Array.Balls(i) != base.Array.Balls(i) {
				t.Fatalf("workers=%d: bin %d differs", workers, i)
			}
		}
	}
	row := &base.Checkpoints[0]
	if row.Reps() != 1 {
		t.Fatalf("multi-block cut unobserved (reps %d)", row.Reps())
	}
	real := int64(row.RealBalls.Mean())
	if real%protocol.BlockSize != 0 || real > RoutingBlock+100 || real <= 0 {
		t.Fatalf("realised %d balls at the mid-block cut", real)
	}
}

// TestRunLargeSingleBin: the degenerate 1-shard geometry routes every
// ball to the only shard without consuming multinomial draws it does
// not need.
func TestRunLargeSingleBin(t *testing.T) {
	arr, err := bins.Uniform(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLarge(LargeConfig{Array: arr, Seed: 1, Balls: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardBalls[0] != 1000 || res.Array.Balls(0) != 1000 {
		t.Fatalf("single bin got %v / %d balls", res.ShardBalls, res.Array.Balls(0))
	}
}
