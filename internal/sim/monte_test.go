package sim

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/bins"
	"repro/internal/dist"
	"repro/internal/protocol"
)

func TestRunLargeMonteValidation(t *testing.T) {
	a := largeArray(t, 100)
	if _, err := RunLargeMonte(LargeMonteConfig{Reps: 1}); err == nil {
		t.Error("nil array accepted")
	}
	if _, err := RunLargeMonte(LargeMonteConfig{LargeConfig: LargeConfig{Array: a}}); err == nil {
		t.Error("Reps = 0 accepted")
	}
	if _, err := RunLargeMonte(LargeMonteConfig{LargeConfig: LargeConfig{Array: a}, Reps: -2}); err == nil {
		t.Error("negative Reps accepted")
	}
	if _, err := RunLargeMonte(LargeMonteConfig{LargeConfig: LargeConfig{Array: a, Shards: 101}, Reps: 1}); err == nil {
		t.Error("shards > n accepted")
	}
	if _, err := RunLargeMonte(LargeMonteConfig{LargeConfig: LargeConfig{Array: a, Balls: -1}, Reps: 1}); err == nil {
		t.Error("negative balls accepted")
	}
}

// TestRunLargeMonteRepZeroMatchesRunLarge: with Reps = 1 the Monte
// engine must reproduce RunLarge exactly — repetition 0 consumes the
// identical stream layout (routing on stream 0, shard s on stream
// 1+s), so every statistic matches bit for bit.
func TestRunLargeMonteRepZeroMatchesRunLarge(t *testing.T) {
	a := largeArray(t, 1500)
	cases := []LargeConfig{
		{Array: a, Seed: 42, Shards: 16},
		{Array: a, Seed: 7, Shards: 5, Placer: protocol.GreedyFactory(4)},
		{Array: a, Seed: 9, Shards: 8, Balls: 3000, Placer: protocol.SingleFactory()},
		{Array: a, Seed: 11, Shards: 10, Dist: dist.TopOnly{MinCapacity: 10}},
		{Array: a, Seed: 3, Shards: 6, BallsFactor: 2.5},
	}
	for i, lc := range cases {
		want, err := RunLarge(lc)
		if err != nil {
			t.Fatalf("case %d: RunLarge: %v", i, err)
		}
		got, err := RunLargeMonte(LargeMonteConfig{LargeConfig: lc, Reps: 1})
		if err != nil {
			t.Fatalf("case %d: RunLargeMonte: %v", i, err)
		}
		if got.Balls != want.Balls || got.Shards != want.Shards || got.N != want.N {
			t.Fatalf("case %d: shape mismatch: %+v vs %+v", i, got, want)
		}
		if got.MaxLoad.Mean() != want.MaxLoad || got.AvgLoad.Mean() != want.AvgLoad ||
			got.Deviation.Mean() != want.Deviation {
			t.Fatalf("case %d: stats differ: max %v/%v avg %v/%v dev %v/%v", i,
				got.MaxLoad.Mean(), want.MaxLoad,
				got.AvgLoad.Mean(), want.AvgLoad,
				got.Deviation.Mean(), want.Deviation)
		}
	}
}

// TestRunLargeMonteBitIdenticalAcrossTopologies is the engine's core
// contract: the entire aggregate — every accumulator, the mean sorted
// load vector — is bit-identical for any Workers value, across shard
// and repetition counts (the race CI job runs these nested-pool
// combinations under -race as well).
func TestRunLargeMonteBitIdenticalAcrossTopologies(t *testing.T) {
	a := largeArray(t, 600)
	for _, shards := range []int{1, 4, 16} {
		for _, reps := range []int{1, 3, 10} {
			var base *LargeMonteResult
			for _, workers := range []int{1, 2, 3, 8} {
				res, err := RunLargeMonte(LargeMonteConfig{
					LargeConfig: LargeConfig{
						Array: a, Seed: 77, Shards: shards, Workers: workers,
					},
					Reps:              reps,
					CollectLoadVector: true,
				})
				if err != nil {
					t.Fatalf("shards=%d reps=%d workers=%d: %v", shards, reps, workers, err)
				}
				if base == nil {
					base = res
					continue
				}
				if !reflect.DeepEqual(base, res) {
					t.Fatalf("shards=%d reps=%d workers=%d: result differs from workers=1:\n got  %+v\n want %+v",
						shards, reps, workers, res, base)
				}
			}
		}
	}
}

// TestRunLargeMonteAggregates: repetitions are genuinely independent
// (nonzero variance), counts add up, and the gap aggregate is
// consistent with max/avg.
func TestRunLargeMonteAggregates(t *testing.T) {
	a := largeArray(t, 1000)
	res, err := RunLargeMonte(LargeMonteConfig{
		LargeConfig: LargeConfig{Array: a, Seed: 13, Shards: 8},
		Reps:        20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLoad.N() != 20 || res.Deviation.N() != 20 {
		t.Fatalf("accumulated %d/%d observations, want 20", res.MaxLoad.N(), res.Deviation.N())
	}
	if res.AvgLoad.Mean() != 1 {
		t.Fatalf("avg load %v, want 1 (m = C)", res.AvgLoad.Mean())
	}
	if res.AvgLoad.Min() != res.AvgLoad.Max() {
		t.Fatalf("avg load varies across reps of a fixed array: [%v, %v]",
			res.AvgLoad.Min(), res.AvgLoad.Max())
	}
	if res.MaxLoad.Variance() == 0 {
		t.Fatal("max load variance is exactly 0 over 20 reps (streams not independent?)")
	}
	if got, want := res.Deviation.Mean(), res.MaxLoad.Mean()-res.AvgLoad.Mean(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("deviation mean %v, max−avg %v", got, want)
	}
	// the caller's array must stay untouched
	if a.TotalBalls() != 0 {
		t.Fatal("RunLargeMonte mutated the config array")
	}
}

// TestRunLargeMonteLoadVector: on a uniform unit-capacity array the
// sorted load vector is the sorted ball-count vector, so its sum is
// exactly m in every repetition — and therefore in the mean.
func TestRunLargeMonteLoadVector(t *testing.T) {
	a, err := bins.Uniform(400, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLargeMonte(LargeMonteConfig{
		LargeConfig:       LargeConfig{Array: a, Seed: 21, Shards: 4},
		Reps:              6,
		CollectLoadVector: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MeanSortedLoads) != 400 {
		t.Fatalf("load vector length %d, want 400", len(res.MeanSortedLoads))
	}
	var sum float64
	for i, v := range res.MeanSortedLoads {
		sum += v
		if i > 0 && v > res.MeanSortedLoads[i-1] {
			t.Fatalf("mean sorted loads not non-increasing at %d", i)
		}
	}
	if math.Abs(sum-float64(res.Balls)) > 1e-9 {
		t.Fatalf("mean sorted loads sum %v, want m = %d", sum, res.Balls)
	}
	// without the flag no vector is produced
	res2, err := RunLargeMonte(LargeMonteConfig{
		LargeConfig: LargeConfig{Array: a, Seed: 21, Shards: 4},
		Reps:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.MeanSortedLoads != nil {
		t.Fatal("MeanSortedLoads produced without CollectLoadVector")
	}
}

// TestRunLargeMonteZeroWeightShards mirrors the RunLarge test: whole
// shards with zero selection weight must never receive balls and must
// not fail placer construction, across many repetitions.
func TestRunLargeMonteZeroWeightShards(t *testing.T) {
	a := largeArray(t, 1000)
	res, err := RunLargeMonte(LargeMonteConfig{
		LargeConfig: LargeConfig{
			Array:  a,
			Seed:   5,
			Dist:   dist.TopOnly{MinCapacity: 10},
			Shards: 20,
		},
		Reps: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLoad.N() != 5 {
		t.Fatalf("aggregated %d reps, want 5", res.MaxLoad.N())
	}
}

// TestRunLargeMonteFactoryError: a failing placer factory surfaces as
// an error, not a hang — every repetition still takes its fold turn.
func TestRunLargeMonteFactoryError(t *testing.T) {
	a := largeArray(t, 200)
	boom := func(*bins.Array, []float64) (protocol.Placer, error) {
		return nil, fmt.Errorf("boom")
	}
	for _, workers := range []int{1, 3} {
		_, err := RunLargeMonte(LargeMonteConfig{
			LargeConfig: LargeConfig{Array: a, Seed: 1, Shards: 4, Workers: workers, Placer: boom},
			Reps:        7,
		})
		if err == nil {
			t.Fatalf("workers=%d: factory error swallowed", workers)
		}
	}
}

// TestRunLargeMonteGoldenValues pins the Monte stream layout the way
// TestRunLargeGoldenValues pins the single-run layout: any change to
// the per-repetition stream offsets silently redefines every
// aggregate, so it must show up here and be deliberate.
func TestRunLargeMonteGoldenValues(t *testing.T) {
	a := largeArray(t, 512)
	res, err := RunLargeMonte(LargeMonteConfig{
		LargeConfig: LargeConfig{Array: a, Seed: 20260727, Shards: 8},
		Reps:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// rep 0 is the RunLarge golden configuration (max load 3, pinned
	// in TestRunLargeGoldenValues); the aggregate additionally pins
	// reps 1-3's offset streams. Re-pinned exactly once with the move
	// to block-wise multinomial routing; frozen from that point on.
	if res.MaxLoad.Min() != 3 || res.MaxLoad.Max() != 3 || res.MaxLoad.Mean() != 3 {
		t.Fatalf("max load min/max/mean = %v/%v/%v, golden 3/3/3",
			res.MaxLoad.Min(), res.MaxLoad.Max(), res.MaxLoad.Mean())
	}
	if res.Deviation.Mean() != 2 {
		t.Fatalf("deviation mean %v, golden 2", res.Deviation.Mean())
	}
}

// TestRunLargeMonteCheckpointedRepZero: with Reps = 1 and the full
// observation set requested, the Monte engine must reproduce a
// checkpointed RunLarge bit for bit — same cuts, same realised balls,
// same maxima, same height counts.
func TestRunLargeMonteCheckpointedRepZero(t *testing.T) {
	a := largeArray(t, 1500)
	lc := LargeConfig{
		Array: a, Seed: 42, Shards: 16,
		ObsOptions: ObsOptions{Checkpoints: []int64{1000, 4000, 8000}, HeightLevels: 4},
	}
	want, err := RunLarge(lc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunLargeMonte(LargeMonteConfig{LargeConfig: lc, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Checkpoints, want.Checkpoints) {
		t.Fatalf("checkpoint rows differ:\n got  %+v\n want %+v", got.Checkpoints, want.Checkpoints)
	}
	if !reflect.DeepEqual(got.HeightCounts, want.HeightCounts) {
		t.Fatalf("height rows differ:\n got  %+v\n want %+v", got.HeightCounts, want.HeightCounts)
	}
}

// TestRunLargeMonteObservationsBitIdenticalAcrossTopologies is the
// collector merge-determinism matrix of the unified observation
// subsystem: across shards × reps × workers, every checkpoint row,
// height row and shard-stat row must be bit-identical (the race CI
// job runs this under -race as well).
func TestRunLargeMonteObservationsBitIdenticalAcrossTopologies(t *testing.T) {
	a := largeArray(t, 600)
	for _, shards := range []int{1, 4, 16} {
		for _, reps := range []int{1, 3, 10} {
			var base *LargeMonteResult
			for _, workers := range []int{1, 2, 3, 8} {
				res, err := RunLargeMonte(LargeMonteConfig{
					LargeConfig: LargeConfig{
						Array: a, Seed: 77, Shards: shards, Workers: workers,
						ObsOptions: ObsOptions{Checkpoints: []int64{500, 1500, 3000}, HeightLevels: 3},
					},
					Reps:              reps,
					CollectLoadVector: true,
					ShardStats:        true,
				})
				if err != nil {
					t.Fatalf("shards=%d reps=%d workers=%d: %v", shards, reps, workers, err)
				}
				if base == nil {
					base = res
					continue
				}
				if !reflect.DeepEqual(base, res) {
					t.Fatalf("shards=%d reps=%d workers=%d: observations differ from workers=1:\n got  %+v\n want %+v",
						shards, reps, workers, res, base)
				}
			}
		}
	}
}

// TestRunLargeMonteCheckpointAggregates: realised balls vary with the
// per-repetition routing stream but stay block-aligned and <= the
// requested cut; every in-range cut is observed by every repetition.
func TestRunLargeMonteCheckpointAggregates(t *testing.T) {
	a := largeArray(t, 1000) // C = 5500
	res, err := RunLargeMonte(LargeMonteConfig{
		LargeConfig: LargeConfig{
			Array: a, Seed: 13, Shards: 8,
			ObsOptions: ObsOptions{Checkpoints: []int64{2000, 4000, 50000}},
		},
		Reps: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) != 3 {
		t.Fatalf("%d checkpoint rows", len(res.Checkpoints))
	}
	for i, row := range res.Checkpoints[:2] {
		if row.Reps() != 12 {
			t.Fatalf("cut %d observed %d/12 times", i, row.Reps())
		}
		if row.RealBalls.Max() > float64(row.Balls) {
			t.Fatalf("cut %d realised %v > requested %d", i, row.RealBalls.Max(), row.Balls)
		}
		if int64(row.RealBalls.Min())%protocol.BlockSize != 0 ||
			int64(row.RealBalls.Max())%protocol.BlockSize != 0 {
			t.Fatalf("cut %d realised balls not block-aligned: [%v, %v]",
				i, row.RealBalls.Min(), row.RealBalls.Max())
		}
	}
	if res.Checkpoints[2].Reps() != 0 {
		t.Fatalf("cut beyond m observed %d times", res.Checkpoints[2].Reps())
	}
	// routing varies per repetition, so realised cuts should too (the
	// odds of 12 identical aligned prefixes are negligible)
	if row := res.Checkpoints[0]; row.RealBalls.Min() == row.RealBalls.Max() {
		t.Logf("warning: realised balls identical across reps: %v", row.RealBalls.Mean())
	}
}

// TestRunLargeMonteShardStats: shard rows aggregate exactly Reps
// observations, the routed-ball means sum to m, and shard maxima are
// consistent with the global max.
func TestRunLargeMonteShardStats(t *testing.T) {
	a := largeArray(t, 1000)
	res, err := RunLargeMonte(LargeMonteConfig{
		LargeConfig: LargeConfig{Array: a, Seed: 21, Shards: 8},
		Reps:        6,
		ShardStats:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardStats == nil || res.ShardStats.Shards() != 8 {
		t.Fatal("shard stats missing")
	}
	var ballSum, maxOfMax float64
	for _, row := range res.ShardStats.Rows() {
		if row.Balls.N() != 6 {
			t.Fatalf("shard %d has %d observations", row.Shard, row.Balls.N())
		}
		ballSum += row.Balls.Mean()
		if row.MaxLoad.Max() > maxOfMax {
			maxOfMax = row.MaxLoad.Max()
		}
	}
	if math.Abs(ballSum-float64(res.Balls)) > 1e-9 {
		t.Fatalf("mean shard balls sum %v, want m = %d", ballSum, res.Balls)
	}
	if maxOfMax != res.MaxLoad.Max() {
		t.Fatalf("max of shard maxima %v, global worst max %v", maxOfMax, res.MaxLoad.Max())
	}
	// without the flag no stats are produced
	res2, err := RunLargeMonte(LargeMonteConfig{
		LargeConfig: LargeConfig{Array: a, Seed: 21, Shards: 8},
		Reps:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ShardStats != nil {
		t.Fatal("ShardStats produced without the flag")
	}
}
