// Package dist defines the bin-selection probability distributions of the
// paper: the rule by which a ball picks each of its d candidate bins from
// a heterogeneous array.
//
// A Distribution turns a bins.Array into a non-negative weight vector; the
// sampling layer normalises, so weights need not sum to 1. The paper's
// standard assumption is Proportional (p_i = c_i/C); Uniform, Power (the
// §4.5 tunable family p_i ∝ c_i^t), TopOnly (Theorem 5's "big bins only"
// rule) and Custom (explicit weights) cover the remaining experiments.
package dist

import (
	"fmt"
	"math"

	"repro/internal/bins"
)

// Distribution maps a bin array to selection weights.
type Distribution interface {
	// Weights returns one non-negative selection weight per bin. At
	// least one weight must be positive; implementations fail loudly
	// when the distribution degenerates on the given array.
	Weights(a *bins.Array) ([]float64, error)
	// Name identifies the distribution in reports.
	Name() string
}

// Proportional selects bin i with probability c_i/C — the paper's
// standard assumption and the default everywhere.
type Proportional struct{}

// Weights implements Distribution.
func (Proportional) Weights(a *bins.Array) ([]float64, error) {
	if a == nil {
		return nil, fmt.Errorf("dist: nil array")
	}
	w := make([]float64, a.N())
	for i := range w {
		w[i] = float64(a.Capacity(i))
	}
	return w, nil
}

// Name implements Distribution.
func (Proportional) Name() string { return "proportional" }

// Uniform selects every bin with probability 1/n regardless of capacity.
type Uniform struct{}

// Weights implements Distribution.
func (Uniform) Weights(a *bins.Array) ([]float64, error) {
	if a == nil {
		return nil, fmt.Errorf("dist: nil array")
	}
	w := make([]float64, a.N())
	for i := range w {
		w[i] = 1
	}
	return w, nil
}

// Name implements Distribution.
func (Uniform) Name() string { return "uniform" }

// Power selects bin i with probability proportional to c_i^T — the
// paper's §4.5 tunable family. T = 1 is Proportional, T = 0 is Uniform.
type Power struct {
	T float64
}

// Weights implements Distribution.
func (p Power) Weights(a *bins.Array) ([]float64, error) {
	if a == nil {
		return nil, fmt.Errorf("dist: nil array")
	}
	if p.T != p.T {
		return nil, fmt.Errorf("dist: power exponent is NaN")
	}
	w := make([]float64, a.N())
	for i := range w {
		w[i] = math.Pow(float64(a.Capacity(i)), p.T)
	}
	return w, nil
}

// Name implements Distribution.
func (p Power) Name() string { return fmt.Sprintf("power(t=%g)", p.T) }

// TopOnly selects uniformly among bins with capacity at least MinCapacity
// and never selects smaller bins (the Theorem 5 setup).
type TopOnly struct {
	MinCapacity int64
}

// Weights implements Distribution.
func (t TopOnly) Weights(a *bins.Array) ([]float64, error) {
	if a == nil {
		return nil, fmt.Errorf("dist: nil array")
	}
	w := make([]float64, a.N())
	any := false
	for i := range w {
		if a.Capacity(i) >= t.MinCapacity {
			w[i] = 1
			any = true
		}
	}
	if !any {
		return nil, fmt.Errorf("dist: no bin has capacity >= %d", t.MinCapacity)
	}
	return w, nil
}

// Name implements Distribution.
func (t TopOnly) Name() string { return fmt.Sprintf("top-only(c>=%d)", t.MinCapacity) }

// Custom selects bins with explicit per-bin weights (length must equal
// the array size). Desc names the distribution in reports.
type Custom struct {
	W    []float64
	Desc string
}

// Weights implements Distribution.
func (c Custom) Weights(a *bins.Array) ([]float64, error) {
	if a == nil {
		return nil, fmt.Errorf("dist: nil array")
	}
	if len(c.W) != a.N() {
		return nil, fmt.Errorf("dist: %d custom weights for %d bins", len(c.W), a.N())
	}
	w := make([]float64, len(c.W))
	copy(w, c.W)
	return w, nil
}

// Name implements Distribution.
func (c Custom) Name() string {
	if c.Desc == "" {
		return "custom"
	}
	return c.Desc
}

var (
	_ Distribution = Proportional{}
	_ Distribution = Uniform{}
	_ Distribution = Power{}
	_ Distribution = TopOnly{}
	_ Distribution = Custom{}
)
