// Package coupling implements the coupled pair of processes from the
// proof of Lemma 1 and audits the majorisation invariant the proof rests
// on.
//
// Lemma 1 states that the maximum load of the d-choice process P on
// heterogeneous bins (total capacity C) is stochastically dominated by
// the maximum load of the process Q on C unit bins. The proof couples
// the two processes through slot *ranks*: each ball draws d positions
// into the normalised slot load vector; Q allocates into the slot at the
// deepest drawn rank (a least-loaded chosen slot), P into the bin owning
// the slot at that same rank of its own normalised slot vector. The
// invariant is that Q's normalised slot vector majorises P's after every
// ball.
//
// Coupled replays this construction step by step and reports the first
// violation, if any — the executable version of the paper's Lemma 1
// argument. The test suite and the lemma1-coupling experiment drive it.
package coupling

import (
	"fmt"

	"repro/internal/bins"
	"repro/internal/loadvec"
	"repro/internal/xrand"
)

// Coupled is a pair of processes (heterogeneous P, unit-bin Q) advanced
// with shared slot-rank choices.
type Coupled struct {
	het  *bins.Array
	unit *bins.Array
	d    int
	c    int // total capacity = number of slots/unit bins
	step int64
}

// New builds a coupled pair over the given heterogeneous capacities.
func New(capacities []int64, d int) (*Coupled, error) {
	if d < 1 {
		return nil, fmt.Errorf("coupling: d = %d", d)
	}
	het, err := bins.New(capacities)
	if err != nil {
		return nil, err
	}
	c := int(het.TotalCapacity())
	unit, err := bins.Uniform(c, 1)
	if err != nil {
		return nil, err
	}
	return &Coupled{het: het, unit: unit, d: d, c: c}, nil
}

// Step advances both processes by one ball using ranks drawn from r and
// returns whether Q's normalised slot vector still majorises P's.
func (cp *Coupled) Step(r *xrand.Rand) (bool, error) {
	// The deepest drawn rank indexes a least-loaded chosen slot (the
	// normalised vector is sorted by non-increasing load).
	h := 0
	for j := 0; j < cp.d; j++ {
		if rk := r.Intn(cp.c); rk > h {
			h = rk
		}
	}
	cp.unit.Add(binAtRank(cp.unit, h))
	cp.het.Add(binAtRank(cp.het, h))
	cp.step++
	return cp.Holds()
}

// Holds checks the majorisation invariant at the current state.
func (cp *Coupled) Holds() (bool, error) {
	sp := loadvec.Build(cp.het).NormalizedLoads()
	sq := loadvec.Build(cp.unit).NormalizedLoads()
	return loadvec.MajorizesInt(sq, sp)
}

// Steps returns the number of balls placed so far.
func (cp *Coupled) Steps() int64 { return cp.step }

// MaxLoads returns (P's max load, Q's max load).
func (cp *Coupled) MaxLoads() (het, unit float64) {
	return cp.het.MaxLoad(), cp.unit.MaxLoad()
}

// Het returns the heterogeneous process's array.
func (cp *Coupled) Het() *bins.Array { return cp.het }

// Unit returns the unit-bin process's array.
func (cp *Coupled) Unit() *bins.Array { return cp.unit }

// binAtRank returns the bin owning the slot at position rank of the
// normalised slot vector of a.
func binAtRank(a *bins.Array, rank int) int {
	return loadvec.Build(a).Normalized()[rank].Bin
}

// AuditResult summarises a full coupled run.
type AuditResult struct {
	// Balls is the number of balls placed.
	Balls int64
	// Violation is the 1-based ball index of the first majorisation
	// violation, or 0 when the invariant held throughout.
	Violation int64
	// HetMaxLoad and UnitMaxLoad are the final maximum loads.
	HetMaxLoad, UnitMaxLoad float64
}

// Audit runs m coupled balls and reports whether the invariant held at
// every step.
func Audit(capacities []int64, d int, m int64, seed uint64) (*AuditResult, error) {
	cp, err := New(capacities, d)
	if err != nil {
		return nil, err
	}
	r := xrand.New(seed)
	res := &AuditResult{Balls: m}
	for i := int64(1); i <= m; i++ {
		ok, err := cp.Step(r)
		if err != nil {
			return nil, err
		}
		if !ok && res.Violation == 0 {
			res.Violation = i
		}
	}
	res.HetMaxLoad, res.UnitMaxLoad = cp.MaxLoads()
	return res, nil
}
