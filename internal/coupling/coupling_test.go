package coupling

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 2); err == nil {
		t.Error("empty capacities accepted")
	}
	if _, err := New([]int64{1}, 0); err == nil {
		t.Error("d = 0 accepted")
	}
	if _, err := New([]int64{0}, 2); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestCoupledStateAccess(t *testing.T) {
	cp, err := New([]int64{2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Het().N() != 2 || cp.Unit().N() != 5 {
		t.Fatalf("N het=%d unit=%d", cp.Het().N(), cp.Unit().N())
	}
	if cp.Steps() != 0 {
		t.Fatal("fresh coupled pair has steps")
	}
	ok, err := cp.Holds()
	if err != nil || !ok {
		t.Fatalf("empty state should majorise trivially: %v %v", ok, err)
	}
	r := xrand.New(1)
	if _, err := cp.Step(r); err != nil {
		t.Fatal(err)
	}
	if cp.Steps() != 1 {
		t.Fatalf("Steps = %d", cp.Steps())
	}
	if cp.Het().TotalBalls() != 1 || cp.Unit().TotalBalls() != 1 {
		t.Fatal("Step did not place one ball in each process")
	}
}

func TestAuditInvariantHolds(t *testing.T) {
	configs := [][]int64{
		{4, 4},
		{1, 2, 3},
		{1, 1, 1, 1, 8},
		{5, 1, 3, 1},
		{2, 2, 2, 2, 2, 2},
	}
	for _, caps := range configs {
		var total int64
		for _, c := range caps {
			total += c
		}
		for _, d := range []int{1, 2, 3} {
			res, err := Audit(caps, d, 2*total, 99)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != 0 {
				t.Fatalf("caps %v d=%d: majorisation violated at ball %d", caps, d, res.Violation)
			}
			if res.HetMaxLoad > res.UnitMaxLoad {
				t.Fatalf("caps %v d=%d: het max %v exceeds unit max %v in the coupled run",
					caps, d, res.HetMaxLoad, res.UnitMaxLoad)
			}
		}
	}
}

// Property: the coupled invariant holds for random capacity vectors,
// choices of d, and seeds.
func TestQuickAuditHolds(t *testing.T) {
	f := func(seed uint64, raw []uint8, dRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 6 {
			raw = raw[:6]
		}
		caps := make([]int64, len(raw))
		var total int64
		for i, v := range raw {
			caps[i] = int64(v%6) + 1
			total += caps[i]
		}
		d := int(dRaw%3) + 1
		res, err := Audit(caps, d, total, seed)
		if err != nil {
			return false
		}
		return res.Violation == 0 && res.HetMaxLoad <= res.UnitMaxLoad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCoupledStep(b *testing.B) {
	cp, err := New([]int64{1, 2, 3, 4, 5, 6, 7, 8}, 2)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.Step(r); err != nil {
			b.Fatal(err)
		}
	}
}
