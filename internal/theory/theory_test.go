package theory

import (
	"math"
	"strings"
	"testing"
)

func TestTwoChoiceBound(t *testing.T) {
	// ln ln 10000 / ln 2 ≈ 3.2033
	got := TwoChoiceBound(10000, 2)
	if math.Abs(got-3.2033) > 0.001 {
		t.Fatalf("TwoChoiceBound(10000, 2) = %v", got)
	}
	// growing d shrinks the bound
	if TwoChoiceBound(10000, 4) >= got {
		t.Fatal("bound should decrease with d")
	}
	// invalid inputs
	if !math.IsNaN(TwoChoiceBound(2, 2)) {
		t.Error("n < 3 should be NaN")
	}
	if !math.IsNaN(TwoChoiceBound(100, 1)) {
		t.Error("d < 2 should be NaN")
	}
}

func TestHeavyDeviationEqualsTwoChoice(t *testing.T) {
	if HeavyDeviation(500, 2) != TwoChoiceBound(500, 2) {
		t.Fatal("HeavyDeviation should equal TwoChoiceBound")
	}
}

func TestUniformCapacityMaxLoad(t *testing.T) {
	// m = c·n: prediction 1 + lnln(n)/(ln d · c)
	n, c := 10000, int64(4)
	m := c * int64(n)
	got := UniformCapacityMaxLoad(m, n, 2, c)
	want := 1 + TwoChoiceBound(n, 2)/float64(c)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
	if !math.IsNaN(UniformCapacityMaxLoad(10, 10, 2, 0)) {
		t.Error("c = 0 should be NaN")
	}
}

func TestBigThreshold(t *testing.T) {
	got := BigThreshold(10000, 1)
	if math.Abs(got-math.Log(10000)) > 1e-12 {
		t.Fatalf("BigThreshold = %v", got)
	}
	if BigThreshold(10000, 2) != 2*got {
		t.Fatal("threshold not linear in r")
	}
}

func TestExpectedSmallOnlyBalls(t *testing.T) {
	// C = 100, Cs = 10, d = 2 → 100 · (0.1)² = 1
	got := ExpectedSmallOnlyBalls(100, 10, 2)
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("E[Xs] = %v", got)
	}
	// d = 3 → 0.1
	got = ExpectedSmallOnlyBalls(100, 10, 3)
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("E[Xs] = %v", got)
	}
	if !math.IsNaN(ExpectedSmallOnlyBalls(0, 10, 2)) {
		t.Error("C = 0 should be NaN")
	}
	if !math.IsNaN(ExpectedSmallOnlyBalls(10, -1, 2)) {
		t.Error("Cs < 0 should be NaN")
	}
}

func TestTheorem2SmallCapacityBound(t *testing.T) {
	// d = 2, C = 10000: sqrt(C)·sqrt(log C) = 100·sqrt(9.21) ≈ 303.5
	got := Theorem2SmallCapacityBound(10000, 2)
	want := 100 * math.Sqrt(math.Log(10000))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("bound = %v, want %v", got, want)
	}
	// larger d pushes the bound towards C
	if Theorem2SmallCapacityBound(10000, 4) <= got {
		t.Fatal("bound should grow with d")
	}
	if !math.IsNaN(Theorem2SmallCapacityBound(1, 2)) {
		t.Error("C < 2 should be NaN")
	}
}

func TestChernoffUpperTail(t *testing.T) {
	// eps = 1, mu = 3·ln(10) → bound = 0.1
	mu := 3 * math.Log(10)
	got := ChernoffUpperTail(mu, 1)
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("Chernoff = %v", got)
	}
	if ChernoffUpperTail(10, 0) != 1 {
		t.Error("eps = 0 should give bound 1")
	}
	if !math.IsNaN(ChernoffUpperTail(-1, 1)) {
		t.Error("negative mu should be NaN")
	}
}

func TestTheorem5MaxLoad(t *testing.T) {
	if got := Theorem5MaxLoad(1, 0.5); got != 2 {
		t.Fatalf("k/alpha = %v", got)
	}
	if !math.IsNaN(Theorem5MaxLoad(1, 0)) {
		t.Error("alpha = 0 should be NaN")
	}
	if !math.IsNaN(Theorem5MaxLoad(0, 0.5)) {
		t.Error("k = 0 should be NaN")
	}
	if !math.IsNaN(Theorem5MaxLoad(1, 1.5)) {
		t.Error("alpha > 1 should be NaN")
	}
}

func TestDescribe(t *testing.T) {
	s := Describe(10000, 2)
	for _, frag := range []string{"n=10000", "d=2", "3.20"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("Describe missing %q: %s", frag, s)
		}
	}
}
