// Package theory collects the closed-form quantities the paper proves or
// cites, so experiments and tests can compare measurements against
// predictions.
//
// All bounds here are asymptotic statements with unspecified constants
// (the ubiquitous O(1)); callers should treat them as shape predictions,
// not exact values. The test suite checks measured values against these
// predictions with generous constant slack, which is exactly the claim
// the paper's own simulations make ("the asymptotic bounds behave well in
// practice").
package theory

import (
	"fmt"
	"math"
)

// TwoChoiceBound returns ln ln(n) / ln(d), the leading term of the
// maximum load for the d-choice game with m = n (Azar et al., and the
// paper's Theorem 3 for heterogeneous bins with m = C).
func TwoChoiceBound(n int, d int) float64 {
	if n < 3 || d < 2 {
		return math.NaN()
	}
	return math.Log(math.Log(float64(n))) / math.Log(float64(d))
}

// HeavyDeviation returns the leading term of the deviation of the maximum
// from the average in the heavily loaded uniform game: ln ln(n)/ln(d)
// (Berenbrink et al., the paper's Theorem 4 citation). Notably it does
// not depend on m.
func HeavyDeviation(n int, d int) float64 {
	return TwoChoiceBound(n, d)
}

// UniformCapacityMaxLoad returns Observation 2's prediction for n bins of
// equal capacity c receiving m balls with d >= 2 choices:
// (m/n + ln ln n/ln d) / c.
func UniformCapacityMaxLoad(m int64, n int, d int, c int64) float64 {
	if c < 1 {
		return math.NaN()
	}
	return (float64(m)/float64(n) + TwoChoiceBound(n, d)) / float64(c)
}

// BigThreshold returns r·ln(n), the capacity at which a bin becomes "big"
// in the paper's analysis.
func BigThreshold(n int, r float64) float64 {
	return r * math.Log(float64(n))
}

// ExpectedSmallOnlyBalls returns E[Xs] = C · (Cs/C)^d, the expected
// number of balls whose d choices all land in small bins (Theorem 2).
func ExpectedSmallOnlyBalls(c, cs int64, d int) float64 {
	if c <= 0 || cs < 0 || d < 1 {
		return math.NaN()
	}
	return float64(c) * math.Pow(float64(cs)/float64(c), float64(d))
}

// Theorem2SmallCapacityBound returns the largest small-bin capacity
// C_s for which Theorem 2 guarantees constant maximum load:
// C^((d-1)/d) · (log C)^(1/d).
func Theorem2SmallCapacityBound(c int64, d int) float64 {
	if c < 2 || d < 2 {
		return math.NaN()
	}
	cf := float64(c)
	df := float64(d)
	return math.Pow(cf, (df-1)/df) * math.Pow(math.Log(cf), 1/df)
}

// ChernoffUpperTail returns the multiplicative Chernoff bound
// P[X >= (1+eps)·mu] <= exp(-eps²·mu/3) used in Observation 1.
func ChernoffUpperTail(mu, eps float64) float64 {
	if mu < 0 || eps < 0 {
		return math.NaN()
	}
	return math.Exp(-eps * eps * mu / 3)
}

// Observation1LoadBound is the constant load bound for big bins: 4.
const Observation1LoadBound = 4.0

// Theorem5MaxLoad returns the Theorem 5 prediction k/α + O(1) for the
// top-only distribution, where m = k·C balls land on the α·n bins of
// capacity q(n).
func Theorem5MaxLoad(k, alpha float64) float64 {
	if alpha <= 0 || alpha > 1 || k <= 0 {
		return math.NaN()
	}
	return k / alpha
}

// Describe renders the key predicted quantities for an (n, d) pair; used
// by cmd/bnbtheory.
func Describe(n int, d int) string {
	return fmt.Sprintf(
		"n=%d d=%d: lnln(n)/ln(d)=%.4f  big-threshold(r=1)=%.2f  thm2-Cs-bound(C=n)=%.2f",
		n, d, TwoChoiceBound(n, d), BigThreshold(n, 1),
		Theorem2SmallCapacityBound(int64(n), d))
}
