package fault

import "time"

// Action is what an armed plan does when its site is hit.
type Action uint8

const (
	// Panic panics with an *Injected carrying the hit site.
	Panic Action = iota
	// Delay sleeps for Plan.Sleep before returning — the hook for
	// stragglers and ordering stress, not for failures.
	Delay
	// CancelRun calls Plan.Cancel (typically a context.CancelFunc), so
	// a test can cancel a run at an exact logical point — e.g. "at
	// routing block 3 of repetition 2" — instead of at a wall-clock
	// instant.
	CancelRun
)

// Plan is one armed fault: a site pattern, an action, and an optional
// hit selector. Plans are immutable once armed.
type Plan struct {
	// Match is the site pattern; wildcard fields (empty Engine, OpAny,
	// negative indices) match anything.
	Match Site
	// Do selects the action taken on a matching hit.
	Do Action
	// Msg labels injected panics (Panic action).
	Msg string
	// Sleep is the Delay action's duration.
	Sleep time.Duration
	// Cancel is the CancelRun action's callback (required for it).
	Cancel func()
	// Count fires the action on the n-th matching hit only (1-based);
	// 0 means every matching hit. With Once set, the plan disarms
	// itself after firing.
	Count int
	// Once disarms the plan after its first firing.
	Once bool
}
