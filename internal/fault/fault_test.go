package fault

import "testing"

// TestMatches pins the wildcard semantics plans rely on.
func TestMatches(t *testing.T) {
	site := Site{Engine: "RunLargeMonte", Op: OpPlace, Rep: 3, Shard: 7, Block: -1}
	cases := []struct {
		pattern Site
		want    bool
	}{
		{Site{Rep: -1, Shard: -1, Block: -1}, true},                                     // all wildcards
		{Site{Engine: "RunLargeMonte", Op: OpPlace, Rep: 3, Shard: 7, Block: -1}, true}, // exact
		{Site{Engine: "RunLarge", Op: OpAny, Rep: -1, Shard: -1, Block: -1}, false},     // wrong engine
		{Site{Op: OpRoute, Rep: -1, Shard: -1, Block: -1}, false},                       // wrong op
		{Site{Op: OpPlace, Rep: 2, Shard: -1, Block: -1}, false},                        // wrong rep
		{Site{Op: OpPlace, Rep: -1, Shard: 7, Block: -1}, true},                         // shard only
		{Site{Op: OpPlace, Rep: -1, Shard: -1, Block: 4}, false},                        // block set, site has -1
		{Site{Engine: "", Op: OpAny, Rep: 3, Shard: 7, Block: -1}, true},                // indices only
	}
	for i, c := range cases {
		if got := c.pattern.matches(site); got != c.want {
			t.Errorf("case %d: matches(%+v) = %v, want %v", i, c.pattern, got, c.want)
		}
	}
}

// TestOpStrings keeps provenance messages readable.
func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		OpAny: "any", OpRoute: "route", OpPlace: "place", OpReset: "reset",
		OpSummary: "summary", OpChunk: "chunk", OpOrchestrator: "orchestrator",
	} {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
}
