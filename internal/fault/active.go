//go:build faultinject

package fault

import (
	"sync/atomic"
	"time"
)

// Enabled is true in -tags faultinject builds: the engines' site hooks
// call into the armed registry.
const Enabled = true

// armedPlan pairs a Plan with its hit counter. Counters are atomic so
// concurrent pool tasks hitting the same pattern race safely; the
// deterministic chaos tests pin sites precisely enough (exact rep /
// shard / block) that at most one hit matches anyway.
type armedPlan struct {
	plan  Plan
	hits  atomic.Int64
	fired atomic.Bool
}

// registry is the currently armed plan set (nil = nothing armed).
// Swapped atomically so Arm/disarm from a test goroutine never races
// the engines' Hit calls.
var registry atomic.Pointer[[]*armedPlan]

// Arm installs the given plans, replacing any previously armed set,
// and returns a disarm func that removes them again. Tests must defer
// the disarm so an armed fault never leaks into the next test.
func Arm(plans ...Plan) (disarm func()) {
	set := make([]*armedPlan, len(plans))
	for i := range plans {
		set[i] = &armedPlan{plan: plans[i]}
	}
	registry.Store(&set)
	return func() { registry.Store(nil) }
}

// Hit checks the site against every armed plan and performs the first
// matching plan's action. Panics propagate to the engine's recovery
// layer — exactly like a genuine bug at that site would.
func Hit(s Site) {
	setp := registry.Load()
	if setp == nil {
		return
	}
	for _, ap := range *setp {
		if !ap.plan.Match.matches(s) {
			continue
		}
		n := ap.hits.Add(1)
		if ap.plan.Count > 0 && n != int64(ap.plan.Count) {
			continue
		}
		if ap.plan.Once && !ap.fired.CompareAndSwap(false, true) {
			continue
		}
		switch ap.plan.Do {
		case Panic:
			panic(&Injected{Site: s, Msg: ap.plan.Msg})
		case Delay:
			time.Sleep(ap.plan.Sleep)
		case CancelRun:
			if ap.plan.Cancel != nil {
				ap.plan.Cancel()
			}
		}
		return
	}
}
