//go:build !faultinject

package fault

// Enabled is false in normal builds: every `if fault.Enabled { ... }`
// guard in the engines is deleted by the compiler, so the hooks cost
// nothing — no branch, no call, no site construction.
const Enabled = false

// Hit is a no-op in normal builds.
func Hit(Site) {}

// Arm is a no-op in normal builds; the returned disarm func is also a
// no-op. Chaos tests that need faults to actually fire must be build-
// tagged `faultinject` (they assert on fault.Enabled).
func Arm(...Plan) (disarm func()) { return func() {} }
