//go:build faultinject

package fault

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// mustPanic runs f and returns the *Injected it panicked with, failing
// the test if it did not panic or panicked with something else.
func mustPanic(t *testing.T, f func()) *Injected {
	t.Helper()
	var inj *Injected
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("no panic fired")
			}
			var ok bool
			if inj, ok = r.(*Injected); !ok {
				t.Fatalf("panicked with %T, want *Injected", r)
			}
		}()
		f()
	}()
	return inj
}

func TestArmPanic(t *testing.T) {
	disarm := Arm(Plan{
		Match: Site{Engine: "RunLarge", Op: OpPlace, Rep: -1, Shard: 2, Block: -1},
		Do:    Panic, Msg: "boom",
	})
	defer disarm()

	// Non-matching sites pass through untouched.
	Hit(Site{Engine: "RunLarge", Op: OpPlace, Rep: 0, Shard: 1, Block: -1})
	Hit(Site{Engine: "Run", Op: OpChunk, Rep: 2, Shard: -1, Block: -1})

	inj := mustPanic(t, func() {
		Hit(Site{Engine: "RunLarge", Op: OpPlace, Rep: 0, Shard: 2, Block: -1})
	})
	if inj.Site.Shard != 2 || inj.Msg != "boom" {
		t.Fatalf("injected payload %+v, want shard 2 / boom", inj)
	}
	var err error = inj
	if !errors.As(err, &inj) {
		t.Fatal("*Injected does not satisfy error")
	}

	disarm()
	Hit(Site{Engine: "RunLarge", Op: OpPlace, Rep: 0, Shard: 2, Block: -1}) // disarmed: no panic
}

func TestArmCountAndOnce(t *testing.T) {
	defer Arm(Plan{
		Match: Site{Op: OpRoute, Rep: -1, Shard: -1, Block: -1},
		Do:    Panic, Msg: "third", Count: 3, Once: true,
	})()
	s := Site{Engine: "RunLarge", Op: OpRoute, Rep: 0, Shard: 0, Block: 0}
	Hit(s)
	Hit(s)
	mustPanic(t, func() { Hit(s) })
	Hit(s) // Once: never fires again
}

func TestArmCancelAndDelay(t *testing.T) {
	var cancelled atomic.Bool
	defer Arm(
		Plan{
			Match:  Site{Op: OpSummary, Rep: 1, Shard: -1, Block: -1},
			Do:     CancelRun,
			Cancel: func() { cancelled.Store(true) },
		},
		Plan{
			Match: Site{Op: OpReset, Rep: -1, Shard: -1, Block: -1},
			Do:    Delay, Sleep: time.Millisecond,
		},
	)()
	Hit(Site{Engine: "RunLargeMonte", Op: OpSummary, Rep: 0, Shard: -1, Block: -1})
	if cancelled.Load() {
		t.Fatal("cancel fired on the wrong repetition")
	}
	Hit(Site{Engine: "RunLargeMonte", Op: OpSummary, Rep: 1, Shard: -1, Block: -1})
	if !cancelled.Load() {
		t.Fatal("cancel did not fire")
	}
	start := time.Now()
	Hit(Site{Engine: "RunLargeMonte", Op: OpReset, Rep: 0, Shard: 3, Block: -1})
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay did not sleep")
	}
}
