// Package fault is the deterministic fault-injection harness behind
// the engines' chaos test matrix: engines mark every pool-task site
// (a routing block, a shard placement, a per-repetition reset or
// summary, a classic chunk repetition, a Monte orchestrator step) with
// a Hit call, and a test armed with a Plan makes exactly the matching
// site panic, stall, or cancel the run.
//
// # Zero cost in normal builds
//
// The package has two implementations selected by the `faultinject`
// build tag. The default build defines Enabled as the constant false
// and Hit as a no-op, so every engine call site
//
//	if fault.Enabled {
//		fault.Hit(fault.Site{...})
//	}
//
// is dead code the compiler deletes entirely — the hot paths carry no
// branch, no call, and no argument construction. Builds with
// -tags faultinject compile the real registry; the chaos CI job runs
// the engine test suite (plus the dedicated chaos matrix) that way,
// under -race.
//
// # Determinism
//
// A Plan matches on the site identity (engine, operation, repetition,
// shard/group index, routing-block index), not on timing: the engines'
// sites are part of their deterministic execution model, so "panic at
// {rep 3, shard 7}" fires at the same logical point of the computation
// on every run and under every worker topology. Wildcards (empty
// engine, OpAny, -1 indices) widen a match; Count selects the n-th
// matching hit when one logical site is visited repeatedly.
package fault

// Op identifies the kind of engine operation a site belongs to.
type Op uint8

const (
	// OpAny matches every operation (plans only; sites never carry it).
	OpAny Op = iota
	// OpRoute is one routing block of a sharded engine's Phase-1 pass.
	OpRoute
	// OpPlace is one shard's placement task.
	OpPlace
	// OpReset is one shard view's between-repetition reset (Monte).
	OpReset
	// OpSummary is a repetition's whole-array summary task (Monte).
	OpSummary
	// OpChunk is one repetition of the classic chunked engine.
	OpChunk
	// OpOrchestrator is a Monte repetition orchestrator step — after
	// the repetition's tasks have drained, before its fold turn.
	OpOrchestrator
	// OpDelete is one deletion step of the streaming engine: the
	// round's shard-routing pass (Shard = -1) or one shard's
	// within-shard deletion task (Shard = the shard index). Rep is the
	// round index.
	OpDelete
	// OpRebalance is one shard's inter-round move-out task in the
	// streaming engine's rebalance pass. Rep is the round index.
	OpRebalance
	// OpCrash is one applied churn event of the cluster engine: a peer
	// crashing or recovering at a tick boundary. Rep is the tick index,
	// Shard the peer index.
	OpCrash
	// OpRetry is one shard's retry-dispatch task in the cluster engine:
	// re-placing timed-out requests onto an alternate candidate. Rep is
	// the tick index, Shard the shard index.
	OpRetry
	// OpShed is the cluster engine's per-tick admission-control step
	// (orchestrator side, Shard = -1). Rep is the tick index.
	OpShed
	// OpReshard is one step of the cluster engine's incremental
	// re-sharding after churn: the ring/router rebuild (Shard = -1) or
	// one shard's redistribution task (Shard = the shard index). Rep is
	// the tick index.
	OpReshard
)

// String returns the operation name used in provenance messages.
func (o Op) String() string {
	switch o {
	case OpAny:
		return "any"
	case OpRoute:
		return "route"
	case OpPlace:
		return "place"
	case OpReset:
		return "reset"
	case OpSummary:
		return "summary"
	case OpChunk:
		return "chunk"
	case OpOrchestrator:
		return "orchestrator"
	case OpDelete:
		return "delete"
	case OpRebalance:
		return "rebalance"
	case OpCrash:
		return "crash"
	case OpRetry:
		return "retry"
	case OpShed:
		return "shed"
	case OpReshard:
		return "reshard"
	}
	return "unknown"
}

// Site identifies one fault-injection point. Engines fill every field
// they know; fields that do not apply to an operation are -1.
type Site struct {
	// Engine is the engine name: "Run", "RunLarge" or "RunLargeMonte".
	// Empty in a Plan's Match means any engine.
	Engine string
	// Op is the operation kind (OpAny in a Plan's Match means any).
	Op Op
	// Rep is the repetition index (0 for the single-run engine; -1 in
	// a Plan's Match means any repetition).
	Rep int
	// Shard is the shard index of a placement/reset site, or the
	// routing-group index of a routing site (-1 = any / not
	// applicable).
	Shard int
	// Block is the routing-block index of an OpRoute site (-1 = any /
	// not applicable).
	Block int
}

// matches reports whether the armed pattern p covers site s (p's
// wildcard fields — empty Engine, OpAny, -1 indices — match anything).
func (p Site) matches(s Site) bool {
	if p.Engine != "" && p.Engine != s.Engine {
		return false
	}
	if p.Op != OpAny && p.Op != s.Op {
		return false
	}
	if p.Rep >= 0 && p.Rep != s.Rep {
		return false
	}
	if p.Shard >= 0 && p.Shard != s.Shard {
		return false
	}
	if p.Block >= 0 && p.Block != s.Block {
		return false
	}
	return true
}

// Injected is the panic value of an injected panic, carrying the site
// it fired at so provenance assertions can tell injected faults from
// genuine bugs.
type Injected struct {
	Site Site
	Msg  string
}

// Error implements error so recovered injected panics unwrap cleanly.
func (i *Injected) Error() string {
	return "fault: injected " + i.Site.Op.String() + " fault: " + i.Msg
}
