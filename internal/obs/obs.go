// Package obs is the unified observation subsystem: composable,
// merge-able collectors that all three simulation engines — the classic
// chunked Monte-Carlo engine (sim.Run), the sharded single-run engine
// (sim.RunLarge) and the sharded Monte-Carlo engine (sim.RunLargeMonte)
// — drive through one contract.
//
// # Contract
//
// A Collector is fed observations of bin-array state at deterministic
// cut points: Snapshot(cut, ...) with cut >= 0 records the running
// state at the collector's cut index (a checkpoint, or a shard index
// for ShardStats), and cut == Final records the end-of-game state.
// Partial collectors from different aggregation domains (repetition
// chunks, shards, repetitions) are folded with Merge; engines MUST
// merge in a deterministic order (chunk order, shard order, repetition
// order) so that floating-point aggregation is bit-identical for any
// worker topology.
//
// # Cost model: one pass, then pairs
//
// Collectors are block-grained, never ball-grained — and since the
// histogram kernel (bins.LoadHistogram) they share ONE pass, not one
// scan each. A snapshot builds an exact integer histogram over the
// distinct (ball count, capacity class) pairs in one O(n) (or
// O(shard)) sweep; every collector then derives its rows from the
// pairs via SnapshotHist: Checkpoints take an exact rational argmax
// over at most (classes) candidate pairs, Heights a weighted suffix
// sum, SortedLoads a counting sort by cross-multiplied rational order
// over the few hundred distinct pairs (never an O(n log n) float
// sort), ShardStats the per-shard pair maxima. Histograms merge by
// integer addition, so sharded engines build them per shard in
// parallel and fold in shard order; every derived float is then
// computed once, from the same integers, for any worker topology.
// The array-scanning Snapshot methods remain as the reference path —
// equivalence tests pin the two bit-identical. When no collector is
// requested the engines skip every observation hook, so the
// no-collector hot path costs nothing (bench-gated).
//
// # Sharded checkpoint cuts are part of the model
//
// In the sharded engines there is no per-ball order, only the
// block-wise multinomial routing pass (internal/sim's route.go): the
// model orders balls routing block by routing block and, within a
// block, by shard index. A checkpoint at B balls is realised as
// per-shard cuts — the number of balls among the first B so ordered
// that belong to shard s (full blocks below B plus a shard-ordered
// partial fill of the boundary block) — aligned DOWN to a multiple of
// the placement kernel's block size (AlignShardCuts), so snapshots
// land between 256-ball SampleBatch blocks and never split a kernel
// block. The realised ball count at a cut (Σ over shards, itself a
// multiple of the block size) is therefore at most B — and can be 0
// for a cut whose aligned per-shard prefixes all vanish (B below
// roughly the kernel block size), in which case the engines skip the
// observation entirely (like a cut beyond m, visible through
// CheckpointRow.Reps) rather than record a fictitious empty state.
// Like Shards and the routing-block structure, this cut rule is part
// of the model: it depends only on (seed, shards, checkpoints), never
// on Workers.
package obs

import (
	"fmt"
	"slices"

	"repro/internal/bins"
	"repro/internal/stats"
)

// Final is the Snapshot cut index of the end-of-game observation.
const Final = -1

// LoadHistogram is the one-pass observation kernel every collector can
// derive its rows from; see bins.LoadHistogram and the package
// comment's cost model.
type LoadHistogram = bins.LoadHistogram

// Collector is the contract shared by all observation collectors. See
// the package comment for the cut semantics and the merge-order
// requirement.
type Collector interface {
	// Snapshot records one observation of array state. cut >= 0 is an
	// index into the collector's cut points (checkpoints, shards);
	// Final marks the end-of-game state. balls is the realised ball
	// count behind the observation. Collectors ignore cuts that do not
	// concern them.
	Snapshot(cut int, a *bins.Array, balls int64) error
	// Merge folds another collector of the same type and shape into
	// the receiver. Engines must call it in a deterministic order.
	Merge(other Collector) error
}

// HistSnapshotter is the histogram fast path of the Collector
// contract: SnapshotHist records the same observation Snapshot would,
// but derives it from a pre-built LoadHistogram instead of scanning
// the array — the values produced are bit-identical to the scan path
// (pinned by equivalence tests). Every collector in this package
// implements both.
type HistSnapshotter interface {
	SnapshotHist(cut int, h *LoadHistogram, balls int64) error
}

// NormalizeCuts validates the requested checkpoint ball counts and
// returns a private copy. Cuts must be positive (a checkpoint at 0
// balls can never be reached by a placement) and strictly increasing:
// an unsorted or duplicated list is rejected with a field-named error
// instead of being silently reordered — a caller who passes cuts out
// of order almost certainly has a bug upstream, and silent sorting
// would make the mistake invisible in every downstream row.
func NormalizeCuts(cuts []int64) ([]int64, error) {
	for i, c := range cuts {
		if c < 1 {
			return nil, fmt.Errorf("obs: Checkpoints[%d] = %d balls, need >= 1", i, c)
		}
		if i > 0 && c <= cuts[i-1] {
			return nil, fmt.Errorf("obs: Checkpoints[%d] = %d after Checkpoints[%d] = %d: cuts must be strictly increasing", i, c, i-1, cuts[i-1])
		}
	}
	return slices.Clone(cuts), nil
}

// CountReached returns how many of the (ascending) cuts are <= m.
// Cuts beyond the ball count are never observed; callers can see the
// shortfall through CheckpointRow.Reps.
func CountReached(cuts []int64, m int64) int {
	n := 0
	for _, c := range cuts {
		if c > m {
			break
		}
		n++
	}
	return n
}

// AlignShardCuts converts per-checkpoint per-shard routing prefix
// counts into block-aligned cut counts, in place: prefix[k][s] — the
// number of balls among the first cuts[k] routed balls that went to
// shard s — is rounded down to a multiple of align, and realized[k]
// receives the per-checkpoint total Σ_s of the aligned cuts. align
// must be >= 1 (the engines pass the placement kernel's block size).
// The aligned matrix stays monotone in k column-wise, so per-shard
// placement segments are never negative.
func AlignShardCuts(prefix [][]int64, align int64, realized []int64) {
	for k, row := range prefix {
		var total int64
		for s := range row {
			row[s] -= row[s] % align
			total += row[s]
		}
		realized[k] = total
	}
}

// ---------------------------------------------------------------------
// Checkpoints

// CheckpointRow aggregates one checkpoint across repetitions.
type CheckpointRow struct {
	// Balls is the requested cut: a global ball count in the
	// repetition engines, a ROUND index in the streaming engine (cut k
	// observes the system at the end of round Balls).
	Balls int64
	// RealBalls aggregates the realised ball count at the cut: equal
	// to Balls in the classic engine, the block-aligned per-shard sum
	// (<= Balls, and varying per repetition with the routing stream)
	// in the sharded engines, and the occupancy at the end of the cut
	// round in the streaming engine.
	RealBalls stats.Accumulator
	// MaxLoad aggregates the running maximum load at the cut.
	MaxLoad stats.Accumulator
	// Deviation aggregates max − average load at the cut, where the
	// average is realised balls / total capacity.
	Deviation stats.Accumulator
}

// Reps is the number of repetitions that actually observed this cut.
// Checkpoints beyond a repetition's ball count — and, in the sharded
// engines, cuts whose block-aligned realisation is empty — are
// skipped, so Reps may be smaller than the run's repetition count
// (and 0 when no repetition observed the cut at all).
func (r *CheckpointRow) Reps() int64 { return r.MaxLoad.N() }

// Checkpoints collects running (max, max − average) load observations
// at fixed ball counts — the paper's §4.4 heavy-load series.
type Checkpoints struct {
	rows []CheckpointRow
}

// NewCheckpoints builds a collector over the given cuts (normalized
// with NormalizeCuts). Every cut gets a row up front, so unreached
// cuts surface as rows with Reps() == 0 rather than disappearing.
func NewCheckpoints(cuts []int64) *Checkpoints {
	c := &Checkpoints{rows: make([]CheckpointRow, len(cuts))}
	for i, b := range cuts {
		c.rows[i].Balls = b
	}
	return c
}

// Len returns the number of cuts.
func (c *Checkpoints) Len() int { return len(c.rows) }

// Observe records one repetition's realised observation at cut index
// i: balls placed at the cut, the array's total capacity, and the
// running maximum load. The deviation is maxLoad − balls/totalCap.
func (c *Checkpoints) Observe(i int, balls, totalCap int64, maxLoad float64) {
	r := &c.rows[i]
	r.RealBalls.Add(float64(balls))
	r.MaxLoad.Add(maxLoad)
	r.Deviation.Add(maxLoad - float64(balls)/float64(totalCap))
}

// Snapshot implements Collector: a whole-array observation at cut i.
// Final is ignored — checkpoints observe only their own cuts.
func (c *Checkpoints) Snapshot(cut int, a *bins.Array, balls int64) error {
	if cut == Final {
		return nil
	}
	c.Observe(cut, balls, a.TotalCapacity(), a.MaxLoad())
	return nil
}

// SnapshotHist implements HistSnapshotter: the max load is an exact
// rational argmax over the histogram's pairs, the capacity the
// per-class bin-count sum — bit-identical to the array scan.
func (c *Checkpoints) SnapshotHist(cut int, h *LoadHistogram, balls int64) error {
	if cut == Final {
		return nil
	}
	c.Observe(cut, balls, h.TotalCapacity(), h.MaxLoad())
	return nil
}

// Merge implements Collector.
func (c *Checkpoints) Merge(other Collector) error {
	o, ok := other.(*Checkpoints)
	if !ok {
		return fmt.Errorf("obs: merging %T into *Checkpoints", other)
	}
	if len(o.rows) != len(c.rows) {
		return fmt.Errorf("obs: merging %d checkpoints into %d", len(o.rows), len(c.rows))
	}
	for i := range c.rows {
		if c.rows[i].Balls != o.rows[i].Balls {
			return fmt.Errorf("obs: checkpoint %d cut mismatch: %d vs %d", i, c.rows[i].Balls, o.rows[i].Balls)
		}
		c.rows[i].RealBalls.Merge(&o.rows[i].RealBalls)
		c.rows[i].MaxLoad.Merge(&o.rows[i].MaxLoad)
		c.rows[i].Deviation.Merge(&o.rows[i].Deviation)
	}
	return nil
}

// Rows returns the per-checkpoint aggregates in ascending cut order.
func (c *Checkpoints) Rows() []CheckpointRow { return c.rows }

// ---------------------------------------------------------------------
// Heights

// HeightRow aggregates, across repetitions, the number of bins whose
// final load is at least Level — the observable of the balls-into-bins
// concentration bounds (bins above height k).
type HeightRow struct {
	Level int64
	Bins  stats.Accumulator
}

// Heights counts bins at load >= k for k = 1..levels over the final
// state of each repetition. Bins at or above the top level all count
// into every row they dominate (the rows are cumulative from above).
type Heights struct {
	rows    []HeightRow
	scratch []int64
}

// NewHeights builds a collector for levels k = 1..levels (levels >= 1).
func NewHeights(levels int) *Heights {
	h := &Heights{rows: make([]HeightRow, levels), scratch: make([]int64, levels)}
	for i := range h.rows {
		h.rows[i].Level = int64(i + 1)
	}
	return h
}

// Levels returns the number of height levels collected.
func (h *Heights) Levels() int { return len(h.rows) }

// CountAtOrAbove fills counts[k-1] with the number of bins of a whose
// load is >= k, for k = 1..len(counts). Load comparisons are exact:
// load >= k iff balls >= k·capacity in integers.
func CountAtOrAbove(a *bins.Array, counts []int64) {
	levels := len(counts)
	for i := range counts {
		counts[i] = 0
	}
	for i := 0; i < a.N(); i++ {
		k := int(a.Balls(i) / a.Capacity(i))
		if k > levels {
			k = levels
		}
		if k >= 1 {
			counts[k-1]++
		}
	}
	// cumulate from the top: load >= k includes every higher bucket
	for k := levels - 1; k >= 1; k-- {
		counts[k-1] += counts[k]
	}
}

// Observe folds one repetition's bins-at-or-above counts (as produced
// by CountAtOrAbove with len == Levels()).
func (h *Heights) Observe(counts []int64) {
	for i := range h.rows {
		h.rows[i].Bins.Add(float64(counts[i]))
	}
}

// Snapshot implements Collector: Heights observes only the final
// state.
func (h *Heights) Snapshot(cut int, a *bins.Array, balls int64) error {
	if cut != Final {
		return nil
	}
	CountAtOrAbove(a, h.scratch)
	h.Observe(h.scratch)
	return nil
}

// SnapshotHist implements HistSnapshotter: the per-level counts are
// weighted suffix sums over the histogram's pairs — integer-exact,
// identical to the per-bin scan.
func (h *Heights) SnapshotHist(cut int, hist *LoadHistogram, balls int64) error {
	if cut != Final {
		return nil
	}
	hist.CountAtOrAbove(h.scratch)
	h.Observe(h.scratch)
	return nil
}

// Merge implements Collector.
func (h *Heights) Merge(other Collector) error {
	o, ok := other.(*Heights)
	if !ok {
		return fmt.Errorf("obs: merging %T into *Heights", other)
	}
	if len(o.rows) != len(h.rows) {
		return fmt.Errorf("obs: merging %d height levels into %d", len(o.rows), len(h.rows))
	}
	for i := range h.rows {
		h.rows[i].Bins.Merge(&o.rows[i].Bins)
	}
	return nil
}

// Rows returns the per-level aggregates in ascending level order.
func (h *Heights) Rows() []HeightRow { return h.rows }

// ---------------------------------------------------------------------
// SortedLoads

// SortedLoads accumulates the element-wise mean of the non-increasing
// sorted load vector across repetitions — the paper's "load
// distribution" curves. Per-repetition vectors are never retained.
type SortedLoads struct {
	sum     []float64
	n       int64
	scratch []float64
	pairs   []bins.LoadPair // SnapshotHist scratch, reused across reps
}

// NewSortedLoads builds an empty collector; the vector length is fixed
// by the first observation.
func NewSortedLoads() *SortedLoads { return &SortedLoads{} }

// Observe folds one repetition's ASCENDING-sorted load vector (the
// sort order the engines' scratch buffers already produce); the
// accumulated mean is reported non-increasing.
func (s *SortedLoads) Observe(sortedAsc []float64) error {
	if s.sum == nil {
		s.sum = make([]float64, len(sortedAsc))
	}
	if len(s.sum) != len(sortedAsc) {
		return fmt.Errorf("obs: load vector of %d bins, earlier repetitions had %d", len(sortedAsc), len(s.sum))
	}
	for i := range sortedAsc {
		s.sum[i] += sortedAsc[len(sortedAsc)-1-i]
	}
	s.n++
	return nil
}

// Snapshot implements Collector: SortedLoads observes only the final
// state, sorting into an internal scratch buffer.
func (s *SortedLoads) Snapshot(cut int, a *bins.Array, balls int64) error {
	if cut != Final {
		return nil
	}
	s.scratch = a.LoadVectorInto(s.scratch)
	slices.Sort(s.scratch)
	return s.Observe(s.scratch)
}

// SnapshotHist implements HistSnapshotter: a counting sort over the
// histogram's distinct pairs replaces the O(n log n) float sort. The
// pairs are ranked by exact cross-multiplied rational order
// (descending) and expanded by multiplicity into the running sums;
// float64 conversion is monotone on exactly-representable operands, so
// the emitted sequence — and therefore every accumulated sum — is
// bit-identical to sorting the float load vector.
func (s *SortedLoads) SnapshotHist(cut int, h *LoadHistogram, balls int64) error {
	if cut != Final {
		return nil
	}
	n := h.Bins()
	if s.sum == nil {
		s.sum = make([]float64, n)
	}
	if int64(len(s.sum)) != n {
		return fmt.Errorf("obs: load histogram over %d bins, earlier repetitions had %d", n, len(s.sum))
	}
	s.pairs = h.AppendPairs(s.pairs[:0])
	slices.SortFunc(s.pairs, func(p, q bins.LoadPair) int {
		return bins.CompareLoadPairs(q, p) // descending load order
	})
	pos := 0
	for _, p := range s.pairs {
		v := float64(p.Balls) / float64(p.Cap)
		for j := int64(0); j < p.Count; j++ {
			s.sum[pos] += v
			pos++
		}
	}
	s.n++
	return nil
}

// Merge implements Collector.
func (s *SortedLoads) Merge(other Collector) error {
	o, ok := other.(*SortedLoads)
	if !ok {
		return fmt.Errorf("obs: merging %T into *SortedLoads", other)
	}
	if o.sum == nil {
		return nil
	}
	if s.sum == nil {
		s.sum = make([]float64, len(o.sum))
	}
	if len(s.sum) != len(o.sum) {
		return fmt.Errorf("obs: merging load vectors of %d and %d bins", len(o.sum), len(s.sum))
	}
	for i, v := range o.sum {
		s.sum[i] += v
	}
	s.n += o.n
	return nil
}

// Reps returns the number of repetitions observed.
func (s *SortedLoads) Reps() int64 { return s.n }

// State exposes the running sum vector and observation count for
// checkpoint/resume serialization. The returned slice is the live
// backing array — callers must not mutate it.
func (s *SortedLoads) State() (sum []float64, n int64) { return s.sum, s.n }

// RestoreSortedLoads rebuilds a collector from serialized state; a
// restored collector continues bit-identically (float64 addition onto
// the exact same running sums).
func RestoreSortedLoads(sum []float64, n int64) *SortedLoads {
	return &SortedLoads{sum: slices.Clone(sum), n: n}
}

// Mean returns the element-wise mean non-increasing load vector, or
// nil when nothing was observed.
func (s *SortedLoads) Mean() []float64 {
	if s.n == 0 {
		return nil
	}
	out := make([]float64, len(s.sum))
	for i, v := range s.sum {
		out[i] = v / float64(s.n)
	}
	return out
}

// ---------------------------------------------------------------------
// ShardStats

// ShardRow aggregates one shard across repetitions.
type ShardRow struct {
	Shard int
	// Balls aggregates the number of balls routed to the shard.
	Balls stats.Accumulator
	// MaxLoad aggregates the shard-local final maximum load.
	MaxLoad stats.Accumulator
}

// ShardStats collects per-shard routing and load statistics for the
// sharded engines — the imbalance view of the two-level protocol.
type ShardStats struct {
	rows []ShardRow
}

// NewShardStats builds a collector over the given shard count.
func NewShardStats(shards int) *ShardStats {
	s := &ShardStats{rows: make([]ShardRow, shards)}
	for i := range s.rows {
		s.rows[i].Shard = i
	}
	return s
}

// Shards returns the shard count.
func (s *ShardStats) Shards() int { return len(s.rows) }

// Observe folds one repetition's per-shard routed ball counts and
// final shard-local maximum loads (both indexed by shard).
func (s *ShardStats) Observe(balls []int64, maxLoads []float64) error {
	if len(balls) != len(s.rows) || len(maxLoads) != len(s.rows) {
		return fmt.Errorf("obs: shard stats over %d/%d shards, collector has %d",
			len(balls), len(maxLoads), len(s.rows))
	}
	for i := range s.rows {
		s.rows[i].Balls.Add(float64(balls[i]))
		s.rows[i].MaxLoad.Add(maxLoads[i])
	}
	return nil
}

// Snapshot implements Collector: cut is the shard index, a the shard
// view (nil for a shard that can never receive balls) and balls the
// count routed to it.
func (s *ShardStats) Snapshot(cut int, a *bins.Array, balls int64) error {
	if cut == Final {
		return nil
	}
	if cut < 0 || cut >= len(s.rows) {
		return fmt.Errorf("obs: shard index %d outside [0,%d)", cut, len(s.rows))
	}
	max := 0.0
	if a != nil && balls > 0 {
		max = a.MaxLoad()
	}
	s.rows[cut].Balls.Add(float64(balls))
	s.rows[cut].MaxLoad.Add(max)
	return nil
}

// SnapshotHist implements HistSnapshotter: cut is the shard index, h
// the shard's histogram (nil for a shard that can never receive
// balls) and balls the count routed to it.
func (s *ShardStats) SnapshotHist(cut int, h *LoadHistogram, balls int64) error {
	if cut == Final {
		return nil
	}
	if cut < 0 || cut >= len(s.rows) {
		return fmt.Errorf("obs: shard index %d outside [0,%d)", cut, len(s.rows))
	}
	max := 0.0
	if h != nil && balls > 0 {
		max = h.MaxLoad()
	}
	s.rows[cut].Balls.Add(float64(balls))
	s.rows[cut].MaxLoad.Add(max)
	return nil
}

// Merge implements Collector.
func (s *ShardStats) Merge(other Collector) error {
	o, ok := other.(*ShardStats)
	if !ok {
		return fmt.Errorf("obs: merging %T into *ShardStats", other)
	}
	if len(o.rows) != len(s.rows) {
		return fmt.Errorf("obs: merging %d shards into %d", len(o.rows), len(s.rows))
	}
	for i := range s.rows {
		s.rows[i].Balls.Merge(&o.rows[i].Balls)
		s.rows[i].MaxLoad.Merge(&o.rows[i].MaxLoad)
	}
	return nil
}

// Rows returns the per-shard aggregates in shard order.
func (s *ShardStats) Rows() []ShardRow { return s.rows }
