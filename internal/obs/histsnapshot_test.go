package obs

import (
	"reflect"
	"testing"

	"repro/internal/bins"
	"repro/internal/xrand"
)

// histTestArray builds a deterministic random array for a trial:
// capacities from the class set, a skewed random ball placement.
func histTestArray(r *xrand.Rand, n int, classes []int64, maxBalls int) *bins.Array {
	caps := make([]int64, n)
	for i := range caps {
		caps[i] = classes[r.Intn(len(classes))]
	}
	a := bins.MustNew(caps)
	for i := 0; i < n; i++ {
		a.AddBalls(i, int64(r.Intn(maxBalls+1)))
	}
	return a
}

// TestSnapshotHistMatchesSnapshot pins the tentpole equivalence: for
// every collector, deriving a snapshot from the one-pass histogram is
// bit-identical (reflect.DeepEqual over the accumulated state) to the
// per-bin scan path it replaces, across random capacity distributions
// including single-class and many-distinct-class shapes.
func TestSnapshotHistMatchesSnapshot(t *testing.T) {
	r := xrand.New(4242)
	classSets := [][]int64{
		{1},
		{1, 10},
		{1, 2, 3, 5, 8, 13, 21},
	}
	for _, classes := range classSets {
		for trial := 0; trial < 10; trial++ {
			a := histTestArray(r, 1+r.Intn(150), classes, 20)
			h := a.NewLoadHistogram()
			if err := a.HistogramInto(h); err != nil {
				t.Fatal(err)
			}
			balls := a.TotalBalls()

			cpScan, cpHist := NewCheckpoints([]int64{10, 20}), NewCheckpoints([]int64{10, 20})
			for cut := 0; cut < 2; cut++ {
				if err := cpScan.Snapshot(cut, a, balls); err != nil {
					t.Fatal(err)
				}
				if err := cpHist.SnapshotHist(cut, h, balls); err != nil {
					t.Fatal(err)
				}
			}
			if !reflect.DeepEqual(cpScan, cpHist) {
				t.Fatalf("Checkpoints diverge:\n scan %+v\n hist %+v", cpScan.Rows(), cpHist.Rows())
			}

			hlScan, hlHist := NewHeights(6), NewHeights(6)
			if err := hlScan.Snapshot(Final, a, balls); err != nil {
				t.Fatal(err)
			}
			if err := hlHist.SnapshotHist(Final, h, balls); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(hlScan.Rows(), hlHist.Rows()) {
				t.Fatalf("Heights diverge:\n scan %+v\n hist %+v", hlScan.Rows(), hlHist.Rows())
			}

			slScan, slHist := NewSortedLoads(), NewSortedLoads()
			// Two observations each, so accumulation order is exercised.
			for rep := 0; rep < 2; rep++ {
				if err := slScan.Snapshot(Final, a, balls); err != nil {
					t.Fatal(err)
				}
				if err := slHist.SnapshotHist(Final, h, balls); err != nil {
					t.Fatal(err)
				}
			}
			if !reflect.DeepEqual(slScan.Mean(), slHist.Mean()) {
				t.Fatalf("SortedLoads diverge:\n scan %v\n hist %v", slScan.Mean(), slHist.Mean())
			}

			ssScan, ssHist := NewShardStats(2), NewShardStats(2)
			if err := ssScan.Snapshot(0, a, balls); err != nil {
				t.Fatal(err)
			}
			if err := ssHist.SnapshotHist(0, h, balls); err != nil {
				t.Fatal(err)
			}
			if err := ssScan.Snapshot(1, nil, 0); err != nil {
				t.Fatal(err)
			}
			if err := ssHist.SnapshotHist(1, nil, 0); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ssScan.Rows(), ssHist.Rows()) {
				t.Fatalf("ShardStats diverge:\n scan %+v\n hist %+v", ssScan.Rows(), ssHist.Rows())
			}
		}
	}
}

// TestSnapshotHistIgnoresWrongPhase mirrors the Snapshot contract:
// Heights and SortedLoads observe only Final, Checkpoints and
// ShardStats never observe Final.
func TestSnapshotHistIgnoresWrongPhase(t *testing.T) {
	a := bins.MustNew([]int64{1, 2})
	a.Add(0)
	h := a.NewLoadHistogram()
	if err := a.HistogramInto(h); err != nil {
		t.Fatal(err)
	}
	hl := NewHeights(3)
	if err := hl.SnapshotHist(0, h, 1); err != nil {
		t.Fatal(err)
	}
	if hl.Rows()[0].Bins.N() != 0 {
		t.Error("Heights observed a non-final cut")
	}
	sl := NewSortedLoads()
	if err := sl.SnapshotHist(0, h, 1); err != nil {
		t.Fatal(err)
	}
	if sl.Reps() != 0 {
		t.Error("SortedLoads observed a non-final cut")
	}
	cp := NewCheckpoints([]int64{5})
	if err := cp.SnapshotHist(Final, h, 1); err != nil {
		t.Fatal(err)
	}
	if cp.Rows()[0].Reps() != 0 {
		t.Error("Checkpoints observed Final")
	}
	ss := NewShardStats(1)
	if err := ss.SnapshotHist(Final, h, 1); err != nil {
		t.Fatal(err)
	}
	if ss.Rows()[0].Balls.N() != 0 {
		t.Error("ShardStats observed Final")
	}
}

// TestSnapshotHistSteadyStateAllocFree pins the fused snapshot's alloc
// discipline: after one warm-up repetition, a full
// Checkpoints+Heights+SortedLoads snapshot round from a rebuilt
// histogram allocates nothing.
func TestSnapshotHistSteadyStateAllocFree(t *testing.T) {
	r := xrand.New(77)
	a := histTestArray(r, 4096, []int64{1, 10}, 12)
	h := a.NewLoadHistogram()
	cp := NewCheckpoints([]int64{100})
	hl := NewHeights(8)
	sl := NewSortedLoads()
	round := func() {
		if err := a.HistogramInto(h); err != nil {
			t.Fatal(err)
		}
		if err := cp.SnapshotHist(0, h, a.TotalBalls()); err != nil {
			t.Fatal(err)
		}
		if err := hl.SnapshotHist(Final, h, a.TotalBalls()); err != nil {
			t.Fatal(err)
		}
		if err := sl.SnapshotHist(Final, h, a.TotalBalls()); err != nil {
			t.Fatal(err)
		}
	}
	round() // warm up scratch buffers
	if allocs := testing.AllocsPerRun(20, round); allocs != 0 {
		t.Fatalf("steady-state fused snapshot allocates %v/op", allocs)
	}
}

// TestAlignShardCutsIdempotent: aligning already-aligned prefixes is
// the identity, so re-running the fold can never drift the realised
// cuts.
func TestAlignShardCutsIdempotent(t *testing.T) {
	r := xrand.New(5)
	for trial := 0; trial < 20; trial++ {
		shards, cuts := 1+r.Intn(6), 1+r.Intn(4)
		prefix := make([][]int64, cuts)
		run := make([]int64, shards)
		for k := range prefix {
			prefix[k] = make([]int64, shards)
			for s := range prefix[k] {
				run[s] += int64(r.Intn(2000))
				prefix[k][s] = run[s]
			}
		}
		realized := make([]int64, cuts)
		AlignShardCuts(prefix, 256, realized)
		again := make([][]int64, cuts)
		for k := range prefix {
			again[k] = append([]int64(nil), prefix[k]...)
		}
		realized2 := make([]int64, cuts)
		AlignShardCuts(again, 256, realized2)
		if !reflect.DeepEqual(prefix, again) || !reflect.DeepEqual(realized, realized2) {
			t.Fatalf("alignment not idempotent:\n once %v %v\n twice %v %v", prefix, realized, again, realized2)
		}
	}
}
