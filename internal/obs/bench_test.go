package obs

import (
	"testing"

	"repro/internal/bins"
)

// benchObsState is the n=10⁶ / 64-shard observation workload of the
// acceptance benchmarks: the paper's two-class split (half capacity 1,
// half capacity 10) under a deterministic skewed fill, shard views and
// per-shard histograms prebuilt so iterations measure the snapshot
// path, not setup.
type benchObsState struct {
	arr    *bins.Array
	views  []*bins.Array
	hists  []*bins.LoadHistogram
	merged *bins.LoadHistogram
	balls  int64
}

func newBenchObsState(b *testing.B, n, shards int) *benchObsState {
	b.Helper()
	caps := make([]int64, n)
	for i := range caps {
		if i%2 == 0 {
			caps[i] = 1
		} else {
			caps[i] = 10
		}
	}
	arr, err := bins.New(caps)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		arr.AddBalls(i, int64((i*7+3)%13))
	}
	st := &benchObsState{arr: arr}
	proto := arr.NewLoadHistogram()
	st.merged = proto.CloneEmpty()
	for s := 0; s < shards; s++ {
		lo, hi := s*n/shards, (s+1)*n/shards
		v, err := arr.Shard(lo, hi)
		if err != nil {
			b.Fatal(err)
		}
		st.views = append(st.views, v)
		st.hists = append(st.hists, proto.CloneEmpty())
	}
	st.balls = arr.TotalBalls()
	return st
}

// buildMerged is the histogram path's per-snapshot cost: one O(shard)
// pass per shard (single-threaded here — the engines run these on
// their worker pools) plus the integer merge in shard order.
func (st *benchObsState) buildMerged(b *testing.B) *bins.LoadHistogram {
	st.merged.Reset()
	for s, v := range st.views {
		if err := v.HistogramInto(st.hists[s]); err != nil {
			b.Fatal(err)
		}
		if err := st.merged.Merge(st.hists[s]); err != nil {
			b.Fatal(err)
		}
	}
	return st.merged
}

const (
	benchObsN      = 1_000_000
	benchObsShards = 64
)

func BenchmarkObsSnapshotCheckpoints(b *testing.B) {
	st := newBenchObsState(b, benchObsN, benchObsShards)
	b.Run("scan", func(b *testing.B) {
		cp := NewCheckpoints([]int64{st.balls})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cp.Snapshot(0, st.arr, st.balls); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hist", func(b *testing.B) {
		cp := NewCheckpoints([]int64{st.balls})
		st.buildMerged(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h := st.buildMerged(b)
			if err := cp.SnapshotHist(0, h, st.balls); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkObsSnapshotHeights(b *testing.B) {
	st := newBenchObsState(b, benchObsN, benchObsShards)
	b.Run("scan", func(b *testing.B) {
		hl := NewHeights(8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := hl.Snapshot(Final, st.arr, st.balls); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hist", func(b *testing.B) {
		hl := NewHeights(8)
		st.buildMerged(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h := st.buildMerged(b)
			if err := hl.SnapshotHist(Final, h, st.balls); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkObsSnapshotSortedLoads(b *testing.B) {
	st := newBenchObsState(b, benchObsN, benchObsShards)
	b.Run("scan", func(b *testing.B) {
		sl := NewSortedLoads()
		if err := sl.Snapshot(Final, st.arr, st.balls); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sl.Snapshot(Final, st.arr, st.balls); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hist", func(b *testing.B) {
		sl := NewSortedLoads()
		if err := sl.SnapshotHist(Final, st.buildMerged(b), st.balls); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h := st.buildMerged(b)
			if err := sl.SnapshotHist(Final, h, st.balls); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkObsSnapshotFused is the acceptance-criterion workload: one
// checkpointed snapshot feeding SortedLoads + Heights + Checkpoints
// together. The scan path pays one pass per collector plus the float
// sort; the histogram path pays ONE build (64 shard passes + merges)
// from which all three collectors derive.
func BenchmarkObsSnapshotFused(b *testing.B) {
	st := newBenchObsState(b, benchObsN, benchObsShards)
	b.Run("scan", func(b *testing.B) {
		cp := NewCheckpoints([]int64{st.balls})
		hl := NewHeights(8)
		sl := NewSortedLoads()
		if err := sl.Snapshot(Final, st.arr, st.balls); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cp.Snapshot(0, st.arr, st.balls); err != nil {
				b.Fatal(err)
			}
			if err := hl.Snapshot(Final, st.arr, st.balls); err != nil {
				b.Fatal(err)
			}
			if err := sl.Snapshot(Final, st.arr, st.balls); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hist", func(b *testing.B) {
		cp := NewCheckpoints([]int64{st.balls})
		hl := NewHeights(8)
		sl := NewSortedLoads()
		if err := sl.SnapshotHist(Final, st.buildMerged(b), st.balls); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h := st.buildMerged(b)
			if err := cp.SnapshotHist(0, h, st.balls); err != nil {
				b.Fatal(err)
			}
			if err := hl.SnapshotHist(Final, h, st.balls); err != nil {
				b.Fatal(err)
			}
			if err := sl.SnapshotHist(Final, h, st.balls); err != nil {
				b.Fatal(err)
			}
		}
	})
}
