package obs

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bins"
)

func TestNormalizeCuts(t *testing.T) {
	got, err := NormalizeCuts([]int64{10, 30, 50})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int64{10, 30, 50}) {
		t.Fatalf("normalized = %v", got)
	}
	// the returned slice is a private copy, never the caller's backing
	in := []int64{1, 5}
	got, err = NormalizeCuts(in)
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 99
	if !reflect.DeepEqual(in, []int64{1, 5}) {
		t.Fatalf("input aliased/mutated: %v", in)
	}
	// non-positive, unsorted and duplicated cuts are rejected with
	// field-named errors, never silently reordered
	for _, bad := range [][]int64{{0}, {-2, 5}, {10, 0}, {50, 10, 30}, {5, 1}, {10, 10}} {
		_, err := NormalizeCuts(bad)
		if err == nil {
			t.Errorf("NormalizeCuts(%v) accepted", bad)
			continue
		}
		if !strings.Contains(err.Error(), "Checkpoints[") {
			t.Errorf("NormalizeCuts(%v) error %q does not name the field", bad, err)
		}
	}
	if got, err := NormalizeCuts(nil); err != nil || len(got) != 0 {
		t.Fatalf("NormalizeCuts(nil) = %v, %v", got, err)
	}
}

func TestCountReached(t *testing.T) {
	cuts := []int64{10, 20, 30}
	for _, c := range []struct {
		m    int64
		want int
	}{{5, 0}, {10, 1}, {25, 2}, {30, 3}, {1000, 3}} {
		if got := CountReached(cuts, c.m); got != c.want {
			t.Errorf("CountReached(%v, %d) = %d, want %d", cuts, c.m, got, c.want)
		}
	}
}

func TestAlignShardCuts(t *testing.T) {
	prefix := [][]int64{
		{255, 256, 513},
		{300, 512, 1000},
	}
	realized := make([]int64, 2)
	AlignShardCuts(prefix, 256, realized)
	want := [][]int64{
		{0, 256, 512},
		{256, 512, 768},
	}
	if !reflect.DeepEqual(prefix, want) {
		t.Fatalf("aligned = %v, want %v", prefix, want)
	}
	if realized[0] != 768 || realized[1] != 1536 {
		t.Fatalf("realized = %v", realized)
	}
	// align 1 is the identity
	id := [][]int64{{3, 7}}
	AlignShardCuts(id, 1, realized[:1])
	if !reflect.DeepEqual(id, [][]int64{{3, 7}}) || realized[0] != 10 {
		t.Fatalf("align-1 changed cuts: %v, %v", id, realized[0])
	}
}

// TestAlignShardCutsMonotone: column-wise monotone prefixes stay
// monotone after alignment, so per-shard placement segments are never
// negative.
func TestAlignShardCutsMonotone(t *testing.T) {
	prefix := [][]int64{
		{100, 700},
		{300, 700},
		{900, 800},
	}
	AlignShardCuts(prefix, 256, make([]int64, 3))
	for s := 0; s < 2; s++ {
		for k := 1; k < 3; k++ {
			if prefix[k][s] < prefix[k-1][s] {
				t.Fatalf("shard %d cut shrank: %v", s, prefix)
			}
		}
	}
}

func TestCheckpointsObserveAndRows(t *testing.T) {
	c := NewCheckpoints([]int64{100, 200})
	c.Observe(0, 100, 50, 3)   // avg 2, dev 1
	c.Observe(0, 100, 50, 2.5) // dev 0.5
	c.Observe(1, 192, 50, 4)   // realized < requested (aligned), avg 3.84
	rows := c.Rows()
	if rows[0].Balls != 100 || rows[1].Balls != 200 {
		t.Fatalf("cut balls: %+v", rows)
	}
	if rows[0].Reps() != 2 || rows[1].Reps() != 1 {
		t.Fatalf("reps: %d, %d", rows[0].Reps(), rows[1].Reps())
	}
	if got := rows[0].MaxLoad.Mean(); got != 2.75 {
		t.Fatalf("cut 0 max mean %v", got)
	}
	if got := rows[0].Deviation.Mean(); got != 0.75 {
		t.Fatalf("cut 0 deviation mean %v", got)
	}
	if got := rows[1].RealBalls.Mean(); got != 192 {
		t.Fatalf("cut 1 realized balls %v", got)
	}
	if got := rows[1].Deviation.Mean(); math.Abs(got-(4-192.0/50)) > 1e-15 {
		t.Fatalf("cut 1 deviation %v", got)
	}
}

// TestCheckpointsMergeDeterministic: merging chunked collectors in
// order reproduces the sequential fold bit for bit.
func TestCheckpointsMergeDeterministic(t *testing.T) {
	cuts := []int64{10, 20}
	seq := NewCheckpoints(cuts)
	a := NewCheckpoints(cuts)
	b := NewCheckpoints(cuts)
	obsv := []struct {
		cut  int
		max  float64
		into *Checkpoints
	}{
		{0, 1.25, a}, {1, 2.5, a}, {0, 1.5, a},
		{0, 1.75, b}, {1, 3.25, b},
	}
	for _, o := range obsv {
		seq.Observe(o.cut, cuts[o.cut], 7, o.max)
		o.into.Observe(o.cut, cuts[o.cut], 7, o.max)
	}
	merged := NewCheckpoints(cuts)
	if err := merged.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Rows(), seq.Rows()) {
		t.Fatalf("merged rows differ from sequential:\n%+v\n%+v", merged.Rows(), seq.Rows())
	}
}

func TestCheckpointsMergeShapeMismatch(t *testing.T) {
	c := NewCheckpoints([]int64{10})
	if err := c.Merge(NewCheckpoints([]int64{10, 20})); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := c.Merge(NewCheckpoints([]int64{11})); err == nil {
		t.Error("cut mismatch accepted")
	}
	if err := c.Merge(NewHeights(2)); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestCountAtOrAbove(t *testing.T) {
	// caps {1,1,2,4}; balls {3,1,4,3}: heights 3,1,2,0 (exact: 3/4 < 1)
	a := bins.MustNew([]int64{1, 1, 2, 4})
	for i, b := range []int64{3, 1, 4, 3} {
		for j := int64(0); j < b; j++ {
			a.Add(i)
		}
	}
	counts := make([]int64, 4)
	CountAtOrAbove(a, counts)
	// ≥1: bins 0,1,2 → 3; ≥2: bins 0,2 → 2; ≥3: bin 0 → 1; ≥4: none
	if !reflect.DeepEqual(counts, []int64{3, 2, 1, 0}) {
		t.Fatalf("counts = %v", counts)
	}
	// clamping: a single level still counts everything at or above it
	one := make([]int64, 1)
	CountAtOrAbove(a, one)
	if one[0] != 3 {
		t.Fatalf("level-1 count = %d", one[0])
	}
}

func TestHeightsSnapshotAndMerge(t *testing.T) {
	a := bins.MustNew([]int64{1, 1})
	a.Add(0)
	a.Add(0) // heights 2, 0
	h := NewHeights(2)
	if err := h.Snapshot(Final, a, 2); err != nil {
		t.Fatal(err)
	}
	if err := h.Snapshot(0, a, 1); err != nil { // non-final cut ignored
		t.Fatal(err)
	}
	rows := h.Rows()
	if rows[0].Level != 1 || rows[1].Level != 2 {
		t.Fatalf("levels: %+v", rows)
	}
	if rows[0].Bins.N() != 1 || rows[0].Bins.Mean() != 1 || rows[1].Bins.Mean() != 1 {
		t.Fatalf("rows: %+v", rows)
	}
	o := NewHeights(2)
	if err := o.Snapshot(Final, a, 2); err != nil {
		t.Fatal(err)
	}
	if err := h.Merge(o); err != nil {
		t.Fatal(err)
	}
	if h.Rows()[0].Bins.N() != 2 {
		t.Fatalf("merge lost observations: %+v", h.Rows())
	}
	if err := h.Merge(NewHeights(3)); err == nil {
		t.Error("level mismatch accepted")
	}
	if err := h.Merge(NewSortedLoads()); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestSortedLoads(t *testing.T) {
	s := NewSortedLoads()
	if s.Mean() != nil {
		t.Fatal("mean of empty collector")
	}
	if err := s.Observe([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe([]float64{3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if got := s.Mean(); !reflect.DeepEqual(got, []float64{4, 3, 2}) {
		t.Fatalf("mean = %v", got)
	}
	if err := s.Observe([]float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	// merge determinism: chunked == sequential
	a, b, seq := NewSortedLoads(), NewSortedLoads(), NewSortedLoads()
	vecs := [][]float64{{0.25, 1}, {0.5, 2}, {0.125, 4}}
	for i, v := range vecs {
		if i < 2 {
			_ = a.Observe(v)
		} else {
			_ = b.Observe(v)
		}
		_ = seq.Observe(v)
	}
	m := NewSortedLoads()
	if err := m.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Mean(), seq.Mean()) {
		t.Fatalf("merged mean %v != sequential %v", m.Mean(), seq.Mean())
	}
	if m.Reps() != 3 {
		t.Fatalf("reps = %d", m.Reps())
	}
	if err := m.Merge(NewSortedLoads()); err != nil {
		t.Fatalf("merging empty collector: %v", err)
	}
	bad := NewSortedLoads()
	_ = bad.Observe([]float64{1})
	if err := m.Merge(bad); err == nil {
		t.Error("merging mismatched vector lengths accepted")
	}
}

func TestSortedLoadsSnapshot(t *testing.T) {
	a := bins.MustNew([]int64{1, 1, 2})
	a.Add(0)
	a.Add(0)
	a.Add(2) // loads 2, 0, 0.5
	s := NewSortedLoads()
	if err := s.Snapshot(0, a, 0); err != nil { // non-final ignored
		t.Fatal(err)
	}
	if s.Reps() != 0 {
		t.Fatal("non-final cut observed")
	}
	if err := s.Snapshot(Final, a, 3); err != nil {
		t.Fatal(err)
	}
	if got := s.Mean(); !reflect.DeepEqual(got, []float64{2, 0.5, 0}) {
		t.Fatalf("mean = %v", got)
	}
}

func TestShardStats(t *testing.T) {
	s := NewShardStats(2)
	if err := s.Observe([]int64{3, 5}, []float64{1.5, 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe([]int64{4, 4}, []float64{2.5, 1}); err != nil {
		t.Fatal(err)
	}
	rows := s.Rows()
	if rows[0].Shard != 0 || rows[1].Shard != 1 {
		t.Fatalf("shard ids: %+v", rows)
	}
	if rows[0].Balls.Mean() != 3.5 || rows[1].MaxLoad.Mean() != 1.5 {
		t.Fatalf("rows: %+v", rows)
	}
	if err := s.Observe([]int64{1}, []float64{1}); err == nil {
		t.Error("shape mismatch accepted")
	}

	// Snapshot form: per-shard views
	parent := bins.MustNew([]int64{1, 1, 1, 1})
	v, err := parent.Shard(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	v.Add(0)
	ss := NewShardStats(2)
	if err := ss.Snapshot(0, v, 1); err != nil {
		t.Fatal(err)
	}
	if err := ss.Snapshot(1, nil, 0); err != nil { // zero-weight shard
		t.Fatal(err)
	}
	if ss.Rows()[0].MaxLoad.Mean() != 1 || ss.Rows()[1].MaxLoad.Mean() != 0 {
		t.Fatalf("snapshot rows: %+v", ss.Rows())
	}
	if err := ss.Snapshot(5, v, 1); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := ss.Merge(NewShardStats(3)); err == nil {
		t.Error("shard-count mismatch accepted")
	}
	if err := ss.Merge(s); err != nil {
		t.Fatal(err)
	}
	if ss.Rows()[0].Balls.N() != 3 {
		t.Fatalf("merge lost observations: %+v", ss.Rows())
	}
}

// TestCollectorInterface pins that every collector satisfies the
// shared contract.
func TestCollectorInterface(t *testing.T) {
	for _, c := range []Collector{
		NewCheckpoints([]int64{1}),
		NewHeights(1),
		NewSortedLoads(),
		NewShardStats(1),
	} {
		if c == nil {
			t.Fatal("nil collector")
		}
	}
}
