// Latency: the exact-integer response-time histogram of the cluster
// engine's degraded-mode accounting. Every operation is an int64
// addition, so per-shard instances merged in shard order produce
// bit-identical totals whatever the worker topology — the same
// exactness argument as the routing counts. (Queue-STATE snapshots use
// the bins.LoadHistogram kernel; latency is a per-request observable
// that kernel cannot express, hence its own collector.)
package obs

import "fmt"

// Latency is a histogram of request response times in ticks: bucket
// k < Max counts requests with latency exactly k+1 ticks, and the
// final bucket (index Max) counts everything above Max. The exact sum
// and count ride along so the mean needs no float accumulation.
type Latency struct {
	buckets []int64
	sum     int64
	count   int64
}

// NewLatency builds a collector with buckets for latencies 1..max
// ticks plus one overflow bucket.
func NewLatency(max int) (*Latency, error) {
	if max < 1 {
		return nil, fmt.Errorf("obs: latency buckets = %d, need >= 1", max)
	}
	return &Latency{buckets: make([]int64, max+1)}, nil
}

// ObserveN records n requests completing with the given latency (>= 1
// tick; anything above Max lands in the overflow bucket).
func (l *Latency) ObserveN(latency, n int64) {
	if n == 0 {
		return
	}
	i := latency - 1
	if max := int64(len(l.buckets) - 1); i < 0 || i > max {
		i = max
	}
	l.buckets[i] += n
	l.sum += latency * n
	l.count += n
}

// Merge folds other into l (bucket shapes must match). Integer
// addition is exactly associative: folding per-shard collectors in
// shard order is bit-identical for every worker topology.
func (l *Latency) Merge(other *Latency) error {
	if len(other.buckets) != len(l.buckets) {
		return fmt.Errorf("obs: merging %d latency buckets into %d", len(other.buckets), len(l.buckets))
	}
	for i, c := range other.buckets {
		l.buckets[i] += c
	}
	l.sum += other.sum
	l.count += other.count
	return nil
}

// Reset clears the collector for reuse (per-tick shard scratch).
func (l *Latency) Reset() {
	clear(l.buckets)
	l.sum = 0
	l.count = 0
}

// Count returns the number of observed requests, Sum their total
// latency in ticks.
func (l *Latency) Count() int64 { return l.count }
func (l *Latency) Sum() int64   { return l.sum }

// Mean returns the average latency in ticks (0 when empty).
func (l *Latency) Mean() float64 {
	if l.count == 0 {
		return 0
	}
	return float64(l.sum) / float64(l.count)
}

// Buckets returns the bucket counts: index k < Max is latency k+1,
// index Max the overflow. The slice is the collector's own storage.
func (l *Latency) Buckets() []int64 { return l.buckets }

// Quantile returns the smallest latency L such that at least q of the
// observed requests finished within L ticks (0 when empty; the
// overflow bucket reports Max+1).
func (l *Latency) Quantile(q float64) int64 {
	if l.count == 0 {
		return 0
	}
	target := int64(q * float64(l.count))
	if target < 1 {
		target = 1
	}
	if target > l.count {
		target = l.count
	}
	var cum int64
	for i, c := range l.buckets {
		cum += c
		if cum >= target {
			return int64(i) + 1
		}
	}
	return int64(len(l.buckets))
}

// Clone returns a deep copy.
func (l *Latency) Clone() *Latency {
	c := &Latency{buckets: make([]int64, len(l.buckets)), sum: l.sum, count: l.count}
	copy(c.buckets, l.buckets)
	return c
}
