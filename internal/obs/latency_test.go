package obs

import "testing"

func TestLatencyValidation(t *testing.T) {
	if _, err := NewLatency(0); err == nil {
		t.Fatal("NewLatency(0) accepted")
	}
	if _, err := NewLatency(-3); err == nil {
		t.Fatal("NewLatency(-3) accepted")
	}
}

func TestLatencyObserve(t *testing.T) {
	l, err := NewLatency(4)
	if err != nil {
		t.Fatal(err)
	}
	l.ObserveN(1, 2) // bucket 0
	l.ObserveN(4, 1) // bucket 3 (= Max)
	l.ObserveN(9, 3) // overflow bucket 4
	l.ObserveN(0, 5) // sub-minimum clamps into overflow too
	l.ObserveN(2, 0) // no-op
	if got := l.Count(); got != 11 {
		t.Fatalf("count = %d, want 11", got)
	}
	// sum tracks the latency as observed, clamped or not: 2*1+4+3*9+5*0
	if got := l.Sum(); got != 33 {
		t.Fatalf("sum = %d, want 33", got)
	}
	want := []int64{2, 0, 0, 1, 8}
	for i, c := range l.Buckets() {
		if c != want[i] {
			t.Fatalf("buckets = %v, want %v", l.Buckets(), want)
		}
	}
	if got := l.Mean(); got != 3.0 {
		t.Fatalf("mean = %v, want 3", got)
	}
}

func TestLatencyMergeResetClone(t *testing.T) {
	a, _ := NewLatency(3)
	b, _ := NewLatency(3)
	a.ObserveN(1, 4)
	b.ObserveN(3, 2)
	b.ObserveN(7, 1) // overflow
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 7 || a.Sum() != 4+6+7 {
		t.Fatalf("after merge: count %d sum %d", a.Count(), a.Sum())
	}
	c := a.Clone()
	a.Reset()
	if a.Count() != 0 || a.Sum() != 0 {
		t.Fatalf("after reset: count %d sum %d", a.Count(), a.Sum())
	}
	for _, n := range a.Buckets() {
		if n != 0 {
			t.Fatalf("after reset buckets = %v", a.Buckets())
		}
	}
	if c.Count() != 7 {
		t.Fatalf("clone shares state: count %d after reset", c.Count())
	}
	c.ObserveN(2, 1)
	if a.Count() != 0 {
		t.Fatal("clone writes leaked into original")
	}

	wide, _ := NewLatency(5)
	if err := a.Merge(wide); err == nil {
		t.Fatal("shape-mismatched merge accepted")
	}
}

func TestLatencyQuantile(t *testing.T) {
	l, _ := NewLatency(10)
	if got := l.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d", got)
	}
	l.ObserveN(1, 50)
	l.ObserveN(3, 40)
	l.ObserveN(20, 10) // overflow reports Max+1 = 11
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 1}, {0.25, 1}, {0.5, 1}, {0.6, 3}, {0.9, 3}, {0.95, 11}, {1, 11},
	}
	for _, tc := range cases {
		if got := l.Quantile(tc.q); got != tc.want {
			t.Fatalf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
}
