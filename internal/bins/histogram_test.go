package bins

import (
	"slices"
	"testing"

	"repro/internal/xrand"
)

// randomArray builds an array with capacities drawn from the given
// class set and a random ball placement, so histogram-vs-scan
// properties get exercised across skewed occupancies.
func randomArray(t *testing.T, r *xrand.Rand, n int, classes []int64, maxBalls int) *Array {
	t.Helper()
	caps := make([]int64, n)
	for i := range caps {
		caps[i] = classes[r.Intn(len(classes))]
	}
	a := MustNew(caps)
	for i := 0; i < n; i++ {
		a.AddBalls(i, int64(r.Intn(maxBalls+1)))
	}
	return a
}

func TestNewLoadHistogramValidation(t *testing.T) {
	cases := [][]int64{
		nil,
		{},
		{0},
		{-3, 1},
		{1, 1},
		{2, 1},
		{1, 3, 3},
	}
	for _, classes := range cases {
		if _, err := NewLoadHistogram(classes); err == nil {
			t.Errorf("NewLoadHistogram(%v) accepted", classes)
		}
	}
	if _, err := NewLoadHistogram([]int64{1, 2, 10}); err != nil {
		t.Fatalf("valid classes rejected: %v", err)
	}
}

func TestHistogramUnknownCapacityError(t *testing.T) {
	h, err := NewLoadHistogram([]int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	a := MustNew([]int64{1, 2, 5})
	a.Add(0)
	if err := a.HistogramInto(h); err == nil {
		t.Fatal("capacity outside the skeleton accepted")
	}
	// The failed rebuild must leave the histogram empty, not half-filled.
	if h.Bins() != 0 || h.Balls() != 0 {
		t.Fatalf("failed HistogramInto left bins=%d balls=%d", h.Bins(), h.Balls())
	}
}

// TestHistogramMatchesScan pins every histogram derivation against the
// naive per-bin scan it replaces, across random capacity distributions
// including single-class and many-distinct-class adversarial shapes.
func TestHistogramMatchesScan(t *testing.T) {
	r := xrand.New(1517)
	classSets := [][]int64{
		{1},                     // single class (uniform bins)
		{1, 10},                 // the paper's two-class split
		{1, 2, 3, 5, 8, 13, 21}, // many distinct classes
		{7},                     // single non-unit class
		{1, 1 << 20},            // beyond denseClassLimit: binary-search lookup
	}
	for _, classes := range classSets {
		for trial := 0; trial < 20; trial++ {
			a := randomArray(t, r, 1+r.Intn(200), classes, 30)
			h := a.NewLoadHistogram()
			if err := a.HistogramInto(h); err != nil {
				t.Fatal(err)
			}
			checkHistogramAgainstScan(t, a, h)
		}
	}
}

func checkHistogramAgainstScan(t *testing.T, a *Array, h *LoadHistogram) {
	t.Helper()
	if h.Bins() != int64(a.N()) {
		t.Fatalf("Bins() = %d, want %d", h.Bins(), a.N())
	}
	if h.Balls() != a.TotalBalls() {
		t.Fatalf("Balls() = %d, want %d", h.Balls(), a.TotalBalls())
	}
	if h.TotalCapacity() != a.TotalCapacity() {
		t.Fatalf("TotalCapacity() = %d, want %d", h.TotalCapacity(), a.TotalCapacity())
	}

	// Max load: bit-identical float, and exact pair equivalence.
	if got, want := h.MaxLoad(), a.MaxLoad(); got != want {
		t.Fatalf("MaxLoad() = %v, want %v", got, want)
	}
	hb, hc := h.MaxLoadPair()
	ab, ac := a.MaxLoadPair()
	if hb*ac != ab*hc {
		t.Fatalf("MaxLoadPair() = %d/%d, scan argmax %d/%d", hb, hc, ab, ac)
	}

	// Sorted load vector: counting order over pairs vs float sort.
	var scan []float64
	for i := 0; i < a.N(); i++ {
		scan = append(scan, a.Load(i))
	}
	slices.Sort(scan)
	var fromPairs []float64
	for _, p := range h.AppendPairs(nil) {
		v := float64(p.Balls) / float64(p.Cap)
		for j := int64(0); j < p.Count; j++ {
			fromPairs = append(fromPairs, v)
		}
	}
	slices.SortFunc(fromPairs, func(x, y float64) int {
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	})
	if !slices.Equal(scan, fromPairs) {
		t.Fatalf("pair expansion mismatch:\n hist %v\n scan %v", fromPairs, scan)
	}

	// Suffix sums: bins at load >= k vs the naive count.
	levels := 8
	counts := make([]int64, levels)
	h.CountAtOrAbove(counts)
	for k := 1; k <= levels; k++ {
		var want int64
		for i := 0; i < a.N(); i++ {
			if a.Balls(i) >= int64(k)*a.Capacity(i) {
				want++
			}
		}
		if counts[k-1] != want {
			t.Fatalf("CountAtOrAbove level %d = %d, want %d", k, counts[k-1], want)
		}
	}

	// Per-class observables.
	for _, c := range h.Classes() {
		if got, want := h.ClassBins(c), int64(a.CountClass(c)); got != want {
			t.Fatalf("ClassBins(%d) = %d, want %d", c, got, want)
		}
		if got, want := h.ClassAttainsMax(c), a.MaxLoadInClassC(c); got != want {
			t.Fatalf("ClassAttainsMax(%d) = %v, want %v", c, got, want)
		}
		var classMax float64
		var classLoads []float64
		for i := 0; i < a.N(); i++ {
			if a.Capacity(i) != c {
				continue
			}
			l := a.Load(i)
			classLoads = append(classLoads, l)
			if l > classMax {
				classMax = l
			}
		}
		if got := h.MaxLoadOfClass(c); got != classMax {
			t.Fatalf("MaxLoadOfClass(%d) = %v, want %v", c, got, classMax)
		}
		slices.Sort(classLoads)
		slices.Reverse(classLoads)
		sum := make([]float64, len(classLoads))
		if err := h.AddClassLoadsDesc(c, sum); err != nil {
			t.Fatalf("AddClassLoadsDesc(%d): %v", c, err)
		}
		if !slices.Equal(sum, classLoads) {
			t.Fatalf("AddClassLoadsDesc(%d) = %v, want %v", c, sum, classLoads)
		}
	}
}

// TestHistogramMergeEqualsWhole pins the sharded contract: per-shard
// histograms (over views sharing the parent skeleton) merged in shard
// order are identical to one whole-array pass.
func TestHistogramMergeEqualsWhole(t *testing.T) {
	r := xrand.New(99)
	for trial := 0; trial < 25; trial++ {
		a := randomArray(t, r, 2+r.Intn(300), []int64{1, 2, 10}, 25)
		whole := a.NewLoadHistogram()
		if err := a.HistogramInto(whole); err != nil {
			t.Fatal(err)
		}

		shards := 1 + r.Intn(8)
		merged := whole.CloneEmpty()
		part := whole.CloneEmpty()
		for s := 0; s < shards; s++ {
			lo, hi := s*a.N()/shards, (s+1)*a.N()/shards
			if lo >= hi {
				continue
			}
			v, err := a.Shard(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			if err := v.HistogramInto(part); err != nil {
				t.Fatal(err)
			}
			if err := merged.Merge(part); err != nil {
				t.Fatal(err)
			}
		}
		if merged.Bins() != whole.Bins() || merged.Balls() != whole.Balls() {
			t.Fatalf("merge totals (%d bins, %d balls), want (%d, %d)",
				merged.Bins(), merged.Balls(), whole.Bins(), whole.Balls())
		}
		if !slices.Equal(merged.AppendPairs(nil), whole.AppendPairs(nil)) {
			t.Fatal("merged pair set differs from whole-array pass")
		}
		if merged.MaxLoad() != whole.MaxLoad() {
			t.Fatalf("merged MaxLoad %v, whole %v", merged.MaxLoad(), whole.MaxLoad())
		}
	}
}

func TestHistogramMergeSkeletonMismatch(t *testing.T) {
	h1, _ := NewLoadHistogram([]int64{1, 2})
	h2, _ := NewLoadHistogram([]int64{1, 3})
	h3, _ := NewLoadHistogram([]int64{1})
	if err := h1.Merge(h2); err == nil {
		t.Error("merge with different class values accepted")
	}
	if err := h1.Merge(h3); err == nil {
		t.Error("merge with different class counts accepted")
	}
}

// TestHistogramReuse pins the steady-state contract: Reset +
// HistogramInto over the same array reproduces identical state, and a
// reused histogram never leaks rows from a previous, taller build.
func TestHistogramReuse(t *testing.T) {
	a := MustNew([]int64{1, 1, 2})
	a.AddBalls(0, 40) // tall build grows rows
	h := a.NewLoadHistogram()
	if err := a.HistogramInto(h); err != nil {
		t.Fatal(err)
	}
	tall := h.AppendPairs(nil)

	b := MustNew([]int64{1, 1, 2})
	b.Add(1)
	if err := b.HistogramInto(h); err != nil {
		t.Fatal(err)
	}
	short := h.AppendPairs(nil)
	want := []LoadPair{{Balls: 0, Cap: 1, Count: 1}, {Balls: 0, Cap: 2, Count: 1}, {Balls: 1, Cap: 1, Count: 1}}
	if !slices.Equal(short, want) {
		t.Fatalf("reused histogram pairs %v, want %v", short, want)
	}

	if err := a.HistogramInto(h); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(h.AppendPairs(nil), tall) {
		t.Fatal("rebuild over the original array is not idempotent")
	}
}

// TestMaxLoadPairFloatTie is the adversarial case exact comparison
// exists for: 999/(999·2^33+1) and 998/(998·2^33+1) are distinct
// rationals (the cross products differ by exactly 1, so the first is
// larger by 1/(c1·c2) ≈ 2^-86) whose float64 quotients collide — the
// relative gap ≈ 2^-63 is far below float64 resolution. The scan and
// the histogram must both pick the true maximum by cross
// multiplication, which float comparison cannot distinguish.
func TestMaxLoadPairFloatTie(t *testing.T) {
	// Search the family c1 = 999k+1, c2 = 998k+1 (whose cross products
	// differ by exactly 1 for every k) for a k where the two float64
	// quotients actually collide — about half the family does, the rest
	// straddle a rounding boundary.
	var c1, c2 int64
	for k := int64(1) << 36; k < 1<<36+4096; k++ {
		d1, d2 := 999*k+1, 998*k+1
		if float64(999)/float64(d1) == float64(998)/float64(d2) {
			c1, c2 = d1, d2
			break
		}
	}
	if c1 == 0 {
		t.Fatal("no float-colliding pair in the family; widen the search")
	}
	// 999·c2 − 998·c1 = 999 − 998 = 1: distinct rationals, 999/c1 larger.
	if 999*c2-998*c1 != 1 {
		t.Fatal("tie construction broken")
	}
	a := MustNew([]int64{c2, c1})
	a.AddBalls(0, 998)
	a.AddBalls(1, 999)
	ab, ac := a.MaxLoadPair()
	if ab != 999 || ac != c1 {
		t.Fatalf("scan argmax = %d/%d, want 999/%d", ab, ac, int64(c1))
	}
	h := a.NewLoadHistogram()
	if err := a.HistogramInto(h); err != nil {
		t.Fatal(err)
	}
	hb, hc := h.MaxLoadPair()
	if hb != 999 || hc != c1 {
		t.Fatalf("hist argmax = %d/%d, want 999/%d", hb, hc, int64(c1))
	}
	if h.MaxLoad() != a.MaxLoad() {
		t.Fatal("float reports differ")
	}
	if !h.ClassAttainsMax(c1) || h.ClassAttainsMax(c2) {
		t.Fatal("ClassAttainsMax resolved the float-colliding tie wrong")
	}
}

// TestHistogramIntoSteadyStateAllocs pins the zero-allocation rebuild
// contract after warm-up.
func TestHistogramIntoSteadyStateAllocs(t *testing.T) {
	r := xrand.New(7)
	a := randomArray(t, r, 512, []int64{1, 10}, 20)
	h := a.NewLoadHistogram()
	if err := a.HistogramInto(h); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := a.HistogramInto(h); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state HistogramInto allocates %v/op", allocs)
	}
}
