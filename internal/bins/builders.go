package bins

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/xrand"
)

// Uniform returns n bins of capacity c each (the classical game for c=1;
// §4.1's setting for c > 1).
func Uniform(n int, c int64) (*Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("bins: n = %d, must be positive", n)
	}
	caps := make([]int64, n)
	for i := range caps {
		caps[i] = c
	}
	return New(caps)
}

// TwoClass returns nSmall bins of capacity cSmall followed by nLarge bins
// of capacity cLarge (the §4.2 mixed arrays). Either count may be zero as
// long as at least one bin exists.
func TwoClass(nSmall int, cSmall int64, nLarge int, cLarge int64) (*Array, error) {
	if nSmall < 0 || nLarge < 0 || nSmall+nLarge == 0 {
		return nil, fmt.Errorf("bins: invalid two-class counts %d, %d", nSmall, nLarge)
	}
	caps := make([]int64, 0, nSmall+nLarge)
	for i := 0; i < nSmall; i++ {
		caps = append(caps, cSmall)
	}
	for i := 0; i < nLarge; i++ {
		caps = append(caps, cLarge)
	}
	return New(caps)
}

// RandomBinomial returns n bins whose capacities are 1 + Bin(7, (c-1)/7),
// the paper's §4.2 randomised size generator. c must lie in [1, 8]; the
// expected total capacity is c·n.
func RandomBinomial(n int, c float64, r *xrand.Rand) (*Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("bins: n = %d, must be positive", n)
	}
	if c < 1 || c > 8 {
		return nil, fmt.Errorf("bins: target mean capacity %v outside [1,8]", c)
	}
	p := (c - 1) / 7
	caps := make([]int64, n)
	for i := range caps {
		caps[i] = int64(1 + r.Binomial(7, p))
	}
	return New(caps)
}

// RandomBinomialK generalises RandomBinomial to capacities 1 + Bin(K, p)
// with p = (c-1)/K, keeping the expected capacity at c for any c in
// [1, K+1]. The paper's §4.4 heavily loaded experiment prescribes expected
// capacities up to 10·n/n = 10, beyond the reach of the K = 7 generator,
// and only says the capacities are generated "similar to" §4.2 — this is
// that generalisation.
func RandomBinomialK(n int, c float64, k int, r *xrand.Rand) (*Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("bins: n = %d, must be positive", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("bins: K = %d, must be >= 1", k)
	}
	if c < 1 || c > float64(k)+1 {
		return nil, fmt.Errorf("bins: target mean capacity %v outside [1,%d]", c, k+1)
	}
	p := (c - 1) / float64(k)
	caps := make([]int64, n)
	for i := range caps {
		caps[i] = int64(1 + r.Binomial(k, p))
	}
	return New(caps)
}

// Batch is one generation of identical bins in a growing system (§4.3:
// "new disks are bought in batches").
type Batch struct {
	Count    int   // number of bins in this generation
	Capacity int64 // capacity of each bin in this generation
}

// Generations concatenates batches into a single Array (oldest first).
func Generations(batches []Batch) (*Array, error) {
	var caps []int64
	for bi, b := range batches {
		if b.Count < 0 {
			return nil, fmt.Errorf("bins: batch %d has negative count", bi)
		}
		if b.Count > 0 && b.Capacity < 1 {
			return nil, fmt.Errorf("bins: batch %d capacity %d < 1", bi, b.Capacity)
		}
		for i := 0; i < b.Count; i++ {
			caps = append(caps, b.Capacity)
		}
	}
	return New(caps)
}

// LinearBatches models §4.3's linear growth: the i-th batch (0-indexed)
// has capacity start + a·i. All batches have batchSize bins except the
// first, which has firstCount (the experiments start from 2 disks).
func LinearBatches(firstCount, batchSize, totalBins int, start, a int64) []Batch {
	var batches []Batch
	count := 0
	for i := 0; count < totalBins; i++ {
		size := batchSize
		if i == 0 {
			size = firstCount
		}
		if count+size > totalBins {
			size = totalBins - count
		}
		batches = append(batches, Batch{Count: size, Capacity: start + a*int64(i)})
		count += size
	}
	return batches
}

// ExponentialBatches models §4.3's exponential growth: the i-th batch has
// capacity round(start · b^i), never below 1. Capacities are integers per
// the model, so slow factors (b = 1.005) round back to the start value for
// many generations — exactly the "slow to take off" behaviour in Fig 15.
func ExponentialBatches(firstCount, batchSize, totalBins int, start float64, b float64) []Batch {
	var batches []Batch
	count := 0
	for i := 0; count < totalBins; i++ {
		size := batchSize
		if i == 0 {
			size = firstCount
		}
		if count+size > totalBins {
			size = totalBins - count
		}
		cap := int64(math.Round(start * math.Pow(b, float64(i))))
		if cap < 1 {
			cap = 1
		}
		batches = append(batches, Batch{Count: size, Capacity: cap})
		count += size
	}
	return batches
}

// ParseSpec parses a compact capacity specification of the form
// "COUNTxCAP[+COUNTxCAP...]", e.g. "5000x1+5000x8" for 5000 unit bins and
// 5000 capacity-8 bins. Used by the CLIs.
func ParseSpec(spec string) (*Array, error) {
	parts := strings.Split(spec, "+")
	var caps []int64
	for _, part := range parts {
		fields := strings.Split(strings.TrimSpace(part), "x")
		if len(fields) != 2 {
			return nil, fmt.Errorf("bins: bad spec component %q (want COUNTxCAP)", part)
		}
		count, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil || count <= 0 {
			return nil, fmt.Errorf("bins: bad count in %q", part)
		}
		c, err := strconv.ParseInt(strings.TrimSpace(fields[1]), 10, 64)
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bins: bad capacity in %q", part)
		}
		for i := 0; i < count; i++ {
			caps = append(caps, c)
		}
	}
	return New(caps)
}
