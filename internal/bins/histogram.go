// One-pass load-histogram kernel: the observation substrate shared by
// every simulation engine.
//
// A LoadHistogram holds exact integer counts over the distinct
// (ball count, capacity class) pairs present in an Array — built in ONE
// O(n) (or O(shard)) pass by Array.HistogramInto. Every headline
// observable then derives from the pairs instead of re-scanning bins:
// the maximum load is an exact rational argmax over at most
// (classes) candidate pairs, bins-above-height-k is a weighted suffix
// sum, the sorted load vector is a counting sort by cross-multiplied
// rational order over the few hundred distinct pairs (never an
// O(n log n) float sort), and per-class observables read one column.
//
// Histograms merge by integer addition, so sharded engines build them
// per shard in parallel and fold in shard order — the merged histogram
// is identical for any worker topology by construction, and every
// float derived from it is computed once, from the same integers.
//
// Exactness: all pair comparisons cross-multiply int64 rationals (safe
// while max(balls)·max(capacity) < 2^63, the package contract). The
// float a derivation reports is float64(balls)/float64(capacity) of
// the winning pair; for operands exactly representable in float64
// (anything below 2^53, far beyond the paper's loads) equal rationals
// divide to identical floats, so the histogram path reports bit-equal
// values to the per-bin scan it replaces.
package bins

import "fmt"

// denseClassLimit is the largest capacity value for which the
// histogram keeps a dense capacity→class lookup table (one int32 per
// capacity value up to the largest class). Above it, lookups fall back
// to binary search over the (few) classes.
const denseClassLimit = 1 << 16

// LoadHistogram is an exact integer histogram over (ball count,
// capacity class) pairs: counts[h][ci] bins of capacity classes[ci]
// hold exactly h balls. The class skeleton (classes, lookup table) is
// immutable after construction and shared across CloneEmpty copies;
// the counts grow by whole rows as larger ball counts appear and are
// reused across Reset/HistogramInto cycles, so steady-state rebuilds
// allocate nothing.
type LoadHistogram struct {
	classes []int64 // ascending distinct capacities (immutable)
	capIdx  []int32 // dense capacity→class index, -1 gaps; nil when classes exceed denseClassLimit
	counts  []int64 // row-major: counts[h*len(classes)+ci]
	rows    int     // high-water row count; len(counts) == rows*len(classes)
	nbins   int64
	nballs  int64
}

// NewLoadHistogram builds an empty histogram over the given capacity
// classes, which must be positive and strictly increasing (the order
// CapacityClasses produces).
func NewLoadHistogram(classes []int64) (*LoadHistogram, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("bins: histogram over no capacity classes")
	}
	for i, c := range classes {
		if c < 1 {
			return nil, fmt.Errorf("bins: histogram class %d is %d, capacities are >= 1", i, c)
		}
		if i > 0 && c <= classes[i-1] {
			return nil, fmt.Errorf("bins: histogram classes must be strictly increasing (class %d: %d after %d)", i, c, classes[i-1])
		}
	}
	h := &LoadHistogram{classes: append([]int64(nil), classes...)}
	if maxC := h.classes[len(h.classes)-1]; maxC <= denseClassLimit {
		h.capIdx = make([]int32, maxC+1)
		for i := range h.capIdx {
			h.capIdx[i] = -1
		}
		for ci, c := range h.classes {
			h.capIdx[c] = int32(ci)
		}
	}
	return h, nil
}

// NewLoadHistogram builds an empty histogram whose class skeleton
// covers exactly this array's capacity classes.
func (a *Array) NewLoadHistogram() *LoadHistogram {
	h, err := NewLoadHistogram(a.CapacityClasses())
	if err != nil {
		// CapacityClasses of a constructed Array is sorted, distinct
		// and positive by New's validation; failing here is a
		// programming error, not an input error.
		panic(err)
	}
	return h
}

// CloneEmpty returns an empty histogram sharing the receiver's
// immutable class skeleton — the per-shard histograms of a sharded
// engine all share one skeleton, so Merge can never face a class
// mismatch and the (possibly large) lookup table exists once.
func (h *LoadHistogram) CloneEmpty() *LoadHistogram {
	return &LoadHistogram{classes: h.classes, capIdx: h.capIdx}
}

// classIndex returns the class index of capacity c, or -1 when c is
// not a class of this skeleton.
func (h *LoadHistogram) classIndex(c int64) int {
	if h.capIdx != nil {
		if c >= 0 && c < int64(len(h.capIdx)) {
			return int(h.capIdx[c])
		}
		return -1
	}
	lo, hi := 0, len(h.classes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.classes[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.classes) && h.classes[lo] == c {
		return lo
	}
	return -1
}

// Reset empties the histogram, keeping the row capacity for reuse.
func (h *LoadHistogram) Reset() {
	clear(h.counts)
	h.nbins, h.nballs = 0, 0
}

// growRows extends the counts matrix to cover ball count hrow,
// doubling to amortise; the appended rows are zero.
func (h *LoadHistogram) growRows(hrow int64) {
	need := int(hrow) + 1
	rows := h.rows * 2
	if rows < need {
		rows = need
	}
	nc := len(h.classes)
	for len(h.counts) < rows*nc {
		h.counts = append(h.counts, 0)
	}
	h.rows = len(h.counts) / nc
}

// HistogramInto rebuilds h as the load histogram of a in one pass over
// the bins. h's class skeleton must cover every capacity in a (build
// it with a.NewLoadHistogram, or share a parent array's skeleton for
// shard views); a capacity outside the skeleton returns an error and
// leaves h empty. Buffers are reused across calls — after warm-up the
// rebuild allocates nothing.
func (a *Array) HistogramInto(h *LoadHistogram) error {
	h.Reset()
	nc := int64(len(h.classes))
	var balls int64
	for i := range a.bins {
		b := &a.bins[i]
		ci := h.classIndex(b.cap)
		if ci < 0 {
			h.Reset()
			return fmt.Errorf("bins: histogram: capacity %d of bin %d not in class skeleton", b.cap, i)
		}
		k := b.balls
		if k >= int64(h.rows) {
			h.growRows(k)
		}
		h.counts[k*nc+int64(ci)]++
		balls += k
	}
	h.nbins = int64(len(a.bins))
	h.nballs = balls
	return nil
}

// Merge adds o's counts into h. Both histograms must share an
// identical class skeleton; merging is pure integer addition, so the
// result is independent of merge order (engines still fold in shard
// order for uniformity with the float-bearing collectors).
func (h *LoadHistogram) Merge(o *LoadHistogram) error {
	if len(o.classes) != len(h.classes) {
		return fmt.Errorf("bins: merging histogram over %d classes into %d", len(o.classes), len(h.classes))
	}
	for i := range h.classes {
		if h.classes[i] != o.classes[i] {
			return fmt.Errorf("bins: merging histogram with class %d = %d into %d", i, o.classes[i], h.classes[i])
		}
	}
	if o.rows > h.rows {
		h.growRows(int64(o.rows) - 1)
	}
	nc := len(h.classes)
	for i, v := range o.counts[:o.rows*nc] {
		if v != 0 {
			h.counts[i] += v
		}
	}
	h.nbins += o.nbins
	h.nballs += o.nballs
	return nil
}

// Bins returns the number of bins observed into the histogram.
func (h *LoadHistogram) Bins() int64 { return h.nbins }

// Balls returns the total ball count observed into the histogram.
func (h *LoadHistogram) Balls() int64 { return h.nballs }

// Classes returns a copy of the class skeleton's capacity values.
func (h *LoadHistogram) Classes() []int64 {
	return append([]int64(nil), h.classes...)
}

// TotalCapacity returns Σ capacity over the observed bins, derived
// from the per-class bin counts.
func (h *LoadHistogram) TotalCapacity() int64 {
	nc := len(h.classes)
	var total int64
	for ci, c := range h.classes {
		var nb int64
		for r := 0; r < h.rows; r++ {
			nb += h.counts[r*nc+ci]
		}
		total += c * nb
	}
	return total
}

// ClassBins returns the number of observed bins of capacity c (0 when
// c is not a class of the skeleton).
func (h *LoadHistogram) ClassBins(c int64) int64 {
	ci := h.classIndex(c)
	if ci < 0 {
		return 0
	}
	nc := len(h.classes)
	var nb int64
	for r := 0; r < h.rows; r++ {
		nb += h.counts[r*nc+ci]
	}
	return nb
}

// MaxLoadPair returns the exact (balls, capacity) pair attaining the
// maximum load: each class contributes its top occupied row as a
// candidate, and the at-most-(classes) candidates compare by cross
// multiplication. Ties keep the smallest class — any tied pair divides
// to the identical float64 (see the package comment on exactness). An
// empty histogram returns (0, smallest class).
func (h *LoadHistogram) MaxLoadPair() (balls, capacity int64) {
	nc := len(h.classes)
	bb, bc := int64(0), h.classes[0]
	found := false
	for ci, c := range h.classes {
		for r := h.rows - 1; r >= 0; r-- {
			if h.counts[r*nc+ci] == 0 {
				continue
			}
			if k := int64(r); !found || k*bc > bb*c {
				bb, bc = k, c
				found = true
			}
			break
		}
	}
	return bb, bc
}

// MaxLoad returns the maximum observed load as a float64 — the same
// value (bit for bit) as Array.MaxLoad over the scanned bins.
func (h *LoadHistogram) MaxLoad() float64 {
	b, c := h.MaxLoadPair()
	return float64(b) / float64(c)
}

// CountAtOrAbove fills counts[k-1] with the number of observed bins at
// load >= k for k = 1..len(counts), by weighted suffix sums over the
// pairs — integer-exact and identical to the per-bin scan
// (obs.CountAtOrAbove) it replaces.
func (h *LoadHistogram) CountAtOrAbove(counts []int64) {
	levels := int64(len(counts))
	clear(counts)
	nc := len(h.classes)
	for ci, c := range h.classes {
		for r := 0; r < h.rows; r++ {
			cnt := h.counts[r*nc+ci]
			if cnt == 0 {
				continue
			}
			k := int64(r) / c
			if k > levels {
				k = levels
			}
			if k >= 1 {
				counts[k-1] += cnt
			}
		}
	}
	for k := levels - 1; k >= 1; k-- {
		counts[k-1] += counts[k]
	}
}

// LoadPair is one distinct (ball count, capacity) cell of a
// LoadHistogram together with its multiplicity.
type LoadPair struct {
	Balls, Cap, Count int64
}

// CompareLoadPairs compares the loads of two pairs exactly (cross
// multiplication), returning -1, 0 or +1.
func CompareLoadPairs(p, q LoadPair) int {
	return compareRatio(p.Balls, p.Cap, q.Balls, q.Cap)
}

// AppendPairs appends every occupied cell as a LoadPair, in ascending
// (ball count, class) order, and returns the extended slice. Callers
// reuse one scratch slice (dst[:0]) to keep snapshots allocation-free.
func (h *LoadHistogram) AppendPairs(dst []LoadPair) []LoadPair {
	nc := len(h.classes)
	for r := 0; r < h.rows; r++ {
		for ci := 0; ci < nc; ci++ {
			if cnt := h.counts[r*nc+ci]; cnt != 0 {
				dst = append(dst, LoadPair{Balls: int64(r), Cap: h.classes[ci], Count: cnt})
			}
		}
	}
	return dst
}

// MaxLoadOfClass returns the maximum load among the observed bins of
// capacity c (0 when no such bin was observed) — one column read
// instead of a whole-array scan.
func (h *LoadHistogram) MaxLoadOfClass(c int64) float64 {
	ci := h.classIndex(c)
	if ci < 0 {
		return 0
	}
	nc := len(h.classes)
	for r := h.rows - 1; r >= 0; r-- {
		if h.counts[r*nc+ci] != 0 {
			return float64(r) / float64(c)
		}
	}
	return 0
}

// ClassAttainsMax reports whether a bin of capacity c attains the
// global maximum load, with exact tie handling — the histogram form of
// Array.MaxLoadInClassC.
func (h *LoadHistogram) ClassAttainsMax(c int64) bool {
	ci := h.classIndex(c)
	if ci < 0 {
		return false
	}
	nc := len(h.classes)
	top := int64(-1)
	for r := h.rows - 1; r >= 0; r-- {
		if h.counts[r*nc+ci] != 0 {
			top = int64(r)
			break
		}
	}
	if top < 0 {
		return false
	}
	mb, mc := h.MaxLoadPair()
	return compareRatio(top, c, mb, mc) == 0
}

// AddClassLoadsDesc adds the class's non-increasing load vector
// element-wise into sum, which must have exactly ClassBins(c)
// elements. Within one class load order is ball-count order, so the
// descending emission needs no sort at all.
func (h *LoadHistogram) AddClassLoadsDesc(c int64, sum []float64) error {
	ci := h.classIndex(c)
	if ci < 0 {
		if len(sum) != 0 {
			return fmt.Errorf("bins: class %d not in histogram, sum vector has %d elements", c, len(sum))
		}
		return nil
	}
	nc := len(h.classes)
	pos := 0
	for r := h.rows - 1; r >= 0; r-- {
		cnt := h.counts[r*nc+ci]
		if cnt == 0 {
			continue
		}
		v := float64(r) / float64(c)
		for j := int64(0); j < cnt; j++ {
			if pos >= len(sum) {
				return fmt.Errorf("bins: class %d has more than %d bins", c, len(sum))
			}
			sum[pos] += v
			pos++
		}
	}
	if pos != len(sum) {
		return fmt.Errorf("bins: class %d has %d bins, sum vector has %d", c, pos, len(sum))
	}
	return nil
}
