// Package bins models the state of a balls-into-bins game with
// heterogeneous (non-uniform) bins, per Section 2 of the paper.
//
// Each bin i has a positive integer capacity c_i ("size"); the total
// capacity is C = Σ c_i. When a bin holds m_i balls its load is
// ℓ_i = m_i / c_i. Capacity does not cap the number of balls a bin can
// receive — think "speed" or "bandwidth", not "volume".
//
// All load comparisons the allocation protocol performs are exact: loads
// are rationals with integer numerator and denominator, so comparisons use
// cross-multiplied int64 arithmetic rather than floating point. This makes
// simulations bit-reproducible and immune to float tie ambiguity. The
// arithmetic is safe while max(m_i+1) · max(c_j) < 2^63, far beyond any
// configuration in the paper (the heaviest run holds ~10^7 balls in bins
// of capacity ≤ 10).
package bins

import (
	"fmt"
	"math"
	"slices"
)

// Array is a heterogeneous bin array: capacities plus current ball counts.
// The zero value is unusable; construct with New or a builder.
//
// Capacity and ball count are interleaved per bin (one 16-byte struct)
// rather than held in parallel slices: the allocation hot path touches a
// handful of random bins per ball, and the packed layout makes each
// touched bin exactly one cache line instead of two.
type Array struct {
	bins []bin
	c    int64 // total capacity
	m    int64 // total balls currently allocated
}

// bin packs one bin's capacity and current ball count.
type bin struct {
	cap   int64
	balls int64
}

// New constructs an Array from integer capacities. Every capacity must be
// at least 1.
func New(capacities []int64) (*Array, error) {
	if len(capacities) == 0 {
		return nil, fmt.Errorf("bins: empty capacity vector")
	}
	a := &Array{bins: make([]bin, len(capacities))}
	for i, c := range capacities {
		if c < 1 {
			return nil, fmt.Errorf("bins: capacity of bin %d is %d, must be >= 1", i, c)
		}
		a.bins[i].cap = c
		a.c += c
	}
	return a, nil
}

// MustNew is New but panics on error; for tests and literals.
func MustNew(capacities []int64) *Array {
	a, err := New(capacities)
	if err != nil {
		panic(err)
	}
	return a
}

// N returns the number of bins.
func (a *Array) N() int { return len(a.bins) }

// Capacity returns c_i.
func (a *Array) Capacity(i int) int64 { return a.bins[i].cap }

// Capacities returns a copy of the capacity vector.
func (a *Array) Capacities() []int64 {
	out := make([]int64, len(a.bins))
	for i := range a.bins {
		out[i] = a.bins[i].cap
	}
	return out
}

// TotalCapacity returns C = Σ c_i.
func (a *Array) TotalCapacity() int64 { return a.c }

// Balls returns m_i, the number of balls currently in bin i.
func (a *Array) Balls(i int) int64 { return a.bins[i].balls }

// TotalBalls returns the number of balls allocated so far.
func (a *Array) TotalBalls() int64 { return a.m }

// PostLoad returns (m_i + 1, c_i) — the numerator and denominator of
// the load bin i would have after receiving one more ball — in a single
// probe, so the allocation kernels pay one bounds check per candidate
// instead of two.
func (a *Array) PostLoad(i int) (int64, int64) {
	b := &a.bins[i]
	return b.balls + 1, b.cap
}

// Prefetch touches bin i's packed (capacity, balls) line and returns
// its ball count. The software-pipelined PlaceBatch decision loops
// call it for the NEXT ball's candidates while deciding the current
// ball, so the next iteration's line loads overlap the current
// compare cascade; callers fold the value into a sink they keep live,
// which is what stops the compiler from discarding the load. The
// value itself is never used for a decision — decisions always
// re-read fresh state.
func (a *Array) Prefetch(i int) int64 { return a.bins[i].balls }

// Add places one ball into bin i.
func (a *Array) Add(i int) {
	a.bins[i].balls++
	a.m++
}

// AddBalls places k balls into bin i at once — the bulk entry point of
// the closed-form multinomial engine, which materialises whole count
// vectors instead of placing balls one by one. It panics on k < 0.
func (a *Array) AddBalls(i int, k int64) {
	if k < 0 {
		panic(fmt.Sprintf("bins: AddBalls(%d, %d) with negative count", i, k))
	}
	a.bins[i].balls += k
	a.m += k
}

// Remove takes one ball out of bin i (queueing-style departures; the
// dynamic setting of the cluster simulator). It panics if bin i is
// empty — a departure without a prior arrival is a programming error.
func (a *Array) Remove(i int) {
	if a.bins[i].balls == 0 {
		panic(fmt.Sprintf("bins: Remove from empty bin %d", i))
	}
	a.bins[i].balls--
	a.m--
}

// RemoveBalls takes k balls out of bin i at once — the bulk departure
// entry point of the cluster engines, whose service phase completes up
// to `capacity` requests per server per tick. It panics on k < 0 and on
// k exceeding the bin's current ball count: draining more than arrived
// is a programming error, exactly as for Remove.
func (a *Array) RemoveBalls(i int, k int64) {
	if k < 0 {
		panic(fmt.Sprintf("bins: RemoveBalls(%d, %d) with negative count", i, k))
	}
	if k > a.bins[i].balls {
		panic(fmt.Sprintf("bins: RemoveBalls(%d, %d) exceeds %d balls", i, k, a.bins[i].balls))
	}
	a.bins[i].balls -= k
	a.m -= k
}

// Load returns ℓ_i = m_i / c_i as a float64 (for reporting only; the
// protocol never compares floats).
func (a *Array) Load(i int) float64 {
	return float64(a.bins[i].balls) / float64(a.bins[i].cap)
}

// AverageLoad returns m / C, the load every bin would have under a perfect
// capacity-proportional split. For uniform unit bins this is the familiar
// m/n.
func (a *Array) AverageLoad() float64 {
	return float64(a.m) / float64(a.c)
}

// CompareLoads compares ℓ_i with ℓ_j exactly, returning -1, 0 or +1.
func (a *Array) CompareLoads(i, j int) int {
	bi, bj := &a.bins[i], &a.bins[j]
	return compareRatio(bi.balls, bi.cap, bj.balls, bj.cap)
}

// ComparePostLoads compares the loads bins i and j would have after
// receiving one more ball: (m_i+1)/c_i vs (m_j+1)/c_j, exactly.
func (a *Array) ComparePostLoads(i, j int) int {
	bi, bj := &a.bins[i], &a.bins[j]
	return compareRatio(bi.balls+1, bi.cap, bj.balls+1, bj.cap)
}

// compareRatio compares p/q with r/s for positive q, s via cross
// multiplication.
func compareRatio(p, q, r, s int64) int {
	lhs, rhs := p*s, r*q
	switch {
	case lhs < rhs:
		return -1
	case lhs > rhs:
		return 1
	default:
		return 0
	}
}

// MaxLoad returns the maximum load over all bins as a float64. The
// argmax is found by exact cross-multiplied comparison — never by
// comparing float quotients, so rational ties that collide (or split)
// in float64 can never misreport it; only the winning pair's final
// report converts to float.
func (a *Array) MaxLoad() float64 {
	b, c := a.MaxLoadPair()
	return float64(b) / float64(c)
}

// MaxLoadPair returns the exact (balls, capacity) pair of the first
// bin attaining the maximum load — the rational the protocol's
// comparisons actually rank, before any float conversion.
func (a *Array) MaxLoadPair() (balls, capacity int64) {
	bb, bc := a.bins[0].balls, a.bins[0].cap
	for i := 1; i < len(a.bins); i++ {
		b := &a.bins[i]
		if b.balls*bc > bb*b.cap {
			bb, bc = b.balls, b.cap
		}
	}
	return bb, bc
}

// ArgMaxLoad returns every bin index attaining the maximum load
// (ties resolved exactly, by cross multiplication).
func (a *Array) ArgMaxLoad() []int {
	best := []int{0}
	bb, bc := a.bins[0].balls, a.bins[0].cap
	for i := 1; i < len(a.bins); i++ {
		b := &a.bins[i]
		switch compareRatio(b.balls, b.cap, bb, bc) {
		case 1:
			best = append(best[:0], i)
			bb, bc = b.balls, b.cap
		case 0:
			best = append(best, i)
		}
	}
	return best
}

// LoadVector returns the vector of bin loads in bin order.
func (a *Array) LoadVector() []float64 {
	return a.LoadVectorInto(nil)
}

// LoadVectorInto fills dst with the bin loads in bin order, growing it
// if needed, and returns the filled slice. It lets hot loops reuse one
// buffer across calls instead of allocating per call.
func (a *Array) LoadVectorInto(dst []float64) []float64 {
	if cap(dst) < len(a.bins) {
		dst = make([]float64, len(a.bins))
	}
	dst = dst[:len(a.bins)]
	for i := range dst {
		dst[i] = a.Load(i)
	}
	return dst
}

// Shard returns a view of bins [lo, hi): it shares the parent's
// underlying bin storage — mutations through the view are visible to
// the parent — while carrying its own capacity and ball totals computed
// over the range. Disjoint shard views may be mutated concurrently
// (none of the parent's methods may run while they are), which is the
// substrate of the sharded single-run engine: each worker owns one
// contiguous slice of one huge array. The parent's cached ball total
// does not see balls added through views; call Recount on the parent
// after the views quiesce.
func (a *Array) Shard(lo, hi int) (*Array, error) {
	if lo < 0 || hi > len(a.bins) || lo >= hi {
		return nil, fmt.Errorf("bins: shard [%d,%d) of %d bins", lo, hi, len(a.bins))
	}
	s := &Array{bins: a.bins[lo:hi:hi]}
	for i := range s.bins {
		s.c += s.bins[i].cap
		s.m += s.bins[i].balls
	}
	return s, nil
}

// Recount rebuilds the cached ball total from the per-bin counts after
// out-of-band mutation through shard views.
func (a *Array) Recount() {
	var m int64
	for i := range a.bins {
		m += a.bins[i].balls
	}
	a.m = m
}

// Reset removes all balls.
func (a *Array) Reset() {
	for i := range a.bins {
		a.bins[i].balls = 0
	}
	a.m = 0
}

// Clone returns a deep copy of the array (capacities and ball counts).
func (a *Array) Clone() *Array {
	b := &Array{
		bins: make([]bin, len(a.bins)),
		c:    a.c,
		m:    a.m,
	}
	copy(b.bins, a.bins)
	return b
}

// BigThreshold returns the capacity above which a bin counts as "big" per
// the paper's definition: capacity >= r·ln(n).
func (a *Array) BigThreshold(r float64) float64 {
	return r * math.Log(float64(a.N()))
}

// IsBig reports whether bin i is big for the given constant r.
func (a *Array) IsBig(i int, r float64) bool {
	return float64(a.bins[i].cap) >= a.BigThreshold(r)
}

// SmallCapacity returns C_s, the total capacity of small bins (capacity
// below r·ln n).
func (a *Array) SmallCapacity(r float64) int64 {
	threshold := a.BigThreshold(r)
	var cs int64
	for i := range a.bins {
		if c := a.bins[i].cap; float64(c) < threshold {
			cs += c
		}
	}
	return cs
}

// capacityClassScanLimit is the class count up to which CapacityClasses
// dedupes by linear containment scan. Class sets are tiny (≤ 8 in the
// paper), and a handful of predictable compares per bin is far cheaper
// than hashing every one of n capacities; past the limit a map takes
// over so adversarial inputs stay O(n).
const capacityClassScanLimit = 32

// CapacityClasses returns the sorted distinct capacity values present.
func (a *Array) CapacityClasses() []int64 {
	var classes []int64
	var seen map[int64]bool
	last := int64(-1) // capacities often come in runs; skip repeats for free
	for i := range a.bins {
		c := a.bins[i].cap
		if c == last {
			continue
		}
		last = c
		if seen != nil {
			if !seen[c] {
				seen[c] = true
				classes = append(classes, c)
			}
			continue
		}
		known := false
		for _, k := range classes {
			if k == c {
				known = true
				break
			}
		}
		if known {
			continue
		}
		classes = append(classes, c)
		if len(classes) > capacityClassScanLimit {
			seen = make(map[int64]bool, 2*len(classes))
			for _, k := range classes {
				seen[k] = true
			}
		}
	}
	slices.Sort(classes)
	return classes
}

// CountClass returns how many bins have exactly capacity c.
func (a *Array) CountClass(c int64) int {
	n := 0
	for i := range a.bins {
		if a.bins[i].cap == c {
			n++
		}
	}
	return n
}

// MaxLoadInClassC reports whether any bin of capacity class c attains the
// global maximum load (exact tie handling). This powers Figures 7 and 9.
func (a *Array) MaxLoadInClassC(c int64) bool {
	for _, i := range a.ArgMaxLoad() {
		if a.bins[i].cap == c {
			return true
		}
	}
	return false
}
