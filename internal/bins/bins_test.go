package bins

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New(nil) accepted")
	}
	if _, err := New([]int64{}); err == nil {
		t.Error("New(empty) accepted")
	}
	if _, err := New([]int64{1, 0, 2}); err == nil {
		t.Error("New with zero capacity accepted")
	}
	if _, err := New([]int64{-3}); err == nil {
		t.Error("New with negative capacity accepted")
	}
	a, err := New([]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 3 || a.TotalCapacity() != 6 {
		t.Fatalf("N=%d C=%d", a.N(), a.TotalCapacity())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad input did not panic")
		}
	}()
	MustNew([]int64{0})
}

func TestAddAndLoads(t *testing.T) {
	a := MustNew([]int64{1, 4})
	a.Add(0)
	a.Add(1)
	a.Add(1)
	if a.TotalBalls() != 3 {
		t.Fatalf("TotalBalls = %d", a.TotalBalls())
	}
	if got := a.Load(0); got != 1 {
		t.Fatalf("Load(0) = %v", got)
	}
	if got := a.Load(1); got != 0.5 {
		t.Fatalf("Load(1) = %v", got)
	}
	if got := a.AverageLoad(); got != 3.0/5.0 {
		t.Fatalf("AverageLoad = %v", got)
	}
}

func TestRemove(t *testing.T) {
	a := MustNew([]int64{1, 2})
	a.Add(0)
	a.Add(1)
	a.Remove(0)
	if a.Balls(0) != 0 || a.TotalBalls() != 1 {
		t.Fatalf("after Remove: balls(0)=%d total=%d", a.Balls(0), a.TotalBalls())
	}
	a.Remove(1)
	if a.TotalBalls() != 0 {
		t.Fatalf("total = %d", a.TotalBalls())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Remove from empty bin did not panic")
		}
	}()
	a.Remove(0)
}

func TestExactComparisons(t *testing.T) {
	// bin 0: 1 ball / cap 3 = 1/3; bin 1: 2 balls / cap 6 = 1/3 → equal.
	a := MustNew([]int64{3, 6})
	a.Add(0)
	a.Add(1)
	a.Add(1)
	if got := a.CompareLoads(0, 1); got != 0 {
		t.Fatalf("CompareLoads equal ratios = %d", got)
	}
	// post loads: 2/3 vs 3/6=1/2 → bin 0 higher.
	if got := a.ComparePostLoads(0, 1); got != 1 {
		t.Fatalf("ComparePostLoads = %d, want 1", got)
	}
	if got := a.ComparePostLoads(1, 0); got != -1 {
		t.Fatalf("ComparePostLoads reversed = %d, want -1", got)
	}
}

func TestMaxLoadAndArgMax(t *testing.T) {
	a := MustNew([]int64{2, 4, 1})
	// loads: 1/2, 2/4, 0 → max is 1/2 attained by bins 0 and 1.
	a.Add(0)
	a.Add(1)
	a.Add(1)
	if got := a.MaxLoad(); got != 0.5 {
		t.Fatalf("MaxLoad = %v", got)
	}
	am := a.ArgMaxLoad()
	if len(am) != 2 || am[0] != 0 || am[1] != 1 {
		t.Fatalf("ArgMaxLoad = %v, want [0 1]", am)
	}
}

func TestMaxLoadInClassC(t *testing.T) {
	a := MustNew([]int64{1, 1, 10, 10})
	a.Add(0) // load 1 in a size-1 bin; size-10 bins empty
	if !a.MaxLoadInClassC(1) {
		t.Error("size-1 class should hold max")
	}
	if a.MaxLoadInClassC(10) {
		t.Error("size-10 class should not hold max")
	}
	// Tie: 10 balls in a size-10 bin also gives load 1.
	for i := 0; i < 10; i++ {
		a.Add(2)
	}
	if !a.MaxLoadInClassC(1) || !a.MaxLoadInClassC(10) {
		t.Error("both classes should share max after tie")
	}
}

func TestResetAndClone(t *testing.T) {
	a := MustNew([]int64{1, 2})
	a.Add(0)
	a.Add(1)
	b := a.Clone()
	a.Reset()
	if a.TotalBalls() != 0 || a.Balls(0) != 0 || a.Balls(1) != 0 {
		t.Fatal("Reset did not clear balls")
	}
	if b.TotalBalls() != 2 || b.Balls(0) != 1 || b.Balls(1) != 1 {
		t.Fatal("Clone shares state with original")
	}
	if b.TotalCapacity() != 3 {
		t.Fatalf("Clone capacity %d", b.TotalCapacity())
	}
}

func TestBigSmallClassification(t *testing.T) {
	// n = 100 bins; ln(100) ≈ 4.6. With r = 1, capacity 5 is big, 4 small.
	caps := make([]int64, 100)
	for i := range caps {
		if i < 50 {
			caps[i] = 4
		} else {
			caps[i] = 5
		}
	}
	a := MustNew(caps)
	if a.IsBig(0, 1) {
		t.Error("capacity-4 bin classified big at r=1, n=100")
	}
	if !a.IsBig(99, 1) {
		t.Error("capacity-5 bin classified small at r=1, n=100")
	}
	if got := a.SmallCapacity(1); got != 200 {
		t.Fatalf("SmallCapacity = %d, want 200", got)
	}
}

func TestCapacityClasses(t *testing.T) {
	a := MustNew([]int64{8, 1, 4, 1, 8, 2})
	classes := a.CapacityClasses()
	want := []int64{1, 2, 4, 8}
	if len(classes) != len(want) {
		t.Fatalf("classes = %v", classes)
	}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("classes = %v, want %v", classes, want)
		}
	}
	if got := a.CountClass(1); got != 2 {
		t.Fatalf("CountClass(1) = %d", got)
	}
	if got := a.CountClass(3); got != 0 {
		t.Fatalf("CountClass(3) = %d", got)
	}
}

func TestUniformBuilder(t *testing.T) {
	a, err := Uniform(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 32 || a.TotalCapacity() != 128 {
		t.Fatalf("N=%d C=%d", a.N(), a.TotalCapacity())
	}
	if _, err := Uniform(0, 1); err == nil {
		t.Error("Uniform(0, 1) accepted")
	}
	if _, err := Uniform(5, 0); err == nil {
		t.Error("Uniform(5, 0) accepted")
	}
}

func TestTwoClassBuilder(t *testing.T) {
	a, err := TwoClass(3, 1, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 5 || a.TotalCapacity() != 23 {
		t.Fatalf("N=%d C=%d", a.N(), a.TotalCapacity())
	}
	for i := 0; i < 3; i++ {
		if a.Capacity(i) != 1 {
			t.Fatalf("bin %d capacity %d", i, a.Capacity(i))
		}
	}
	for i := 3; i < 5; i++ {
		if a.Capacity(i) != 10 {
			t.Fatalf("bin %d capacity %d", i, a.Capacity(i))
		}
	}
	// zero smalls or zero larges are fine
	if _, err := TwoClass(0, 1, 4, 2); err != nil {
		t.Errorf("TwoClass(0,...) rejected: %v", err)
	}
	if _, err := TwoClass(4, 1, 0, 2); err != nil {
		t.Errorf("TwoClass(...,0) rejected: %v", err)
	}
	if _, err := TwoClass(0, 1, 0, 2); err == nil {
		t.Error("empty TwoClass accepted")
	}
}

func TestRandomBinomialBuilder(t *testing.T) {
	r := xrand.New(1)
	a, err := RandomBinomial(20000, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	// capacities in [1, 8]; expected mean 4
	for i := 0; i < a.N(); i++ {
		c := a.Capacity(i)
		if c < 1 || c > 8 {
			t.Fatalf("capacity %d out of [1,8]", c)
		}
	}
	mean := float64(a.TotalCapacity()) / float64(a.N())
	if math.Abs(mean-4) > 0.05 {
		t.Fatalf("mean capacity %.3f, want ~4", mean)
	}
	if _, err := RandomBinomial(10, 0.5, r); err == nil {
		t.Error("c < 1 accepted")
	}
	if _, err := RandomBinomial(10, 9, r); err == nil {
		t.Error("c > 8 accepted")
	}
	if _, err := RandomBinomial(0, 2, r); err == nil {
		t.Error("n = 0 accepted")
	}
}

func TestRandomBinomialDegenerate(t *testing.T) {
	r := xrand.New(2)
	a, err := RandomBinomial(100, 1, r) // p = 0 → all capacity 1
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCapacity() != 100 {
		t.Fatalf("C = %d, want 100", a.TotalCapacity())
	}
	a, err = RandomBinomial(100, 8, r) // p = 1 → all capacity 8
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCapacity() != 800 {
		t.Fatalf("C = %d, want 800", a.TotalCapacity())
	}
}

func TestRandomBinomialK(t *testing.T) {
	r := xrand.New(5)
	a, err := RandomBinomialK(20000, 10, 18, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.N(); i++ {
		c := a.Capacity(i)
		if c < 1 || c > 19 {
			t.Fatalf("capacity %d out of [1,19]", c)
		}
	}
	mean := float64(a.TotalCapacity()) / float64(a.N())
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("mean capacity %.3f, want ~10", mean)
	}
	// K = 7 reduces to the paper's generator bounds
	b, err := RandomBinomialK(1000, 4, 7, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.N(); i++ {
		if c := b.Capacity(i); c < 1 || c > 8 {
			t.Fatalf("K=7 capacity %d out of [1,8]", c)
		}
	}
	if _, err := RandomBinomialK(10, 10, 7, r); err == nil {
		t.Error("c > K+1 accepted")
	}
	if _, err := RandomBinomialK(10, 2, 0, r); err == nil {
		t.Error("K = 0 accepted")
	}
}

func TestGenerationsBuilder(t *testing.T) {
	a, err := Generations([]Batch{{2, 2}, {20, 3}, {20, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 42 {
		t.Fatalf("N = %d", a.N())
	}
	if a.TotalCapacity() != 2*2+20*3+20*4 {
		t.Fatalf("C = %d", a.TotalCapacity())
	}
	if _, err := Generations([]Batch{{-1, 2}}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := Generations([]Batch{{3, 0}}); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestLinearBatches(t *testing.T) {
	// Start with 2 disks of capacity 2, grow by 20 per batch, a = 4.
	batches := LinearBatches(2, 20, 62, 2, 4)
	if len(batches) != 4 {
		t.Fatalf("batches = %v", batches)
	}
	wantCounts := []int{2, 20, 20, 20}
	wantCaps := []int64{2, 6, 10, 14}
	total := 0
	for i, b := range batches {
		if b.Count != wantCounts[i] || b.Capacity != wantCaps[i] {
			t.Fatalf("batch %d = %+v, want {%d %d}", i, b, wantCounts[i], wantCaps[i])
		}
		total += b.Count
	}
	if total != 62 {
		t.Fatalf("total bins %d", total)
	}
}

func TestLinearBatchesTruncation(t *testing.T) {
	batches := LinearBatches(2, 20, 30, 2, 1)
	total := 0
	for _, b := range batches {
		total += b.Count
	}
	if total != 30 {
		t.Fatalf("total bins %d, want 30 (truncated final batch)", total)
	}
	if last := batches[len(batches)-1]; last.Count != 8 {
		t.Fatalf("final batch %+v, want count 8", last)
	}
}

func TestExponentialBatches(t *testing.T) {
	batches := ExponentialBatches(2, 20, 62, 2, 1.4)
	wantCaps := []int64{2, 3, 4, 5} // round(2·1.4^i) = 2, 2.8, 3.92, 5.49
	for i, b := range batches {
		if b.Capacity != wantCaps[i] {
			t.Fatalf("batch %d capacity %d, want %d", i, b.Capacity, wantCaps[i])
		}
	}
	// Slow factor stays at the start capacity for many generations.
	slow := ExponentialBatches(2, 20, 202, 2, 1.005)
	for i, b := range slow {
		if i < 10 && b.Capacity != 2 {
			t.Fatalf("b=1.005 batch %d capacity %d, want 2", i, b.Capacity)
		}
	}
}

func TestParseSpec(t *testing.T) {
	a, err := ParseSpec("3x1+2x10")
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 5 || a.TotalCapacity() != 23 {
		t.Fatalf("N=%d C=%d", a.N(), a.TotalCapacity())
	}
	for _, bad := range []string{"", "x", "3x", "x5", "0x4", "3x0", "-1x2", "3x1+zz"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	// whitespace tolerated
	if _, err := ParseSpec(" 2x3 + 1x4 "); err != nil {
		t.Errorf("spec with spaces rejected: %v", err)
	}
}

// Property: CompareLoads is antisymmetric and consistent with float loads
// when floats are exact.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(m0, m1 uint16, c0, c1 uint8) bool {
		a := MustNew([]int64{int64(c0%50) + 1, int64(c1%50) + 1})
		for i := 0; i < int(m0%200); i++ {
			a.Add(0)
		}
		for i := 0; i < int(m1%200); i++ {
			a.Add(1)
		}
		return a.CompareLoads(0, 1) == -a.CompareLoads(1, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ArgMaxLoad returns a non-empty set whose members all compare
// equal and dominate every other bin.
func TestQuickArgMaxConsistent(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		r := xrand.New(seed)
		caps := make([]int64, n)
		for i := range caps {
			caps[i] = int64(r.Intn(10)) + 1
		}
		a := MustNew(caps)
		balls := r.Intn(100)
		for i := 0; i < balls; i++ {
			a.Add(r.Intn(n))
		}
		am := a.ArgMaxLoad()
		if len(am) == 0 {
			return false
		}
		inMax := make(map[int]bool, len(am))
		for _, i := range am {
			inMax[i] = true
		}
		for _, i := range am {
			for j := 0; j < n; j++ {
				cmp := a.CompareLoads(i, j)
				if cmp < 0 {
					return false // some bin beats an "argmax"
				}
				if cmp == 0 && !inMax[j] {
					return false // tie missing from the argmax set
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: total balls always equals the sum of per-bin balls.
func TestQuickBallConservation(t *testing.T) {
	f := func(seed uint64, adds uint16) bool {
		r := xrand.New(seed)
		a := MustNew([]int64{1, 2, 3, 4})
		for i := 0; i < int(adds%500); i++ {
			a.Add(r.Intn(4))
		}
		var sum int64
		for i := 0; i < a.N(); i++ {
			sum += a.Balls(i)
		}
		return sum == a.TotalBalls()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShardViews(t *testing.T) {
	a := MustNew([]int64{1, 2, 3, 4, 5, 6})
	if _, err := a.Shard(-1, 3); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := a.Shard(2, 7); err == nil {
		t.Error("hi > n accepted")
	}
	if _, err := a.Shard(3, 3); err == nil {
		t.Error("empty shard accepted")
	}
	s1, err := a.Shard(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.Shard(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s1.N() != 3 || s2.N() != 3 {
		t.Fatalf("shard sizes %d, %d", s1.N(), s2.N())
	}
	if s1.TotalCapacity() != 6 || s2.TotalCapacity() != 15 {
		t.Fatalf("shard capacities %d, %d", s1.TotalCapacity(), s2.TotalCapacity())
	}
	// mutations through views are visible to the parent
	s1.Add(0)
	s2.Add(2) // parent bin 5
	if a.Balls(0) != 1 || a.Balls(5) != 1 {
		t.Fatal("view mutation not visible in parent")
	}
	if s1.TotalBalls() != 1 || s2.TotalBalls() != 1 {
		t.Fatal("view ball totals wrong")
	}
	// parent total is stale until Recount
	if a.TotalBalls() != 0 {
		t.Fatal("parent total unexpectedly live")
	}
	a.Recount()
	if a.TotalBalls() != 2 {
		t.Fatalf("Recount gave %d, want 2", a.TotalBalls())
	}
	// a view built over preexisting balls picks them up
	s3, err := a.Shard(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s3.TotalBalls() != 2 {
		t.Fatalf("full view sees %d balls, want 2", s3.TotalBalls())
	}
	// a view must not be able to grow into the parent's tail via append
	// semantics: loads and comparisons stay in range
	if got := s1.MaxLoad(); got != 1 {
		t.Fatalf("shard max load %v", got)
	}
}

// TestRemoveBalls: bulk removal matches k single removals, keeps the
// total consistent, and panics on negative or overdrawn counts.
func TestRemoveBalls(t *testing.T) {
	a, err := New([]int64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	a.AddBalls(0, 5)
	a.AddBalls(1, 4)
	a.RemoveBalls(0, 3)
	if a.Balls(0) != 2 || a.TotalBalls() != 6 {
		t.Fatalf("after RemoveBalls(0,3): balls %d total %d", a.Balls(0), a.TotalBalls())
	}
	a.RemoveBalls(1, 0)
	if a.Balls(1) != 4 {
		t.Fatalf("RemoveBalls(1,0) changed the bin: %d", a.Balls(1))
	}
	for _, k := range []int64{-1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RemoveBalls(0,%d) did not panic", k)
				}
			}()
			a.RemoveBalls(0, k)
		}()
	}
}
