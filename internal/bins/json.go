package bins

import (
	"encoding/json"
	"fmt"
)

// arrayJSON is the serialised form of an Array: the full game state is
// the capacity vector plus the ball counts. Used to checkpoint long
// (heavily loaded) runs and to ship states between tools.
type arrayJSON struct {
	Capacities []int64 `json:"capacities"`
	Balls      []int64 `json:"balls"`
}

// MarshalJSON implements json.Marshaler.
func (a *Array) MarshalJSON() ([]byte, error) {
	balls := make([]int64, len(a.bins))
	for i := range a.bins {
		balls[i] = a.bins[i].balls
	}
	return json.Marshal(arrayJSON{
		Capacities: a.Capacities(),
		Balls:      balls,
	})
}

// UnmarshalJSON implements json.Unmarshaler, validating the state: one
// ball count per bin, capacities >= 1, counts >= 0.
func (a *Array) UnmarshalJSON(data []byte) error {
	var aj arrayJSON
	if err := json.Unmarshal(data, &aj); err != nil {
		return err
	}
	restored, err := New(aj.Capacities)
	if err != nil {
		return err
	}
	if len(aj.Balls) != len(aj.Capacities) {
		return fmt.Errorf("bins: %d ball counts for %d bins", len(aj.Balls), len(aj.Capacities))
	}
	for i, b := range aj.Balls {
		if b < 0 {
			return fmt.Errorf("bins: negative ball count %d in bin %d", b, i)
		}
		restored.bins[i].balls = b
		restored.m += b
	}
	*a = *restored
	return nil
}

var (
	_ json.Marshaler   = (*Array)(nil)
	_ json.Unmarshaler = (*Array)(nil)
)
