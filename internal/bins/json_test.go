package bins

import (
	"encoding/json"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	a := MustNew([]int64{1, 2, 4})
	a.Add(0)
	a.Add(2)
	a.Add(2)
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var b Array
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.N() != 3 || b.TotalCapacity() != 7 || b.TotalBalls() != 3 {
		t.Fatalf("restored N=%d C=%d m=%d", b.N(), b.TotalCapacity(), b.TotalBalls())
	}
	for i := 0; i < 3; i++ {
		if b.Balls(i) != a.Balls(i) || b.Capacity(i) != a.Capacity(i) {
			t.Fatalf("bin %d mismatch after round trip", i)
		}
	}
	// exact comparisons still work on the restored array
	if b.CompareLoads(0, 2) != a.CompareLoads(0, 2) {
		t.Fatal("comparisons differ after round trip")
	}
}

func TestJSONUnmarshalValidation(t *testing.T) {
	cases := []string{
		`{"capacities":[],"balls":[]}`,     // empty
		`{"capacities":[0],"balls":[0]}`,   // bad capacity
		`{"capacities":[1,2],"balls":[1]}`, // length mismatch
		`{"capacities":[1],"balls":[-1]}`,  // negative count
		`{"capacities":"x"}`,               // wrong type
		`not json`,                         // not JSON
	}
	for _, c := range cases {
		var a Array
		if err := json.Unmarshal([]byte(c), &a); err == nil {
			t.Errorf("Unmarshal(%q) accepted", c)
		}
	}
}

func TestJSONEmptyBallsDefaultsToZero(t *testing.T) {
	var a Array
	// balls omitted entirely: must fail the length check (0 != 2)...
	// unless capacities are also empty — both cases must error or yield
	// a consistent state. With capacities present and balls missing we
	// reject.
	err := json.Unmarshal([]byte(`{"capacities":[1,2]}`), &a)
	if err == nil {
		t.Error("missing balls accepted")
	}
}
