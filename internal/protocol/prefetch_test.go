package protocol

import (
	"testing"

	"repro/internal/bins"
	"repro/internal/xrand"
)

// TestPlaceBatchPrefetchMatchesPlace extends the batch-equivalence
// contract to the software-pipelined decision loops: on an array
// large enough to engage the prefetch gate (>= prefetchMinBins bins),
// PlaceBatch must still produce the exact final state and RNG
// position of sequential Place calls — prefetched lines warm the
// cache, never a decision.
func TestPlaceBatchPrefetchMatchesPlace(t *testing.T) {
	const n = prefetchMinBins
	caps := make([]int64, n)
	w := make([]float64, n)
	for i := range caps {
		caps[i] = 1 + int64(i%10)
		w[i] = float64(caps[i])
	}
	for _, d := range []int{3, 4} {
		one := bins.MustNew(caps)
		pOne, err := NewGreedy(one, w, d)
		if err != nil {
			t.Fatal(err)
		}
		batch := bins.MustNew(caps)
		pBatch, err := NewGreedy(batch, w, d)
		if err != nil {
			t.Fatal(err)
		}
		if !pBatch.pf {
			t.Fatalf("d=%d: prefetch gate not engaged at n = %d", d, n)
		}
		const balls = 3 * ballBatch / 2 // spans a full block and a partial one
		rOne := xrand.New(goldenSeed)
		for i := 0; i < balls; i++ {
			pOne.Place(one, rOne)
		}
		rBatch := xrand.New(goldenSeed)
		pBatch.PlaceBatch(batch, rBatch, balls)
		if *rOne != *rBatch {
			t.Fatalf("d=%d: RNG states diverge under prefetch", d)
		}
		for i := 0; i < n; i++ {
			if one.Balls(i) != batch.Balls(i) {
				t.Fatalf("d=%d: bin %d has %d balls per-ball vs %d batched",
					d, i, one.Balls(i), batch.Balls(i))
			}
		}
	}
}
