package protocol

// State-by-state validation of the Greedy implementation against the
// exact one-ball distribution computed by brute-force enumeration in
// internal/exact: for random small configurations and random preloaded
// states, the empirical frequency with which each bin receives the next
// ball must match the enumerated probabilities.

import (
	"math"
	"testing"

	"repro/internal/bins"
	"repro/internal/exact"
	"repro/internal/xrand"
)

func TestGreedyOneBallDistributionMatchesExact(t *testing.T) {
	const trials = 60000
	rng := xrand.New(20240611)
	for config := 0; config < 8; config++ {
		n := rng.Intn(4) + 2 // 2..5 bins
		caps := make([]int64, n)
		for i := range caps {
			caps[i] = int64(rng.Intn(5)) + 1
		}
		arr := bins.MustNew(caps)
		preload := rng.Intn(12)
		for i := 0; i < preload; i++ {
			arr.Add(rng.Intn(n))
		}
		balls := make([]int64, n)
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			balls[i] = arr.Balls(i)
			weights[i] = float64(caps[i])
		}
		d := rng.Intn(2) + 2 // d in {2, 3}

		want, err := exact.OneBallDistribution(caps, balls, weights, d)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGreedy(arr, weights, d)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]float64, n)
		for i := 0; i < trials; i++ {
			b := arr.Clone()
			counts[g.Place(b, rng)]++
		}
		for i := 0; i < n; i++ {
			got := counts[i] / trials
			// binomial std dev ≈ sqrt(p(1-p)/trials) ≤ 0.002; allow 5 sigma
			if math.Abs(got-want[i]) > 0.011 {
				t.Fatalf("config %d (caps=%v balls=%v d=%d): bin %d frequency %.4f, exact %.4f",
					config, caps, balls, d, i, got, want[i])
			}
		}
	}
}

func TestStandardOneBallDistributionMatchesExact(t *testing.T) {
	const trials = 60000
	rng := xrand.New(777)
	for config := 0; config < 6; config++ {
		n := rng.Intn(3) + 2
		caps := make([]int64, n)
		for i := range caps {
			caps[i] = int64(rng.Intn(4)) + 1
		}
		arr := bins.MustNew(caps)
		for i := 0; i < rng.Intn(10); i++ {
			arr.Add(rng.Intn(n))
		}
		balls := make([]int64, n)
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			balls[i] = arr.Balls(i)
			weights[i] = float64(caps[i])
		}
		const d = 2
		want, err := exact.OneBallDistributionStandard(caps, balls, weights, d)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewStandard(arr, weights, d)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]float64, n)
		for i := 0; i < trials; i++ {
			b := arr.Clone()
			counts[s.Place(b, rng)]++
		}
		for i := 0; i < n; i++ {
			got := counts[i] / trials
			if math.Abs(got-want[i]) > 0.011 {
				t.Fatalf("config %d (caps=%v balls=%v): bin %d frequency %.4f, exact %.4f",
					config, caps, balls, i, got, want[i])
			}
		}
	}
}

// TestGreedyTieFreqWorkedExample is the fully hand-computed case: bins
// (cap 1, empty) and (cap 4, 3 balls), uniform weights, d = 2.
// Tuples: (0,0) → bin 0; all other three → tie on post-load 1, capacity
// filter keeps bin 1. Exact distribution: bin 0 = 1/4, bin 1 = 3/4.
func TestGreedyTieFreqWorkedExample(t *testing.T) {
	caps := []int64{1, 4}
	balls := []int64{0, 3}
	want, err := exact.OneBallDistribution(caps, balls, []float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want[0]-0.25) > 1e-12 || math.Abs(want[1]-0.75) > 1e-12 {
		t.Fatalf("exact distribution %v, want [0.25 0.75]", want)
	}
	arr := bins.MustNew(caps)
	arr.Add(1)
	arr.Add(1)
	arr.Add(1)
	g, err := NewGreedy(arr, []float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	const trials = 100000
	wins0 := 0
	for i := 0; i < trials; i++ {
		b := arr.Clone()
		if g.Place(b, rng) == 0 {
			wins0++
		}
	}
	got := float64(wins0) / trials
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("bin 0 frequency %.4f, want 0.25", got)
	}
}
