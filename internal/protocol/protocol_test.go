package protocol

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bins"
	"repro/internal/dist"
	"repro/internal/xrand"
)

func proportionalWeights(t *testing.T, a *bins.Array) []float64 {
	t.Helper()
	w, err := dist.Proportional{}.Weights(a)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGreedyValidation(t *testing.T) {
	a := bins.MustNew([]int64{1, 2})
	w := proportionalWeights(t, a)
	if _, err := NewGreedy(nil, w, 2); err == nil {
		t.Error("nil array accepted")
	}
	if _, err := NewGreedy(a, []float64{1}, 2); err == nil {
		t.Error("weight length mismatch accepted")
	}
	if _, err := NewGreedy(a, w, 0); err == nil {
		t.Error("d = 0 accepted")
	}
	if _, err := NewGreedy(a, w, maxChoices+1); err == nil {
		t.Error("huge d accepted")
	}
	if _, err := NewGreedy(a, []float64{0, 0}, 2); err == nil {
		t.Error("all-zero weights accepted")
	}
}

// TestGreedyPicksLowerPostLoad: with two bins where one is clearly less
// loaded, every ball that sees both must go to the lighter one.
func TestGreedyPicksLowerPostLoad(t *testing.T) {
	a := bins.MustNew([]int64{1, 1})
	// preload bin 0 with 5 balls
	for i := 0; i < 5; i++ {
		a.Add(0)
	}
	g, err := NewGreedy(a, []float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(1)
	// with d=2 over 2 bins, most draws see both; bin 1 must catch up and
	// the final spread must be tiny.
	for i := 0; i < 100; i++ {
		g.Place(a, r)
	}
	if d := a.Balls(0) - a.Balls(1); d < -2 || d > 7 {
		t.Fatalf("counts %d vs %d, greedy failed to balance", a.Balls(0), a.Balls(1))
	}
	if a.TotalBalls() != 105 {
		t.Fatalf("TotalBalls = %d", a.TotalBalls())
	}
}

// TestGreedyCapacityTieBreak: Algorithm 1 steps 4-5 — when post loads tie,
// the larger-capacity bin must receive the ball. Construct an exact tie:
// bin 0 (cap 1, 0 balls) post load 1; bin 1 (cap 4, 3 balls) post load 1.
func TestGreedyCapacityTieBreak(t *testing.T) {
	a := bins.MustNew([]int64{1, 4})
	for i := 0; i < 3; i++ {
		a.Add(1)
	}
	g, err := NewGreedy(a, []float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(7)
	// Place one ball repeatedly from the same initial state; whenever the
	// draw includes both bins, the ball must land in bin 1 (capacity 4).
	sawBoth := 0
	for trial := 0; trial < 200; trial++ {
		b := a.Clone()
		got := g.Place(b, r)
		if b.Balls(0) == 0 && got == 1 {
			// ambiguous: single-bin draw of bin 1 also lands there; detect
			// "saw both" by re-checking: if bin 0 was drawn it would have
			// tied and lost, so we can't distinguish. Instead assert the
			// negative: bin 0 must never receive the ball unless bin 1 was
			// not drawn at all — which happens with probability 1/4 per
			// trial. Then post load of bin 0 would be 1 and of bin 1 (not
			// drawn) irrelevant.
			sawBoth++
		}
		if got == 0 {
			// bin 0 can only win when the draw was {0} alone (prob 1/4);
			// then Bopt = {0}. That is legal. But if bin 1 was in the draw
			// the capacity tie-break forbids bin 0. We can't observe the
			// draw, so just count: bin 0 wins should be ~25%.
			continue
		}
	}
	// statistical assertion: bin 0 should win only ~1/4 of trials (when
	// it is the only drawn bin: draw = {0,0}).
	wins0 := 0
	const trials = 4000
	for trial := 0; trial < trials; trial++ {
		b := a.Clone()
		if g.Place(b, r) == 0 {
			wins0++
		}
	}
	frac := float64(wins0) / trials
	if math.Abs(frac-0.25) > 0.03 {
		t.Fatalf("bin 0 won %.3f of tie trials, want ~0.25 (only when drawn alone)", frac)
	}
}

// TestGreedyUniformCapacityMatchesStandardDistribution: with all
// capacities equal, Algorithm 1 reduces to the standard d-choice game
// (§4.1). Verify the resulting max-load distribution matches Standard's
// statistically.
func TestGreedyReducesToStandardOnUniformBins(t *testing.T) {
	const n, m, reps = 100, 100, 300
	var accG, accS float64
	for rep := 0; rep < reps; rep++ {
		aG := bins.MustNew(make64(n, 1))
		aS := bins.MustNew(make64(n, 1))
		wG, _ := dist.Uniform{}.Weights(aG)
		g, err := NewGreedy(aG, wG, 2)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewStandard(aS, wG, 2)
		if err != nil {
			t.Fatal(err)
		}
		rg := xrand.NewStream(400, uint64(rep))
		rs := xrand.NewStream(500, uint64(rep))
		for i := 0; i < m; i++ {
			g.Place(aG, rg)
			s.Place(aS, rs)
		}
		accG += aG.MaxLoad()
		accS += aS.MaxLoad()
	}
	meanG, meanS := accG/reps, accS/reps
	if math.Abs(meanG-meanS) > 0.15 {
		t.Fatalf("greedy mean max %.3f vs standard %.3f on uniform bins", meanG, meanS)
	}
}

func make64(n int, c int64) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = c
	}
	return v
}

func TestSinglePlacesEveryBall(t *testing.T) {
	a := bins.MustNew([]int64{1, 3})
	s, err := NewSingle(a, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	const m = 40000
	for i := 0; i < m; i++ {
		s.Place(a, r)
	}
	if a.TotalBalls() != m {
		t.Fatalf("TotalBalls = %d", a.TotalBalls())
	}
	// proportional weights: bin 1 gets ~3/4 of balls
	frac := float64(a.Balls(1)) / m
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("bin 1 got fraction %.3f, want ~0.75", frac)
	}
}

func TestSingleBeatsNothing(t *testing.T) {
	// d=2 greedy should produce a max load no larger than single choice
	// on the same workload (statistically).
	const n, m, reps = 50, 200, 200
	var accG, accS float64
	for rep := 0; rep < reps; rep++ {
		aG := bins.MustNew(make64(n, 1))
		aS := bins.MustNew(make64(n, 1))
		w, _ := dist.Uniform{}.Weights(aG)
		g, _ := NewGreedy(aG, w, 2)
		s, _ := NewSingle(aS, w)
		rg := xrand.NewStream(600, uint64(rep))
		rs := xrand.NewStream(700, uint64(rep))
		for i := 0; i < m; i++ {
			g.Place(aG, rg)
			s.Place(aS, rs)
		}
		accG += aG.MaxLoad()
		accS += aS.MaxLoad()
	}
	if accG >= accS {
		t.Fatalf("greedy(2) mean max %.3f not better than single %.3f", accG/reps, accS/reps)
	}
}

func TestGoLeft(t *testing.T) {
	a := bins.MustNew(make64(64, 1))
	w, _ := dist.Uniform{}.Weights(a)
	g, err := NewGoLeft(a, w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() == "" {
		t.Error("empty name")
	}
	r := xrand.New(9)
	const m = 6400
	for i := 0; i < m; i++ {
		g.Place(a, r)
	}
	if a.TotalBalls() != m {
		t.Fatalf("TotalBalls = %d", a.TotalBalls())
	}
	// max ball count should be close to m/n for a 2-choice scheme
	if a.MaxLoad() > float64(m)/64+8 {
		t.Fatalf("go-left max load %v too high", a.MaxLoad())
	}
	if _, err := NewGoLeft(bins.MustNew([]int64{1}), []float64{1}, 2); err == nil {
		t.Error("d > n accepted")
	}
	// group without positive weight must be rejected
	bad := make([]float64, 64)
	for i := 32; i < 64; i++ {
		bad[i] = 1
	}
	if _, err := NewGoLeft(a, bad, 2); err == nil {
		t.Error("zero-weight group accepted")
	}
}

func TestOnePlusBeta(t *testing.T) {
	a := bins.MustNew(make64(10, 1))
	w, _ := dist.Uniform{}.Weights(a)
	if _, err := NewOnePlusBeta(a, w, -0.1); err == nil {
		t.Error("negative beta accepted")
	}
	if _, err := NewOnePlusBeta(a, w, 1.1); err == nil {
		t.Error("beta > 1 accepted")
	}
	p, err := NewOnePlusBeta(a, w, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(11)
	for i := 0; i < 100; i++ {
		p.Place(a, r)
	}
	if a.TotalBalls() != 100 {
		t.Fatalf("TotalBalls = %d", a.TotalBalls())
	}
	// beta = 0 must behave exactly like single choice with same stream
	p0, _ := NewOnePlusBeta(a, w, 0)
	s0, _ := NewSingle(a, w)
	b1, b2 := a.Clone(), a.Clone()
	r1, r2 := xrand.New(42), xrand.New(42)
	for i := 0; i < 50; i++ {
		// consume the Bernoulli draw identically: beta=0 short-circuits
		// Bernoulli(0) without consuming randomness.
		p0.Place(b1, r1)
		s0.Place(b2, r2)
	}
	for i := 0; i < b1.N(); i++ {
		if b1.Balls(i) != b2.Balls(i) {
			t.Fatal("OnePlusBeta(0) diverged from Single")
		}
	}
}

func TestFactories(t *testing.T) {
	a := bins.MustNew(make64(8, 2))
	w := proportionalWeights(t, a)
	for _, f := range []Factory{
		GreedyFactory(2), StandardFactory(3), SingleFactory(),
		GoLeftFactory(2), OnePlusBetaFactory(0.3),
	} {
		p, err := f(a, w)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() == "" {
			t.Error("factory produced unnamed placer")
		}
		r := xrand.New(1)
		b := a.Clone()
		idx := p.Place(b, r)
		if idx < 0 || idx >= b.N() {
			t.Fatalf("%s placed out of range: %d", p.Name(), idx)
		}
		if b.TotalBalls() != 1 {
			t.Fatalf("%s did not add exactly one ball", p.Name())
		}
	}
}

// Property: every placer adds exactly one ball per Place, in range, and
// never touches capacities.
func TestQuickPlaceInvariants(t *testing.T) {
	f := func(seed uint64, nRaw, dRaw uint8) bool {
		n := int(nRaw%20) + 2
		d := int(dRaw%4) + 1
		r := xrand.New(seed)
		caps := make([]int64, n)
		for i := range caps {
			caps[i] = int64(r.Intn(10)) + 1
		}
		a := bins.MustNew(caps)
		w, err := dist.Proportional{}.Weights(a)
		if err != nil {
			return false
		}
		placers := []Placer{}
		if g, err := NewGreedy(a, w, d); err == nil {
			placers = append(placers, g)
		} else {
			return false
		}
		if s, err := NewStandard(a, w, d); err == nil {
			placers = append(placers, s)
		}
		for _, p := range placers {
			before := a.TotalBalls()
			idx := p.Place(a, r)
			if idx < 0 || idx >= n {
				return false
			}
			if a.TotalBalls() != before+1 {
				return false
			}
			for i := 0; i < n; i++ {
				if a.Capacity(i) != caps[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy with proportional selection never places a ball into a
// zero-weight bin when using a TopOnly distribution (Theorem 5 setup).
func TestQuickTopOnlyNeverHitsSmall(t *testing.T) {
	f := func(seed uint64) bool {
		a := bins.MustNew([]int64{1, 1, 1, 5, 5, 5})
		w, err := dist.TopOnly{MinCapacity: 5}.Weights(a)
		if err != nil {
			return false
		}
		g, err := NewGreedy(a, w, 2)
		if err != nil {
			return false
		}
		r := xrand.New(seed)
		for i := 0; i < 60; i++ {
			idx := g.Place(a, r)
			if a.Capacity(idx) < 5 {
				return false
			}
		}
		return a.Balls(0) == 0 && a.Balls(1) == 0 && a.Balls(2) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGreedyPlace(b *testing.B) {
	a := bins.MustNew(make64(10000, 1))
	w, _ := dist.Proportional{}.Weights(a)
	g, _ := NewGreedy(a, w, 2)
	r := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Place(a, r)
	}
}

func BenchmarkStandardPlace(b *testing.B) {
	a := bins.MustNew(make64(10000, 1))
	w, _ := dist.Proportional{}.Weights(a)
	s, _ := NewStandard(a, w, 2)
	r := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Place(a, r)
	}
}
