package protocol

import (
	"testing"

	"repro/internal/bins"
	"repro/internal/dist"
	"repro/internal/xrand"
)

func TestBatchedValidation(t *testing.T) {
	a := bins.MustNew([]int64{1, 2})
	w := []float64{1, 2}
	if _, err := NewBatched(a, w, 2, 0); err == nil {
		t.Error("batch = 0 accepted")
	}
	if _, err := NewBatched(a, w, 0, 4); err == nil {
		t.Error("d = 0 accepted")
	}
	if _, err := NewBatched(a, []float64{1}, 2, 4); err == nil {
		t.Error("weight mismatch accepted")
	}
}

// TestBatchSizeOneEqualsGreedy: with B = 1 the batched protocol is the
// sequential Algorithm 1 — identical stream, identical placements. For
// d = 3 and d = 4 this is also the equivalence proof between the
// devirtualized Greedy kernels (choose3/choose4) and the general
// chooseGeneralFrom path the batched protocol runs: both must consume
// the same draws and make the same decisions, ball for ball.
func TestBatchSizeOneEqualsGreedy(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		caps := []int64{1, 1, 2, 2, 4, 4}
		w, _ := dist.Proportional{}.Weights(bins.MustNew(caps))
		aB := bins.MustNew(caps)
		aG := bins.MustNew(caps)
		pb, err := NewBatched(aB, w, d, 1)
		if err != nil {
			t.Fatal(err)
		}
		pg, err := NewGreedy(aG, w, d)
		if err != nil {
			t.Fatal(err)
		}
		rb, rg := xrand.New(5), xrand.New(5)
		for i := 0; i < 200; i++ {
			ib := pb.Place(aB, rb)
			ig := pg.Place(aG, rg)
			if ib != ig {
				t.Fatalf("d=%d ball %d: batched chose %d, greedy chose %d", d, i, ib, ig)
			}
		}
		if *rb != *rg {
			t.Fatalf("d=%d: RNG states diverge after 200 balls", d)
		}
	}
}

// TestHugeBatchIsObliviousToPlacements: with batch >= m, every ball sees
// an all-empty snapshot, so the distribution degenerates towards random
// placement among the capacity-filtered choices. Specifically on uniform
// unit bins the max ball count must be much worse than sequential greedy.
func TestHugeBatchIsOblivious(t *testing.T) {
	const n, m, reps = 100, 100, 200
	var seqMax, batchMax float64
	for rep := 0; rep < reps; rep++ {
		caps := make([]int64, n)
		for i := range caps {
			caps[i] = 1
		}
		w := make([]float64, n)
		for i := range w {
			w[i] = 1
		}
		aS := bins.MustNew(caps)
		aB := bins.MustNew(caps)
		ps, _ := NewGreedy(aS, w, 2)
		pb, _ := NewBatched(aB, w, 2, m)
		rs := xrand.NewStream(900, uint64(rep))
		rb := xrand.NewStream(901, uint64(rep))
		for i := 0; i < m; i++ {
			ps.Place(aS, rs)
			pb.Place(aB, rb)
		}
		seqMax += aS.MaxLoad()
		batchMax += aB.MaxLoad()
	}
	if batchMax <= seqMax {
		t.Fatalf("full-batch max %.3f not worse than sequential %.3f", batchMax/reps, seqMax/reps)
	}
}

// TestBatchedMonotoneInB: larger batches (staler information) should not
// improve the max load, statistically.
func TestBatchedMonotoneInB(t *testing.T) {
	const n, m, reps = 64, 256, 150
	mean := func(batch int) float64 {
		caps := make([]int64, n)
		w := make([]float64, n)
		for i := range caps {
			caps[i] = 1
			w[i] = 1
		}
		total := 0.0
		for rep := 0; rep < reps; rep++ {
			a := bins.MustNew(caps)
			p, err := NewBatched(a, w, 2, batch)
			if err != nil {
				t.Fatal(err)
			}
			r := xrand.NewStream(1000+uint64(batch), uint64(rep))
			for i := 0; i < m; i++ {
				p.Place(a, r)
			}
			total += a.MaxLoad()
		}
		return total / reps
	}
	b1, b16, b256 := mean(1), mean(16), mean(256)
	if b16 < b1-0.1 {
		t.Fatalf("B=16 (%.3f) better than B=1 (%.3f)", b16, b1)
	}
	if b256 < b16-0.1 {
		t.Fatalf("B=256 (%.3f) better than B=16 (%.3f)", b256, b16)
	}
}

func TestBatchedReset(t *testing.T) {
	caps := []int64{1, 1}
	w := []float64{1, 1}
	a := bins.MustNew(caps)
	p, err := NewBatched(a, w, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(1)
	p.Place(a, r) // mid-round now
	a.Reset()
	p.Reset()
	if p.inRound != 0 {
		t.Fatal("Reset did not clear round state")
	}
	for _, f := range p.frozen {
		if f != 0 {
			t.Fatal("Reset did not clear frozen counts")
		}
	}
	// determinism after reset: two identical sequences
	r1, r2 := xrand.New(9), xrand.New(9)
	a1, a2 := bins.MustNew(caps), bins.MustNew(caps)
	p.Reset()
	seq1 := make([]int, 10)
	for i := range seq1 {
		seq1[i] = p.Place(a1, r1)
	}
	p.Reset()
	for i := range seq1 {
		if got := p.Place(a2, r2); got != seq1[i] {
			t.Fatal("batched placer not deterministic after Reset")
		}
	}
}

func TestBatchedFactory(t *testing.T) {
	a := bins.MustNew([]int64{2, 2})
	p, err := BatchedFactory(2, 4)(a, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "batched-greedy(d=2,B=4)" {
		t.Fatalf("name %q", p.Name())
	}
}
