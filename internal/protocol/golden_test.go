package protocol

// Golden-sequence regression tests: the exact placement sequence of
// every protocol is pinned for a fixed seed. The canonical draw sequence
// was redefined once for d = 2, when the hot path moved to the
// integer-threshold alias sampler (Sample2 + unconditional tie coin in
// the d = 2 kernels), and once for d >= 3, when the general path moved
// to SampleN draw packing (two candidates per 64-bit draw; ceil(d/2)
// draws per ball). Both sequences are frozen from those points on. A
// diff here means the allocation stream changed — which silently
// invalidates every pinned experiment result — so it must be deliberate
// and called out loudly.

import (
	"testing"

	"repro/internal/bins"
	"repro/internal/xrand"
)

const goldenSeed = 20260727

// goldenCaps is a small heterogeneous ladder exercising capacity ties
// (three unit bins) and a skewed top end.
var goldenCaps = []int64{1, 1, 1, 2, 3, 5, 8, 10}

func goldenFactories() []struct {
	name string
	f    Factory
} {
	return []struct {
		name string
		f    Factory
	}{
		{"greedy-d1", GreedyFactory(1)},
		{"greedy-d2", GreedyFactory(2)},
		{"greedy-d3", GreedyFactory(3)},
		{"greedy-d4", GreedyFactory(4)},
		{"standard-d2", StandardFactory(2)},
		{"single", SingleFactory()},
		{"goleft-d2", GoLeftFactory(2)},
		{"oneplusbeta-0.5", OnePlusBetaFactory(0.5)},
		{"batched-d2-B4", BatchedFactory(2, 4)},
		{"batched-d3-B4", BatchedFactory(3, 4)},
	}
}

var goldenSequences = map[string][]int{
	// greedy-d1 degenerates to single choice: one draw per ball, no
	// tie draw — it must stay identical to the "single" sequence.
	"greedy-d1": {5, 5, 7, 7, 5, 7, 6, 5, 6, 7, 3, 7, 2, 6, 5, 0},
	"greedy-d2": {7, 6, 5, 6, 6, 4, 5, 5, 6, 7, 7, 6, 7, 5, 6, 6},
	// greedy-d3/d4 and batched-d3 re-pinned once when the d >= 3 path
	// moved to SampleN draw packing (two candidates per 64-bit draw)
	// plus an unconditional tie draw (ceil(d/2) + 1 advances per ball).
	"greedy-d3":       {7, 7, 6, 7, 5, 6, 7, 4, 6, 5, 6, 3, 7, 7, 7, 7},
	"greedy-d4":       {7, 7, 6, 7, 5, 6, 4, 6, 7, 5, 6, 3, 7, 7, 5, 7},
	"standard-d2":     {7, 6, 5, 6, 6, 4, 2, 0, 5, 0, 4, 4, 7, 2, 5, 0},
	"single":          {5, 5, 7, 7, 5, 7, 6, 5, 6, 7, 3, 7, 2, 6, 5, 0},
	"goleft-d2":       {6, 7, 7, 6, 7, 7, 6, 4, 7, 5, 3, 7, 4, 0, 6, 6},
	"oneplusbeta-0.5": {5, 5, 5, 7, 7, 5, 7, 4, 6, 6, 6, 6, 1, 6, 7, 7},
	"batched-d2-B4":   {7, 7, 5, 6, 6, 4, 5, 5, 6, 7, 7, 6, 7, 5, 6, 6},
	"batched-d3-B4":   {7, 7, 6, 7, 5, 5, 7, 6, 6, 5, 6, 3, 7, 7, 7, 7},
}

func goldenWeights(caps []int64) []float64 {
	w := make([]float64, len(caps))
	for i, c := range caps {
		w[i] = float64(c)
	}
	return w
}

func TestGoldenPlacementSequences(t *testing.T) {
	for _, fc := range goldenFactories() {
		want, ok := goldenSequences[fc.name]
		if !ok {
			t.Fatalf("%s: no golden sequence pinned", fc.name)
		}
		a := bins.MustNew(goldenCaps)
		p, err := fc.f(a, goldenWeights(goldenCaps))
		if err != nil {
			t.Fatal(err)
		}
		r := xrand.New(goldenSeed)
		for k, wantBin := range want {
			if got := p.Place(a, r); got != wantBin {
				t.Fatalf("%s: ball %d placed into bin %d, golden %d", fc.name, k, got, wantBin)
			}
		}
	}
}

// TestPlaceBatchMatchesPlace: for every protocol, PlaceBatch(k) must
// produce the identical final state to k sequential Place calls — the
// determinism contract that lets the engine batch whenever it does not
// need per-ball observations.
func TestPlaceBatchMatchesPlace(t *testing.T) {
	const balls = 500
	for _, fc := range goldenFactories() {
		w := goldenWeights(goldenCaps)

		one := bins.MustNew(goldenCaps)
		pOne, err := fc.f(one, w)
		if err != nil {
			t.Fatal(err)
		}
		rOne := xrand.New(goldenSeed)
		for i := 0; i < balls; i++ {
			pOne.Place(one, rOne)
		}

		batch := bins.MustNew(goldenCaps)
		pBatch, err := fc.f(batch, w)
		if err != nil {
			t.Fatal(err)
		}
		rBatch := xrand.New(goldenSeed)
		pBatch.PlaceBatch(batch, rBatch, balls)

		for i := 0; i < one.N(); i++ {
			if one.Balls(i) != batch.Balls(i) {
				t.Fatalf("%s: bin %d has %d balls per-ball vs %d batched",
					fc.name, i, one.Balls(i), batch.Balls(i))
			}
		}
		if *rOne != *rBatch {
			t.Fatalf("%s: RNG states diverge after %d balls", fc.name, balls)
		}
	}
}
