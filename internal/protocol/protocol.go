// Package protocol implements the allocation protocols: the paper's
// Algorithm 1 (greedy d-choice with capacity tie-breaking) plus the
// baselines and extensions it is compared against.
//
// A Placer places balls into a bins.Array using a caller-supplied RNG,
// either one at a time (Place) or as a monomorphic batch loop
// (PlaceBatch) that the hot paths use to avoid per-ball interface
// dispatch. Placers are bound at construction to a fixed capacity vector
// and selection-weight vector (they pre-build alias tables), but they
// read ball counts live, so the same Placer can be reused across
// repetitions by resetting the array.
//
// Every placer holds its sampler as a concrete *sampling.AliasTable —
// not the sampling.Sampler interface — so the per-ball sampling call is
// direct and inlinable. One sample costs a single 64-bit RNG draw (the
// integer-threshold alias table). For a fixed seed the placement
// sequence of Place and PlaceBatch is identical: PlaceBatch(a, r, k)
// consumes exactly the draws of k Place(a, r) calls.
//
// All load comparisons are exact integer arithmetic via
// bins.ComparePostLoads — no floating point is involved in any placement
// decision.
package protocol

import (
	"fmt"
	"math/bits"

	"repro/internal/bins"
	"repro/internal/sampling"
	"repro/internal/xrand"
)

// Placer allocates balls.
type Placer interface {
	// Place chooses bins for one ball per the protocol, allocates the
	// ball into a, and returns the receiving bin's index.
	Place(a *bins.Array, r *xrand.Rand) int
	// PlaceBatch allocates k balls with the draw sequence of k Place
	// calls, but without per-ball interface dispatch: each protocol
	// runs a concrete, monomorphic loop.
	PlaceBatch(a *bins.Array, r *xrand.Rand, k int64)
	// Name identifies the protocol in reports.
	Name() string
}

// Factory builds a Placer for a specific array and selection weights.
// The simulation engine calls it once per repetition (or once per worker
// for fixed arrays).
type Factory func(a *bins.Array, weights []float64) (Placer, error)

// maxChoices bounds d to keep candidate buffers on the stack.
const maxChoices = 32

func validate(a *bins.Array, weights []float64, d int) error {
	if a == nil {
		return fmt.Errorf("protocol: nil array")
	}
	if len(weights) != a.N() {
		return fmt.Errorf("protocol: %d weights for %d bins", len(weights), a.N())
	}
	if d < 1 || d > maxChoices {
		return fmt.Errorf("protocol: d = %d outside [1,%d]", d, maxChoices)
	}
	return nil
}

// Greedy is the paper's Algorithm 1. For each ball it draws d candidate
// bins (independently, with the configured selection probabilities),
// keeps the candidates whose load after a hypothetical allocation would
// be smallest, removes from that set every bin whose capacity is below
// the set's maximum capacity, and finally picks uniformly among the
// survivors.
type Greedy struct {
	d     int
	table *sampling.AliasTable
	// batchCand/batchTie are the SampleBatch scratch buffers of the
	// devirtualized d = 2/3/4 PlaceBatch kernels (ballBatch balls per
	// block), allocated once at construction so the batch loops stay
	// zero-allocation. They make a Greedy unsafe for concurrent use —
	// which it already was, since Place mutates the caller's RNG.
	batchCand []int
	batchTie  []uint64
	// pf enables the software-pipelined prefetch in the d >= 3 batch
	// decision loops (see PlaceBatch); set at construction from (d,
	// array size), never from anything that varies at run time.
	pf bool
	// pfSink keeps the decision loops' prefetch loads observable (see
	// Array.Prefetch); its value is meaningless.
	pfSink int64
}

// ballBatch is the number of balls whose candidates and tie draws are
// pre-sampled per SampleBatch block: large enough to amortise the loop
// overhead and keep many independent table loads in flight, small
// enough that the scratch (d·8 B + 8 B per ball) stays inside L1.
const ballBatch = 256

// BlockSize is ballBatch under its exported name: the block
// granularity of the devirtualized PlaceBatch kernels. The sharded
// engines align checkpoint cuts to this boundary so observation
// snapshots land between SampleBatch blocks and never split one — the
// cut rule is part of the observation model (see internal/obs).
const BlockSize = ballBatch

// prefetchMinBins gates the software-pipelined prefetch in the
// d >= 3 batch decision loops: below it the bin array is
// cache-resident and the extra touches are pure overhead (measured: a
// wash at 10^4 bins, a loss for the cheap d = 2 cascade at every
// size, a win only for d >= 3 kernels whose compare tournament is
// long enough to hide a main-memory line fill). 2^17 bins is 2 MB of
// packed bin state — beyond L2 on the machines this runs on, and
// above the per-shard view sizes of the sharded engines, whose
// shard-local working sets are cache-resident by design.
const prefetchMinBins = 1 << 17

// NewGreedy builds Algorithm 1 with d choices over the given weights.
func NewGreedy(a *bins.Array, weights []float64, d int) (*Greedy, error) {
	if err := validate(a, weights, d); err != nil {
		return nil, err
	}
	t, err := sampling.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("protocol: greedy sampler: %w", err)
	}
	g := &Greedy{d: d, table: t}
	if d >= 2 && d <= 4 {
		g.batchCand = make([]int, d*ballBatch)
		g.batchTie = make([]uint64, ballBatch)
		g.pf = d >= 3 && a.N() >= prefetchMinBins
	}
	return g, nil
}

// Name implements Placer.
func (g *Greedy) Name() string { return fmt.Sprintf("greedy(d=%d)", g.d) }

// select2 resolves Algorithm 1's two-candidate decision from
// precomputed cross products l1 = (m1+1)·c2 and l2 = (m2+1)·c1 (steps
// 3-6: smaller post-load wins, capacity breaks post-load ties, the coin
// breaks full ties). It is a cascade of conditional moves, not
// branches: ties are common on class-structured arrays and their
// outcome is a coin toss the branch predictor would keep losing. Shared
// by the live-count (Greedy) and frozen-snapshot (Batched) kernels so
// the tie-break rule lives in exactly one place.
func select2(b1, b2 int, c1, c2, l1, l2 int64, coin bool) int {
	tieWin := b1
	if coin {
		tieWin = b2
	}
	capWin := b1
	if c2 > c1 {
		capWin = b2
	}
	if c2 == c1 {
		capWin = tieWin
	}
	win := b1
	if l2 < l1 {
		win = b2
	}
	if l2 == l1 {
		win = capWin
	}
	return win
}

// greedyPick2 resolves Algorithm 1's d = 2 decision for two sampled
// candidates and one raw tie draw (the coin is the draw's low bit). It
// is the decision half of choose2, split out so the SampleBatch-fed
// batch kernel and the per-ball path share one body.
func greedyPick2(a *bins.Array, b1, b2 int, u uint64) int {
	if b1 == b2 {
		return b1
	}
	c1, c2 := a.Capacity(b1), a.Capacity(b2)
	l1 := (a.Balls(b1) + 1) * c2
	l2 := (a.Balls(b2) + 1) * c1
	return select2(b1, b2, c1, c2, l1, l2, u&1 == 1)
}

// choose2 is the branch-lean d = 2 specialization of Algorithm 1. Both
// candidates come from one Sample2 draw and the tie-break coin is a
// second unconditional draw, so every ball consumes exactly two RNG
// advances regardless of outcome.
func (g *Greedy) choose2(a *bins.Array, r *xrand.Rand) int {
	b1, b2 := g.table.Sample2(r)
	return greedyPick2(a, b1, b2, r.Uint64())
}

// chooseGeneralFrom is the verbatim translation of Algorithm 1 for any
// d, shared by the sequential (frozen == nil: live ball counts) and
// batched (frozen: round-start snapshot) protocols so the candidate
// dedup and tie-break logic lives in one place. Candidate and survivor
// sets live in stack arrays (d <= maxChoices). All d candidates come
// from one SampleN call — ceil(d/2) RNG draws, two candidates packed
// per draw — so the devirtualized d = 3 and d = 4 kernels below consume
// exactly the same stream as this general path.
func chooseGeneralFrom(t *sampling.AliasTable, d int, frozen []int64, a *bins.Array, r *xrand.Rand) int {
	// d = 1 degenerates to single choice: one draw, no tie set and no
	// tie draw — the same stream as the Single protocol and as every
	// pre-SampleN pinned d = 1 run.
	if d == 1 {
		return t.Sample(r)
	}
	// Step 2: independently choose a set B of d bins. The d draws are
	// independent; duplicates collapse because B is a set.
	var raw [maxChoices]int
	t.SampleN(r, raw[:d])
	var cand [maxChoices]int
	nc := 0
	for _, b := range raw[:d] {
		dup := false
		for _, c := range cand[:nc] {
			if c == b {
				dup = true
				break
			}
		}
		if !dup {
			cand[nc] = b
			nc++
		}
	}
	// Step 3: Bopt = bins minimising the post-allocation load.
	var opt [maxChoices]int
	opt[0] = cand[0]
	no := 1
	for _, b := range cand[1:nc] {
		var cmp int
		if frozen == nil {
			cmp = a.ComparePostLoads(b, opt[0])
		} else {
			cmp = compareFrozenPost(frozen, a, b, opt[0])
		}
		switch cmp {
		case -1:
			opt[0] = b
			no = 1
		case 0:
			opt[no] = b
			no++
		}
	}
	// Steps 4-5: keep only maximum-capacity members of Bopt.
	maxCap := a.Capacity(opt[0])
	for _, b := range opt[1:no] {
		if c := a.Capacity(b); c > maxCap {
			maxCap = c
		}
	}
	k := 0
	for _, b := range opt[:no] {
		if a.Capacity(b) == maxCap {
			opt[k] = b
			k++
		}
	}
	// Step 6: i.u.r. choice among the survivors (the tie draw is
	// unconditional; see tieIdx).
	return opt[tieIdx(r, k)]
}

func (g *Greedy) chooseGeneral(a *bins.Array, r *xrand.Rand) int {
	return chooseGeneralFrom(g.table, g.d, nil, a, r)
}

// greedyPick resolves Algorithm 1's steps 3-6 for up to four
// deduplicated candidates against live ball counts, with the step-6
// tie draw supplied raw in u (already consumed by the caller, so the
// stream position is the same whether the draw came straight off the
// RNG or out of a SampleBatch tie buffer). It is
// decision-equivalent to the tail of chooseGeneralFrom — same tie sets,
// same unconditional tieIdx consumption — but shaped for the pipeline:
// all candidate bin states load up front into fixed four-slot vectors,
// the minimum post-load resolves through a compare cascade of
// conditional moves, and set membership is recomputed from the final
// minimum (all candidates tying the running minimum equal the overall
// minimum, so incremental set maintenance and final recomputation give
// the same Bopt). Tie outcomes are coin tosses the branch predictor
// would keep losing; keeping them out of the control flow is the same
// trick the d = 2 kernel plays.
func greedyPick(a *bins.Array, u uint64, cand *[4]int, nc int) int {
	var ms, cs [4]int64
	for i := 0; i < nc; i++ {
		ms[i], cs[i] = a.PostLoad(cand[i])
	}
	// Step 3a: minimum post-allocation load, exact cross-multiplied
	// compare against the running best. Single-assignment conditionals
	// compile to conditional moves.
	bm, bc := ms[0], cs[0]
	for i := 1; i < nc; i++ {
		m, c := ms[i], cs[i]
		lt := m*bc < bm*c
		if lt {
			bm = m
		}
		if lt {
			bc = c
		}
	}
	// Steps 3b-5: Bopt membership (exact tie with the minimum, so
	// ms[i]*bc == bm*cs[i]) and the maximum capacity over Bopt,
	// without data-dependent branches: a non-member's capacity is
	// zeroed out of the running maximum.
	var maxCap int64
	for i := 0; i < nc; i++ {
		c := cs[i]
		if ms[i]*bc != bm*cs[i] {
			c = 0
		}
		if c > maxCap {
			maxCap = c
		}
	}
	// Survivors: members of Bopt at maximum capacity, compacted in
	// candidate order (the order chooseGeneralFrom's incremental sets
	// preserve). z == 0 iff both the tie difference and the capacity
	// gap are zero; the write is unconditional, the count conditional.
	var surv [4]int
	k := 0
	for i := 0; i < nc; i++ {
		z := (ms[i]*bc - bm*cs[i]) | (maxCap - cs[i])
		surv[k] = cand[i]
		if z == 0 {
			k++
		}
	}
	// Step 6: i.u.r. choice among the survivors (the tie draw is
	// unconditional; see tieIdx).
	return surv[tieIdxFrom(u, k)]
}

// nonzero64 returns 1 if v != 0 and 0 otherwise, without a branch.
func nonzero64(v int64) int {
	return int((uint64(v|-v) >> 63) & 1)
}

// tieIdx resolves Algorithm 1's step-6 uniform choice among k tied
// survivors from exactly one 64-bit draw: the high word of the draw×k
// product. For k <= maxChoices the Lemire bias a rejection loop would
// remove is below 2^-58 — far beneath anything a Monte-Carlo experiment
// can resolve. The draw is consumed UNCONDITIONALLY, even when k = 1
// (the product's high word is then 0, selecting the single survivor):
// at steady state on class-structured arrays more than half of all
// balls see a tie, so a draw-only-on-tie branch is a coin toss the
// branch predictor keeps losing — the same rationale as the d = 2
// kernel's unconditional tie coin. Every ball of a d >= 3 protocol
// therefore consumes exactly ceil(d/2) + 1 RNG advances regardless of
// outcome. Every Algorithm-1 tie break (the specialised kernels, the
// general path, and the duplicate-candidate fallback) routes through
// this one function so the draw stream stays identical across paths.
func tieIdx(r *xrand.Rand, k int) int {
	return tieIdxFrom(r.Uint64(), k)
}

// tieIdxFrom is tieIdx for a draw the caller already consumed — the
// SampleBatch path buffers the per-ball tie draw alongside the
// candidates and resolves it here without touching the RNG again.
func tieIdxFrom(u uint64, k int) int {
	hi, _ := bits.Mul64(u, uint64(k))
	return int(hi)
}

// greedyPick3 resolves the d = 3 decision for three sampled candidates
// and one raw tie draw — the decision half of choose3, shared by the
// per-ball path and the SampleBatch-fed batch kernel. The common
// all-distinct case runs fully unrolled in registers; a duplicate
// (probability ~n⁻¹ per pair) collapses the set and delegates to
// greedyPick.
func greedyPick3(a *bins.Array, b0, b1, b2 int, u uint64) int {
	if b1 == b0 || b2 == b0 || b2 == b1 {
		var cand [4]int
		cand[0] = b0
		nc := 1
		if b1 != b0 {
			cand[nc] = b1
			nc++
		}
		if b2 != b0 && b2 != b1 {
			cand[nc] = b2
			nc++
		}
		return greedyPick(a, u, &cand, nc)
	}
	m0, c0 := a.PostLoad(b0)
	m1, c1 := a.PostLoad(b1)
	m2, c2 := a.PostLoad(b2)
	// Steps 3-5 as one lexicographic minimisation (smallest post-load,
	// then largest capacity) via a conditional-move compare cascade;
	// see choose4 for the argument. The winner's denominator ac is the
	// maximum capacity over Bopt.
	am, ac := m0, c0
	p := m1 * ac
	q := am * c1
	sel := p - q
	if sel == 0 {
		sel = ac - c1
	}
	lt := sel < 0
	if lt {
		am = m1
	}
	if lt {
		ac = c1
	}
	p = m2 * ac
	q = am * c2
	sel = p - q
	if sel == 0 {
		sel = ac - c2
	}
	lt2 := sel < 0
	if lt2 {
		am = m2
	}
	if lt2 {
		ac = c2
	}
	// Survivor counts and select, exactly as in choose4 (the tie test
	// cancels to pair equality because survivors carry capacity ac).
	s0 := 1 - nonzero64((m0-am)|(c0-ac))
	s1 := 1 - nonzero64((m1-am)|(c1-ac))
	s2 := 1 - nonzero64((m2-am)|(c2-ac))
	k := s0 + s1 + s2
	j := tieIdxFrom(u, k)
	t0 := s0
	t1 := t0 + s1
	win := b2
	if j < t1 {
		win = b1
	}
	if j < t0 {
		win = b0
	}
	return win
}

// choose3 is the devirtualized d = 3 kernel: all three candidates come
// from two RNG draws (the SampleN packing — one Sample2 draw plus one
// Sample draw, flattened into Sample3) and the unconditional tie draw
// is the third advance. Decision- and stream-equivalent to
// chooseGeneralFrom with d = 3.
func (g *Greedy) choose3(a *bins.Array, r *xrand.Rand) int {
	b0, b1, b2 := g.table.Sample3(r)
	return greedyPick3(a, b0, b1, b2, r.Uint64())
}

// greedyPick4 resolves the d = 4 decision for four sampled candidates
// and one raw tie draw — the decision half of choose4, shared by the
// per-ball path and the SampleBatch-fed batch kernel: the all-distinct
// case fully unrolled, the rare duplicate case collapsed and delegated
// to greedyPick.
func greedyPick4(a *bins.Array, b0, b1, b2, b3 int, u uint64) int {
	if b1 == b0 || b2 == b0 || b2 == b1 || b3 == b0 || b3 == b1 || b3 == b2 {
		var cand [4]int
		cand[0] = b0
		nc := 1
		if b1 != b0 {
			cand[nc] = b1
			nc++
		}
		if b2 != b0 && b2 != b1 {
			cand[nc] = b2
			nc++
		}
		if b3 != b0 && b3 != b1 && b3 != b2 {
			cand[nc] = b3
			nc++
		}
		return greedyPick(a, u, &cand, nc)
	}
	m0, c0 := a.PostLoad(b0)
	m1, c1 := a.PostLoad(b1)
	m2, c2 := a.PostLoad(b2)
	m3, c3 := a.PostLoad(b3)
	// Steps 3-5 are one lexicographic minimisation — smallest post-load
	// first, then largest capacity — run as a two-level conditional-move
	// tournament (the two first-round compares carry no dependency on
	// each other). Each round compares the pair exactly: sel is the
	// cross-multiplied post-load difference, replaced by the capacity
	// difference on an exact post-load tie (one extra conditional move,
	// no branch). The winner's denominator ac is then by construction
	// the maximum capacity over Bopt, so no separate capacity-filter
	// pass is needed.
	am, ac := m0, c0
	p := m1 * ac
	q := am * c1
	sel := p - q
	if sel == 0 {
		sel = ac - c1
	}
	lt := sel < 0
	if lt {
		am = m1
	}
	if lt {
		ac = c1
	}
	xm, xc := m2, c2
	p = m3 * xc
	q = xm * c3
	sel = p - q
	if sel == 0 {
		sel = xc - c3
	}
	lt2 := sel < 0
	if lt2 {
		xm = m3
	}
	if lt2 {
		xc = c3
	}
	p = xm * ac
	q = am * xc
	sel = p - q
	if sel == 0 {
		sel = ac - xc
	}
	lt3 := sel < 0
	if lt3 {
		am = xm
	}
	if lt3 {
		ac = xc
	}
	// Survivors (s_i == 1): candidates tying the winning post-load
	// exactly AND carrying the winning (maximum-over-Bopt) capacity.
	// Since a survivor's capacity equals ac, the cross-multiplied tie
	// test m_i·ac == am·c_i cancels to plain pair equality
	// (m_i, c_i) == (am, ac) — no multiplies. The j-th survivor in
	// candidate order resolves through the running survivor counts t_i
	// without materialising a list: the winner is the first candidate
	// whose cumulative survivor count exceeds j.
	s0 := 1 - nonzero64((m0-am)|(c0-ac))
	s1 := 1 - nonzero64((m1-am)|(c1-ac))
	s2 := 1 - nonzero64((m2-am)|(c2-ac))
	s3 := 1 - nonzero64((m3-am)|(c3-ac))
	k := s0 + s1 + s2 + s3
	j := tieIdxFrom(u, k)
	t0 := s0
	t1 := t0 + s1
	t2 := t1 + s2
	win := b3
	if j < t2 {
		win = b2
	}
	if j < t1 {
		win = b1
	}
	if j < t0 {
		win = b0
	}
	return win
}

// choose4 is the devirtualized d = 4 kernel: four candidates from two
// packed draws (Sample4) plus the unconditional tie draw. Decision- and
// stream-equivalent to chooseGeneralFrom with d = 4.
func (g *Greedy) choose4(a *bins.Array, r *xrand.Rand) int {
	b0, b1, b2, b3 := g.table.Sample4(r)
	return greedyPick4(a, b0, b1, b2, b3, r.Uint64())
}

// Place implements Placer.
func (g *Greedy) Place(a *bins.Array, r *xrand.Rand) int {
	var chosen int
	switch g.d {
	case 2:
		chosen = g.choose2(a, r)
	case 3:
		chosen = g.choose3(a, r)
	case 4:
		chosen = g.choose4(a, r)
	default:
		chosen = g.chooseGeneral(a, r)
	}
	a.Add(chosen)
	return chosen
}

// PlaceBatch implements Placer. Each supported d runs its own
// monomorphic loop so the per-ball kernel call is direct and the d
// dispatch happens once per batch, not once per ball. The d = 2/3/4
// kernels additionally split each block of up to ballBatch balls into
// two passes: SampleBatch pre-draws every candidate and tie draw of the
// block in one dependency-free loop (table loads of many balls in
// flight at once), then a decision loop reads bin state and places.
// On arrays too large to be cache-resident (g.pf; see
// prefetchMinBins) the d >= 3 decision loops are software-pipelined:
// they touch the NEXT ball's candidate bin lines (Array.Prefetch)
// before resolving the current ball, so the next iteration's
// random-access line fills are in flight behind the current compare
// tournament instead of serialising after the Add. Prefetched values
// are never used for decisions (each pick re-reads fresh state), so
// neither pass moves a draw or a bit: candidate choice never depends
// on bin state, and the schedule consumes the exact per-ball draw
// sequence and produces the exact final state of k sequential Place
// calls (pinned by the golden and batch-equivalence tests).
func (g *Greedy) PlaceBatch(a *bins.Array, r *xrand.Rand, k int64) {
	cand, tie := g.batchCand, g.batchTie
	var pf int64
	pfOn := g.pf
	switch g.d {
	case 2:
		for k > 0 {
			n := ballBatch
			if int64(n) > k {
				n = int(k)
			}
			g.table.SampleBatch(r, 2, cand[:2*n], tie[:n])
			for i := 0; i < n; i++ {
				a.Add(greedyPick2(a, cand[2*i], cand[2*i+1], tie[i]))
			}
			k -= int64(n)
		}
	case 3:
		for k > 0 {
			n := ballBatch
			if int64(n) > k {
				n = int(k)
			}
			g.table.SampleBatch(r, 3, cand[:3*n], tie[:n])
			for i := 0; i < n-1; i++ {
				if pfOn {
					pf += a.Prefetch(cand[3*i+3]) + a.Prefetch(cand[3*i+4]) + a.Prefetch(cand[3*i+5])
				}
				a.Add(greedyPick3(a, cand[3*i], cand[3*i+1], cand[3*i+2], tie[i]))
			}
			a.Add(greedyPick3(a, cand[3*n-3], cand[3*n-2], cand[3*n-1], tie[n-1]))
			k -= int64(n)
		}
	case 4:
		for k > 0 {
			n := ballBatch
			if int64(n) > k {
				n = int(k)
			}
			g.table.SampleBatch(r, 4, cand[:4*n], tie[:n])
			for i := 0; i < n-1; i++ {
				if pfOn {
					pf += a.Prefetch(cand[4*i+4]) + a.Prefetch(cand[4*i+5]) +
						a.Prefetch(cand[4*i+6]) + a.Prefetch(cand[4*i+7])
				}
				a.Add(greedyPick4(a, cand[4*i], cand[4*i+1], cand[4*i+2], cand[4*i+3], tie[i]))
			}
			a.Add(greedyPick4(a, cand[4*n-4], cand[4*n-3], cand[4*n-2], cand[4*n-1], tie[n-1]))
			k -= int64(n)
		}
	default:
		for ; k > 0; k-- {
			a.Add(g.chooseGeneral(a, r))
		}
	}
	g.pfSink = pf
}

// Standard is the classical Azar et al. Greedy[d]: candidates are
// compared by *ball count* (not capacity-relative load) and ties are
// broken uniformly at random. With uniform capacities and uniform
// selection probabilities this is the standard d-choice game; it serves
// as the capacity-oblivious baseline for heterogeneous arrays.
type Standard struct {
	d     int
	table *sampling.AliasTable
}

// NewStandard builds the capacity-oblivious d-choice baseline.
func NewStandard(a *bins.Array, weights []float64, d int) (*Standard, error) {
	if err := validate(a, weights, d); err != nil {
		return nil, err
	}
	t, err := sampling.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("protocol: standard sampler: %w", err)
	}
	return &Standard{d: d, table: t}, nil
}

// Name implements Placer.
func (s *Standard) Name() string { return fmt.Sprintf("standard(d=%d)", s.d) }

// choose2 is the branch-lean d = 2 specialization: both candidates from
// one Sample2 draw, an unconditional coin draw, then a select cascade on
// the ball-count comparison (see Greedy.choose2 for the rationale).
func (s *Standard) choose2(a *bins.Array, r *xrand.Rand) int {
	b1, b2 := s.table.Sample2(r)
	coin := r.Uint64()&1 == 1
	if b1 == b2 {
		return b1
	}
	m1, m2 := a.Balls(b1), a.Balls(b2)
	tieWin := b1
	if coin {
		tieWin = b2
	}
	win := b1
	if m2 < m1 {
		win = b2
	}
	if m2 == m1 {
		win = tieWin
	}
	return win
}

func (s *Standard) chooseGeneral(a *bins.Array, r *xrand.Rand) int {
	var opt [maxChoices]int
	no := 0
	var best int64
	for i := 0; i < s.d; i++ {
		b := s.table.Sample(r)
		m := a.Balls(b)
		switch {
		case i == 0 || m < best:
			best = m
			opt[0] = b
			no = 1
		case m == best:
			dup := false
			for _, c := range opt[:no] {
				if c == b {
					dup = true
					break
				}
			}
			if !dup {
				opt[no] = b
				no++
			}
		}
	}
	if no > 1 {
		return opt[r.Intn(no)]
	}
	return opt[0]
}

// Place implements Placer.
func (s *Standard) Place(a *bins.Array, r *xrand.Rand) int {
	var chosen int
	if s.d == 2 {
		chosen = s.choose2(a, r)
	} else {
		chosen = s.chooseGeneral(a, r)
	}
	a.Add(chosen)
	return chosen
}

// PlaceBatch implements Placer.
func (s *Standard) PlaceBatch(a *bins.Array, r *xrand.Rand, k int64) {
	if s.d == 2 {
		for ; k > 0; k-- {
			a.Add(s.choose2(a, r))
		}
		return
	}
	for ; k > 0; k-- {
		a.Add(s.chooseGeneral(a, r))
	}
}

// Single places each ball into one randomly selected bin (d = 1): the
// no-choice baseline.
type Single struct {
	table *sampling.AliasTable
}

// NewSingle builds the single-choice baseline.
func NewSingle(a *bins.Array, weights []float64) (*Single, error) {
	if err := validate(a, weights, 1); err != nil {
		return nil, err
	}
	t, err := sampling.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("protocol: single sampler: %w", err)
	}
	return &Single{table: t}, nil
}

// Name implements Placer.
func (s *Single) Name() string { return "single" }

// Place implements Placer.
func (s *Single) Place(a *bins.Array, r *xrand.Rand) int {
	b := s.table.Sample(r)
	a.Add(b)
	return b
}

// PlaceBatch implements Placer.
func (s *Single) PlaceBatch(a *bins.Array, r *xrand.Rand, k int64) {
	for ; k > 0; k-- {
		a.Add(s.table.Sample(r))
	}
}

// GoLeft is Vöcking's Always-Go-Left d-choice protocol adapted to
// heterogeneous bins (an extension/ablation, not in the paper): the bins
// are split into d contiguous groups, each ball draws one candidate per
// group (weights restricted to the group), compares post-allocation loads
// exactly, and breaks ties towards the leftmost group instead of towards
// higher capacity.
type GoLeft struct {
	d       int
	offsets []int // start index of each group
	tables  []*sampling.AliasTable
}

// NewGoLeft builds the always-go-left placer. Each of the d groups must
// contain at least one bin with positive weight.
func NewGoLeft(a *bins.Array, weights []float64, d int) (*GoLeft, error) {
	if err := validate(a, weights, d); err != nil {
		return nil, err
	}
	n := a.N()
	if d > n {
		return nil, fmt.Errorf("protocol: go-left needs d <= n (%d > %d)", d, n)
	}
	g := &GoLeft{d: d}
	for k := 0; k < d; k++ {
		lo := k * n / d
		hi := (k + 1) * n / d
		t, err := sampling.NewAlias(weights[lo:hi])
		if err != nil {
			return nil, fmt.Errorf("protocol: go-left group %d: %w", k, err)
		}
		g.offsets = append(g.offsets, lo)
		g.tables = append(g.tables, t)
	}
	return g, nil
}

// Name implements Placer.
func (g *GoLeft) Name() string { return fmt.Sprintf("goleft(d=%d)", g.d) }

func (g *GoLeft) choose(a *bins.Array, r *xrand.Rand) int {
	best := g.offsets[0] + g.tables[0].Sample(r)
	for k := 1; k < g.d; k++ {
		b := g.offsets[k] + g.tables[k].Sample(r)
		// strictly smaller post-load wins; ties keep the leftmost group.
		if a.ComparePostLoads(b, best) < 0 {
			best = b
		}
	}
	return best
}

// Place implements Placer.
func (g *GoLeft) Place(a *bins.Array, r *xrand.Rand) int {
	best := g.choose(a, r)
	a.Add(best)
	return best
}

// PlaceBatch implements Placer.
func (g *GoLeft) PlaceBatch(a *bins.Array, r *xrand.Rand, k int64) {
	for ; k > 0; k-- {
		a.Add(g.choose(a, r))
	}
}

// OnePlusBeta is Mitzenmacher's (1+β)-choice process adapted to the
// heterogeneous setting (extension): with probability beta a ball runs
// Algorithm 1 with d = 2, otherwise it places single-choice. It
// interpolates between d=1 and d=2 probe cost.
type OnePlusBeta struct {
	beta   float64
	greedy *Greedy
	single *Single
}

// NewOnePlusBeta builds the (1+β) placer for beta in [0, 1].
func NewOnePlusBeta(a *bins.Array, weights []float64, beta float64) (*OnePlusBeta, error) {
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("protocol: beta = %v outside [0,1]", beta)
	}
	g, err := NewGreedy(a, weights, 2)
	if err != nil {
		return nil, err
	}
	s, err := NewSingle(a, weights)
	if err != nil {
		return nil, err
	}
	return &OnePlusBeta{beta: beta, greedy: g, single: s}, nil
}

// Name implements Placer.
func (p *OnePlusBeta) Name() string { return fmt.Sprintf("oneplusbeta(b=%g)", p.beta) }

// Place implements Placer.
func (p *OnePlusBeta) Place(a *bins.Array, r *xrand.Rand) int {
	if r.Bernoulli(p.beta) {
		return p.greedy.Place(a, r)
	}
	return p.single.Place(a, r)
}

// PlaceBatch implements Placer. Place is already a direct call on the
// concrete receiver (p.greedy and p.single are concrete fields), so the
// loop is monomorphic as-is.
func (p *OnePlusBeta) PlaceBatch(a *bins.Array, r *xrand.Rand, k int64) {
	for ; k > 0; k-- {
		p.Place(a, r)
	}
}

// GreedyFactory returns a Factory for Algorithm 1 with d choices.
func GreedyFactory(d int) Factory {
	return func(a *bins.Array, w []float64) (Placer, error) { return NewGreedy(a, w, d) }
}

// StandardFactory returns a Factory for the capacity-oblivious baseline.
func StandardFactory(d int) Factory {
	return func(a *bins.Array, w []float64) (Placer, error) { return NewStandard(a, w, d) }
}

// SingleFactory returns a Factory for the single-choice baseline.
func SingleFactory() Factory {
	return func(a *bins.Array, w []float64) (Placer, error) { return NewSingle(a, w) }
}

// GoLeftFactory returns a Factory for always-go-left with d groups.
func GoLeftFactory(d int) Factory {
	return func(a *bins.Array, w []float64) (Placer, error) { return NewGoLeft(a, w, d) }
}

// OnePlusBetaFactory returns a Factory for the (1+β) process.
func OnePlusBetaFactory(beta float64) Factory {
	return func(a *bins.Array, w []float64) (Placer, error) { return NewOnePlusBeta(a, w, beta) }
}

var (
	_ Placer = (*Greedy)(nil)
	_ Placer = (*Standard)(nil)
	_ Placer = (*Single)(nil)
	_ Placer = (*GoLeft)(nil)
	_ Placer = (*OnePlusBeta)(nil)
)
