// Package protocol implements the allocation protocols: the paper's
// Algorithm 1 (greedy d-choice with capacity tie-breaking) plus the
// baselines and extensions it is compared against.
//
// A Placer places one ball at a time into a bins.Array using a caller
// supplied RNG. Placers are bound at construction to a fixed capacity
// vector and selection-weight vector (they pre-build alias tables), but
// they read ball counts live, so the same Placer can be reused across
// repetitions by resetting the array.
//
// All load comparisons are exact integer arithmetic via
// bins.ComparePostLoads — no floating point is involved in any placement
// decision.
package protocol

import (
	"fmt"

	"repro/internal/bins"
	"repro/internal/sampling"
	"repro/internal/xrand"
)

// Placer allocates balls one at a time.
type Placer interface {
	// Place chooses bins for one ball per the protocol, allocates the
	// ball into a, and returns the receiving bin's index.
	Place(a *bins.Array, r *xrand.Rand) int
	// Name identifies the protocol in reports.
	Name() string
}

// Factory builds a Placer for a specific array and selection weights.
// The simulation engine calls it once per repetition (or once per worker
// for fixed arrays).
type Factory func(a *bins.Array, weights []float64) (Placer, error)

// maxChoices bounds d to keep candidate buffers on the stack.
const maxChoices = 32

func validate(a *bins.Array, weights []float64, d int) error {
	if a == nil {
		return fmt.Errorf("protocol: nil array")
	}
	if len(weights) != a.N() {
		return fmt.Errorf("protocol: %d weights for %d bins", len(weights), a.N())
	}
	if d < 1 || d > maxChoices {
		return fmt.Errorf("protocol: d = %d outside [1,%d]", d, maxChoices)
	}
	return nil
}

// Greedy is the paper's Algorithm 1. For each ball it draws d candidate
// bins (independently, with the configured selection probabilities),
// keeps the candidates whose load after a hypothetical allocation would
// be smallest, removes from that set every bin whose capacity is below
// the set's maximum capacity, and finally picks uniformly among the
// survivors.
type Greedy struct {
	d       int
	sampler sampling.Sampler
	// scratch buffers, reused across Place calls
	cand []int
	opt  []int
}

// NewGreedy builds Algorithm 1 with d choices over the given weights.
func NewGreedy(a *bins.Array, weights []float64, d int) (*Greedy, error) {
	if err := validate(a, weights, d); err != nil {
		return nil, err
	}
	s, err := sampling.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("protocol: greedy sampler: %w", err)
	}
	return &Greedy{
		d:       d,
		sampler: s,
		cand:    make([]int, 0, d),
		opt:     make([]int, 0, d),
	}, nil
}

// Name implements Placer.
func (g *Greedy) Name() string { return fmt.Sprintf("greedy(d=%d)", g.d) }

// Place implements Placer; it is the verbatim translation of Algorithm 1.
func (g *Greedy) Place(a *bins.Array, r *xrand.Rand) int {
	// Step 2: independently choose a set B of d bins. The d draws are
	// independent; duplicates collapse because B is a set.
	g.cand = g.cand[:0]
	for i := 0; i < g.d; i++ {
		b := g.sampler.Sample(r)
		dup := false
		for _, c := range g.cand {
			if c == b {
				dup = true
				break
			}
		}
		if !dup {
			g.cand = append(g.cand, b)
		}
	}
	// Step 3: Bopt = bins minimising the post-allocation load.
	g.opt = append(g.opt[:0], g.cand[0])
	for _, b := range g.cand[1:] {
		switch a.ComparePostLoads(b, g.opt[0]) {
		case -1:
			g.opt = append(g.opt[:0], b)
		case 0:
			g.opt = append(g.opt, b)
		}
	}
	// Steps 4-5: keep only maximum-capacity members of Bopt.
	maxCap := a.Capacity(g.opt[0])
	for _, b := range g.opt[1:] {
		if c := a.Capacity(b); c > maxCap {
			maxCap = c
		}
	}
	k := 0
	for _, b := range g.opt {
		if a.Capacity(b) == maxCap {
			g.opt[k] = b
			k++
		}
	}
	g.opt = g.opt[:k]
	// Step 6: i.u.r. choice among the survivors.
	chosen := g.opt[0]
	if len(g.opt) > 1 {
		chosen = g.opt[r.Intn(len(g.opt))]
	}
	a.Add(chosen)
	return chosen
}

// Standard is the classical Azar et al. Greedy[d]: candidates are
// compared by *ball count* (not capacity-relative load) and ties are
// broken uniformly at random. With uniform capacities and uniform
// selection probabilities this is the standard d-choice game; it serves
// as the capacity-oblivious baseline for heterogeneous arrays.
type Standard struct {
	d       int
	sampler sampling.Sampler
	opt     []int
}

// NewStandard builds the capacity-oblivious d-choice baseline.
func NewStandard(a *bins.Array, weights []float64, d int) (*Standard, error) {
	if err := validate(a, weights, d); err != nil {
		return nil, err
	}
	s, err := sampling.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("protocol: standard sampler: %w", err)
	}
	return &Standard{d: d, sampler: s, opt: make([]int, 0, d)}, nil
}

// Name implements Placer.
func (s *Standard) Name() string { return fmt.Sprintf("standard(d=%d)", s.d) }

// Place implements Placer.
func (s *Standard) Place(a *bins.Array, r *xrand.Rand) int {
	s.opt = s.opt[:0]
	var best int64
	for i := 0; i < s.d; i++ {
		b := s.sampler.Sample(r)
		m := a.Balls(b)
		switch {
		case i == 0 || m < best:
			best = m
			s.opt = append(s.opt[:0], b)
		case m == best:
			dup := false
			for _, c := range s.opt {
				if c == b {
					dup = true
					break
				}
			}
			if !dup {
				s.opt = append(s.opt, b)
			}
		}
	}
	chosen := s.opt[0]
	if len(s.opt) > 1 {
		chosen = s.opt[r.Intn(len(s.opt))]
	}
	a.Add(chosen)
	return chosen
}

// Single places each ball into one randomly selected bin (d = 1): the
// no-choice baseline.
type Single struct {
	sampler sampling.Sampler
}

// NewSingle builds the single-choice baseline.
func NewSingle(a *bins.Array, weights []float64) (*Single, error) {
	if err := validate(a, weights, 1); err != nil {
		return nil, err
	}
	s, err := sampling.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("protocol: single sampler: %w", err)
	}
	return &Single{sampler: s}, nil
}

// Name implements Placer.
func (s *Single) Name() string { return "single" }

// Place implements Placer.
func (s *Single) Place(a *bins.Array, r *xrand.Rand) int {
	b := s.sampler.Sample(r)
	a.Add(b)
	return b
}

// GoLeft is Vöcking's Always-Go-Left d-choice protocol adapted to
// heterogeneous bins (an extension/ablation, not in the paper): the bins
// are split into d contiguous groups, each ball draws one candidate per
// group (weights restricted to the group), compares post-allocation loads
// exactly, and breaks ties towards the leftmost group instead of towards
// higher capacity.
type GoLeft struct {
	d        int
	offsets  []int // start index of each group
	samplers []sampling.Sampler
}

// NewGoLeft builds the always-go-left placer. Each of the d groups must
// contain at least one bin with positive weight.
func NewGoLeft(a *bins.Array, weights []float64, d int) (*GoLeft, error) {
	if err := validate(a, weights, d); err != nil {
		return nil, err
	}
	n := a.N()
	if d > n {
		return nil, fmt.Errorf("protocol: go-left needs d <= n (%d > %d)", d, n)
	}
	g := &GoLeft{d: d}
	for k := 0; k < d; k++ {
		lo := k * n / d
		hi := (k + 1) * n / d
		s, err := sampling.NewAlias(weights[lo:hi])
		if err != nil {
			return nil, fmt.Errorf("protocol: go-left group %d: %w", k, err)
		}
		g.offsets = append(g.offsets, lo)
		g.samplers = append(g.samplers, s)
	}
	return g, nil
}

// Name implements Placer.
func (g *GoLeft) Name() string { return fmt.Sprintf("goleft(d=%d)", g.d) }

// Place implements Placer.
func (g *GoLeft) Place(a *bins.Array, r *xrand.Rand) int {
	best := -1
	for k := 0; k < g.d; k++ {
		b := g.offsets[k] + g.samplers[k].Sample(r)
		// strictly smaller post-load wins; ties keep the leftmost group.
		if best == -1 || a.ComparePostLoads(b, best) < 0 {
			best = b
		}
	}
	a.Add(best)
	return best
}

// OnePlusBeta is Mitzenmacher's (1+β)-choice process adapted to the
// heterogeneous setting (extension): with probability beta a ball runs
// Algorithm 1 with d = 2, otherwise it places single-choice. It
// interpolates between d=1 and d=2 probe cost.
type OnePlusBeta struct {
	beta   float64
	greedy *Greedy
	single *Single
}

// NewOnePlusBeta builds the (1+β) placer for beta in [0, 1].
func NewOnePlusBeta(a *bins.Array, weights []float64, beta float64) (*OnePlusBeta, error) {
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("protocol: beta = %v outside [0,1]", beta)
	}
	g, err := NewGreedy(a, weights, 2)
	if err != nil {
		return nil, err
	}
	s, err := NewSingle(a, weights)
	if err != nil {
		return nil, err
	}
	return &OnePlusBeta{beta: beta, greedy: g, single: s}, nil
}

// Name implements Placer.
func (p *OnePlusBeta) Name() string { return fmt.Sprintf("oneplusbeta(b=%g)", p.beta) }

// Place implements Placer.
func (p *OnePlusBeta) Place(a *bins.Array, r *xrand.Rand) int {
	if r.Bernoulli(p.beta) {
		return p.greedy.Place(a, r)
	}
	return p.single.Place(a, r)
}

// GreedyFactory returns a Factory for Algorithm 1 with d choices.
func GreedyFactory(d int) Factory {
	return func(a *bins.Array, w []float64) (Placer, error) { return NewGreedy(a, w, d) }
}

// StandardFactory returns a Factory for the capacity-oblivious baseline.
func StandardFactory(d int) Factory {
	return func(a *bins.Array, w []float64) (Placer, error) { return NewStandard(a, w, d) }
}

// SingleFactory returns a Factory for the single-choice baseline.
func SingleFactory() Factory {
	return func(a *bins.Array, w []float64) (Placer, error) { return NewSingle(a, w) }
}

// GoLeftFactory returns a Factory for always-go-left with d groups.
func GoLeftFactory(d int) Factory {
	return func(a *bins.Array, w []float64) (Placer, error) { return NewGoLeft(a, w, d) }
}

// OnePlusBetaFactory returns a Factory for the (1+β) process.
func OnePlusBetaFactory(beta float64) Factory {
	return func(a *bins.Array, w []float64) (Placer, error) { return NewOnePlusBeta(a, w, beta) }
}

var (
	_ Placer = (*Greedy)(nil)
	_ Placer = (*Standard)(nil)
	_ Placer = (*Single)(nil)
	_ Placer = (*GoLeft)(nil)
	_ Placer = (*OnePlusBeta)(nil)
)
