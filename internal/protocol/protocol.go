// Package protocol implements the allocation protocols: the paper's
// Algorithm 1 (greedy d-choice with capacity tie-breaking) plus the
// baselines and extensions it is compared against.
//
// A Placer places balls into a bins.Array using a caller-supplied RNG,
// either one at a time (Place) or as a monomorphic batch loop
// (PlaceBatch) that the hot paths use to avoid per-ball interface
// dispatch. Placers are bound at construction to a fixed capacity vector
// and selection-weight vector (they pre-build alias tables), but they
// read ball counts live, so the same Placer can be reused across
// repetitions by resetting the array.
//
// Every placer holds its sampler as a concrete *sampling.AliasTable —
// not the sampling.Sampler interface — so the per-ball sampling call is
// direct and inlinable. One sample costs a single 64-bit RNG draw (the
// integer-threshold alias table). For a fixed seed the placement
// sequence of Place and PlaceBatch is identical: PlaceBatch(a, r, k)
// consumes exactly the draws of k Place(a, r) calls.
//
// All load comparisons are exact integer arithmetic via
// bins.ComparePostLoads — no floating point is involved in any placement
// decision.
package protocol

import (
	"fmt"

	"repro/internal/bins"
	"repro/internal/sampling"
	"repro/internal/xrand"
)

// Placer allocates balls.
type Placer interface {
	// Place chooses bins for one ball per the protocol, allocates the
	// ball into a, and returns the receiving bin's index.
	Place(a *bins.Array, r *xrand.Rand) int
	// PlaceBatch allocates k balls with the draw sequence of k Place
	// calls, but without per-ball interface dispatch: each protocol
	// runs a concrete, monomorphic loop.
	PlaceBatch(a *bins.Array, r *xrand.Rand, k int64)
	// Name identifies the protocol in reports.
	Name() string
}

// Factory builds a Placer for a specific array and selection weights.
// The simulation engine calls it once per repetition (or once per worker
// for fixed arrays).
type Factory func(a *bins.Array, weights []float64) (Placer, error)

// maxChoices bounds d to keep candidate buffers on the stack.
const maxChoices = 32

func validate(a *bins.Array, weights []float64, d int) error {
	if a == nil {
		return fmt.Errorf("protocol: nil array")
	}
	if len(weights) != a.N() {
		return fmt.Errorf("protocol: %d weights for %d bins", len(weights), a.N())
	}
	if d < 1 || d > maxChoices {
		return fmt.Errorf("protocol: d = %d outside [1,%d]", d, maxChoices)
	}
	return nil
}

// Greedy is the paper's Algorithm 1. For each ball it draws d candidate
// bins (independently, with the configured selection probabilities),
// keeps the candidates whose load after a hypothetical allocation would
// be smallest, removes from that set every bin whose capacity is below
// the set's maximum capacity, and finally picks uniformly among the
// survivors.
type Greedy struct {
	d     int
	table *sampling.AliasTable
}

// NewGreedy builds Algorithm 1 with d choices over the given weights.
func NewGreedy(a *bins.Array, weights []float64, d int) (*Greedy, error) {
	if err := validate(a, weights, d); err != nil {
		return nil, err
	}
	t, err := sampling.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("protocol: greedy sampler: %w", err)
	}
	return &Greedy{d: d, table: t}, nil
}

// Name implements Placer.
func (g *Greedy) Name() string { return fmt.Sprintf("greedy(d=%d)", g.d) }

// select2 resolves Algorithm 1's two-candidate decision from
// precomputed cross products l1 = (m1+1)·c2 and l2 = (m2+1)·c1 (steps
// 3-6: smaller post-load wins, capacity breaks post-load ties, the coin
// breaks full ties). It is a cascade of conditional moves, not
// branches: ties are common on class-structured arrays and their
// outcome is a coin toss the branch predictor would keep losing. Shared
// by the live-count (Greedy) and frozen-snapshot (Batched) kernels so
// the tie-break rule lives in exactly one place.
func select2(b1, b2 int, c1, c2, l1, l2 int64, coin bool) int {
	tieWin := b1
	if coin {
		tieWin = b2
	}
	capWin := b1
	if c2 > c1 {
		capWin = b2
	}
	if c2 == c1 {
		capWin = tieWin
	}
	win := b1
	if l2 < l1 {
		win = b2
	}
	if l2 == l1 {
		win = capWin
	}
	return win
}

// choose2 is the branch-lean d = 2 specialization of Algorithm 1. Both
// candidates come from one Sample2 draw and the tie-break coin is a
// second unconditional draw, so every ball consumes exactly two RNG
// advances regardless of outcome.
func (g *Greedy) choose2(a *bins.Array, r *xrand.Rand) int {
	b1, b2 := g.table.Sample2(r)
	coin := r.Uint64()&1 == 1
	if b1 == b2 {
		return b1
	}
	c1, c2 := a.Capacity(b1), a.Capacity(b2)
	l1 := (a.Balls(b1) + 1) * c2
	l2 := (a.Balls(b2) + 1) * c1
	return select2(b1, b2, c1, c2, l1, l2, coin)
}

// chooseGeneralFrom is the verbatim translation of Algorithm 1 for any
// d, shared by the sequential (frozen == nil: live ball counts) and
// batched (frozen: round-start snapshot) protocols so the candidate
// dedup and tie-break logic lives in one place. Candidate and survivor
// sets live in stack arrays (d <= maxChoices).
func chooseGeneralFrom(t *sampling.AliasTable, d int, frozen []int64, a *bins.Array, r *xrand.Rand) int {
	// Step 2: independently choose a set B of d bins. The d draws are
	// independent; duplicates collapse because B is a set.
	var cand [maxChoices]int
	nc := 0
	for i := 0; i < d; i++ {
		b := t.Sample(r)
		dup := false
		for _, c := range cand[:nc] {
			if c == b {
				dup = true
				break
			}
		}
		if !dup {
			cand[nc] = b
			nc++
		}
	}
	// Step 3: Bopt = bins minimising the post-allocation load.
	var opt [maxChoices]int
	opt[0] = cand[0]
	no := 1
	for _, b := range cand[1:nc] {
		var cmp int
		if frozen == nil {
			cmp = a.ComparePostLoads(b, opt[0])
		} else {
			cmp = compareFrozenPost(frozen, a, b, opt[0])
		}
		switch cmp {
		case -1:
			opt[0] = b
			no = 1
		case 0:
			opt[no] = b
			no++
		}
	}
	// Steps 4-5: keep only maximum-capacity members of Bopt.
	maxCap := a.Capacity(opt[0])
	for _, b := range opt[1:no] {
		if c := a.Capacity(b); c > maxCap {
			maxCap = c
		}
	}
	k := 0
	for _, b := range opt[:no] {
		if a.Capacity(b) == maxCap {
			opt[k] = b
			k++
		}
	}
	// Step 6: i.u.r. choice among the survivors.
	if k > 1 {
		return opt[r.Intn(k)]
	}
	return opt[0]
}

func (g *Greedy) chooseGeneral(a *bins.Array, r *xrand.Rand) int {
	return chooseGeneralFrom(g.table, g.d, nil, a, r)
}

// Place implements Placer.
func (g *Greedy) Place(a *bins.Array, r *xrand.Rand) int {
	var chosen int
	if g.d == 2 {
		chosen = g.choose2(a, r)
	} else {
		chosen = g.chooseGeneral(a, r)
	}
	a.Add(chosen)
	return chosen
}

// PlaceBatch implements Placer.
func (g *Greedy) PlaceBatch(a *bins.Array, r *xrand.Rand, k int64) {
	if g.d == 2 {
		for ; k > 0; k-- {
			a.Add(g.choose2(a, r))
		}
		return
	}
	for ; k > 0; k-- {
		a.Add(g.chooseGeneral(a, r))
	}
}

// Standard is the classical Azar et al. Greedy[d]: candidates are
// compared by *ball count* (not capacity-relative load) and ties are
// broken uniformly at random. With uniform capacities and uniform
// selection probabilities this is the standard d-choice game; it serves
// as the capacity-oblivious baseline for heterogeneous arrays.
type Standard struct {
	d     int
	table *sampling.AliasTable
}

// NewStandard builds the capacity-oblivious d-choice baseline.
func NewStandard(a *bins.Array, weights []float64, d int) (*Standard, error) {
	if err := validate(a, weights, d); err != nil {
		return nil, err
	}
	t, err := sampling.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("protocol: standard sampler: %w", err)
	}
	return &Standard{d: d, table: t}, nil
}

// Name implements Placer.
func (s *Standard) Name() string { return fmt.Sprintf("standard(d=%d)", s.d) }

// choose2 is the branch-lean d = 2 specialization: both candidates from
// one Sample2 draw, an unconditional coin draw, then a select cascade on
// the ball-count comparison (see Greedy.choose2 for the rationale).
func (s *Standard) choose2(a *bins.Array, r *xrand.Rand) int {
	b1, b2 := s.table.Sample2(r)
	coin := r.Uint64()&1 == 1
	if b1 == b2 {
		return b1
	}
	m1, m2 := a.Balls(b1), a.Balls(b2)
	tieWin := b1
	if coin {
		tieWin = b2
	}
	win := b1
	if m2 < m1 {
		win = b2
	}
	if m2 == m1 {
		win = tieWin
	}
	return win
}

func (s *Standard) chooseGeneral(a *bins.Array, r *xrand.Rand) int {
	var opt [maxChoices]int
	no := 0
	var best int64
	for i := 0; i < s.d; i++ {
		b := s.table.Sample(r)
		m := a.Balls(b)
		switch {
		case i == 0 || m < best:
			best = m
			opt[0] = b
			no = 1
		case m == best:
			dup := false
			for _, c := range opt[:no] {
				if c == b {
					dup = true
					break
				}
			}
			if !dup {
				opt[no] = b
				no++
			}
		}
	}
	if no > 1 {
		return opt[r.Intn(no)]
	}
	return opt[0]
}

// Place implements Placer.
func (s *Standard) Place(a *bins.Array, r *xrand.Rand) int {
	var chosen int
	if s.d == 2 {
		chosen = s.choose2(a, r)
	} else {
		chosen = s.chooseGeneral(a, r)
	}
	a.Add(chosen)
	return chosen
}

// PlaceBatch implements Placer.
func (s *Standard) PlaceBatch(a *bins.Array, r *xrand.Rand, k int64) {
	if s.d == 2 {
		for ; k > 0; k-- {
			a.Add(s.choose2(a, r))
		}
		return
	}
	for ; k > 0; k-- {
		a.Add(s.chooseGeneral(a, r))
	}
}

// Single places each ball into one randomly selected bin (d = 1): the
// no-choice baseline.
type Single struct {
	table *sampling.AliasTable
}

// NewSingle builds the single-choice baseline.
func NewSingle(a *bins.Array, weights []float64) (*Single, error) {
	if err := validate(a, weights, 1); err != nil {
		return nil, err
	}
	t, err := sampling.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("protocol: single sampler: %w", err)
	}
	return &Single{table: t}, nil
}

// Name implements Placer.
func (s *Single) Name() string { return "single" }

// Place implements Placer.
func (s *Single) Place(a *bins.Array, r *xrand.Rand) int {
	b := s.table.Sample(r)
	a.Add(b)
	return b
}

// PlaceBatch implements Placer.
func (s *Single) PlaceBatch(a *bins.Array, r *xrand.Rand, k int64) {
	for ; k > 0; k-- {
		a.Add(s.table.Sample(r))
	}
}

// GoLeft is Vöcking's Always-Go-Left d-choice protocol adapted to
// heterogeneous bins (an extension/ablation, not in the paper): the bins
// are split into d contiguous groups, each ball draws one candidate per
// group (weights restricted to the group), compares post-allocation loads
// exactly, and breaks ties towards the leftmost group instead of towards
// higher capacity.
type GoLeft struct {
	d       int
	offsets []int // start index of each group
	tables  []*sampling.AliasTable
}

// NewGoLeft builds the always-go-left placer. Each of the d groups must
// contain at least one bin with positive weight.
func NewGoLeft(a *bins.Array, weights []float64, d int) (*GoLeft, error) {
	if err := validate(a, weights, d); err != nil {
		return nil, err
	}
	n := a.N()
	if d > n {
		return nil, fmt.Errorf("protocol: go-left needs d <= n (%d > %d)", d, n)
	}
	g := &GoLeft{d: d}
	for k := 0; k < d; k++ {
		lo := k * n / d
		hi := (k + 1) * n / d
		t, err := sampling.NewAlias(weights[lo:hi])
		if err != nil {
			return nil, fmt.Errorf("protocol: go-left group %d: %w", k, err)
		}
		g.offsets = append(g.offsets, lo)
		g.tables = append(g.tables, t)
	}
	return g, nil
}

// Name implements Placer.
func (g *GoLeft) Name() string { return fmt.Sprintf("goleft(d=%d)", g.d) }

func (g *GoLeft) choose(a *bins.Array, r *xrand.Rand) int {
	best := g.offsets[0] + g.tables[0].Sample(r)
	for k := 1; k < g.d; k++ {
		b := g.offsets[k] + g.tables[k].Sample(r)
		// strictly smaller post-load wins; ties keep the leftmost group.
		if a.ComparePostLoads(b, best) < 0 {
			best = b
		}
	}
	return best
}

// Place implements Placer.
func (g *GoLeft) Place(a *bins.Array, r *xrand.Rand) int {
	best := g.choose(a, r)
	a.Add(best)
	return best
}

// PlaceBatch implements Placer.
func (g *GoLeft) PlaceBatch(a *bins.Array, r *xrand.Rand, k int64) {
	for ; k > 0; k-- {
		a.Add(g.choose(a, r))
	}
}

// OnePlusBeta is Mitzenmacher's (1+β)-choice process adapted to the
// heterogeneous setting (extension): with probability beta a ball runs
// Algorithm 1 with d = 2, otherwise it places single-choice. It
// interpolates between d=1 and d=2 probe cost.
type OnePlusBeta struct {
	beta   float64
	greedy *Greedy
	single *Single
}

// NewOnePlusBeta builds the (1+β) placer for beta in [0, 1].
func NewOnePlusBeta(a *bins.Array, weights []float64, beta float64) (*OnePlusBeta, error) {
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("protocol: beta = %v outside [0,1]", beta)
	}
	g, err := NewGreedy(a, weights, 2)
	if err != nil {
		return nil, err
	}
	s, err := NewSingle(a, weights)
	if err != nil {
		return nil, err
	}
	return &OnePlusBeta{beta: beta, greedy: g, single: s}, nil
}

// Name implements Placer.
func (p *OnePlusBeta) Name() string { return fmt.Sprintf("oneplusbeta(b=%g)", p.beta) }

// Place implements Placer.
func (p *OnePlusBeta) Place(a *bins.Array, r *xrand.Rand) int {
	if r.Bernoulli(p.beta) {
		return p.greedy.Place(a, r)
	}
	return p.single.Place(a, r)
}

// PlaceBatch implements Placer. Place is already a direct call on the
// concrete receiver (p.greedy and p.single are concrete fields), so the
// loop is monomorphic as-is.
func (p *OnePlusBeta) PlaceBatch(a *bins.Array, r *xrand.Rand, k int64) {
	for ; k > 0; k-- {
		p.Place(a, r)
	}
}

// GreedyFactory returns a Factory for Algorithm 1 with d choices.
func GreedyFactory(d int) Factory {
	return func(a *bins.Array, w []float64) (Placer, error) { return NewGreedy(a, w, d) }
}

// StandardFactory returns a Factory for the capacity-oblivious baseline.
func StandardFactory(d int) Factory {
	return func(a *bins.Array, w []float64) (Placer, error) { return NewStandard(a, w, d) }
}

// SingleFactory returns a Factory for the single-choice baseline.
func SingleFactory() Factory {
	return func(a *bins.Array, w []float64) (Placer, error) { return NewSingle(a, w) }
}

// GoLeftFactory returns a Factory for always-go-left with d groups.
func GoLeftFactory(d int) Factory {
	return func(a *bins.Array, w []float64) (Placer, error) { return NewGoLeft(a, w, d) }
}

// OnePlusBetaFactory returns a Factory for the (1+β) process.
func OnePlusBetaFactory(beta float64) Factory {
	return func(a *bins.Array, w []float64) (Placer, error) { return NewOnePlusBeta(a, w, beta) }
}

var (
	_ Placer = (*Greedy)(nil)
	_ Placer = (*Standard)(nil)
	_ Placer = (*Single)(nil)
	_ Placer = (*GoLeft)(nil)
	_ Placer = (*OnePlusBeta)(nil)
)
