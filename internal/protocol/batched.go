package protocol

import (
	"fmt"

	"repro/internal/bins"
	"repro/internal/sampling"
	"repro/internal/xrand"
)

// Batched wraps Algorithm 1 in the parallel batch-arrival model: balls
// arrive in rounds of B, and every ball in a round makes its decision
// against the loads *frozen at the start of the round* (it cannot see
// concurrent placements). B = 1 is exactly the sequential Algorithm 1;
// B = m is fully oblivious single-shot placement.
//
// This models distributed dispatchers placing requests concurrently with
// stale load information — the standard "batched balls-into-bins"
// relaxation — and is an extension beyond the paper, used by the
// ext-batch experiment to show how gracefully Algorithm 1 degrades with
// staleness.
type Batched struct {
	d       int
	batch   int
	sampler sampling.Sampler
	frozen  []int64 // ball counts at round start
	inRound int
	cand    []int
	opt     []int
}

// NewBatched builds a batched Algorithm 1 placer with round size batch.
func NewBatched(a *bins.Array, weights []float64, d, batch int) (*Batched, error) {
	if err := validate(a, weights, d); err != nil {
		return nil, err
	}
	if batch < 1 {
		return nil, fmt.Errorf("protocol: batch = %d", batch)
	}
	s, err := sampling.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("protocol: batched sampler: %w", err)
	}
	return &Batched{
		d:       d,
		batch:   batch,
		sampler: s,
		frozen:  make([]int64, a.N()),
		inRound: 0,
		cand:    make([]int, 0, d),
		opt:     make([]int, 0, d),
	}, nil
}

// Name implements Placer.
func (b *Batched) Name() string {
	return fmt.Sprintf("batched-greedy(d=%d,B=%d)", b.d, b.batch)
}

// Place implements Placer: Algorithm 1 decisions against the frozen
// snapshot, refreshed every batch placements.
func (b *Batched) Place(a *bins.Array, r *xrand.Rand) int {
	if b.inRound == 0 {
		for i := 0; i < a.N(); i++ {
			b.frozen[i] = a.Balls(i)
		}
	}
	b.inRound++
	if b.inRound == b.batch {
		b.inRound = 0
	}

	b.cand = b.cand[:0]
	for i := 0; i < b.d; i++ {
		c := b.sampler.Sample(r)
		dup := false
		for _, e := range b.cand {
			if e == c {
				dup = true
				break
			}
		}
		if !dup {
			b.cand = append(b.cand, c)
		}
	}
	// Bopt on frozen counts
	b.opt = append(b.opt[:0], b.cand[0])
	for _, c := range b.cand[1:] {
		cmp := compareFrozenPost(b.frozen, a, c, b.opt[0])
		switch {
		case cmp < 0:
			b.opt = append(b.opt[:0], c)
		case cmp == 0:
			b.opt = append(b.opt, c)
		}
	}
	maxCap := a.Capacity(b.opt[0])
	for _, c := range b.opt[1:] {
		if v := a.Capacity(c); v > maxCap {
			maxCap = v
		}
	}
	k := 0
	for _, c := range b.opt {
		if a.Capacity(c) == maxCap {
			b.opt[k] = c
			k++
		}
	}
	b.opt = b.opt[:k]
	chosen := b.opt[0]
	if len(b.opt) > 1 {
		chosen = b.opt[r.Intn(len(b.opt))]
	}
	a.Add(chosen)
	return chosen
}

// compareFrozenPost compares (frozen_i+1)/c_i against (frozen_j+1)/c_j
// exactly.
func compareFrozenPost(frozen []int64, a *bins.Array, i, j int) int {
	lhs := (frozen[i] + 1) * a.Capacity(j)
	rhs := (frozen[j] + 1) * a.Capacity(i)
	switch {
	case lhs < rhs:
		return -1
	case lhs > rhs:
		return 1
	default:
		return 0
	}
}

// Reset clears the round state so the next Place starts a fresh round.
// The simulation engine calls this automatically between repetitions on
// any placer that implements it.
func (b *Batched) Reset() {
	b.inRound = 0
	for i := range b.frozen {
		b.frozen[i] = 0
	}
}

// BatchedFactory returns a Factory for the batched protocol.
func BatchedFactory(d, batch int) Factory {
	return func(a *bins.Array, w []float64) (Placer, error) { return NewBatched(a, w, d, batch) }
}

var _ Placer = (*Batched)(nil)
