package protocol

import (
	"fmt"

	"repro/internal/bins"
	"repro/internal/sampling"
	"repro/internal/xrand"
)

// Batched wraps Algorithm 1 in the parallel batch-arrival model: balls
// arrive in rounds of B, and every ball in a round makes its decision
// against the loads *frozen at the start of the round* (it cannot see
// concurrent placements). B = 1 is exactly the sequential Algorithm 1;
// B = m is fully oblivious single-shot placement.
//
// This models distributed dispatchers placing requests concurrently with
// stale load information — the standard "batched balls-into-bins"
// relaxation — and is an extension beyond the paper, used by the
// ext-batch experiment to show how gracefully Algorithm 1 degrades with
// staleness.
type Batched struct {
	d       int
	batch   int
	table   *sampling.AliasTable
	frozen  []int64 // ball counts at round start
	inRound int
}

// NewBatched builds a batched Algorithm 1 placer with round size batch.
func NewBatched(a *bins.Array, weights []float64, d, batch int) (*Batched, error) {
	if err := validate(a, weights, d); err != nil {
		return nil, err
	}
	if batch < 1 {
		return nil, fmt.Errorf("protocol: batch = %d", batch)
	}
	t, err := sampling.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("protocol: batched sampler: %w", err)
	}
	return &Batched{
		d:      d,
		batch:  batch,
		table:  t,
		frozen: make([]int64, a.N()),
	}, nil
}

// Name implements Placer.
func (b *Batched) Name() string {
	return fmt.Sprintf("batched-greedy(d=%d,B=%d)", b.d, b.batch)
}

// choose runs Algorithm 1 against the frozen snapshot, refreshing it
// every batch placements, and returns the receiving bin.
func (b *Batched) choose(a *bins.Array, r *xrand.Rand) int {
	if b.inRound == 0 {
		for i := 0; i < a.N(); i++ {
			b.frozen[i] = a.Balls(i)
		}
	}
	b.inRound++
	if b.inRound == b.batch {
		b.inRound = 0
	}
	if b.d == 2 {
		return b.choose2(a, r)
	}
	return b.chooseGeneral(a, r)
}

// choose2 mirrors Greedy.choose2 (same draw sequence, so B = 1
// reproduces the sequential protocol ball for ball) but compares against
// the frozen snapshot.
func (b *Batched) choose2(a *bins.Array, r *xrand.Rand) int {
	b1, b2 := b.table.Sample2(r)
	coin := r.Uint64()&1 == 1
	if b1 == b2 {
		return b1
	}
	c1, c2 := a.Capacity(b1), a.Capacity(b2)
	l1 := (b.frozen[b1] + 1) * c2
	l2 := (b.frozen[b2] + 1) * c1
	return select2(b1, b2, c1, c2, l1, l2, coin)
}

func (b *Batched) chooseGeneral(a *bins.Array, r *xrand.Rand) int {
	return chooseGeneralFrom(b.table, b.d, b.frozen, a, r)
}

// Place implements Placer.
func (b *Batched) Place(a *bins.Array, r *xrand.Rand) int {
	chosen := b.choose(a, r)
	a.Add(chosen)
	return chosen
}

// PlaceBatch implements Placer.
func (b *Batched) PlaceBatch(a *bins.Array, r *xrand.Rand, k int64) {
	for ; k > 0; k-- {
		a.Add(b.choose(a, r))
	}
}

// compareFrozenPost compares (frozen_i+1)/c_i against (frozen_j+1)/c_j
// exactly.
func compareFrozenPost(frozen []int64, a *bins.Array, i, j int) int {
	lhs := (frozen[i] + 1) * a.Capacity(j)
	rhs := (frozen[j] + 1) * a.Capacity(i)
	switch {
	case lhs < rhs:
		return -1
	case lhs > rhs:
		return 1
	default:
		return 0
	}
}

// Reset clears the round state so the next Place starts a fresh round.
// The simulation engine calls this automatically between repetitions on
// any placer that implements it.
func (b *Batched) Reset() {
	b.inRound = 0
	for i := range b.frozen {
		b.frozen[i] = 0
	}
}

// BatchedFactory returns a Factory for the batched protocol.
func BatchedFactory(d, batch int) Factory {
	return func(a *bins.Array, w []float64) (Placer, error) { return NewBatched(a, w, d, batch) }
}

var _ Placer = (*Batched)(nil)
