// Package gnuplot renders plotting scripts for experiment TSV files, so
// a results directory regenerates the paper's figures as images with a
// single `gnuplot *.gp` invocation. Only script text is produced; this
// repository never executes external tools.
package gnuplot

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/table"
)

// Options tune the emitted script.
type Options struct {
	// Terminal is the gnuplot terminal line (default
	// "pngcairo size 900,600").
	Terminal string
	// Output is the image file name (default: DataFile with .png).
	Output string
	// XCol is the 1-based data column used for x (default 1).
	XCol int
	// Style is the plot style (default "linespoints").
	Style string
	// LogY switches the y axis to log scale.
	LogY bool
}

func (o Options) terminal() string {
	if o.Terminal == "" {
		return "pngcairo size 900,600"
	}
	return o.Terminal
}

func (o Options) xcol() int {
	if o.XCol <= 0 {
		return 1
	}
	return o.XCol
}

func (o Options) style() string {
	if o.Style == "" {
		return "linespoints"
	}
	return o.Style
}

// Script writes a gnuplot script that plots every non-x column of tab
// (read from dataFile) against the x column.
func Script(w io.Writer, tab *table.Table, dataFile string, opts Options) error {
	if len(tab.Cols) < 2 {
		return fmt.Errorf("gnuplot: table %q has %d columns, need >= 2", tab.Title, len(tab.Cols))
	}
	x := opts.xcol()
	if x > len(tab.Cols) {
		return fmt.Errorf("gnuplot: x column %d out of range", x)
	}
	out := opts.Output
	if out == "" {
		out = strings.TrimSuffix(dataFile, ".tsv") + ".png"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "set terminal %s\n", opts.terminal())
	fmt.Fprintf(&sb, "set output %q\n", out)
	fmt.Fprintf(&sb, "set title %q noenhanced\n", tab.Title)
	fmt.Fprintf(&sb, "set xlabel %q noenhanced\n", tab.Cols[x-1])
	fmt.Fprintf(&sb, "set key outside right\n")
	fmt.Fprintf(&sb, "set grid\n")
	if opts.LogY {
		fmt.Fprintf(&sb, "set logscale y\n")
	}
	var plots []string
	for c := 1; c <= len(tab.Cols); c++ {
		if c == x {
			continue
		}
		plots = append(plots, fmt.Sprintf("%q using %d:%d with %s title %q noenhanced",
			dataFile, x, c, opts.style(), tab.Cols[c-1]))
	}
	fmt.Fprintf(&sb, "plot %s\n", strings.Join(plots, ", \\\n     "))
	_, err := io.WriteString(w, sb.String())
	return err
}
