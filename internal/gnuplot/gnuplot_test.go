package gnuplot

import (
	"strings"
	"testing"

	"repro/internal/table"
)

func sample() *table.Table {
	t := table.New("Figure X: something", "pct", "max_load", "ci")
	t.MustAddRow(0, 3, 0.1)
	t.MustAddRow(50, 2, 0.1)
	return t
}

func TestScriptBasics(t *testing.T) {
	var sb strings.Builder
	if err := Script(&sb, sample(), "fig.tsv", Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		`set terminal pngcairo`,
		`set output "fig.png"`,
		`set title "Figure X: something"`,
		`set xlabel "pct"`,
		`using 1:2 with linespoints title "max_load"`,
		`using 1:3 with linespoints title "ci"`,
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("script missing %q:\n%s", frag, out)
		}
	}
}

func TestScriptOptions(t *testing.T) {
	var sb strings.Builder
	err := Script(&sb, sample(), "data.tsv", Options{
		Terminal: "svg",
		Output:   "custom.svg",
		XCol:     2,
		Style:    "lines",
		LogY:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"set terminal svg",
		`set output "custom.svg"`,
		`set xlabel "max_load"`,
		"set logscale y",
		"using 2:1 with lines",
		"using 2:3 with lines",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("script missing %q:\n%s", frag, out)
		}
	}
	// x column itself is not plotted
	if strings.Contains(out, "using 2:2") {
		t.Fatal("x column plotted against itself")
	}
}

func TestScriptErrors(t *testing.T) {
	one := table.New("t", "only")
	var sb strings.Builder
	if err := Script(&sb, one, "f.tsv", Options{}); err == nil {
		t.Error("single-column table accepted")
	}
	if err := Script(&sb, sample(), "f.tsv", Options{XCol: 9}); err == nil {
		t.Error("out-of-range x column accepted")
	}
}
