// Package core assembles the paper's primary contribution into a single
// runnable object: a heterogeneous bin array (internal/bins), a selection
// distribution over it (internal/dist), and an allocation protocol
// (internal/protocol — Algorithm 1 by default), driven by a deterministic
// RNG (internal/xrand).
//
// The public facade (package balls at the repository root) wraps a
// core.Game; the Monte-Carlo engine (internal/sim) re-implements the same
// loop with per-repetition streams for parallel aggregation.
package core

import (
	"fmt"

	"repro/internal/bins"
	"repro/internal/dist"
	"repro/internal/protocol"
	"repro/internal/xrand"
)

// Game is one live balls-into-non-uniform-bins game.
type Game struct {
	arr    *bins.Array
	placer protocol.Placer
	rng    *xrand.Rand
	seed   uint64
	dist   dist.Distribution
}

// Options configure a Game; zero values select the paper's defaults.
type Options struct {
	// Dist is the selection distribution (nil = capacity-proportional).
	Dist dist.Distribution
	// Placer builds the protocol (nil = Algorithm 1 with d = 2).
	Placer protocol.Factory
	// Seed seeds the RNG (0 is a valid, fixed seed).
	Seed uint64
}

// NewGame builds a game over the given capacities.
func NewGame(capacities []int64, opts Options) (*Game, error) {
	arr, err := bins.New(capacities)
	if err != nil {
		return nil, err
	}
	d := opts.Dist
	if d == nil {
		d = dist.Proportional{}
	}
	weights, err := d.Weights(arr)
	if err != nil {
		return nil, err
	}
	factory := opts.Placer
	if factory == nil {
		factory = protocol.GreedyFactory(2)
	}
	placer, err := factory(arr, weights)
	if err != nil {
		return nil, err
	}
	return &Game{
		arr:    arr,
		placer: placer,
		rng:    xrand.New(opts.Seed),
		seed:   opts.Seed,
		dist:   d,
	}, nil
}

// Place allocates one ball, returning the receiving bin.
func (g *Game) Place() int { return g.placer.Place(g.arr, g.rng) }

// PlaceN allocates m balls through the protocol's batch kernel: one
// interface dispatch for the whole batch, a monomorphic loop inside.
func (g *Game) PlaceN(m int64) {
	g.placer.PlaceBatch(g.arr, g.rng, m)
}

// Array exposes the underlying bin array (read it, don't mutate it
// outside Place — the placer's correctness depends on consistent state).
func (g *Game) Array() *bins.Array { return g.arr }

// Reset clears all balls, reseeds the RNG, and resets any protocol state
// so the next run replays the first one exactly.
func (g *Game) Reset() {
	g.arr.Reset()
	g.rng.Seed(g.seed)
	if rp, ok := g.placer.(interface{ Reset() }); ok {
		rp.Reset()
	}
}

// ProtocolName reports the protocol.
func (g *Game) ProtocolName() string { return g.placer.Name() }

// DistributionName reports the selection distribution.
func (g *Game) DistributionName() string { return g.dist.Name() }

// String summarises the game state.
func (g *Game) String() string {
	return fmt.Sprintf("core.Game{n=%d C=%d m=%d protocol=%s dist=%s}",
		g.arr.N(), g.arr.TotalCapacity(), g.arr.TotalBalls(),
		g.placer.Name(), g.dist.Name())
}
