package core

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/protocol"
)

func TestNewGameValidation(t *testing.T) {
	if _, err := NewGame(nil, Options{}); err == nil {
		t.Error("empty capacities accepted")
	}
	if _, err := NewGame([]int64{0}, Options{}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewGame([]int64{1, 2}, Options{Dist: dist.TopOnly{MinCapacity: 99}}); err == nil {
		t.Error("impossible distribution accepted")
	}
	if _, err := NewGame([]int64{1, 2}, Options{Placer: protocol.GreedyFactory(0)}); err == nil {
		t.Error("bad protocol accepted")
	}
}

func TestGameDefaults(t *testing.T) {
	g, err := NewGame([]int64{1, 2, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.ProtocolName() != "greedy(d=2)" {
		t.Fatalf("default protocol %q", g.ProtocolName())
	}
	if g.DistributionName() != "proportional" {
		t.Fatalf("default distribution %q", g.DistributionName())
	}
}

func TestGamePlaceAndReset(t *testing.T) {
	g, err := NewGame([]int64{1, 1, 4}, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	g.PlaceN(12)
	if g.Array().TotalBalls() != 12 {
		t.Fatalf("TotalBalls = %d", g.Array().TotalBalls())
	}
	first := g.Array().LoadVector()
	g.Reset()
	if g.Array().TotalBalls() != 0 {
		t.Fatal("Reset did not clear")
	}
	g.PlaceN(12)
	second := g.Array().LoadVector()
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("Reset replay diverged")
		}
	}
}

func TestGameResetClearsBatchedState(t *testing.T) {
	g, err := NewGame([]int64{1, 1, 1, 1}, Options{
		Placer: protocol.BatchedFactory(2, 3),
		Seed:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.PlaceN(4) // mid-round
	g.Reset()
	g.PlaceN(4)
	first := g.Array().LoadVector()
	g.Reset()
	g.PlaceN(4)
	second := g.Array().LoadVector()
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("batched state leaked across Reset")
		}
	}
}

func TestGameString(t *testing.T) {
	g, err := NewGame([]int64{2, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := g.String()
	for _, frag := range []string{"n=2", "C=4", "greedy", "proportional"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}
