// Package tsv reads the TSV files written by table.WriteTSV back into
// tables and compares result sets with numeric tolerances. It powers
// cmd/bnbdiff, the regression checker for reproduction runs: re-run the
// figures, diff against a stored results/ directory, and alert on any
// series that moved beyond noise.
package tsv

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/table"
)

// Parse reads one table from TSV produced by table.WriteTSV. The first
// '#' line is the title, subsequent '#' lines except the last are the
// comment, the final '#' line is the header.
func Parse(r io.Reader) (*table.Table, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var meta []string
	var rows [][]float64
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if len(rows) > 0 {
				return nil, fmt.Errorf("tsv: comment line after data rows")
			}
			meta = append(meta, strings.TrimSpace(strings.TrimPrefix(line, "#")))
			continue
		}
		fields := strings.Split(line, "\t")
		row := make([]float64, len(fields))
		for i, f := range fields {
			f = strings.TrimSpace(f)
			if f == "nan" {
				row[i] = math.NaN()
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("tsv: bad number %q: %v", f, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(meta) < 2 {
		return nil, fmt.Errorf("tsv: missing title or header (need >= 2 '#' lines)")
	}
	title := meta[0]
	header := meta[len(meta)-1]
	comment := strings.Join(meta[1:len(meta)-1], "\n")
	cols := strings.Split(header, "\t")
	t := table.New(title, cols...)
	t.Comment = comment
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, fmt.Errorf("tsv: %v (header has %d columns)", err, len(cols))
		}
	}
	return t, nil
}

// ParseFile reads one table from a TSV file.
func ParseFile(path string) (*table.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// Tolerance bounds an acceptable numeric difference: a value passes when
// |a−b| <= Abs + Rel·max(|a|,|b|).
type Tolerance struct {
	Abs float64
	Rel float64
}

// Within reports whether a and b agree within the tolerance. NaNs agree
// only with NaNs.
func (tol Tolerance) Within(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	diff := math.Abs(a - b)
	return diff <= tol.Abs+tol.Rel*math.Max(math.Abs(a), math.Abs(b))
}

// Diff describes one difference between two tables.
type Diff struct {
	Kind     string // "structure" or "value"
	Detail   string
	Row, Col int // value diffs only; -1 otherwise
}

func (d Diff) String() string {
	if d.Kind == "value" {
		return fmt.Sprintf("row %d col %d: %s", d.Row, d.Col, d.Detail)
	}
	return d.Detail
}

// Compare returns all differences between two tables under tol.
// Structural mismatches (columns, row counts) short-circuit value
// comparison.
func Compare(a, b *table.Table, tol Tolerance) []Diff {
	var diffs []Diff
	if len(a.Cols) != len(b.Cols) {
		return []Diff{{Kind: "structure", Row: -1, Col: -1,
			Detail: fmt.Sprintf("column counts differ: %d vs %d", len(a.Cols), len(b.Cols))}}
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			diffs = append(diffs, Diff{Kind: "structure", Row: -1, Col: i,
				Detail: fmt.Sprintf("column %d named %q vs %q", i, a.Cols[i], b.Cols[i])})
		}
	}
	if len(diffs) > 0 {
		return diffs
	}
	if a.NumRows() != b.NumRows() {
		return []Diff{{Kind: "structure", Row: -1, Col: -1,
			Detail: fmt.Sprintf("row counts differ: %d vs %d", a.NumRows(), b.NumRows())}}
	}
	for r := 0; r < a.NumRows(); r++ {
		ra, rb := a.Row(r), b.Row(r)
		for c := range ra {
			if !tol.Within(ra[c], rb[c]) {
				diffs = append(diffs, Diff{
					Kind: "value", Row: r, Col: c,
					Detail: fmt.Sprintf("%s: %g vs %g", a.Cols[c], ra[c], rb[c]),
				})
			}
		}
	}
	return diffs
}
