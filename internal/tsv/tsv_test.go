package tsv

import (
	"math"
	"strings"
	"testing"

	"repro/internal/table"
)

func roundTrip(t *testing.T, tab *table.Table) *table.Table {
	t.Helper()
	var sb strings.Builder
	if err := tab.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("Parse: %v\ninput:\n%s", err, sb.String())
	}
	return got
}

func TestRoundTrip(t *testing.T) {
	tab := table.New("My Figure", "x", "y")
	tab.Comment = "some context"
	tab.MustAddRow(1, 2.5)
	tab.MustAddRow(10, 3)
	got := roundTrip(t, tab)
	if got.Title != "My Figure" {
		t.Fatalf("title %q", got.Title)
	}
	if got.Comment != "some context" {
		t.Fatalf("comment %q", got.Comment)
	}
	if len(got.Cols) != 2 || got.Cols[0] != "x" || got.Cols[1] != "y" {
		t.Fatalf("cols %v", got.Cols)
	}
	if got.NumRows() != 2 {
		t.Fatalf("rows %d", got.NumRows())
	}
	if got.Row(0)[1] != 2.5 || got.Row(1)[0] != 10 {
		t.Fatalf("values %v %v", got.Row(0), got.Row(1))
	}
}

func TestRoundTripNoComment(t *testing.T) {
	tab := table.New("T", "a")
	tab.MustAddRow(math.NaN())
	got := roundTrip(t, tab)
	if got.Comment != "" {
		t.Fatalf("comment %q", got.Comment)
	}
	if !math.IsNaN(got.Row(0)[0]) {
		t.Fatal("NaN lost in round trip")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                              // no metadata
		"# title only\n",                // missing header
		"# t\n# h\nnot-a-number",        // bad cell
		"# t\n# a\tb\n1\n",              // arity mismatch
		"# t\n# h\n1\n# late comment\n", // comment after data
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile("/nonexistent/file.tsv"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestToleranceWithin(t *testing.T) {
	tol := Tolerance{Abs: 0.1, Rel: 0.01}
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{1, 1.05, true},    // abs covers
		{100, 100.9, true}, // rel covers
		{100, 102, false},  // 2 > 0.1 + 1.02
		{0, 0.05, true},
		{0, 0.2, false},
		{math.NaN(), math.NaN(), true},
		{math.NaN(), 1, false},
		{1, math.NaN(), false},
	}
	for _, c := range cases {
		if got := tol.Within(c.a, c.b); got != c.want {
			t.Errorf("Within(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareIdentical(t *testing.T) {
	tab := table.New("T", "a", "b")
	tab.MustAddRow(1, 2)
	if diffs := Compare(tab, tab, Tolerance{}); len(diffs) != 0 {
		t.Fatalf("self-compare diffs: %v", diffs)
	}
}

func TestCompareStructural(t *testing.T) {
	a := table.New("T", "a", "b")
	b := table.New("T", "a")
	diffs := Compare(a, b, Tolerance{})
	if len(diffs) != 1 || diffs[0].Kind != "structure" {
		t.Fatalf("diffs %v", diffs)
	}
	c := table.New("T", "a", "zzz")
	diffs = Compare(a, c, Tolerance{})
	if len(diffs) != 1 || !strings.Contains(diffs[0].Detail, "zzz") {
		t.Fatalf("diffs %v", diffs)
	}
	a.MustAddRow(1, 2)
	d := table.New("T", "a", "b")
	diffs = Compare(a, d, Tolerance{})
	if len(diffs) != 1 || !strings.Contains(diffs[0].Detail, "row counts") {
		t.Fatalf("diffs %v", diffs)
	}
}

func TestCompareValues(t *testing.T) {
	a := table.New("T", "x", "y")
	a.MustAddRow(1, 10)
	a.MustAddRow(2, 20)
	b := table.New("T", "x", "y")
	b.MustAddRow(1, 10.001)
	b.MustAddRow(2, 25)
	diffs := Compare(a, b, Tolerance{Abs: 0.01})
	if len(diffs) != 1 {
		t.Fatalf("diffs %v", diffs)
	}
	if diffs[0].Row != 1 || diffs[0].Col != 1 {
		t.Fatalf("diff location %+v", diffs[0])
	}
	if s := diffs[0].String(); !strings.Contains(s, "row 1") {
		t.Fatalf("String() = %q", s)
	}
	// looser tolerance passes
	if diffs := Compare(a, b, Tolerance{Abs: 10}); len(diffs) != 0 {
		t.Fatalf("loose compare diffs: %v", diffs)
	}
}
