// Package tune searches for good bin-selection probability distributions
// — the paper's closing future-work item ("it would be interesting to
// further analyse the problem of choosing the best probability
// distribution for a given heterogeneous bin array").
//
// Two searches are provided. OptimalExponent restricts the search to the
// paper's §4.5 power family p_i ∝ c_i^t and minimises the Monte-Carlo
// mean maximum load over t by iterative grid refinement (robust to
// simulation noise, unlike golden-section on a noisy objective).
// OptimalClassWeights searches the full simplex over capacity *classes*
// (bins of equal capacity share a weight) by coordinate descent, which
// for the paper's two-class arrays recovers and slightly beats the best
// power exponent.
package tune

import (
	"fmt"
	"math"

	"repro/internal/bins"
	"repro/internal/dist"
	"repro/internal/sim"
)

// Config controls the simulation budget of a search.
type Config struct {
	// Balls per repetition; 0 means m = C.
	Balls int64
	// Reps per objective evaluation (default 500).
	Reps int
	// Seed for the underlying simulations (default 1). Every objective
	// evaluation uses the same seed, making the objective a
	// deterministic function and the search reproducible.
	Seed uint64
	// Workers caps parallelism (0 = GOMAXPROCS).
	Workers int
	// D is the number of choices (default 2).
	D int
	// Engine selects the simulation engine objective evaluations
	// dispatch through ("" = auto).
	Engine sim.Engine
	// Shards overrides the sharded engine's shard count (0 =
	// sim.DefaultShards).
	Shards int
}

func (c Config) reps() int {
	if c.Reps <= 0 {
		return 500
	}
	return c.Reps
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// EvaluateExponent returns the mean maximum load of the game with
// selection probabilities ∝ c^t.
func EvaluateExponent(caps []int64, t float64, cfg Config) (float64, error) {
	arr, err := bins.New(caps)
	if err != nil {
		return 0, err
	}
	res, err := sim.Dispatch(sim.RunSpec{
		Config: sim.Config{
			Array:   arr,
			Dist:    dist.Power{T: t},
			Balls:   cfg.Balls,
			Reps:    cfg.reps(),
			Seed:    cfg.seed(),
			Workers: cfg.Workers,
			Placer:  nil, // Algorithm 1, d = 2 default
		},
		Engine: cfg.Engine,
		Shards: cfg.Shards,
	})
	if err != nil {
		return 0, err
	}
	return res.MaxLoad.Mean(), nil
}

// ExponentResult is the outcome of OptimalExponent.
type ExponentResult struct {
	// T is the best exponent found.
	T float64
	// MaxLoad is the objective at T.
	MaxLoad float64
	// AtProportional is the objective at t = 1 for comparison.
	AtProportional float64
	// Evaluations counts objective evaluations spent.
	Evaluations int
}

// OptimalExponent minimises the mean max load over t in [lo, hi] using
// `rounds` rounds of grid refinement with `points` grid points each.
// Because the objective is Monte-Carlo noise over a shallow bowl, grid
// refinement with a fixed seed (a deterministic objective) is both
// reproducible and robust.
func OptimalExponent(caps []int64, lo, hi float64, cfg Config) (*ExponentResult, error) {
	if !(hi > lo) {
		return nil, fmt.Errorf("tune: bad exponent range [%v, %v]", lo, hi)
	}
	const (
		rounds = 3
		points = 9
	)
	res := &ExponentResult{}
	atOne := math.NaN()
	bestT, bestV := lo, math.Inf(1)
	curLo, curHi := lo, hi
	for round := 0; round < rounds; round++ {
		step := (curHi - curLo) / float64(points-1)
		for i := 0; i < points; i++ {
			t := curLo + float64(i)*step
			v, err := EvaluateExponent(caps, t, cfg)
			if err != nil {
				return nil, err
			}
			res.Evaluations++
			if v < bestV {
				bestT, bestV = t, v
			}
			if math.Abs(t-1) < 1e-9 {
				atOne = v
			}
		}
		// zoom into ±1 step around the incumbent
		curLo = math.Max(lo, bestT-step)
		curHi = math.Min(hi, bestT+step)
	}
	if math.IsNaN(atOne) {
		v, err := EvaluateExponent(caps, 1, cfg)
		if err != nil {
			return nil, err
		}
		res.Evaluations++
		atOne = v
	}
	res.T = bestT
	res.MaxLoad = bestV
	res.AtProportional = atOne
	return res, nil
}

// ClassWeightsResult is the outcome of OptimalClassWeights.
type ClassWeightsResult struct {
	// Classes lists the distinct capacities in ascending order.
	Classes []int64
	// Weights holds the per-class selection weight (per bin of the
	// class, normalised so the largest class weight is 1).
	Weights []float64
	// MaxLoad is the objective at the returned weights.
	MaxLoad float64
	// Evaluations counts objective evaluations spent.
	Evaluations int
}

// OptimalClassWeights searches per-class selection weights by cyclic
// coordinate descent on a log-scale grid. All bins of one capacity class
// share a weight; the search multiplies one class weight at a time by
// factors from a shrinking palette and keeps improvements.
func OptimalClassWeights(caps []int64, cfg Config) (*ClassWeightsResult, error) {
	arr, err := bins.New(caps)
	if err != nil {
		return nil, err
	}
	classes := arr.CapacityClasses()
	if len(classes) == 1 {
		// one class: weights don't matter
		v, err := evaluateClassWeights(arr, classes, []float64{1}, cfg)
		if err != nil {
			return nil, err
		}
		return &ClassWeightsResult{Classes: classes, Weights: []float64{1}, MaxLoad: v, Evaluations: 1}, nil
	}
	// start from proportional weights
	weights := make([]float64, len(classes))
	for i, c := range classes {
		weights[i] = float64(c)
	}
	best, err := evaluateClassWeights(arr, classes, weights, cfg)
	if err != nil {
		return nil, err
	}
	evals := 1
	factors := []float64{4, 2, 1.5, 1.2, 1.1}
	for _, f := range factors {
		improved := true
		for pass := 0; improved && pass < 4; pass++ {
			improved = false
			for ci := range classes {
				for _, mult := range []float64{f, 1 / f} {
					trial := append([]float64(nil), weights...)
					trial[ci] *= mult
					v, err := evaluateClassWeights(arr, classes, trial, cfg)
					if err != nil {
						return nil, err
					}
					evals++
					if v < best-1e-9 {
						best = v
						weights = trial
						improved = true
					}
				}
			}
		}
	}
	// normalise: max class weight = 1
	maxW := 0.0
	for _, w := range weights {
		if w > maxW {
			maxW = w
		}
	}
	for i := range weights {
		weights[i] /= maxW
	}
	return &ClassWeightsResult{
		Classes:     classes,
		Weights:     weights,
		MaxLoad:     best,
		Evaluations: evals,
	}, nil
}

func evaluateClassWeights(arr *bins.Array, classes []int64, classW []float64, cfg Config) (float64, error) {
	idx := map[int64]int{}
	for i, c := range classes {
		idx[c] = i
	}
	w := make([]float64, arr.N())
	for i := 0; i < arr.N(); i++ {
		w[i] = classW[idx[arr.Capacity(i)]]
	}
	res, err := sim.Dispatch(sim.RunSpec{
		Config: sim.Config{
			Array:   arr,
			Dist:    dist.Custom{W: w, Desc: "class-weights"},
			Balls:   cfg.Balls,
			Reps:    cfg.reps(),
			Seed:    cfg.seed(),
			Workers: cfg.Workers,
		},
		Engine: cfg.Engine,
		Shards: cfg.Shards,
	})
	if err != nil {
		return 0, err
	}
	return res.MaxLoad.Mean(), nil
}

// ImpliedExponent fits the power-family exponent that best explains a
// set of class weights: least squares of log(w) against log(c) over
// classes with positive weight. Returns NaN when fewer than two usable
// classes exist.
func ImpliedExponent(classes []int64, weights []float64) float64 {
	var xs, ys []float64
	for i, c := range classes {
		if weights[i] > 0 && c > 0 {
			xs = append(xs, math.Log(float64(c)))
			ys = append(ys, math.Log(weights[i]))
		}
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	// simple OLS slope
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := sxx - sx*sx/n
	if den == 0 {
		return math.NaN()
	}
	return (sxy - sx*sy/n) / den
}
