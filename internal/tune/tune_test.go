package tune

import (
	"math"
	"testing"
)

func twoClass(nSmall int, cSmall int64, nLarge int, cLarge int64) []int64 {
	caps := make([]int64, 0, nSmall+nLarge)
	for i := 0; i < nSmall; i++ {
		caps = append(caps, cSmall)
	}
	for i := 0; i < nLarge; i++ {
		caps = append(caps, cLarge)
	}
	return caps
}

func TestEvaluateExponent(t *testing.T) {
	caps := twoClass(20, 1, 20, 3)
	cfg := Config{Reps: 200, Seed: 2}
	v1, err := EvaluateExponent(caps, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v1 < 1 || v1 > 4 {
		t.Fatalf("objective at t=1 is %v", v1)
	}
	// deterministic objective: same call, same value
	v1b, err := EvaluateExponent(caps, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v1b {
		t.Fatal("objective is not deterministic for fixed seed")
	}
	if _, err := EvaluateExponent([]int64{0}, 1, cfg); err == nil {
		t.Error("bad capacities accepted")
	}
}

func TestOptimalExponentRangeValidation(t *testing.T) {
	if _, err := OptimalExponent([]int64{1, 2}, 2, 1, Config{Reps: 10}); err == nil {
		t.Error("inverted range accepted")
	}
}

// TestOptimalExponentBeatsProportional reproduces the §4.5 headline: for
// a 50/50 mix of capacities 1 and 3 the best exponent is well above 1
// and strictly improves on proportional selection.
func TestOptimalExponentBeatsProportional(t *testing.T) {
	caps := twoClass(50, 1, 50, 3)
	res, err := OptimalExponent(caps, 0.5, 3, Config{Reps: 800, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.T < 1.3 || res.T > 2.8 {
		t.Fatalf("optimal exponent %v outside the paper's band (~2.1)", res.T)
	}
	if res.MaxLoad >= res.AtProportional {
		t.Fatalf("optimum %v no better than proportional %v", res.MaxLoad, res.AtProportional)
	}
	if res.Evaluations < 9 {
		t.Fatalf("suspiciously few evaluations: %d", res.Evaluations)
	}
}

func TestOptimalClassWeightsSingleClass(t *testing.T) {
	res, err := OptimalClassWeights(twoClass(10, 2, 0, 1), Config{Reps: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != 1 || res.Weights[0] != 1 {
		t.Fatalf("single-class result %+v", res)
	}
}

// TestOptimalClassWeightsImproves: coordinate descent must do at least
// as well as the proportional start.
func TestOptimalClassWeightsImproves(t *testing.T) {
	caps := twoClass(30, 1, 30, 3)
	cfg := Config{Reps: 400, Seed: 4}
	start, err := EvaluateExponent(caps, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimalClassWeights(caps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLoad > start+1e-9 {
		t.Fatalf("descent worsened the objective: %v -> %v", start, res.MaxLoad)
	}
	if len(res.Weights) != 2 {
		t.Fatalf("weights %v", res.Weights)
	}
	// normalised: max weight is 1
	if math.Max(res.Weights[0], res.Weights[1]) != 1 {
		t.Fatalf("weights not normalised: %v", res.Weights)
	}
	// the big class should be overweighted relative to proportional:
	// w_big / w_small > c_big / c_small is the §4.5 finding. Allow equality
	// slack for noise but require at least proportionality.
	ratio := res.Weights[1] / res.Weights[0]
	if ratio < 3 {
		t.Fatalf("big-class weight ratio %v below proportional 3", ratio)
	}
}

func TestImpliedExponent(t *testing.T) {
	// weights exactly c^2 → exponent 2
	got := ImpliedExponent([]int64{1, 2, 4}, []float64{1, 4, 16})
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("ImpliedExponent = %v, want 2", got)
	}
	// proportional weights → exponent 1
	got = ImpliedExponent([]int64{1, 3}, []float64{2, 6})
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("ImpliedExponent = %v, want 1", got)
	}
	// degenerate cases → NaN
	if !math.IsNaN(ImpliedExponent([]int64{2}, []float64{1})) {
		t.Error("single class should be NaN")
	}
	if !math.IsNaN(ImpliedExponent([]int64{2, 2}, []float64{1, 1})) {
		t.Error("identical classes should be NaN")
	}
	if !math.IsNaN(ImpliedExponent([]int64{1, 2}, []float64{0, 0})) {
		t.Error("zero weights should be NaN")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.reps() != 500 {
		t.Fatalf("default reps %d", c.reps())
	}
	if c.seed() != 1 {
		t.Fatalf("default seed %d", c.seed())
	}
}
