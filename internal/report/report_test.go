package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFixture(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBuildBasics(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "fig99.tsv", "# Figure 99: test\n# a note\n# x\ty\n1\t2.5\n2\t3\n")
	out, err := Build(dir, Options{Title: "My Digest"})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"# My Digest",
		"## Figure 99: test",
		"`fig99.tsv`",
		"a note",
		"| x | y |",
		"| 1 | 2.5000 |",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("digest missing %q:\n%s", frag, out)
		}
	}
}

func TestBuildTruncatesLongTables(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	sb.WriteString("# Long\n# x\n")
	for i := 0; i < 100; i++ {
		sb.WriteString("1\n")
	}
	writeFixture(t, dir, "long.tsv", sb.String())
	out, err := Build(dir, Options{MaxRows: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "100 rows total") {
		t.Fatalf("missing elision note:\n%s", out)
	}
	if !strings.Contains(out, "…") {
		t.Fatal("missing elision marker")
	}
	// 10 data rows + 1 elision row
	if got := strings.Count(out, "| 1 |"); got != 10 {
		t.Fatalf("rendered %d data rows, want 10", got)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("/nonexistent-dir", Options{}); err == nil {
		t.Error("missing dir accepted")
	}
	empty := t.TempDir()
	if _, err := Build(empty, Options{}); err == nil {
		t.Error("empty dir accepted")
	}
	bad := t.TempDir()
	writeFixture(t, bad, "bad.tsv", "no metadata at all")
	if _, err := Build(bad, Options{}); err == nil {
		t.Error("unparseable TSV accepted")
	}
}

func TestBuildRealResults(t *testing.T) {
	if _, err := os.Stat("../../results"); err != nil {
		t.Skip("no results directory")
	}
	out, err := Build("../../results", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Figure 1", "Figure 16", "Theorem 3"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("real-results digest missing %q", frag)
		}
	}
}

func TestFormatNumber(t *testing.T) {
	if got := formatNumber(3); got != "3" {
		t.Fatalf("formatNumber(3) = %q", got)
	}
	if got := formatNumber(3.5); got != "3.5000" {
		t.Fatalf("formatNumber(3.5) = %q", got)
	}
	if got := formatNumber(-7); got != "-7" {
		t.Fatalf("formatNumber(-7) = %q", got)
	}
}
