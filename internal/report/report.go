// Package report assembles a results directory (the TSVs written by
// bnbfig) into a single human-readable Markdown digest: one section per
// experiment with its table rendered inline, truncated to a preview for
// long series. cmd/bnbreport is the CLI wrapper.
package report

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/table"
	"repro/internal/tsv"
)

// Options tune the digest.
type Options struct {
	// MaxRows caps the rows rendered per table; longer tables show the
	// first MaxRows/2 and last MaxRows/2 rows (default 16).
	MaxRows int
	// Title heads the document (default "Experiment results").
	Title string
}

func (o Options) maxRows() int {
	if o.MaxRows <= 0 {
		return 16
	}
	return o.MaxRows
}

func (o Options) title() string {
	if o.Title == "" {
		return "Experiment results"
	}
	return o.Title
}

// Build reads every .tsv in dir and renders the Markdown digest.
func Build(dir string, opts Options) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tsv") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return "", fmt.Errorf("report: no .tsv files in %s", dir)
	}
	sort.Strings(names)

	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n\n", opts.title())
	fmt.Fprintf(&sb, "%d experiment tables from `%s`.\n\n", len(names), dir)
	for _, name := range names {
		t, err := tsv.ParseFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		renderSection(&sb, name, t, opts.maxRows())
	}
	return sb.String(), nil
}

func renderSection(sb *strings.Builder, name string, t *table.Table, maxRows int) {
	fmt.Fprintf(sb, "## %s\n\n", t.Title)
	fmt.Fprintf(sb, "Source: `%s`", name)
	if t.Comment != "" {
		fmt.Fprintf(sb, " — %s", strings.ReplaceAll(t.Comment, "\n", "; "))
	}
	fmt.Fprint(sb, "\n\n")

	// Markdown table header
	fmt.Fprintf(sb, "| %s |\n", strings.Join(t.Cols, " | "))
	seps := make([]string, len(t.Cols))
	for i := range seps {
		seps[i] = "---:"
	}
	fmt.Fprintf(sb, "| %s |\n", strings.Join(seps, " | "))

	n := t.NumRows()
	if n <= maxRows {
		for r := 0; r < n; r++ {
			writeRow(sb, t.Row(r))
		}
	} else {
		head := maxRows / 2
		tail := maxRows - head
		for r := 0; r < head; r++ {
			writeRow(sb, t.Row(r))
		}
		elision := make([]string, len(t.Cols))
		for i := range elision {
			elision[i] = "…"
		}
		fmt.Fprintf(sb, "| %s |\n", strings.Join(elision, " | "))
		for r := n - tail; r < n; r++ {
			writeRow(sb, t.Row(r))
		}
		fmt.Fprintf(sb, "\n*%d rows total; middle elided.*\n", n)
	}
	fmt.Fprint(sb, "\n")
}

func writeRow(sb *strings.Builder, row []float64) {
	cells := make([]string, len(row))
	for i, v := range row {
		cells[i] = formatNumber(v)
	}
	fmt.Fprintf(sb, "| %s |\n", strings.Join(cells, " | "))
}

func formatNumber(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4f", v)
}
