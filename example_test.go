package balls_test

// Runnable documentation examples for the public API. These execute
// under `go test` and their output is verified — seeds are fixed, and
// the library is bit-reproducible, so the outputs are stable.

import (
	"fmt"

	balls "repro"
)

// The basic workflow: build a system, throw m = C balls, inspect loads.
func ExampleNewSystem() {
	sys, err := balls.NewSystem(
		balls.CapacitiesTwoClass(3, 1, 1, 5), // three unit bins + one capacity-5 bin
		balls.WithSeed(42),
	)
	if err != nil {
		panic(err)
	}
	sys.PlaceN(sys.TotalCapacity())
	fmt.Println("bins:", sys.N())
	fmt.Println("balls:", sys.TotalBalls())
	fmt.Println("average load:", sys.AverageLoad())
	// Output:
	// bins: 4
	// balls: 8
	// average load: 1
}

// Monte-Carlo aggregation over many repetitions.
func ExampleSimulate() {
	res, err := balls.Simulate(balls.SimConfig{
		Capacities: balls.CapacitiesUniform(100, 1),
		Reps:       200,
		Seed:       7,
	})
	if err != nil {
		panic(err)
	}
	// with n = m = 100 unit bins and d = 2, the max load is almost
	// always 2 or 3
	fmt.Println(res.MeanMaxLoad >= 2 && res.MeanMaxLoad <= 3)
	fmt.Println(res.Balls)
	// Output:
	// true
	// 100
}

// Selecting a protocol and a distribution.
func ExampleWithProtocol() {
	sys, err := balls.NewSystem(
		balls.CapacitiesUniform(10, 2),
		balls.WithProtocol(balls.StandardDChoice(3)),
		balls.WithDistribution(balls.UniformSelection()),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println(sys.ProtocolName())
	fmt.Println(sys.DistributionName())
	// Output:
	// standard(d=3)
	// uniform
}

// Parsing the compact capacity spec used by the CLIs.
func ExampleParseCapacitySpec() {
	caps, err := balls.ParseCapacitySpec("2x1+1x10")
	if err != nil {
		panic(err)
	}
	fmt.Println(caps)
	// Output:
	// [1 1 10]
}
