package balls

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/bins"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/theory"
)

// SimConfig describes a Monte-Carlo run: many independent repetitions of
// the same game, aggregated.
type SimConfig struct {
	// Capacities of the bin array (required).
	Capacities []int64
	// Balls per repetition; 0 means m = C (the paper's default).
	Balls int64
	// BallsFactor scales C into a ball count when Balls is 0 (e.g. 10
	// for the heavily loaded m = 10·C).
	BallsFactor float64
	// Reps is the number of repetitions (default 100).
	Reps int
	// Seed is the base seed (default 1); repetition i uses an
	// independent stream derived from (Seed, i).
	Seed uint64
	// Workers caps parallelism (0 = GOMAXPROCS).
	Workers int
	// Distribution and Protocol default to Proportional / Greedy(2).
	Distribution Distribution
	Protocol     Protocol
	// SortedLoads requests the mean sorted load vector (the paper's
	// "load distribution" curves).
	SortedLoads bool
	// Checkpoints requests running (max − average) load measurements at
	// the given ball counts (the paper's §4.4 heavy-load series).
	// Checkpoints beyond the ball count are skipped, not zero-filled;
	// CheckpointResult.Reps counts the repetitions that observed each.
	Checkpoints []int64
	// Heights requests, for k = 1..Heights, the number of bins whose
	// final load is at least k — the concentration-bound observable.
	Heights int
	// Context, when non-nil, arms cooperative cancellation: when it
	// fires, Simulate stops at the next repetition boundary and returns
	// a partial result (the aggregates over the completed-repetition
	// prefix) alongside a *CancelledError. Nil runs to completion.
	Context context.Context
}

// CheckpointResult is one aggregated checkpoint. It is shared by all
// three engines (Simulate, SimulateLarge, MonteCarloLarge).
type CheckpointResult struct {
	// Balls is the requested cut (a global ball count).
	Balls int64
	// Reps is the number of repetitions that actually observed the
	// cut: checkpoints beyond a repetition's ball count — and, in the
	// sharded engines, cuts so small that their block-aligned
	// realisation is empty — are skipped, so Reps may be below the
	// run's repetition count (0 when no repetition observed the cut —
	// the Mean fields are NaN then).
	Reps int64
	// MeanBalls is the mean realised ball count at the cut. For
	// Simulate it equals Balls; for the sharded engines the cut is
	// realised per shard, aligned down to the placement kernel's
	// block size (see SimulateLarge), so MeanBalls <= Balls and can
	// vary with each repetition's routing stream.
	MeanBalls     float64
	MeanMaxLoad   float64
	MeanDeviation float64 // max − average at this point
}

// HeightResult aggregates, across repetitions, the number of bins at
// final load >= Level.
type HeightResult struct {
	Level    int64
	MeanBins float64
	BinsCI95 float64 // 95% CI half-width (NaN for a single run)
}

// checkpointResults converts the observation subsystem's rows into the
// public form.
func checkpointResults(rows []obs.CheckpointRow) []CheckpointResult {
	if len(rows) == 0 {
		return nil
	}
	out := make([]CheckpointResult, len(rows))
	for i := range rows {
		r := &rows[i]
		out[i] = CheckpointResult{
			Balls:         r.Balls,
			Reps:          r.Reps(),
			MeanBalls:     r.RealBalls.Mean(),
			MeanMaxLoad:   r.MaxLoad.Mean(),
			MeanDeviation: r.Deviation.Mean(),
		}
	}
	return out
}

// ShardStatResult aggregates one shard of a sharded Monte-Carlo run
// across repetitions — the imbalance view of the two-level protocol
// (only when MonteLargeConfig.ShardStats was requested).
type ShardStatResult struct {
	// Shard is the shard index (shards are contiguous bin ranges).
	Shard int
	// MeanBalls / BallsCI95: balls routed to the shard, mean and 95%
	// CI half-width across repetitions (NaN for a single repetition).
	MeanBalls float64
	BallsCI95 float64
	// MeanMaxLoad / WorstMaxLoad: the shard-local final maximum load,
	// mean and worst across repetitions.
	MeanMaxLoad  float64
	WorstMaxLoad float64
}

// shardStatResults converts the observation subsystem's rows into the
// public form.
func shardStatResults(ss *obs.ShardStats) []ShardStatResult {
	if ss == nil {
		return nil
	}
	rows := ss.Rows()
	out := make([]ShardStatResult, len(rows))
	for i := range rows {
		r := &rows[i]
		out[i] = ShardStatResult{
			Shard:        r.Shard,
			MeanBalls:    r.Balls.Mean(),
			BallsCI95:    r.Balls.CI95(),
			MeanMaxLoad:  r.MaxLoad.Mean(),
			WorstMaxLoad: r.MaxLoad.Max(),
		}
	}
	return out
}

// heightResults converts the observation subsystem's rows into the
// public form.
func heightResults(rows []obs.HeightRow) []HeightResult {
	if len(rows) == 0 {
		return nil
	}
	out := make([]HeightResult, len(rows))
	for i := range rows {
		out[i] = HeightResult{
			Level:    rows[i].Level,
			MeanBins: rows[i].Bins.Mean(),
			BinsCI95: rows[i].Bins.CI95(),
		}
	}
	return out
}

// SimResult aggregates a Monte-Carlo run.
type SimResult struct {
	// Reps is the number of repetitions aggregated.
	Reps int
	// Balls is the number of balls per repetition.
	Balls int64
	// MeanMaxLoad / MaxLoadCI95: final maximum load, mean and 95% CI
	// half-width.
	MeanMaxLoad float64
	MaxLoadCI95 float64
	// WorstMaxLoad is the largest final max load seen in any repetition.
	WorstMaxLoad float64
	// AverageLoad is m/C.
	AverageLoad float64
	// MeanDeviation is the mean of (max − average) final load.
	MeanDeviation float64
	// MeanSortedLoads is the element-wise mean of the non-increasing
	// load vector (only when SortedLoads was requested).
	MeanSortedLoads []float64
	// Checkpoints holds running aggregates (only when requested).
	Checkpoints []CheckpointResult
	// Heights holds bins-at-load>=k aggregates (only when requested).
	Heights []HeightResult
	// TheoryBound is ln ln(n)/ln(2), the paper's leading-order max-load
	// term for d = 2 and m = C, for orientation.
	TheoryBound float64
}

// Simulate runs cfg.Reps independent games and aggregates them. Results
// are deterministic in (Capacities, Balls, Seed, Distribution, Protocol)
// regardless of Workers.
//
// When cfg.Context fires mid-run, Simulate returns a partial result
// covering the completed-repetition prefix together with a
// *CancelledError (errors.Is(err, ErrCancelled)); the partial's
// aggregates are bit-identical to a run configured with that smaller
// Reps. Mean fields are NaN when no repetition completed.
func Simulate(cfg SimConfig) (*SimResult, error) {
	if len(cfg.Capacities) == 0 {
		return nil, fmt.Errorf("balls: Simulate needs capacities")
	}
	arr, err := bins.New(cfg.Capacities)
	if err != nil {
		return nil, err
	}
	reps := cfg.Reps
	if reps == 0 {
		reps = 100
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	res, err := sim.Run(sim.Config{
		Array:             arr,
		Dist:              cfg.Distribution.resolve(),
		Placer:            cfg.Protocol.resolve(),
		Balls:             cfg.Balls,
		BallsFactor:       cfg.BallsFactor,
		Reps:              reps,
		Seed:              seed,
		Workers:           cfg.Workers,
		CollectLoadVector: cfg.SortedLoads,
		ObsOptions: sim.ObsOptions{
			Checkpoints:  cfg.Checkpoints,
			HeightLevels: cfg.Heights,
		},
		Context: cfg.Context,
	})
	if err != nil {
		// errors.As takes cancelled's address, which would heap-allocate
		// it on every call — declared inside the error branch so the
		// happy path stays allocation-free.
		var cancelled *CancelledError
		if !errors.As(err, &cancelled) || res == nil {
			return nil, err
		}
		reps = cancelled.CompletedReps
	}
	balls := res.Balls.Mean()
	if math.IsNaN(balls) {
		balls = 0 // cancelled before any repetition completed
	}
	return &SimResult{
		Reps:            reps,
		Balls:           int64(balls),
		MeanMaxLoad:     res.MaxLoad.Mean(),
		MaxLoadCI95:     res.MaxLoad.CI95(),
		WorstMaxLoad:    res.MaxLoad.Max(),
		AverageLoad:     res.AvgLoad.Mean(),
		MeanDeviation:   res.Deviation.Mean(),
		MeanSortedLoads: res.MeanSortedLoads,
		Checkpoints:     checkpointResults(res.Checkpoints),
		Heights:         heightResults(res.HeightCounts),
		TheoryBound:     theory.TwoChoiceBound(arr.N(), 2),
	}, err
}
