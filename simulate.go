package balls

import (
	"fmt"

	"repro/internal/bins"
	"repro/internal/sim"
	"repro/internal/theory"
)

// SimConfig describes a Monte-Carlo run: many independent repetitions of
// the same game, aggregated.
type SimConfig struct {
	// Capacities of the bin array (required).
	Capacities []int64
	// Balls per repetition; 0 means m = C (the paper's default).
	Balls int64
	// BallsFactor scales C into a ball count when Balls is 0 (e.g. 10
	// for the heavily loaded m = 10·C).
	BallsFactor float64
	// Reps is the number of repetitions (default 100).
	Reps int
	// Seed is the base seed (default 1); repetition i uses an
	// independent stream derived from (Seed, i).
	Seed uint64
	// Workers caps parallelism (0 = GOMAXPROCS).
	Workers int
	// Distribution and Protocol default to Proportional / Greedy(2).
	Distribution Distribution
	Protocol     Protocol
	// SortedLoads requests the mean sorted load vector (the paper's
	// "load distribution" curves).
	SortedLoads bool
	// Checkpoints requests running (max − average) load measurements at
	// the given ball counts (the paper's §4.4 heavy-load series).
	Checkpoints []int64
}

// CheckpointResult is one aggregated checkpoint.
type CheckpointResult struct {
	Balls         int64
	MeanMaxLoad   float64
	MeanDeviation float64 // max − average at this point
}

// SimResult aggregates a Monte-Carlo run.
type SimResult struct {
	// Reps is the number of repetitions aggregated.
	Reps int
	// Balls is the number of balls per repetition.
	Balls int64
	// MeanMaxLoad / MaxLoadCI95: final maximum load, mean and 95% CI
	// half-width.
	MeanMaxLoad float64
	MaxLoadCI95 float64
	// WorstMaxLoad is the largest final max load seen in any repetition.
	WorstMaxLoad float64
	// AverageLoad is m/C.
	AverageLoad float64
	// MeanDeviation is the mean of (max − average) final load.
	MeanDeviation float64
	// MeanSortedLoads is the element-wise mean of the non-increasing
	// load vector (only when SortedLoads was requested).
	MeanSortedLoads []float64
	// Checkpoints holds running aggregates (only when requested).
	Checkpoints []CheckpointResult
	// TheoryBound is ln ln(n)/ln(2), the paper's leading-order max-load
	// term for d = 2 and m = C, for orientation.
	TheoryBound float64
}

// Simulate runs cfg.Reps independent games and aggregates them. Results
// are deterministic in (Capacities, Balls, Seed, Distribution, Protocol)
// regardless of Workers.
func Simulate(cfg SimConfig) (*SimResult, error) {
	if len(cfg.Capacities) == 0 {
		return nil, fmt.Errorf("balls: Simulate needs capacities")
	}
	arr, err := bins.New(cfg.Capacities)
	if err != nil {
		return nil, err
	}
	reps := cfg.Reps
	if reps == 0 {
		reps = 100
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	res, err := sim.Run(sim.Config{
		Array:             arr,
		Dist:              cfg.Distribution.resolve(),
		Placer:            cfg.Protocol.resolve(),
		Balls:             cfg.Balls,
		BallsFactor:       cfg.BallsFactor,
		Reps:              reps,
		Seed:              seed,
		Workers:           cfg.Workers,
		CollectLoadVector: cfg.SortedLoads,
		Checkpoints:       cfg.Checkpoints,
	})
	if err != nil {
		return nil, err
	}
	out := &SimResult{
		Reps:            reps,
		Balls:           int64(res.Balls.Mean()),
		MeanMaxLoad:     res.MaxLoad.Mean(),
		MaxLoadCI95:     res.MaxLoad.CI95(),
		WorstMaxLoad:    res.MaxLoad.Max(),
		AverageLoad:     res.AvgLoad.Mean(),
		MeanDeviation:   res.Deviation.Mean(),
		MeanSortedLoads: res.MeanSortedLoads,
		TheoryBound:     theory.TwoChoiceBound(arr.N(), 2),
	}
	for _, cp := range res.Checkpoints {
		out.Checkpoints = append(out.Checkpoints, CheckpointResult{
			Balls:         cp.Balls,
			MeanMaxLoad:   cp.MaxLoad.Mean(),
			MeanDeviation: cp.Deviation.Mean(),
		})
	}
	return out, nil
}
