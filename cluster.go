package balls

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bins"
	"repro/internal/cluster"
	"repro/internal/sim"
)

// ChurnEvent is one scheduled membership change: server Peer crashes
// (Down) or recovers (!Down) at the start of tick Tick.
type ChurnEvent = cluster.ChurnEvent

// ChurnPlan describes when servers crash and recover: a deterministic
// schedule plus optional per-tick Bernoulli crash/recover draws on a
// pinned substream. Neither path ever takes down the last live server.
type ChurnPlan = cluster.ChurnPlan

// RetryPolicy is the per-request timeout/retry contract: requests
// queued longer than TimeoutTicks are pulled and re-dispatched up to
// MaxRetries times after a deterministic exponential backoff.
type RetryPolicy = cluster.RetryPolicy

// ClusterConfig describes one churn-tolerant serving run: requests
// arrive in ticks, are routed onto live servers through a weighted
// consistent-hash ring and a d-choice placement kernel, queue FIFO, and
// survive server crashes through redistribution, timeouts, retries and
// load shedding. See SimulateCluster.
type ClusterConfig struct {
	// Capacities of the servers (required): Capacities[i] is server
	// i's per-tick service rate AND its ring weight.
	Capacities []int64
	// Ticks is the simulation horizon (>= 1).
	Ticks int
	// Arrivals is the number of requests offered per tick (>= 0).
	Arrivals int64
	// VnodesPerUnit is the ring density: virtual nodes per unit of
	// capacity (0 = engine default).
	VnodesPerUnit int
	// Churn is the crash/recover plan (zero value = no churn).
	Churn ChurnPlan
	// Retry is the timeout/retry policy (zero value = no timeouts).
	Retry RetryPolicy
	// ShedThreshold arms admission control when > 0: arrivals that
	// would push the cluster-wide queue total above
	// ShedThreshold·(live capacity) are shed at the door.
	ShedThreshold float64
	// LatencyMax is the latency histogram's top exact bucket in ticks
	// (0 = engine default); longer latencies share one overflow bucket.
	LatencyMax int
	// Seed is the base seed (default 1). Substream 0 builds the ring;
	// every tick consumes a frozen window of Shards+2 substreams
	// (churn draws, arrival routing, per-shard placement).
	Seed uint64
	// Shards is the number of contiguous server shards (0 = engine
	// default). Part of the model, like Seed.
	Shards int
	// Workers caps parallelism (0 = GOMAXPROCS). It never affects the
	// result, only the wall clock.
	Workers int
	// Checkpoints requests trajectory observations at the given TICK
	// indices (1-based, ascending): cut k observes the queues at the
	// end of tick Checkpoints[k].
	Checkpoints []int64
	// Heights requests, for k = 1..Heights, the number of servers
	// whose final queue depth is at least k.
	Heights int
	// Context, when non-nil, arms cooperative cancellation: the run
	// stops at the next tick boundary and returns the completed-tick
	// prefix alongside a *CancelledError. Nil runs to completion.
	Context context.Context
	// CancelAfterTicks, when positive, deterministically stops the run
	// after exactly that many completed ticks, as if Context had fired
	// there (the CancelledError has a nil Cause). Zero disables it.
	CancelAfterTicks int
}

// ClusterResult aggregates one serving run.
type ClusterResult struct {
	// N is the number of servers, Shards the realised shard count,
	// Ticks the number of COMPLETED ticks (== cfg.Ticks unless
	// cancelled).
	N      int
	Shards int
	Ticks  int
	// Request accounting over the completed ticks. Conservation:
	// Arrived = Shed + Admitted and
	// Admitted = Completed + Failed + PendingRetry + Queued.
	Arrived       int64 // offered requests
	Shed          int64 // rejected by admission control
	Admitted      int64 // accepted into the system
	Completed     int64 // serviced (the goodput)
	TimedOut      int64 // pulled from a queue after Retry.TimeoutTicks
	Retried       int64 // re-dispatched after a timeout
	Failed        int64 // timed out with retries exhausted
	Redistributed int64 // moved off crashed servers
	Queued        int64 // resident in queues at the horizon
	PendingRetry  int64 // timed out, waiting on backoff at the horizon
	// Churn accounting: crash and recovery events, the live-server
	// count during each completed tick, and Availability — the mean
	// live fraction over servers and ticks.
	Crashes      int
	Recoveries   int
	LivePerTick  []int
	Availability float64
	// MeanLatency and P99Latency summarise the response times (in
	// ticks, queueing included) of every completed request;
	// LatencyBuckets[k] counts requests with latency exactly k+1 ticks
	// for k < LatencyMax, with one overflow bucket at the end.
	MeanLatency    float64
	P99Latency     int64
	LatencyBuckets []int64
	// Checkpoints holds the tick-indexed trajectory rows (only when
	// requested): CheckpointResult.Balls is the TICK index of the cut,
	// MeanBalls the queued-request total at the end of that tick, and
	// MeanMaxLoad the maximum queue-relative load. A cancelled run
	// keeps the leading CancelledError.CompletedCuts rows.
	Checkpoints []CheckpointResult
	// Final-state fields, zero/nil on a cancelled run: the maximum and
	// average queue-relative load (queue/capacity) at the horizon, the
	// queue-depth height counts (when requested), and read access to
	// the final per-server queue depths (on a cancelled run Loads is
	// the zero value; its methods must not be called).
	MaxQueueLoad float64
	AvgQueueLoad float64
	Heights      []HeightResult
	Loads        LargeLoads
}

// SimulateCluster runs ONE churn-tolerant serving trajectory: each
// tick applies the churn plan (incrementally re-sharding the ring,
// redistributing queues resident on crashed servers), sheds or admits
// the tick's arrivals, routes admitted requests block-wise onto
// live-server ring weights, places them through a d-choice kernel on
// queue-relative load, services every live queue FIFO at its capacity,
// and times out / retries / fails overdue requests per cfg.Retry.
//
// The trajectory is bit-identical for any Workers value — only
// (Capacities, Ticks, Arrivals, churn, retry, shedding, Seed, Shards)
// determine it — including runs with mid-flight crashes, retries and
// shedding.
//
// When cfg.Context fires mid-tick (or CancelAfterTicks triggers),
// SimulateCluster returns a partial result alongside a
// *CancelledError: counters, the availability trace, latency
// histogram and the leading CancelledError.CompletedCuts checkpoint
// rows cover the completed-tick prefix and are bit-identical to a run
// configured with Ticks = CancelledError.CompletedTicks. Final-state
// fields (MaxQueueLoad, Heights, Loads) are unset on a cancelled
// partial.
func SimulateCluster(cfg ClusterConfig) (*ClusterResult, error) {
	if len(cfg.Capacities) == 0 {
		return nil, fmt.Errorf("balls: SimulateCluster needs capacities")
	}
	arr, err := bins.New(cfg.Capacities)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	res, err := sim.Dispatch(sim.RunSpec{
		Config: sim.Config{
			Array:   arr,
			Seed:    seed,
			Workers: cfg.Workers,
			ObsOptions: sim.ObsOptions{
				Checkpoints:  cfg.Checkpoints,
				HeightLevels: cfg.Heights,
			},
			Context: cfg.Context,
		},
		Engine: sim.EngineCluster,
		Shards: cfg.Shards,
		Cluster: &sim.ClusterParams{
			Ticks:            cfg.Ticks,
			ArrivalsPerTick:  cfg.Arrivals,
			VnodesPerUnit:    cfg.VnodesPerUnit,
			Churn:            cfg.Churn,
			Retry:            cfg.Retry,
			ShedThreshold:    cfg.ShedThreshold,
			LatencyMax:       cfg.LatencyMax,
			CancelAfterTicks: cfg.CancelAfterTicks,
		},
		// arr is private to this call, so the engine may own it —
		// skipping the clone avoids a second transient O(n) array.
		AdoptArray: true,
	})
	if err != nil {
		// Declared inside the branch: errors.As takes the address, and
		// a function-scope declaration would heap-allocate on the
		// happy path too.
		var cancelled *CancelledError
		if !errors.As(err, &cancelled) || res == nil {
			return nil, err
		}
	}
	cres := res.Cluster
	out := &ClusterResult{
		N:              cres.N,
		Shards:         cres.Shards,
		Ticks:          cres.Ticks,
		Arrived:        cres.Arrived,
		Shed:           cres.Shed,
		Admitted:       cres.Admitted,
		Completed:      cres.Completed,
		TimedOut:       cres.TimedOut,
		Retried:        cres.Retried,
		Failed:         cres.Failed,
		Redistributed:  cres.Redistributed,
		Queued:         cres.FinalQueued,
		PendingRetry:   cres.PendingRetry,
		Crashes:        cres.Crashes,
		Recoveries:     cres.Recoveries,
		LivePerTick:    cres.LivePerTick,
		Availability:   cres.Availability,
		MeanLatency:    cres.Latency.Mean(),
		P99Latency:     cres.Latency.Quantile(0.99),
		LatencyBuckets: cres.Latency.Buckets(),
		Checkpoints:    checkpointResults(cres.Checkpoints),
		MaxQueueLoad:   cres.MaxQueueLoad,
		AvgQueueLoad:   cres.AvgQueueLoad,
		Heights:        heightResults(cres.HeightCounts),
	}
	if cres.Array != nil {
		out.Loads = LargeLoads{arr: cres.Array}
	}
	return out, err
}
