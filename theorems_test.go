package balls

// Integration tests validating the paper's analytical statements through
// the public API at moderate problem sizes. Each test names the claim it
// checks. These run in a few seconds total; the heavier sweeps are
// guarded by testing.Short.

import (
	"math"
	"testing"

	"repro/internal/theory"
)

// TestObservation2UniformHeavyCase: for n bins of equal capacity c and
// m = k·n·c balls, the max load is (m/n + O(ln ln n))/c — in particular
// the deviation c·(max − avg) is independent of m.
func TestObservation2UniformHeavyCase(t *testing.T) {
	const n, c = 200, 4
	caps := CapacitiesUniform(n, c)
	var devs []float64
	for _, k := range []float64{1, 10, 100} {
		res, err := Simulate(SimConfig{
			Capacities:  caps,
			BallsFactor: k,
			Reps:        100,
			Seed:        21,
		})
		if err != nil {
			t.Fatal(err)
		}
		devs = append(devs, res.MeanDeviation*c) // balls above average
	}
	for i := 1; i < len(devs); i++ {
		if math.Abs(devs[i]-devs[0]) > 0.5 {
			t.Fatalf("deviation not m-invariant: %v", devs)
		}
	}
	// and the absolute level is O(ln ln n): generously, < 3·lnln(n)
	bound := 3 * theory.TwoChoiceBound(n, 2)
	if devs[0] > bound {
		t.Fatalf("deviation %v above 3x theory %v", devs[0], bound)
	}
}

// TestTheorem1BigCapacityRegime: when (almost) all bins are big
// (capacity Ω(ln n)), the max load is constant — far below the
// ln ln n / ln 2 growth of the unit game.
func TestTheorem1BigCapacityRegime(t *testing.T) {
	for _, n := range []int{100, 1000, 10000} {
		bigCap := int64(math.Ceil(theory.BigThreshold(n, 1)))
		res, err := Simulate(SimConfig{
			Capacities: CapacitiesUniform(n, bigCap),
			Reps:       60,
			Seed:       22,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.WorstMaxLoad > 4 {
			t.Fatalf("n=%d: worst max load %v exceeds Observation 1's constant 4", n, res.WorstMaxLoad)
		}
		if res.MeanMaxLoad > 2.5 {
			t.Fatalf("n=%d: mean max load %v not constant-like", n, res.MeanMaxLoad)
		}
	}
}

// TestTheorem2SmallCsRegime: with Cs ≤ C^((d-1)/d)·(log C)^(1/d) the max
// load stays constant. Build arrays right at the boundary.
func TestTheorem2SmallCsRegime(t *testing.T) {
	for _, n := range []int{1000, 5000} {
		bigCap := int64(math.Ceil(theory.BigThreshold(n, 1)))
		// total capacity if all bins were big:
		cAll := int64(n) * bigCap
		csBound := theory.Theorem2SmallCapacityBound(cAll, 2)
		nSmall := int(csBound) // small bins of capacity 1
		if nSmall > n/2 {
			nSmall = n / 2
		}
		res, err := Simulate(SimConfig{
			Capacities: CapacitiesTwoClass(nSmall, 1, n-nSmall, bigCap),
			Reps:       40,
			Seed:       23,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.WorstMaxLoad > 6 {
			t.Fatalf("n=%d: worst max load %v not constant-like in the Theorem 2 regime", n, res.WorstMaxLoad)
		}
	}
}

// TestTheorem3Scaling: the max load grows no faster than
// ln ln(n)/ln(d) + O(1) across a decade of n and d ∈ {2, 3}.
func TestTheorem3Scaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep")
	}
	for _, d := range []int{2, 3} {
		for _, n := range []int{500, 5000} {
			caps, err := CapacitiesRandomBinomial(n, 3, 77)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Simulate(SimConfig{
				Capacities: caps,
				Reps:       60,
				Seed:       24,
				Protocol:   Greedy(d),
			})
			if err != nil {
				t.Fatal(err)
			}
			bound := theory.TwoChoiceBound(n, d) + 2 // generous O(1)
			if res.MeanMaxLoad > bound {
				t.Fatalf("n=%d d=%d: max load %v above bound %v", n, d, res.MeanMaxLoad, bound)
			}
		}
	}
}

// TestTheorem5TopOnlyConstant: routing all probability mass to the α·n
// big bins keeps the max load near k/α even as n grows.
func TestTheorem5TopOnlyConstant(t *testing.T) {
	const alpha = 0.5
	var loads []float64
	for _, n := range []int{200, 2000} {
		q := int64(4)
		nBig := int(alpha * float64(n))
		res, err := Simulate(SimConfig{
			Capacities:   CapacitiesTwoClass(n-nBig, 1, nBig, q),
			Reps:         80,
			Seed:         25,
			Distribution: TopOnlySelection(q),
		})
		if err != nil {
			t.Fatal(err)
		}
		loads = append(loads, res.MeanMaxLoad)
		// k = m/C = 1; bound k/α = 2 plus O(1)/q slack
		if res.MeanMaxLoad > theory.Theorem5MaxLoad(1, alpha)+1 {
			t.Fatalf("n=%d: top-only max load %v above k/alpha+1", n, res.MeanMaxLoad)
		}
	}
	// constant across n: within noise
	if math.Abs(loads[0]-loads[1]) > 0.4 {
		t.Fatalf("top-only max load not constant in n: %v", loads)
	}
}

// TestGreedyBeatsObliviousOnHeterogeneous: the paper's core selling
// point through the public API — capacity-aware beats capacity-oblivious
// by a wide margin on a mixed array.
func TestGreedyBeatsObliviousOnHeterogeneous(t *testing.T) {
	caps := CapacitiesTwoClass(500, 1, 500, 10)
	run := func(p Protocol) float64 {
		res, err := Simulate(SimConfig{Capacities: caps, Reps: 100, Seed: 26, Protocol: p})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanMaxLoad
	}
	greedy := run(Greedy(2))
	standard := run(StandardDChoice(2))
	single := run(SingleChoice())
	if greedy >= standard || greedy >= single {
		t.Fatalf("expected greedy below both baselines, got greedy=%v standard=%v single=%v",
			greedy, standard, single)
	}
	if standard/greedy < 1.5 {
		t.Fatalf("capacity-awareness gain only %.2fx, expected > 1.5x", standard/greedy)
	}
	// Noteworthy inversion: on a 50/50 mix, capacity-oblivious two-choice
	// is WORSE than single choice — minimising raw ball counts steers
	// balls into the small bins, where each ball costs 10x the load.
	// Document the effect by asserting it (it is stable across seeds).
	if standard < single {
		t.Logf("note: standard (%v) beat single (%v) here; inversion is mix-dependent", standard, single)
	}
}

// TestOptimizeSelectionExponentAPI: the future-work optimiser through
// the facade reproduces Figure 17's qualitative finding.
func TestOptimizeSelectionExponentAPI(t *testing.T) {
	res, err := OptimizeSelectionExponent(CapacitiesTwoClass(50, 1, 50, 3), 0.5, 3, 600, 27)
	if err != nil {
		t.Fatal(err)
	}
	if res.T <= 1.1 {
		t.Fatalf("optimal exponent %v should exceed 1", res.T)
	}
	if res.MaxLoad > res.AtProportional {
		t.Fatalf("optimum %v worse than proportional %v", res.MaxLoad, res.AtProportional)
	}
	if res.Evaluations <= 0 {
		t.Fatal("no evaluations recorded")
	}
	if _, err := OptimizeSelectionExponent(nil, 0, 1, 10, 1); err == nil {
		t.Error("empty capacities accepted")
	}
}
