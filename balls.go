// Package balls is a library for balls-into-bins games with non-uniform
// (heterogeneous) bins, reproducing "Balls into Non-uniform Bins" by
// Berenbrink, Brinkmann, Friedetzky and Nagel.
//
// Bins have integer capacities; a bin holding m balls with capacity c has
// load m/c. Each ball draws d candidate bins from a configurable
// selection distribution (capacity-proportional by default) and the
// greedy protocol (the paper's Algorithm 1) places it into a candidate
// minimising the post-allocation load, breaking ties towards larger
// capacity.
//
// # Quick start
//
//	sys, err := balls.NewSystem(balls.CapacitiesTwoClass(500, 1, 500, 10))
//	if err != nil { ... }
//	sys.PlaceN(sys.TotalCapacity()) // m = C
//	fmt.Println(sys.MaxLoad())
//
// For Monte-Carlo statistics over many repetitions use Simulate; for the
// paper's figures use cmd/bnbfig or the internal/experiments registry.
package balls

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/protocol"
)

// Distribution selects the probability rule balls use to pick candidate
// bins. Construct one with Proportional, UniformSelection,
// PowerSelection, TopOnlySelection or CustomSelection.
type Distribution struct {
	inner dist.Distribution
}

// Proportional selects bins with probability proportional to capacity
// (c_i/C) — the paper's standard assumption and the default.
func Proportional() Distribution { return Distribution{dist.Proportional{}} }

// UniformSelection selects every bin with probability 1/n.
func UniformSelection() Distribution { return Distribution{dist.Uniform{}} }

// PowerSelection selects bin i with probability proportional to c_i^t
// (the paper's §4.5 tunable family).
func PowerSelection(t float64) Distribution { return Distribution{dist.Power{T: t}} }

// TopOnlySelection selects uniformly among bins of capacity at least
// minCapacity and never selects smaller bins (Theorem 5).
func TopOnlySelection(minCapacity int64) Distribution {
	return Distribution{dist.TopOnly{MinCapacity: minCapacity}}
}

// CustomSelection selects bins with the given explicit weights (length
// must equal the number of bins).
func CustomSelection(weights []float64) Distribution {
	w := make([]float64, len(weights))
	copy(w, weights)
	return Distribution{dist.Custom{W: w, Desc: "custom"}}
}

// Name reports the distribution's name.
func (d Distribution) Name() string {
	if d.inner == nil {
		return "proportional"
	}
	return d.inner.Name()
}

func (d Distribution) resolve() dist.Distribution {
	if d.inner == nil {
		return dist.Proportional{}
	}
	return d.inner
}

// Protocol selects the allocation protocol. Construct one with Greedy,
// StandardDChoice, SingleChoice, AlwaysGoLeft or OnePlusBetaChoice.
type Protocol struct {
	factory protocol.Factory
	name    string
}

// Greedy is the paper's Algorithm 1 with d >= 1 choices: least
// post-allocation load, ties to the larger capacity. The default is
// Greedy(2).
func Greedy(d int) Protocol {
	return Protocol{protocol.GreedyFactory(d), fmt.Sprintf("greedy(d=%d)", d)}
}

// StandardDChoice is the classical capacity-oblivious d-choice protocol
// (Azar et al.): least ball count, ties uniformly at random.
func StandardDChoice(d int) Protocol {
	return Protocol{protocol.StandardFactory(d), fmt.Sprintf("standard(d=%d)", d)}
}

// SingleChoice places each ball into one randomly selected bin.
func SingleChoice() Protocol {
	return Protocol{protocol.SingleFactory(), "single"}
}

// AlwaysGoLeft is Vöcking's d-group protocol adapted to heterogeneous
// bins (ties to the leftmost group).
func AlwaysGoLeft(d int) Protocol {
	return Protocol{protocol.GoLeftFactory(d), fmt.Sprintf("goleft(d=%d)", d)}
}

// OnePlusBetaChoice runs Greedy(2) with probability beta and
// SingleChoice otherwise.
func OnePlusBetaChoice(beta float64) Protocol {
	return Protocol{protocol.OnePlusBetaFactory(beta), fmt.Sprintf("oneplusbeta(b=%g)", beta)}
}

// Name reports the protocol's name.
func (p Protocol) Name() string {
	if p.factory == nil {
		return "greedy(d=2)"
	}
	return p.name
}

func (p Protocol) resolve() protocol.Factory {
	if p.factory == nil {
		return protocol.GreedyFactory(2)
	}
	return p.factory
}

// Option configures a System.
type Option func(*options)

type options struct {
	seed  uint64
	dist  Distribution
	proto Protocol
}

// WithSeed sets the RNG seed (default 1). Identical seeds reproduce
// identical allocations.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithDistribution sets the bin selection distribution.
func WithDistribution(d Distribution) Option { return func(o *options) { o.dist = d } }

// WithProtocol sets the allocation protocol.
func WithProtocol(p Protocol) Option { return func(o *options) { o.proto = p } }

// System is a live balls-into-bins game: a heterogeneous bin array plus a
// protocol and an RNG (a thin wrapper over internal/core.Game). It is not
// safe for concurrent use; run parallel repetitions through Simulate
// instead.
type System struct {
	game *core.Game
}

// NewSystem builds a system over the given bin capacities (every capacity
// must be >= 1).
func NewSystem(capacities []int64, opts ...Option) (*System, error) {
	o := options{seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	game, err := core.NewGame(capacities, core.Options{
		Dist:   o.dist.resolve(),
		Placer: o.proto.resolve(),
		Seed:   o.seed,
	})
	if err != nil {
		return nil, err
	}
	return &System{game: game}, nil
}

// Place allocates one ball and returns the receiving bin's index.
func (s *System) Place() int { return s.game.Place() }

// PlaceN allocates m balls.
func (s *System) PlaceN(m int64) { s.game.PlaceN(m) }

// N returns the number of bins.
func (s *System) N() int { return s.game.Array().N() }

// TotalCapacity returns C, the sum of capacities.
func (s *System) TotalCapacity() int64 { return s.game.Array().TotalCapacity() }

// TotalBalls returns the number of balls placed so far.
func (s *System) TotalBalls() int64 { return s.game.Array().TotalBalls() }

// Capacity returns bin i's capacity.
func (s *System) Capacity(i int) int64 { return s.game.Array().Capacity(i) }

// BallCount returns the number of balls in bin i.
func (s *System) BallCount(i int) int64 { return s.game.Array().Balls(i) }

// Load returns bin i's load (balls / capacity).
func (s *System) Load(i int) float64 { return s.game.Array().Load(i) }

// Loads returns all bin loads in bin order.
func (s *System) Loads() []float64 { return s.game.Array().LoadVector() }

// MaxLoad returns the maximum load over all bins.
func (s *System) MaxLoad() float64 { return s.game.Array().MaxLoad() }

// AverageLoad returns m/C, the perfectly balanced load.
func (s *System) AverageLoad() float64 { return s.game.Array().AverageLoad() }

// MaxLoadedBins returns the indices of every bin attaining the maximum
// load (exact tie handling).
func (s *System) MaxLoadedBins() []int { return s.game.Array().ArgMaxLoad() }

// Reset removes all balls and reseeds the RNG so the next run reproduces
// the first one exactly.
func (s *System) Reset() { s.game.Reset() }

// ProtocolName reports the active protocol.
func (s *System) ProtocolName() string { return s.game.ProtocolName() }

// DistributionName reports the active selection distribution.
func (s *System) DistributionName() string { return s.game.DistributionName() }
