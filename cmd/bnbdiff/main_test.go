package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTSV(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

const tsvA = "# title\n# x\ty\n1\t2\n3\t4\n"

func TestDiffIdenticalDirs(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	writeTSV(t, a, "f.tsv", tsvA)
	writeTSV(t, b, "f.tsv", tsvA)
	code, err := run([]string{"-a", a, "-b", b}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

func TestDiffWithinTolerance(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	writeTSV(t, a, "f.tsv", tsvA)
	writeTSV(t, b, "f.tsv", "# title\n# x\ty\n1\t2.01\n3\t4\n")
	code, err := run([]string{"-a", a, "-b", b, "-abs", "0.05"}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

func TestDiffBeyondTolerance(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	writeTSV(t, a, "f.tsv", tsvA)
	writeTSV(t, b, "f.tsv", "# title\n# x\ty\n1\t9\n3\t4\n")
	code, err := run([]string{"-a", a, "-b", b, "-abs", "0.01", "-rel", "0.01"}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}

func TestDiffMissingAndExtra(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	writeTSV(t, a, "only-in-a.tsv", tsvA)
	writeTSV(t, b, "only-in-b.tsv", tsvA)
	code, err := run([]string{"-a", a, "-b", b}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}

func TestDiffUsageErrors(t *testing.T) {
	if code, err := run([]string{}, os.Stdout); err == nil || code != 2 {
		t.Error("missing dirs accepted")
	}
	if code, err := run([]string{"-a", "/nonexistent", "-b", "/nonexistent"}, os.Stdout); err == nil || code != 2 {
		t.Error("nonexistent dirs accepted")
	}
	if code, err := run([]string{"-bogus"}, os.Stdout); err == nil || code != 2 {
		t.Error("bad flag accepted")
	}
}

func TestRealResultsSelfDiff(t *testing.T) {
	// The checked-in results directory must diff clean against itself.
	if _, err := os.Stat("../../results"); err != nil {
		t.Skip("no results directory")
	}
	code, err := run([]string{"-a", "../../results", "-b", "../../results"}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("results/ does not self-diff clean (exit %d)", code)
	}
}
