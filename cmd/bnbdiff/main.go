// Command bnbdiff compares two directories of experiment TSVs (as
// written by `bnbfig -out`) with numeric tolerances — the regression
// check for reproduction runs.
//
// Example:
//
//	bnbfig -all -out results-new/
//	bnbdiff -a results/ -b results-new/ -rel 0.1 -abs 0.05
//
// Exit status 0 when every shared file matches within tolerance, 1 when
// any file differs or is missing from either side.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/tsv"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bnbdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out *os.File) (int, error) {
	fs := flag.NewFlagSet("bnbdiff", flag.ContinueOnError)
	dirA := fs.String("a", "", "baseline results directory")
	dirB := fs.String("b", "", "candidate results directory")
	abs := fs.Float64("abs", 0.02, "absolute tolerance")
	rel := fs.Float64("rel", 0.1, "relative tolerance")
	maxShow := fs.Int("max", 5, "differences to print per file")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *dirA == "" || *dirB == "" {
		return 2, fmt.Errorf("need both -a and -b directories")
	}
	filesA, err := tsvSet(*dirA)
	if err != nil {
		return 2, err
	}
	filesB, err := tsvSet(*dirB)
	if err != nil {
		return 2, err
	}
	tol := tsv.Tolerance{Abs: *abs, Rel: *rel}

	var names []string
	seen := map[string]bool{}
	for n := range filesA {
		names = append(names, n)
		seen[n] = true
	}
	for n := range filesB {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	failed := 0
	for _, name := range names {
		switch {
		case !filesB[name]:
			fmt.Fprintf(out, "MISSING in %s: %s\n", *dirB, name)
			failed++
		case !filesA[name]:
			fmt.Fprintf(out, "EXTRA in %s: %s\n", *dirB, name)
			failed++
		default:
			ta, err := tsv.ParseFile(filepath.Join(*dirA, name))
			if err != nil {
				return 2, err
			}
			tb, err := tsv.ParseFile(filepath.Join(*dirB, name))
			if err != nil {
				return 2, err
			}
			diffs := tsv.Compare(ta, tb, tol)
			if len(diffs) == 0 {
				fmt.Fprintf(out, "OK   %s\n", name)
				continue
			}
			failed++
			fmt.Fprintf(out, "DIFF %s (%d differences)\n", name, len(diffs))
			for i, d := range diffs {
				if i >= *maxShow {
					fmt.Fprintf(out, "  ... %d more\n", len(diffs)-i)
					break
				}
				fmt.Fprintf(out, "  %s\n", d)
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(out, "%d of %d files differ\n", failed, len(names))
		return 1, nil
	}
	fmt.Fprintf(out, "all %d files match within tolerance\n", len(names))
	return 0, nil
}

func tsvSet(dir string) (map[string]bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tsv") {
			out[e.Name()] = true
		}
	}
	return out, nil
}
