package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/table"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunRequiresTarget(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no target accepted")
	}
	if err := run([]string{"-fig", "nope"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-zzz"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunSingleFigureToDir(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-fig", "fig10", "-reps", "3", "-scale", "0.02", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no TSV files written")
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# Figure 10") {
		t.Fatalf("unexpected TSV header: %.60s", data)
	}
}

func TestRunEngineFlag(t *testing.T) {
	if err := run([]string{"-fig", "fig10", "-engine", "warp"}); err == nil {
		t.Error("unknown engine accepted")
	}
	if err := run([]string{"-fig", "fig10", "-scale", "-2"}); err == nil {
		t.Error("negative scale accepted")
	}
	// The same figure must run through the classic and sharded engines
	// and produce tables of identical shape.
	dirs := map[string]string{}
	for _, engine := range []string{"classic", "sharded"} {
		dir := t.TempDir()
		err := run([]string{"-fig", "fig01", "-reps", "3", "-scale", "0.02",
			"-engine", engine, "-shards", "8", "-out", dir})
		if err != nil {
			t.Fatalf("-engine %s: %v", engine, err)
		}
		dirs[engine] = dir
	}
	classic, err := os.ReadDir(dirs["classic"])
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range classic {
		a, err := os.ReadFile(filepath.Join(dirs["classic"], e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirs["sharded"], e.Name()))
		if err != nil {
			t.Fatalf("sharded run missing %s: %v", e.Name(), err)
		}
		if la, lb := len(strings.Split(string(a), "\n")), len(strings.Split(string(b), "\n")); la != lb {
			t.Errorf("%s: %d lines classic vs %d sharded", e.Name(), la, lb)
		}
	}
}

func TestEmitMultipleTables(t *testing.T) {
	dir := t.TempDir()
	t1 := table.New("one", "a")
	t1.MustAddRow(1)
	t2 := table.New("two", "b")
	t2.MustAddRow(2)
	if err := emit("myexp", []*table.Table{t1, t2}, dir, true); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"myexp_1.tsv", "myexp_2.tsv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
	// single table: no suffix
	if err := emit("solo", []*table.Table{t1}, dir, false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "solo.tsv")); err != nil {
		t.Fatal("single-table name should have no index suffix")
	}
}

func TestEmitToStdout(t *testing.T) {
	t1 := table.New("stdout table", "x")
	t1.MustAddRow(7)
	if err := emit("e", []*table.Table{t1}, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestFirstLine(t *testing.T) {
	if got := firstLine("a\nb"); got != "a" {
		t.Fatalf("firstLine = %q", got)
	}
	if got := firstLine("abc"); got != "abc" {
		t.Fatalf("firstLine = %q", got)
	}
}
