// Command bnbfig regenerates the data series behind any figure of the
// paper's evaluation section (and the validation/ablation experiments).
//
// Examples:
//
//	bnbfig -list                     # show available experiments
//	bnbfig -fig fig06                # run one figure at default size
//	bnbfig -fig fig01 -scale 0.1     # quick run at 10% problem size
//	bnbfig -fig fig01 -scale 100 -engine sharded   # 100× the paper's n
//	bnbfig -all -out results/        # regenerate everything into TSVs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/gnuplot"
	"repro/internal/sim"
	"repro/internal/table"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bnbfig:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bnbfig", flag.ContinueOnError)
	fig := fs.String("fig", "", "experiment ID to run (see -list)")
	all := fs.Bool("all", false, "run every experiment (skipping aliases)")
	list := fs.Bool("list", false, "list available experiments")
	reps := fs.Int("reps", 0, "override repetitions per data point (0 = experiment default)")
	seed := fs.Uint64("seed", 1, "base RNG seed")
	scale := fs.Float64("scale", 1, "problem-size scale: <1 shrinks for quick runs, >1 grows past the paper's n (pair with -engine sharded or closed-form)")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	engine := fs.String("engine", "auto", "simulation engine: auto, classic, sharded or closed-form")
	shards := fs.Int("shards", 0, "sharded engine's shard count (0 = default; part of the model, like the seed)")
	out := fs.String("out", "", "directory for TSV output (default: pretty-print to stdout)")
	plot := fs.Bool("gnuplot", false, "also write a .gp plotting script per table (needs -out)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *plot && *out == "" {
		return fmt.Errorf("-gnuplot requires -out")
	}
	if *scale < 0 {
		return fmt.Errorf("-scale %v: need a positive factor (0 = paper size)", *scale)
	}
	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			alias := ""
			if e.AliasOf != "" {
				alias = fmt.Sprintf("  (produced by %s)", e.AliasOf)
			}
			fmt.Printf("%-18s %s%s\n", e.ID, e.Title, alias)
		}
		return nil
	}

	params := experiments.Params{
		Reps:    *reps,
		Seed:    *seed,
		Workers: *workers,
		Scale:   *scale,
		Engine:  eng,
		Shards:  *shards,
	}

	var toRun []experiments.Experiment
	switch {
	case *all:
		for _, e := range experiments.All() {
			if e.AliasOf == "" {
				toRun = append(toRun, e)
			}
		}
	case *fig != "":
		e, err := experiments.Get(*fig)
		if err != nil {
			return err
		}
		toRun = append(toRun, e)
	default:
		return fmt.Errorf("nothing to do: pass -fig ID, -all, or -list")
	}

	for _, e := range toRun {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s: %s\n", e.ID, e.Title)
		tabs, err := e.Run(params)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(os.Stderr, "done %s in %v\n", e.ID, time.Since(start).Round(time.Millisecond))
		if err := emit(e.ID, tabs, *out, *plot); err != nil {
			return err
		}
	}
	return nil
}

func emit(id string, tabs []*table.Table, outDir string, plot bool) error {
	if outDir == "" {
		for _, t := range tabs {
			if err := t.WritePretty(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for i, t := range tabs {
		name := id
		if len(tabs) > 1 {
			name = fmt.Sprintf("%s_%d", id, i+1)
		}
		path := filepath.Join(outDir, name+".tsv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = t.WriteTSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%s)\n", path, firstLine(t.Title))
		if plot && len(t.Cols) >= 2 {
			gpPath := filepath.Join(outDir, name+".gp")
			g, err := os.Create(gpPath)
			if err != nil {
				return err
			}
			err = gnuplot.Script(g, t, name+".tsv", gnuplot.Options{})
			if cerr := g.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", gpPath)
		}
	}
	return nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
