package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	tsv := "# T\n# x\ty\n1\t2\n"
	if err := os.WriteFile(filepath.Join(dir, "a.tsv"), []byte(tsv), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dir", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-dir", "/nonexistent"}); err == nil {
		t.Error("missing dir accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}
