// Command bnbreport renders a results directory (bnbfig -out TSVs) into
// a single Markdown digest on stdout.
//
// Example:
//
//	bnbfig -all -out results/
//	bnbreport -dir results/ > RESULTS.md
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bnbreport:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bnbreport", flag.ContinueOnError)
	dir := fs.String("dir", "results", "directory of experiment TSVs")
	title := fs.String("title", "Balls into Non-uniform Bins — experiment results", "document title")
	maxRows := fs.Int("maxrows", 16, "max rows rendered per table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	out, err := report.Build(*dir, report.Options{Title: *title, MaxRows: *maxRows})
	if err != nil {
		return err
	}
	_, err = fmt.Print(out)
	return err
}
